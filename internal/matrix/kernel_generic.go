//go:build !amd64 || purego

package matrix

// mulSpan4 accumulates cs[j] += av0·b0[j] + av1·b1[j] + av2·b2[j] +
// av3·b3[j] with one rounding per step, in that order. This is the
// portable implementation; amd64 provides a SIMD version with the same
// per-element operation sequence, so results are bit-identical across
// the two. On platforms where the compiler contracts x += a*b into a
// fused multiply-add (arm64, ppc64), mulAddIntoNaive contracts the same
// expression shape identically, preserving the differential contract.
func mulSpan4(cs, b0, b1, b2, b3 []float64, av0, av1, av2, av3 float64) {
	for j := range cs {
		s := cs[j]
		s += av0 * b0[j]
		s += av1 * b1[j]
		s += av2 * b2[j]
		s += av3 * b3[j]
		cs[j] = s
	}
}
