package matrix

import (
	"fmt"
	"math"
	"runtime"
	"testing"
)

// parallelWorkerGrid is the worker-count grid the differential suite
// proves byte-identity over; NumCPU is appended at runtime.
var parallelWorkerGrid = []int{1, 2, 3, 4, 7, 8}

// parallelBitIdentical runs the parallel kernel at the given worker
// count against the serial tiled kernel (itself pinned bit-for-bit to
// the naive loop by TestMulAddIntoBitIdentical*) and fails on the
// first output element whose bits differ.
func parallelBitIdentical(t *testing.T, a, b *Dense, workers int) {
	t.Helper()
	got := New(a.Rows, b.Cols)
	want := New(a.Rows, b.Cols)
	MulAddIntoParallel(got, a, b, workers)
	MulAddInto(want, a, b)
	for i := range want.Data {
		g, w := math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i])
		if g != w {
			t.Fatalf("%dx%d · %dx%d workers=%d: element %d: parallel %x (%v) != serial %x (%v)",
				a.Rows, a.Cols, b.Rows, b.Cols, workers, i, g, got.Data[i], w, want.Data[i])
		}
	}
}

// TestMulAddIntoParallelBitIdenticalSquare proves the ownership
// contract on the square differential grid at every worker count:
// the row-band fallback dominates here because the outputs are
// narrower than workers·ncBlock.
func TestMulAddIntoParallelBitIdenticalSquare(t *testing.T) {
	for _, n := range kernelSizes {
		a := Random(n, n, uint64(n)*2+1)
		b := Random(n, n, uint64(n)*2+2)
		for _, w := range parallelWorkerGrid {
			parallelBitIdentical(t, a, b, w)
		}
	}
}

// TestMulAddIntoParallelBitIdenticalWide drives the column-panel mode:
// outputs wide enough that every worker owns at least one full
// ncBlock panel, with widths straddling the panel boundaries.
func TestMulAddIntoParallelBitIdenticalWide(t *testing.T) {
	shapes := [][3]int{
		{3, 7, 512}, {5, 129, 513}, {2, 64, 767}, {9, 31, 1024},
		{4, 128, 1025}, {1, 300, 1100}, {17, 5, 2048}, {6, 133, 2100},
	}
	for _, s := range shapes {
		a := Random(s[0], s[1], 21)
		b := Random(s[1], s[2], 23)
		for _, w := range []int{1, 2, 3, 4, 8} {
			parallelBitIdentical(t, a, b, w)
		}
	}
}

// TestMulAddIntoParallelSpecialValues exercises the zero-skip
// semantics under parallelism: zeros in a gating Inf/NaN rows of b,
// plus denormals, must propagate exactly as in the serial kernel on
// both the row-band and column-panel paths.
func TestMulAddIntoParallelSpecialValues(t *testing.T) {
	inf, nan := math.Inf(1), math.NaN()
	for _, s := range [][3]int{{64, 64, 64}, {7, 129, 520}, {3, 128, 1030}} {
		a := Random(s[0], s[1], 201)
		b := Random(s[1], s[2], 203)
		for l := 0; l < s[1]; l++ {
			a.Set(0, l, 0)
			if l%4 == 2 {
				a.Set(s[0]/2, l, 0)
			}
		}
		b.Set(2%s[1], 0, inf)
		b.Set(2%s[1], s[2]-1, nan)
		b.Set(0, s[2]/2, 5e-324) // denormal
		if s[1] > 6 {
			b.Set(5, 1, inf)
			b.Set(6, 2, nan)
		}
		for _, w := range []int{2, 4, 8} {
			parallelBitIdentical(t, a, b, w)
		}
	}
}

// TestMulAddIntoParallelAccumulates verifies c += a·b semantics: the
// parallel kernel accumulates into existing output exactly as the
// serial kernel does, on both partition axes.
func TestMulAddIntoParallelAccumulates(t *testing.T) {
	for _, s := range [][3]int{{67, 67, 67}, {5, 40, 700}} {
		a := Random(s[0], s[1], 1)
		b := Random(s[1], s[2], 2)
		got := Random(s[0], s[2], 3)
		want := got.Clone()
		MulAddIntoParallel(got, a, b, 4)
		MulAddInto(want, a, b)
		for i := range want.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("accumulation differs at element %d: %v != %v", i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestMulAddIntoParallelDefaultWorkers covers workers ≤ 0 (all CPUs).
func TestMulAddIntoParallelDefaultWorkers(t *testing.T) {
	a := Random(65, 65, 7)
	b := Random(65, 65, 8)
	parallelBitIdentical(t, a, b, 0)
	parallelBitIdentical(t, a, b, -3)
}

// TestMulAddIntoParallelShapePanics pins the panic contract to the
// serial kernel's.
func TestMulAddIntoParallelShapePanics(t *testing.T) {
	t.Run("inner", func(t *testing.T) {
		defer expectPanic(t, "inner dimension mismatch")
		MulAddIntoParallel(New(2, 3), New(2, 4), New(5, 3), 2)
	})
	t.Run("output", func(t *testing.T) {
		defer expectPanic(t, "output shape")
		MulAddIntoParallel(New(3, 3), New(2, 4), New(4, 3), 2)
	})
}

// TestKernelWorkerEquivalence is the `make kernel-equivalence` entry
// point, mirroring sweep-determinism: the parallel kernel must be
// byte-identical at workers ∈ {1, 2, 4, NumCPU} under the race
// detector, over shapes covering both partition axes and the serial
// degradation.
func TestKernelWorkerEquivalence(t *testing.T) {
	grid := append([]int{1, 2, 4}, runtime.NumCPU())
	for _, s := range [][3]int{
		{1, 1, 1}, {31, 17, 67}, {128, 128, 128}, {257, 64, 255},
		{5, 129, 520}, {3, 33, 1040}, {300, 2, 3},
	} {
		a := Random(s[0], s[1], uint64(s[0]*1000+s[2]))
		b := Random(s[1], s[2], uint64(s[1]*1000+s[0]))
		for _, w := range grid {
			parallelBitIdentical(t, a, b, w)
		}
	}
}

// BenchmarkMulAddIntoParallel is the n × workers grid the bench job
// archives in BENCH_pr.json: the same memory-bandwidth accounting as
// the serial kernel benchmarks, so ns/op is directly comparable to
// BenchmarkMulAddIntoTiled at workers=1.
func BenchmarkMulAddIntoParallel(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				x := Random(n, n, 42)
				y := Random(n, n, 43)
				c := New(n, n)
				b.SetBytes(int64(n) * int64(n) * int64(n) * 16)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MulAddIntoParallel(c, x, y, w)
				}
			})
		}
	}
}
