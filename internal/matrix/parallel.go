package matrix

import (
	"fmt"
	"runtime"
	"sync"
)

// MulAddIntoParallel computes c += a·b on workers host goroutines
// (workers ≤ 0 uses GOMAXPROCS) and is bit-identical to MulAddInto —
// and therefore to the naive serial loop — at every worker count.
//
// The output is partitioned by PlanOwnership: ncBlock-aligned column
// panels when the output is wide enough for every worker to own at
// least one, whole-row bands otherwise, serial execution when neither
// yields more than one non-empty slab. Each slab is written by exactly
// one worker, and the only shared state is the read-only inputs plus
// the disjoint output slabs — no atomics, no locks in the hot loop,
// one WaitGroup join at the end.
//
// The bit-identity argument is deliberately strict: every worker runs
// the serial kernel's own compiled panel loop (mulPanel → mulSpan4 /
// mulStrip) over its slab, not a re-implementation of it, and slabs
// are panel-aligned so even the SIMD kernels' vector/tail split per
// element is the one the serial traversal produces. Identical machine
// code over identical values gives identical bits — including NaN
// payloads, whose propagation through MULSD/ADDPD depends on operand
// order and therefore is NOT preserved between differently compiled
// but mathematically equal loops. Partitioning then reorders work only
// across output elements, never within one, so the result cannot
// depend on the worker count. Each worker's live panel of b (at most
// kcBlock·ncBlock·8 bytes = 256 KiB) is private to it by ownership
// and stays L2-resident exactly as in the serial kernel.
func MulAddIntoParallel(c, a, b *Dense, workers int) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: Mul inner dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: Mul output shape %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Cols))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if a.Cols == 0 {
		return // k == 0: nothing to accumulate, spawn nothing
	}
	plan := PlanOwnership(a.Rows, b.Cols, workers)
	if plan.Serial() {
		MulAddInto(c, a, b)
		return
	}
	var wg sync.WaitGroup
	for _, s := range plan.Spans[1:] {
		wg.Add(1)
		go func(s OwnershipSpan) {
			defer wg.Done()
			mulOwnedSpan(c, a, b, plan.Axis, s)
		}(s)
	}
	// The calling goroutine works span 0 instead of idling at the join.
	mulOwnedSpan(c, a, b, plan.Axis, plan.Spans[0])
	wg.Wait()
}

// mulOwnedSpan runs one worker's slab of the output.
func mulOwnedSpan(c, a, b *Dense, axis OwnershipAxis, s OwnershipSpan) {
	if axis == OwnRows {
		mulRowBand(c, a, b, s.Start, s.End)
		return
	}
	mulColPanels(c, a, b, s.Start, s.End)
}

// mulRowBand computes rows [r0, r1) of c += a·b by viewing the band as
// a zero-copy sub-matrix and delegating to the serial tiled kernel.
// Row bands partition c and a by whole rows, so the views alias
// disjoint memory, and within the band every element runs exactly the
// serial kernel's code over exactly the serial kernel's panel grid.
func mulRowBand(c, a, b *Dense, r0, r1 int) {
	m, k := b.Cols, a.Cols
	cBand := &Dense{Rows: r1 - r0, Cols: m, Data: c.Data[r0*m : r1*m]}
	aBand := &Dense{Rows: r1 - r0, Cols: k, Data: a.Data[r0*k : r1*k]}
	MulAddInto(cBand, aBand, b)
}

// mulColPanels computes columns [j0, j1) of c += a·b — a whole number
// of ncBlock-aligned column panels — with MulAddInto's own loop nest
// restricted to the slab: the same mulPanel calls, over the same
// panel boundaries (j0 and j1 are panel-aligned by PlanOwnership, so
// jj and jEnd here take exactly the values the serial traversal
// produces for these panels), against b in place. Workers pass
// overlapping whole-row slice headers but write the disjoint
// [jj, jEnd) column ranges they own.
func mulColPanels(c, a, b *Dense, j0, j1 int) {
	n, m, k := a.Rows, b.Cols, a.Cols
	for jj := j0; jj < j1; jj += ncBlock {
		jEnd := min(jj+ncBlock, j1)
		for ll := 0; ll < k; ll += kcBlock {
			lEnd := min(ll+kcBlock, k)
			for i := 0; i < n; i++ {
				arow := a.Data[i*k : (i+1)*k]
				crow := c.Data[i*m : (i+1)*m]
				mulPanel(crow, arow, b.Data, ll, lEnd, jj, jEnd, m)
			}
		}
	}
}
