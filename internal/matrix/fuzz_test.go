package matrix

import (
	"math"
	"testing"
)

// kernelSpecials is the palette of poison values the fuzzer sprinkles
// into b: infinities and NaN interact with the a==0 skip, and the
// denormals exercise gradual underflow in the accumulation.
var kernelSpecials = [...]float64{
	math.Inf(1), math.Inf(-1), math.NaN(), 5e-324, -5e-324, 2.2250738585072014e-308,
}

// FuzzKernelWorkerEquivalence fuzzes the deterministic-ownership
// contract end to end: for random shapes (including primes and
// non-tile-multiples on every axis, zero dimensions, and outputs wide
// enough to trigger the column-panel mode), random worker counts in
// 1..8, and operands seeded with zeros, Inf, NaN, and denormals, the
// parallel kernel must reproduce the serial tiled kernel bit for bit.
// The serial kernel is itself pinned to the naive triple loop by
// TestMulAddIntoBitIdentical*, so this transitively proves parallel ==
// naive at every worker count.
func FuzzKernelWorkerEquivalence(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), uint64(1))
	f.Add(uint8(31), uint8(17), uint8(4), uint8(4), uint64(42))    // primes
	f.Add(uint8(13), uint8(64), uint8(31), uint8(2), uint64(7))    // tile multiple depth
	f.Add(uint8(5), uint8(129), uint8(62), uint8(8), uint64(99))   // wide: column panels
	f.Add(uint8(0), uint8(9), uint8(3), uint8(5), uint64(3))       // zero rows
	f.Add(uint8(9), uint8(0), uint8(3), uint8(5), uint64(3))       // zero depth
	f.Add(uint8(32), uint8(5), uint8(0), uint8(3), uint64(11))     // zero cols
	f.Add(uint8(2), uint8(130), uint8(121), uint8(6), uint64(555)) // panel straddle
	f.Fuzz(func(t *testing.T, rowsRaw, kRaw, colsRaw, workersRaw uint8, seed uint64) {
		rows := int(rowsRaw) % 65
		k := int(kRaw) % 131 // straddles the kcBlock=128 depth panel
		cols := int(colsRaw) * 17 % 1091
		workers := int(workersRaw)%8 + 1

		a := Random(rows, k, seed)
		b := Random(k, cols, seed+1)
		// Deterministically sprinkle zeros into a (to gate the 4-deep
		// fast path and the skip semantics) and specials into b.
		g := rng{state: seed ^ 0x9e3779b97f4a7c15}
		for i := range a.Data {
			if g.next()%5 == 0 {
				a.Data[i] = 0
			}
		}
		for i := range b.Data {
			if g.next()%11 == 0 {
				b.Data[i] = kernelSpecials[g.next()%uint64(len(kernelSpecials))]
			}
		}

		want := New(rows, cols)
		MulAddInto(want, a, b)
		got := New(rows, cols)
		MulAddIntoParallel(got, a, b, workers)
		for i := range want.Data {
			gb, wb := math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i])
			if gb != wb {
				t.Fatalf("%dx%d · %dx%d workers=%d seed=%d: element %d: parallel %x (%v) != serial %x (%v)",
					rows, k, k, cols, workers, seed, i, gb, got.Data[i], wb, want.Data[i])
			}
		}
	})
}
