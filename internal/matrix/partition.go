package matrix

import "fmt"

// Grid is a two-dimensional arrangement of sub-blocks of a matrix, as
// distributed over a √p × √p logical processor mesh by the algorithms in
// the paper (Sections 4.1–4.3) or over the faces of the p^(1/3)-sided
// processor cube by the DNS and GK algorithms (Sections 4.5–4.6).
type Grid struct {
	GridRows, GridCols int
	Blocks             []*Dense // row-major over the grid
}

// Partition splits m into gr × gc equally sized blocks. Both dimensions
// must divide evenly, mirroring the paper's assumption that √p divides n.
func Partition(m *Dense, gr, gc int) *Grid {
	if gr <= 0 || gc <= 0 {
		panic(fmt.Sprintf("matrix: Partition grid %dx%d must be positive", gr, gc))
	}
	if m.Rows%gr != 0 || m.Cols%gc != 0 {
		panic(fmt.Sprintf("matrix: Partition %dx%d into %dx%d grid does not divide evenly", m.Rows, m.Cols, gr, gc))
	}
	h, w := m.Rows/gr, m.Cols/gc
	g := &Grid{GridRows: gr, GridCols: gc, Blocks: make([]*Dense, gr*gc)}
	for i := 0; i < gr; i++ {
		for j := 0; j < gc; j++ {
			g.Blocks[i*gc+j] = m.Block(i*h, j*w, h, w)
		}
	}
	return g
}

// Block returns the sub-block at grid position (i, j).
func (g *Grid) Block(i, j int) *Dense {
	if i < 0 || i >= g.GridRows || j < 0 || j >= g.GridCols {
		panic(fmt.Sprintf("matrix: grid index (%d,%d) out of range %dx%d", i, j, g.GridRows, g.GridCols))
	}
	return g.Blocks[i*g.GridCols+j]
}

// SetGridBlock replaces the sub-block at grid position (i, j).
func (g *Grid) SetGridBlock(i, j int, b *Dense) {
	if i < 0 || i >= g.GridRows || j < 0 || j >= g.GridCols {
		panic(fmt.Sprintf("matrix: grid index (%d,%d) out of range %dx%d", i, j, g.GridRows, g.GridCols))
	}
	g.Blocks[i*g.GridCols+j] = b
}

// Assemble reconstitutes the full matrix from the grid of blocks.
func (g *Grid) Assemble() *Dense {
	if len(g.Blocks) == 0 {
		return New(0, 0)
	}
	h, w := g.Blocks[0].Rows, g.Blocks[0].Cols
	m := New(g.GridRows*h, g.GridCols*w)
	for i := 0; i < g.GridRows; i++ {
		for j := 0; j < g.GridCols; j++ {
			b := g.Block(i, j)
			if b.Rows != h || b.Cols != w {
				panic(fmt.Sprintf("matrix: Assemble ragged block (%d,%d): %dx%d, want %dx%d", i, j, b.Rows, b.Cols, h, w))
			}
			m.SetBlock(i*h, j*w, b)
		}
	}
	return m
}

// ColumnBands splits m into s vertical bands of equal width
// (Berntsen's algorithm splits A this way, Section 4.4).
func ColumnBands(m *Dense, s int) []*Dense {
	if s <= 0 || m.Cols%s != 0 {
		panic(fmt.Sprintf("matrix: ColumnBands(%d) does not divide %d columns", s, m.Cols))
	}
	w := m.Cols / s
	out := make([]*Dense, s)
	for i := range out {
		out[i] = m.Block(0, i*w, m.Rows, w)
	}
	return out
}

// RowBands splits m into s horizontal bands of equal height
// (Berntsen's algorithm splits B this way, Section 4.4).
func RowBands(m *Dense, s int) []*Dense {
	if s <= 0 || m.Rows%s != 0 {
		panic(fmt.Sprintf("matrix: RowBands(%d) does not divide %d rows", s, m.Rows))
	}
	h := m.Rows / s
	out := make([]*Dense, s)
	for i := range out {
		out[i] = m.Block(i*h, 0, h, m.Cols)
	}
	return out
}
