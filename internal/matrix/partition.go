package matrix

import "fmt"

// Grid is a two-dimensional arrangement of sub-blocks of a matrix, as
// distributed over a √p × √p logical processor mesh by the algorithms in
// the paper (Sections 4.1–4.3) or over the faces of the p^(1/3)-sided
// processor cube by the DNS and GK algorithms (Sections 4.5–4.6).
type Grid struct {
	GridRows, GridCols int
	Blocks             []*Dense // row-major over the grid
}

// Partition splits m into gr × gc equally sized blocks. Both dimensions
// must divide evenly, mirroring the paper's assumption that √p divides n.
func Partition(m *Dense, gr, gc int) *Grid {
	if gr <= 0 || gc <= 0 {
		panic(fmt.Sprintf("matrix: Partition grid %dx%d must be positive", gr, gc))
	}
	if m.Rows%gr != 0 || m.Cols%gc != 0 {
		panic(fmt.Sprintf("matrix: Partition %dx%d into %dx%d grid does not divide evenly", m.Rows, m.Cols, gr, gc))
	}
	h, w := m.Rows/gr, m.Cols/gc
	g := &Grid{GridRows: gr, GridCols: gc, Blocks: make([]*Dense, gr*gc)}
	for i := 0; i < gr; i++ {
		for j := 0; j < gc; j++ {
			g.Blocks[i*gc+j] = m.Block(i*h, j*w, h, w)
		}
	}
	return g
}

// Block returns the sub-block at grid position (i, j).
func (g *Grid) Block(i, j int) *Dense {
	if i < 0 || i >= g.GridRows || j < 0 || j >= g.GridCols {
		panic(fmt.Sprintf("matrix: grid index (%d,%d) out of range %dx%d", i, j, g.GridRows, g.GridCols))
	}
	return g.Blocks[i*g.GridCols+j]
}

// SetGridBlock replaces the sub-block at grid position (i, j).
func (g *Grid) SetGridBlock(i, j int, b *Dense) {
	if i < 0 || i >= g.GridRows || j < 0 || j >= g.GridCols {
		panic(fmt.Sprintf("matrix: grid index (%d,%d) out of range %dx%d", i, j, g.GridRows, g.GridCols))
	}
	g.Blocks[i*g.GridCols+j] = b
}

// Assemble reconstitutes the full matrix from the grid of blocks.
func (g *Grid) Assemble() *Dense {
	if len(g.Blocks) == 0 {
		return New(0, 0)
	}
	h, w := g.Blocks[0].Rows, g.Blocks[0].Cols
	m := New(g.GridRows*h, g.GridCols*w)
	for i := 0; i < g.GridRows; i++ {
		for j := 0; j < g.GridCols; j++ {
			b := g.Block(i, j)
			if b.Rows != h || b.Cols != w {
				panic(fmt.Sprintf("matrix: Assemble ragged block (%d,%d): %dx%d, want %dx%d", i, j, b.Rows, b.Cols, h, w))
			}
			m.SetBlock(i*h, j*w, b)
		}
	}
	return m
}

// OwnershipAxis selects the dimension along which a parallel host
// kernel partitions the output matrix among workers.
type OwnershipAxis int

const (
	// OwnCols partitions the output into ncBlock-aligned column
	// panels: each worker owns a contiguous range of whole panels and
	// walks them in the serial kernel's panel order.
	OwnCols OwnershipAxis = iota
	// OwnRows partitions the output into whole-row bands — the
	// fallback when the output is too narrow to give every worker at
	// least one full column panel.
	OwnRows
)

// String names the axis for test failures and diagnostics.
func (a OwnershipAxis) String() string {
	if a == OwnCols {
		return "cols"
	}
	return "rows"
}

// OwnershipSpan is one worker's slab of the output: the half-open
// column range [Start, End) under OwnCols, or the half-open row range
// under OwnRows. Spans never overlap, so every output element is
// written by exactly one worker.
type OwnershipSpan struct{ Start, End int }

// OwnershipPlan is the static partition of an output matrix among host
// workers. It is a pure function of the output shape and the requested
// worker count — never of scheduling, load, or timing — which is what
// makes the parallel kernel's result reproducible at any worker count:
// the same element is always computed by the same (deterministic)
// accumulation loop, just possibly on a different goroutine.
type OwnershipPlan struct {
	Axis  OwnershipAxis
	Spans []OwnershipSpan // one per worker; every span is non-empty
}

// Serial reports whether the plan degenerates to the serial kernel —
// at most one worker owns the whole output, so the caller should run
// inline without spawning any goroutine.
func (p OwnershipPlan) Serial() bool { return len(p.Spans) <= 1 }

// PlanOwnership builds the ownership map for a rows×cols output and
// the requested worker count. The plan prefers ncBlock-aligned column
// panels, because a worker then reuses the serial kernel's panel
// traversal (and its L2-resident b panel) unchanged; when the output
// is too narrow for every worker to own at least one full panel
// (cols < workers·ncBlock) it falls back to whole-row bands. Worker
// counts exceeding the available panels or rows are clamped, so no
// plan ever contains an empty span and the parallel kernel never
// spawns an idle goroutine. Zero-dimension outputs and workers ≤ 1
// yield a serial plan.
func PlanOwnership(rows, cols, workers int) OwnershipPlan {
	if rows <= 0 || cols <= 0 || workers <= 1 {
		return OwnershipPlan{Axis: OwnCols}
	}
	if cols >= workers*ncBlock {
		// Column-panel mode: distribute whole ncBlock-wide panels
		// contiguously. cols ≥ workers·ncBlock guarantees panels ≥
		// workers, so every worker owns at least one panel.
		panels := (cols + ncBlock - 1) / ncBlock
		plan := OwnershipPlan{Axis: OwnCols, Spans: make([]OwnershipSpan, workers)}
		for w := 0; w < workers; w++ {
			p0, p1 := w*panels/workers, (w+1)*panels/workers
			plan.Spans[w] = OwnershipSpan{Start: p0 * ncBlock, End: min(p1*ncBlock, cols)}
		}
		return plan
	}
	// Row-band mode: contiguous whole-row bands, workers clamped to
	// the row count so every band holds at least one row.
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		return OwnershipPlan{Axis: OwnRows}
	}
	plan := OwnershipPlan{Axis: OwnRows, Spans: make([]OwnershipSpan, workers)}
	for w := 0; w < workers; w++ {
		plan.Spans[w] = OwnershipSpan{Start: w * rows / workers, End: (w + 1) * rows / workers}
	}
	return plan
}

// ColumnBands splits m into s vertical bands of equal width
// (Berntsen's algorithm splits A this way, Section 4.4).
func ColumnBands(m *Dense, s int) []*Dense {
	if s <= 0 || m.Cols%s != 0 {
		panic(fmt.Sprintf("matrix: ColumnBands(%d) does not divide %d columns", s, m.Cols))
	}
	w := m.Cols / s
	out := make([]*Dense, s)
	for i := range out {
		out[i] = m.Block(0, i*w, m.Rows, w)
	}
	return out
}

// RowBands splits m into s horizontal bands of equal height
// (Berntsen's algorithm splits B this way, Section 4.4).
func RowBands(m *Dense, s int) []*Dense {
	if s <= 0 || m.Rows%s != 0 {
		panic(fmt.Sprintf("matrix: RowBands(%d) does not divide %d rows", s, m.Rows))
	}
	h := m.Rows / s
	out := make([]*Dense, s)
	for i := range out {
		out[i] = m.Block(i*h, 0, h, m.Cols)
	}
	return out
}
