// Package matrix provides the dense matrix kernel used by every other
// package in this repository: storage, serial multiplication (the paper's
// W = n³ baseline), block extraction/insertion, and the block-partition
// maps that the parallel algorithms distribute across processors.
//
// The conventions follow the paper (Gupta & Kumar, TR 91-54): matrices
// are square in the experiments but the kernel supports rectangular
// shapes because Berntsen's algorithm and the DNS algorithm multiply
// rectangular sub-blocks internally.
//
// Dimension mismatches are programming errors and panic, following the
// convention of dense linear-algebra kernels.
package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zero matrix with r rows and c columns.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(row)))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set stores v at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// IsSquare reports whether m has the same number of rows and columns.
func (m *Dense) IsSquare() bool { return m.Rows == m.Cols }

// Add returns a + b.
func Add(a, b *Dense) *Dense {
	sameShape("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub returns a - b.
func Sub(a, b *Dense) *Dense {
	sameShape("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// AddInPlace accumulates b into a.
func (m *Dense) AddInPlace(b *Dense) {
	sameShape("AddInPlace", m, b)
	for i, v := range b.Data {
		m.Data[i] += v
	}
}

// Scale returns s·m as a new matrix.
func (m *Dense) Scale(s float64) *Dense {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = s * v
	}
	return out
}

func sameShape(op string, a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Mul returns the product a·b using the conventional O(n³) serial
// algorithm. This is the paper's problem-size baseline: W = n³ basic
// operations (one multiply plus one add counts as a unit).
func Mul(a, b *Dense) *Dense {
	c := New(a.Rows, b.Cols)
	MulAddInto(c, a, b)
	return c
}

// Panel sizes for the tiled kernel. A kcBlock×ncBlock panel of b
// (kcBlock·ncBlock·8 bytes = 256 KiB) stays resident in L2 while every
// row of a streams against it, and the 4-deep unroll over the shared
// dimension keeps each output element in a register across four
// accumulation steps instead of a load/store round trip per step.
const (
	ncBlock = 256 // columns of b/c per panel
	kcBlock = 128 // depth of the shared dimension per panel
)

// MulAddInto computes c += a·b with a cache-blocked, register-tiled
// kernel. The result is bit-identical to the naive i-k-j triple loop:
// for every output element c[i,j] the contributions a[i,l]·b[l,j] are
// accumulated in ascending l order, one rounding per step, and
// contributions with a[i,l] == 0 are skipped exactly as the naive
// kernel skips them (the skip is observable when b holds Inf or NaN).
// Tiling only reorders work *across* output elements, never within
// one, so the floating-point result cannot change.
func MulAddInto(c, a, b *Dense) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: Mul inner dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: Mul output shape %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Cols))
	}
	n, m, k := a.Rows, b.Cols, a.Cols
	for jj := 0; jj < m; jj += ncBlock {
		jEnd := min(jj+ncBlock, m)
		for ll := 0; ll < k; ll += kcBlock {
			lEnd := min(ll+kcBlock, k)
			for i := 0; i < n; i++ {
				arow := a.Data[i*k : (i+1)*k]
				crow := c.Data[i*m : (i+1)*m]
				mulPanel(crow, arow, b.Data, ll, lEnd, jj, jEnd, m)
			}
		}
	}
}

// mulPanel accumulates crow[jj:jEnd] += Σ arow[l]·b[l, jj:jEnd] for
// l in [ll, lEnd), four depth steps at a time. The fused path runs only
// when all four a-values are nonzero so the zero-skip semantics of the
// scalar loop are preserved bit for bit; mixed groups and the depth
// remainder fall back to the one-step loop.
func mulPanel(crow, arow, bdata []float64, ll, lEnd, jj, jEnd, m int) {
	l := ll
	for ; l+4 <= lEnd; l += 4 {
		av0, av1, av2, av3 := arow[l], arow[l+1], arow[l+2], arow[l+3]
		if av0 == 0 || av1 == 0 || av2 == 0 || av3 == 0 {
			mulStrip(crow, arow, bdata, l, l+4, jj, jEnd, m)
			continue
		}
		b0 := bdata[l*m+jj : l*m+jEnd]
		b1 := bdata[(l+1)*m+jj : (l+1)*m+jEnd]
		b2 := bdata[(l+2)*m+jj : (l+2)*m+jEnd]
		b3 := bdata[(l+3)*m+jj : (l+3)*m+jEnd]
		mulSpan4(crow[jj:jEnd], b0, b1, b2, b3, av0, av1, av2, av3)
	}
	if l < lEnd {
		mulStrip(crow, arow, bdata, l, lEnd, jj, jEnd, m)
	}
}

// mulStrip is the one-depth-step-at-a-time fallback; its body is the
// inner two loops of mulAddIntoNaive restricted to one column panel.
func mulStrip(crow, arow, bdata []float64, l0, l1, jj, jEnd, m int) {
	for l := l0; l < l1; l++ {
		av := arow[l]
		if av == 0 {
			continue
		}
		brow := bdata[l*m+jj : l*m+jEnd]
		cs := crow[jj:jEnd]
		for j := range cs {
			cs[j] += av * brow[j]
		}
	}
}

// mulAddIntoNaive is the original i-k-j triple loop, retained as the
// reference implementation for the differential bit-identity tests and
// benchmarks. MulAddInto must agree with it bit for bit on every input.
func mulAddIntoNaive(c, a, b *Dense) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: Mul inner dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: Mul output shape %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Cols))
	}
	n, m, k := a.Rows, b.Cols, a.Cols
	for i := 0; i < n; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*m : (i+1)*m]
		for l := 0; l < k; l++ {
			av := arow[l]
			if av == 0 {
				continue
			}
			brow := b.Data[l*m : (l+1)*m]
			for j := 0; j < m; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
}

// MulBlocked returns a·b using cache blocking with the given tile size.
// It produces the same result as Mul up to floating-point associativity.
func MulBlocked(a, b *Dense, tile int) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: MulBlocked inner dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if tile <= 0 {
		panic("matrix: MulBlocked tile must be positive")
	}
	n, m, k := a.Rows, b.Cols, a.Cols
	c := New(n, m)
	for ii := 0; ii < n; ii += tile {
		iEnd := min(ii+tile, n)
		for ll := 0; ll < k; ll += tile {
			lEnd := min(ll+tile, k)
			for jj := 0; jj < m; jj += tile {
				jEnd := min(jj+tile, m)
				for i := ii; i < iEnd; i++ {
					arow := a.Data[i*k : (i+1)*k]
					crow := c.Data[i*m : (i+1)*m]
					for l := ll; l < lEnd; l++ {
						av := arow[l]
						brow := b.Data[l*m : (l+1)*m]
						for j := jj; j < jEnd; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
	return c
}

// Transpose returns mᵀ.
func (m *Dense) Transpose() *Dense {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Block returns a copy of the h×w sub-block whose top-left corner is
// (r0, c0).
func (m *Dense) Block(r0, c0, h, w int) *Dense {
	if r0 < 0 || c0 < 0 || h < 0 || w < 0 || r0+h > m.Rows || c0+w > m.Cols {
		panic(fmt.Sprintf("matrix: Block(%d,%d,%d,%d) out of range %dx%d", r0, c0, h, w, m.Rows, m.Cols))
	}
	out := New(h, w)
	for i := 0; i < h; i++ {
		copy(out.Data[i*w:(i+1)*w], m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+w])
	}
	return out
}

// SetBlock copies b into m with its top-left corner at (r0, c0).
func (m *Dense) SetBlock(r0, c0 int, b *Dense) {
	if r0 < 0 || c0 < 0 || r0+b.Rows > m.Rows || c0+b.Cols > m.Cols {
		panic(fmt.Sprintf("matrix: SetBlock(%d,%d) of %dx%d out of range %dx%d", r0, c0, b.Rows, b.Cols, m.Rows, m.Cols))
	}
	for i := 0; i < b.Rows; i++ {
		copy(m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+b.Cols], b.Data[i*b.Cols:(i+1)*b.Cols])
	}
}

// MaxAbsDiff returns the largest absolute element-wise difference
// between a and b.
func MaxAbsDiff(a, b *Dense) float64 {
	sameShape("MaxAbsDiff", a, b)
	var max float64
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// EqualWithin reports whether every element of a and b differs by at
// most eps.
func EqualWithin(a, b *Dense, eps float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	return MaxAbsDiff(a, b) <= eps
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders small matrices for debugging; large matrices are
// summarized by shape.
func (m *Dense) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Dense(%dx%d)", m.Rows, m.Cols)
	}
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%8.4g", m.Data[i*m.Cols+j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
