package matrix

import "math"

// Structured test workloads. The paper's experiments multiply dense
// random matrices, but structured inputs catch indexing bugs random
// data can mask (a transposed block produces the same norm but a very
// different Hilbert product), and banded inputs exercise the zero-skip
// fast path of the kernels.

// Banded returns an n×n matrix with deterministic pseudo-random
// entries within the given bandwidth of the diagonal and zeros
// elsewhere (bandwidth 0 is diagonal).
func Banded(n, bandwidth int, seed uint64) *Dense {
	if bandwidth < 0 {
		panic("matrix: negative bandwidth")
	}
	m := New(n, n)
	g := rng{state: seed}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if abs(i-j) <= bandwidth {
				m.Data[i*n+j] = 2*g.float64() - 1
			}
		}
	}
	return m
}

// Bandwidth returns the smallest b such that every nonzero of m lies
// within b of the diagonal, or -1 for a non-square matrix.
func Bandwidth(m *Dense) int {
	if !m.IsSquare() {
		return -1
	}
	b := 0
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.Data[i*m.Cols+j] != 0 && abs(i-j) > b {
				b = abs(i - j)
			}
		}
	}
	return b
}

// Symmetric returns an n×n symmetric matrix with deterministic
// pseudo-random entries.
func Symmetric(n int, seed uint64) *Dense {
	m := New(n, n)
	g := rng{state: seed}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := 2*g.float64() - 1
			m.Data[i*n+j] = v
			m.Data[j*n+i] = v
		}
	}
	return m
}

// IsSymmetric reports whether m equals its transpose within eps.
func IsSymmetric(m *Dense, eps float64) bool {
	if !m.IsSquare() {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.Data[i*m.Cols+j]-m.Data[j*m.Cols+i]) > eps {
				return false
			}
		}
	}
	return true
}

// Hilbert returns the n×n Hilbert matrix H[i][j] = 1/(i+j+1) — a
// deterministic, highly structured workload whose products are very
// sensitive to index mistakes.
func Hilbert(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Data[i*n+j] = 1 / float64(i+j+1)
		}
	}
	return m
}

// Diagonal returns the n×n matrix with the given diagonal entries.
func Diagonal(diag []float64) *Dense {
	n := len(diag)
	m := New(n, n)
	for i, v := range diag {
		m.Data[i*n+i] = v
	}
	return m
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
