//go:build amd64 && !purego

package matrix

// The amd64 micro-kernels vectorize across output columns only: each
// output element still receives its four contributions in ascending
// depth order with a separate multiply and a separate add per step
// (MULPD/ADDPD, never FMA), which is exactly the rounding sequence of
// the scalar kernel on amd64. CPU dispatch therefore cannot change a
// single result bit — it only changes how many columns advance per
// instruction.

// useAVX2 selects the 4-wide AVX2 span kernel when the CPU and OS
// support it; otherwise the baseline 2-wide SSE2 kernel runs (SSE2 is
// architecturally guaranteed on amd64).
var useAVX2 = cpuHasAVX2()

// cpuHasAVX2 reports AVX2 availability, including OS XMM/YMM state
// support (OSXSAVE + XCR0). Implemented in kernel_amd64.s.
func cpuHasAVX2() bool

// mulSpan4SSE2 is the 2-wide baseline span kernel. Implemented in
// kernel_amd64.s. Slices must all share the same length.
//
//go:noescape
func mulSpan4SSE2(cs, b0, b1, b2, b3 []float64, av0, av1, av2, av3 float64)

// mulSpan4AVX2 is the 4-wide span kernel. Implemented in
// kernel_amd64.s. Slices must all share the same length.
//
//go:noescape
func mulSpan4AVX2(cs, b0, b1, b2, b3 []float64, av0, av1, av2, av3 float64)

func mulSpan4(cs, b0, b1, b2, b3 []float64, av0, av1, av2, av3 float64) {
	if useAVX2 {
		mulSpan4AVX2(cs, b0, b1, b2, b3, av0, av1, av2, av3)
		return
	}
	mulSpan4SSE2(cs, b0, b1, b2, b3, av0, av1, av2, av3)
}
