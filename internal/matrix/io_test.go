package matrix

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestReadCSVBasic(t *testing.T) {
	m, err := ReadCSV(strings.NewReader("1, 2.5, -3\n\n4,5e2,6\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{1, 2.5, -3}, {4, 500, 6}})
	if MaxAbsDiff(m, want) != 0 {
		t.Fatalf("parsed %v", m)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "empty input"},
		{"1,2\n3\n", "columns"},
		{"1,x\n", "column 2"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in)); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("input %q: err = %v, want %q", c.in, err, c.want)
		}
	}
}

func TestWriteCSVFormat(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, FromRows([][]float64{{1, -0.5}, {300, 0}})); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "1,-0.5\n300,0\n" {
		t.Fatalf("wrote %q", sb.String())
	}
}

// Property: WriteCSV then ReadCSV is the identity (FormatFloat 'g', -1
// round-trips float64 exactly).
func TestQuickCSVRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		m := Random(5, 7, seed)
		var sb strings.Builder
		if err := WriteCSV(&sb, m); err != nil {
			return false
		}
		back, err := ReadCSV(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		return MaxAbsDiff(m, back) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Fuzz seeds double as unit tests under plain `go test`; run with
// `go test -fuzz FuzzReadCSV ./internal/matrix` to explore further.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2\n3,4\n")
	f.Add("")
	f.Add("1,2\n3\n")
	f.Add("nan,inf\n1,2\n")
	f.Add(" 1 , 2 \n\n 3 , 4 \n")
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return // malformed input must error, not panic
		}
		if m.Rows <= 0 || m.Cols <= 0 || len(m.Data) != m.Rows*m.Cols {
			t.Fatalf("accepted matrix with bad shape %dx%d", m.Rows, m.Cols)
		}
		// Round trip must preserve shape.
		var sb strings.Builder
		if err := WriteCSV(&sb, m); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCSV(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Rows != m.Rows || back.Cols != m.Cols {
			t.Fatalf("round trip changed shape")
		}
	})
}
