//go:build amd64 && !purego

package matrix

import "testing"

// TestMulAddIntoBitIdenticalSSE2 forces the baseline SSE2 span kernel
// and re-runs the differential grid, so both amd64 dispatch targets are
// proven bit-identical to the naive kernel regardless of which one the
// benchmark host selects.
func TestMulAddIntoBitIdenticalSSE2(t *testing.T) {
	if !useAVX2 {
		t.Skip("host already runs the SSE2 path; covered by the main differential tests")
	}
	useAVX2 = false
	defer func() { useAVX2 = true }()
	for _, n := range kernelSizes {
		a := Random(n, n, uint64(n)*2+1)
		b := Random(n, n, uint64(n)*2+2)
		mulBitIdentical(t, a, b)
	}
}
