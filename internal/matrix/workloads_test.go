package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBandedStructure(t *testing.T) {
	m := Banded(10, 2, 7)
	if bw := Bandwidth(m); bw > 2 {
		t.Fatalf("Bandwidth = %d, want ≤ 2", bw)
	}
	// The band itself is populated (deterministic generator never
	// produces an exact zero in practice for these seeds).
	if m.At(3, 3) == 0 || m.At(3, 5) == 0 {
		t.Fatal("band entries unexpectedly zero")
	}
	if m.At(0, 5) != 0 {
		t.Fatal("entry outside band is nonzero")
	}
}

func TestBandedNegativePanics(t *testing.T) {
	defer expectPanic(t, "negative bandwidth")
	Banded(4, -1, 1)
}

func TestBandwidthCases(t *testing.T) {
	if Bandwidth(New(3, 4)) != -1 {
		t.Fatal("non-square bandwidth should be -1")
	}
	if Bandwidth(Diagonal([]float64{1, 2, 3})) != 0 {
		t.Fatal("diagonal bandwidth should be 0")
	}
	if Bandwidth(Random(6, 6, 3)) != 5 {
		t.Fatal("dense random bandwidth should be n-1")
	}
}

// Band product property: multiplying band-b₁ and band-b₂ matrices
// yields bandwidth at most b₁+b₂.
func TestQuickBandProductBandwidth(t *testing.T) {
	f := func(seed uint64, b1Raw, b2Raw uint8) bool {
		n := 12
		b1, b2 := int(b1Raw)%4, int(b2Raw)%4
		a := Banded(n, b1, seed)
		b := Banded(n, b2, seed+1)
		return Bandwidth(Mul(a, b)) <= b1+b2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetric(t *testing.T) {
	m := Symmetric(9, 4)
	if !IsSymmetric(m, 0) {
		t.Fatal("Symmetric produced an asymmetric matrix")
	}
	asym := Random(9, 9, 5)
	if IsSymmetric(asym, 0) {
		t.Fatal("random matrix misclassified as symmetric")
	}
	if IsSymmetric(New(2, 3), 0) {
		t.Fatal("rectangular misclassified as symmetric")
	}
}

// A·Aᵀ is always symmetric — and its computation goes through the full
// multiply path.
func TestQuickGramSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		a := Random(7, 5, seed)
		return IsSymmetric(Mul(a, a.Transpose()), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertKnownEntries(t *testing.T) {
	h := Hilbert(4)
	if h.At(0, 0) != 1 || h.At(1, 2) != 0.25 || math.Abs(h.At(3, 3)-1.0/7) > 1e-15 {
		t.Fatalf("Hilbert entries wrong: %v", h)
	}
	if !IsSymmetric(h, 0) {
		t.Fatal("Hilbert matrix must be symmetric")
	}
}

func TestDiagonalProduct(t *testing.T) {
	d := Diagonal([]float64{2, 3})
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	got := Mul(d, a)
	want := FromRows([][]float64{{2, 2}, {3, 3}})
	if MaxAbsDiff(got, want) != 0 {
		t.Fatalf("D·A = %v", got)
	}
}
