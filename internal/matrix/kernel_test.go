package matrix

import (
	"fmt"
	"math"
	"testing"
)

// kernelSizes is the differential grid: degenerate shapes, primes that
// never divide the panel sizes, exact panel multiples, off-by-one
// around every tile boundary, and sizes larger than one panel.
var kernelSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 17, 31, 63, 64, 65, 67, 127, 128, 129, 255, 256, 257, 300}

// mulBitIdentical runs both kernels against identical inputs and fails
// on the first output element whose bits differ.
func mulBitIdentical(t *testing.T, a, b *Dense) {
	t.Helper()
	got := New(a.Rows, b.Cols)
	want := New(a.Rows, b.Cols)
	MulAddInto(got, a, b)
	mulAddIntoNaive(want, a, b)
	for i := range want.Data {
		g, w := math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i])
		if g != w {
			t.Fatalf("%dx%d · %dx%d: element %d: tiled %x (%v) != naive %x (%v)",
				a.Rows, a.Cols, b.Rows, b.Cols, i, g, got.Data[i], w, want.Data[i])
		}
	}
}

// TestMulAddIntoBitIdenticalSquare proves the determinism contract: the
// tiled kernel reproduces the naive kernel bit for bit across square
// sizes including 1, primes, and non-tile multiples.
func TestMulAddIntoBitIdenticalSquare(t *testing.T) {
	for _, n := range kernelSizes {
		a := Random(n, n, uint64(n)*2+1)
		b := Random(n, n, uint64(n)*2+2)
		mulBitIdentical(t, a, b)
	}
}

// TestMulAddIntoBitIdenticalRectangular covers rectangular shapes with
// inner dimensions that straddle the depth-panel and unroll boundaries.
func TestMulAddIntoBitIdenticalRectangular(t *testing.T) {
	shapes := [][3]int{
		{1, 1, 1}, {1, 300, 1}, {300, 1, 300}, {3, 129, 5},
		{17, 4, 31}, {64, 127, 65}, {130, 128, 126}, {5, 257, 255},
		{2, 3, 259}, {259, 2, 3},
	}
	for _, s := range shapes {
		a := Random(s[0], s[1], 11)
		b := Random(s[1], s[2], 13)
		mulBitIdentical(t, a, b)
	}
}

// TestMulAddIntoBitIdenticalSpecialValues exercises the zero-skip
// semantics: a[i,l] == 0 must suppress the contribution even when the
// matching b row holds Inf or NaN (0·Inf would otherwise inject NaN),
// and nonzero contributions must propagate Inf/NaN identically.
func TestMulAddIntoBitIdenticalSpecialValues(t *testing.T) {
	inf, nan := math.Inf(1), math.NaN()
	for _, n := range []int{4, 7, 64, 129} {
		a := Random(n, n, 101)
		b := Random(n, n, 103)
		// Sprinkle structured zeros into a: full zero rows, zero
		// diagonal band, and zeros placed to split the 4-deep groups.
		for l := 0; l < n; l++ {
			a.Set(0, l, 0)
			if l%4 == 2 {
				a.Set(n/2, l, 0)
			}
			if l%7 == 0 {
				a.Set(n-1, l, 0)
			}
		}
		// Poison b rows that zeroed a-entries point at, plus some live rows.
		b.Set(2%n, 0, inf)
		b.Set(2%n, n-1, nan)
		if n > 4 {
			b.Set(5, 1, inf)
			b.Set(6, 2, nan)
		}
		mulBitIdentical(t, a, b)
	}
}

// TestMulAddIntoAccumulates verifies c += a·b semantics (the output is
// accumulated into, not overwritten) identically in both kernels.
func TestMulAddIntoAccumulates(t *testing.T) {
	n := 67
	a := Random(n, n, 1)
	b := Random(n, n, 2)
	got := Random(n, n, 3)
	want := got.Clone()
	MulAddInto(got, a, b)
	mulAddIntoNaive(want, a, b)
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("accumulation differs at element %d: %v != %v", i, got.Data[i], want.Data[i])
		}
	}
}

// benchMulKernel benchmarks one kernel at one square size.
func benchMulKernel(b *testing.B, n int, kernel func(c, a, b *Dense)) {
	x := Random(n, n, 42)
	y := Random(n, n, 43)
	c := New(n, n)
	b.SetBytes(int64(n) * int64(n) * int64(n) * 16) // 2 flops/element, 8 B/word
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel(c, x, y)
	}
}

// The benchmark grid: tiled vs naive at the block sizes the
// formulations actually multiply (per-rank blocks of n=256..512 sweeps)
// up to whole-problem sizes.
func BenchmarkMulAddIntoTiled(b *testing.B) {
	for _, n := range []int{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchMulKernel(b, n, MulAddInto) })
	}
}

func BenchmarkMulAddIntoNaive(b *testing.B) {
	for _, n := range []int{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchMulKernel(b, n, mulAddIntoNaive) })
	}
}
