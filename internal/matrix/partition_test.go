package matrix

import (
	"testing"
	"testing/quick"
)

func TestPartitionAssembleRoundTrip(t *testing.T) {
	a := Random(12, 8, 50)
	g := Partition(a, 3, 4)
	if g.GridRows != 3 || g.GridCols != 4 {
		t.Fatalf("grid %dx%d, want 3x4", g.GridRows, g.GridCols)
	}
	if b := g.Block(1, 2); b.Rows != 4 || b.Cols != 2 {
		t.Fatalf("block shape %dx%d, want 4x2", b.Rows, b.Cols)
	}
	back := g.Assemble()
	if MaxAbsDiff(a, back) != 0 {
		t.Fatal("Partition/Assemble round trip lost data")
	}
}

func TestPartitionBlockContents(t *testing.T) {
	a := Random(6, 6, 51)
	g := Partition(a, 2, 2)
	want := a.Block(3, 0, 3, 3)
	if MaxAbsDiff(g.Block(1, 0), want) != 0 {
		t.Fatal("grid block (1,0) does not match matrix block")
	}
}

func TestPartitionUnevenPanics(t *testing.T) {
	defer expectPanic(t, "does not divide evenly")
	Partition(New(5, 4), 2, 2)
}

func TestPartitionBadGridPanics(t *testing.T) {
	defer expectPanic(t, "must be positive")
	Partition(New(4, 4), 0, 2)
}

func TestGridIndexPanics(t *testing.T) {
	g := Partition(New(4, 4), 2, 2)
	defer expectPanic(t, "out of range")
	g.Block(2, 0)
}

func TestSetGridBlock(t *testing.T) {
	g := Partition(New(4, 4), 2, 2)
	b := Identity(2)
	g.SetGridBlock(0, 1, b)
	m := g.Assemble()
	if m.At(0, 2) != 1 || m.At(1, 3) != 1 {
		t.Fatal("SetGridBlock did not land in assembled matrix")
	}
}

func TestSetGridBlockPanics(t *testing.T) {
	g := Partition(New(4, 4), 2, 2)
	defer expectPanic(t, "out of range")
	g.SetGridBlock(0, 2, Identity(2))
}

func TestAssembleRaggedPanics(t *testing.T) {
	g := Partition(New(4, 4), 2, 2)
	g.SetGridBlock(1, 1, New(1, 1))
	defer expectPanic(t, "ragged block")
	g.Assemble()
}

func TestAssembleEmpty(t *testing.T) {
	g := &Grid{}
	m := g.Assemble()
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty grid assembled to %dx%d", m.Rows, m.Cols)
	}
}

func TestColumnBands(t *testing.T) {
	a := Random(4, 6, 60)
	bands := ColumnBands(a, 3)
	if len(bands) != 3 {
		t.Fatalf("len = %d, want 3", len(bands))
	}
	for i, b := range bands {
		if b.Rows != 4 || b.Cols != 2 {
			t.Fatalf("band %d shape %dx%d, want 4x2", i, b.Rows, b.Cols)
		}
	}
	if bands[1].At(2, 0) != a.At(2, 2) {
		t.Fatal("band content misaligned")
	}
}

func TestRowBands(t *testing.T) {
	a := Random(6, 4, 61)
	bands := RowBands(a, 2)
	if len(bands) != 2 || bands[0].Rows != 3 {
		t.Fatalf("unexpected bands %v", bands)
	}
	if bands[1].At(0, 1) != a.At(3, 1) {
		t.Fatal("row band content misaligned")
	}
}

func TestBandsPanics(t *testing.T) {
	t.Run("cols", func(t *testing.T) {
		defer expectPanic(t, "does not divide")
		ColumnBands(New(4, 5), 2)
	})
	t.Run("rows", func(t *testing.T) {
		defer expectPanic(t, "does not divide")
		RowBands(New(5, 4), 2)
	})
}

// spanCoverage asserts the spans tile [0, extent) contiguously with no
// empty span — the "every element written by exactly one worker, no
// idle goroutine" half of the ownership contract.
func spanCoverage(t *testing.T, plan OwnershipPlan, extent int) {
	t.Helper()
	at := 0
	for i, s := range plan.Spans {
		if s.Start != at {
			t.Fatalf("span %d starts at %d, want %d (spans %v)", i, s.Start, at, plan.Spans)
		}
		if s.End <= s.Start {
			t.Fatalf("span %d is empty: [%d, %d)", i, s.Start, s.End)
		}
		at = s.End
	}
	if at != extent {
		t.Fatalf("spans cover [0, %d), want [0, %d)", at, extent)
	}
}

// TestPlanOwnershipSerialDegradation: zero-dimension outputs, a single
// worker, and worker counts the shape cannot feed all degrade to the
// serial plan, so the parallel kernel spawns no goroutine at all.
func TestPlanOwnershipSerialDegradation(t *testing.T) {
	for _, c := range []struct {
		name                string
		rows, cols, workers int
	}{
		{"zero rows", 0, 64, 8},
		{"zero cols", 64, 0, 8},
		{"zero both", 0, 0, 4},
		{"one worker", 512, 512, 1},
		{"zero workers", 512, 512, 0},
		{"negative workers", 512, 512, -2},
		{"single row single panel", 1, 1, 8},
	} {
		if plan := PlanOwnership(c.rows, c.cols, c.workers); !plan.Serial() {
			t.Errorf("%s: PlanOwnership(%d, %d, %d) = %+v, want serial",
				c.name, c.rows, c.cols, c.workers, plan)
		}
	}
}

// TestPlanOwnershipColumnPanels: wide outputs split into ncBlock-
// aligned column panels, one contiguous non-empty range per worker.
func TestPlanOwnershipColumnPanels(t *testing.T) {
	for _, c := range []struct{ rows, cols, workers int }{
		{1, 512, 2}, {7, 513, 2}, {3, 1024, 4}, {100, 1100, 4}, {2, 2048, 8}, {5, 4097, 8},
	} {
		plan := PlanOwnership(c.rows, c.cols, c.workers)
		if plan.Axis != OwnCols {
			t.Fatalf("PlanOwnership(%d, %d, %d).Axis = %v, want cols", c.rows, c.cols, c.workers, plan.Axis)
		}
		if len(plan.Spans) != c.workers {
			t.Fatalf("PlanOwnership(%d, %d, %d) has %d spans, want %d",
				c.rows, c.cols, c.workers, len(plan.Spans), c.workers)
		}
		spanCoverage(t, plan, c.cols)
		for i, s := range plan.Spans {
			if s.Start%256 != 0 {
				t.Errorf("span %d start %d is not ncBlock-aligned", i, s.Start)
			}
		}
	}
}

// TestPlanOwnershipRowBandFallback: outputs too narrow for a full
// panel per worker fall back to whole-row bands, and worker counts
// exceeding the row count clamp so no span is empty.
func TestPlanOwnershipRowBandFallback(t *testing.T) {
	for _, c := range []struct{ rows, cols, workers, wantSpans int }{
		{64, 64, 4, 4},   // narrow output → row bands
		{512, 511, 2, 2}, // one column short of two panels
		{3, 300, 8, 3},   // workers > rows: clamp to 3 bands
		{1, 128, 8, 0},   // clamps to one row → serial, no spans
		{100, 255, 100, 100},
	} {
		plan := PlanOwnership(c.rows, c.cols, c.workers)
		if c.wantSpans == 0 {
			if !plan.Serial() {
				t.Fatalf("PlanOwnership(%d, %d, %d) = %+v, want serial", c.rows, c.cols, c.workers, plan)
			}
			continue
		}
		if plan.Axis != OwnRows {
			t.Fatalf("PlanOwnership(%d, %d, %d).Axis = %v, want rows", c.rows, c.cols, c.workers, plan.Axis)
		}
		if len(plan.Spans) != c.wantSpans {
			t.Fatalf("PlanOwnership(%d, %d, %d) has %d spans, want %d",
				c.rows, c.cols, c.workers, len(plan.Spans), c.wantSpans)
		}
		spanCoverage(t, plan, c.rows)
	}
}

// TestPlanOwnershipDeterministic: the plan is a pure function of the
// shape and worker count — repeated calls agree exactly.
func TestPlanOwnershipDeterministic(t *testing.T) {
	f := func(rows, cols, workers uint8) bool {
		p1 := PlanOwnership(int(rows), int(cols)*17, int(workers))
		p2 := PlanOwnership(int(rows), int(cols)*17, int(workers))
		if p1.Axis != p2.Axis || len(p1.Spans) != len(p2.Spans) {
			return false
		}
		for i := range p1.Spans {
			if p1.Spans[i] != p2.Spans[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the outer-product decomposition used by Berntsen's algorithm
// is exact: C = Σ_i A_coli · B_rowi.
func TestQuickOuterProductDecomposition(t *testing.T) {
	f := func(seed1, seed2 uint64) bool {
		a := RandomInts(6, 6, seed1)
		b := RandomInts(6, 6, seed2)
		want := Mul(a, b)
		acc := New(6, 6)
		ab := ColumnBands(a, 3)
		bb := RowBands(b, 3)
		for i := range ab {
			acc.AddInPlace(Mul(ab[i], bb[i]))
		}
		return MaxAbsDiff(acc, want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: block matrix multiply over a partition grid equals the flat
// product — the foundational identity behind every algorithm in the
// paper.
func TestQuickBlockMultiplyIdentity(t *testing.T) {
	f := func(seed1, seed2 uint64) bool {
		const n, q = 8, 4
		a := RandomInts(n, n, seed1)
		b := RandomInts(n, n, seed2)
		ga := Partition(a, q, q)
		gb := Partition(b, q, q)
		gc := Partition(New(n, n), q, q)
		for i := 0; i < q; i++ {
			for j := 0; j < q; j++ {
				for k := 0; k < q; k++ {
					MulAddInto(gc.Block(i, j), ga.Block(i, k), gb.Block(k, j))
				}
			}
		}
		return MaxAbsDiff(gc.Assemble(), Mul(a, b)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
