package matrix

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer expectPanic(t, "negative dimension")
	New(-1, 2)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("shape = %dx%d, want 0x0", m.Rows, m.Cols)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer expectPanic(t, "ragged")
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityMul(t *testing.T) {
	a := Random(7, 7, 1)
	i := Identity(7)
	if d := MaxAbsDiff(Mul(a, i), a); d != 0 {
		t.Fatalf("A·I differs from A by %v", d)
	}
	if d := MaxAbsDiff(Mul(i, a), a); d != 0 {
		t.Fatalf("I·A differs from A by %v", d)
	}
}

func TestAtSetBounds(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 1, 5)
	if m.At(1, 1) != 5 {
		t.Fatalf("At(1,1) = %v, want 5", m.At(1, 1))
	}
	defer expectPanic(t, "out of range")
	m.At(2, 0)
}

func TestCloneIndependent(t *testing.T) {
	a := Random(4, 4, 2)
	b := a.Clone()
	b.Set(0, 0, 42)
	if a.At(0, 0) == 42 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestAddSub(t *testing.T) {
	a := Random(5, 3, 3)
	b := Random(5, 3, 4)
	s := Add(a, b)
	d := Sub(s, b)
	if diff := MaxAbsDiff(d, a); diff != 0 {
		t.Fatalf("(a+b)-b differs from a by %v", diff)
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "shape mismatch")
	Add(New(2, 2), New(2, 3))
}

func TestAddInPlace(t *testing.T) {
	a := Random(3, 3, 5)
	orig := a.Clone()
	b := Random(3, 3, 6)
	a.AddInPlace(b)
	want := Add(orig, b)
	if diff := MaxAbsDiff(a, want); diff != 0 {
		t.Fatalf("AddInPlace differs by %v", diff)
	}
}

func TestScale(t *testing.T) {
	a := FromRows([][]float64{{1, -2}, {3, 0}})
	s := a.Scale(-2)
	want := FromRows([][]float64{{-2, 4}, {-6, 0}})
	if MaxAbsDiff(s, want) != 0 {
		t.Fatalf("Scale(-2) = %v", s)
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(c, want) != 0 {
		t.Fatalf("Mul = %v, want %v", c, want)
	}
}

func TestMulRectangular(t *testing.T) {
	a := Random(3, 5, 7)
	b := Random(5, 2, 8)
	c := Mul(a, b)
	if c.Rows != 3 || c.Cols != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", c.Rows, c.Cols)
	}
	// Check one entry by hand.
	var want float64
	for k := 0; k < 5; k++ {
		want += a.At(1, k) * b.At(k, 1)
	}
	if math.Abs(c.At(1, 1)-want) > 1e-12 {
		t.Fatalf("c[1,1] = %v, want %v", c.At(1, 1), want)
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer expectPanic(t, "inner dimension mismatch")
	Mul(New(2, 3), New(2, 3))
}

func TestMulAddIntoShapePanics(t *testing.T) {
	defer expectPanic(t, "output shape")
	MulAddInto(New(2, 2), New(2, 3), New(3, 3))
}

func TestMulBlockedMatchesMul(t *testing.T) {
	for _, tile := range []int{1, 2, 3, 7, 16, 100} {
		a := RandomInts(13, 9, 11)
		b := RandomInts(9, 17, 12)
		got := MulBlocked(a, b, tile)
		want := Mul(a, b)
		if d := MaxAbsDiff(got, want); d != 0 {
			t.Fatalf("tile %d: blocked differs from naive by %v", tile, d)
		}
	}
}

func TestMulBlockedBadTilePanics(t *testing.T) {
	defer expectPanic(t, "tile must be positive")
	MulBlocked(New(2, 2), New(2, 2), 0)
}

func TestTranspose(t *testing.T) {
	a := Random(4, 6, 20)
	at := a.Transpose()
	if at.Rows != 6 || at.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 6x4", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if MaxAbsDiff(at.Transpose(), a) != 0 {
		t.Fatal("double transpose is not identity")
	}
}

func TestBlockSetBlockRoundTrip(t *testing.T) {
	a := Random(8, 8, 30)
	b := a.Block(2, 3, 4, 5)
	if b.Rows != 4 || b.Cols != 5 {
		t.Fatalf("block shape %dx%d, want 4x5", b.Rows, b.Cols)
	}
	c := New(8, 8)
	c.SetBlock(2, 3, b)
	if c.At(3, 4) != a.At(3, 4) {
		t.Fatal("SetBlock did not place data at the right offset")
	}
}

func TestBlockOutOfRangePanics(t *testing.T) {
	defer expectPanic(t, "out of range")
	New(4, 4).Block(2, 2, 3, 3)
}

func TestSetBlockOutOfRangePanics(t *testing.T) {
	defer expectPanic(t, "out of range")
	New(4, 4).SetBlock(3, 3, New(2, 2))
}

func TestFrobeniusNorm(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 4}})
	if n := a.FrobeniusNorm(); n != 5 {
		t.Fatalf("FrobeniusNorm = %v, want 5", n)
	}
}

func TestEqualWithin(t *testing.T) {
	a := Random(3, 3, 40)
	b := a.Clone()
	b.Data[4] += 1e-9
	if !EqualWithin(a, b, 1e-8) {
		t.Fatal("EqualWithin(1e-8) = false, want true")
	}
	if EqualWithin(a, b, 1e-10) {
		t.Fatal("EqualWithin(1e-10) = true, want false")
	}
	if EqualWithin(a, New(3, 4), 1) {
		t.Fatal("EqualWithin across shapes = true, want false")
	}
}

func TestStringForms(t *testing.T) {
	small := FromRows([][]float64{{1, 2}})
	if !strings.Contains(small.String(), "1") {
		t.Fatalf("small String() = %q", small.String())
	}
	big := New(100, 100)
	if got := big.String(); got != "Dense(100x100)" {
		t.Fatalf("big String() = %q", got)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(6, 6, 99)
	b := Random(6, 6, 99)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("Random with same seed differs")
	}
	c := Random(6, 6, 100)
	if MaxAbsDiff(a, c) == 0 {
		t.Fatal("Random with different seed is identical")
	}
}

func TestRandomRange(t *testing.T) {
	m := Random(20, 20, 7)
	for _, v := range m.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("Random value %v outside [-1,1)", v)
		}
	}
}

func TestRandomIntsRange(t *testing.T) {
	m := RandomInts(20, 20, 7)
	for _, v := range m.Data {
		if v != math.Trunc(v) || v < -4 || v > 4 {
			t.Fatalf("RandomInts value %v outside integer [-4,4]", v)
		}
	}
}

// Property: matrix multiplication distributes over addition.
func TestQuickDistributive(t *testing.T) {
	f := func(seed1, seed2, seed3 uint64) bool {
		a := RandomInts(6, 5, seed1)
		b := RandomInts(5, 4, seed2)
		c := RandomInts(5, 4, seed3)
		left := Mul(a, Add(b, c))
		right := Add(Mul(a, b), Mul(a, c))
		return MaxAbsDiff(left, right) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestQuickTransposeProduct(t *testing.T) {
	f := func(seed1, seed2 uint64) bool {
		a := RandomInts(4, 6, seed1)
		b := RandomInts(6, 3, seed2)
		left := Mul(a, b).Transpose()
		right := Mul(b.Transpose(), a.Transpose())
		return MaxAbsDiff(left, right) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: associativity (A·B)·C = A·(B·C) with integer entries.
func TestQuickAssociative(t *testing.T) {
	f := func(seed1, seed2, seed3 uint64) bool {
		a := RandomInts(4, 4, seed1)
		b := RandomInts(4, 4, seed2)
		c := RandomInts(4, 4, seed3)
		return MaxAbsDiff(Mul(Mul(a, b), c), Mul(a, Mul(b, c))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func expectPanic(t *testing.T, substr string) {
	t.Helper()
	r := recover()
	if r == nil {
		t.Fatalf("expected panic containing %q, got none", substr)
	}
	msg, ok := r.(string)
	if !ok {
		if err, isErr := r.(error); isErr {
			msg = err.Error()
		} else {
			t.Fatalf("panic value %v (%T) is not a string", r, r)
		}
	}
	if !strings.Contains(msg, substr) {
		t.Fatalf("panic %q does not contain %q", msg, substr)
	}
}
