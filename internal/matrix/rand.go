package matrix

// Deterministic pseudo-random matrix generation. The experiments must be
// reproducible run-to-run, so the generator is a fixed splitmix64 stream
// seeded explicitly rather than math/rand's global source.

// rng is a splitmix64 generator; good enough statistical quality for
// test workloads and completely deterministic across platforms.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Random returns an r×c matrix with deterministic pseudo-random entries
// in [-1, 1) derived from seed.
func Random(rows, cols int, seed uint64) *Dense {
	m := New(rows, cols)
	g := rng{state: seed}
	for i := range m.Data {
		m.Data[i] = 2*g.float64() - 1
	}
	return m
}

// RandomInts returns an r×c matrix with deterministic pseudo-random
// small-integer entries in [-4, 4]. Integer-valued matrices make block
// algorithms bit-exactly comparable with the serial product when the
// summation order differs, because small integer sums are exact in
// float64.
func RandomInts(rows, cols int, seed uint64) *Dense {
	m := New(rows, cols)
	g := rng{state: seed}
	for i := range m.Data {
		m.Data[i] = float64(int64(g.next()%9)) - 4
	}
	return m
}
