//go:build amd64 && !purego

#include "textflag.h"

// func cpuHasAVX2() bool
//
// AVX2 requires: CPUID max leaf >= 7, CPUID.1:ECX OSXSAVE(27)+AVX(28),
// XCR0 XMM(1)+YMM(2) enabled by the OS, and CPUID.(7,0):EBX AVX2(5).
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	MOVB $0, ret+0(FP)

	// max basic leaf must reach 7
	MOVL $0, AX
	MOVL $0, CX
	CPUID
	CMPL AX, $7
	JL   done

	// OSXSAVE and AVX in CPUID.1:ECX
	MOVL $1, AX
	MOVL $0, CX
	CPUID
	MOVL CX, DX
	ANDL $(1<<27 | 1<<28), DX
	CMPL DX, $(1<<27 | 1<<28)
	JNE  done

	// OS must enable XMM and YMM state in XCR0
	MOVL   $0, CX
	XGETBV
	ANDL   $6, AX
	CMPL   AX, $6
	JNE    done

	// AVX2 in CPUID.(7,0):EBX
	MOVL $7, AX
	MOVL $0, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   done
	MOVB $1, ret+0(FP)

done:
	RET

// func mulSpan4SSE2(cs, b0, b1, b2, b3 []float64, av0, av1, av2, av3 float64)
//
// cs[j] += av0*b0[j]; cs[j] += av1*b1[j]; cs[j] += av2*b2[j];
// cs[j] += av3*b3[j] — separate MULPD and ADDPD per step (two
// roundings, ascending depth order), two columns per vector.
TEXT ·mulSpan4SSE2(SB), NOSPLIT, $0-152
	MOVQ cs_base+0(FP), DI
	MOVQ cs_len+8(FP), CX
	MOVQ b0_base+24(FP), SI
	MOVQ b1_base+48(FP), R8
	MOVQ b2_base+72(FP), R9
	MOVQ b3_base+96(FP), R10

	// broadcast the four multipliers into both lanes
	MOVSD    av0+120(FP), X0
	UNPCKLPD X0, X0
	MOVSD    av1+128(FP), X1
	UNPCKLPD X1, X1
	MOVSD    av2+136(FP), X2
	UNPCKLPD X2, X2
	MOVSD    av3+144(FP), X3
	UNPCKLPD X3, X3

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

sse_loop4:
	CMPQ   AX, DX
	JGE    sse_tail2
	MOVUPD (DI)(AX*8), X4
	MOVUPD 16(DI)(AX*8), X5
	MOVUPD (SI)(AX*8), X6
	MULPD  X0, X6
	ADDPD  X6, X4
	MOVUPD 16(SI)(AX*8), X7
	MULPD  X0, X7
	ADDPD  X7, X5
	MOVUPD (R8)(AX*8), X6
	MULPD  X1, X6
	ADDPD  X6, X4
	MOVUPD 16(R8)(AX*8), X7
	MULPD  X1, X7
	ADDPD  X7, X5
	MOVUPD (R9)(AX*8), X6
	MULPD  X2, X6
	ADDPD  X6, X4
	MOVUPD 16(R9)(AX*8), X7
	MULPD  X2, X7
	ADDPD  X7, X5
	MOVUPD (R10)(AX*8), X6
	MULPD  X3, X6
	ADDPD  X6, X4
	MOVUPD 16(R10)(AX*8), X7
	MULPD  X3, X7
	ADDPD  X7, X5
	MOVUPD X4, (DI)(AX*8)
	MOVUPD X5, 16(DI)(AX*8)
	ADDQ   $4, AX
	JMP    sse_loop4

sse_tail2:
	MOVQ   CX, DX
	ANDQ   $-2, DX
	CMPQ   AX, DX
	JGE    sse_tail1
	MOVUPD (DI)(AX*8), X4
	MOVUPD (SI)(AX*8), X6
	MULPD  X0, X6
	ADDPD  X6, X4
	MOVUPD (R8)(AX*8), X6
	MULPD  X1, X6
	ADDPD  X6, X4
	MOVUPD (R9)(AX*8), X6
	MULPD  X2, X6
	ADDPD  X6, X4
	MOVUPD (R10)(AX*8), X6
	MULPD  X3, X6
	ADDPD  X6, X4
	MOVUPD X4, (DI)(AX*8)
	ADDQ   $2, AX

sse_tail1:
	CMPQ  AX, CX
	JGE   sse_done
	MOVSD (DI)(AX*8), X4
	MOVSD (SI)(AX*8), X6
	MULSD X0, X6
	ADDSD X6, X4
	MOVSD (R8)(AX*8), X6
	MULSD X1, X6
	ADDSD X6, X4
	MOVSD (R9)(AX*8), X6
	MULSD X2, X6
	ADDSD X6, X4
	MOVSD (R10)(AX*8), X6
	MULSD X3, X6
	ADDSD X6, X4
	MOVSD X4, (DI)(AX*8)
	ADDQ  $1, AX
	JMP   sse_tail1

sse_done:
	RET

// func mulSpan4AVX2(cs, b0, b1, b2, b3 []float64, av0, av1, av2, av3 float64)
//
// Same operation sequence as mulSpan4SSE2 (separate VMULPD and VADDPD
// per step, never FMA), four columns per vector, eight per iteration.
TEXT ·mulSpan4AVX2(SB), NOSPLIT, $0-152
	MOVQ cs_base+0(FP), DI
	MOVQ cs_len+8(FP), CX
	MOVQ b0_base+24(FP), SI
	MOVQ b1_base+48(FP), R8
	MOVQ b2_base+72(FP), R9
	MOVQ b3_base+96(FP), R10

	VBROADCASTSD av0+120(FP), Y0
	VBROADCASTSD av1+128(FP), Y1
	VBROADCASTSD av2+136(FP), Y2
	VBROADCASTSD av3+144(FP), Y3

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

avx_loop8:
	CMPQ    AX, DX
	JGE     avx_tail4
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y5
	VMULPD  (SI)(AX*8), Y0, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  32(SI)(AX*8), Y0, Y7
	VADDPD  Y7, Y5, Y5
	VMULPD  (R8)(AX*8), Y1, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  32(R8)(AX*8), Y1, Y7
	VADDPD  Y7, Y5, Y5
	VMULPD  (R9)(AX*8), Y2, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  32(R9)(AX*8), Y2, Y7
	VADDPD  Y7, Y5, Y5
	VMULPD  (R10)(AX*8), Y3, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  32(R10)(AX*8), Y3, Y7
	VADDPD  Y7, Y5, Y5
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	ADDQ    $8, AX
	JMP     avx_loop8

avx_tail4:
	MOVQ    CX, DX
	ANDQ    $-4, DX
	CMPQ    AX, DX
	JGE     avx_scalar
	VMOVUPD (DI)(AX*8), Y4
	VMULPD  (SI)(AX*8), Y0, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  (R8)(AX*8), Y1, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  (R9)(AX*8), Y2, Y6
	VADDPD  Y6, Y4, Y4
	VMULPD  (R10)(AX*8), Y3, Y6
	VADDPD  Y6, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ    $4, AX

avx_scalar:
	VZEROUPPER

avx_tail1:
	CMPQ  AX, CX
	JGE   avx_done
	MOVSD (DI)(AX*8), X4
	MOVSD (SI)(AX*8), X6
	MULSD X0, X6
	ADDSD X6, X4
	MOVSD (R8)(AX*8), X6
	MULSD X1, X6
	ADDSD X6, X4
	MOVSD (R9)(AX*8), X6
	MULSD X2, X6
	ADDSD X6, X4
	MOVSD (R10)(AX*8), X6
	MULSD X3, X6
	ADDSD X6, X4
	MOVSD X4, (DI)(AX*8)
	ADDQ  $1, AX
	JMP   avx_tail1

avx_done:
	RET
