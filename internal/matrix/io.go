package matrix

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV parses a matrix from comma-separated rows (whitespace around
// values is ignored; blank lines are skipped). All rows must have the
// same number of columns.
func ReadCSV(r io.Reader) (*Dense, error) {
	var rows [][]float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		row := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("matrix: line %d, column %d: %w", lineNo, i+1, err)
			}
			row[i] = v
		}
		if len(rows) > 0 && len(row) != len(rows[0]) {
			return nil, fmt.Errorf("matrix: line %d has %d columns, want %d", lineNo, len(row), len(rows[0]))
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("matrix: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("matrix: empty input")
	}
	return FromRows(rows), nil
}

// WriteCSV writes m as comma-separated rows using the shortest exact
// float representation.
func WriteCSV(w io.Writer, m *Dense) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return fmt.Errorf("matrix: %w", err)
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(m.Data[i*m.Cols+j], 'g', -1, 64)); err != nil {
				return fmt.Errorf("matrix: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("matrix: %w", err)
		}
	}
	return bw.Flush()
}
