package simulator

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"matscale/internal/machine"
)

func metricsMachine(p int, ts, tw float64) *machine.Machine {
	m := machine.Hypercube(p, ts, tw)
	m.CollectMetrics = true
	return m
}

func TestMetricsNilWithoutFlag(t *testing.T) {
	res, err := Run(machine.Hypercube(2, 1, 1), func(p *Proc) {
		p.Compute(10)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != nil {
		t.Fatalf("Metrics = %+v, want nil without CollectMetrics", res.Metrics)
	}
}

func TestMetricsRankBreakdown(t *testing.T) {
	// Rank 0 computes 5, sends 3 words (cost ts + 3·tw = 10 + 6 = 16);
	// rank 1 waits for the message (arrival 21) then computes 4.
	res, err := Run(metricsMachine(2, 10, 2), func(p *Proc) {
		if p.Rank() == 0 {
			p.Compute(5)
			p.Send(1, 1, []float64{1, 2, 3})
		} else {
			p.Recv(0, 1)
			p.Compute(4)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	mt := res.Metrics
	if mt == nil {
		t.Fatal("Metrics nil with CollectMetrics set")
	}
	if mt.P != 2 || mt.Tp != res.Tp {
		t.Fatalf("P=%d Tp=%v, want 2, %v", mt.P, mt.Tp, res.Tp)
	}
	r0, r1 := mt.Ranks[0], mt.Ranks[1]
	if r0.Compute != 5 || r0.Send != 16 || r0.RecvWait != 0 {
		t.Fatalf("rank 0 = %+v", r0)
	}
	if r1.Compute != 4 || r1.Send != 0 || r1.RecvWait != 21 {
		t.Fatalf("rank 1 = %+v", r1)
	}
	// Per-rank budget: Compute + Send + Idle == Tp.
	for _, r := range mt.Ranks {
		if got := r.Compute + r.Send + r.Idle; got != mt.Tp {
			t.Fatalf("rank %d: compute+send+idle = %v, want Tp = %v", r.Rank, got, mt.Tp)
		}
	}
	if r0.MsgsSent != 1 || r0.WordsSent != 3 || r1.MsgsRecvd != 1 || r1.WordsRecvd != 3 {
		t.Fatalf("counts: %+v / %+v", r0, r1)
	}
}

func TestMetricsLinksChargedOnly(t *testing.T) {
	// One charged send 0→1 and one free (bookkeeping) send 1→0: only
	// the charged link may appear.
	res, err := Run(metricsMachine(2, 10, 2), func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, []float64{1, 2})
			p.Recv(1, 2)
		} else {
			p.Recv(0, 1)
			p.SendFree(0, 2, []float64{9})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	links := res.Metrics.Links
	if len(links) != 1 {
		t.Fatalf("links = %+v, want exactly the charged 0→1 link", links)
	}
	l := links[0]
	if l.From != 0 || l.To != 1 || l.Msgs != 1 || l.Words != 2 || l.Busy != 14 {
		t.Fatalf("link = %+v", l)
	}
	if got := l.Utilization(res.Tp); got != 14/res.Tp {
		t.Fatalf("utilization = %v", got)
	}
	// The free send still counts in the per-rank message totals.
	if r1 := res.Metrics.Ranks[1]; r1.MsgsSent != 1 || r1.WordsSent != 1 {
		t.Fatalf("rank 1 free-send counts = %+v", r1)
	}
}

func TestMetricsSendMultiChargesEachLink(t *testing.T) {
	// All-port: sender is charged max individual cost, but each link
	// records its own transfer time.
	m := metricsMachine(4, 10, 2)
	m.AllPort = true
	res, err := Run(m, func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.SendMulti([]Transfer{
				{Dst: 1, Tag: 1, Data: []float64{1}},
				{Dst: 2, Tag: 1, Data: []float64{1, 2, 3}},
			})
		case 1:
			p.Recv(0, 1)
		case 2:
			p.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	r0 := res.Metrics.Ranks[0]
	if r0.Send != 16 { // max(10+2, 10+6)
		t.Fatalf("all-port SendMulti charge = %v, want 16", r0.Send)
	}
	var l01, l02 *LinkMetrics
	for i := range res.Metrics.Links {
		l := &res.Metrics.Links[i]
		if l.From == 0 && l.To == 1 {
			l01 = l
		}
		if l.From == 0 && l.To == 2 {
			l02 = l
		}
	}
	if l01 == nil || l02 == nil {
		t.Fatalf("links = %+v", res.Metrics.Links)
	}
	if l01.Busy != 12 || l02.Busy != 16 {
		t.Fatalf("link busy = %v, %v; want 12, 16", l01.Busy, l02.Busy)
	}
}

func TestMetricsDerivedQuantities(t *testing.T) {
	res, err := Run(metricsMachine(2, 0, 1), func(p *Proc) {
		if p.Rank() == 0 {
			p.Compute(30)
		} else {
			p.Compute(10)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	mt := res.Metrics
	if mt.TotalCompute() != 40 || mt.TotalComm() != 0 {
		t.Fatalf("totals: compute=%v comm=%v", mt.TotalCompute(), mt.TotalComm())
	}
	if mt.TotalIdle() != 20 { // rank 1 waits 20 for rank 0 to finish
		t.Fatalf("TotalIdle = %v, want 20", mt.TotalIdle())
	}
	if mt.CriticalRank() != 0 {
		t.Fatalf("CriticalRank = %d, want 0", mt.CriticalRank())
	}
	if got := mt.LoadImbalance(); got != 1.5 { // max 30 over mean 20
		t.Fatalf("LoadImbalance = %v, want 1.5", got)
	}
	// To = p·Tp − W = 2·30 − 40 = 20 = TotalIdle here (no comm).
	if got := mt.Overhead(40); got != 20 {
		t.Fatalf("Overhead = %v, want 20", got)
	}
}

func TestMetricsCSV(t *testing.T) {
	res, err := Run(metricsMachine(2, 10, 2), func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, []float64{1})
		} else {
			p.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var ranks, links bytes.Buffer
	if err := res.Metrics.WriteRanksCSV(&ranks); err != nil {
		t.Fatal(err)
	}
	if err := res.Metrics.WriteLinksCSV(&links); err != nil {
		t.Fatal(err)
	}
	rl := strings.Split(strings.TrimSpace(ranks.String()), "\n")
	if len(rl) != 3 || !strings.HasPrefix(rl[0], "rank,compute,send") {
		t.Fatalf("ranks CSV:\n%s", ranks.String())
	}
	ll := strings.Split(strings.TrimSpace(links.String()), "\n")
	if len(ll) != 2 || !strings.HasPrefix(ll[0], "from,to,msgs") {
		t.Fatalf("links CSV:\n%s", links.String())
	}
}

func TestChromeTraceRoundTrips(t *testing.T) {
	m := machine.Hypercube(2, 10, 2)
	res, tr, err := RunTraced(m, func(p *Proc) {
		if p.Rank() == 0 {
			p.Compute(5)
			p.Send(1, 1, []float64{1, 2})
		} else {
			p.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	var kinds = map[string]bool{}
	for _, e := range doc.TraceEvents {
		kinds[e.Ph] = true
	}
	if !kinds["X"] || !kinds["M"] {
		t.Fatalf("missing complete/metadata events; phases seen: %v", kinds)
	}
	if res.Trace == nil {
		t.Fatal("RunTraced result did not retain the trace")
	}
}

func TestMetricsZeroCostOnSimulation(t *testing.T) {
	body := func(p *Proc) {
		if p.Rank() == 0 {
			p.Compute(7)
			p.Send(1, 1, []float64{1, 2, 3})
		} else {
			p.Recv(0, 1)
			p.Compute(3)
		}
	}
	plain, err := Run(machine.Hypercube(2, 10, 2), body)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Run(metricsMachine(2, 10, 2), body)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Tp != observed.Tp || plain.Messages != observed.Messages || plain.Words != observed.Words {
		t.Fatalf("observability changed the simulation: %+v vs %+v", plain, observed)
	}
}
