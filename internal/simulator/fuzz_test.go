package simulator

import (
	"testing"
	"testing/quick"

	"matscale/internal/machine"
)

// randomProgram builds a deterministic, deadlock-free message-passing
// program from a seed: R rounds, each a permutation route (send to
// rank+stride, receive from rank−stride) with seed-derived compute and
// message sizes. Every send happens before the matching receive is
// awaited, so the program can never deadlock.
func randomProgram(seed uint64, p, rounds int) func(*Proc) {
	return func(pr *Proc) {
		state := seed ^ uint64(pr.Rank())*0x9e3779b97f4a7c15
		next := func() uint64 {
			state = state*6364136223846793005 + 1442695040888963407
			return state >> 33
		}
		for r := 0; r < rounds; r++ {
			stride := int(seed>>uint(r%8))%(p-1) + 1
			words := int(next() % 64)
			pr.Compute(float64(next() % 1000))
			pr.Send((pr.Rank()+stride)%p, r, make([]float64, words))
			pr.Recv((pr.Rank()+p-stride)%p, r)
		}
	}
}

// Property: random permutation-routing programs always complete, are
// deterministic in virtual time, and conserve messages.
func TestQuickRandomProgramsComplete(t *testing.T) {
	f := func(seedRaw uint16, pExp uint8) bool {
		seed := uint64(seedRaw) + 1
		p := 1 << (2 + pExp%4) // 4..32 processors
		const rounds = 6
		m := machine.Hypercube(p, 7, 2)
		first, err := Run(m, randomProgram(seed, p, rounds))
		if err != nil {
			t.Logf("seed %d p %d: %v", seed, p, err)
			return false
		}
		if first.Messages != p*rounds {
			t.Logf("seed %d p %d: %d messages, want %d", seed, p, first.Messages, p*rounds)
			return false
		}
		again, err := Run(m, randomProgram(seed, p, rounds))
		if err != nil || again.Tp != first.Tp || again.Words != first.Words {
			t.Logf("seed %d p %d: nondeterministic (%v vs %v)", seed, p, again.Tp, first.Tp)
			return false
		}
		// Tp can never be below any processor's own busy time.
		for i := range first.ProcClocks {
			if first.ProcClocks[i] > first.Tp {
				return false
			}
			if first.ProcCompute[i]+first.ProcComm[i] > first.ProcClocks[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: inserting zero-cost barriers anywhere in a program never
// changes the data outcome and never *reduces* the measured Tp.
func TestQuickBarriersOnlySlowDown(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := uint64(seedRaw) + 1
		const p, rounds = 8, 4
		m := machine.Hypercube(p, 5, 1)
		plain, err := Run(m, randomProgram(seed, p, rounds))
		if err != nil {
			return false
		}
		group := make([]int, p)
		for i := range group {
			group[i] = i
		}
		barriered, err := Run(m, func(pr *Proc) {
			state := seed ^ uint64(pr.Rank())*0x9e3779b97f4a7c15
			next := func() uint64 {
				state = state*6364136223846793005 + 1442695040888963407
				return state >> 33
			}
			for r := 0; r < rounds; r++ {
				stride := int(seed>>uint(r%8))%(p-1) + 1
				words := int(next() % 64)
				pr.Compute(float64(next() % 1000))
				pr.Send((pr.Rank()+stride)%p, r, make([]float64, words))
				pr.Recv((pr.Rank()+p-stride)%p, r)
				// Zero-cost barrier after each round.
				if pr.Rank() == 0 {
					for i := 1; i < p; i++ {
						pr.Recv(i, 1000+r)
					}
					for i := 1; i < p; i++ {
						pr.SendFree(i, 2000+r, nil)
					}
				} else {
					pr.SendFree(0, 1000+r, nil)
					pr.Recv(0, 2000+r)
				}
			}
		})
		if err != nil {
			return false
		}
		return barriered.Tp >= plain.Tp-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
