package simulator

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"matscale/internal/faults"
	"matscale/internal/machine"
)

// randomProgram builds a deterministic, deadlock-free message-passing
// program from a seed: R rounds, each a permutation route (send to
// rank+stride, receive from rank−stride) with seed-derived compute and
// message sizes. Every send happens before the matching receive is
// awaited, so the program can never deadlock.
func randomProgram(seed uint64, p, rounds int) func(*Proc) {
	return func(pr *Proc) {
		state := seed ^ uint64(pr.Rank())*0x9e3779b97f4a7c15
		next := func() uint64 {
			state = state*6364136223846793005 + 1442695040888963407
			return state >> 33
		}
		for r := 0; r < rounds; r++ {
			stride := int(seed>>uint(r%8))%(p-1) + 1
			words := int(next() % 64)
			pr.Compute(float64(next() % 1000))
			pr.Send((pr.Rank()+stride)%p, r, make([]float64, words))
			pr.Recv((pr.Rank()+p-stride)%p, r)
		}
	}
}

// Property: random permutation-routing programs always complete, are
// deterministic in virtual time, and conserve messages.
func TestQuickRandomProgramsComplete(t *testing.T) {
	f := func(seedRaw uint16, pExp uint8) bool {
		seed := uint64(seedRaw) + 1
		p := 1 << (2 + pExp%4) // 4..32 processors
		const rounds = 6
		m := machine.Hypercube(p, 7, 2)
		first, err := Run(m, randomProgram(seed, p, rounds))
		if err != nil {
			t.Logf("seed %d p %d: %v", seed, p, err)
			return false
		}
		if first.Messages != p*rounds {
			t.Logf("seed %d p %d: %d messages, want %d", seed, p, first.Messages, p*rounds)
			return false
		}
		again, err := Run(m, randomProgram(seed, p, rounds))
		if err != nil || again.Tp != first.Tp || again.Words != first.Words {
			t.Logf("seed %d p %d: nondeterministic (%v vs %v)", seed, p, again.Tp, first.Tp)
			return false
		}
		// Tp can never be below any processor's own busy time.
		for i := range first.ProcClocks {
			if first.ProcClocks[i] > first.Tp {
				return false
			}
			if first.ProcCompute[i]+first.ProcComm[i] > first.ProcClocks[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: inserting zero-cost barriers anywhere in a program never
// changes the data outcome and never *reduces* the measured Tp.
func TestQuickBarriersOnlySlowDown(t *testing.T) {
	f := func(seedRaw uint16) bool {
		seed := uint64(seedRaw) + 1
		const p, rounds = 8, 4
		m := machine.Hypercube(p, 5, 1)
		plain, err := Run(m, randomProgram(seed, p, rounds))
		if err != nil {
			return false
		}
		group := make([]int, p)
		for i := range group {
			group[i] = i
		}
		barriered, err := Run(m, func(pr *Proc) {
			state := seed ^ uint64(pr.Rank())*0x9e3779b97f4a7c15
			next := func() uint64 {
				state = state*6364136223846793005 + 1442695040888963407
				return state >> 33
			}
			for r := 0; r < rounds; r++ {
				stride := int(seed>>uint(r%8))%(p-1) + 1
				words := int(next() % 64)
				pr.Compute(float64(next() % 1000))
				pr.Send((pr.Rank()+stride)%p, r, make([]float64, words))
				pr.Recv((pr.Rank()+p-stride)%p, r)
				// Zero-cost barrier after each round.
				if pr.Rank() == 0 {
					for i := 1; i < p; i++ {
						pr.Recv(i, 1000+r)
					}
					for i := 1; i < p; i++ {
						pr.SendFree(i, 2000+r, nil)
					}
				} else {
					pr.SendFree(0, 1000+r, nil)
					pr.Recv(0, 2000+r)
				}
			}
		})
		if err != nil {
			return false
		}
		return barriered.Tp >= plain.Tp-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// FuzzRandomPrograms drives the simulator with seed-derived
// permutation-routing programs: every run must complete, conserve
// messages, and reproduce its own virtual times exactly.
func FuzzRandomPrograms(f *testing.F) {
	f.Add(uint16(1), uint8(0))
	f.Add(uint16(999), uint8(2))
	f.Add(uint16(31337), uint8(3))
	f.Fuzz(func(t *testing.T, seedRaw uint16, pExp uint8) {
		seed := uint64(seedRaw) + 1
		p := 1 << (2 + pExp%4) // 4..32 processors
		const rounds = 4
		m := machine.Hypercube(p, 7, 2)
		first, err := Run(m, randomProgram(seed, p, rounds))
		if err != nil {
			t.Fatalf("seed %d p %d: %v", seed, p, err)
		}
		if first.Messages != p*rounds {
			t.Fatalf("seed %d p %d: %d messages, want %d", seed, p, first.Messages, p*rounds)
		}
		again, err := Run(m, randomProgram(seed, p, rounds))
		if err != nil || again.Tp != first.Tp || again.Words != first.Words {
			t.Fatalf("seed %d p %d: nondeterministic (%v vs %v, err %v)", seed, p, again.Tp, first.Tp, err)
		}
	})
}

// FuzzFaultedPrograms drives the simulator under fuzzed fault
// configurations: whatever the perturbation, a completed run must keep
// the per-rank accounting identity compute + send + idle == Tp, never
// lose or duplicate data, and serialize to byte-identical metrics when
// repeated. Runs that exhaust the retry budget must fail cleanly.
func FuzzFaultedPrograms(f *testing.F) {
	f.Add(uint16(1), uint64(42), uint8(20), uint8(1), uint8(50))
	f.Add(uint16(7), uint64(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint16(50), uint64(9), uint8(90), uint8(4), uint8(200))
	f.Fuzz(func(t *testing.T, seedRaw uint16, fseed uint64, lossPct, stragglerRank, stragglerTenths uint8) {
		seed := uint64(seedRaw) + 1
		const p, rounds = 8, 4
		fc := &faults.Config{
			Seed:       fseed,
			Loss:       float64(lossPct%95) / 100,
			Stragglers: map[int]float64{int(stragglerRank) % p: 1 + float64(stragglerTenths)/10},
			Jitter:     float64(fseed % 5 * 10 / 100),
		}
		if err := fc.Validate(); err != nil {
			t.Skip()
		}
		m := machine.Hypercube(p, 7, 2)
		m.CollectMetrics = true
		m.Faults = fc
		first, err := Run(m, randomProgram(seed, p, rounds))
		if err != nil {
			return // retry-budget exhaustion is a legitimate, clean failure
		}
		for _, r := range first.Metrics.Ranks {
			sum := r.Compute + r.Send + r.Idle
			if math.Abs(sum-first.Tp) > 1e-9*math.Max(1, first.Tp) {
				t.Fatalf("rank %d: compute+send+idle = %v, Tp = %v", r.Rank, sum, first.Tp)
			}
		}
		if first.Messages != p*rounds {
			t.Fatalf("%d messages, want %d", first.Messages, p*rounds)
		}
		again, err := Run(m, randomProgram(seed, p, rounds))
		if err != nil {
			t.Fatalf("rerun failed: %v", err)
		}
		var b1, b2 bytes.Buffer
		if err := first.Metrics.WriteRanksCSV(&b1); err != nil {
			t.Fatal(err)
		}
		if err := again.Metrics.WriteRanksCSV(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("faulted rerun metrics differ")
		}
	})
}
