package simulator

import (
	"fmt"
	"sort"

	"matscale/internal/machine"
)

// Message is one delivered payload with its virtual arrival time — the
// unit of exchange between a Proc and the Engine that carries its
// messages.
type Message struct {
	Data    []float64
	Arrival float64
}

// Engine is the messaging and scheduling substrate a Proc runs on. The
// charging, fault, metrics and trace logic all live in Proc and are
// shared by every backend; an Engine only moves payloads, suspends
// receivers until their message exists, and arbitrates link contention.
//
// Two engines implement it: the goroutine backend in this package
// (one free-running goroutine per rank, blocking mailboxes) and the
// discrete-event backend in internal/des (a central virtual-time event
// loop resuming rank coroutines). Because every virtual-time quantity
// is computed by the shared Proc code, the two backends produce
// byte-identical results for a fixed configuration; the differential
// suite asserts this for all formulations (see docs/BACKENDS.md).
type Engine interface {
	// Deliver enqueues msg from src under the matching key (dst, tag).
	// Ownership of msg.Data passes to the engine and ultimately to the
	// receiver. Matching is FIFO per (src, tag) pair.
	Deliver(src, dst, tag int, msg Message)
	// Await returns the next message from (src, tag) addressed to rank,
	// suspending the calling processor until one is available. When the
	// run has failed it does not return: it panics with the package's
	// abort value (see AbortPanic), unwinding the processor body.
	Await(rank, src, tag int) Message
	// ContendedArrival advances a transfer of words over route
	// (starting at src at virtual time start), serializing on busy
	// links, and returns the arrival time. Only called when the machine
	// has TrackContention set.
	ContendedArrival(src int, route []int, start float64, words int) float64
	// Abort fails the run with err, releases every other processor, and
	// unwinds the caller by panicking with the package's abort value.
	// It does not return.
	Abort(err error)
	// GetBuf returns a pooled buffer of capacity at least n from the
	// run-wide overflow tier, or nil when none is available; PutBuf
	// parks a consumed buffer there. The rank-private pool tier lives
	// in the Proc.
	GetBuf(n int) []float64
	PutBuf(b []float64)
}

// RunFunc executes body on every processor of m under some engine and
// collects timing — the signature alternative backends register under
// their machine.Backend value.
type RunFunc func(m *machine.Machine, body func(*Proc), collectTrace bool) (*Result, error)

// backends maps a machine.Backend to its registered runner. The
// goroutine backend is built in; others (internal/des) install
// themselves from an init function, so the map is written before any
// simulation starts and read-only afterwards.
var backends = map[machine.Backend]RunFunc{}

// RegisterBackend installs the runner for backend b. It is intended to
// be called from an init function of the package implementing the
// backend; a later registration for the same value replaces the
// earlier one.
func RegisterBackend(b machine.Backend, fn RunFunc) {
	backends[b] = fn
}

// dispatch routes a validated run to the engine the machine selects.
// A machine carrying a CheckpointControl is routed to the backend's
// checkpoint-capable runner; a backend without one rejects the run
// with a typed error rather than silently ignoring the control.
func dispatch(m *machine.Machine, body func(*Proc), collectTrace bool) (*Result, error) {
	if m.Checkpoint != nil {
		fn := checkpointBackends[m.Backend]
		if fn == nil {
			return nil, &UnsupportedCapabilityError{
				Backend:    m.Backend,
				Capability: "checkpoint/resume",
				Reason:     "its state has no deterministic consistent cut; use the events backend, or checkpoint at sweep-cell granularity",
			}
		}
		return fn(m, body, collectTrace)
	}
	if m.Backend == machine.BackendGoroutines {
		return runInternal(m, body, collectTrace)
	}
	fn := backends[m.Backend]
	if fn == nil {
		return nil, fmt.Errorf("simulator: backend %q is not linked into this binary", m.Backend)
	}
	return fn(m, body, collectTrace)
}

// AdvanceRoute advances a transfer of words over route (starting at
// src at virtual time t), serializing on links recorded busy in links,
// and returns the arrival time, updating links in place. Under
// store-and-forward routing each hop is charged and claimed
// individually; under cut-through the whole path is claimed for one
// transfer time. It is the one contention-tracking computation, shared
// by every engine so that TrackContention runs are backend-identical.
// Callers own the synchronization of links.
func AdvanceRoute(m *machine.Machine, links map[[2]int]float64, src int, route []int, t float64, words int) float64 {
	if len(route) == 0 {
		return t
	}
	dst := route[len(route)-1]
	if m.Routing == machine.CutThrough {
		per := m.MsgTimeOn(words, len(route), src, dst)
		start := t
		prev := src
		for _, node := range route {
			l := [2]int{prev, node}
			if links[l] > start {
				start = links[l]
			}
			prev = node
		}
		finish := start + per
		prev = src
		for _, node := range route {
			links[[2]int{prev, node}] = finish
			prev = node
		}
		return finish
	}
	hop := m.MsgTimeOn(words, 1, src, dst)
	prev := src
	for _, node := range route {
		l := [2]int{prev, node}
		if links[l] > t {
			t = links[l]
		}
		t += hop
		links[l] = t
		prev = node
	}
	return t
}

// NewProcOn builds the processor handle for one rank running on an
// alternative engine, wiring the rank's straggler factor, link metrics
// aggregation and tracing exactly as the goroutine backend does.
// Backends must create one Proc per rank and pass the same tracing
// flag to BuildResult.
func NewProcOn(eng Engine, rank int, m *machine.Machine, tracing bool) *Proc {
	pr := &Proc{rank: rank, eng: eng, mach: m, np: m.P(), tracing: tracing, computeFactor: 1}
	if m.Faults != nil {
		pr.computeFactor = m.Faults.ComputeFactor(rank)
	}
	if m.CollectMetrics {
		pr.links = make(map[int]*linkAgg)
	}
	return pr
}

// AbortPanic unwinds the calling processor body with the package's
// abort value wrapping err. Engines use it to implement Abort and to
// release suspended receivers after a failure; the value is recognized
// by the backends' recover handlers (see AbortError) so an unwinding
// processor is not misreported as a fresh panic.
func AbortPanic(err error) {
	panic(abort{err})
}

// AbortError reports whether a recovered panic value v is the
// simulator's abort value, returning the failure it carries.
func AbortError(v any) (error, bool) {
	a, ok := v.(abort)
	if !ok {
		return nil, false
	}
	return a.err, true
}

// BuildResult assembles the Result of a finished run from the per-rank
// processor handles, in rank order, exactly as the goroutine backend
// does — the float64 summation order is part of the byte-identity
// contract between backends. procs must be indexed by rank.
func BuildResult(m *machine.Machine, procs []*Proc, collectTrace bool) *Result {
	p := len(procs)
	res := &Result{
		P:           p,
		ProcClocks:  make([]float64, p),
		ProcCompute: make([]float64, p),
		ProcComm:    make([]float64, p),
	}
	for i, pr := range procs {
		res.ProcClocks[i] = pr.clock
		res.ProcCompute[i] = pr.computeTime
		res.ProcComm[i] = pr.commTime
		if pr.clock > res.Tp {
			res.Tp = pr.clock
		}
		res.TotalCompute += pr.computeTime
		res.TotalComm += pr.commTime
		res.ContentionWait += pr.contentionWait
		res.Messages += pr.msgsSent
		res.Words += pr.wordsSent
		res.Retries += pr.retries
		res.RetryTime += pr.retryTime
		res.StragglerExtra += pr.stragglerExtra
	}
	if m.CollectMetrics {
		res.Metrics = buildMetrics(procs, res.Tp, m)
	}
	if collectTrace {
		events := make([]Event, 0)
		for _, pr := range procs {
			events = append(events, pr.trace...)
		}
		sort.SliceStable(events, func(i, j int) bool {
			if events[i].Rank != events[j].Rank {
				return events[i].Rank < events[j].Rank
			}
			return events[i].Start < events[j].Start
		})
		res.Trace = &Trace{P: p, Tp: res.Tp, Events: events}
	}
	return res
}
