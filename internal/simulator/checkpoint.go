package simulator

import (
	"fmt"
	"sort"

	"matscale/internal/checkpoint"
	"matscale/internal/machine"
)

// This file is the backend-capability layer of checkpoint/resume: a
// second registry next to the plain backend registry, the typed errors
// the capability surfaces, and the Proc state encoding every
// checkpoint-capable engine embeds in its snapshots.
//
// A backend that registers here promises the CheckpointControl
// semantics documented on machine.CheckpointControl: suspend at the
// requested consistent cut with a self-describing snapshot, and
// restore a snapshot such that the resumed run's Result, Metrics, CSV
// and Chrome-trace bytes are identical to an uninterrupted run's. The
// goroutine backend deliberately does not register: its mailboxes and
// buffer pool are scheduled by the host and have no deterministic cut
// (sweeps over it checkpoint at cell granularity instead — see
// internal/sweep).

// checkpointBackends maps a machine.Backend to its checkpoint-capable
// runner. Like the plain registry it is written from init functions
// only and read-only afterwards.
var checkpointBackends = map[machine.Backend]RunFunc{}

// RegisterCheckpointBackend installs the checkpoint-capable runner for
// backend b. The runner reads its CheckpointControl from the machine.
func RegisterCheckpointBackend(b machine.Backend, fn RunFunc) {
	checkpointBackends[b] = fn
}

// CheckpointCapable reports whether backend b linked into this binary
// supports checkpoint/resume.
func CheckpointCapable(b machine.Backend) bool {
	return checkpointBackends[b] != nil
}

// UnsupportedCapabilityError reports an option demanded of a backend
// that does not implement it. It replaces silently ignoring the
// option: a caller that asked for a checkpoint must not believe it is
// getting one.
type UnsupportedCapabilityError struct {
	Backend    machine.Backend
	Capability string
	// Reason, when non-empty, explains why the backend cannot comply.
	Reason string
}

func (e *UnsupportedCapabilityError) Error() string {
	s := fmt.Sprintf("simulator: backend %q does not support %s", e.Backend, e.Capability)
	if e.Reason != "" {
		s += ": " + e.Reason
	}
	return s
}

// SuspendedError reports a run stopped at a consistent cut on request
// (machine.CheckpointControl.StopAfter). It is not a failure: the
// snapshot it carries resumes the run — on this process or another —
// with output byte-identical to never having stopped.
type SuspendedError struct {
	// Events is the number of event-loop dispatches before the cut.
	Events uint64
	// Snapshot is the encoded state (an internal/checkpoint container).
	Snapshot []byte
}

func (e *SuspendedError) Error() string {
	return fmt.Sprintf("simulator: run suspended at event %d (%d-byte snapshot)", e.Events, len(e.Snapshot))
}

// ResumeMismatchError reports a snapshot that cannot resume under the
// given configuration: a different machine, program, or build. The
// des backend raises it both on fingerprint mismatch (before any
// replay) and on replay divergence (the restored state fails its
// byte-for-byte verification against the snapshot).
type ResumeMismatchError struct {
	Reason string
}

func (e *ResumeMismatchError) Error() string {
	return "simulator: checkpoint resume mismatch: " + e.Reason
}

// EncodeCheckpointState appends the processor's complete accounting
// state to enc, deterministically: map-keyed aggregates are emitted in
// sorted key order, pooled buffers as capacities only (their contents
// are dead; capacity is what reuse observes). Two Procs that have
// executed the same program prefix encode identically — the property
// the des backend's verified restore is built on.
func (p *Proc) EncodeCheckpointState(enc *checkpoint.Encoder) {
	enc.F64(p.clock)
	enc.F64(p.computeTime)
	enc.F64(p.commTime)
	enc.F64(p.recvWait)
	enc.F64(p.contentionWait)
	enc.I64(int64(p.msgsSent))
	enc.I64(int64(p.msgsRecvd))
	enc.I64(int64(p.wordsSent))
	enc.I64(int64(p.wordsRecvd))
	enc.F64(p.computeFactor)
	enc.F64(p.stragglerExtra)
	enc.I64(int64(p.sendSeq))
	enc.F64(p.retryTime)
	enc.I64(int64(p.retries))

	enc.U32(uint32(len(p.spare)))
	for _, b := range p.spare {
		enc.U64(uint64(cap(b)))
	}

	dsts := make([]int, 0, len(p.links))
	for d := range p.links { //nodetbreak:ordered — sorted below before encoding
		dsts = append(dsts, d)
	}
	sort.Ints(dsts)
	enc.U32(uint32(len(dsts)))
	for _, d := range dsts {
		l := p.links[d]
		enc.I64(int64(d))
		enc.I64(int64(l.msgs))
		enc.I64(int64(l.words))
		enc.F64(l.busy)
	}

	enc.Bool(p.tracing)
	enc.U32(uint32(len(p.trace)))
	for _, ev := range p.trace {
		enc.I64(int64(ev.Rank))
		enc.U8(uint8(ev.Kind))
		enc.I64(int64(ev.Peer))
		enc.I64(int64(ev.Tag))
		enc.I64(int64(ev.Words))
		enc.F64(ev.Start)
		enc.F64(ev.End)
	}
}
