package simulator

import (
	"testing"

	"matscale/internal/machine"
)

// The tests in this file pin the buffer ownership contract of the
// messaging hot path: default sends copy, *Owned sends transfer the
// backing buffer without copying, Recycle feeds the buffer pool, and
// the steady-state message cycle allocates nothing. They are the
// host-side counterpart of the virtual-time tests in simulator_test.go,
// which must be unaffected by any of this.

// TestOwnedAndCopySendSemantics observes the zero-copy path directly:
// a self-send with Send delivers a different backing array, a self-send
// with SendOwned delivers the very same one.
func TestOwnedAndCopySendSemantics(t *testing.T) {
	_, err := Run(twoProc(0, 0), func(p *Proc) {
		if p.Rank() != 0 {
			return
		}
		orig := []float64{1, 2, 3}
		p.Send(0, 1, orig)
		got := p.Recv(0, 1)
		if &got[0] == &orig[0] {
			t.Error("Send delivered the caller's buffer; want a copy")
		}
		p.SendOwned(0, 2, orig)
		got = p.Recv(0, 2)
		if &got[0] != &orig[0] {
			t.Error("SendOwned copied the payload; want ownership transfer")
		}
		if got[0] != 1 || got[2] != 3 {
			t.Errorf("SendOwned delivered %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecycledBufferIsReused checks that a buffer handed to Recycle
// backs the next same-size delivery instead of a fresh allocation.
func TestRecycledBufferIsReused(t *testing.T) {
	_, err := Run(twoProc(0, 0), func(p *Proc) {
		if p.Rank() != 0 {
			return
		}
		p.Send(0, 1, []float64{1, 2, 3})
		x := p.Recv(0, 1)
		p.Recycle(x)
		p.Send(0, 2, []float64{4, 5, 6})
		y := p.Recv(0, 2)
		if &y[0] != &x[0] {
			t.Error("recycled buffer was not reused by the next delivery")
		}
		if y[0] != 4 || y[2] != 6 {
			t.Errorf("reused delivery holds %v, want [4 5 6]", y)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecvBufferCapIsClipped guards against append-aliasing into pooled
// memory: growing a received buffer must reallocate, never write into
// spare capacity a later delivery could reuse.
func TestRecvBufferCapIsClipped(t *testing.T) {
	_, err := Run(twoProc(0, 0), func(p *Proc) {
		if p.Rank() != 0 {
			return
		}
		p.Send(0, 1, []float64{1, 2})
		got := p.Recv(0, 1)
		if cap(got) != len(got) {
			t.Errorf("Recv buffer cap %d > len %d", cap(got), len(got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// ringShiftBody builds a p-rank ring-shift program; owned selects the
// ownership-transfer send path. Both variants move identical data and
// must produce identical virtual-time results.
func ringShiftBody(t *testing.T, p, steps, words int, owned bool) func(*Proc) {
	return func(pr *Proc) {
		buf := make([]float64, words)
		for i := range buf {
			buf[i] = float64(pr.Rank()*1000 + i)
		}
		next := (pr.Rank() + 1) % p
		prev := (pr.Rank() + p - 1) % p
		for s := 0; s < steps; s++ {
			if owned {
				pr.SendNeighborOwned(next, s, buf)
			} else {
				pr.SendNeighbor(next, s, buf)
			}
			buf = pr.Recv(prev, s)
		}
		wantFrom := ((pr.Rank()-steps)%p + p) % p
		if buf[0] != float64(wantFrom*1000) || buf[words-1] != float64(wantFrom*1000+words-1) {
			t.Errorf("rank %d after %d shifts holds data from %v, want rank %d", pr.Rank(), steps, buf[0], wantFrom)
		}
	}
}

// TestOwnedSendsVirtualTimeIdentical runs the same ring-shift program
// on the copying and the ownership-transfer path and requires every
// virtual-time quantity to match exactly: ownership affects host
// allocation only.
func TestOwnedSendsVirtualTimeIdentical(t *testing.T) {
	const p, steps, words = 8, 5, 64
	m := machine.Hypercube(p, 17, 3)
	base, err := Run(m, ringShiftBody(t, p, steps, words, false))
	if err != nil {
		t.Fatal(err)
	}
	owned, err := Run(m, ringShiftBody(t, p, steps, words, true))
	if err != nil {
		t.Fatal(err)
	}
	if base.Tp != owned.Tp {
		t.Errorf("Tp differs: copy %v, owned %v", base.Tp, owned.Tp)
	}
	if base.TotalComm != owned.TotalComm || base.TotalCompute != owned.TotalCompute {
		t.Errorf("busy-time breakdown differs: copy (%v, %v), owned (%v, %v)",
			base.TotalCompute, base.TotalComm, owned.TotalCompute, owned.TotalComm)
	}
	if base.Messages != owned.Messages || base.Words != owned.Words {
		t.Errorf("traffic differs: copy (%d msgs, %d words), owned (%d msgs, %d words)",
			base.Messages, base.Words, owned.Messages, owned.Words)
	}
	for i := range base.ProcClocks {
		if base.ProcClocks[i] != owned.ProcClocks[i] {
			t.Errorf("rank %d clock differs: copy %v, owned %v", i, base.ProcClocks[i], owned.ProcClocks[i])
		}
	}
}

// TestExchangeOwnedMatchesExchange checks the owned exchange delivers
// the partner's data with the exact virtual time of the copying one.
func TestExchangeOwnedMatchesExchange(t *testing.T) {
	m := twoProc(10, 2)
	run := func(owned bool) *Result {
		res, err := Run(m, func(p *Proc) {
			data := []float64{float64(p.Rank()), 7}
			var got []float64
			if owned {
				got = p.ExchangeOwned(1-p.Rank(), 3, data)
			} else {
				got = p.Exchange(1-p.Rank(), 3, data)
			}
			if got[0] != float64(1-p.Rank()) || got[1] != 7 {
				t.Errorf("rank %d received %v", p.Rank(), got)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base, owned := run(false), run(true)
	if base.Tp != owned.Tp || base.TotalComm != owned.TotalComm {
		t.Errorf("Exchange/ExchangeOwned timing differs: (%v, %v) vs (%v, %v)",
			base.Tp, base.TotalComm, owned.Tp, owned.TotalComm)
	}
}

// pingPongAllocs measures the average host allocations of a run whose
// two ranks ping-pong msgs messages of 256 words with recycling.
func pingPongAllocs(t testing.TB, msgs int) float64 {
	t.Helper()
	m := twoProc(0, 0)
	return testing.AllocsPerRun(5, func() {
		_, err := Run(m, func(p *Proc) {
			buf := make([]float64, 256)
			if p.Rank() == 0 {
				for i := 0; i < msgs; i++ {
					p.Send(1, 0, buf)
					p.Recycle(p.Recv(1, 1))
				}
			} else {
				for i := 0; i < msgs; i++ {
					p.Recycle(p.Recv(0, 0))
					p.Send(0, 1, buf)
				}
			}
		})
		if err != nil {
			t.Error(err)
		}
	})
}

// TestSteadyStateMessagingAllocationFree asserts the pooled message
// path allocates nothing per message once warm: the allocation count of
// a run is independent of how many messages it moves. Fixed per-run
// overhead (goroutines, mailboxes, first-delivery pool fills) cancels
// in the difference.
func TestSteadyStateMessagingAllocationFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow under -short")
	}
	small := pingPongAllocs(t, 16)
	large := pingPongAllocs(t, 1040)
	extra := large - small
	perMsg := extra / float64(2*(1040-16))
	if perMsg > 0.1 {
		t.Errorf("steady-state message path allocates %.3f allocs/message (runs: %v small, %v large); want amortized zero",
			perMsg, small, large)
	}
}

// benchDeliver measures the host cost of one message hop (send +
// receive) in a two-rank ping-pong, on the copying or the
// ownership-transfer path.
func benchDeliver(b *testing.B, words int, owned bool) {
	m := twoProc(0, 0)
	b.SetBytes(int64(words * 8))
	b.ReportAllocs()
	b.ResetTimer()
	_, err := Run(m, func(p *Proc) {
		buf := make([]float64, words)
		if p.Rank() == 0 {
			for i := 0; i < b.N; i++ {
				if owned {
					p.SendOwned(1, 0, buf)
					buf = p.Recv(1, 1)
				} else {
					p.Send(1, 0, buf)
					p.Recycle(p.Recv(1, 1))
				}
			}
		} else {
			for i := 0; i < b.N; i++ {
				if owned {
					got := p.Recv(0, 0)
					p.SendOwned(0, 1, got)
				} else {
					p.Recycle(p.Recv(0, 0))
					p.Send(0, 1, buf)
				}
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkDeliverCopy256(b *testing.B)  { benchDeliver(b, 256, false) }
func BenchmarkDeliverOwned256(b *testing.B) { benchDeliver(b, 256, true) }

// BenchmarkDeliverSteadyStateAllocs records the amortised per-message
// allocation count as a custom metric. The per-op allocs of the other
// Deliver benchmarks include one run's fixed setup (goroutines,
// mailboxes, first pool fills), which dominates at CI's small
// -benchtime; the difference of a long and a short run cancels it, so
// allocs/msg reports the steady state regardless of b.N.
func BenchmarkDeliverSteadyStateAllocs(b *testing.B) {
	small := pingPongAllocs(b, 16)
	var large float64
	for i := 0; i < b.N; i++ {
		large = pingPongAllocs(b, 1040)
	}
	b.ReportMetric((large-small)/float64(2*(1040-16)), "allocs/msg")
}

// BenchmarkDeliverRing16 stresses the sharded mailboxes: 16 ranks shift
// a 256-word block around a ring, so deliveries hit 16 different
// mailboxes concurrently instead of one global queue.
func BenchmarkDeliverRing16(b *testing.B) {
	const p, words = 16, 256
	m := machine.Hypercube(p, 0, 0)
	b.SetBytes(int64(p * words * 8))
	b.ReportAllocs()
	b.ResetTimer()
	_, err := Run(m, func(pr *Proc) {
		buf := make([]float64, words)
		next := (pr.Rank() + 1) % p
		prev := (pr.Rank() + p - 1) % p
		// A single tag suffices: per-(src, tag) FIFO ordering keeps the
		// steps sequenced even when a fast rank runs ahead.
		for i := 0; i < b.N; i++ {
			pr.SendNeighborOwned(next, 0, buf)
			buf = pr.Recv(prev, 0)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
