// Package simulator executes message-passing parallel programs on a
// virtual-time multicomputer.
//
// Each processor is a goroutine with a local virtual clock measured in
// flop units (one multiply-add = 1, Section 2 of the paper). Sends and
// receives move real data between processors and advance the clocks
// according to the machine's ts/tw cost model, so the measured parallel
// execution time Tp, total overhead To = p·Tp − W and efficiency
// E = W/(p·Tp) reproduce the paper's analytical model while the
// computation itself is performed for real and can be checked against
// the serial algorithm.
//
// Timing contract (documented in DESIGN.md):
//
//   - Compute(f) advances the local clock by f.
//   - Send charges the sender the full transfer time (per hop under
//     store-and-forward routing) and stamps the message with the
//     sender's clock after the send.
//   - Recv waits for the matching (src, tag) message and advances the
//     local clock to max(local clock, message arrival time). Receiving
//     charges nothing beyond the stamp: the transfer was paid for once,
//     by the sender, which is how the paper counts one shift of
//     Cannon's algorithm as a single ts + tw·m.
//   - A Send immediately followed by a Recv from the opposite neighbor
//     therefore models the simultaneous exchange of a shift step.
//   - SendFree moves data at zero virtual cost. It exists only for
//     steps whose cost the paper explicitly ignores (Cannon's initial
//     alignment on a cut-through hypercube, Section 4.2) and for
//     gathering results for verification after timing stops.
//   - SendMulti charges the sender max(cost of each transfer) — the
//     all-port regime of Section 7 — when the machine is AllPort, and
//     the sum when it is one-port.
//   - ChargedSend sends with an explicitly supplied virtual cost. The
//     collective package uses it for communication operations whose
//     cost the paper takes from the literature as a closed form
//     (Johnsson–Ho broadcast) rather than deriving step by step.
//
// Buffer ownership contract (documented in docs/PERFORMANCE.md):
//
//   - Send/SendFree/SendNeighbor/ChargedSend copy the payload; the
//     caller keeps the slice and may mutate it immediately.
//   - The *Owned variants (SendOwned, SendFreeOwned, SendNeighborOwned)
//     transfer ownership of the slice to the runtime without copying.
//     The caller must not read or write the slice afterwards, and must
//     never pass a sub-slice of a buffer it still uses.
//   - Recv returns a buffer owned by the caller. When the caller is
//     done with it, Recycle returns it to the processor's buffer pool
//     so subsequent deliveries allocate nothing; recycling is optional
//     (an un-recycled buffer is simply garbage collected) but a
//     recycled buffer must not be used again.
//
// Ownership and pooling affect host allocation only: every virtual-time
// quantity is computed exactly as for the copying path.
//
// Messages are matched by (source, tag). Matching is deterministic:
// messages between the same pair with the same tag are consumed in
// send order, so the virtual times of a run are reproducible
// regardless of goroutine scheduling.
//
// The runtime detects deadlock (every live processor blocked in Recv)
// and converts processor panics into errors, releasing the remaining
// processors.
package simulator

import (
	"fmt"
	"sync"
	"sync/atomic"

	"matscale/internal/machine"
)

// srcTag matches a message within one destination's mailbox.
type srcTag struct {
	src, tag int
}

// msgQueue is a growable FIFO ring of messages for one (src, tag) key.
// The ring never shrinks and the key's entry is never deleted, so a
// steady-state send/recv cycle pushes and pops with zero allocation.
type msgQueue struct {
	buf  []Message
	head int // index of the oldest message
	n    int // live messages
}

func (q *msgQueue) push(m Message) {
	if q.n == len(q.buf) {
		grown := make([]Message, max(4, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = m
	q.n++
}

func (q *msgQueue) pop() Message {
	m := q.buf[q.head]
	q.buf[q.head] = Message{} // release the payload reference
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return m
}

// mailbox is one destination rank's share of the messaging state. Each
// rank delivers into and receives from its own mailbox under the
// mailbox's lock, so p ranks exchanging messages contend pairwise
// instead of serializing on one run-wide mutex.
//
// Single-consumer invariant: only the owning rank pops from queues and
// waits on cond; other ranks only push and signal. waiting/want are
// the owner's published Recv state, read by the deadlock scan.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[srcTag]*msgQueue
	waiting bool   // owner is blocked in Recv
	want    srcTag // key the owner is blocked on (valid while waiting)
}

// run is the shared state of one simulation.
//
// Lock ordering: gmu before any mailbox.mu, never the reverse. Code
// holding a mailbox lock must release it before touching gmu (Recv does
// exactly this when it blocks), which is what lets the deadlock scan
// hold gmu and visit every mailbox without deadlocking the detector
// itself.
type run struct {
	mach *machine.Machine
	p    int

	boxes []mailbox

	gmu     sync.Mutex
	alive   int   // processors still executing
	blocked int   // processors registered as blocked in Recv
	failed  error // first failure; aborted is its fast-path flag
	aborted atomic.Bool

	// links tracks per-directed-link busy-until virtual times when the
	// machine has TrackContention set. Guarded by gmu.
	links map[[2]int]float64

	// pool is the overflow tier of the payload buffer pool: buffers
	// beyond a processor's private free list are parked here for any
	// rank to reuse. Which buffer a rank gets back is scheduling
	// dependent, but buffers carry no virtual-time state — every slot
	// is overwritten before delivery — so reuse order cannot affect
	// results.
	pool sync.Pool //nodetbreak:pooled — reviewed: payload recycling only, carries no simulation state
}

// poolSlice wraps a pooled buffer; sync.Pool holds pointers so that
// parking a buffer does not box a slice header per Put.
type poolSlice struct{ buf []float64 }

// err returns the run's failure, which is non-nil once aborted is set.
func (r *run) err() error {
	r.gmu.Lock()
	defer r.gmu.Unlock()
	return r.failed
}

// traverseLocked advances a message over route via the shared
// AdvanceRoute computation. Callers must hold r.gmu, which guards
// r.links.
func (r *run) traverseLocked(src int, route []int, t float64, words int) float64 {
	return AdvanceRoute(r.mach, r.links, src, route, t, words)
}

// wakeAll wakes every blocked receiver (used on failure and on
// processor exit, where any waiter may need to re-examine the state).
// Callers must not hold any mailbox lock.
func (r *run) wakeAll() {
	for i := range r.boxes {
		b := &r.boxes[i]
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// scanDeadlockLocked reports how many processors are registered blocked
// and whether the simulation is deadlocked: every live processor
// blocked in Recv with no wanted message queued. A queued match means
// the waiter has been (or is about to be) woken, so the state is not
// stable. Callers must hold r.gmu and no mailbox lock.
func (r *run) scanDeadlockLocked() (int, bool) {
	if r.alive == 0 {
		return 0, false
	}
	waiting, stable := 0, true
	for i := range r.boxes {
		b := &r.boxes[i]
		b.mu.Lock()
		if b.waiting {
			waiting++
			if q := b.queues[b.want]; q != nil && q.n > 0 {
				stable = false
			}
		}
		b.mu.Unlock()
	}
	return waiting, stable && waiting == r.alive
}

// block registers rank as blocked in Recv. When every live processor
// is blocked it runs the deadlock scan and, on a confirmed deadlock,
// fails the run. It returns the run's failure (nil when the caller
// should go on to wait). The caller must have published waiting/want in
// its mailbox before calling, and must pair a nil return with unblock.
func (r *run) block(rank, src, tag int) error {
	r.gmu.Lock()
	r.blocked++
	if r.failed == nil && r.blocked >= r.alive {
		if _, dead := r.scanDeadlockLocked(); dead {
			r.failed = fmt.Errorf("simulator: deadlock: all %d live processors blocked in Recv (rank %d waiting for src=%d tag=%d)", r.alive, rank, src, tag)
			r.aborted.Store(true)
			r.gmu.Unlock()
			r.wakeAll()
			r.gmu.Lock()
		}
	}
	err := r.failed
	r.gmu.Unlock()
	return err
}

// unblock withdraws a block registration.
func (r *run) unblock() {
	r.gmu.Lock()
	r.blocked--
	r.gmu.Unlock()
}

// Deliver implements Engine: it enqueues msg in dst's mailbox and wakes
// the owner if it is blocked on exactly this (src, tag) stream.
func (r *run) Deliver(src, dst, tag int, msg Message) {
	k := srcTag{src: src, tag: tag}
	b := &r.boxes[dst]
	b.mu.Lock()
	q := b.queues[k]
	if q == nil {
		q = &msgQueue{}
		b.queues[k] = q
	}
	q.push(msg)
	if b.waiting && b.want == k {
		b.cond.Signal()
	}
	b.mu.Unlock()
}

// Await implements Engine: it blocks the calling goroutine on rank's
// mailbox until the next (src, tag) message exists, participating in
// the deadlock scan while blocked.
func (r *run) Await(rank, src, tag int) Message {
	k := srcTag{src: src, tag: tag}
	b := &r.boxes[rank]
	for {
		b.mu.Lock()
		if q := b.queues[k]; q != nil && q.n > 0 {
			m := q.pop()
			b.mu.Unlock()
			return m
		}
		if r.aborted.Load() {
			b.mu.Unlock()
			AbortPanic(r.err())
		}
		// Publish the blocked state, then register globally (which may
		// run the deadlock scan). The box lock is released first: the
		// scan takes gmu before mailbox locks, never the reverse.
		b.waiting, b.want = true, k
		b.mu.Unlock()
		if err := r.block(rank, src, tag); err != nil {
			b.mu.Lock()
			b.waiting = false
			b.mu.Unlock()
			r.unblock()
			AbortPanic(err)
		}
		b.mu.Lock()
		for b.waiting {
			if r.aborted.Load() {
				break
			}
			if q := b.queues[k]; q != nil && q.n > 0 {
				break
			}
			b.cond.Wait()
		}
		b.waiting = false
		b.mu.Unlock()
		r.unblock()
	}
}

// ContendedArrival implements Engine: link traversal under the run's
// global lock.
func (r *run) ContendedArrival(src int, route []int, start float64, words int) float64 {
	r.gmu.Lock()
	arrival := r.traverseLocked(src, route, start, words)
	r.gmu.Unlock()
	return arrival
}

// Abort implements Engine: it marks the shared run failed, wakes every
// blocked receiver, and unwinds the calling processor.
func (r *run) Abort(err error) {
	r.gmu.Lock()
	if r.failed == nil {
		r.failed = err
	}
	err = r.failed
	r.aborted.Store(true)
	r.gmu.Unlock()
	r.wakeAll()
	AbortPanic(err)
}

// GetBuf implements Engine: the run-wide overflow tier of the buffer
// pool. A pooled buffer of insufficient capacity is dropped (garbage
// collected) rather than put back, mirroring the allocation the caller
// then performs.
func (r *run) GetBuf(n int) []float64 {
	if w, _ := r.pool.Get().(*poolSlice); w != nil && cap(w.buf) >= n {
		return w.buf[:n]
	}
	return nil
}

// PutBuf implements Engine.
func (r *run) PutBuf(b []float64) {
	r.pool.Put(&poolSlice{buf: b[:0]})
}

// Proc is the handle a processor body uses to communicate and compute.
// A Proc is owned by exactly one processor body and must not be shared.
// All virtual-time charging happens here, so every Engine a Proc runs
// on measures identical quantities.
type Proc struct {
	rank int
	eng  Engine
	mach *machine.Machine
	np   int // processor count of the machine

	clock          float64
	computeTime    float64
	commTime       float64 // time charged for outgoing transfers
	recvWait       float64 // time blocked in Recv behind a later arrival
	contentionWait float64
	msgsSent       int
	msgsRecvd      int
	wordsSent      int
	wordsRecvd     int

	// computeFactor is the rank's straggler slowdown (1 on a healthy
	// machine): Compute(w) is charged computeFactor·w. stragglerExtra
	// accumulates the charged excess over the ideal machine.
	computeFactor  float64
	stragglerExtra float64
	// sendSeq counts this rank's charged sends; it keys the loss draw
	// so retry decisions depend only on the sender's program order,
	// never on goroutine scheduling. retryTime and retries accumulate
	// the reliable-delivery overhead (retransmissions + timeout waits).
	sendSeq   int
	retryTime float64
	retries   int

	// spare is the rank-private tier of the payload buffer pool: only
	// this goroutine touches it, so the steady-state copy path costs no
	// lock and no allocation. Overflow parks in run.pool.
	spare [][]float64

	// links aggregates charged outgoing traffic per destination rank
	// when the machine requests metrics. Zero-cost transfers
	// (verification gathers, barriers) are excluded: they are
	// bookkeeping, not modeled communication, and would distort link
	// utilization.
	links map[int]*linkAgg

	tracing bool
	trace   []Event
}

// spareBufs bounds the rank-private free list; beyond it buffers park
// in the run-wide pool.
const spareBufs = 8

// getBuf returns a length-n buffer from the pool hierarchy, allocating
// only when neither tier has one of sufficient capacity.
func (p *Proc) getBuf(n int) []float64 {
	if n == 0 {
		return nil
	}
	sp := p.spare
	for i := len(sp) - 1; i >= 0; i-- {
		if cap(sp[i]) >= n {
			b := sp[i][:n]
			sp[i] = sp[len(sp)-1]
			sp[len(sp)-1] = nil
			p.spare = sp[:len(sp)-1]
			return b
		}
	}
	if b := p.eng.GetBuf(n); b != nil {
		return b[:n]
	}
	return make([]float64, n)
}

// putBuf returns a consumed buffer to the pool hierarchy.
func (p *Proc) putBuf(b []float64) {
	if cap(b) == 0 {
		return
	}
	if len(p.spare) < spareBufs {
		p.spare = append(p.spare, b[:0])
		return
	}
	p.eng.PutBuf(b[:0])
}

// Recycle returns a buffer obtained from Recv (or Exchange) to this
// processor's buffer pool, so subsequent message deliveries can reuse
// it instead of allocating. Recycling is optional; a recycled buffer
// must not be read or written afterwards.
func (p *Proc) Recycle(buf []float64) { p.putBuf(buf) }

// linkAgg accumulates the charged traffic of one directed link.
type linkAgg struct {
	msgs  int
	words int
	busy  float64
}

// chargeLink records a charged transfer of words to dst that occupied
// the link for busy virtual time units. No virtual cost is added here:
// metrics observe the simulation, they never perturb it.
func (p *Proc) chargeLink(dst, words int, busy float64) {
	if p.links == nil {
		return
	}
	l := p.links[dst]
	if l == nil {
		l = &linkAgg{}
		p.links[dst] = l
	}
	l.msgs++
	l.words += words
	l.busy += busy
}

func (p *Proc) record(e Event) {
	if p.tracing {
		e.Rank = p.rank
		p.trace = append(p.trace, e)
	}
}

// Rank returns this processor's rank in [0, P).
func (p *Proc) Rank() int { return p.rank }

// P returns the number of processors in the machine.
func (p *Proc) P() int { return p.np }

// Machine returns the machine the program is running on.
func (p *Proc) Machine() *machine.Machine { return p.mach }

// Clock returns the processor's current virtual time.
func (p *Proc) Clock() float64 { return p.clock }

// Compute advances the virtual clock by flops unit operations — scaled
// by the rank's straggler factor when the machine runs under faults, so
// a factor-f straggler is charged f·flops.
func (p *Proc) Compute(flops float64) {
	if flops < 0 {
		panic(fmt.Sprintf("simulator: negative compute time %v", flops))
	}
	charged := flops * p.computeFactor
	start := p.clock
	p.clock += charged
	p.computeTime += charged
	p.stragglerExtra += charged - flops
	p.record(Event{Kind: EventCompute, Peer: -1, Tag: -1, Start: start, End: p.clock})
}

// Send transfers data to dst with the machine-defined cost and tags it
// for matching. On a contention-tracking machine the message claims
// its route's links and waits for any it finds busy. The payload is
// copied: the caller keeps the slice.
func (p *Proc) Send(dst, tag int, data []float64) {
	p.send(dst, tag, data, false)
}

// SendOwned is Send without the payload copy: ownership of data
// transfers to the runtime (and ultimately to the receiver). The caller
// must not use data afterwards and must never pass a sub-slice of a
// buffer it still uses. Virtual-time charging is identical to Send.
func (p *Proc) SendOwned(dst, tag int, data []float64) {
	p.send(dst, tag, data, true)
}

func (p *Proc) send(dst, tag int, data []float64, owned bool) {
	if p.mach.TrackContention && dst != p.rank {
		p.sendContended(dst, tag, data, p.mach.Route(p.rank, dst), owned)
		return
	}
	cost := p.mach.MsgTime(len(data), p.rank, dst)
	p.sendInternal(dst, tag, data, cost, owned)
}

// sendContended routes the message link by link, serializing on busy
// links; the sender is charged the full (possibly delayed) transfer
// and the excess over the contention-free cost is recorded.
func (p *Proc) sendContended(dst, tag int, data []float64, route []int, owned bool) {
	arrival := p.eng.ContendedArrival(p.rank, route, p.clock, len(data))
	cost := arrival - p.clock
	p.contentionWait += cost - p.mach.MsgTimeOn(len(data), len(route), p.rank, dst)
	p.sendInternal(dst, tag, data, cost, owned)
}

// SendFree transfers data at zero virtual cost. See the package comment
// for the narrow set of legitimate uses.
func (p *Proc) SendFree(dst, tag int, data []float64) {
	p.sendInternal(dst, tag, data, 0, false)
}

// SendFreeOwned is SendFree with ownership transfer: no copy, and the
// caller must not use data afterwards.
func (p *Proc) SendFreeOwned(dst, tag int, data []float64) {
	p.sendInternal(dst, tag, data, 0, true)
}

// SendNeighbor transfers data to dst charging a single-hop transfer,
// ts + tw·m, independent of the rank distance in the machine topology.
// It models transfers between logical neighbors — wraparound-mesh shift
// partners and tree partners within subcube-aligned groups — which are
// physical hypercube neighbors under the standard embeddings the paper
// assumes (Gray-code rings, bit-field subcubes). A send to self is
// free.
func (p *Proc) SendNeighbor(dst, tag int, data []float64) {
	p.sendNeighbor(dst, tag, data, false)
}

// SendNeighborOwned is SendNeighbor with ownership transfer: no copy,
// and the caller must not use data afterwards.
func (p *Proc) SendNeighborOwned(dst, tag int, data []float64) {
	p.sendNeighbor(dst, tag, data, true)
}

func (p *Proc) sendNeighbor(dst, tag int, data []float64, owned bool) {
	if dst != p.rank && p.mach.TrackContention {
		p.sendContended(dst, tag, data, []int{dst}, owned)
		return
	}
	var cost float64
	if dst != p.rank {
		cost = p.mach.MsgTimeOn(len(data), 1, p.rank, dst)
	}
	p.sendInternal(dst, tag, data, cost, owned)
}

// ExchangeNeighbor is Exchange with single-hop neighbor charging.
func (p *Proc) ExchangeNeighbor(partner, tag int, data []float64) []float64 {
	p.SendNeighbor(partner, tag, data)
	return p.Recv(partner, tag)
}

// ExchangeNeighborOwned is ExchangeNeighbor with ownership transfer of
// the outgoing buffer: no copy, and the caller must not use data after
// the call (the returned buffer replaces it).
func (p *Proc) ExchangeNeighborOwned(partner, tag int, data []float64) []float64 {
	p.SendNeighborOwned(partner, tag, data)
	return p.Recv(partner, tag)
}

// ChargedSend transfers data charging exactly cost virtual time units,
// for collectives whose aggregate cost is modeled in closed form.
func (p *Proc) ChargedSend(dst, tag int, data []float64, cost float64) {
	if cost < 0 {
		panic(fmt.Sprintf("simulator: negative send cost %v", cost))
	}
	p.sendInternal(dst, tag, data, cost, false)
}

// Transfer names one destination of a SendMulti.
type Transfer struct {
	Dst, Tag int
	Data     []float64
}

// SendMulti sends several messages "at once". On an all-port machine
// the sender is charged the maximum individual cost (all channels run
// simultaneously, Section 7); on a one-port machine the costs add.
func (p *Proc) SendMulti(ts []Transfer) {
	var total, max float64
	for _, t := range ts {
		c := p.mach.MsgTime(len(t.Data), p.rank, t.Dst)
		total += c
		if c > max {
			max = c
		}
	}
	charge := total
	if p.mach.AllPort {
		charge = max
	}
	start := p.clock
	words := 0
	for _, t := range ts {
		words += len(t.Data)
	}
	p.clock += charge
	p.commTime += charge
	if charge > 0 {
		p.record(Event{Kind: EventSend, Peer: -1, Tag: -1, Words: words, Start: start, End: p.clock})
	}
	for _, t := range ts {
		// Each link carries its own transfer for that transfer's
		// duration, regardless of how the sender is charged (max on
		// all-port, sum on one-port).
		if c := p.mach.MsgTime(len(t.Data), p.rank, t.Dst); c > 0 {
			p.chargeLink(t.Dst, len(t.Data), c)
		}
		p.deliver(t.Dst, t.Tag, t.Data, false)
	}
}

// sendInternal charges the transfer and hands the payload to the
// destination queue. Under a lossy fault configuration every charged
// transfer passes through the reliable-delivery layer: the number of
// transmissions is drawn deterministically from the fault seed and the
// sender's own send sequence, each failed transmission is paid in full
// and followed by its (backed-off) timeout wait, and only the final,
// successful transmission delivers data. Zero-cost transfers
// (verification gathers, barriers) bypass the layer: they are
// bookkeeping, not modeled communication.
func (p *Proc) sendInternal(dst, tag int, data []float64, cost float64, owned bool) {
	start := p.clock
	charge := cost
	if f := p.mach.Faults; cost > 0 && f != nil && f.Loss > 0 {
		seq := p.sendSeq
		p.sendSeq++
		tries, delivered := f.Transmissions(p.rank, seq)
		if !delivered {
			p.fail(fmt.Errorf("simulator: message %d from rank %d to rank %d (tag %d) lost %d times, retry budget exhausted", seq, p.rank, dst, tag, tries))
		}
		if tries > 1 {
			charge = f.RetryCharge(cost, tries)
			over := charge - cost
			p.retryTime += over
			p.retries += tries - 1
			p.record(Event{Kind: EventRetry, Peer: dst, Tag: tag, Words: len(data), Start: start, End: start + over})
		}
	}
	p.clock += charge
	p.commTime += charge
	if charge > 0 {
		// The send event covers the successful transmission; the
		// preceding EventRetry (if any) covers the lost ones. The link
		// is charged for the delivering transmission only — timeout
		// waits occupy the sender, not the wire.
		p.record(Event{Kind: EventSend, Peer: dst, Tag: tag, Words: len(data), Start: p.clock - cost, End: p.clock})
		p.chargeLink(dst, len(data), cost)
	}
	p.deliver(dst, tag, data, owned)
}

// fail aborts the simulation with err via the engine, which releases
// the remaining processors and unwinds this one.
func (p *Proc) fail(err error) {
	p.eng.Abort(err)
}

// deliver enqueues the payload under (dst, tag). Borrowed payloads
// (owned == false) are copied into a pooled buffer; owned payloads are
// enqueued as-is, transferring the slice to the receiver.
func (p *Proc) deliver(dst, tag int, data []float64, owned bool) {
	if dst < 0 || dst >= p.np {
		panic(fmt.Sprintf("simulator: send to rank %d outside [0,%d)", dst, p.np))
	}
	p.msgsSent++
	p.wordsSent += len(data)
	payload := data
	if !owned {
		payload = p.getBuf(len(data))
		copy(payload, data)
	}
	p.eng.Deliver(p.rank, dst, tag, Message{Data: payload, Arrival: p.clock})
}

// Recv blocks until the matching message from src with the given tag
// arrives, then advances the clock to the message's arrival time if it
// is later than the local clock. The returned buffer is owned by the
// caller; pass it to Recycle when done to keep the message path
// allocation-free.
func (p *Proc) Recv(src, tag int) []float64 {
	if src < 0 || src >= p.np {
		panic(fmt.Sprintf("simulator: recv from rank %d outside [0,%d)", src, p.np))
	}
	return p.consume(p.eng.Await(p.rank, src, tag), src, tag)
}

// consume applies a popped message to the receiver's clock and metrics
// and hands the payload to the caller. The capacity is clipped to the
// length so a caller append cannot grow into pooled memory that a later
// delivery may reuse.
func (p *Proc) consume(m Message, src, tag int) []float64 {
	p.msgsRecvd++
	p.wordsRecvd += len(m.Data)
	if m.Arrival > p.clock {
		p.record(Event{Kind: EventIdle, Peer: src, Tag: tag, Start: p.clock, End: m.Arrival})
		p.recvWait += m.Arrival - p.clock
		p.clock = m.Arrival
	}
	p.record(Event{Kind: EventRecv, Peer: src, Tag: tag, Words: len(m.Data), Start: p.clock, End: p.clock})
	if m.Data == nil {
		return nil
	}
	return m.Data[:len(m.Data):len(m.Data)]
}

// Exchange sends data to partner and receives the partner's
// same-tagged message, modeling the simultaneous bidirectional
// transfer of a shift or recursive-doubling step.
func (p *Proc) Exchange(partner, tag int, data []float64) []float64 {
	p.Send(partner, tag, data)
	return p.Recv(partner, tag)
}

// ExchangeOwned is Exchange with ownership transfer of the outgoing
// buffer: no copy, and the caller must not use data after the call
// (the returned buffer replaces it).
func (p *Proc) ExchangeOwned(partner, tag int, data []float64) []float64 {
	p.SendOwned(partner, tag, data)
	return p.Recv(partner, tag)
}

// abort wraps an error that should terminate the processor body
// without being reported as a fresh panic.
type abort struct{ err error }

// Result reports the outcome of a simulation.
type Result struct {
	P  int
	Tp float64 // parallel execution time: max over processors of final clock

	ProcClocks   []float64 // final virtual time of each processor
	ProcCompute  []float64 // per-processor busy time spent computing
	ProcComm     []float64 // per-processor busy time spent communicating
	TotalCompute float64   // Σ per-processor compute time
	TotalComm    float64   // Σ per-processor communication time
	Messages     int       // total messages sent
	Words        int       // total words moved
	// ContentionWait is the total time senders spent waiting for busy
	// links (zero unless the machine has TrackContention set; zero on
	// contention-tracking machines for the paper's algorithms, whose
	// routes are link-disjoint by construction).
	ContentionWait float64

	// Retries is the total number of retransmissions performed by the
	// reliable-delivery layer, and RetryTime the virtual time they
	// charged (retransmissions + timeout waits) — both zero unless the
	// machine runs under a lossy fault configuration. RetryTime is
	// included in TotalComm: retries are communication overhead and
	// appear in To.
	Retries   int
	RetryTime float64
	// StragglerExtra is the total compute time charged beyond the ideal
	// machine by per-rank straggler factors; it is included in
	// TotalCompute.
	StragglerExtra float64

	// Metrics is the per-rank/per-link breakdown of the run, populated
	// when the machine has CollectMetrics set (nil otherwise).
	// Collecting it charges zero virtual time.
	Metrics *Metrics
	// Trace is the ordered event history, populated when the machine
	// has CollectTrace set or the run was started via RunTraced (nil
	// otherwise). Tracing charges zero virtual time.
	Trace *Trace
}

// IdleTime returns the total idle time across processors relative to
// the parallel completion time: Σᵢ (Tp − computeᵢ − commᵢ). Together
// with TotalComm it decomposes the overhead To = p·Tp − W into its
// communication and idle/imbalance components (Section 2's "idle time
// due to synchronization").
func (r *Result) IdleTime() float64 {
	return float64(r.P)*r.Tp - r.TotalCompute - r.TotalComm
}

// Overhead returns To = p·Tp − W (Section 2).
func (r *Result) Overhead(w float64) float64 { return float64(r.P)*r.Tp - w }

// Speedup returns S = W / Tp.
func (r *Result) Speedup(w float64) float64 { return w / r.Tp }

// Efficiency returns E = W / (p·Tp).
func (r *Result) Efficiency(w float64) float64 { return w / (float64(r.P) * r.Tp) }

// Run executes body on every processor of m and collects timing. It
// returns an error if any processor panics, if the program deadlocks,
// or if messages are left unconsumed at exit. The machine's Backend
// selects the engine; every backend measures identical virtual-time
// quantities.
func Run(m *machine.Machine, body func(*Proc)) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return dispatch(m, body, m.CollectTrace)
}

func runInternal(m *machine.Machine, body func(*Proc), collectTrace bool) (*Result, error) {
	p := m.P()
	r := &run{mach: m, p: p, alive: p}
	if m.TrackContention {
		r.links = make(map[[2]int]float64)
	}
	r.boxes = make([]mailbox, p)
	for i := range r.boxes {
		b := &r.boxes[i]
		b.cond = sync.NewCond(&b.mu)
		b.queues = make(map[srcTag]*msgQueue)
	}

	procs := make([]*Proc, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		procs[i] = NewProcOn(r, i, m, collectTrace)
		go func(pr *Proc) {
			defer wg.Done()
			defer func() {
				rec := recover()
				r.gmu.Lock()
				r.alive--
				if rec != nil {
					if _, isAbort := AbortError(rec); !isAbort && r.failed == nil {
						r.failed = fmt.Errorf("simulator: processor %d panicked: %v", pr.rank, rec)
						r.aborted.Store(true)
					}
				}
				// A processor exiting may starve blocked receivers.
				if r.failed == nil {
					if n, dead := r.scanDeadlockLocked(); dead {
						r.failed = fmt.Errorf("simulator: deadlock: %d processors blocked after rank %d exited", n, pr.rank)
						r.aborted.Store(true)
					}
				}
				mustWake := r.failed != nil
				r.gmu.Unlock()
				if mustWake {
					r.wakeAll()
				}
			}()
			body(pr)
		}(procs[i])
	}
	wg.Wait()

	if r.failed != nil {
		return nil, r.failed
	}
	unconsumed := 0
	for i := range r.boxes {
		for _, q := range r.boxes[i].queues {
			unconsumed += q.n
		}
	}
	if unconsumed != 0 {
		return nil, fmt.Errorf("simulator: %d messages left unconsumed at exit", unconsumed)
	}
	return BuildResult(m, procs, collectTrace), nil
}
