package simulator

import (
	"bytes"
	"strings"
	"testing"

	"matscale/internal/machine"
)

// emissionProgram is a nontrivial exchange: every rank computes, sends
// to several peers, and receives from them, so the metrics and trace
// exercise multiple ranks and links.
func emissionProgram(p *Proc) {
	pp := 4
	r := p.Rank()
	p.Compute(float64(10 + r))
	for d := 0; d < 2; d++ {
		peer := r ^ (1 << d)
		if peer < pp {
			p.Send(peer, 7+d, []float64{float64(r), float64(peer)})
		}
	}
	for d := 0; d < 2; d++ {
		peer := r ^ (1 << d)
		if peer < pp {
			p.Recv(peer, 7+d)
		}
	}
	p.Compute(3)
}

func emissionRun(t *testing.T) (*Result, *Trace) {
	t.Helper()
	m := machine.Hypercube(4, 10, 2)
	m.CollectMetrics = true
	res, tr, err := RunTraced(m, emissionProgram)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil || tr == nil {
		t.Fatal("run produced no metrics or trace")
	}
	return res, tr
}

// TestEmissionByteIdentical runs the same configuration twice and
// requires every emitter — per-rank CSV, per-link CSV, Chrome trace
// JSON, and raw event CSV — to produce byte-for-byte identical output.
// This is the repo's run-to-run determinism contract (ROADMAP §fidelity)
// applied to the observability layer: any map-order leak into emission
// shows up here as a diff.
func TestEmissionByteIdentical(t *testing.T) {
	type emitted struct {
		ranks, links, chrome, events string
	}
	capture := func() emitted {
		res, tr := emissionRun(t)
		var ranks, links, chrome, events bytes.Buffer
		if err := res.Metrics.WriteRanksCSV(&ranks); err != nil {
			t.Fatal(err)
		}
		if err := res.Metrics.WriteLinksCSV(&links); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteChromeTrace(&chrome); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteCSV(&events); err != nil {
			t.Fatal(err)
		}
		return emitted{ranks.String(), links.String(), chrome.String(), events.String()}
	}
	a, b := capture(), capture()
	if a.ranks != b.ranks {
		t.Errorf("ranks CSV differs between identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.ranks, b.ranks)
	}
	if a.links != b.links {
		t.Errorf("links CSV differs between identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.links, b.links)
	}
	if a.chrome != b.chrome {
		t.Errorf("Chrome trace differs between identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.chrome, b.chrome)
	}
	if a.events != b.events {
		t.Errorf("event CSV differs between identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.events, b.events)
	}
	// Sanity: the run actually produced multi-rank, multi-link content.
	if n := strings.Count(a.links, "\n"); n < 3 {
		t.Fatalf("links CSV has only %d lines; program exercised too little", n)
	}
}

// reverse returns a reversed copy of s.
func reverse[T any](s []T) []T {
	out := make([]T, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

// TestEmissionSortsScrambledInput checks the defensive half of the
// ordering contract: even when a Metrics or Trace arrives with its
// slices scrambled (a hypothetical future assembly path that forgets
// the (Rank)/(From,To)/(Rank,Start) ordering), the emitters still
// write sorted, deterministic output identical to the well-ordered
// original's.
func TestEmissionSortsScrambledInput(t *testing.T) {
	res, tr := emissionRun(t)

	var wantRanks, wantLinks, wantChrome, wantEvents bytes.Buffer
	if err := res.Metrics.WriteRanksCSV(&wantRanks); err != nil {
		t.Fatal(err)
	}
	if err := res.Metrics.WriteLinksCSV(&wantLinks); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&wantChrome); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(&wantEvents); err != nil {
		t.Fatal(err)
	}

	scrambledM := &Metrics{
		P:     res.Metrics.P,
		Tp:    res.Metrics.Tp,
		Ranks: reverse(res.Metrics.Ranks),
		Links: reverse(res.Metrics.Links),
	}
	// Scramble the trace by concatenating the per-rank histories in
	// reverse rank order. Within a rank the time order is preserved:
	// sortedEvents orders by (Rank, Start) with a stable sort, so ties
	// (an instant recv and the compute it unblocks share a Start) keep
	// their construction order and block reordering is the strongest
	// scramble the contract promises to undo.
	var scrambledEvents []Event
	for r := tr.P - 1; r >= 0; r-- {
		scrambledEvents = append(scrambledEvents, tr.PerRank(r)...)
	}
	scrambledT := &Trace{P: tr.P, Tp: tr.Tp, Events: scrambledEvents}

	var gotRanks, gotLinks, gotChrome, gotEvents bytes.Buffer
	if err := scrambledM.WriteRanksCSV(&gotRanks); err != nil {
		t.Fatal(err)
	}
	if err := scrambledM.WriteLinksCSV(&gotLinks); err != nil {
		t.Fatal(err)
	}
	if err := scrambledT.WriteChromeTrace(&gotChrome); err != nil {
		t.Fatal(err)
	}
	if err := scrambledT.WriteCSV(&gotEvents); err != nil {
		t.Fatal(err)
	}

	if gotRanks.String() != wantRanks.String() {
		t.Errorf("scrambled ranks CSV not re-sorted:\n%s", gotRanks.String())
	}
	if gotLinks.String() != wantLinks.String() {
		t.Errorf("scrambled links CSV not re-sorted:\n%s", gotLinks.String())
	}
	if gotChrome.String() != wantChrome.String() {
		t.Errorf("scrambled Chrome trace not re-sorted:\n%s", gotChrome.String())
	}
	if gotEvents.String() != wantEvents.String() {
		t.Errorf("scrambled event CSV not re-sorted:\n%s", gotEvents.String())
	}

	// The scramble must not have mutated the originals in place.
	var again bytes.Buffer
	if err := tr.WriteCSV(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != wantEvents.String() {
		t.Error("sorting a scrambled copy mutated the original trace")
	}
}
