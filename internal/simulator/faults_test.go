package simulator

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"matscale/internal/faults"
	"matscale/internal/machine"
)

// faultedMachine returns a hypercube with metrics collection and the
// given fault scenario.
func faultedMachine(p int, f *faults.Config) *machine.Machine {
	m := machine.Hypercube(p, 17, 3)
	m.CollectMetrics = true
	m.Faults = f
	return m
}

// ringProgram is a deadlock-free benchmark body: rounds of compute
// followed by a ring shift.
func ringProgram(rounds, words int) func(*Proc) {
	return func(pr *Proc) {
		p := pr.P()
		for r := 0; r < rounds; r++ {
			pr.Compute(100)
			pr.Send((pr.Rank()+1)%p, r, make([]float64, words))
			pr.Recv((pr.Rank()+p-1)%p, r)
		}
	}
}

// metricsBytes serializes the full per-rank and per-link tables.
func metricsBytes(t *testing.T, m *Metrics) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteRanksCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteLinksCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Same seed ⇒ byte-identical metrics under stragglers, jitter and loss.
func TestFaultsDeterministicMetrics(t *testing.T) {
	f := &faults.Config{
		Seed:       42,
		Stragglers: map[int]float64{0: 2},
		Jitter:     0.3,
		Loss:       0.05,
	}
	run := func() []byte {
		res, err := Run(faultedMachine(8, f), ringProgram(6, 32))
		if err != nil {
			t.Fatal(err)
		}
		return metricsBytes(t, res.Metrics)
	}
	first := run()
	for i := 0; i < 3; i++ {
		if !bytes.Equal(first, run()) {
			t.Fatalf("run %d produced different metrics bytes", i)
		}
	}
	// A different seed must perturb differently (jitter and loss draws
	// change; the explicit straggler stays).
	g := f.Clone()
	g.Seed = 43
	res, err := Run(faultedMachine(8, g), ringProgram(6, 32))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(first, metricsBytes(t, res.Metrics)) {
		t.Fatal("seed 42 and 43 produced identical metrics")
	}
}

// The per-rank accounting identity Compute + Send + Idle == Tp survives
// stragglers, link perturbation and retries.
func TestFaultsAccountingIdentity(t *testing.T) {
	f := &faults.Config{
		Seed:          7,
		Stragglers:    map[int]float64{1: 3},
		StragglerProb: 0.25, StragglerMax: 2,
		LatencyFactor: 1.5, Jitter: 0.2,
		Loss: 0.1,
	}
	res, err := Run(faultedMachine(16, f), ringProgram(5, 16))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Metrics.Ranks {
		sum := r.Compute + r.Send + r.Idle
		if math.Abs(sum-res.Tp) > 1e-9*math.Max(1, res.Tp) {
			t.Errorf("rank %d: compute+send+idle = %v, Tp = %v", r.Rank, sum, res.Tp)
		}
	}
	// And the aggregate decomposition p·Tp = ΣCompute + ΣSend + ΣIdle.
	total := res.Metrics.TotalCompute() + res.Metrics.TotalComm() + res.Metrics.TotalIdle()
	if math.Abs(total-float64(res.P)*res.Tp) > 1e-9*float64(res.P)*res.Tp {
		t.Fatalf("aggregate %v ≠ p·Tp %v", total, float64(res.P)*res.Tp)
	}
}

// A straggler slows exactly its own compute and nothing else's; the
// run's Tp strictly exceeds the clean run's.
func TestStragglerChargesOnlyItsRank(t *testing.T) {
	clean, err := Run(faultedMachine(8, nil), ringProgram(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	f := &faults.Config{Stragglers: map[int]float64{3: 2}}
	faulted, err := Run(faultedMachine(8, f), ringProgram(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Tp <= clean.Tp {
		t.Fatalf("straggler Tp %v not above clean %v", faulted.Tp, clean.Tp)
	}
	for i, r := range faulted.Metrics.Ranks {
		want := clean.Metrics.Ranks[i].Compute
		if i == 3 {
			want *= 2
		}
		if r.Compute != want {
			t.Errorf("rank %d compute %v, want %v", i, r.Compute, want)
		}
	}
	d := faulted.Metrics.Degradation
	if d == nil {
		t.Fatal("no degradation block on faulted run")
	}
	if len(d.StraggledRanks) != 1 || d.StraggledRanks[0] != 3 {
		t.Fatalf("straggled ranks %v, want [3]", d.StraggledRanks)
	}
	if want := clean.Metrics.Ranks[3].Compute; d.StragglerExtraCompute != want {
		t.Fatalf("straggler extra %v, want %v", d.StragglerExtraCompute, want)
	}
	if clean.Metrics.Degradation != nil {
		t.Fatal("clean run has a degradation block")
	}
	if res := faulted; res.StragglerExtra != d.StragglerExtraCompute {
		t.Fatalf("Result.StragglerExtra %v ≠ degradation %v", res.StragglerExtra, d.StragglerExtraCompute)
	}
}

// Retries charge the sender and appear in Degradation and the trace,
// and the retry charge follows the timeout + backoff schedule exactly.
func TestRetryChargingExact(t *testing.T) {
	// Loss 0.5 on a 2-rank machine, tiny program: find a seed whose
	// first transmission retries at least once so the assertion bites.
	f := &faults.Config{Seed: 3, Loss: 0.5, Timeout: 11, Backoff: 3, MaxRetries: 20}
	m := machine.Hypercube(2, 10, 1)
	m.CollectMetrics = true
	m.CollectTrace = true
	m.Faults = f

	res, err := Run(m, func(pr *Proc) {
		if pr.Rank() == 0 {
			pr.Send(1, 0, make([]float64, 5)) // base cost 10 + 1·5 = 15
		} else {
			pr.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tries, ok := f.Transmissions(0, 0)
	if !ok {
		t.Fatal("seed 3 exhausts the retry budget; pick another seed")
	}
	base := 15.0
	wantCharge := f.RetryCharge(base, tries)
	r0 := res.Metrics.Ranks[0]
	if r0.Send != wantCharge {
		t.Fatalf("sender charged %v, want %v (%d transmissions)", r0.Send, wantCharge, tries)
	}
	if r0.Retries != tries-1 {
		t.Fatalf("retries %d, want %d", r0.Retries, tries-1)
	}
	if r0.RetryTime != wantCharge-base {
		t.Fatalf("retry time %v, want %v", r0.RetryTime, wantCharge-base)
	}
	if tries > 1 {
		var seen bool
		for _, e := range res.Trace.Events {
			if e.Kind == EventRetry && e.Rank == 0 && e.Peer == 1 {
				seen = true
				if got := e.End - e.Start; got != wantCharge-base {
					t.Fatalf("retry event duration %v, want %v", got, wantCharge-base)
				}
			}
		}
		if !seen {
			t.Fatal("no EventRetry in trace")
		}
	}
	if res.Retries != tries-1 || res.RetryTime != wantCharge-base {
		t.Fatalf("Result retry totals %d/%v, want %d/%v", res.Retries, res.RetryTime, tries-1, wantCharge-base)
	}
}

// Exhausting the retry budget aborts the run with an error instead of
// silently losing data.
func TestRetryBudgetExhaustionFailsRun(t *testing.T) {
	// MaxRetries 1 and loss 0.99: some early send almost surely fails
	// both transmissions.
	f := &faults.Config{Seed: 1, Loss: 0.99, MaxRetries: 1}
	_, err := Run(faultedMachine(4, f), ringProgram(8, 4))
	if err == nil {
		t.Fatal("run with undeliverable messages succeeded")
	}
	if !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// Zero-cost transfers bypass the loss layer: a program made only of
// SendFree never retries regardless of the loss rate.
func TestZeroCostSendsExemptFromLoss(t *testing.T) {
	f := &faults.Config{Seed: 2, Loss: 0.9, MaxRetries: 0}
	res, err := Run(faultedMachine(4, f), func(pr *Proc) {
		for r := 0; r < 20; r++ {
			pr.SendFree((pr.Rank()+1)%4, r, []float64{1})
			pr.Recv((pr.Rank()+3)%4, r)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 || res.RetryTime != 0 {
		t.Fatalf("zero-cost sends retried: %d/%v", res.Retries, res.RetryTime)
	}
}

// Link perturbation scales transfer charges: latency factor 2 doubles
// the ts component of every message.
func TestLinkLatencyFactorScalesTs(t *testing.T) {
	prog := func(pr *Proc) {
		if pr.Rank() == 0 {
			pr.Send(1, 0, make([]float64, 10))
		} else {
			pr.Recv(0, 0)
		}
	}
	m := machine.Hypercube(2, 100, 1)
	clean, err := Run(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	mf := m.WithFaults(&faults.Config{LatencyFactor: 2})
	faulted, err := Run(mf, prog)
	if err != nil {
		t.Fatal(err)
	}
	// Clean: 100 + 10 = 110. Faulted: 200 + 10 = 210.
	if clean.Tp != 110 || faulted.Tp != 210 {
		t.Fatalf("Tp clean %v faulted %v, want 110 and 210", clean.Tp, faulted.Tp)
	}

	mb := m.WithFaults(&faults.Config{BandwidthFactor: 3})
	fb, err := Run(mb, prog)
	if err != nil {
		t.Fatal(err)
	}
	// 100 + 3·10 = 130.
	if fb.Tp != 130 {
		t.Fatalf("bandwidth-faulted Tp %v, want 130", fb.Tp)
	}
}

// The critical-rank shift helper: a straggler at a non-critical rank
// moves the critical path onto it.
func TestCriticalRankShift(t *testing.T) {
	// Unbalanced program: rank p-1 computes most, so it is critical.
	prog := func(pr *Proc) {
		pr.Compute(float64(100 * (pr.Rank() + 1)))
	}
	clean, err := Run(faultedMachine(4, nil), prog)
	if err != nil {
		t.Fatal(err)
	}
	f := &faults.Config{Stragglers: map[int]float64{0: 10}}
	faulted, err := Run(faultedMachine(4, f), prog)
	if err != nil {
		t.Fatal(err)
	}
	from, to, shifted := faulted.Metrics.CriticalRankShift(clean.Metrics)
	if !shifted || from != 3 || to != 0 {
		t.Fatalf("critical rank shift %d→%d (shifted=%v), want 3→0", from, to, shifted)
	}
}

// A faulted machine behind the same topology still deadlock-detects.
func TestFaultsPreserveDeadlockDetection(t *testing.T) {
	f := &faults.Config{Seed: 1, Loss: 0.01}
	_, err := Run(faultedMachine(2, f), func(pr *Proc) {
		pr.Recv((pr.Rank()+1)%2, 0) // everyone receives, nobody sends
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}
