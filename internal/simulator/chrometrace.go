package simulator

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" complete events carry a duration, "i" instant events do not, "M"
// metadata events name processes and threads. Virtual flop units are
// written through as microseconds — chrome://tracing and Perfetto only
// interpret ts/dur as display units, so the virtual timeline renders
// unscaled.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`   // instant-event scope
	Cat  string         `json:"cat,omitempty"` // event category for filtering
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace_event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// chromeEvents converts the trace to trace_event entries. Events are
// emitted in the Trace's deterministic (Rank, Start) order, preceded by
// per-rank thread metadata, so two identical runs serialize to
// identical bytes.
func (t *Trace) chromeEvents() []chromeEvent {
	evs := make([]chromeEvent, 0, len(t.Events)+t.P+1)
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "virtual multicomputer"},
	})
	for r := 0; r < t.P; r++ {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
		})
	}
	for _, e := range t.sortedEvents() {
		ce := chromeEvent{Ts: e.Start, Pid: 0, Tid: e.Rank, Cat: e.Kind.String()}
		switch e.Kind {
		case EventCompute:
			ce.Name = "compute"
			ce.Ph = "X"
			ce.Dur = e.End - e.Start
		case EventSend:
			if e.Peer >= 0 {
				ce.Name = fmt.Sprintf("send→%d", e.Peer)
			} else {
				ce.Name = "send (multi)"
			}
			ce.Ph = "X"
			ce.Dur = e.End - e.Start
			ce.Args = map[string]any{"peer": e.Peer, "tag": e.Tag, "words": e.Words}
		case EventIdle:
			ce.Name = fmt.Sprintf("wait←%d", e.Peer)
			ce.Ph = "X"
			ce.Dur = e.End - e.Start
			ce.Args = map[string]any{"peer": e.Peer, "tag": e.Tag}
		case EventRecv:
			ce.Name = fmt.Sprintf("recv←%d", e.Peer)
			ce.Ph = "i"
			ce.S = "t"
			ce.Args = map[string]any{"peer": e.Peer, "tag": e.Tag, "words": e.Words}
		case EventRetry:
			ce.Name = fmt.Sprintf("retry→%d", e.Peer)
			ce.Ph = "X"
			ce.Dur = e.End - e.Start
			ce.Args = map[string]any{"peer": e.Peer, "tag": e.Tag, "words": e.Words}
		default:
			continue
		}
		evs = append(evs, ce)
	}
	return evs
}

// WriteChromeTrace writes the trace in Chrome trace_event JSON format,
// loadable in chrome://tracing or https://ui.perfetto.dev: one "thread"
// lane per rank, compute/send/wait intervals as complete events, message
// consumptions as instant events. The output is valid JSON and
// deterministic for a fixed simulation configuration.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		TraceEvents:     t.chromeEvents(),
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"p": t.P, "tp": t.Tp, "time_unit": "flop"},
	})
}

// WriteCSV writes the raw event list as CSV with a header row, one
// event per line in (rank, start) order regardless of how the Trace
// was assembled.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "rank,kind,peer,tag,words,start,end"); err != nil {
		return err
	}
	for _, e := range t.sortedEvents() {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%d,%g,%g\n",
			e.Rank, e.Kind, e.Peer, e.Tag, e.Words, e.Start, e.End); err != nil {
			return err
		}
	}
	return nil
}
