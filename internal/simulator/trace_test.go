package simulator

import (
	"strings"
	"testing"

	"matscale/internal/machine"
)

func tracedPingPong(t *testing.T) (*Result, *Trace) {
	t.Helper()
	res, tr, err := RunTraced(twoProc(10, 1), func(p *Proc) {
		if p.Rank() == 0 {
			p.Compute(5)
			p.Send(1, 3, []float64{1, 2}) // 5 → 17
			p.Recv(1, 4)                  // reply arrives at 29
		} else {
			p.Recv(0, 3)               // idle 0→17
			p.Compute(0)               // zero-length marker
			p.Send(0, 4, []float64{9}) // 17 → 28
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, tr
}

func TestTraceEventsStructure(t *testing.T) {
	res, tr := tracedPingPong(t)
	if tr.P != 2 || tr.Tp != res.Tp {
		t.Fatalf("trace header %d/%v vs result %v", tr.P, tr.Tp, res.Tp)
	}
	ev0 := tr.PerRank(0)
	// compute, send, idle (17→28), recv.
	kinds := make([]EventKind, len(ev0))
	for i, e := range ev0 {
		kinds[i] = e.Kind
	}
	want := []EventKind{EventCompute, EventSend, EventIdle, EventRecv}
	if len(kinds) != len(want) {
		t.Fatalf("rank 0 kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("rank 0 kinds = %v, want %v", kinds, want)
		}
	}
	if ev0[1].Start != 5 || ev0[1].End != 17 || ev0[1].Words != 2 || ev0[1].Peer != 1 {
		t.Fatalf("send event = %+v", ev0[1])
	}
	if ev0[2].Start != 17 || ev0[2].End != 28 {
		t.Fatalf("idle event = %+v", ev0[2])
	}
}

func TestTraceIntervalsConsistent(t *testing.T) {
	_, tr := tracedPingPong(t)
	for _, e := range tr.Events {
		if e.Start > e.End {
			t.Fatalf("event %+v runs backwards", e)
		}
		if e.End > tr.Tp+1e-9 {
			t.Fatalf("event %+v exceeds Tp=%v", e, tr.Tp)
		}
	}
	// Per-rank events are non-overlapping and ordered.
	for r := 0; r < tr.P; r++ {
		evs := tr.PerRank(r)
		for i := 1; i < len(evs); i++ {
			if evs[i].Start < evs[i-1].End-1e-9 {
				t.Fatalf("rank %d: overlapping events %+v then %+v", r, evs[i-1], evs[i])
			}
		}
	}
}

func TestTraceDurationsMatchAccounting(t *testing.T) {
	res, tr, err := RunTraced(machine.Hypercube(4, 7, 2), func(p *Proc) {
		p.Compute(float64(10 * (p.Rank() + 1)))
		next := (p.Rank() + 1) % 4
		prev := (p.Rank() + 3) % 4
		p.SendNeighbor(next, 0, make([]float64, 5))
		p.Recv(prev, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	var compute, comm, idle float64
	for _, e := range tr.Events {
		switch e.Kind {
		case EventCompute:
			compute += e.End - e.Start
		case EventSend:
			comm += e.End - e.Start
		case EventIdle:
			idle += e.End - e.Start
		}
	}
	if compute != res.TotalCompute {
		t.Fatalf("traced compute %v vs accounted %v", compute, res.TotalCompute)
	}
	if comm != res.TotalComm {
		t.Fatalf("traced comm %v vs accounted %v", comm, res.TotalComm)
	}
	// Traced idle counts only pre-receive waits; processors also idle
	// after finishing early, so it is a lower bound on IdleTime.
	if idle > res.IdleTime()+1e-9 {
		t.Fatalf("traced idle %v exceeds accounted %v", idle, res.IdleTime())
	}
}

func TestTimelineRendering(t *testing.T) {
	_, tr := tracedPingPong(t)
	s := tr.Timeline(40)
	if !strings.Contains(s, "p0") || !strings.Contains(s, "p1") {
		t.Fatalf("timeline missing lanes:\n%s", s)
	}
	for _, ch := range []string{"C", "S", "."} {
		if !strings.Contains(s, ch) {
			t.Fatalf("timeline missing %q:\n%s", ch, s)
		}
	}
	if tr.Timeline(0) != "" {
		t.Fatal("zero-width timeline should be empty")
	}
}

func TestRunWithoutTraceRecordsNothing(t *testing.T) {
	// Plain Run must not pay for or retain events.
	res, err := Run(twoProc(1, 1), func(p *Proc) {
		p.Compute(10)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tp != 10 {
		t.Fatalf("Tp = %v", res.Tp)
	}
}

func TestRunTracedInvalidMachine(t *testing.T) {
	if _, _, err := RunTraced(&machine.Machine{}, func(p *Proc) {}); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[EventKind]string{
		EventCompute: "compute", EventSend: "send", EventIdle: "idle", EventRecv: "recv",
		EventKind(9): "EventKind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}
