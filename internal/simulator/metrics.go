package simulator

import (
	"fmt"
	"io"
	"sort"

	"matscale/internal/machine"
)

// RankMetrics is one processor's virtual-time budget for a run. Every
// instant of a rank's timeline is exactly one of computing, sending, or
// idle, so
//
//	Compute + Send + Idle == Tp
//
// holds per rank (up to float64 summation error), which is the per-rank
// refinement of the paper's overhead decomposition To = p·Tp − W
// (Section 2): summing the Send and Idle columns over ranks gives the
// communication and idle components of To when W equals the total
// compute time.
type RankMetrics struct {
	Rank    int
	Compute float64 // virtual time spent in Compute
	Send    float64 // virtual time charged for outgoing transfers
	// RecvWait is the virtual time spent blocked in Recv behind a
	// message that had not yet arrived.
	RecvWait float64
	// Idle is the rank's total idle time relative to the parallel
	// completion: RecvWait plus the tail between the rank's final clock
	// and Tp.
	Idle float64
	// Finish is the rank's final clock (max over ranks = Tp).
	Finish     float64
	MsgsSent   int
	MsgsRecvd  int
	WordsSent  int // includes zero-cost bookkeeping transfers
	WordsRecvd int

	// ComputeFactor is the rank's straggler slowdown (1 on a healthy
	// machine) and StragglerExtra the compute time it charged beyond
	// the ideal machine (included in Compute).
	ComputeFactor  float64
	StragglerExtra float64
	// Retries counts the rank's retransmissions and RetryTime the
	// virtual time the reliable-delivery layer charged for them
	// (included in Send).
	Retries   int
	RetryTime float64
}

// LinkMetrics is the charged traffic carried by one directed logical
// link (sender rank → destination rank). Zero-cost transfers
// (verification gathers, barriers) do not appear. Busy is the virtual
// time the link spent carrying those messages; Busy/Tp is the link's
// utilization.
type LinkMetrics struct {
	From  int
	To    int
	Msgs  int
	Words int
	Busy  float64
}

// Utilization returns the fraction of the run the link was busy.
func (l LinkMetrics) Utilization(tp float64) float64 {
	if tp <= 0 {
		return 0
	}
	return l.Busy / tp
}

// Metrics is the per-rank and per-link breakdown of one simulation,
// recorded at zero virtual cost. It is populated on Result when the
// machine has CollectMetrics set. All slices are deterministically
// ordered (Ranks by rank, Links by (From, To)), so two runs of the same
// configuration produce identical Metrics.
type Metrics struct {
	P     int
	Tp    float64
	Ranks []RankMetrics
	Links []LinkMetrics
	// Degradation decomposes the damage a fault configuration did to
	// the run; nil when the machine ran without enabled faults.
	Degradation *Degradation
}

// Degradation attributes fault-induced overhead to its sources. The
// two time columns separate the paper's To inflation into its causes:
// straggler damage surfaces as extra compute on the slowed ranks plus
// idle time on the ranks that wait for them, retry damage as extra
// communication time on the senders that retransmitted. Comparing
// CriticalRank against an unfaulted baseline run shows whether the
// perturbation moved the critical path (see CriticalRankShift).
type Degradation struct {
	// StragglerExtraCompute is Σ over ranks of the compute time charged
	// beyond the ideal machine by slowdown factors.
	StragglerExtraCompute float64
	// RetryComm is Σ over ranks of the time charged by the reliable-
	// delivery layer (retransmissions + timeout waits).
	RetryComm float64
	// Retries is the total number of retransmissions.
	Retries int
	// StraggledRanks lists the ranks whose compute factor exceeds 1.
	StraggledRanks []int
	// CriticalRank is the critical rank of the faulted run (lowest rank
	// finishing at Tp).
	CriticalRank int
}

// CriticalRankShift reports how the critical path moved relative to an
// unfaulted baseline of the same program: the baseline's critical rank,
// the faulted run's, and whether they differ.
func (m *Metrics) CriticalRankShift(baseline *Metrics) (from, to int, shifted bool) {
	from, to = baseline.CriticalRank(), m.CriticalRank()
	return from, to, from != to
}

// buildMetrics assembles the Metrics of a finished run.
func buildMetrics(procs []*Proc, tp float64, mach *machine.Machine) *Metrics {
	m := &Metrics{P: len(procs), Tp: tp, Ranks: make([]RankMetrics, len(procs))}
	for i, pr := range procs {
		m.Ranks[i] = RankMetrics{
			Rank:           i,
			Compute:        pr.computeTime,
			Send:           pr.commTime,
			RecvWait:       pr.recvWait,
			Idle:           pr.recvWait + (tp - pr.clock),
			Finish:         pr.clock,
			MsgsSent:       pr.msgsSent,
			MsgsRecvd:      pr.msgsRecvd,
			WordsSent:      pr.wordsSent,
			WordsRecvd:     pr.wordsRecvd,
			ComputeFactor:  pr.computeFactor,
			StragglerExtra: pr.stragglerExtra,
			Retries:        pr.retries,
			RetryTime:      pr.retryTime,
		}
		// Iterate destinations in sorted order rather than ranging the
		// map directly: ranks ascend with i, so Links comes out already
		// ordered by (From, To) with no post-sort to forget.
		dsts := make([]int, 0, len(pr.links))
		for dst := range pr.links { //nodetbreak:ordered — sorted immediately below
			dsts = append(dsts, dst)
		}
		sort.Ints(dsts)
		for _, dst := range dsts {
			l := pr.links[dst]
			m.Links = append(m.Links, LinkMetrics{From: i, To: dst, Msgs: l.msgs, Words: l.words, Busy: l.busy})
		}
	}
	if mach != nil && mach.Faults.Enabled() {
		d := &Degradation{CriticalRank: m.CriticalRank()}
		for _, r := range m.Ranks {
			d.StragglerExtraCompute += r.StragglerExtra
			d.RetryComm += r.RetryTime
			d.Retries += r.Retries
			if r.ComputeFactor > 1 {
				d.StraggledRanks = append(d.StraggledRanks, r.Rank)
			}
		}
		m.Degradation = d
	}
	return m
}

// TotalCompute returns Σᵢ Computeᵢ.
func (m *Metrics) TotalCompute() float64 {
	var s float64
	for _, r := range m.Ranks {
		s += r.Compute
	}
	return s
}

// TotalComm returns Σᵢ Sendᵢ.
func (m *Metrics) TotalComm() float64 {
	var s float64
	for _, r := range m.Ranks {
		s += r.Send
	}
	return s
}

// TotalIdle returns Σᵢ Idleᵢ.
func (m *Metrics) TotalIdle() float64 {
	var s float64
	for _, r := range m.Ranks {
		s += r.Idle
	}
	return s
}

// CriticalRank returns the lowest rank whose finish time equals Tp —
// the processor on the critical path of the run.
func (m *Metrics) CriticalRank() int {
	for _, r := range m.Ranks {
		if r.Finish >= m.Tp {
			return r.Rank
		}
	}
	return 0
}

// CommComputeRatio returns TotalComm/TotalCompute (0 when no compute
// was charged).
func (m *Metrics) CommComputeRatio() float64 {
	c := m.TotalCompute()
	if c == 0 {
		return 0
	}
	return m.TotalComm() / c
}

// LoadImbalance returns max busy time over mean busy time across ranks
// (busy = compute + send); 1.0 means perfectly balanced, larger values
// mean the critical rank carries proportionally more work.
func (m *Metrics) LoadImbalance() float64 {
	var sum, max float64
	for _, r := range m.Ranks {
		busy := r.Compute + r.Send
		sum += busy
		if busy > max {
			max = busy
		}
	}
	if sum == 0 {
		return 1
	}
	mean := sum / float64(len(m.Ranks))
	if mean == 0 {
		return 1
	}
	return max / mean
}

// Overhead returns the measured total overhead To = p·Tp − W for
// problem size w — the quantity all of the paper's scalability analysis
// is built on.
func (m *Metrics) Overhead(w float64) float64 { return float64(m.P)*m.Tp - w }

// sortedRanks returns m.Ranks ordered by rank. buildMetrics already
// constructs the slice in rank order, in which case this is a cheap
// no-copy pass-through; the sort exists so emission stays deterministic
// even for a Metrics assembled by some future call site that forgets
// the ordering contract.
func (m *Metrics) sortedRanks() []RankMetrics {
	if sort.SliceIsSorted(m.Ranks, func(a, b int) bool { return m.Ranks[a].Rank < m.Ranks[b].Rank }) {
		return m.Ranks
	}
	rs := append([]RankMetrics(nil), m.Ranks...)
	sort.Slice(rs, func(a, b int) bool { return rs[a].Rank < rs[b].Rank })
	return rs
}

// sortedLinks returns m.Links ordered by (From, To), with the same
// defensive-copy behavior as sortedRanks.
func (m *Metrics) sortedLinks() []LinkMetrics {
	less := func(a, b LinkMetrics) bool {
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	}
	if sort.SliceIsSorted(m.Links, func(a, b int) bool { return less(m.Links[a], m.Links[b]) }) {
		return m.Links
	}
	ls := append([]LinkMetrics(nil), m.Links...)
	sort.Slice(ls, func(a, b int) bool { return less(ls[a], ls[b]) })
	return ls
}

// WriteRanksCSV writes the per-rank table as CSV with a header row,
// rows in increasing rank order regardless of how m was assembled.
// The last four columns carry the fault bookkeeping; they are written
// unconditionally (as 1/0 on a healthy machine) so the schema does not
// depend on the configuration.
func (m *Metrics) WriteRanksCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "rank,compute,send,recv_wait,idle,finish,msgs_sent,msgs_recvd,words_sent,words_recvd,compute_factor,straggler_extra,retries,retry_time"); err != nil {
		return err
	}
	for _, r := range m.sortedRanks() {
		if _, err := fmt.Fprintf(w, "%d,%g,%g,%g,%g,%g,%d,%d,%d,%d,%g,%g,%d,%g\n",
			r.Rank, r.Compute, r.Send, r.RecvWait, r.Idle, r.Finish,
			r.MsgsSent, r.MsgsRecvd, r.WordsSent, r.WordsRecvd,
			r.ComputeFactor, r.StragglerExtra, r.Retries, r.RetryTime); err != nil {
			return err
		}
	}
	return nil
}

// WriteLinksCSV writes the per-link table as CSV with a header row,
// rows in increasing (from, to) order regardless of how m was
// assembled.
func (m *Metrics) WriteLinksCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "from,to,msgs,words,busy,utilization"); err != nil {
		return err
	}
	for _, l := range m.sortedLinks() {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%g,%g\n",
			l.From, l.To, l.Msgs, l.Words, l.Busy, l.Utilization(m.Tp)); err != nil {
			return err
		}
	}
	return nil
}
