package simulator

import (
	"fmt"
	"sort"
	"strings"

	"matscale/internal/machine"
)

// EventKind classifies a traced processor event.
type EventKind int

const (
	// EventCompute is local arithmetic.
	EventCompute EventKind = iota
	// EventSend is a charged outgoing transfer.
	EventSend
	// EventIdle is time spent blocked waiting for a message.
	EventIdle
	// EventRecv marks a message consumption (zero duration; the wait,
	// if any, is the preceding EventIdle).
	EventRecv
	// EventRetry is the reliable-delivery overhead of a lossy send:
	// the lost transmissions and timeout waits preceding the EventSend
	// that finally delivered.
	EventRetry
)

func (k EventKind) String() string {
	switch k {
	case EventCompute:
		return "compute"
	case EventSend:
		return "send"
	case EventIdle:
		return "idle"
	case EventRecv:
		return "recv"
	case EventRetry:
		return "retry"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one interval in a processor's virtual-time history.
type Event struct {
	Rank  int
	Kind  EventKind
	Peer  int // counterpart rank for send/recv, -1 otherwise
	Tag   int // message tag for send/recv
	Words int
	Start float64
	End   float64
}

// Trace is the ordered event history of a simulation.
type Trace struct {
	P      int
	Tp     float64
	Events []Event // ordered by (Rank, Start)
}

// sortedEvents returns t.Events in (Rank, Start) order. runInternal
// already builds the trace sorted, in which case this is a no-copy
// pass-through; the stable sort exists so the exporters stay
// byte-deterministic even for a Trace assembled by some future call
// site that forgets the ordering contract.
func (t *Trace) sortedEvents() []Event {
	less := func(a, b Event) bool {
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Start < b.Start
	}
	if sort.SliceIsSorted(t.Events, func(i, j int) bool { return less(t.Events[i], t.Events[j]) }) {
		return t.Events
	}
	es := append([]Event(nil), t.Events...)
	sort.SliceStable(es, func(i, j int) bool { return less(es[i], es[j]) })
	return es
}

// PerRank returns rank r's events in time order.
func (t *Trace) PerRank(r int) []Event {
	var out []Event
	for _, e := range t.Events {
		if e.Rank == r {
			out = append(out, e)
		}
	}
	return out
}

// Timeline renders a coarse per-processor Gantt chart: one lane per
// processor, time scaled to width columns; C = compute, S = send,
// . = idle/waiting, space = finished.
func (t *Trace) Timeline(width int) string {
	if width <= 0 || t.Tp <= 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "virtual-time timeline (Tp = %.1f, one column ≈ %.1f units)\n", t.Tp, t.Tp/float64(width))
	scale := float64(width) / t.Tp
	for r := 0; r < t.P; r++ {
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = ' '
		}
		for _, e := range t.PerRank(r) {
			var ch byte
			switch e.Kind {
			case EventCompute:
				ch = 'C'
			case EventSend:
				ch = 'S'
			case EventIdle:
				ch = '.'
			case EventRetry:
				ch = 'R'
			default:
				continue
			}
			lo := int(e.Start * scale)
			hi := int(e.End * scale)
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi && i < width; i++ {
				lane[i] = ch
			}
		}
		fmt.Fprintf(&sb, "p%-4d |%s|\n", r, lane)
	}
	return sb.String()
}

// RunTraced is Run with event tracing enabled; it additionally returns
// the ordered trace. Tracing changes no virtual time.
func RunTraced(m *machine.Machine, body func(*Proc)) (*Result, *Trace, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	res, err := dispatch(m, body, true)
	if err != nil {
		return nil, nil, err
	}
	return res, res.Trace, nil
}
