package simulator

import (
	"strings"
	"testing"

	"matscale/internal/machine"
	"matscale/internal/topology"
)

func twoProc(ts, tw float64) *machine.Machine {
	return machine.Hypercube(2, ts, tw)
}

func TestComputeAdvancesClock(t *testing.T) {
	res, err := Run(twoProc(0, 0), func(p *Proc) {
		p.Compute(float64(100 * (p.Rank() + 1)))
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tp != 200 {
		t.Fatalf("Tp = %v, want 200 (max of 100, 200)", res.Tp)
	}
	if res.ProcClocks[0] != 100 || res.ProcClocks[1] != 200 {
		t.Fatalf("clocks = %v", res.ProcClocks)
	}
	if res.TotalCompute != 300 {
		t.Fatalf("TotalCompute = %v, want 300", res.TotalCompute)
	}
}

func TestSendRecvCostAndData(t *testing.T) {
	m := twoProc(10, 2)
	res, err := Run(m, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := p.Recv(0, 7)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("received %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sender pays ts + tw·3 = 16; receiver's clock advances to the
	// arrival time 16.
	if res.Tp != 16 {
		t.Fatalf("Tp = %v, want 16", res.Tp)
	}
	if res.Messages != 1 || res.Words != 3 {
		t.Fatalf("messages=%d words=%d", res.Messages, res.Words)
	}
}

func TestRecvDoesNotRewindClock(t *testing.T) {
	res, err := Run(twoProc(1, 1), func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, []float64{5}) // arrival at t=2
		} else {
			p.Compute(100)
			if got := p.Recv(0, 0); got[0] != 5 {
				t.Errorf("got %v", got)
			}
			if p.Clock() != 100 {
				t.Errorf("clock = %v, want 100 (already past arrival)", p.Clock())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tp != 100 {
		t.Fatalf("Tp = %v", res.Tp)
	}
}

func TestSendCopiesData(t *testing.T) {
	_, err := Run(twoProc(0, 0), func(p *Proc) {
		if p.Rank() == 0 {
			buf := []float64{1}
			p.SendFree(1, 0, buf)
			buf[0] = 99 // mutating after send must not affect receiver
		} else {
			if got := p.Recv(0, 0); got[0] != 1 {
				t.Errorf("receiver saw mutated buffer: %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderingFIFO(t *testing.T) {
	_, err := Run(twoProc(0, 0), func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 10; i++ {
				p.SendFree(1, 4, []float64{float64(i)})
			}
		} else {
			for i := 0; i < 10; i++ {
				if got := p.Recv(0, 4); got[0] != float64(i) {
					t.Errorf("message %d out of order: %v", i, got)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagsKeepStreamsSeparate(t *testing.T) {
	_, err := Run(twoProc(0, 0), func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFree(1, 1, []float64{1})
			p.SendFree(1, 2, []float64{2})
		} else {
			// Receive in the opposite tag order.
			if got := p.Recv(0, 2); got[0] != 2 {
				t.Errorf("tag 2 delivered %v", got)
			}
			if got := p.Recv(0, 1); got[0] != 1 {
				t.Errorf("tag 1 delivered %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeChargesOnce(t *testing.T) {
	// Both start at t=0 and exchange m=4 words with ts=10, tw=1:
	// both finish at 14, modeling one shift step.
	res, err := Run(twoProc(10, 1), func(p *Proc) {
		other := 1 - p.Rank()
		got := p.Exchange(other, 3, []float64{float64(p.Rank()), 0, 0, 0})
		if got[0] != float64(other) {
			t.Errorf("rank %d received %v", p.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tp != 14 {
		t.Fatalf("Tp = %v, want 14", res.Tp)
	}
	if res.ProcClocks[0] != res.ProcClocks[1] {
		t.Fatalf("exchange left clocks unequal: %v", res.ProcClocks)
	}
}

func TestExchangeSynchronizesLaggard(t *testing.T) {
	res, err := Run(twoProc(10, 1), func(p *Proc) {
		if p.Rank() == 1 {
			p.Compute(50)
		}
		p.Exchange(1-p.Rank(), 0, []float64{1})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Completion = max(0, 50) + (10 + 1) = 61 for both.
	if res.ProcClocks[0] != 61 || res.ProcClocks[1] != 61 {
		t.Fatalf("clocks = %v, want [61 61]", res.ProcClocks)
	}
}

func TestChargedSend(t *testing.T) {
	res, err := Run(twoProc(100, 100), func(p *Proc) {
		if p.Rank() == 0 {
			p.ChargedSend(1, 0, []float64{1, 2}, 42)
		} else {
			p.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tp != 42 {
		t.Fatalf("Tp = %v, want 42", res.Tp)
	}
}

func TestSendFreeIsFree(t *testing.T) {
	res, err := Run(twoProc(100, 100), func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFree(1, 0, []float64{1})
		} else {
			p.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tp != 0 {
		t.Fatalf("Tp = %v, want 0", res.Tp)
	}
}

func TestStoreAndForwardMultiHopCharge(t *testing.T) {
	m := machine.Hypercube(8, 10, 1)
	res, err := Run(m, func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.Send(7, 0, []float64{1, 2}) // 3 hops: 3·(10+2) = 36
		case 7:
			p.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tp != 36 {
		t.Fatalf("Tp = %v, want 36", res.Tp)
	}
}

func TestSendMultiOnePortSums(t *testing.T) {
	m := machine.Hypercube(4, 10, 1)
	res, err := Run(m, func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.SendMulti([]Transfer{
				{Dst: 1, Tag: 0, Data: []float64{1}},    // 11
				{Dst: 2, Tag: 0, Data: []float64{1, 2}}, // 12
			})
		case 1, 2:
			p.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProcClocks[0] != 23 {
		t.Fatalf("one-port sender clock = %v, want 23", res.ProcClocks[0])
	}
}

func TestSendMultiAllPortTakesMax(t *testing.T) {
	m := machine.Hypercube(4, 10, 1)
	m.AllPort = true
	res, err := Run(m, func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.SendMulti([]Transfer{
				{Dst: 1, Tag: 0, Data: []float64{1}},
				{Dst: 2, Tag: 0, Data: []float64{1, 2}},
			})
		case 1, 2:
			p.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProcClocks[0] != 12 {
		t.Fatalf("all-port sender clock = %v, want 12 (max of 11, 12)", res.ProcClocks[0])
	}
}

func TestDeadlockDetected(t *testing.T) {
	_, err := Run(twoProc(0, 0), func(p *Proc) {
		p.Recv(1-p.Rank(), 0) // both wait forever
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestDeadlockAfterExitDetected(t *testing.T) {
	_, err := Run(twoProc(0, 0), func(p *Proc) {
		if p.Rank() == 1 {
			p.Recv(0, 0) // rank 0 exits immediately; rank 1 starves
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestWrongTagDeadlocks(t *testing.T) {
	_, err := Run(twoProc(0, 0), func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFree(1, 1, []float64{1})
			p.Recv(1, 0)
		} else {
			p.Recv(0, 2) // tag mismatch: message queued but unwanted
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestPanicPropagates(t *testing.T) {
	_, err := Run(twoProc(0, 0), func(p *Proc) {
		if p.Rank() == 0 {
			panic("kaboom")
		}
		p.Recv(0, 0)
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic message", err)
	}
}

func TestUnconsumedMessagesReported(t *testing.T) {
	_, err := Run(twoProc(0, 0), func(p *Proc) {
		if p.Rank() == 0 {
			p.SendFree(1, 0, []float64{1})
		}
	})
	if err == nil || !strings.Contains(err.Error(), "unconsumed") {
		t.Fatalf("err = %v, want unconsumed message error", err)
	}
}

func TestInvalidRankPanicsAreErrors(t *testing.T) {
	_, err := Run(twoProc(0, 0), func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(5, 0, nil) // panics inside the topology distance lookup
		}
	})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v, want out-of-range error", err)
	}
	_, err = Run(twoProc(0, 0), func(p *Proc) {
		if p.Rank() == 0 {
			p.Recv(-1, 0)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("err = %v, want out-of-range error", err)
	}
}

func TestNegativeComputePanics(t *testing.T) {
	_, err := Run(twoProc(0, 0), func(p *Proc) {
		p.Compute(-1)
	})
	if err == nil || !strings.Contains(err.Error(), "negative compute") {
		t.Fatalf("err = %v", err)
	}
}

func TestNegativeChargedSendPanics(t *testing.T) {
	_, err := Run(twoProc(0, 0), func(p *Proc) {
		if p.Rank() == 0 {
			p.ChargedSend(1, 0, nil, -5)
		} else {
			p.Recv(0, 0)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "negative send cost") {
		t.Fatalf("err = %v", err)
	}
}

func TestInvalidMachineRejected(t *testing.T) {
	if _, err := Run(&machine.Machine{}, func(p *Proc) {}); err == nil {
		t.Fatal("Run accepted invalid machine")
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	res := &Result{P: 4, Tp: 100}
	if got := res.Overhead(300); got != 100 {
		t.Fatalf("Overhead = %v, want 100", got)
	}
	if got := res.Speedup(300); got != 3 {
		t.Fatalf("Speedup = %v, want 3", got)
	}
	if got := res.Efficiency(300); got != 0.75 {
		t.Fatalf("Efficiency = %v, want 0.75", got)
	}
}

func TestProcAccessors(t *testing.T) {
	m := twoProc(1, 1)
	_, err := Run(m, func(p *Proc) {
		if p.P() != 2 {
			t.Errorf("P() = %d", p.P())
		}
		if p.Machine() != m {
			t.Error("Machine() mismatch")
		}
		if p.Clock() != 0 {
			t.Errorf("initial clock = %v", p.Clock())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Determinism: running the same program many times must produce the
// same virtual times regardless of goroutine scheduling.
func TestDeterministicVirtualTime(t *testing.T) {
	prog := func(p *Proc) {
		// Ring shift of 64 words, then a reduction to rank 0.
		next := (p.Rank() + 1) % p.P()
		prev := (p.Rank() + p.P() - 1) % p.P()
		data := make([]float64, 64)
		p.Send(next, 0, data)
		p.Recv(prev, 0)
		p.Compute(float64(p.Rank()))
		if p.Rank() != 0 {
			p.Send(0, 1, []float64{p.Clock()})
		} else {
			for i := 1; i < p.P(); i++ {
				p.Recv(i, 1)
			}
		}
	}
	m := machine.Hypercube(16, 5, 2)
	first, err := Run(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		res, err := Run(m, prog)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tp != first.Tp {
			t.Fatalf("trial %d: Tp = %v, want %v", trial, res.Tp, first.Tp)
		}
		for i := range res.ProcClocks {
			if res.ProcClocks[i] != first.ProcClocks[i] {
				t.Fatalf("trial %d: clock[%d] differs", trial, i)
			}
		}
	}
}

// A larger smoke test: 512 processors all exchanging with hypercube
// neighbors across every dimension (the communication skeleton of the
// recursive-doubling collectives).
func TestManyProcessorsDimensionExchange(t *testing.T) {
	p := 512
	m := machine.Hypercube(p, 1, 1)
	h := topology.NewHypercube(p)
	res, err := Run(m, func(pr *Proc) {
		for d := 0; d < h.Dim; d++ {
			partner := h.NeighborAcross(pr.Rank(), d)
			got := pr.Exchange(partner, d, []float64{float64(pr.Rank())})
			if got[0] != float64(partner) {
				t.Errorf("rank %d dim %d: got %v", pr.Rank(), d, got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 9 synchronized exchange steps of 1 word: Tp = 9·(1+1) = 18.
	if res.Tp != 18 {
		t.Fatalf("Tp = %v, want 18", res.Tp)
	}
}

func TestPerProcessorAccounting(t *testing.T) {
	res, err := Run(twoProc(10, 1), func(p *Proc) {
		if p.Rank() == 0 {
			p.Compute(30)
			p.Send(1, 0, []float64{1, 2}) // cost 12
		} else {
			p.Recv(0, 0) // arrives at 42
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProcCompute[0] != 30 || res.ProcComm[0] != 12 {
		t.Fatalf("rank 0 accounting: compute=%v comm=%v", res.ProcCompute[0], res.ProcComm[0])
	}
	if res.ProcCompute[1] != 0 || res.ProcComm[1] != 0 {
		t.Fatalf("rank 1 accounting: compute=%v comm=%v", res.ProcCompute[1], res.ProcComm[1])
	}
	// Tp = 42; idle = 2·42 − 30 − 12 = 42 (rank 1 waited the whole run).
	if res.Tp != 42 {
		t.Fatalf("Tp = %v", res.Tp)
	}
	if got := res.IdleTime(); got != 42 {
		t.Fatalf("IdleTime = %v, want 42", got)
	}
}

func TestOverheadDecomposition(t *testing.T) {
	// To = p·Tp − W must equal TotalComm + IdleTime when W equals the
	// total compute performed — the Section 2 decomposition.
	res, err := Run(twoProc(5, 1), func(p *Proc) {
		p.Compute(100)
		other := 1 - p.Rank()
		p.Exchange(other, 0, make([]float64, 8))
		if p.Rank() == 0 {
			p.Compute(50) // imbalance → idle time on rank 1
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	w := res.TotalCompute
	to := res.Overhead(w)
	if diff := to - (res.TotalComm + res.IdleTime()); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("To = %v but comm+idle = %v", to, res.TotalComm+res.IdleTime())
	}
}

func TestSendNeighborSelfIsFree(t *testing.T) {
	res, err := Run(twoProc(100, 100), func(p *Proc) {
		if p.Rank() == 0 {
			p.SendNeighbor(0, 0, []float64{1, 2, 3})
			if got := p.Recv(0, 0); got[1] != 2 {
				t.Errorf("self message lost: %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tp != 0 {
		t.Fatalf("self neighbor-send charged: Tp = %v", res.Tp)
	}
}

func TestSendNeighborDistanceIndependent(t *testing.T) {
	// SendNeighbor charges one hop even between distant ranks — the
	// logical-neighbor contract.
	m := machine.Hypercube(8, 10, 1)
	res, err := Run(m, func(p *Proc) {
		switch p.Rank() {
		case 0:
			p.SendNeighbor(7, 0, []float64{1, 2}) // 3 physical hops
		case 7:
			p.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tp != 12 { // one hop: ts + tw·2
		t.Fatalf("Tp = %v, want 12", res.Tp)
	}
}

func TestExchangeNeighborSymmetric(t *testing.T) {
	res, err := Run(twoProc(10, 1), func(p *Proc) {
		got := p.ExchangeNeighbor(1-p.Rank(), 0, []float64{float64(p.Rank())})
		if got[0] != float64(1-p.Rank()) {
			t.Errorf("rank %d got %v", p.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tp != 11 {
		t.Fatalf("Tp = %v, want 11", res.Tp)
	}
}
