package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Parse builds a Config from the textual fault grammar used by the CLI
// (`matscale run -faults '...'`) and documented in docs/FAULTS.md:
//
//	spec  := item (',' item)*
//	item  := 'seed=' uint64
//	       | 'straggler=' factor '@rank' rank     explicit straggler (repeatable)
//	       | 'stragglers=' prob ':' factor        seeded distribution
//	       | 'loss=' prob                         per-transmission loss
//	       | 'latency=' factor                    ts multiplier on every link
//	       | 'bandwidth=' factor                  tw multiplier on every link
//	       | 'jitter=' amount                     per-link factor in [1, 1+amount]
//	       | 'timeout=' time                      retransmission timeout (flop units)
//	       | 'retries=' n                         retry budget per message
//	       | 'backoff=' factor                    timeout growth per attempt
//
// Example: "straggler=3@rank7,loss=0.01,seed=42". Whitespace around
// items is ignored. Parse validates the result.
func Parse(spec string) (*Config, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("faults: empty spec")
	}
	c := &Config{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("faults: %q is not key=value", item)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			c.Seed, err = strconv.ParseUint(val, 10, 64)
		case "straggler":
			err = parseStraggler(c, val)
		case "stragglers":
			err = parseStragglerDist(c, val)
		case "loss":
			c.Loss, err = parseFloat(val)
		case "latency":
			c.LatencyFactor, err = parseFloat(val)
		case "bandwidth":
			c.BandwidthFactor, err = parseFloat(val)
		case "jitter":
			c.Jitter, err = parseFloat(val)
		case "timeout":
			c.Timeout, err = parseFloat(val)
		case "retries":
			c.MaxRetries, err = strconv.Atoi(val)
		case "backoff":
			c.Backoff, err = parseFloat(val)
		default:
			return nil, fmt.Errorf("faults: unknown key %q (want seed, straggler, stragglers, loss, latency, bandwidth, jitter, timeout, retries or backoff)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: bad %s value %q: %v", key, val, err)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// parseStraggler handles "FACTOR@rankR".
func parseStraggler(c *Config, val string) error {
	fs, at, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want FACTOR@rankN")
	}
	f, err := parseFloat(fs)
	if err != nil {
		return err
	}
	rs, ok := strings.CutPrefix(at, "rank")
	if !ok {
		return fmt.Errorf("want FACTOR@rankN, got %q after @", at)
	}
	rank, err := strconv.Atoi(rs)
	if err != nil {
		return err
	}
	if c.Stragglers == nil {
		c.Stragglers = make(map[int]float64)
	}
	c.Stragglers[rank] = f
	return nil
}

// parseStragglerDist handles "PROB:MAXFACTOR".
func parseStragglerDist(c *Config, val string) error {
	ps, fs, ok := strings.Cut(val, ":")
	if !ok {
		return fmt.Errorf("want PROB:MAXFACTOR")
	}
	var err error
	if c.StragglerProb, err = parseFloat(ps); err != nil {
		return err
	}
	c.StragglerMax, err = parseFloat(fs)
	return err
}

func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

// String renders the configuration in the grammar Parse accepts, with
// deterministic item order, so Parse(c.String()) reproduces c. The
// zero-value items are omitted; a fully zero Config renders as "seed=0"
// (the grammar has no empty spec).
func (c *Config) String() string {
	if c == nil {
		return ""
	}
	var items []string
	add := func(key string, v float64) {
		if v != 0 {
			items = append(items, key+"="+formatFloat(v))
		}
	}
	items = append(items, fmt.Sprintf("seed=%d", c.Seed))
	ranks := make([]int, 0, len(c.Stragglers))
	for r := range c.Stragglers { //nodetbreak:ordered — sorted immediately below
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		items = append(items, fmt.Sprintf("straggler=%s@rank%d", formatFloat(c.Stragglers[r]), r))
	}
	if c.StragglerProb != 0 || c.StragglerMax != 0 {
		items = append(items, fmt.Sprintf("stragglers=%s:%s", formatFloat(c.StragglerProb), formatFloat(c.StragglerMax)))
	}
	add("loss", c.Loss)
	add("latency", c.LatencyFactor)
	add("bandwidth", c.BandwidthFactor)
	add("jitter", c.Jitter)
	add("timeout", c.Timeout)
	if c.MaxRetries != 0 {
		items = append(items, fmt.Sprintf("retries=%d", c.MaxRetries))
	}
	add("backoff", c.Backoff)
	return strings.Join(items, ",")
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
