package faults

import (
	"math"
	"testing"
)

func TestNilConfigIsInert(t *testing.T) {
	var c *Config
	if c.Enabled() {
		t.Fatal("nil config reports enabled")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("nil config invalid: %v", err)
	}
	if f := c.ComputeFactor(3); f != 1 {
		t.Fatalf("nil compute factor = %v", f)
	}
	lat, bw := c.LinkFactors(0, 1)
	if lat != 1 || bw != 1 {
		t.Fatalf("nil link factors = %v, %v", lat, bw)
	}
	tries, ok := c.Transmissions(0, 0)
	if tries != 1 || !ok {
		t.Fatalf("nil transmissions = %d, %v", tries, ok)
	}
	if c.Clone() != nil {
		t.Fatal("nil clone not nil")
	}
	if got := c.StraggledRanks(8); got != nil {
		t.Fatalf("nil straggled ranks = %v", got)
	}
}

func TestZeroConfigIsInert(t *testing.T) {
	c := &Config{}
	if c.Enabled() {
		t.Fatal("zero config reports enabled")
	}
	for r := 0; r < 16; r++ {
		if f := c.ComputeFactor(r); f != 1 {
			t.Fatalf("rank %d factor %v", r, f)
		}
	}
}

func TestExplicitStragglersTakePrecedence(t *testing.T) {
	c := &Config{Seed: 1, Stragglers: map[int]float64{3: 4.5}, StragglerProb: 1, StragglerMax: 2}
	if f := c.ComputeFactor(3); f != 4.5 {
		t.Fatalf("explicit factor = %v, want 4.5", f)
	}
	// Every other rank straggles via the distribution, factor in [1, 2].
	for r := 0; r < 8; r++ {
		if r == 3 {
			continue
		}
		f := c.ComputeFactor(r)
		if f < 1 || f > 2 {
			t.Fatalf("rank %d distribution factor %v outside [1,2]", r, f)
		}
	}
}

func TestStragglerDistributionDeterministicAndSeedSensitive(t *testing.T) {
	a := &Config{Seed: 42, StragglerProb: 0.5, StragglerMax: 3}
	b := &Config{Seed: 42, StragglerProb: 0.5, StragglerMax: 3}
	other := &Config{Seed: 43, StragglerProb: 0.5, StragglerMax: 3}
	same, diff := true, false
	for r := 0; r < 64; r++ {
		if a.ComputeFactor(r) != b.ComputeFactor(r) {
			same = false
		}
		if a.ComputeFactor(r) != other.ComputeFactor(r) {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different factors")
	}
	if !diff {
		t.Fatal("different seeds produced identical factors on all 64 ranks")
	}
}

func TestStragglerProbabilityRoughlyHolds(t *testing.T) {
	c := &Config{Seed: 7, StragglerProb: 0.25, StragglerMax: 2}
	n := 0
	const p = 4096
	for r := 0; r < p; r++ {
		if c.ComputeFactor(r) > 1 {
			n++
		}
	}
	frac := float64(n) / p
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("straggler fraction %v, want ≈ 0.25", frac)
	}
	if got := len(c.StraggledRanks(p)); got != n {
		t.Fatalf("StraggledRanks found %d, counted %d", got, n)
	}
}

func TestLinkFactors(t *testing.T) {
	c := &Config{Seed: 5, LatencyFactor: 3, BandwidthFactor: 2}
	lat, bw := c.LinkFactors(0, 1)
	if lat != 3 || bw != 2 {
		t.Fatalf("factors = %v, %v, want 3, 2", lat, bw)
	}

	j := &Config{Seed: 5, Jitter: 0.5}
	seen := map[float64]bool{}
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			lat, bw := j.LinkFactors(src, dst)
			if lat != bw {
				t.Fatalf("jitter-only link %d→%d has lat %v ≠ bw %v", src, dst, lat, bw)
			}
			if lat < 1 || lat > 1.5 {
				t.Fatalf("jitter factor %v outside [1, 1.5]", lat)
			}
			seen[lat] = true
		}
	}
	if len(seen) < 8 {
		t.Fatalf("jitter produced only %d distinct factors over 16 links", len(seen))
	}
	// Deterministic per directed link.
	l1, _ := j.LinkFactors(2, 3)
	l2, _ := j.LinkFactors(2, 3)
	if l1 != l2 {
		t.Fatal("jitter draw not deterministic")
	}
}

func TestTransmissionsGeometricAndBounded(t *testing.T) {
	c := &Config{Seed: 9, Loss: 0.3, MaxRetries: 4}
	total, retried := 0, 0
	for seq := 0; seq < 10000; seq++ {
		tries, ok := c.Transmissions(0, seq)
		if !ok {
			if tries != 5 {
				t.Fatalf("failed delivery used %d tries, want MaxRetries+1 = 5", tries)
			}
			continue
		}
		if tries < 1 || tries > 5 {
			t.Fatalf("delivered with %d tries outside [1, 5]", tries)
		}
		total++
		if tries > 1 {
			retried++
		}
	}
	frac := float64(retried) / float64(total)
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("retry fraction %v, want ≈ 0.3", frac)
	}
	// Deterministic in (src, seq).
	for seq := 0; seq < 50; seq++ {
		a, _ := c.Transmissions(3, seq)
		b, _ := c.Transmissions(3, seq)
		if a != b {
			t.Fatal("transmission draw not deterministic")
		}
	}
}

func TestRetryChargeAccumulatesTimeouts(t *testing.T) {
	c := &Config{Loss: 0.1, Timeout: 10, Backoff: 2}
	// 3 transmissions of a cost-100 message: 300 paid transfers plus
	// timeouts 10 and 20 after the two failures.
	if got := c.RetryCharge(100, 3); got != 330 {
		t.Fatalf("RetryCharge = %v, want 330", got)
	}
	// Defaults: timeout = base cost, backoff = 2.
	d := &Config{Loss: 0.1}
	if got := d.RetryCharge(100, 3); got != 600 {
		t.Fatalf("default RetryCharge = %v, want 600", got)
	}
	if got := d.RetryCharge(100, 1); got != 100 {
		t.Fatalf("clean RetryCharge = %v, want 100", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []*Config{
		{Stragglers: map[int]float64{0: 0.5}},
		{Stragglers: map[int]float64{-1: 2}},
		{Stragglers: map[int]float64{0: math.NaN()}},
		{StragglerProb: 1.5},
		{StragglerProb: -0.1},
		{StragglerMax: 0.5, StragglerProb: 0.5},
		{Loss: 1},
		{Loss: -0.1},
		{LatencyFactor: -1},
		{BandwidthFactor: -2},
		{Jitter: -0.5},
		{Timeout: -1},
		{MaxRetries: -2},
		{Backoff: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, c)
		}
	}
	good := &Config{Seed: 42, Stragglers: map[int]float64{0: 2}, Loss: 0.01}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := &Config{Seed: 1, Stragglers: map[int]float64{2: 3}}
	cp := c.Clone()
	cp.Stragglers[2] = 9
	cp.Seed = 7
	if c.Stragglers[2] != 3 || c.Seed != 1 {
		t.Fatal("clone shares state with original")
	}
}
