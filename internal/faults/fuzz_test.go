package faults

import (
	"reflect"
	"testing"
)

// FuzzParse exercises the fault-spec parser: it must never panic, and
// any spec it accepts must produce a valid Config that round-trips
// through String — the property `matscale run -faults` relies on to
// echo the canonical spec of a run.
func FuzzParse(f *testing.F) {
	f.Add("straggler=3@rank7,loss=0.01,seed=42")
	f.Add("seed=1,stragglers=0.1:4,jitter=0.2")
	f.Add("latency=2,bandwidth=1.5,timeout=300,retries=5,backoff=3")
	f.Add("straggler=2@rank0")
	f.Add("loss=0.99,retries=1")
	f.Add(",,,")
	f.Add("seed=18446744073709551615")
	f.Add("straggler=1e3@rank999999")
	f.Fuzz(func(t *testing.T, spec string) {
		c, err := Parse(spec)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted invalid config: %v", spec, verr)
		}
		again, err := Parse(c.String())
		if err != nil {
			t.Fatalf("Parse(%q).String() = %q does not re-parse: %v", spec, c.String(), err)
		}
		if !reflect.DeepEqual(c, again) {
			t.Fatalf("Parse(%q) round trip differs: %+v vs %+v", spec, c, again)
		}
		// The drawing primitives must tolerate any accepted config.
		for r := 0; r < 4; r++ {
			if f := c.ComputeFactor(r); f < 1 {
				t.Fatalf("compute factor %v < 1", f)
			}
		}
		c.LinkFactors(0, 1)
		c.Transmissions(0, 0)
	})
}
