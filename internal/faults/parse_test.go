package faults

import (
	"reflect"
	"testing"
)

func TestParseIssueExample(t *testing.T) {
	c, err := Parse("straggler=3@rank7,loss=0.01,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := &Config{
		Seed:       42,
		Stragglers: map[int]float64{7: 3},
		Loss:       0.01,
	}
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("parsed %+v, want %+v", c, want)
	}
}

func TestParseFullGrammar(t *testing.T) {
	c, err := Parse(" seed=7 , straggler=2@rank0, straggler=1.5@rank3, stragglers=0.1:4, " +
		"loss=0.05, latency=2, bandwidth=1.5, jitter=0.2, timeout=300, retries=5, backoff=3 ")
	if err != nil {
		t.Fatal(err)
	}
	want := &Config{
		Seed:          7,
		Stragglers:    map[int]float64{0: 2, 3: 1.5},
		StragglerProb: 0.1, StragglerMax: 4,
		Loss:          0.05,
		LatencyFactor: 2, BandwidthFactor: 1.5, Jitter: 0.2,
		Timeout: 300, MaxRetries: 5, Backoff: 3,
	}
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("parsed %+v, want %+v", c, want)
	}
	if !c.Enabled() {
		t.Fatal("parsed config not enabled")
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"   ",
		"straggler",
		"straggler=2",
		"straggler=2@7",
		"straggler=2@rankx",
		"straggler=x@rank1",
		"stragglers=0.1",
		"stragglers=x:2",
		"loss=nope",
		"loss=1.5",
		"seed=-1",
		"seed=abc",
		"retries=1.5",
		"unknown=1",
		"straggler=0.5@rank1", // factor < 1 rejected by Validate
		"backoff=0.1",
	} {
		if c, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", spec, c)
		}
	}
}

// Every parseable config round-trips through String.
func TestStringRoundTrip(t *testing.T) {
	specs := []string{
		"straggler=3@rank7,loss=0.01,seed=42",
		"seed=0",
		"stragglers=0.25:2,seed=9,jitter=0.1",
		"latency=2,bandwidth=3,timeout=150,retries=4,backoff=2",
	}
	for _, spec := range specs {
		c, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		again, err := Parse(c.String())
		if err != nil {
			t.Fatalf("Parse(String(%q) = %q): %v", spec, c.String(), err)
		}
		if !reflect.DeepEqual(c, again) {
			t.Fatalf("round trip of %q: %+v vs %+v", spec, c, again)
		}
	}
}

func TestStringNilAndZero(t *testing.T) {
	var nilC *Config
	if s := nilC.String(); s != "" {
		t.Fatalf("nil String = %q", s)
	}
	if s := (&Config{}).String(); s != "seed=0" {
		t.Fatalf("zero String = %q, want seed=0", s)
	}
}
