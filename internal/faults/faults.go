// Package faults defines a seeded, deterministic perturbation model for
// the virtual machine: per-rank compute slowdowns (stragglers), per-link
// latency/bandwidth perturbation, and probabilistic message loss
// repaired by a reliable-delivery layer (timeout + bounded retry with
// exponential backoff).
//
// The paper's analysis (Section 2) assumes an ideal machine: every
// processor computes at unit speed and every transfer of m words costs
// exactly ts + tw·m. This package relaxes both assumptions while
// keeping every run exactly reproducible. All randomness is derived by
// hashing the configuration seed with stable integer keys (rank for
// stragglers, the directed (src, dst) pair for link jitter, the
// (sender, per-sender sequence number) pair for loss), never from
// global state or iteration order, so a fixed seed yields byte-identical
// simulations regardless of goroutine scheduling.
//
// The perturbations are charged at the machine's ts/tw cost model:
//   - a straggler with factor f is charged f·w for a computation the
//     ideal machine charges w, so straggler damage appears as extra
//     compute time and downstream idle time in To = p·Tp − W;
//   - a perturbed link multiplies the ts and tw components of every
//     transfer it carries;
//   - a lost transmission costs its full transfer time plus a timeout
//     wait before the retransmission, so loss appears as extra
//     communication time in To.
//
// See docs/FAULTS.md for the model in full and the textual grammar
// accepted by Parse.
package faults

import (
	"fmt"
	"math"
	"sort"
)

// Defaults used when the corresponding Config field is zero.
const (
	// DefaultMaxRetries bounds retransmissions per message. With loss
	// probability q the chance a message exhausts the budget is
	// q^(DefaultMaxRetries+1): negligible for the loss rates the model
	// targets, but a genuine delivery failure aborts the run rather
	// than silently mis-multiplying.
	DefaultMaxRetries = 8
	// DefaultBackoff multiplies the retransmission timeout after each
	// failed attempt.
	DefaultBackoff = 2.0
)

// Config describes one deterministic fault scenario. The zero value
// disables every perturbation; Validate accepts it.
type Config struct {
	// Seed drives every random draw. Two runs with equal Config produce
	// byte-identical simulations.
	Seed uint64

	// Stragglers maps rank → compute slowdown factor (≥ 1). A factor f
	// makes every Compute(w) on that rank cost f·w virtual time.
	// Explicit entries take precedence over the seeded distribution.
	Stragglers map[int]float64
	// StragglerProb is the probability that a rank not named in
	// Stragglers is a straggler, decided per rank from the seed.
	StragglerProb float64
	// StragglerMax is the largest factor the seeded distribution can
	// draw; factors are uniform in [1, StragglerMax]. 0 means 2.
	StragglerMax float64

	// LatencyFactor multiplies the ts component of every transfer
	// (0 means 1: unperturbed).
	LatencyFactor float64
	// BandwidthFactor multiplies the tw component of every transfer —
	// a factor of 2 models links delivering half their nominal
	// bandwidth (0 means 1).
	BandwidthFactor float64
	// Jitter adds a per-directed-link multiplicative perturbation drawn
	// uniform in [1, 1+Jitter] from the seed, applied to both the ts
	// and tw components. It models heterogeneous interconnect quality.
	Jitter float64

	// Loss is the probability that one transmission of a charged
	// message is lost. Lost transmissions are repaired by the
	// reliable-delivery layer: the sender waits Timeout (growing by
	// Backoff per attempt) and retransmits, up to MaxRetries times.
	// Zero-cost transfers (verification gathers, barriers) are exempt:
	// they are bookkeeping, not modeled communication.
	Loss float64
	// Timeout is the virtual time the sender waits before concluding a
	// transmission was lost. 0 means the transfer time of the message
	// itself (an RTT-like stand-in at the ts/tw model's scale).
	Timeout float64
	// MaxRetries bounds retransmissions per message; exhausting it
	// aborts the simulation with an error. 0 means DefaultMaxRetries.
	MaxRetries int
	// Backoff multiplies the timeout after each failed attempt.
	// 0 means DefaultBackoff.
	Backoff float64
}

// Enabled reports whether the configuration perturbs anything.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return len(c.Stragglers) > 0 || c.StragglerProb > 0 || c.Loss > 0 ||
		(c.LatencyFactor != 0 && c.LatencyFactor != 1) ||
		(c.BandwidthFactor != 0 && c.BandwidthFactor != 1) ||
		c.Jitter > 0
}

// Validate reports configuration errors. A nil Config is valid.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	for name, v := range map[string]float64{
		"straggler probability": c.StragglerProb,
		"straggler max factor":  c.StragglerMax,
		"loss":                  c.Loss,
		"latency factor":        c.LatencyFactor,
		"bandwidth factor":      c.BandwidthFactor,
		"jitter":                c.Jitter,
		"timeout":               c.Timeout,
		"backoff":               c.Backoff,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("faults: %s is %v (want finite)", name, v)
		}
	}
	for rank, f := range c.Stragglers {
		if rank < 0 {
			return fmt.Errorf("faults: straggler rank %d is negative", rank)
		}
		if f < 1 || math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("faults: straggler factor %v at rank %d (want ≥ 1)", f, rank)
		}
	}
	if c.StragglerProb < 0 || c.StragglerProb > 1 {
		return fmt.Errorf("faults: straggler probability %v outside [0,1]", c.StragglerProb)
	}
	if c.StragglerMax != 0 && c.StragglerMax < 1 {
		return fmt.Errorf("faults: straggler max factor %v (want ≥ 1)", c.StragglerMax)
	}
	if c.Loss < 0 || c.Loss >= 1 {
		return fmt.Errorf("faults: loss probability %v outside [0,1)", c.Loss)
	}
	if c.LatencyFactor < 0 || c.BandwidthFactor < 0 {
		return fmt.Errorf("faults: negative link factors lat=%v bw=%v", c.LatencyFactor, c.BandwidthFactor)
	}
	if c.Jitter < 0 {
		return fmt.Errorf("faults: negative jitter %v", c.Jitter)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("faults: negative timeout %v", c.Timeout)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("faults: negative retry bound %d", c.MaxRetries)
	}
	if c.Backoff != 0 && c.Backoff < 1 {
		return fmt.Errorf("faults: backoff %v (want ≥ 1)", c.Backoff)
	}
	return nil
}

// Clone returns a deep copy (nil-safe).
func (c *Config) Clone() *Config {
	if c == nil {
		return nil
	}
	cp := *c
	if c.Stragglers != nil {
		cp.Stragglers = make(map[int]float64, len(c.Stragglers))
		for k, v := range c.Stragglers {
			cp.Stragglers[k] = v
		}
	}
	return &cp
}

// Domain tags keep the hash streams of the three perturbation kinds
// disjoint: the straggler draw of rank 3 must not correlate with the
// loss draw of sender 3.
const (
	domStraggler uint64 = 1
	domLink      uint64 = 2
	domLoss      uint64 = 3
)

// ComputeFactor returns the compute slowdown factor (≥ 1) of the given
// rank: the explicit entry if present, otherwise a seeded draw from the
// (StragglerProb, StragglerMax) distribution, otherwise 1.
func (c *Config) ComputeFactor(rank int) float64 {
	if c == nil {
		return 1
	}
	if f, ok := c.Stragglers[rank]; ok {
		return f
	}
	if c.StragglerProb <= 0 {
		return 1
	}
	if unit(c.Seed, domStraggler, uint64(rank), 0) >= c.StragglerProb {
		return 1
	}
	max := c.StragglerMax
	if max == 0 {
		max = 2
	}
	return 1 + unit(c.Seed, domStraggler, uint64(rank), 1)*(max-1)
}

// StraggledRanks returns the sorted ranks of [0, p) whose ComputeFactor
// exceeds 1.
func (c *Config) StraggledRanks(p int) []int {
	if c == nil {
		return nil
	}
	var out []int
	for r := 0; r < p; r++ {
		if c.ComputeFactor(r) > 1 {
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}

// LinkFactors returns the multiplicative perturbations (latF, bwF)
// applied to the ts and tw components of transfers on the directed
// logical link src → dst. Both are 1 on an unperturbed machine.
func (c *Config) LinkFactors(src, dst int) (latF, bwF float64) {
	latF, bwF = 1, 1
	if c == nil {
		return
	}
	if c.LatencyFactor > 0 {
		latF = c.LatencyFactor
	}
	if c.BandwidthFactor > 0 {
		bwF = c.BandwidthFactor
	}
	if c.Jitter > 0 {
		j := 1 + unit(c.Seed, domLink, uint64(src), uint64(dst))*c.Jitter
		latF *= j
		bwF *= j
	}
	return
}

// Transmissions returns how many transmissions the seq-th charged
// message of sender src needs before it is delivered (1 = the first
// attempt succeeds) and whether delivery succeeds within the retry
// budget. Keying by the sender's own sequence counter makes the draw
// independent of goroutine scheduling: each sender's charged sends are
// ordered by its program alone.
func (c *Config) Transmissions(src, seq int) (tries int, delivered bool) {
	if c == nil || c.Loss <= 0 {
		return 1, true
	}
	budget := c.MaxRetries
	if budget == 0 {
		budget = DefaultMaxRetries
	}
	for attempt := 0; attempt <= budget; attempt++ {
		if unit(c.Seed, domLoss, uint64(src), uint64(seq)<<8|uint64(attempt)) >= c.Loss {
			return attempt + 1, true
		}
	}
	return budget + 1, false
}

// RetryWait returns the timeout the sender waits after its attempt-th
// failed transmission (attempt counts from 1) of a message whose
// unperturbed transfer cost is base.
func (c *Config) RetryWait(base float64, attempt int) float64 {
	if c == nil {
		return 0
	}
	t := c.Timeout
	if t == 0 {
		t = base
	}
	b := c.Backoff
	if b == 0 {
		b = DefaultBackoff
	}
	return t * math.Pow(b, float64(attempt-1))
}

// RetryCharge returns the total virtual time charged to the sender for
// delivering a message whose single-transmission cost is base using the
// given number of transmissions: every transmission is paid in full and
// every failed one is followed by its timeout wait.
func (c *Config) RetryCharge(base float64, tries int) float64 {
	total := float64(tries) * base
	for i := 1; i < tries; i++ {
		total += c.RetryWait(base, i)
	}
	return total
}

// unit hashes (seed, domain, a, b) to a uniform float64 in [0, 1).
func unit(seed, dom, a, b uint64) float64 {
	h := mix(seed ^ dom*0x9e3779b97f4a7c15)
	h = mix(h ^ a*0xbf58476d1ce4e5b9)
	h = mix(h ^ b*0x94d049bb133111eb)
	return float64(h>>11) / float64(1<<53)
}

// mix is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
