package tech

import (
	"math"
	"testing"

	"matscale/internal/model"
)

func TestCannonMoreProcessors31x(t *testing.T) {
	// Section 8: "in case of Cannon's algorithm, if the number of
	// processors is increased 10 times, one would have to solve a
	// problem 31.6 times bigger" — the p^1.5 isoefficiency.
	pr := model.Params{Ts: 0.5, Tw: 3}
	f, err := MoreProcessorsFactor(pr, model.CannonTo, 1<<14, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-math.Pow(10, 1.5)) > 0.5 {
		t.Fatalf("more-processors factor = %v, want ≈31.6", f)
	}
}

func TestCannonFasterProcessors1000x(t *testing.T) {
	// Section 8: "for small values of ts ... if p is kept the same and
	// 10 times faster processors are used, then one would need to solve
	// a 1000 times larger problem" — the tw³ sensitivity.
	pr := model.Params{Ts: 0.001, Tw: 3}
	f, err := FasterProcessorsFactor(pr, model.CannonTo, 1<<14, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1000) > 20 {
		t.Fatalf("faster-processors factor = %v, want ≈1000", f)
	}
}

func TestMoreProcessorsBeatsFasterForCannonSIMD(t *testing.T) {
	// The headline claim: under these conditions a machine with k-fold
	// as many processors beats one with k-fold faster processors.
	pr := model.Params{Ts: 0.5, Tw: 3}
	more, err := MoreProcessorsFactor(pr, model.CannonTo, 1<<14, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	faster, err := FasterProcessorsFactor(pr, model.CannonTo, 1<<14, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if more >= faster {
		t.Fatalf("more processors (%v) should need less problem growth than faster processors (%v)", more, faster)
	}
}

func TestFasterProcessorsCubeLawAcrossK(t *testing.T) {
	// The tw-dominated isoefficiency scales as tw³: doubling speed
	// costs 8×, quadrupling costs 64×.
	pr := model.Params{Ts: 0.001, Tw: 2}
	for _, k := range []float64{2, 4} {
		f, err := FasterProcessorsFactor(pr, model.CannonTo, 1<<12, 0.6, k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(f-k*k*k) > 0.05*k*k*k {
			t.Fatalf("k=%v: factor = %v, want ≈%v", k, f, k*k*k)
		}
	}
}

func TestCompareCoversAllAlgorithms(t *testing.T) {
	pr := model.Params{Ts: 0.5, Tw: 3}
	// Operate below the DNS efficiency ceiling even after the k-fold
	// speedup scales it down (ceiling 1/(1+2(ts+tw)) → 1/15 for k=2).
	res, err := Compare(pr, 1<<12, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d tradeoffs", len(res))
	}
	for _, tr := range res {
		if tr.MoreProcsFactor <= 1 || tr.FasterProcsFactor <= 1 {
			t.Errorf("%s: degenerate factors %+v", tr.Algorithm, tr)
		}
		if tr.MoreProcessorsBetter != (tr.MoreProcsFactor < tr.FasterProcsFactor) {
			t.Errorf("%s: inconsistent flag", tr.Algorithm)
		}
	}
}

func TestCompareFailsAboveDNSCeiling(t *testing.T) {
	pr := model.Params{Ts: 150, Tw: 3}
	// E=0.5 is far above the DNS ceiling 1/(1+2·153); Compare must
	// surface the failure rather than fabricate a number.
	if _, err := Compare(pr, 1<<12, 0.5, 10); err == nil {
		t.Fatal("expected error above DNS efficiency ceiling")
	}
}

func TestWAtEfficiencyMatchesDefinition(t *testing.T) {
	pr := model.Params{Ts: 10, Tw: 3}
	w, err := WAtEfficiency(pr, model.GKTo, 1<<9, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	n := math.Cbrt(w)
	e := model.Efficiency(w, model.GKTo(pr, n, 1<<9))
	if math.Abs(e-0.7) > 1e-9 {
		t.Fatalf("efficiency at solved W = %v, want 0.7", e)
	}
}
