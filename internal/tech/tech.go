// Package tech implements the Section 8 analysis: how the
// isoefficiency of the matrix multiplication algorithms depends on
// technology factors — the communication constants ts and tw — and the
// paper's "more processors vs. faster processors" comparison.
//
// The key observation: tw enters the dominant isoefficiency term of
// most of the algorithms cubed (W ∝ K³·tw³·f(p)), so replacing the
// processors with k-times faster ones (which multiplies the *relative*
// costs ts and tw by k) forces the problem size up by k³ to hold
// efficiency, while adding k-times more processors only raises W by
// the isoefficiency function's growth in p — p^1.5 for Cannon's
// algorithm, so 10× the processors needs a 31.6× problem where 10×
// faster processors need a 1000× problem.
package tech

import (
	"fmt"

	"matscale/internal/iso"
	"matscale/internal/model"
)

// ToFunc is an overhead function in the model package's signature.
type ToFunc func(model.Params, float64, float64) float64

// WAtEfficiency returns the problem size holding efficiency e on p
// processors under the given overhead function and machine constants.
func WAtEfficiency(pr model.Params, to ToFunc, p, e float64) (float64, error) {
	w, ok := iso.SolveW(func(n, q float64) float64 { return to(pr, n, q) }, p, e)
	if !ok {
		return 0, fmt.Errorf("tech: no problem size holds efficiency %v at p=%v", e, p)
	}
	return w, nil
}

// MoreProcessorsFactor returns the factor by which the problem size
// must grow to hold efficiency e when the machine gets k times as many
// processors (same CPUs, same network).
func MoreProcessorsFactor(pr model.Params, to ToFunc, p, e, k float64) (float64, error) {
	w1, err := WAtEfficiency(pr, to, p, e)
	if err != nil {
		return 0, err
	}
	w2, err := WAtEfficiency(pr, to, k*p, e)
	if err != nil {
		return 0, err
	}
	return w2 / w1, nil
}

// FasterProcessorsFactor returns the factor by which the problem size
// must grow to hold efficiency e when the p processors are replaced by
// k-times faster ones. With the network unchanged, the *normalized*
// communication constants scale: ts' = k·ts, tw' = k·tw (Section 8).
func FasterProcessorsFactor(pr model.Params, to ToFunc, p, e, k float64) (float64, error) {
	w1, err := WAtEfficiency(pr, to, p, e)
	if err != nil {
		return 0, err
	}
	scaled := model.Params{Ts: k * pr.Ts, Tw: k * pr.Tw}
	w2, err := WAtEfficiency(scaled, to, p, e)
	if err != nil {
		return 0, err
	}
	return w2 / w1, nil
}

// Tradeoff compares the two upgrade paths for one algorithm: it
// returns the problem-growth factors for k-fold more processors and
// for k-fold faster processors, and whether more processors is the
// cheaper path (the smaller required problem growth).
type Tradeoff struct {
	Algorithm            string
	K                    float64
	MoreProcsFactor      float64
	FasterProcsFactor    float64
	MoreProcessorsBetter bool
}

// Compare evaluates the tradeoff for every Table 1 algorithm at the
// given operating point.
func Compare(pr model.Params, p, e, k float64) ([]Tradeoff, error) {
	var out []Tradeoff
	for _, s := range model.Specs() {
		more, err := MoreProcessorsFactor(pr, s.To, p, e, k)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		faster, err := FasterProcessorsFactor(pr, s.To, p, e, k)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		out = append(out, Tradeoff{
			Algorithm:            s.Name,
			K:                    k,
			MoreProcsFactor:      more,
			FasterProcsFactor:    faster,
			MoreProcessorsBetter: more < faster,
		})
	}
	return out, nil
}
