package collective

import (
	"math"
	"strings"
	"testing"

	"matscale/internal/machine"
	"matscale/internal/simulator"
	"matscale/internal/topology"
)

// seq returns [0, 1, ..., n).
func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func vec(n int, base float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = base + float64(i)
	}
	return out
}

func TestBroadcastDeliversToAll(t *testing.T) {
	m := machine.Hypercube(8, 7, 2)
	group := seq(8)
	for root := 0; root < 8; root++ {
		res, err := simulator.Run(m, func(pr *simulator.Proc) {
			var data []float64
			if pr.Rank() == root {
				data = vec(5, 100)
			}
			got := Broadcast(pr, group, root, 1, data)
			if len(got) != 5 || got[4] != 104 {
				t.Errorf("root %d rank %d got %v", root, pr.Rank(), got)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		want := BroadcastTime(7, 2, 5, 8)
		if res.Tp != want {
			t.Fatalf("root %d: Tp = %v, want %v", root, res.Tp, want)
		}
	}
}

func TestBroadcastTimeFormula(t *testing.T) {
	// log2(8)·(ts + tw·m) = 3·(7+2·5) = 51.
	if got := BroadcastTime(7, 2, 5, 8); got != 51 {
		t.Fatalf("BroadcastTime = %v, want 51", got)
	}
}

func TestBroadcastSubgroupOnlyTouchesMembers(t *testing.T) {
	m := machine.Hypercube(8, 1, 1)
	group := []int{4, 5, 6, 7} // a subcube
	res, err := simulator.Run(m, func(pr *simulator.Proc) {
		if pr.Rank() < 4 {
			return // non-members do nothing
		}
		var data []float64
		if pr.Rank() == 6 {
			data = []float64{42}
		}
		got := Broadcast(pr, group, 2, 9, data)
		if got[0] != 42 {
			t.Errorf("rank %d got %v", pr.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if res.ProcClocks[r] != 0 {
			t.Fatalf("non-member %d has clock %v", r, res.ProcClocks[r])
		}
	}
}

func TestBroadcastPanicsOnBadGroup(t *testing.T) {
	m := machine.Hypercube(4, 1, 1)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		Broadcast(pr, []int{0, 1, 2}, 0, 0, nil)
	})
	if err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Fatalf("err = %v", err)
	}
	_, err = simulator.Run(m, func(pr *simulator.Proc) {
		Broadcast(pr, seq(4), 7, 0, nil)
	})
	if err == nil || !strings.Contains(err.Error(), "root index") {
		t.Fatalf("err = %v", err)
	}
	_, err = simulator.Run(m, func(pr *simulator.Proc) {
		Broadcast(pr, []int{0, 1}, 0, 0, nil) // ranks 2,3 are not members
	})
	if err == nil || !strings.Contains(err.Error(), "not a member") {
		t.Fatalf("err = %v", err)
	}
}

func TestJohnssonHoTimeFormula(t *testing.T) {
	// ts=9, tw=1, m=16, g=8: log=3, packets = ceil(sqrt(9·16/3)) = 7,
	// t = 27 + 16 + 2·3·7 = 85.
	if got := JohnssonHoTime(9, 1, 16, 8); got != 85 {
		t.Fatalf("JohnssonHoTime = %v, want 85", got)
	}
	// Packet clamp: tiny ts still pays one word per packet round.
	want := 0.003*3 + 16 + 2*3*1.0
	if got := JohnssonHoTime(0.003, 1, 16, 8); math.Abs(got-want) > 1e-12 {
		t.Fatalf("JohnssonHoTime clamp = %v, want %v", got, want)
	}
	if got := JohnssonHoTime(9, 1, 16, 1); got != 0 {
		t.Fatalf("singleton group time = %v, want 0", got)
	}
	// Johnsson-Ho beats the binomial tree for large messages.
	if JohnssonHoTime(9, 1, 4096, 64) >= BroadcastTime(9, 1, 4096, 64) {
		t.Fatal("Johnsson-Ho not better than binomial for large message")
	}
}

func TestBroadcastJohnssonHoDeliversAndCharges(t *testing.T) {
	m := machine.Hypercube(8, 9, 1)
	group := seq(8)
	res, err := simulator.Run(m, func(pr *simulator.Proc) {
		var data []float64
		if pr.Rank() == 3 {
			data = vec(16, 0)
		}
		got := BroadcastJohnssonHo(pr, group, 3, 2, data)
		if got[15] != 15 {
			t.Errorf("rank %d got tail %v", pr.Rank(), got[15])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := JohnssonHoTime(9, 1, 16, 8); res.Tp != want {
		t.Fatalf("Tp = %v, want %v", res.Tp, want)
	}
}

func TestBroadcastJohnssonHoSingleton(t *testing.T) {
	m := machine.Hypercube(2, 1, 1)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		got := BroadcastJohnssonHo(pr, []int{pr.Rank()}, 0, 0, []float64{9})
		if got[0] != 9 {
			t.Errorf("singleton broadcast lost data")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherContentsAndOrder(t *testing.T) {
	m := machine.Hypercube(8, 3, 2)
	group := seq(8)
	res, err := simulator.Run(m, func(pr *simulator.Proc) {
		mine := []float64{float64(pr.Rank() * 10), float64(pr.Rank()*10 + 1)}
		got := AllGather(pr, group, 10, mine)
		if len(got) != 16 {
			t.Errorf("rank %d: len = %d", pr.Rank(), len(got))
			return
		}
		for i := 0; i < 8; i++ {
			if got[2*i] != float64(i*10) || got[2*i+1] != float64(i*10+1) {
				t.Errorf("rank %d: segment %d = %v", pr.Rank(), i, got[2*i:2*i+2])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := AllGatherTime(3, 2, 2, 8); res.Tp != want {
		t.Fatalf("Tp = %v, want %v", res.Tp, want)
	}
}

func TestAllGatherTimeFormula(t *testing.T) {
	// ts·3 + tw·m·7 = 9 + 2·2·7 = 37.
	if got := AllGatherTime(3, 2, 2, 8); got != 37 {
		t.Fatalf("AllGatherTime = %v, want 37", got)
	}
}

func TestAllGatherSubgroups(t *testing.T) {
	// Rows of a 4x4 mesh all-gather concurrently with distinct tags.
	m := machine.Hypercube(16, 5, 1)
	tor := topology.NewTorus2D(4, 4)
	res, err := simulator.Run(m, func(pr *simulator.Proc) {
		i, j := tor.Coords(pr.Rank())
		row := tor.RowRanks(i)
		got := AllGather(pr, row, 100+i*8, []float64{float64(j)})
		for k := 0; k < 4; k++ {
			if got[k] != float64(k) {
				t.Errorf("rank %d got %v", pr.Rank(), got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := AllGatherTime(5, 1, 1, 4); res.Tp != want {
		t.Fatalf("Tp = %v, want %v", res.Tp, want)
	}
}

func TestAllPortAllGatherTimeFormula(t *testing.T) {
	// ts·log g + tw·m·g/log g = 3·2 + 1·5·4/2 = 16.
	if got := AllPortAllGatherTime(3, 1, 5, 4); got != 16 {
		t.Fatalf("AllPortAllGatherTime = %v, want 16", got)
	}
	if got := AllPortAllGatherTime(3, 1, 5, 1); got != 0 {
		t.Fatalf("singleton = %v, want 0", got)
	}
}

func TestAllGatherAllPort(t *testing.T) {
	m := machine.Hypercube(4, 3, 1)
	m.AllPort = true
	group := seq(4)
	res, err := simulator.Run(m, func(pr *simulator.Proc) {
		got := AllGatherAllPort(pr, group, 0, vec(5, float64(pr.Rank()*100)))
		if got[0] != 0 || got[5] != 100 || got[19] != 304 {
			t.Errorf("rank %d got %v", pr.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := AllPortAllGatherTime(3, 1, 5, 4); res.Tp != want {
		t.Fatalf("Tp = %v, want %v", res.Tp, want)
	}
}

func TestAllGatherAllPortSingleton(t *testing.T) {
	m := machine.Hypercube(2, 1, 1)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		got := AllGatherAllPort(pr, []int{pr.Rank()}, 0, []float64{3})
		if len(got) != 1 || got[0] != 3 {
			t.Errorf("singleton allgather = %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSums(t *testing.T) {
	m := machine.Hypercube(8, 4, 1)
	group := seq(8)
	res, err := simulator.Run(m, func(pr *simulator.Proc) {
		data := []float64{float64(pr.Rank()), 1}
		got := Reduce(pr, group, 5, 20, data)
		if pr.Rank() == 5 {
			if got == nil || got[0] != 28 || got[1] != 8 {
				t.Errorf("root got %v, want [28 8]", got)
			}
		} else if got != nil {
			t.Errorf("non-root %d got non-nil %v", pr.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := ReduceTime(4, 1, 2, 8); res.Tp != want {
		t.Fatalf("Tp = %v, want %v", res.Tp, want)
	}
}

func TestReduceLengthMismatch(t *testing.T) {
	m := machine.Hypercube(2, 0, 0)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		Reduce(pr, seq(2), 0, 0, vec(pr.Rank()+1, 0))
	})
	if err == nil || !strings.Contains(err.Error(), "length mismatch") {
		t.Fatalf("err = %v", err)
	}
}

func TestReduceScatterSumsAndScatters(t *testing.T) {
	m := machine.Hypercube(4, 6, 2)
	group := seq(4)
	res, err := simulator.Run(m, func(pr *simulator.Proc) {
		// Every member contributes [r, r+1, ..., r+7]; the sum is
		// [0+1+2+3 + 4i] at position i = 6 + 4i.
		data := vec(8, float64(pr.Rank()))
		mine, off := ReduceScatter(pr, group, 30, data)
		if len(mine) != 2 {
			t.Errorf("rank %d slice len %d", pr.Rank(), len(mine))
			return
		}
		for i, v := range mine {
			want := 6 + 4*float64(off+i)
			if v != want {
				t.Errorf("rank %d element %d = %v, want %v", pr.Rank(), off+i, v, want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := ReduceScatterTime(6, 2, 8, 4); res.Tp != want {
		t.Fatalf("Tp = %v, want %v", res.Tp, want)
	}
}

func TestReduceScatterOffsetsDisjoint(t *testing.T) {
	m := machine.Hypercube(8, 0, 0)
	group := seq(8)
	offsets := make([]int, 8)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		_, off := ReduceScatter(pr, group, 0, make([]float64, 16))
		offsets[pr.Rank()] = off
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for r, off := range offsets {
		if off%2 != 0 || seen[off] {
			t.Fatalf("rank %d offset %d duplicated or misaligned (%v)", r, off, offsets)
		}
		seen[off] = true
	}
}

func TestReduceScatterTimeFormula(t *testing.T) {
	// ts·2 + tw·m·(1 − 1/4) = 12 + 2·8·0.75 = 24.
	if got := ReduceScatterTime(6, 2, 8, 4); got != 24 {
		t.Fatalf("ReduceScatterTime = %v, want 24", got)
	}
}

func TestReduceScatterIndivisiblePanics(t *testing.T) {
	m := machine.Hypercube(4, 0, 0)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		ReduceScatter(pr, seq(4), 0, make([]float64, 6))
	})
	if err == nil || !strings.Contains(err.Error(), "not divisible") {
		t.Fatalf("err = %v", err)
	}
}

func TestGatherFree(t *testing.T) {
	m := machine.Hypercube(4, 100, 100)
	group := seq(4)
	res, err := simulator.Run(m, func(pr *simulator.Proc) {
		parts := GatherFree(pr, group, 2, 40, []float64{float64(pr.Rank())})
		if pr.Rank() == 2 {
			for i, part := range parts {
				if part[0] != float64(i) {
					t.Errorf("part %d = %v", i, part)
				}
			}
		} else if parts != nil {
			t.Errorf("non-root got parts")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tp != 0 {
		t.Fatalf("GatherFree charged time: Tp = %v", res.Tp)
	}
}

// The broadcast/reduce pair: broadcasting then reducing a vector of
// ones over g members yields g at the root — a cheap end-to-end
// consistency check across both tree directions.
func TestBroadcastReduceRoundTrip(t *testing.T) {
	m := machine.Hypercube(16, 2, 1)
	group := seq(16)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		var data []float64
		if pr.Rank() == 0 {
			data = []float64{1, 2, 3}
		}
		got := Broadcast(pr, group, 0, 1, data)
		sum := Reduce(pr, group, 0, 2, got)
		if pr.Rank() == 0 {
			if sum[0] != 16 || sum[1] != 32 || sum[2] != 48 {
				t.Errorf("reduce of broadcast = %v", sum)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Verify the measured AllGather time formula across several sizes —
// the collective layer is what makes the algorithm equations testable.
func TestAllGatherTimeAcrossSizes(t *testing.T) {
	for _, g := range []int{2, 4, 8, 16} {
		for _, m := range []int{1, 16, 257} {
			mach := machine.Hypercube(g, 11, 3)
			group := seq(g)
			res, err := simulator.Run(mach, func(pr *simulator.Proc) {
				AllGather(pr, group, 0, make([]float64, m))
			})
			if err != nil {
				t.Fatal(err)
			}
			if want := AllGatherTime(11, 3, m, g); res.Tp != want {
				t.Fatalf("g=%d m=%d: Tp = %v, want %v", g, m, res.Tp, want)
			}
		}
	}
}

func TestBarrierFreeAlignsClocks(t *testing.T) {
	m := machine.Hypercube(8, 3, 1)
	group := seq(8)
	res, err := simulator.Run(m, func(pr *simulator.Proc) {
		pr.Compute(float64(pr.Rank() * 10)) // staggered clocks 0..70
		BarrierFree(pr, group, 5)
		if pr.Clock() != 70 {
			t.Errorf("rank %d clock after barrier = %v, want 70", pr.Rank(), pr.Clock())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tp != 70 {
		t.Fatalf("Tp = %v, want 70 (barrier adds no cost)", res.Tp)
	}
}

func TestBarrierFreeSingleton(t *testing.T) {
	m := machine.Hypercube(2, 1, 1)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		BarrierFree(pr, []int{pr.Rank()}, 0) // must not deadlock
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherFreeContentAndZeroCost(t *testing.T) {
	m := machine.Hypercube(4, 100, 100)
	group := seq(4)
	res, err := simulator.Run(m, func(pr *simulator.Proc) {
		got := AllGatherFree(pr, group, 9, []float64{float64(pr.Rank())})
		for i := 0; i < 4; i++ {
			if got[i] != float64(i) {
				t.Errorf("rank %d: got %v", pr.Rank(), got)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tp != 0 {
		t.Fatalf("AllGatherFree charged time: %v", res.Tp)
	}
}

func TestBroadcastChargedSingletonAndErrors(t *testing.T) {
	m := machine.Hypercube(2, 1, 1)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		got := BroadcastCharged(pr, []int{pr.Rank()}, 0, 0, []float64{7}, 99)
		if got[0] != 7 {
			t.Errorf("singleton BroadcastCharged lost data")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = simulator.Run(m, func(pr *simulator.Proc) {
		BroadcastCharged(pr, seq(2), 5, 0, nil, 1)
	})
	if err == nil || !strings.Contains(err.Error(), "root index") {
		t.Fatalf("err = %v", err)
	}
}

func TestReduceChargedSumsAndCharges(t *testing.T) {
	m := machine.Hypercube(4, 1, 1)
	group := seq(4)
	res, err := simulator.Run(m, func(pr *simulator.Proc) {
		got := ReduceCharged(pr, group, 1, 7, []float64{1, float64(pr.Rank())}, 50)
		if pr.Rank() == 1 {
			if got[0] != 4 || got[1] != 6 {
				t.Errorf("root sum = %v, want [4 6]", got)
			}
		} else if got != nil {
			t.Errorf("non-root got data")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tp != 50 {
		t.Fatalf("Tp = %v, want the charged 50", res.Tp)
	}
}

func TestReduceChargedSingletonAndMismatch(t *testing.T) {
	m := machine.Hypercube(2, 0, 0)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		got := ReduceCharged(pr, []int{pr.Rank()}, 0, 0, []float64{3}, 1)
		if got[0] != 3 {
			t.Errorf("singleton ReduceCharged = %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = simulator.Run(m, func(pr *simulator.Proc) {
		ReduceCharged(pr, seq(2), 0, 0, vec(pr.Rank()+1, 0), 1)
	})
	if err == nil || !strings.Contains(err.Error(), "length mismatch") {
		t.Fatalf("err = %v", err)
	}
}

// Concurrent collectives on disjoint groups never interfere, even with
// identical tags.
func TestDisjointGroupsSameTag(t *testing.T) {
	m := machine.Hypercube(8, 2, 1)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		group := seq(4)
		if pr.Rank() >= 4 {
			group = []int{4, 5, 6, 7}
		}
		var data []float64
		if pr.Rank()%4 == 0 {
			data = []float64{float64(pr.Rank())}
		}
		got := Broadcast(pr, group, 0, 42, data)
		want := float64((pr.Rank() / 4) * 4)
		if got[0] != want {
			t.Errorf("rank %d got %v, want %v", pr.Rank(), got[0], want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
