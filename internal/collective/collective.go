// Package collective implements the group communication operations the
// paper's algorithms are built from: one-to-all broadcast (binomial
// tree and the Johnsson–Ho optimized scheme of reference [20]),
// all-to-all broadcast (recursive doubling, plus the all-port variant
// of Section 7), tree reduction, and reduce-scatter by recursive
// halving (the summation step of Berntsen's algorithm).
//
// Every operation is a *symmetric* routine: all members of the group
// must call it with the same group slice and tag, exactly like an MPI
// collective. Groups for the tree-structured operations must have
// power-of-two size; on a hypercube a group enumerated in subcube index
// order communicates only between physical neighbors.
//
// Each operation has a companion *Time function giving its virtual-time
// cost on the critical path. The collective tests verify that the
// measured simulator time equals the companion formula exactly — that
// correspondence is what makes the algorithm-level equation tests
// (Eqs. 2–7 of the paper) meaningful.
//
// Concurrent collectives on overlapping groups must use distinct tags;
// messages are matched by (source, tag).
//
// The operations follow the simulator's buffer ownership contract:
// caller-supplied payloads are only ever sent with copy semantics (a
// caller keeps its slice), received buffers that an operation consumes
// internally are recycled into the processor's buffer pool, and
// buffers an operation returns are owned by its caller. Transient
// tree/ring buffers created inside an operation travel on the
// ownership-transfer fast path where the data flow allows it.
package collective

import (
	"fmt"
	"math"

	"matscale/internal/simulator"
	"matscale/internal/topology"
)

// indexIn returns the position of rank in group, panicking if absent.
func indexIn(group []int, rank int) int {
	for i, r := range group {
		if r == rank {
			return i
		}
	}
	panic(fmt.Sprintf("collective: rank %d is not a member of group %v", rank, group))
}

// log2Size validates that the group has power-of-two size and returns
// log2(len(group)).
func log2Size(group []int) int {
	d, ok := topology.Log2(len(group))
	if !ok {
		panic(fmt.Sprintf("collective: group size %d is not a power of two", len(group)))
	}
	return d
}

// Broadcast distributes data from the group member at rootIdx to every
// member using a binomial tree and returns the data on every member.
// Critical-path cost: log2(g) · (ts + tw·m) on neighbor-ordered groups.
func Broadcast(pr *simulator.Proc, group []int, rootIdx, tag int, data []float64) []float64 {
	d := log2Size(group)
	idx := indexIn(group, pr.Rank())
	if rootIdx < 0 || rootIdx >= len(group) {
		panic(fmt.Sprintf("collective: root index %d out of range for group of %d", rootIdx, len(group)))
	}
	rel := idx ^ rootIdx
	buf := data
	for s := d - 1; s >= 0; s-- {
		mask := (1 << (s + 1)) - 1
		switch rel & mask {
		case 0:
			pr.SendNeighbor(group[(rel|1<<s)^rootIdx], tag, buf)
		case 1 << s:
			buf = pr.Recv(group[(rel^1<<s)^rootIdx], tag)
		}
	}
	return buf
}

// BroadcastTime is the critical-path cost of Broadcast.
func BroadcastTime(ts, tw float64, m, g int) float64 {
	d, ok := topology.Log2(g)
	if !ok {
		panic(fmt.Sprintf("collective: group size %d is not a power of two", g))
	}
	return float64(d) * (ts + tw*float64(m))
}

// JohnssonHoTime is the cost of the optimized one-to-all broadcast of
// Johnsson and Ho ([20], used in Section 5.4.1 of the paper):
//
//	ts·log g + tw·m + 2·tw·log g·ceil(sqrt(ts·m / (tw·log g)))
//
// with the packet-count term clamped to at least one word per packet,
// following the paper's convention that the square root is "considered
// equal to 1" when the message is too small to fill the channels.
func JohnssonHoTime(ts, tw float64, m, g int) float64 {
	d, ok := topology.Log2(g)
	if !ok {
		panic(fmt.Sprintf("collective: group size %d is not a power of two", g))
	}
	if d == 0 {
		return 0
	}
	l := float64(d)
	t := ts*l + tw*float64(m)
	if tw > 0 && m > 0 {
		pkt := math.Ceil(math.Sqrt(ts * float64(m) / (tw * l)))
		if pkt < 1 {
			pkt = 1
		}
		t += 2 * tw * l * pkt
	}
	return t
}

// BroadcastCharged distributes data from rootIdx to every group member,
// charging the root exactly cost virtual time units. It models
// communication operations whose aggregate cost the paper takes as a
// closed form (the Johnsson–Ho broadcast, the pipelined Fox broadcast,
// the all-port schemes); the data movement is performed in one logical
// step, which changes no measured time relative to the packetized
// schedule (see DESIGN.md).
func BroadcastCharged(pr *simulator.Proc, group []int, rootIdx, tag int, data []float64, cost float64) []float64 {
	idx := indexIn(group, pr.Rank())
	if rootIdx < 0 || rootIdx >= len(group) {
		panic(fmt.Sprintf("collective: root index %d out of range for group of %d", rootIdx, len(group)))
	}
	if len(group) == 1 {
		return data
	}
	if idx == rootIdx {
		charged := false
		for i, r := range group {
			if i == rootIdx {
				continue
			}
			if !charged {
				pr.ChargedSend(r, tag, data, cost)
				charged = true
			} else {
				pr.SendFree(r, tag, data)
			}
		}
		return data
	}
	return pr.Recv(group[rootIdx], tag)
}

// BroadcastJohnssonHo distributes data from rootIdx to every group
// member, charging the Johnsson–Ho closed-form cost (Section 5.4.1).
func BroadcastJohnssonHo(pr *simulator.Proc, group []int, rootIdx, tag int, data []float64) []float64 {
	log2Size(group)
	cost := JohnssonHoTime(pr.Machine().Ts, pr.Machine().Tw, len(data), len(group))
	return BroadcastCharged(pr, group, rootIdx, tag, data, cost)
}

// ReduceCharged sums the members' equal-length vectors at the member at
// rootIdx, charging each contributor exactly cost virtual time units
// (the root's completion is the latest contribution's arrival). It is
// the reduction counterpart of BroadcastCharged for closed-form-cost
// schemes; the elementwise additions are pre-paid under the unit-cost
// convention (see Reduce). Returns the sum at the root, nil elsewhere.
func ReduceCharged(pr *simulator.Proc, group []int, rootIdx, tag int, data []float64, cost float64) []float64 {
	idx := indexIn(group, pr.Rank())
	if rootIdx < 0 || rootIdx >= len(group) {
		panic(fmt.Sprintf("collective: root index %d out of range for group of %d", rootIdx, len(group)))
	}
	if len(group) == 1 {
		out := make([]float64, len(data))
		copy(out, data)
		return out
	}
	if idx != rootIdx {
		pr.ChargedSend(group[rootIdx], tag, data, cost)
		return nil
	}
	acc := make([]float64, len(data))
	copy(acc, data)
	for i, r := range group {
		if i == rootIdx {
			continue
		}
		got := pr.Recv(r, tag)
		if len(got) != len(acc) {
			panic(fmt.Sprintf("collective: ReduceCharged length mismatch %d vs %d", len(got), len(acc)))
		}
		for k, v := range got {
			acc[k] += v
		}
		pr.Recycle(got)
	}
	return acc
}

// AllGather performs an all-to-all broadcast by recursive doubling:
// every member contributes mine (all contributions must have equal
// length m) and receives the concatenation ordered by group index.
// Critical-path cost: ts·log g + tw·m·(g−1).
func AllGather(pr *simulator.Proc, group []int, tag int, mine []float64) []float64 {
	d := log2Size(group)
	idx := indexIn(group, pr.Rank())
	g := len(group)
	m := len(mine)
	buf := make([]float64, m*g)
	copy(buf[idx*m:(idx+1)*m], mine)
	for s := 0; s < d; s++ {
		partner := idx ^ (1 << s)
		// Segments owned so far: those sharing the index bits above s.
		lo := (idx >> s) << s
		plo := (partner >> s) << s
		got := exchangeLiveSegment(pr, group[partner], tag+s, buf[lo*m:(lo+1<<s)*m])
		copy(buf[plo*m:(plo+1<<s)*m], got)
		pr.Recycle(got)
	}
	return buf
}

// exchangeLiveSegment exchanges a segment that aliases a buffer the
// caller keeps using (an AllGather accumulation window, a
// ReduceScatter half) with a hypercube neighbor. Such a segment must
// never ride the ownership-transfer fast path: the pooled runtime
// would hold a slice still backing caller-visible memory, and a later
// delivery into the recycled buffer would overwrite it — the aliasing
// ownflow rejects. This helper is the one place that argument lives;
// it pins the exchange to the copying ExchangeNeighbor. The returned
// buffer is caller-owned and must be recycled after consumption.
func exchangeLiveSegment(pr *simulator.Proc, partner, tag int, segment []float64) []float64 {
	return pr.ExchangeNeighbor(partner, tag, segment)
}

// AllGatherTime is the critical-path cost of AllGather for per-member
// message size m and group size g.
func AllGatherTime(ts, tw float64, m, g int) float64 {
	d, ok := topology.Log2(g)
	if !ok {
		panic(fmt.Sprintf("collective: group size %d is not a power of two", g))
	}
	return ts*float64(d) + tw*float64(m)*float64(g-1)
}

// AllPortAllGatherTime is the cost of an all-to-all broadcast on a
// hypercube with simultaneous communication on all ports (Section 7.1):
// ts·log g + tw·m·g/log g.
func AllPortAllGatherTime(ts, tw float64, m, g int) float64 {
	d, ok := topology.Log2(g)
	if !ok {
		panic(fmt.Sprintf("collective: group size %d is not a power of two", g))
	}
	if d == 0 {
		return 0
	}
	return ts*float64(d) + tw*float64(m)*float64(g)/float64(d)
}

// AllGatherAllPort performs the all-to-all broadcast charging the
// all-port closed form of Section 7.1. All members must call it; the
// result is the concatenation ordered by group index.
func AllGatherAllPort(pr *simulator.Proc, group []int, tag int, mine []float64) []float64 {
	log2Size(group)
	idx := indexIn(group, pr.Rank())
	g := len(group)
	m := len(mine)
	if g == 1 {
		out := make([]float64, m)
		copy(out, mine)
		return out
	}
	cost := AllPortAllGatherTime(pr.Machine().Ts, pr.Machine().Tw, m, g)
	charged := false
	for i, r := range group {
		if i == idx {
			continue
		}
		if !charged {
			pr.ChargedSend(r, tag, mine, cost)
			charged = true
		} else {
			pr.SendFree(r, tag, mine)
		}
	}
	buf := make([]float64, m*g)
	copy(buf[idx*m:(idx+1)*m], mine)
	for i, r := range group {
		if i == idx {
			continue
		}
		got := pr.Recv(r, tag)
		copy(buf[i*m:(i+1)*m], got)
		pr.Recycle(got)
	}
	return buf
}

// Reduce sums the members' equal-length vectors into the member at
// rootIdx using a binomial tree, returning the sum at the root and nil
// elsewhere. Communication cost on the critical path:
// log2(g)·(ts + tw·m). The elementwise additions advance no virtual
// time: under the paper's unit-cost convention one "basic operation"
// is a multiply–add pair, so the additions that complete each inner
// product are pre-paid by the multiplication stage that produced the
// partial products (this is exactly how Eq. (7) charges the GK
// algorithm's third stage: t_add·n³/p is folded into the n³/p term).
func Reduce(pr *simulator.Proc, group []int, rootIdx, tag int, data []float64) []float64 {
	d := log2Size(group)
	idx := indexIn(group, pr.Rank())
	if rootIdx < 0 || rootIdx >= len(group) {
		panic(fmt.Sprintf("collective: root index %d out of range for group of %d", rootIdx, len(group)))
	}
	rel := idx ^ rootIdx
	acc := make([]float64, len(data))
	copy(acc, data)
	for s := 0; s < d; s++ {
		mask := (1 << (s + 1)) - 1
		switch rel & mask {
		case 1 << s:
			// acc is this member's private accumulator and dies here,
			// so it rides the ownership-transfer fast path.
			pr.SendNeighborOwned(group[(rel^1<<s)^rootIdx], tag, acc)
			return nil
		case 0:
			got := pr.Recv(group[(rel|1<<s)^rootIdx], tag)
			if len(got) != len(acc) {
				panic(fmt.Sprintf("collective: Reduce length mismatch %d vs %d", len(got), len(acc)))
			}
			for i, v := range got {
				acc[i] += v
			}
			pr.Recycle(got)
		}
	}
	return acc
}

// ReduceTime is the critical-path communication cost of Reduce.
func ReduceTime(ts, tw float64, m, g int) float64 { return BroadcastTime(ts, tw, m, g) }

// ReduceScatter sums the members' equal-length vectors and leaves each
// member with one distinct 1/g slice of the sum, using recursive
// halving (the summation step of Berntsen's algorithm, Section 4.4).
// It returns the local slice and its starting offset in the full
// vector. The vector length must be divisible by the group size.
// Critical-path cost: ts·log g + tw·m·(1 − 1/g). Additions are
// pre-paid under the unit-cost convention (see Reduce).
func ReduceScatter(pr *simulator.Proc, group []int, tag int, data []float64) ([]float64, int) {
	d := log2Size(group)
	idx := indexIn(group, pr.Rank())
	g := len(group)
	if len(data)%g != 0 {
		panic(fmt.Sprintf("collective: ReduceScatter length %d not divisible by group size %d", len(data), g))
	}
	acc := make([]float64, len(data))
	copy(acc, data)
	lo, hi := 0, len(acc) // current active range
	for s := d - 1; s >= 0; s-- {
		partner := idx ^ (1 << s)
		mid := lo + (hi-lo)/2
		var keepLo, keepHi, sendLo, sendHi int
		if idx&(1<<s) == 0 {
			keepLo, keepHi, sendLo, sendHi = lo, mid, mid, hi
		} else {
			keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
		}
		got := exchangeLiveSegment(pr, group[partner], tag+s, acc[sendLo:sendHi])
		for i, v := range got {
			acc[keepLo+i] += v
		}
		pr.Recycle(got)
		lo, hi = keepLo, keepHi
	}
	out := make([]float64, hi-lo)
	copy(out, acc[lo:hi])
	return out, lo
}

// ReduceScatterTime is the critical-path cost of ReduceScatter.
func ReduceScatterTime(ts, tw float64, m, g int) float64 {
	d, ok := topology.Log2(g)
	if !ok {
		panic(fmt.Sprintf("collective: group size %d is not a power of two", g))
	}
	return ts*float64(d) + tw*float64(m)*(1-1/float64(g))
}

// BarrierFree synchronizes the virtual clocks of all group members to
// their maximum at zero cost. The paper's stage-by-stage accounting
// charges every processor the worst-case duration of each stage
// (phases execute in lockstep); algorithms insert this barrier between
// stages so that the simulated Tp equals the paper's equations exactly.
func BarrierFree(pr *simulator.Proc, group []int, tag int) {
	idx := indexIn(group, pr.Rank())
	if len(group) == 1 {
		return
	}
	if idx == 0 {
		for _, r := range group[1:] {
			pr.Recv(r, tag) //ownflow:reviewed nil barrier payload; the clock rises to the latest sender
		}
		for _, r := range group[1:] {
			pr.SendFree(r, tag, nil) // release at the synchronized time
		}
		return
	}
	pr.SendFree(group[0], tag, nil)
	pr.Recv(group[0], tag) //ownflow:reviewed nil release payload; only the synchronized time matters
}

// AllGatherFree performs the all-to-all broadcast at zero virtual cost.
// It models a transfer that proceeds simultaneously with another,
// already-charged transfer on an all-port machine (Section 7.1 notes
// that the broadcasts of A and B proceed simultaneously, so only one is
// charged).
func AllGatherFree(pr *simulator.Proc, group []int, tag int, mine []float64) []float64 {
	idx := indexIn(group, pr.Rank())
	g := len(group)
	m := len(mine)
	buf := make([]float64, m*g)
	copy(buf[idx*m:(idx+1)*m], mine)
	for i, r := range group {
		if i == idx {
			continue
		}
		pr.SendFree(r, tag, mine)
	}
	for i, r := range group {
		if i == idx {
			continue
		}
		got := pr.Recv(r, tag)
		copy(buf[i*m:(i+1)*m], got)
		pr.Recycle(got)
	}
	return buf
}

// GatherFree collects every member's contribution at the root at zero
// virtual cost. It exists for assembling results for verification
// after the timed portion of an algorithm has finished. The root
// receives the contributions ordered by group index; other members
// return nil.
func GatherFree(pr *simulator.Proc, group []int, rootIdx, tag int, mine []float64) [][]float64 {
	idx := indexIn(group, pr.Rank())
	if idx != rootIdx {
		pr.SendFree(group[rootIdx], tag, mine)
		return nil
	}
	out := make([][]float64, len(group))
	cp := make([]float64, len(mine))
	copy(cp, mine)
	out[rootIdx] = cp
	for i, r := range group {
		if i == rootIdx {
			continue
		}
		out[i] = pr.Recv(r, tag)
	}
	return out
}
