package collective

import (
	"strings"
	"testing"
	"testing/quick"

	"matscale/internal/machine"
	"matscale/internal/simulator"
)

func TestScatterDeliversOwnSlice(t *testing.T) {
	m := machine.Hypercube(8, 5, 2)
	group := seq(8)
	for root := 0; root < 8; root++ {
		res, err := simulator.Run(m, func(pr *simulator.Proc) {
			var data []float64
			if pr.Rank() == root {
				data = vec(8*3, 0) // member j's slice is [3j, 3j+1, 3j+2]
			}
			got := Scatter(pr, group, root, 1, data)
			for i, v := range got {
				if v != float64(3*pr.Rank()+i) {
					t.Errorf("root %d rank %d got %v", root, pr.Rank(), got)
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := ScatterTime(5, 2, 3, 8); res.Tp != want {
			t.Fatalf("root %d: Tp = %v, want %v", root, res.Tp, want)
		}
	}
}

func TestScatterTimeFormula(t *testing.T) {
	// ts·3 + tw·m·7 = 15 + 2·3·7 = 57.
	if got := ScatterTime(5, 2, 3, 8); got != 57 {
		t.Fatalf("ScatterTime = %v, want 57", got)
	}
}

func TestScatterIndivisiblePanics(t *testing.T) {
	m := machine.Hypercube(4, 0, 0)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		var data []float64
		if pr.Rank() == 0 {
			data = vec(7, 0)
		}
		Scatter(pr, seq(4), 0, 1, data)
	})
	if err == nil || !strings.Contains(err.Error(), "not divisible") {
		t.Fatalf("err = %v", err)
	}
}

func TestGatherCollectsInOrder(t *testing.T) {
	m := machine.Hypercube(8, 5, 2)
	group := seq(8)
	for root := 0; root < 8; root++ {
		res, err := simulator.Run(m, func(pr *simulator.Proc) {
			mine := []float64{float64(pr.Rank()), float64(pr.Rank() * 10)}
			got := Gather(pr, group, root, 1, mine)
			if pr.Rank() != root {
				if got != nil {
					t.Errorf("non-root got data")
				}
				return
			}
			for j := 0; j < 8; j++ {
				if got[2*j] != float64(j) || got[2*j+1] != float64(j*10) {
					t.Errorf("root %d: slice %d = %v", root, j, got[2*j:2*j+2])
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := GatherTime(5, 2, 2, 8); res.Tp != want {
			t.Fatalf("root %d: Tp = %v, want %v", root, res.Tp, want)
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	m := machine.Hypercube(16, 1, 1)
	group := seq(16)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		var data []float64
		if pr.Rank() == 5 {
			data = vec(16*4, 100)
		}
		mine := Scatter(pr, group, 5, 1, data)
		back := Gather(pr, group, 5, 200, mine)
		if pr.Rank() == 5 {
			for i, v := range back {
				if v != 100+float64(i) {
					t.Errorf("round trip lost data at %d: %v", i, v)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllExchanges(t *testing.T) {
	m := machine.Hypercube(8, 7, 2)
	group := seq(8)
	res, err := simulator.Run(m, func(pr *simulator.Proc) {
		// Message from i to j is [100i + j].
		data := make([]float64, 8)
		for j := range data {
			data[j] = float64(100*pr.Rank() + j)
		}
		got := AllToAll(pr, group, 10, data)
		for src := 0; src < 8; src++ {
			if got[src] != float64(100*src+pr.Rank()) {
				t.Errorf("rank %d: from %d got %v", pr.Rank(), src, got[src])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := AllToAllTime(7, 2, 1, 8); res.Tp != want {
		t.Fatalf("Tp = %v, want %v", res.Tp, want)
	}
}

func TestAllToAllWiderMessages(t *testing.T) {
	m := machine.Hypercube(4, 3, 1)
	group := seq(4)
	res, err := simulator.Run(m, func(pr *simulator.Proc) {
		data := make([]float64, 4*3)
		for j := 0; j < 4; j++ {
			for w := 0; w < 3; w++ {
				data[j*3+w] = float64(1000*pr.Rank() + 10*j + w)
			}
		}
		got := AllToAll(pr, group, 10, data)
		for src := 0; src < 4; src++ {
			for w := 0; w < 3; w++ {
				want := float64(1000*src + 10*pr.Rank() + w)
				if got[src*3+w] != want {
					t.Errorf("rank %d src %d word %d: got %v want %v", pr.Rank(), src, w, got[src*3+w], want)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// (ts + tw·m·g/2)·log g = (3 + 1·3·2)·2 = 18.
	if want := AllToAllTime(3, 1, 3, 4); res.Tp != want || want != 18 {
		t.Fatalf("Tp = %v, want %v (=18)", res.Tp, want)
	}
}

func TestAllToAllSingleton(t *testing.T) {
	m := machine.Hypercube(2, 1, 1)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		got := AllToAll(pr, []int{pr.Rank()}, 0, []float64{42})
		if len(got) != 1 || got[0] != 42 {
			t.Errorf("singleton AllToAll = %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllIndivisiblePanics(t *testing.T) {
	m := machine.Hypercube(4, 0, 0)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		AllToAll(pr, seq(4), 0, vec(6, 0))
	})
	if err == nil || !strings.Contains(err.Error(), "not divisible") {
		t.Fatalf("err = %v", err)
	}
}

func TestAllReduceSumsEverywhere(t *testing.T) {
	m := machine.Hypercube(8, 4, 2)
	group := seq(8)
	res, err := simulator.Run(m, func(pr *simulator.Proc) {
		data := make([]float64, 16)
		for i := range data {
			data[i] = float64(pr.Rank())
		}
		got := AllReduce(pr, group, 30, data)
		for i, v := range got {
			if v != 28 { // 0+1+...+7
				t.Errorf("rank %d element %d = %v, want 28", pr.Rank(), i, v)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := AllReduceTime(4, 2, 16, 8); res.Tp != want {
		t.Fatalf("Tp = %v, want %v", res.Tp, want)
	}
}

func TestAllReduceSingleton(t *testing.T) {
	m := machine.Hypercube(2, 1, 1)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		got := AllReduce(pr, []int{pr.Rank()}, 0, []float64{3, 4})
		if got[0] != 3 || got[1] != 4 {
			t.Errorf("singleton AllReduce = %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceTimeFormula(t *testing.T) {
	// reduce-scatter: 3·ts + tw·16·(7/8) = 12 + 28; all-gather of m/g=2:
	// 3·ts + tw·2·7 = 12 + 28. Total 80.
	if got := AllReduceTime(4, 2, 16, 8); got != 80 {
		t.Fatalf("AllReduceTime = %v, want 80", got)
	}
	if AllReduceTime(4, 2, 16, 1) != 0 {
		t.Fatal("singleton AllReduceTime should be 0")
	}
}

// Property: AllToAll is an involution when everyone sends symmetric
// data — applying it twice returns each member's original vector
// permuted twice, i.e. the identity on (src, dst) swaps.
func TestQuickAllToAllTwiceIsIdentity(t *testing.T) {
	m := machine.Hypercube(8, 0, 0)
	group := seq(8)
	f := func(seed uint8) bool {
		ok := true
		_, err := simulator.Run(m, func(pr *simulator.Proc) {
			data := make([]float64, 8)
			for j := range data {
				data[j] = float64(int(seed)*1000 + pr.Rank()*8 + j)
			}
			once := AllToAll(pr, group, 100, data)
			twice := AllToAll(pr, group, 300, once)
			for j := range data {
				if twice[j] != data[j] {
					ok = false
					return
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gather(Scatter(x)) == x for any root.
func TestQuickScatterGatherIdentity(t *testing.T) {
	m := machine.Hypercube(4, 1, 1)
	group := seq(4)
	f := func(rootRaw, seed uint8) bool {
		root := int(rootRaw) % 4
		ok := true
		_, err := simulator.Run(m, func(pr *simulator.Proc) {
			var data []float64
			if pr.Rank() == root {
				data = vec(8, float64(seed))
			}
			mine := Scatter(pr, group, root, 1, data)
			back := Gather(pr, group, root, 50, mine)
			if pr.Rank() == root {
				for i, v := range back {
					if v != float64(seed)+float64(i) {
						ok = false
						return
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastPipelinedChainContentAndTime(t *testing.T) {
	m := machine.Hypercube(8, 5, 2)
	chain := seq(8)
	for _, packets := range []int{1, 2, 4, 8} {
		res, err := simulator.Run(m, func(pr *simulator.Proc) {
			var data []float64
			if pr.Rank() == 0 {
				data = vec(16, 100)
			}
			got := BroadcastPipelinedChain(pr, chain, 10, data, packets)
			if len(got) != 16 || got[0] != 100 || got[15] != 115 {
				t.Errorf("packets=%d rank %d got %v", packets, pr.Rank(), got)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		want := PipelinedChainTime(5, 2, 16, 8, packets)
		if res.Tp != want {
			t.Fatalf("packets=%d: Tp = %v, want %v", packets, res.Tp, want)
		}
	}
}

func TestPipelinedBeatsSingleShotForLongChains(t *testing.T) {
	// The whole point of pipelining: with the optimal packet count the
	// chain broadcast is far cheaper than sending the full message hop
	// by hop ((q−1)·(ts+tw·m)).
	ts, tw, m, q := 5.0, 2.0, 1024, 16
	k := OptimalPackets(ts, tw, m, q)
	pipe := PipelinedChainTime(ts, tw, m, q, k)
	oneShot := float64(q-1) * (ts + tw*float64(m))
	if pipe >= oneShot/3 {
		t.Fatalf("pipelined %v not much below one-shot %v (k=%d)", pipe, oneShot, k)
	}
}

func TestOptimalPacketsProperties(t *testing.T) {
	if OptimalPackets(5, 2, 1, 8) != 1 {
		t.Fatal("single word should use one packet")
	}
	if OptimalPackets(5, 2, 100, 2) != 1 {
		t.Fatal("one-hop chain should use one packet")
	}
	if k := OptimalPackets(0, 2, 100, 8); k != 100 {
		t.Fatalf("free startups should packetize per word, got %d", k)
	}
	// The optimum really is a local minimum of the time function.
	ts, tw, m, q := 7.0, 3.0, 4096, 32
	k := OptimalPackets(ts, tw, m, q)
	best := PipelinedChainTime(ts, tw, m, q, k)
	for _, alt := range []int{k / 2, k * 2} {
		if alt >= 1 && alt <= m {
			if PipelinedChainTime(ts, tw, m, q, alt) < best*(1-1e-9) {
				t.Fatalf("k=%d is not near-optimal (alt %d better)", k, alt)
			}
		}
	}
}

func TestBroadcastPipelinedChainSingletonAndPanic(t *testing.T) {
	m := machine.Hypercube(2, 1, 1)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		got := BroadcastPipelinedChain(pr, []int{pr.Rank()}, 0, []float64{5}, 3)
		if got[0] != 5 {
			t.Errorf("singleton chain lost data")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = simulator.Run(m, func(pr *simulator.Proc) {
		BroadcastPipelinedChain(pr, seq(2), 0, nil, 0)
	})
	if err == nil || !strings.Contains(err.Error(), "at least one packet") {
		t.Fatalf("err = %v", err)
	}
}

func TestBroadcastPipelinedChainUnevenPackets(t *testing.T) {
	// 10 words in 4 packets of ⌈10/4⌉=3,3,3,1: content must survive.
	m := machine.Hypercube(4, 1, 1)
	chain := seq(4)
	_, err := simulator.Run(m, func(pr *simulator.Proc) {
		var data []float64
		if pr.Rank() == 0 {
			data = vec(10, 0)
		}
		got := BroadcastPipelinedChain(pr, chain, 7, data, 4)
		if len(got) != 10 {
			t.Errorf("rank %d got %d words", pr.Rank(), len(got))
			return
		}
		for i, v := range got {
			if v != float64(i) {
				t.Errorf("rank %d word %d = %v", pr.Rank(), i, v)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
