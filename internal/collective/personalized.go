package collective

import (
	"fmt"
	"math"

	"matscale/internal/simulator"
	"matscale/internal/topology"
)

// Personalized communication operations on hypercube-embedded groups,
// following Johnsson & Ho [20] (the reference the paper draws its
// communication costs from). These complete the substrate: Scatter and
// Gather move distinct data between a root and every member; AllToAll
// performs a full personalized exchange (the transpose primitive);
// AllReduce composes ReduceScatter with AllGather.

// Scatter distributes distinct equal-length slices from the member at
// rootIdx to every member: the root passes data of length m·g and each
// member receives its m-word slice (ordered by group index). The
// binomial "halving" tree costs ts·log g + tw·m·(g−1) on the critical
// path.
func Scatter(pr *simulator.Proc, group []int, rootIdx, tag int, data []float64) []float64 {
	d := log2Size(group)
	idx := indexIn(group, pr.Rank())
	g := len(group)
	if rootIdx < 0 || rootIdx >= g {
		panic(fmt.Sprintf("collective: root index %d out of range for group of %d", rootIdx, g))
	}
	if idx == rootIdx && len(data)%g != 0 {
		panic(fmt.Sprintf("collective: Scatter length %d not divisible by group size %d", len(data), g))
	}
	// Work in root-relative index space: member rel = idx ^ rootIdx
	// owns slice rel after the last round.
	rel := idx ^ rootIdx
	var buf []float64 // slices [lo, hi) in rel space, contiguous
	lo, hi := 0, g
	if rel == 0 {
		// Reorder the root's data into rel space once (free local move).
		m := len(data) / g
		buf = make([]float64, len(data))
		for r := 0; r < g; r++ {
			src := r ^ rootIdx // rel r holds the slice of member idx = r^rootIdx
			copy(buf[r*m:(r+1)*m], data[src*m:(src+1)*m])
		}
	}
	for s := d - 1; s >= 0; s-- {
		mask := (1 << (s + 1)) - 1
		switch rel & mask {
		case 0:
			if buf == nil {
				panic("collective: Scatter internal state lost")
			}
			m := len(buf) / (hi - lo)
			mid := (lo + hi) / 2
			pr.SendNeighbor(group[(rel|1<<s)^rootIdx], tag, buf[(mid-lo)*m:])
			buf = buf[:(mid-lo)*m]
			hi = mid
		case 1 << s:
			buf = pr.Recv(group[(rel^1<<s)^rootIdx], tag)
			lo = rel
			hi = rel + 1<<s
		}
	}
	out := make([]float64, len(buf))
	copy(out, buf)
	pr.Recycle(buf)
	return out
}

// ScatterTime is the critical-path cost of Scatter for per-member
// slice length m.
func ScatterTime(ts, tw float64, m, g int) float64 {
	d, ok := topology.Log2(g)
	if !ok {
		panic(fmt.Sprintf("collective: group size %d is not a power of two", g))
	}
	return ts*float64(d) + tw*float64(m)*float64(g-1)
}

// Gather is the mirror of Scatter: every member contributes an m-word
// slice and the root receives the g·m-word concatenation ordered by
// group index (nil elsewhere). Same cost as Scatter.
func Gather(pr *simulator.Proc, group []int, rootIdx, tag int, mine []float64) []float64 {
	d := log2Size(group)
	idx := indexIn(group, pr.Rank())
	g := len(group)
	if rootIdx < 0 || rootIdx >= g {
		panic(fmt.Sprintf("collective: root index %d out of range for group of %d", rootIdx, g))
	}
	m := len(mine)
	rel := idx ^ rootIdx
	buf := make([]float64, m)
	copy(buf, mine)
	// buf holds the contiguous rel-space range [rel, rel + len(buf)/m).
	for s := 0; s < d; s++ {
		mask := (1 << (s + 1)) - 1
		switch rel & mask {
		case 1 << s:
			// buf is this member's private accumulator and dies here,
			// so it rides the ownership-transfer fast path.
			pr.SendNeighborOwned(group[(rel^1<<s)^rootIdx], tag, buf)
			return nil
		case 0:
			got := pr.Recv(group[(rel|1<<s)^rootIdx], tag)
			buf = append(buf, got...)
			pr.Recycle(got)
		}
	}
	// Root: undo the rel-space ordering back to group-index order.
	out := make([]float64, g*m)
	for r := 0; r < g; r++ {
		src := r ^ rootIdx
		copy(out[src*m:(src+1)*m], buf[r*m:(r+1)*m])
	}
	pr.Recycle(buf)
	return out
}

// GatherTime is the critical-path cost of Gather.
func GatherTime(ts, tw float64, m, g int) float64 { return ScatterTime(ts, tw, m, g) }

// AllToAll performs the complete personalized exchange: every member
// passes one m-word message per member (concatenated in group-index
// order, g·m words total) and receives the g·m words addressed to it,
// ordered by source. The hypercube algorithm exchanges half of the
// current holdings across each dimension: cost
// (ts + tw·m·g/2)·log g. Packet bookkeeping headers travel at zero
// cost (they are control information the closed form does not charge).
func AllToAll(pr *simulator.Proc, group []int, tag int, data []float64) []float64 {
	d := log2Size(group)
	idx := indexIn(group, pr.Rank())
	g := len(group)
	if len(data)%g != 0 {
		panic(fmt.Sprintf("collective: AllToAll length %d not divisible by group size %d", len(data), g))
	}
	m := len(data) / g

	type packet struct {
		src, dst int
	}
	hold := make([]packet, g)
	payload := make(map[packet][]float64, g)
	for j := 0; j < g; j++ {
		hold[j] = packet{src: idx, dst: j}
		payload[hold[j]] = data[j*m : (j+1)*m]
	}
	// Received bodies are dismantled into payload sub-slices; the parent
	// buffers are recycled together once everything is copied out.
	var recvd [][]float64

	for s := d - 1; s >= 0; s-- {
		partner := idx ^ (1 << s)
		var keep, send []packet
		for _, pk := range hold {
			if (pk.dst>>s)&1 != (idx>>s)&1 {
				send = append(send, pk)
			} else {
				keep = append(keep, pk)
			}
		}
		// Header (free control info): the (src, dst) pairs in order.
		hdr := make([]float64, 0, 2*len(send))
		body := make([]float64, 0, m*len(send))
		for _, pk := range send {
			hdr = append(hdr, float64(pk.src), float64(pk.dst))
			body = append(body, payload[pk]...)
			delete(payload, pk)
		}
		// hdr and body are freshly assembled and die after the send, so
		// both ride the ownership-transfer fast path.
		pr.SendFreeOwned(group[partner], tag+2*s, hdr)
		pr.SendNeighborOwned(group[partner], tag+2*s+1, body)
		inHdr := pr.Recv(group[partner], tag+2*s)
		inBody := pr.Recv(group[partner], tag+2*s+1)
		hold = keep
		for i := 0; i < len(inHdr); i += 2 {
			pk := packet{src: int(inHdr[i]), dst: int(inHdr[i+1])}
			hold = append(hold, pk)
			payload[pk] = inBody[i/2*m : (i/2+1)*m]
		}
		pr.Recycle(inHdr)
		recvd = append(recvd, inBody)
	}

	out := make([]float64, g*m)
	// Each packet copies into its own disjoint out[pk.src*m:...] slot,
	// so iteration order cannot affect the result; the Sprintf only
	// feeds the routing assertion.
	for pk, body := range payload { //nodetbreak:ordered — disjoint copy targets
		if pk.dst != idx {
			panic(fmt.Sprintf("collective: AllToAll routing error: packet for %d at %d", pk.dst, idx))
		}
		copy(out[pk.src*m:(pk.src+1)*m], body)
	}
	for _, b := range recvd {
		pr.Recycle(b)
	}
	return out
}

// AllToAllTime is the critical-path cost of AllToAll for per-pair
// message size m.
func AllToAllTime(ts, tw float64, m, g int) float64 {
	d, ok := topology.Log2(g)
	if !ok {
		panic(fmt.Sprintf("collective: group size %d is not a power of two", g))
	}
	return float64(d) * (ts + tw*float64(m)*float64(g)/2)
}

// BroadcastPipelinedChain broadcasts data from chain[0] along the
// chain by genuine packet pipelining: the message splits into the
// given number of packets, each relay forwards packet i as soon as it
// has it, and transmission of packet i+1 overlaps the downstream
// forwarding of packet i. This is the real mechanism behind the
// pipelined broadcast bounds the paper cites (Fox's pipelined variant,
// and the packetization underlying Johnsson–Ho): the measured
// completion time is exactly
//
//	(packets + len(chain) − 2) · (ts + tw·⌈m/packets⌉)
//
// for packet-aligned messages. Every member returns the full data.
func BroadcastPipelinedChain(pr *simulator.Proc, chain []int, tag int, data []float64, packets int) []float64 {
	if packets < 1 {
		panic("collective: need at least one packet")
	}
	idx := indexIn(chain, pr.Rank())
	if len(chain) == 1 {
		return data
	}
	if idx == 0 {
		m := len(data)
		per := (m + packets - 1) / packets
		for k := 0; k < packets; k++ {
			lo := k * per
			hi := lo + per
			if lo > m {
				lo = m
			}
			if hi > m {
				hi = m
			}
			pr.SendNeighbor(chain[1], tag+k, data[lo:hi])
		}
		return data
	}
	var buf []float64
	for k := 0; k < packets; k++ {
		pkt := pr.Recv(chain[idx-1], tag+k)
		buf = append(buf, pkt...)
		if idx+1 < len(chain) {
			// The local copy into buf is done, so the packet buffer is
			// forwarded downstream without another copy. Appending first
			// charges no virtual time: only the send advances the clock.
			pr.SendNeighborOwned(chain[idx+1], tag+k, pkt)
		} else {
			pr.Recycle(pkt)
		}
	}
	return buf
}

// PipelinedChainTime is the completion time of BroadcastPipelinedChain
// for packet-aligned messages (packets | m).
func PipelinedChainTime(ts, tw float64, m, chainLen, packets int) float64 {
	if chainLen <= 1 {
		return 0
	}
	per := (m + packets - 1) / packets
	return float64(packets+chainLen-2) * (ts + tw*float64(per))
}

// OptimalPackets returns the packet count minimizing
// PipelinedChainTime: k* = sqrt(tw·m·(chainLen−2)/ts), clamped to
// [1, m].
func OptimalPackets(ts, tw float64, m, chainLen int) int {
	if m <= 1 || chainLen <= 2 || ts <= 0 {
		if m < 1 {
			return 1
		}
		if ts <= 0 && m > 1 && chainLen > 2 {
			return m // free startups: one word per packet
		}
		return 1
	}
	k := int(math.Sqrt(tw * float64(m) * float64(chainLen-2) / ts))
	if k < 1 {
		k = 1
	}
	if k > m {
		k = m
	}
	return k
}

// AllReduce sums the members' equal-length vectors and returns the
// full sum on every member, composed as reduce-scatter followed by
// all-gather (the bandwidth-optimal pairing). The vector length must
// be divisible by the group size. Cost:
// 2·ts·log g + 2·tw·m·(1 − 1/g).
func AllReduce(pr *simulator.Proc, group []int, tag int, data []float64) []float64 {
	g := len(group)
	if g == 1 {
		out := make([]float64, len(data))
		copy(out, data)
		return out
	}
	slice, _ := ReduceScatter(pr, group, tag, data)
	// ReduceScatter leaves member idx with the idx·(m/g) slice, which is
	// exactly AllGather's group-index concatenation order.
	return AllGather(pr, group, tag+64, slice)
}

// AllReduceTime is the critical-path cost of AllReduce for total
// vector length m.
func AllReduceTime(ts, tw float64, m, g int) float64 {
	if g == 1 {
		return 0
	}
	return ReduceScatterTime(ts, tw, m, g) + AllGatherTime(ts, tw, m/g, g)
}
