package des_test

import (
	"reflect"
	"testing"

	"matscale/internal/faults"
	"matscale/internal/machine"
	"matscale/internal/simulator"
)

// randomProgram builds a deterministic, deadlock-free message-passing
// program from a seed: rounds of permutation routes (send to
// rank+stride, receive from rank−stride) with seed-derived compute and
// message sizes — the same generator shape the simulator's own fuzz
// suite uses, reproduced here to drive both backends.
func randomProgram(seed uint64, p, rounds int) func(*simulator.Proc) {
	return func(pr *simulator.Proc) {
		state := seed ^ uint64(pr.Rank())*0x9e3779b97f4a7c15
		next := func() uint64 {
			state = state*6364136223846793005 + 1442695040888963407
			return state >> 33
		}
		for r := 0; r < rounds; r++ {
			stride := int(seed>>uint(r%8))%(p-1) + 1
			words := int(next() % 64)
			pr.Compute(float64(next() % 1000))
			pr.Send((pr.Rank()+stride)%p, r, make([]float64, words))
			buf := pr.Recv((pr.Rank()+p-stride)%p, r)
			pr.Recycle(buf)
		}
	}
}

// FuzzBackendEquivalence drives seed-derived permutation-routing
// programs through both backends — optionally under a fuzzed fault
// configuration — and requires identical results: same error/no-error
// outcome and, on success, a deeply equal Result including metrics.
func FuzzBackendEquivalence(f *testing.F) {
	f.Add(uint16(1), uint8(0), uint64(0), uint8(0))
	f.Add(uint16(999), uint8(2), uint64(42), uint8(10))
	f.Add(uint16(31337), uint8(3), uint64(7), uint8(60))
	f.Fuzz(func(t *testing.T, seedRaw uint16, pExp uint8, fseed uint64, lossPct uint8) {
		seed := uint64(seedRaw) + 1
		p := 1 << (2 + pExp%4) // 4..32 processors
		const rounds = 4
		mk := func() *machine.Machine {
			m := machine.Hypercube(p, 7, 2)
			m.CollectMetrics = true
			if lossPct > 0 {
				m.Faults = &faults.Config{
					Seed:       fseed,
					Loss:       float64(lossPct%95) / 100,
					Stragglers: map[int]float64{int(fseed % uint64(p)): 1.5},
				}
			}
			return m
		}
		g, gerr := simulator.Run(mk(), randomProgram(seed, p, rounds))
		e, eerr := simulator.Run(mk().WithBackend(machine.BackendEvents), randomProgram(seed, p, rounds))
		if (gerr == nil) != (eerr == nil) {
			t.Fatalf("backends disagree on outcome: goroutines err=%v, events err=%v", gerr, eerr)
		}
		if gerr != nil {
			return // both failed (e.g. retry budget exhausted) — equivalent
		}
		if !reflect.DeepEqual(g, e) {
			t.Fatalf("results differ: goroutines Tp=%v words=%d, events Tp=%v words=%d", g.Tp, g.Words, e.Tp, e.Words)
		}
	})
}
