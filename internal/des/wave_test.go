package des_test

import (
	"reflect"
	"testing"

	"matscale/internal/core"
	"matscale/internal/des"
	"matscale/internal/faults"
	"matscale/internal/machine"
	"matscale/internal/matrix"
)

// nativeCases exercises both data paths of the systolic tier: blk > 1
// (blocked multiply) and blk == 1 (one element per processor, the
// million-rank shape).
var nativeCases = []struct {
	name string
	p, n int
}{
	{"blocked/p16", 16, 16},
	{"blocked/p64", 64, 32},
	{"element/p16", 16, 4},
	{"element/p64", 64, 8},
	{"element/p1024", 1024, 32},
}

// runCannonBoth runs Cannon on the goroutine backend and on the
// events backend's native systolic tier (observability off makes the
// events machine eligible) with real-valued matrices, so any
// accumulation-order divergence shows up bitwise.
func runCannonBoth(t *testing.T, p, n int, fc *faults.Config) (g, e *core.Result) {
	t.Helper()
	a := matrix.Random(n, n, 91)
	b := matrix.Random(n, n, 92)
	g, err := core.Cannon(machine.NCube2(p).WithFaults(fc), a, b)
	if err != nil {
		t.Fatalf("goroutines: %v", err)
	}
	em := machine.NCube2(p).WithFaults(fc).WithBackend(machine.BackendEvents)
	if !des.SystolicEligible(em) {
		t.Fatal("expected machine to be eligible for the systolic tier")
	}
	e, err = core.Cannon(em, a, b)
	if err != nil {
		t.Fatalf("events native: %v", err)
	}
	return g, e
}

func assertNativeIdentical(t *testing.T, g, e *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(g.Sim, e.Sim) {
		t.Errorf("Result differs: goroutines Tp=%v msgs=%d words=%d, native Tp=%v msgs=%d words=%d",
			g.Sim.Tp, g.Sim.Messages, g.Sim.Words, e.Sim.Tp, e.Sim.Messages, e.Sim.Words)
	}
	if matrix.MaxAbsDiff(g.C, e.C) != 0 {
		t.Error("product differs bitwise between message-passing and native accumulation")
	}
}

// TestNativeCannonMatchesGoroutines asserts the systolic tier's
// uniform (clean-machine) path is byte-identical to the goroutine
// backend across block shapes and rank counts.
func TestNativeCannonMatchesGoroutines(t *testing.T) {
	for _, tc := range nativeCases {
		t.Run(tc.name, func(t *testing.T) {
			g, e := runCannonBoth(t, tc.p, tc.n, nil)
			assertNativeIdentical(t, g, e)
		})
	}
}

// TestNativeCannonFaultedMatchesGoroutines drives the per-rank wave
// path: stragglers and link jitter make clocks diverge, so the wave
// passes must reproduce every rank's idle alignment exactly.
func TestNativeCannonFaultedMatchesGoroutines(t *testing.T) {
	fc := func() *faults.Config {
		return &faults.Config{
			Seed:       42,
			Stragglers: map[int]float64{5: 1.7, 11: 1.2},
			Jitter:     0.3,
		}
	}
	for _, tc := range nativeCases {
		t.Run(tc.name, func(t *testing.T) {
			g, e := runCannonBoth(t, tc.p, tc.n, fc())
			assertNativeIdentical(t, g, e)
		})
	}
}

// TestSystolicEligibility pins the gate: every observability or
// per-message feature must route the events backend through the
// general fiber engine instead.
func TestSystolicEligibility(t *testing.T) {
	base := func() *machine.Machine { return machine.NCube2(16).WithBackend(machine.BackendEvents) }
	if !des.SystolicEligible(base()) {
		t.Error("plain events machine should be eligible")
	}
	if des.SystolicEligible(machine.NCube2(16)) {
		t.Error("goroutines machine must not be eligible")
	}
	withMetrics := base()
	withMetrics.CollectMetrics = true
	withTrace := base()
	withTrace.CollectTrace = true
	withContention := base()
	withContention.TrackContention = true
	lossy := base().WithFaults(&faults.Config{Seed: 1, Loss: 0.1})
	for name, m := range map[string]*machine.Machine{
		"metrics": withMetrics, "trace": withTrace, "contention": withContention, "loss": lossy,
	} {
		if des.SystolicEligible(m) {
			t.Errorf("%s machine must not be eligible for the systolic tier", name)
		}
	}
	straggled := base().WithFaults(&faults.Config{Seed: 1, Stragglers: map[int]float64{0: 2}})
	if !des.SystolicEligible(straggled) {
		t.Error("straggler-only faults are supported by the wave path and should stay eligible")
	}
}

// TestRunSystolicRejectsMismatch pins the error paths of the exported
// entry point.
func TestRunSystolicRejectsMismatch(t *testing.T) {
	m := machine.NCube2(16)
	if _, err := des.RunSystolic(m, des.SystolicSpec{P: 16, GatherRoot: -1}); err == nil {
		t.Error("want error for non-events machine")
	}
	em := m.WithBackend(machine.BackendEvents)
	if _, err := des.RunSystolic(em, des.SystolicSpec{P: 8, GatherRoot: -1}); err == nil {
		t.Error("want error for rank-count mismatch")
	}
}
