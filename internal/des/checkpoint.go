// Checkpoint/resume for the fiber tier.
//
// Consistent cut. Under strict handoff, whenever the event loop holds
// control every fiber is parked and no message is "on the wire":
// anything sent but not yet consumed sits either in a destination
// mailbox FIFO or, as a pending resume, on the event heap. The engine
// state at the top of the event loop therefore IS a Chandy–Lamport
// consistent cut — the mailbox FIFOs play the role of the recorded
// channel state, with no marker protocol needed because there is no
// concurrency to race with. The cut is addressed by a single number:
// the count of event-loop dispatches ("events") performed so far.
//
// Snapshot. A suspension serializes the complete engine state at the
// cut — virtual clock(s), event heap, per-fiber scheduling state and
// mailbox contents, contended-link busy times, pooled-buffer
// capacities, per-rank accounting including the fault/RNG coordinate
// (each rank's send sequence, which keys every loss draw) and any
// collected trace — into an internal/checkpoint container, tagged
// with a machine fingerprint and the cut's event count.
//
// Restore. Go cannot reenter a goroutine stack from bytes, so restore
// replays: the run is re-executed from event 0 to the snapshot's cut
// (the engine is deterministic, so the replay walks the identical
// state sequence), the replayed state is re-encoded and compared
// byte-for-byte against the snapshot, and only on an exact match does
// the run continue past the cut. The comparison turns silent
// divergence — a different binary, program, or tampered snapshot that
// slipped past the fingerprint — into a typed ResumeMismatchError at
// the cut instead of quietly wrong results. Byte-identity of the
// resumed run's output then follows from determinism, and the
// differential suite in checkpoint_test.go enforces it for every
// formulation. See docs/BACKENDS.md for the full argument.
package des

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"matscale/internal/checkpoint"
	"matscale/internal/machine"
	"matscale/internal/simulator"
)

// snapKind and snapVersion identify the fiber tier's payload schema
// inside the checkpoint container. Bump snapVersion on any change to
// encodeState or the meta keys; a resume across versions is rejected
// with a typed checkpoint.VersionError rather than misdecoded.
const (
	snapKind    = "matscale/des-run"
	snapVersion = 1
)

// errSuspendDrain is the poison the event loop aborts parked fibers
// with while dismantling a suspended engine. It never escapes: the
// suspension path returns a SuspendedError (or the sink's error), not
// the engine's failed field.
var errSuspendDrain = errors.New("des: run suspended")

// desSnapshot is a decoded, fingerprint-checked snapshot awaiting
// verification against the replay.
type desSnapshot struct {
	events uint64
	state  []byte
}

// fingerprint renders the run configuration a snapshot is only valid
// for: topology, cost constants, routing, port regime, faults (all via
// machine.String), processor count, backend, and the observability
// flags — metrics and tracing change the encoded state (trace events,
// link aggregates), so a snapshot taken with them differs from one
// taken without.
func fingerprint(m *machine.Machine, collectTrace bool) string {
	return fmt.Sprintf("%s|p=%d|backend=%s|metrics=%t|trace=%t|contention=%t",
		m.String(), m.P(), m.Backend, m.CollectMetrics, collectTrace, m.TrackContention)
}

// encodeState serializes the complete engine state at a consistent
// cut, deterministically: map-keyed structures are emitted in sorted
// key order, FIFOs in arrival order, fibers and their Procs in rank
// order, pooled buffers as capacities in LIFO order. Determinism here
// is load-bearing: restore verification compares these bytes against
// a replay's.
func encodeState(e *engine, procs []*simulator.Proc) []byte {
	enc := &checkpoint.Encoder{}
	enc.U64(e.seq)
	enc.U64(e.popped)

	// The event heap in array order. The array layout is a pure
	// function of the push/pop history, which replay reproduces.
	enc.U32(uint32(len(e.heap.a)))
	for _, ev := range e.heap.a {
		enc.F64(ev.t)
		enc.U64(ev.seq)
		enc.I64(int64(ev.rank))
	}

	links := make([][2]int, 0, len(e.links))
	for l := range e.links { //nodetbreak:ordered — sorted below before encoding
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	enc.U32(uint32(len(links)))
	for _, l := range links {
		enc.I64(int64(l[0]))
		enc.I64(int64(l[1]))
		enc.F64(e.links[l])
	}

	// The run-wide buffer pool: capacities only, in LIFO order. The
	// payloads are dead (every slot is overwritten before delivery);
	// capacity is what future reuse observes.
	enc.U32(uint32(len(e.free)))
	for _, b := range e.free {
		enc.U64(uint64(cap(b)))
	}

	for i, f := range e.fibers {
		enc.U8(uint8(f.state))
		enc.Bool(f.blocked)
		enc.I64(int64(f.want.src))
		enc.I64(int64(f.want.tag))
		enc.Bool(f.ready)

		ks := make([]key, 0, len(f.queues))
		for k := range f.queues { //nodetbreak:ordered — sorted below before encoding
			ks = append(ks, k)
		}
		sort.Slice(ks, func(a, b int) bool {
			if ks[a].src != ks[b].src {
				return ks[a].src < ks[b].src
			}
			return ks[a].tag < ks[b].tag
		})
		enc.U32(uint32(len(ks)))
		for _, k := range ks {
			q := f.queues[k]
			enc.I64(int64(k.src))
			enc.I64(int64(k.tag))
			enc.U32(uint32(q.n))
			for j := 0; j < q.n; j++ {
				msg := q.buf[(q.head+j)%len(q.buf)]
				enc.F64(msg.Arrival)
				enc.F64s(msg.Data)
			}
		}

		procs[i].EncodeCheckpointState(enc)
	}
	return enc.Data()
}

// encodeDESSnapshot wraps the cut's state in the versioned container.
func encodeDESSnapshot(e *engine, procs []*simulator.Proc, m *machine.Machine, collectTrace bool) []byte {
	s := &checkpoint.Snapshot{
		Kind:    snapKind,
		Version: snapVersion,
		Meta: map[string]string{
			"machine": fingerprint(m, collectTrace),
			"events":  strconv.FormatUint(e.popped, 10),
			"p":       strconv.Itoa(m.P()),
		},
		Payload: encodeState(e, procs),
	}
	return s.Encode()
}

// decodeDESSnapshot parses and validates a snapshot against the run
// configuration, before any replay: container integrity, kind and
// version, then the machine fingerprint. The state payload itself is
// verified later, at the cut.
func decodeDESSnapshot(data []byte, m *machine.Machine, collectTrace bool) (*desSnapshot, error) {
	s, err := checkpoint.Decode(data)
	if err != nil {
		return nil, err
	}
	if err := s.Expect(snapKind, snapVersion); err != nil {
		return nil, err
	}
	if got, want := s.Meta["machine"], fingerprint(m, collectTrace); got != want {
		return nil, &simulator.ResumeMismatchError{Reason: fmt.Sprintf(
			"snapshot was taken on %q, resuming on %q", got, want)}
	}
	events, err := strconv.ParseUint(s.Meta["events"], 10, 64)
	if err != nil {
		return nil, &simulator.ResumeMismatchError{Reason: fmt.Sprintf(
			"snapshot event count %q: %v", s.Meta["events"], err)}
	}
	if events == 0 {
		return nil, &simulator.ResumeMismatchError{Reason: "snapshot cut at event 0 (nothing to resume)"}
	}
	return &desSnapshot{events: events, state: s.Payload}, nil
}
