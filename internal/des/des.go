// Package des is the discrete-event simulation backend of the
// virtual-time multicomputer: a central priority queue of
// rank-becomes-runnable events, ordered by virtual time, drives the
// same rank programs the goroutine backend runs — without a free-
// running goroutine per rank.
//
// Each rank is a coroutine under strict handoff: exactly one of the
// event loop and the rank bodies is ever runnable, so the entire
// engine state is accessed single-threadedly and needs no locks. A
// rank runs until it blocks in Recv on a message that does not exist
// yet; the matching Deliver schedules a resume event at the virtual
// time the receiver continues, max(receiver clock, arrival). The event
// loop then always resumes the runnable rank with the least virtual
// time — classic discrete-event simulation in the spirit of a
// sequential logical-process simulator.
//
// Because every virtual-time quantity is charged by the shared
// simulator.Proc code and message matching is FIFO per (source, tag),
// the simulated results are independent of the order ready ranks are
// resumed in; the event loop's least-time order is the canonical one.
// The differential suite in this package asserts byte-identical
// Result, Metrics, CSV and Chrome-trace output against the goroutine
// backend for every formulation. See docs/BACKENDS.md for the event
// model, the determinism argument, and guidance on choosing a backend.
//
// The fiber path below runs any program at moderate rank counts. For
// the regular systolic structure of Cannon's algorithm the package
// additionally provides a native million-rank path (wave.go) with no
// per-rank coroutine at all.
package des

import (
	"bytes"
	"fmt"

	"matscale/internal/machine"
	"matscale/internal/simulator"
)

func init() {
	simulator.RegisterBackend(machine.BackendEvents, run)
	// The fiber tier is also the checkpoint-capable runner: strict
	// handoff means every instant the event loop holds control is a
	// Chandy–Lamport consistent cut (see checkpoint.go).
	simulator.RegisterCheckpointBackend(machine.BackendEvents, run)
}

// key matches a message within one destination's mailbox.
type key struct{ src, tag int }

// msgQueue is a growable FIFO ring of messages for one (src, tag) key,
// identical in behavior to the goroutine backend's: the ring never
// shrinks and the key's entry is never deleted, so a steady-state
// send/recv cycle pushes and pops with zero allocation.
type msgQueue struct {
	buf  []simulator.Message
	head int // index of the oldest message
	n    int // live messages
}

func (q *msgQueue) push(m simulator.Message) {
	if q.n == len(q.buf) {
		grown := make([]simulator.Message, max(4, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = m
	q.n++
}

func (q *msgQueue) pop() simulator.Message {
	m := q.buf[q.head]
	q.buf[q.head] = simulator.Message{} // release the payload reference
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return m
}

// Fiber states. A fiber is parked whenever the event loop holds
// control; parked-and-blocked means it sits inside Await.
const (
	stateParked = iota
	stateRunning
	stateExited
)

// fiber is one rank's coroutine: the goroutine that executes the rank
// body, parked on resume between turns, plus the rank's mailbox and
// scheduling state. All fields are owned by whichever side currently
// holds control — strict handoff makes that exclusive.
type fiber struct {
	rank   int
	eng    *engine
	proc   *simulator.Proc
	resume chan struct{}
	queues map[key]*msgQueue

	state    int
	blocked  bool // parked inside Await
	want     key  // key blocked on (valid while blocked)
	ready    bool // resume event is on the heap
	panicked any  // recover() value at exit, nil on clean return
}

// engine is the shared state of one discrete-event simulation. It
// implements simulator.Engine. No locks anywhere: strict handoff means
// at most one goroutine touches it at a time.
type engine struct {
	m      *machine.Machine
	fibers []*fiber
	heap   eventHeap
	seq    uint64
	// popped counts event-loop dispatches (heap pops). It is the
	// coordinate of the checkpoint cut: "suspend after N events" and
	// "this snapshot was cut at event N" both count in it.
	popped uint64
	// yield carries control from a fiber back to the event loop; the
	// value is the yielding rank. A fiber yields when it blocks in
	// Await or exits, never in between.
	yield chan int

	failed  error
	aborted bool
	alive   int

	// links tracks per-directed-link busy-until virtual times when the
	// machine has TrackContention set.
	links map[[2]int]float64
	// free is the run-wide overflow tier of the payload buffer pool.
	// Unlike the goroutine backend's sync.Pool it is deterministic:
	// LIFO order, single-threaded.
	free [][]float64
}

// schedule pushes a resume event for rank at virtual time t.
func (e *engine) schedule(t float64, rank int) {
	e.heap.push(event{t: t, seq: e.seq, rank: int32(rank)})
	e.seq++
}

// Deliver implements simulator.Engine: it enqueues msg in dst's
// mailbox and, if dst is blocked on exactly this (src, tag) stream,
// schedules its resume at the virtual time it will continue.
func (e *engine) Deliver(src, dst, tag int, msg simulator.Message) {
	f := e.fibers[dst]
	k := key{src: src, tag: tag}
	q := f.queues[k]
	if q == nil {
		q = &msgQueue{}
		f.queues[k] = q
	}
	q.push(msg)
	if f.blocked && f.want == k && !f.ready {
		f.ready = true
		t := f.proc.Clock()
		if msg.Arrival > t {
			t = msg.Arrival
		}
		e.schedule(t, dst)
	}
}

// Await implements simulator.Engine: it returns the next (src, tag)
// message addressed to rank, yielding control to the event loop until
// one exists. Mirroring the goroutine backend, an available message is
// consumed even after a failure; the abort only unwinds a rank that
// would otherwise block forever.
func (e *engine) Await(rank, src, tag int) simulator.Message {
	f := e.fibers[rank]
	k := key{src: src, tag: tag}
	for {
		if q := f.queues[k]; q != nil && q.n > 0 {
			return q.pop()
		}
		if e.aborted {
			simulator.AbortPanic(e.failed)
		}
		f.blocked, f.want = true, k
		f.park()
		f.blocked = false
	}
}

// park hands control to the event loop and waits to be resumed.
func (f *fiber) park() {
	f.state = stateParked
	f.eng.yield <- f.rank
	<-f.resume
	f.state = stateRunning
}

// ContendedArrival implements simulator.Engine via the shared
// link-traversal computation; single-threaded, so no lock.
func (e *engine) ContendedArrival(src int, route []int, start float64, words int) float64 {
	return simulator.AdvanceRoute(e.m, e.links, src, route, start, words)
}

// Abort implements simulator.Engine: it records the first failure and
// unwinds the calling rank. Parked ranks are poison-resumed by the
// event loop's drain, each unwinding through Await when it next finds
// nothing to consume.
func (e *engine) Abort(err error) {
	if e.failed == nil {
		e.failed = err
		e.aborted = true
	}
	simulator.AbortPanic(e.failed)
}

// GetBuf implements simulator.Engine: LIFO pop from the run-wide free
// list. A buffer of insufficient capacity is dropped rather than put
// back, mirroring the goroutine backend's pool tier.
func (e *engine) GetBuf(n int) []float64 {
	if len(e.free) == 0 {
		return nil
	}
	b := e.free[len(e.free)-1]
	e.free[len(e.free)-1] = nil
	e.free = e.free[:len(e.free)-1]
	if cap(b) < n {
		return nil
	}
	return b[:n]
}

// PutBuf implements simulator.Engine.
func (e *engine) PutBuf(b []float64) {
	e.free = append(e.free, b)
}

// Run executes body on every processor of m under the discrete-event
// engine and collects timing. It is the package-level entry point
// equivalent to simulator.Run on a BackendEvents machine; results are
// byte-identical to the goroutine backend's.
func Run(m *machine.Machine, body func(*simulator.Proc)) (*simulator.Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return run(m, body, m.CollectTrace)
}

// run is the registered backend entry: m is already validated. The
// machine's CheckpointControl (nil for plain runs) selects suspension
// and resume behavior; see checkpoint.go for the cut and its encoding.
func run(m *machine.Machine, body func(*simulator.Proc), collectTrace bool) (*simulator.Result, error) {
	ck := m.Checkpoint
	var snap *desSnapshot
	if ck != nil && ck.Resume != nil {
		var err error
		snap, err = decodeDESSnapshot(ck.Resume, m, collectTrace)
		if err != nil {
			return nil, err
		}
		if ck.StopAfter > 0 && ck.StopAfter <= snap.events {
			return nil, &simulator.ResumeMismatchError{Reason: fmt.Sprintf(
				"StopAfter=%d is not beyond the snapshot cut at event %d", ck.StopAfter, snap.events)}
		}
	}
	p := m.P()
	e := &engine{m: m, yield: make(chan int), alive: p}
	if m.TrackContention {
		e.links = make(map[[2]int]float64)
	}
	e.fibers = make([]*fiber, p)
	procs := make([]*simulator.Proc, p)
	for i := 0; i < p; i++ {
		f := &fiber{
			rank:   i,
			eng:    e,
			proc:   simulator.NewProcOn(e, i, m, collectTrace),
			resume: make(chan struct{}),
			queues: make(map[key]*msgQueue),
			state:  stateParked,
			ready:  true,
		}
		e.fibers[i] = f
		procs[i] = f.proc
		// Every rank is runnable at virtual time zero.
		e.schedule(0, i)
	}
	for _, f := range e.fibers {
		go func(f *fiber) {
			<-f.resume
			f.state = stateRunning
			defer func() {
				f.panicked = recover()
				f.state = stateExited
				e.yield <- f.rank
			}()
			if e.aborted {
				// First resumed by a drain (suspension or failure):
				// unwind immediately instead of executing the body
				// against an engine that has stopped simulating.
				simulator.AbortPanic(e.failed)
			}
			body(f.proc)
		}(f)
	}

	// resumeAndWait hands control to f until it parks or exits,
	// folding an exit into the engine's failure bookkeeping.
	resumeAndWait := func(f *fiber) {
		f.resume <- struct{}{}
		r := <-e.yield
		y := e.fibers[r]
		if y.state != stateExited {
			return
		}
		e.alive--
		if pv := y.panicked; pv != nil {
			if _, isAbort := simulator.AbortError(pv); !isAbort && e.failed == nil {
				e.failed = fmt.Errorf("des: processor %d panicked: %v", y.rank, pv)
				e.aborted = true
			}
		}
	}

	// drain poison-resumes every remaining fiber so each unwinds (or
	// aborts immediately, if never started) and its goroutine exits —
	// the event backend must never leak parked coroutines. It is used
	// both after a failure and to dismantle a suspended engine, whose
	// snapshot is captured before the drain mutates anything.
	drain := func() {
		for e.alive > 0 {
			for _, f := range e.fibers {
				if f.state != stateExited {
					resumeAndWait(f)
					break
				}
			}
		}
	}

	// The event loop: always resume the least-virtual-time runnable
	// rank. The loop ends when no rank is runnable — completion when
	// none is left alive, deadlock when blocked ranks remain — or on
	// the first failure. Whenever the loop holds control every fiber is
	// parked and every in-flight message sits in a mailbox FIFO or on
	// the heap, so the top of the loop is a consistent cut: the place
	// a resume is verified and a suspension is taken.
	for e.failed == nil && e.heap.len() > 0 {
		if snap != nil && e.popped == snap.events {
			// Replay reached the snapshot's cut: the re-encoded state
			// must reproduce the snapshot byte for byte, or the
			// snapshot belongs to a different program or build.
			if !bytes.Equal(encodeState(e, procs), snap.state) {
				e.aborted = true
				e.failed = errSuspendDrain
				drain()
				return nil, &simulator.ResumeMismatchError{Reason: fmt.Sprintf(
					"replayed state at event %d does not match the snapshot: same machine fingerprint, different program or build", snap.events)}
			}
			snap = nil
		}
		if ck != nil && ck.StopAfter > 0 && e.popped == ck.StopAfter {
			data := encodeDESSnapshot(e, procs, m, collectTrace)
			e.aborted = true
			e.failed = errSuspendDrain
			drain()
			if ck.Sink != nil {
				if err := ck.Sink(data, ck.StopAfter); err != nil {
					return nil, fmt.Errorf("des: checkpoint sink: %w", err)
				}
			}
			return nil, &simulator.SuspendedError{Events: ck.StopAfter, Snapshot: data}
		}
		ev := e.heap.pop()
		e.popped++
		f := e.fibers[ev.rank]
		f.ready = false
		if f.state == stateExited {
			continue
		}
		resumeAndWait(f)
	}

	if e.failed == nil && e.alive > 0 {
		for _, f := range e.fibers {
			if f.blocked {
				e.failed = fmt.Errorf("des: deadlock: all %d live processors blocked in Recv (rank %d waiting for src=%d tag=%d)", e.alive, f.rank, f.want.src, f.want.tag)
				e.aborted = true
				break
			}
		}
	}

	// Drain after a failure (and after clean completion, where it is a
	// no-op: alive is already zero).
	drain()

	if e.failed != nil {
		if snap != nil {
			return nil, &simulator.ResumeMismatchError{Reason: fmt.Sprintf(
				"replay failed before reaching the snapshot cut at event %d: %v", snap.events, e.failed)}
		}
		return nil, e.failed
	}
	if snap != nil {
		return nil, &simulator.ResumeMismatchError{Reason: fmt.Sprintf(
			"run completed after %d events, before reaching the snapshot cut at event %d", e.popped, snap.events)}
	}
	unconsumed := 0
	for _, f := range e.fibers {
		for _, q := range f.queues {
			unconsumed += q.n
		}
	}
	if unconsumed != 0 {
		return nil, fmt.Errorf("des: %d messages left unconsumed at exit", unconsumed)
	}
	return simulator.BuildResult(m, procs, collectTrace), nil
}
