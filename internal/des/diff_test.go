package des_test

import (
	"bytes"
	"reflect"
	"testing"

	"matscale/internal/core"
	"matscale/internal/des"
	"matscale/internal/faults"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/simulator"
)

// formulations lists every algorithm formulation with a geometry it
// accepts: twelve on a 64-processor hypercube (64 = 8² = 4³ satisfies
// every mesh, cube and power-of-8 constraint) and the two mesh-only
// Fox variants on a 64-processor wraparound mesh.
var formulations = []struct {
	name string
	alg  core.Algorithm
	mk   func() *machine.Machine
	n    int
}{
	{"Simple", core.Simple, hyper, 16},
	{"SimpleAllPort", core.SimpleAllPort, hyper, 16},
	{"SimpleMemEfficientAllPort", core.SimpleMemEfficientAllPort, hyper, 16},
	{"Cannon", core.Cannon, hyper, 16},
	{"Fox", core.Fox, hyper, 16},
	{"FoxPipelined", core.FoxPipelined, hyper, 16},
	{"FoxAsync", core.FoxAsync, hyper, 16},
	{"FoxMesh", core.FoxMesh, mesh, 16},
	{"FoxPacketPipelined", core.FoxPacketPipelined, mesh, 16},
	{"Berntsen", core.Berntsen, hyper, 16},
	{"GK", core.GK, hyper, 16},
	{"GKImprovedBroadcast", core.GKImprovedBroadcast, hyper, 16},
	{"GKAllPort", core.GKAllPort, hyper, 16},
	{"DNS", core.DNS, hyper, 8}, // plain DNS needs p ≥ n²
}

func hyper() *machine.Machine { return machine.NCube2(64) }
func mesh() *machine.Machine  { return machine.Mesh(64, 7, 2) }

// faulted is the perturbation of the faulted half of the differential
// matrix: a fixed seed, a straggler, link jitter and message loss, so
// the comparison exercises the straggler charging, the per-link ts/tw
// perturbation and the reliable-delivery retry layer on both backends.
func faulted() *faults.Config {
	return &faults.Config{
		Seed:       42,
		Loss:       0.02,
		Stragglers: map[int]float64{3: 1.5},
		Jitter:     0.2,
	}
}

// observe turns on every observability channel so the comparison
// covers metrics and traces, not just the scalar results.
func observe(m *machine.Machine) *machine.Machine {
	m.CollectMetrics = true
	m.CollectTrace = true
	return m
}

// runBoth runs one formulation on both backends with identical
// configuration and returns the two results.
func runBoth(t *testing.T, alg core.Algorithm, mk func() *machine.Machine, n int, fc *faults.Config) (g, e *core.Result) {
	t.Helper()
	a := matrix.RandomInts(n, n, 71)
	b := matrix.RandomInts(n, n, 72)
	gm := observe(mk()).WithFaults(fc)
	g, err := alg(gm, a, b)
	if err != nil {
		t.Fatalf("goroutines backend: %v", err)
	}
	em := observe(mk()).WithFaults(fc).WithBackend(machine.BackendEvents)
	e, err = alg(em, a, b)
	if err != nil {
		t.Fatalf("events backend: %v", err)
	}
	return g, e
}

// assertIdentical asserts the two results are byte-identical: the full
// Result structure (clocks, totals, metrics, trace), the serialized
// CSV and Chrome-trace emissions, and the computed product.
func assertIdentical(t *testing.T, g, e *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(g.Sim, e.Sim) {
		t.Errorf("Result differs across backends:\n goroutines Tp=%v To-ish clocks=%v\n events     Tp=%v clocks=%v",
			g.Sim.Tp, g.Sim.ProcClocks[:min(4, len(g.Sim.ProcClocks))],
			e.Sim.Tp, e.Sim.ProcClocks[:min(4, len(e.Sim.ProcClocks))])
	}
	if matrix.MaxAbsDiff(g.C, e.C) != 0 {
		t.Error("product differs across backends")
	}
	emit := func(r *core.Result) (ranks, links, chrome, csv []byte) {
		var b1, b2, b3, b4 bytes.Buffer
		if err := r.Sim.Metrics.WriteRanksCSV(&b1); err != nil {
			t.Fatal(err)
		}
		if err := r.Sim.Metrics.WriteLinksCSV(&b2); err != nil {
			t.Fatal(err)
		}
		if err := r.Sim.Trace.WriteChromeTrace(&b3); err != nil {
			t.Fatal(err)
		}
		if err := r.Sim.Trace.WriteCSV(&b4); err != nil {
			t.Fatal(err)
		}
		return b1.Bytes(), b2.Bytes(), b3.Bytes(), b4.Bytes()
	}
	gr, gl, gc, gv := emit(g)
	er, el, ec, ev := emit(e)
	if !bytes.Equal(gr, er) {
		t.Error("ranks CSV differs across backends")
	}
	if !bytes.Equal(gl, el) {
		t.Error("links CSV differs across backends")
	}
	if !bytes.Equal(gc, ec) {
		t.Error("Chrome trace differs across backends")
	}
	if !bytes.Equal(gv, ev) {
		t.Error("trace CSV differs across backends")
	}
}

// TestBackendEquivalenceClean asserts byte-identical output across
// backends for every formulation on a clean machine.
func TestBackendEquivalenceClean(t *testing.T) {
	for _, tc := range formulations {
		t.Run(tc.name, func(t *testing.T) {
			g, e := runBoth(t, tc.alg, tc.mk, tc.n, nil)
			assertIdentical(t, g, e)
		})
	}
}

// TestBackendEquivalenceFaulted repeats the matrix under the fixed
// seed-42 fault scenario: stragglers, link jitter and lossy sends with
// retries must charge identically on both backends.
func TestBackendEquivalenceFaulted(t *testing.T) {
	for _, tc := range formulations {
		t.Run(tc.name, func(t *testing.T) {
			g, e := runBoth(t, tc.alg, tc.mk, tc.n, faulted())
			assertIdentical(t, g, e)
		})
	}
}

// TestBackendEquivalenceContention runs Cannon with link-level
// contention tracking on both backends: the shared AdvanceRoute
// computation must serialize identically (and find the paper's
// algorithms contention-free on both).
func TestBackendEquivalenceContention(t *testing.T) {
	mk := func() *machine.Machine {
		m := hyper()
		m.TrackContention = true
		return m
	}
	g, e := runBoth(t, core.Cannon, mk, 16, nil)
	assertIdentical(t, g, e)
	if g.Sim.ContentionWait != 0 || e.Sim.ContentionWait != 0 {
		t.Errorf("contention wait: goroutines %v, events %v, want 0", g.Sim.ContentionWait, e.Sim.ContentionWait)
	}
}

// TestEventsBackendErrors asserts the failure modes error on the
// events backend just as on the goroutine backend: deadlock, a
// panicking rank, and messages left unconsumed at exit.
func TestEventsBackendErrors(t *testing.T) {
	m := machine.Hypercube(4, 5, 1).WithBackend(machine.BackendEvents)
	if _, err := simulator.Run(m, func(p *simulator.Proc) {
		p.Recv((p.Rank()+1)%p.P(), 0) // nobody ever sends
	}); err == nil {
		t.Error("deadlock not detected on events backend")
	}
	if _, err := simulator.Run(m, func(p *simulator.Proc) {
		if p.Rank() == 2 {
			panic("boom")
		}
		p.Recv(2, 0)
	}); err == nil {
		t.Error("rank panic not reported on events backend")
	}
	if _, err := simulator.Run(m, func(p *simulator.Proc) {
		p.Send((p.Rank()+1)%p.P(), 0, []float64{1}) // never received
	}); err == nil {
		t.Error("unconsumed messages not reported on events backend")
	}
}

// TestDesRunEntryPoint exercises the package-level Run against
// simulator.Run on the same machine.
func TestDesRunEntryPoint(t *testing.T) {
	m := machine.Hypercube(8, 5, 1)
	body := func(p *simulator.Proc) {
		p.Compute(float64(p.Rank()))
		p.Send((p.Rank()+1)%p.P(), 0, []float64{float64(p.Rank())})
		buf := p.Recv((p.Rank()+p.P()-1)%p.P(), 0)
		p.Recycle(buf)
	}
	g, err := simulator.Run(m, body)
	if err != nil {
		t.Fatal(err)
	}
	e, err := des.Run(m, body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, e) {
		t.Errorf("des.Run differs from simulator.Run: Tp %v vs %v", g.Tp, e.Tp)
	}
}
