package des

import (
	"fmt"

	"matscale/internal/machine"
	"matscale/internal/simulator"
)

// This file is the native tier of the discrete-event backend: a wave
// scheduler for systolic programs — the regular compute/shift/shift
// structure of Cannon's algorithm — that needs no coroutine, no
// mailbox and no per-message event at all. In a systolic step every
// rank performs the same sequence (compute, then for each shift send
// to a fixed partner and receive from the opposite one), so the whole
// step is one synchronous wave: arrival times for a shift are a pure
// function of the senders' clocks after their send, and the event
// loop's least-time ordering collapses into array passes over the
// ranks. The charging below replays, add for add and in the same
// order, exactly what the shared simulator.Proc code charges the
// fiber tier for the same program, so the Result is byte-identical to
// both other engines — the native differential suite asserts this.
//
// On a healthy machine (no fault configuration) every rank's per-step
// charges are identical, all clocks stay equal by induction, and the
// wave degenerates to a single representative clock advanced Steps
// times — the million-rank regime: simulating Cannon at p = 2^20
// costs O(√p) clock arithmetic plus the real block arithmetic the
// caller performs. Under stragglers or link jitter the engine runs the
// full per-rank wave passes instead.

// Shift is one nearest-neighbor exchange within a systolic step: every
// rank sends to Dst(rank) and then receives from Src(rank). The two
// must be inverse views of the same permutation (Dst(Src(r)) == r);
// a rank whose Dst is itself moves its message at zero cost, exactly
// as Proc.SendNeighbor charges a self-send.
type Shift struct {
	Dst func(r int) int
	Src func(r int) int
}

// SystolicSpec describes the timed skeleton of a systolic program, the
// subclass RunSystolic accepts:
//
//	prologue: PrologueMsgs zero-cost sends and receives per rank (an
//	          alignment permutation with arrival time zero)
//	Steps ×:  Compute(Flops), then each Shift in order — send Words
//	          words to Dst charging one hop, receive from Src
//	epilogue: when GatherRoot ≥ 0, every other rank sends Words words
//	          to GatherRoot at zero cost and the root receives them in
//	          rank order (the verification gather)
//
// The spec carries no payload: the caller performs the real data
// movement and arithmetic itself (it is independent of virtual time),
// and the engine reproduces the virtual-time accounting the fiber or
// goroutine engines would measure running the equivalent rank bodies.
type SystolicSpec struct {
	P      int
	Steps  int
	Flops  float64 // compute charged per rank per step (pre-straggler)
	Words  int     // words per shift message (and per gathered block)
	Shifts []Shift

	PrologueMsgs  int
	PrologueWords int // total words of the prologue sends, per rank
	GatherRoot    int // -1 for no gather
}

// SystolicEligible reports whether machine m can run on the native
// systolic tier: observability off (metrics and traces need the
// per-event bookkeeping of the general engines), no link-contention
// tracking, and no message loss (the retry layer draws per individual
// send). Stragglers and link ts/tw perturbations are supported — they
// only vary the per-rank wave coefficients.
func SystolicEligible(m *machine.Machine) bool {
	return m.Backend == machine.BackendEvents && m.Checkpoint == nil &&
		!m.CollectMetrics && !m.CollectTrace && !m.TrackContention &&
		(m.Faults == nil || m.Faults.Loss == 0)
}

// RunSystolic simulates spec on m and returns the same Result the
// general engines measure for the equivalent rank program.
func RunSystolic(m *machine.Machine, spec SystolicSpec) (*simulator.Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if !SystolicEligible(m) {
		return nil, fmt.Errorf("des: machine not eligible for the systolic tier (needs events backend, no metrics/trace/contention/loss/checkpoint)")
	}
	p := spec.P
	if p != m.P() {
		return nil, fmt.Errorf("des: spec for %d ranks on a %d-processor machine", p, m.P())
	}
	if m.Faults == nil && uniformShifts(spec) {
		return runSystolicUniform(m, spec), nil
	}
	return runSystolicWave(m, spec), nil
}

// uniformShifts reports whether every shift is homogeneously self or
// non-self across ranks — the condition (with a fault-free machine)
// under which all per-rank charges are identical and a single
// representative clock carries the whole wave.
func uniformShifts(spec SystolicSpec) bool {
	for _, s := range spec.Shifts {
		self := s.Dst(0) == 0
		for r := 1; r < spec.P; r++ {
			if (s.Dst(r) == r) != self {
				return false
			}
		}
	}
	return true
}

// runSystolicUniform is the million-rank path: on a healthy machine
// all ranks charge identically, so one representative clock replays
// the per-step sequence and the per-rank arrays are filled with it.
func runSystolicUniform(m *machine.Machine, spec SystolicSpec) *simulator.Result {
	costs := make([]float64, len(spec.Shifts))
	for k, s := range spec.Shifts {
		if dst := s.Dst(0); dst != 0 {
			costs[k] = m.MsgTimeOn(spec.Words, 1, 0, dst)
		}
	}
	var clock, compT, commT float64
	for t := 0; t < spec.Steps; t++ {
		// Compute, then each shift: the send advances the clock by the
		// hop cost; the matching receive's arrival equals the local
		// clock (every sender is at the same time), so the max is a
		// no-op — exactly the lockstep wavefront of the paper's model.
		clock += spec.Flops
		compT += spec.Flops
		for _, c := range costs {
			clock += c
			commT += c
		}
	}
	// The zero-cost gather arrivals all equal the common final clock.
	return assembleSystolic(spec,
		func(r int) float64 { return clock },
		func(r int) float64 { return compT },
		func(r int) float64 { return commT },
		func(r int) float64 { return 0 })
}

// runSystolicWave is the general tier: per-rank clock arrays advanced
// in synchronous passes, one per program point of the step, supporting
// per-rank straggler factors and per-link cost perturbations.
func runSystolicWave(m *machine.Machine, spec SystolicSpec) *simulator.Result {
	p := spec.P
	nsh := len(spec.Shifts)
	// Precompute the per-rank coefficients: the charged compute, each
	// shift's send cost on the rank's outgoing link, and the rank each
	// arrival comes from. All are time-invariant.
	comp := make([]float64, p)
	for r := 0; r < p; r++ {
		comp[r] = spec.Flops
		if m.Faults != nil {
			comp[r] = spec.Flops * m.Faults.ComputeFactor(r)
		}
	}
	cost := make([][]float64, nsh)
	from := make([][]int32, nsh)
	for k, s := range spec.Shifts {
		cost[k] = make([]float64, p)
		from[k] = make([]int32, p)
		for r := 0; r < p; r++ {
			if dst := s.Dst(r); dst != r {
				cost[k][r] = m.MsgTimeOn(spec.Words, 1, r, dst)
			}
			from[k][r] = int32(s.Src(r))
		}
	}

	clock := make([]float64, p)
	compT := make([]float64, p)
	commT := make([]float64, p)
	sx := make([]float64, p)
	arr := make([]float64, p)
	for t := 0; t < spec.Steps; t++ {
		for r := 0; r < p; r++ {
			charged := comp[r]
			clock[r] += charged
			compT[r] += charged
			sx[r] += charged - spec.Flops
		}
		for k := 0; k < nsh; k++ {
			ck, fk := cost[k], from[k]
			// Send pass: every rank pays its hop and stamps the
			// arrival; receive pass: every rank advances to the
			// stamp of the rank it receives from, if later.
			for r := 0; r < p; r++ {
				clock[r] += ck[r]
				commT[r] += ck[r]
				arr[r] = clock[r]
			}
			for r := 0; r < p; r++ {
				if a := arr[fk[r]]; a > clock[r] {
					clock[r] = a
				}
			}
		}
	}
	if root := spec.GatherRoot; root >= 0 {
		// The root consumes every other rank's zero-cost final block in
		// rank order; each arrival is the sender's final clock.
		for r := 0; r < p; r++ {
			if r != root && clock[r] > clock[root] {
				clock[root] = clock[r]
			}
		}
	}
	return assembleSystolic(spec,
		func(r int) float64 { return clock[r] },
		func(r int) float64 { return compT[r] },
		func(r int) float64 { return commT[r] },
		func(r int) float64 { return sx[r] })
}

// assembleSystolic folds per-rank quantities into a Result exactly as
// simulator.BuildResult folds Proc accumulators: rank-ascending float
// summation (the byte-identity contract) and integer message counts
// derived from the spec's shape.
func assembleSystolic(spec SystolicSpec, clock, compT, commT, sx func(int) float64) *simulator.Result {
	p := spec.P
	res := &simulator.Result{
		P:           p,
		ProcClocks:  make([]float64, p),
		ProcCompute: make([]float64, p),
		ProcComm:    make([]float64, p),
	}
	msgsPer := spec.PrologueMsgs + spec.Steps*len(spec.Shifts)
	wordsPer := spec.PrologueWords + spec.Steps*len(spec.Shifts)*spec.Words
	for r := 0; r < p; r++ {
		res.ProcClocks[r] = clock(r)
		res.ProcCompute[r] = compT(r)
		res.ProcComm[r] = commT(r)
		if res.ProcClocks[r] > res.Tp {
			res.Tp = res.ProcClocks[r]
		}
		res.TotalCompute += res.ProcCompute[r]
		res.TotalComm += res.ProcComm[r]
		res.StragglerExtra += sx(r)
		res.Messages += msgsPer
		res.Words += wordsPer
		if spec.GatherRoot >= 0 && r != spec.GatherRoot {
			res.Messages++
			res.Words += spec.Words
		}
	}
	return res
}
