package des_test

import (
	"bytes"
	"errors"
	"testing"

	"matscale/internal/checkpoint"
	"matscale/internal/core"
	"matscale/internal/faults"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/simulator"
)

// lcg is a tiny deterministic generator for the "kill at k random
// event counts" cut selection. Hand-rolled (Numerical Recipes
// constants) instead of math/rand so the test obeys the same
// no-ambient-randomness discipline the package under test does.
type lcg uint64

func (l *lcg) next(bound uint64) uint64 {
	*l = lcg(uint64(*l)*6364136223846793005 + 1442695040888963407)
	return (uint64(*l) >> 33) % bound
}

// events wires a formulation's machine for the events backend with
// full observability, mirroring the differential suite.
func events(mk func() *machine.Machine, fc *faults.Config) *machine.Machine {
	return observe(mk()).WithFaults(fc).WithBackend(machine.BackendEvents)
}

// suspendAt runs alg with a StopAfter cut and returns either the
// snapshot (nil error path) or the completed result when the run ends
// before the cut.
func suspendAt(t *testing.T, alg core.Algorithm, m *machine.Machine, a, b *matrix.Dense, cut uint64) (snap []byte, done *core.Result) {
	t.Helper()
	var sunk []byte
	m.Checkpoint = &machine.CheckpointControl{
		StopAfter: cut,
		Sink: func(s []byte, ev uint64) error {
			sunk = s
			if ev != cut {
				t.Errorf("sink called with events=%d, want %d", ev, cut)
			}
			return nil
		},
	}
	res, err := alg(m, a, b)
	var se *simulator.SuspendedError
	switch {
	case errors.As(err, &se):
		if se.Events != cut {
			t.Fatalf("suspended at event %d, want %d", se.Events, cut)
		}
		if !bytes.Equal(sunk, se.Snapshot) {
			t.Fatal("sink bytes differ from SuspendedError.Snapshot")
		}
		return se.Snapshot, nil
	case err != nil:
		t.Fatalf("suspend run at cut %d: %v", cut, err)
		return nil, nil
	default:
		// The run finished in fewer than cut events.
		return nil, res
	}
}

// resume replays alg from snap to completion.
func resume(t *testing.T, alg core.Algorithm, m *machine.Machine, a, b *matrix.Dense, snap []byte) *core.Result {
	t.Helper()
	m.Checkpoint = &machine.CheckpointControl{Resume: snap}
	res, err := alg(m, a, b)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	return res
}

// TestResumeDifferential is the checkpoint acceptance suite: for every
// formulation, clean and faulted, kill the run at several
// pseudo-random event counts, resume each snapshot in-process, and
// require the resumed run's Result, product, Metrics CSVs and Chrome
// trace to be byte-identical to the uninterrupted run's (via the same
// assertIdentical the backend-equivalence suite uses). Cuts that land
// beyond the run's end must complete normally with identical output.
func TestResumeDifferential(t *testing.T) {
	cases := []struct {
		name string
		fc   func() *faults.Config
	}{
		{"Clean", func() *faults.Config { return nil }},
		{"Faulted", faulted},
	}
	for _, fcase := range cases {
		for fi, tc := range formulations {
			t.Run(fcase.name+"/"+tc.name, func(t *testing.T) {
				a := matrix.RandomInts(tc.n, tc.n, 71)
				b := matrix.RandomInts(tc.n, tc.n, 72)
				fc := fcase.fc()
				base, err := tc.alg(events(tc.mk, fc), a, b)
				if err != nil {
					t.Fatalf("uninterrupted run: %v", err)
				}
				seed := lcg(1000*uint64(fi) + uint64(len(fcase.name)))
				cuts := []uint64{1, 2 + seed.next(200), 2 + seed.next(2000), 2 + seed.next(20000)}
				suspended := 0
				for _, cut := range cuts {
					snap, done := suspendAt(t, tc.alg, events(tc.mk, fc), a, b, cut)
					if snap == nil {
						assertIdentical(t, base, done)
						continue
					}
					suspended++
					got := resume(t, tc.alg, events(tc.mk, fc), a, b, snap)
					assertIdentical(t, base, got)
				}
				if suspended == 0 {
					t.Error("no cut actually suspended; the suite proved nothing")
				}
			})
		}
	}
}

// TestResumeChain suspends, resumes with a later cut (suspending
// again), and resumes once more to completion: snapshots must compose.
func TestResumeChain(t *testing.T) {
	a := matrix.RandomInts(16, 16, 71)
	b := matrix.RandomInts(16, 16, 72)
	base, err := core.Cannon(events(hyper, nil), a, b)
	if err != nil {
		t.Fatal(err)
	}
	snap1, done := suspendAt(t, core.Cannon, events(hyper, nil), a, b, 5)
	if snap1 == nil {
		t.Fatalf("cut 5 did not suspend (run done: %v)", done != nil)
	}
	m := events(hyper, nil)
	var snap2 []byte
	m.Checkpoint = &machine.CheckpointControl{
		StopAfter: 50,
		Resume:    snap1,
		Sink:      func(s []byte, ev uint64) error { snap2 = s; return nil },
	}
	_, err = core.Cannon(m, a, b)
	var se *simulator.SuspendedError
	if !errors.As(err, &se) {
		t.Fatalf("resume+suspend at 50: %v", err)
	}
	if snap2 == nil {
		t.Fatal("second suspension produced no snapshot")
	}
	got := resume(t, core.Cannon, events(hyper, nil), a, b, snap2)
	assertIdentical(t, base, got)
}

// TestResumeRejectsCorruption flips and truncates snapshot bytes: every
// mutation must yield a typed container error, never a run.
func TestResumeRejectsCorruption(t *testing.T) {
	a := matrix.RandomInts(16, 16, 71)
	b := matrix.RandomInts(16, 16, 72)
	snap, _ := suspendAt(t, core.Cannon, events(hyper, nil), a, b, 8)
	if snap == nil {
		t.Fatal("cut 8 did not suspend")
	}

	tryResume := func(data []byte) error {
		m := events(hyper, nil)
		m.Checkpoint = &machine.CheckpointControl{Resume: data}
		_, err := core.Cannon(m, a, b)
		return err
	}

	for _, i := range []int{0, 4, len(snap) / 2, len(snap) - 1} {
		mut := append([]byte(nil), snap...)
		mut[i] ^= 0x20
		err := tryResume(mut)
		if err == nil {
			t.Fatalf("resume with byte %d flipped succeeded", i)
		}
		if !errors.Is(err, checkpoint.ErrIntegrity) && !errors.Is(err, checkpoint.ErrBadMagic) {
			t.Fatalf("resume with byte %d flipped: %v, want integrity/magic error", i, err)
		}
	}
	for _, n := range []int{0, 7, len(snap) / 3, len(snap) - 1} {
		err := tryResume(snap[:n])
		if err == nil {
			t.Fatalf("resume with %d/%d byte prefix succeeded", n, len(snap))
		}
		if !errors.Is(err, checkpoint.ErrTruncated) && !errors.Is(err, checkpoint.ErrBadMagic) &&
			!errors.Is(err, checkpoint.ErrIntegrity) {
			t.Fatalf("resume with %d-byte prefix: %v, want typed container error", n, err)
		}
	}
}

// TestResumeRejectsMismatch covers the semantic rejections: a snapshot
// resumed on a different machine, with different observability, under
// a different program, or with a StopAfter at or before its own cut.
func TestResumeRejectsMismatch(t *testing.T) {
	a := matrix.RandomInts(16, 16, 71)
	b := matrix.RandomInts(16, 16, 72)
	snap, _ := suspendAt(t, core.Cannon, events(hyper, nil), a, b, 8)
	if snap == nil {
		t.Fatal("cut 8 did not suspend")
	}

	expectMismatch := func(t *testing.T, err error) {
		t.Helper()
		var rm *simulator.ResumeMismatchError
		if !errors.As(err, &rm) {
			t.Fatalf("got %v, want *simulator.ResumeMismatchError", err)
		}
	}

	t.Run("DifferentCost", func(t *testing.T) {
		m := events(hyper, nil).WithCost(99, 1)
		m.Checkpoint = &machine.CheckpointControl{Resume: snap}
		_, err := core.Cannon(m, a, b)
		expectMismatch(t, err)
	})
	t.Run("DifferentObservability", func(t *testing.T) {
		m := hyper().WithBackend(machine.BackendEvents) // no metrics/trace
		m.Checkpoint = &machine.CheckpointControl{Resume: snap}
		_, err := core.Cannon(m, a, b)
		expectMismatch(t, err)
	})
	t.Run("DifferentProgram", func(t *testing.T) {
		// Fox on the same machine shares the fingerprint; only the
		// replay verification at the cut can catch it.
		m := events(hyper, nil)
		m.Checkpoint = &machine.CheckpointControl{Resume: snap}
		_, err := core.Fox(m, a, b)
		expectMismatch(t, err)
	})
	t.Run("StopAfterNotBeyondCut", func(t *testing.T) {
		m := events(hyper, nil)
		m.Checkpoint = &machine.CheckpointControl{Resume: snap, StopAfter: 8}
		_, err := core.Cannon(m, a, b)
		expectMismatch(t, err)
	})
	t.Run("WrongKind", func(t *testing.T) {
		other := &checkpoint.Snapshot{Kind: "matscale/sweep-job", Version: 1}
		m := events(hyper, nil)
		m.Checkpoint = &machine.CheckpointControl{Resume: other.Encode()}
		_, err := core.Cannon(m, a, b)
		var ke *checkpoint.KindError
		if !errors.As(err, &ke) {
			t.Fatalf("got %v, want *checkpoint.KindError", err)
		}
	})
}

// TestCheckpointUnsupportedOnGoroutines asserts the goroutine backend
// rejects a checkpoint control with a typed capability error instead
// of silently ignoring it.
func TestCheckpointUnsupportedOnGoroutines(t *testing.T) {
	m := machine.Hypercube(4, 5, 1)
	m.Checkpoint = &machine.CheckpointControl{StopAfter: 1}
	_, err := simulator.Run(m, func(p *simulator.Proc) {})
	var ue *simulator.UnsupportedCapabilityError
	if !errors.As(err, &ue) {
		t.Fatalf("got %v, want *simulator.UnsupportedCapabilityError", err)
	}
	if ue.Backend != machine.BackendGoroutines || ue.Capability != "checkpoint/resume" {
		t.Fatalf("error fields: %+v", ue)
	}
}

// TestEmptyCheckpointControlRejected asserts a control with neither
// StopAfter nor Resume fails validation rather than being ignored.
func TestEmptyCheckpointControlRejected(t *testing.T) {
	m := machine.Hypercube(4, 5, 1).WithBackend(machine.BackendEvents)
	m.Checkpoint = &machine.CheckpointControl{}
	if _, err := simulator.Run(m, func(p *simulator.Proc) {}); err == nil {
		t.Fatal("empty CheckpointControl passed validation")
	}
}

// TestSinkErrorFailsRun asserts a failing sink surfaces as the run's
// error (the snapshot must not be silently dropped).
func TestSinkErrorFailsRun(t *testing.T) {
	a := matrix.RandomInts(16, 16, 71)
	b := matrix.RandomInts(16, 16, 72)
	m := events(hyper, nil)
	sinkErr := errors.New("disk full")
	m.Checkpoint = &machine.CheckpointControl{
		StopAfter: 3,
		Sink:      func([]byte, uint64) error { return sinkErr },
	}
	_, err := core.Cannon(m, a, b)
	if !errors.Is(err, sinkErr) {
		t.Fatalf("got %v, want wrapped sink error", err)
	}
}
