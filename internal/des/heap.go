package des

// event is one entry of the central virtual-time priority queue: rank
// becomes runnable at virtual time t. seq breaks ties in insertion
// order, so the pop sequence — and with it every simulated quantity —
// is a pure function of the program, never of host scheduling. (The
// cost model is schedule-independent, so the tie-break is about
// reproducible *host* behavior: identical allocation and pool reuse
// patterns across runs.)
type event struct {
	t    float64
	seq  uint64
	rank int32
}

func eventLess(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// eventHeap is a binary min-heap of events ordered by (t, seq). It is
// hand-rolled rather than wrapping container/heap: the event loop pops
// one entry per rank resume, and the interface-based heap costs an
// allocation and two indirect calls per operation on that hot path.
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int { return len(h.a) }

func (h *eventHeap) push(ev event) {
	h.a = append(h.a, ev)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h.a[i], h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && eventLess(h.a[l], h.a[small]) {
			small = l
		}
		if r < last && eventLess(h.a[r], h.a[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
