package des_test

import (
	"testing"

	"matscale/internal/core"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/simulator"
)

// BenchmarkDESMillionRank is the acceptance benchmark of the events
// backend: Cannon's algorithm at p = 2^20 ranks (a 1024×1024 torus,
// one matrix element per processor, n = 1024) on the NCube2 preset.
// The systolic tier simulates the 2^30 rank-steps and the real product
// is computed in Cannon's accumulation order; the whole run must stay
// in single-digit seconds.
func BenchmarkDESMillionRank(b *testing.B) {
	const p, n = 1 << 20, 1 << 10
	a := matrix.Random(n, n, 1)
	bm := matrix.Random(n, n, 2)
	m := machine.NCube2(p).WithBackend(machine.BackendEvents)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Cannon(m, a, bm)
		if err != nil {
			b.Fatal(err)
		}
		if res.Sim.Tp <= 0 {
			b.Fatal("degenerate Tp")
		}
	}
}

// BenchmarkEventsFiberCannon measures the general fiber tier of the
// events backend on a mid-size Cannon run (metrics on forces the
// coroutine path), the configuration the differential suite compares.
func BenchmarkEventsFiberCannon(b *testing.B) {
	const p, n = 256, 64
	a := matrix.Random(n, n, 1)
	bm := matrix.Random(n, n, 2)
	m := machine.NCube2(p).WithBackend(machine.BackendEvents)
	m.CollectMetrics = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Cannon(m, a, bm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventsFiberExchange measures the raw coroutine handoff
// cost: a neighbor-exchange ring under the event loop, the hot path
// of every fiber-tier simulation.
func BenchmarkEventsFiberExchange(b *testing.B) {
	const p, rounds = 64, 32
	m := machine.Hypercube(p, 5, 1).WithBackend(machine.BackendEvents)
	payload := make([]float64, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := simulator.Run(m, func(pr *simulator.Proc) {
			for r := 0; r < rounds; r++ {
				pr.Send((pr.Rank()+1)%p, r, payload)
				buf := pr.Recv((pr.Rank()+p-1)%p, r)
				pr.Recycle(buf)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
