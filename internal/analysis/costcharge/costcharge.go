// Package costcharge defines an analyzer enforcing the cost-charging
// contract: in the algorithm and collective packages every transfer
// must flow through the simulator's charged Proc API (Send, Recv,
// Exchange, SendMulti, ChargedSend, …) so it is accounted at ts + tw·m.
// A raw channel operation or sync primitive would move data or order
// execution in ways the postal model never charges, silently corrupting
// Tp, To = p·Tp − W, and every isoefficiency figure derived from them.
package costcharge

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"golang.org/x/tools/go/analysis"

	"matscale/internal/analysis/config"
)

// Doc is the analyzer's long-form description.
const Doc = `forbid uncharged communication in algorithm/collective packages

All communication in formulation code must go through the simulator's
charged Send/Recv API so the ts + tw·m postal model accounts for it.
Raw channel sends/receives, select statements, goroutine launches,
channel construction, and the sync/sync-atomic packages bypass the cost
model and are forbidden here. A reviewed exception (charged elsewhere,
measurement-only plumbing) is annotated '//costcharge:reviewed'.`

// Analyzer is the costcharge analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "costcharge",
	Doc:  Doc,
	Run:  run,
}

// reviewedMarker suppresses a diagnostic on its line (or the line
// below it), asserting the uncharged primitive was reviewed.
const reviewedMarker = "//costcharge:reviewed"

func run(pass *analysis.Pass) (interface{}, error) {
	if !config.Charged(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if config.TestFile(pass.Fset, f.Pos()) {
			continue
		}
		reviewed := config.MarkedLines(pass.Fset, f, reviewedMarker)
		report := func(pos token.Pos, format string, args ...interface{}) {
			if config.SuppressedAt(reviewed, pass.Fset, pos) {
				return
			}
			pass.Reportf(pos, format, args...)
		}
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && (path == "sync" || path == "sync/atomic") {
				report(imp.Pos(), "import of %q in a charged package: sync primitives coordinate outside the cost model; charge communication through the simulator's Proc API", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				report(n.Arrow, "raw channel send bypasses the ts + tw·m cost model; use Proc.Send (or ChargedSend) so the transfer is charged")
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					report(n.OpPos, "raw channel receive bypasses the cost model; use Proc.Recv so arrival time advances the virtual clock")
				}
			case *ast.SelectStmt:
				report(n.Select, "select races on real-time channel readiness; message matching must go through the simulator's deterministic (source, tag) queues")
			case *ast.GoStmt:
				report(n.Go, "goroutine launch in a charged package: concurrency belongs to the simulator runtime, not the formulation")
			case *ast.CallExpr:
				if isMakeChan(pass, n) {
					report(n.Pos(), "channel construction in a charged package: data movement must be charged through the simulator's Proc API")
				}
			}
			return true
		})
	}
	return nil, nil
}

// isMakeChan reports whether call is make(chan …).
func isMakeChan(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return false
	}
	if b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	t := pass.TypesInfo.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}
