package costcharge_test

import (
	"path/filepath"
	"testing"

	"matscale/internal/analysis/analyzertest"
	"matscale/internal/analysis/costcharge"
)

func TestCostcharge(t *testing.T) {
	// internal/matrix is the documented host-kernel exemption
	// (config.HostKernel): its fixture uses goroutines, sync, and
	// channels and must produce zero diagnostics.
	analyzertest.Run(t, filepath.Join("testdata"), costcharge.Analyzer,
		"matscale/internal/core", "matscale/internal/matrix", "clean")
}
