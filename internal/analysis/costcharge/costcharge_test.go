package costcharge_test

import (
	"path/filepath"
	"testing"

	"matscale/internal/analysis/analyzertest"
	"matscale/internal/analysis/costcharge"
)

func TestCostcharge(t *testing.T) {
	analyzertest.Run(t, filepath.Join("testdata"), costcharge.Analyzer,
		"matscale/internal/core", "clean")
}
