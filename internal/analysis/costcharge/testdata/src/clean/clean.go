// Package clean is outside the cost-charging contract's scope: host
// code (the shm benchmark, the CLI) may use real concurrency freely.
package clean

import "sync"

func HostParallel(n int, work func(int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}
