// Fixture for the costcharge analyzer: package path matches the real
// host matmul kernel, which config.HostKernel documents as exempt from
// the cost-charging contract — it runs real computation on the host
// machine, not a paper formulation, so its goroutines and sync
// primitives move no simulated data. Every construct below would be a
// diagnostic in a charged package; here none may fire.
package matrix

import "sync"

// MulAddIntoParallelShape mirrors the real kernel's structure: a
// WaitGroup join over worker goroutines, each owning a disjoint slab.
func MulAddIntoParallelShape(workers int, slab func(w int)) {
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			slab(w)
		}(w)
	}
	slab(0)
	wg.Wait()
}

// Channels too: host kernels may coordinate however they like.
func resultChannel() chan int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return ch
}
