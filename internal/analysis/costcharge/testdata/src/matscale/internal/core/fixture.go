// Fixture for the costcharge analyzer: package path matches the real
// core (formulation) package, so the cost-charging contract applies.
package core

import (
	"sync" // want `import of "sync" in a charged package`
)

func drain(ch chan int) int {
	return <-ch // want `raw channel receive bypasses the cost model`
}

func raw(ch chan int) int {
	var mu sync.Mutex
	mu.Lock()
	ch <- 1   // want `raw channel send bypasses the ts \+ tw·m cost model`
	v := <-ch // want `raw channel receive bypasses the cost model`
	mu.Unlock()
	c := make(chan int) // want `channel construction in a charged package`
	go drain(c)         // want `goroutine launch in a charged package`
	if v > 0 {
		select {} // want `select races on real-time channel readiness`
	}
	return v
}

func charged(send func(dst, tag int, data []float64)) { // plain calls: allowed
	send(1, 0, []float64{1, 2, 3})
}

func reviewedSameLine() chan int {
	return make(chan int) //costcharge:reviewed measurement-only plumbing, charged elsewhere
}

func reviewedLineAbove(ch chan int) int {
	//costcharge:reviewed drained by the harness, not the formulation
	return <-ch
}
