package nodetbreak_test

import (
	"path/filepath"
	"testing"

	"matscale/internal/analysis/analyzertest"
	"matscale/internal/analysis/nodetbreak"
)

func TestNodetbreak(t *testing.T) {
	analyzertest.Run(t, filepath.Join("testdata"), nodetbreak.Analyzer,
		"matscale/internal/simulator", "clean")
}
