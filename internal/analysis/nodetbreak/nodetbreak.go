// Package nodetbreak defines an analyzer enforcing the determinism
// contract: for a fixed seed, a simulation and everything derived from
// it (metrics tables, traces, fault replays) must be byte-identical run
// to run. In the packages config.Deterministic names it forbids the
// ambient sources of nondeterminism — wall clocks, the global random
// source, scheduler state — and map iteration that feeds ordered
// output.
package nodetbreak

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"matscale/internal/analysis/config"
)

// Doc is the analyzer's long-form description (shown by -help).
const Doc = `forbid nondeterminism in simulator, faults, and formulation code

Runs are replayed for fault injection and diffed byte-for-byte in tests,
so deterministic packages may not call time.Now/Since/Until, the global
math/rand source, or runtime.NumGoroutine, and may not range over a map
when the loop body emits output, appends to an outer slice, assigns
outer variables, or accumulates floating-point sums (all of which make
results depend on map iteration order). Order-insensitive map loops can
be annotated with a trailing '//nodetbreak:ordered' comment.

sync.Pool declarations are also flagged: Get returns an arbitrary
previously-pooled value, so a pool that carries any simulation state
makes results depend on goroutine scheduling. Pools reviewed to recycle
payload memory only can be annotated with '//nodetbreak:pooled'.`

// Analyzer is the nodetbreak analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nodetbreak",
	Doc:  Doc,
	Run:  run,
}

// ordMarker suppresses the map-range check on its line (or the line
// below it), asserting the loop body is insensitive to iteration order.
const ordMarker = "//nodetbreak:ordered"

// pooledMarker suppresses the sync.Pool check on its line (or the line
// below it), asserting the pool recycles payload memory only and
// carries no simulation state.
const pooledMarker = "//nodetbreak:pooled"

// randAllowed lists math/rand constructors that take an explicit source
// or seed; everything else at package level draws from the global,
// unseeded source.
var randAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !config.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if config.TestFile(pass.Fset, f.Pos()) {
			continue
		}
		marked := config.MarkedLines(pass.Fset, f, ordMarker)
		pooled := config.MarkedLines(pass.Fset, f, pooledMarker)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, marked)
			case *ast.Field:
				checkPoolType(pass, n.Type, pooled)
			case *ast.ValueSpec:
				checkPoolType(pass, n.Type, pooled)
			}
			return true
		})
	}
	return nil, nil
}

// checkPoolType reports struct fields and variables of type sync.Pool
// (or *sync.Pool) in deterministic packages: what Get returns depends
// on goroutine scheduling, so only pools reviewed to carry payload
// memory — never simulation state — are allowed, via pooledMarker.
func checkPoolType(pass *analysis.Pass, typ ast.Expr, pooled map[int]bool) {
	if typ == nil || !isSyncPool(pass.TypesInfo.TypeOf(typ)) {
		return
	}
	line := pass.Fset.Position(typ.Pos()).Line
	if pooled[line] || pooled[line-1] {
		return
	}
	pass.Reportf(typ.Pos(), "sync.Pool in a deterministic package: Get returns a scheduling-dependent value; pool payload memory only and annotate %s after review", pooledMarker)
}

// isSyncPool reports whether t is sync.Pool or a pointer to it.
func isSyncPool(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// checkCall reports calls to forbidden wall-clock, scheduler, and
// global-random functions.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch pkg, name := fn.Pkg().Path(), fn.Name(); {
	case pkg == "time" && (name == "Now" || name == "Since" || name == "Until"):
		pass.Reportf(call.Pos(), "call to time.%s breaks run-to-run determinism; advance the virtual clock through the simulator instead", name)
	case pkg == "runtime" && name == "NumGoroutine":
		pass.Reportf(call.Pos(), "runtime.NumGoroutine depends on goroutine scheduling and breaks determinism")
	case (pkg == "math/rand" || pkg == "math/rand/v2") && !randAllowed[name] && fn.Type().(*types.Signature).Recv() == nil:
		pass.Reportf(call.Pos(), "%s.%s draws from the unseeded global source; construct a seeded generator and thread the seed", pkg, name)
	}
}

// checkMapRange reports ranging over a map when the loop body is
// sensitive to iteration order: it emits output, appends to or assigns
// variables declared outside the loop, or accumulates floating-point
// sums (whose value depends on summation order).
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, marked map[int]bool) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	line := pass.Fset.Position(rs.For).Line
	if marked[line] || marked[line-1] {
		return
	}
	if reason := orderSensitive(pass, rs); reason != "" {
		pass.Reportf(rs.For, "range over map %s: map iteration order is random; iterate sorted keys (or annotate %s if the body is order-insensitive)", reason, ordMarker)
	}
}

// orderSensitive returns a non-empty reason when the range body depends
// on iteration order, and "" when the heuristic finds nothing.
func orderSensitive(pass *analysis.Pass, rs *ast.RangeStmt) string {
	var reason string
	set := func(r string) {
		if reason == "" {
			reason = r
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := emissionCall(pass, n); ok {
				set(fmt.Sprintf("feeds ordered output through %s", name))
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				// Writes through an index (m2[k] = v, out[i] = v) hit a
				// distinct element per key and are order-insensitive.
				if _, isIndex := lhs.(*ast.IndexExpr); isIndex {
					continue
				}
				root := rootIdent(lhs)
				if root == nil || !declaredOutside(pass, root, rs) {
					continue
				}
				switch {
				case n.Tok == token.ASSIGN && i < len(n.Rhs) && isAppend(n.Rhs[i]):
					set(fmt.Sprintf("appends to %s declared outside the loop", root.Name))
				case n.Tok == token.ASSIGN && len(n.Rhs) == 1 && len(n.Lhs) > 1 && isAppend(n.Rhs[0]):
					set(fmt.Sprintf("appends to %s declared outside the loop", root.Name))
				case n.Tok == token.ASSIGN:
					set(fmt.Sprintf("assigns %s declared outside the loop", root.Name))
				case isFloat(pass.TypesInfo.TypeOf(lhs)):
					set(fmt.Sprintf("accumulates float %s (summation order changes the result bits)", root.Name))
				}
			}
		case *ast.IncDecStmt:
			// Integer ++/-- is commutative and exact; ignore.
			return true
		}
		return true
	})
	return reason
}

// emissionCall reports whether call writes formatted or serialized
// output, returning a display name for the sink.
func emissionCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return "", false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Sprint")) {
		return "fmt." + name, true
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "WriteTo", "Encode":
			return "method " + name, true
		}
	}
	return "", false
}

// isAppend reports whether e is a call to the append builtin.
func isAppend(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// isFloat reports whether t has floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootIdent unwraps selectors and index expressions to the base
// identifier of an lvalue, or nil when the base is not an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether id resolves to an object declared
// outside the range statement.
func declaredOutside(pass *analysis.Pass, id *ast.Ident, rs *ast.RangeStmt) bool {
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}
