// Fixture for the nodetbreak analyzer: package path matches the real
// simulator package, so the determinism contract applies.
package simulator

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()                 // want `time\.Now breaks run-to-run determinism`
	fmt.Println(runtime.NumGoroutine()) // want `NumGoroutine depends on goroutine scheduling`
	return time.Since(start)            // want `time\.Since breaks run-to-run determinism`
}

func globalDraw() int {
	return rand.Intn(10) // want `unseeded global source`
}

func seededDraw(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // seeded constructors are allowed
	return r.Float64()                  // method on a seeded generator: allowed
}

func emit(m map[int]float64) {
	for k, v := range m { // want `feeds ordered output through fmt\.Println`
		fmt.Println(k, v)
	}
}

func collect(m map[int]float64) []int {
	var out []int
	for k := range m { // want `appends to out declared outside the loop`
		out = append(out, k)
	}
	return out
}

func collectSorted(m map[int]float64) []int {
	var keys []int
	for k := range m { //nodetbreak:ordered — sorted immediately below
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func collectSortedAbove(m map[int]float64) []int {
	var keys []int
	//nodetbreak:ordered — marker on the line above also works
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func pickMin(m map[string]float64) string {
	best, bestTp := "", 1e300
	for name, tp := range m { // want `assigns best declared outside the loop`
		if tp < bestTp {
			best, bestTp = name, tp
		}
	}
	return best
}

func sumFloats(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want `accumulates float s`
		s += v
	}
	return s
}

func invert(m map[int]int) map[int]int { // order-insensitive: no diagnostic
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func count(m map[int]int) int { // integer ++ is exact and commutative
	n := 0
	for range m {
		n++
	}
	return n
}

type pooledRun struct {
	pool    sync.Pool  // want `sync\.Pool in a deterministic package`
	scratch *sync.Pool // want `sync\.Pool in a deterministic package`
	// The reviewed marker suppresses the diagnostic:
	bufs sync.Pool //nodetbreak:pooled — reviewed: payload recycling only
	//nodetbreak:pooled — reviewed: marker on the line above also works
	slabs sync.Pool
}

var globalPool sync.Pool // want `sync\.Pool in a deterministic package`

func usePools(r *pooledRun) interface{} {
	return r.bufs.Get()
}
