// Package clean is outside the determinism contract's scope, so
// nothing here is reported even though it uses wall clocks and maps.
package clean

import (
	"fmt"
	"time"
)

func Timestamped(m map[int]int) {
	fmt.Println(time.Now())
	for k, v := range m {
		fmt.Println(k, v)
	}
}
