// Package config is the single source of truth for the package
// classification the matscale-vet analyzers enforce. Every analyzer in
// internal/analysis consults these tables instead of hard-coding import
// paths, so widening or narrowing a contract's scope is a one-line
// change here.
//
// The contracts (see docs/ANALYSIS.md):
//
//   - Deterministic packages may not consult wall clocks, global random
//     sources, or scheduler state, and may not range over maps when the
//     iteration feeds ordered output. This is what makes a run
//     byte-identical for a fixed seed.
//   - Charged packages implement the paper's algorithms; every transfer
//     must flow through the simulator's charged Send/Recv API so it is
//     accounted at ts + tw·m. Raw channels and sync primitives would
//     move data the cost model never sees.
//   - Clock-owner packages are the only ones allowed to mutate the
//     machine's cost constants and the simulator's measured results;
//     everywhere else those fields are read-only, preserving the
//     accounting identity To = p·Tp − W.
//   - Cost-doc packages expose quantities measured in the paper's units
//     (ts, tw, flops); their exported float64-returning API must say so
//     in its doc comment.
//   - Ownership packages consume the simulator's pooled zero-copy
//     messaging API; the ownflow analyzer tracks buffer ownership
//     through their dataflow (owned → transferred → dead).
//   - Unit packages hold the cost model's float64 arithmetic; the
//     unitflow analyzer infers each expression's physical unit and
//     rejects cross-unit addition and comparison.
package config

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Import paths of the packages the contracts name. Analyzer testdata
// mirrors these paths under testdata/src so fixtures exercise the same
// classification as the real tree.
const (
	MachinePath   = "matscale/internal/machine"
	SimulatorPath = "matscale/internal/simulator"
	DesPath       = "matscale/internal/des"
)

// deterministicPkgs lists the packages whose behavior must be
// byte-identical run to run: the simulator and fault layer (replays),
// the algorithm formulations, the experiment drivers that emit tables
// compared against golden output, the sweep engine whose merged
// results must not depend on the host worker count, and the sweep
// server whose cached responses must be byte-identical to cold ones —
// its only wall-clock access is the injected server.Clock, so job
// results stay a pure function of (spec, seed, backend) — and the
// checkpoint container, whose canonical encodings the des backend's
// verified restore byte-compares.
var deterministicPkgs = map[string]bool{
	SimulatorPath:                   true,
	DesPath:                         true,
	"matscale/internal/faults":      true,
	"matscale/internal/core":        true,
	"matscale/internal/collective":  true,
	MachinePath:                     true,
	"matscale/internal/experiments": true,
	"matscale/internal/sweep":       true,
	"matscale/internal/server":      true,
	"matscale/internal/checkpoint":  true,
}

// chargedPkgs lists the algorithm/collective packages in which all
// communication must be charged through the simulator's Proc API.
var chargedPkgs = map[string]bool{
	"matscale/internal/core":       true,
	"matscale/internal/collective": true,
}

// hostKernelPkgs are packages that run real computation on the host
// machine and are deliberately OUTSIDE the cost-charging contract:
// they are not algorithm formulations, so their goroutines, sync
// primitives, and shared memory move no simulated data and there is no
// ts + tw·m transfer for the model to miss. internal/matrix hosts the
// parallel matmul kernel (goroutine workers over a deterministic
// ownership partition) and internal/shm is its thin public-API shim.
// The table exists to make the exemption explicit rather than an
// accident of omission from chargedPkgs — a future PR moving paper
// algorithm code into one of these packages should move that code into
// a charged package instead of inheriting the exemption.
var hostKernelPkgs = map[string]bool{
	"matscale/internal/matrix": true,
	"matscale/internal/shm":    true,
}

// clockOwnerPkgs are the packages allowed to mutate machine cost
// constants and simulator measurement fields. internal/des is an
// engine like the simulator itself: its native systolic tier assembles
// Result values directly from its wave clocks.
var clockOwnerPkgs = map[string]bool{
	MachinePath:   true,
	SimulatorPath: true,
	DesPath:       true,
}

// costDocPkgs expose the paper's measured quantities; their exported
// float64 API must document its units.
var costDocPkgs = map[string]bool{
	MachinePath:               true,
	"matscale/internal/model": true,
	"matscale/internal/iso":   true,
}

// ownershipPkgs consume the pooled zero-copy messaging API
// (SendOwned/Recycle/…); ownflow verifies their buffer dataflow. The
// simulator and des packages own the pool itself and are excluded —
// the contract binds the API's clients, not its implementation.
var ownershipPkgs = map[string]bool{
	"matscale/internal/core":       true,
	"matscale/internal/collective": true,
}

// unitPkgs hold the cost model's closed-form float64 arithmetic;
// unitflow infers units for their expressions and rejects cross-unit
// addition/comparison (a ts-seconds term added to a word count).
var unitPkgs = map[string]bool{
	MachinePath:                 true,
	"matscale/internal/model":   true,
	"matscale/internal/iso":     true,
	"matscale/internal/regions": true,
}

// Normalize canonicalizes a package path for classification. The go
// command presents a package's external test variant as "<path>_test"
// and its synthesized test main as "<path>.test"; both are classified
// like the base package (their non-test files — there are none — would
// be bound by the same contracts). Vendored packages ("vendor/…" or
// any path containing "/vendor/") are third-party code outside every
// contract and normalize to "", which no classification table
// contains.
func Normalize(path string) string {
	if strings.HasPrefix(path, "vendor/") || strings.Contains(path, "/vendor/") {
		return ""
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path
}

// Deterministic reports whether the package at path is bound by the
// determinism contract (nodetbreak).
func Deterministic(path string) bool { return deterministicPkgs[Normalize(path)] }

// Charged reports whether the package at path is bound by the
// cost-charging contract (costcharge).
func Charged(path string) bool { return chargedPkgs[Normalize(path)] }

// HostKernel reports whether the package at path is a documented host
// compute kernel, exempt from the cost-charging contract because its
// parallelism is real host work rather than simulated communication.
// Charged and HostKernel are mutually exclusive by construction.
func HostKernel(path string) bool { return hostKernelPkgs[Normalize(path)] }

// ClockOwner reports whether the package at path may mutate guarded
// clock/metrics fields (clockguard).
func ClockOwner(path string) bool { return clockOwnerPkgs[Normalize(path)] }

// CostDoc reports whether the package at path is bound by the
// unit-documentation contract (accretion).
func CostDoc(path string) bool { return costDocPkgs[Normalize(path)] }

// Ownership reports whether the package at path is bound by the buffer
// ownership contract (ownflow).
func Ownership(path string) bool { return ownershipPkgs[Normalize(path)] }

// UnitInference reports whether the package at path is bound by the
// unit-consistency contract (unitflow).
func UnitInference(path string) bool { return unitPkgs[Normalize(path)] }

// guardedMachineFields are the cost constants of machine.Machine: the
// ts + tw·m postal model's parameters plus the routing/port regime that
// selects how they are applied. Mutating them after construction
// changes the meaning of every subsequently charged transfer, so
// outside the clock owners they are read-only; copies are configured
// through the With* helpers on Machine.
var guardedMachineFields = map[string]bool{
	"Ts":      true,
	"Tw":      true,
	"Th":      true,
	"Routing": true,
	"AllPort": true,
}

// guardedSimulatorTypes are the simulator's measurement carriers. Every
// exported field of these types is an output of the virtual clock;
// writing one outside the simulator would falsify Tp, To = p·Tp − W, or
// the per-rank breakdown they feed.
var guardedSimulatorTypes = map[string]bool{
	"Result":      true,
	"Metrics":     true,
	"RankMetrics": true,
	"LinkMetrics": true,
	"Degradation": true,
	"Trace":       true,
	"Event":       true,
}

// GuardedMachineField reports whether the named machine.Machine field
// is a guarded cost constant.
func GuardedMachineField(name string) bool { return guardedMachineFields[name] }

// GuardedSimulatorType reports whether the named simulator type carries
// measured results and is therefore write-protected outside the
// simulator.
func GuardedSimulatorType(name string) bool { return guardedSimulatorTypes[name] }

// UnitDocPattern matches a doc comment that states cost-model units:
// the paper's constants (ts, tw, th), flop counts, words moved, or the
// derived quantities (time, cost, overhead, efficiency, speedup, …).
var UnitDocPattern = regexp.MustCompile(`(?i)\b(ts|tw|th|flops?|time|times|cost|costs|words?|efficiency|isoefficiency|seconds?|speedup|ratio|fraction|factor|factors|overhead|utilization|granularity)\b`)

// TestFile reports whether pos lies in a _test.go file. The contracts
// bind production code; tests may freely construct machines, perturb
// results, and measure wall time.
func TestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.File(pos).Name(), "_test.go")
}

// MarkedLines returns the lines of f carrying a comment that begins
// with marker. Every analyzer's suppression grammar is the same: a
// '//<analyzer>:<word>' comment (optionally followed by a free-form
// justification) on the reported line or the line directly above it.
func MarkedLines(fset *token.FileSet, f *ast.File, marker string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, marker) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// SuppressedAt reports whether pos's line, or the line directly above
// it, is in lines (as returned by MarkedLines).
func SuppressedAt(lines map[int]bool, fset *token.FileSet, pos token.Pos) bool {
	line := fset.Position(pos).Line
	return lines[line] || lines[line-1]
}
