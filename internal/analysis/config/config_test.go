package config_test

import (
	"testing"

	"matscale/internal/analysis/config"
)

func TestClassification(t *testing.T) {
	cases := []struct {
		path                                                              string
		deterministic, charged, clockOwner, costDoc, ownership, unitInfer bool
	}{
		{"matscale/internal/simulator", true, false, true, false, false, false},
		{"matscale/internal/machine", true, false, true, true, false, true},
		{"matscale/internal/faults", true, false, false, false, false, false},
		{"matscale/internal/core", true, true, false, false, true, false},
		{"matscale/internal/collective", true, true, false, false, true, false},
		{"matscale/internal/experiments", true, false, false, false, false, false},
		{"matscale/internal/sweep", true, false, false, false, false, false},
		{"matscale/internal/server", true, false, false, false, false, false},
		{"matscale/internal/model", false, false, false, true, false, true},
		{"matscale/internal/iso", false, false, false, true, false, true},
		{"matscale/internal/regions", false, false, false, false, false, true},
		{"matscale/internal/shm", false, false, false, false, false, false}, // host compute: real concurrency allowed
		{"matscale", false, false, false, false, false, false},
		{"matscale/cmd/matscale", false, false, false, false, false, false},
		// cmd/ binaries are never in analyzer scope, even when their
		// names echo classified packages.
		{"matscale/cmd/matscale-server", false, false, false, false, false, false},
		{"matscale/cmd/matscale-vet", false, false, false, false, false, false},
		// External test variants and synthesized test mains classify
		// like their base package.
		{"matscale/internal/simulator_test", true, false, true, false, false, false},
		{"matscale/internal/core_test", true, true, false, false, true, false},
		{"matscale/internal/model_test", false, false, false, true, false, true},
		{"matscale/internal/core.test", true, true, false, false, true, false},
		// Vendored code is outside every contract, wherever it sits.
		{"vendor/golang.org/x/tools/go/analysis", false, false, false, false, false, false},
		{"matscale/vendor/matscale/internal/core", false, false, false, false, false, false},
	}
	for _, c := range cases {
		if got := config.Deterministic(c.path); got != c.deterministic {
			t.Errorf("Deterministic(%q) = %v, want %v", c.path, got, c.deterministic)
		}
		// The host-kernel exemption and the charging contract are
		// mutually exclusive: a package cannot both run uncharged host
		// parallelism and be bound to the ts + tw·m model.
		if config.HostKernel(c.path) && c.charged {
			t.Errorf("HostKernel(%q) and Charged(%q) are both true", c.path, c.path)
		}
		if got := config.Charged(c.path); got != c.charged {
			t.Errorf("Charged(%q) = %v, want %v", c.path, got, c.charged)
		}
		if got := config.ClockOwner(c.path); got != c.clockOwner {
			t.Errorf("ClockOwner(%q) = %v, want %v", c.path, got, c.clockOwner)
		}
		if got := config.CostDoc(c.path); got != c.costDoc {
			t.Errorf("CostDoc(%q) = %v, want %v", c.path, got, c.costDoc)
		}
		if got := config.Ownership(c.path); got != c.ownership {
			t.Errorf("Ownership(%q) = %v, want %v", c.path, got, c.ownership)
		}
		if got := config.UnitInference(c.path); got != c.unitInfer {
			t.Errorf("UnitInference(%q) = %v, want %v", c.path, got, c.unitInfer)
		}
	}
}

// TestHostKernel pins the documented cost-charging exemption: the host
// matmul kernel and its public-API shim run real parallelism outside
// the simulator, while formulation packages must never inherit it.
func TestHostKernel(t *testing.T) {
	for _, path := range []string{
		"matscale/internal/matrix",
		"matscale/internal/shm",
		"matscale/internal/matrix_test", // test variants classify like the base
		"matscale/internal/shm.test",
	} {
		if !config.HostKernel(path) {
			t.Errorf("HostKernel(%q) = false, want true", path)
		}
	}
	for _, path := range []string{
		"matscale/internal/core",
		"matscale/internal/collective",
		"matscale/internal/simulator",
		"matscale",
		"matscale/vendor/matscale/internal/matrix", // vendored code is outside every table
	} {
		if config.HostKernel(path) {
			t.Errorf("HostKernel(%q) = true, want false", path)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"matscale/internal/core", "matscale/internal/core"},
		{"matscale/internal/core_test", "matscale/internal/core"},
		{"matscale/internal/core.test", "matscale/internal/core"},
		{"vendor/golang.org/x/tools/go/cfg", ""},
		{"matscale/vendor/golang.org/x/tools/go/cfg", ""},
		// A path that merely names a vendor-ish package is untouched.
		{"matscale/internal/vendorparse", "matscale/internal/vendorparse"},
		{"", ""},
	}
	for _, c := range cases {
		if got := config.Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestGuardedFields(t *testing.T) {
	for _, f := range []string{"Ts", "Tw", "Th", "Routing", "AllPort"} {
		if !config.GuardedMachineField(f) {
			t.Errorf("GuardedMachineField(%q) = false, want true", f)
		}
	}
	// Observability flags are configuration, not cost constants.
	for _, f := range []string{"TrackContention", "CollectMetrics", "CollectTrace", "Faults", "Topo"} {
		if config.GuardedMachineField(f) {
			t.Errorf("GuardedMachineField(%q) = true, want false", f)
		}
	}
	for _, typ := range []string{"Result", "Metrics", "RankMetrics", "LinkMetrics", "Degradation", "Trace", "Event"} {
		if !config.GuardedSimulatorType(typ) {
			t.Errorf("GuardedSimulatorType(%q) = false, want true", typ)
		}
	}
	if config.GuardedSimulatorType("Proc") {
		t.Error("Proc is goroutine-owned, not a guarded result carrier")
	}
}

func TestUnitDocPattern(t *testing.T) {
	match := []string{
		"returns the parallel execution time in flop units",
		"critical-path cost: log2(g) · (ts + tw·m)",
		"the efficiency E = W/(p·Tp)",
		"words moved per processor",
	}
	for _, s := range match {
		if !config.UnitDocPattern.MatchString(s) {
			t.Errorf("UnitDocPattern should match %q", s)
		}
	}
	nomatch := []string{
		"produces a handy number for callers",
		"does the thing",
		"its network switch", // "ts"/"tw" must match as whole words only
	}
	for _, s := range nomatch {
		if config.UnitDocPattern.MatchString(s) {
			t.Errorf("UnitDocPattern should not match %q", s)
		}
	}
}
