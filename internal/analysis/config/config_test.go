package config_test

import (
	"testing"

	"matscale/internal/analysis/config"
)

func TestClassification(t *testing.T) {
	cases := []struct {
		path                                        string
		deterministic, charged, clockOwner, costDoc bool
	}{
		{"matscale/internal/simulator", true, false, true, false},
		{"matscale/internal/machine", true, false, true, true},
		{"matscale/internal/faults", true, false, false, false},
		{"matscale/internal/core", true, true, false, false},
		{"matscale/internal/collective", true, true, false, false},
		{"matscale/internal/experiments", true, false, false, false},
		{"matscale/internal/sweep", true, false, false, false},
		{"matscale/internal/server", true, false, false, false},
		{"matscale/internal/model", false, false, false, true},
		{"matscale/internal/iso", false, false, false, true},
		{"matscale/internal/shm", false, false, false, false}, // host compute: real concurrency allowed
		{"matscale", false, false, false, false},
		{"matscale/cmd/matscale", false, false, false, false},
	}
	for _, c := range cases {
		if got := config.Deterministic(c.path); got != c.deterministic {
			t.Errorf("Deterministic(%q) = %v, want %v", c.path, got, c.deterministic)
		}
		if got := config.Charged(c.path); got != c.charged {
			t.Errorf("Charged(%q) = %v, want %v", c.path, got, c.charged)
		}
		if got := config.ClockOwner(c.path); got != c.clockOwner {
			t.Errorf("ClockOwner(%q) = %v, want %v", c.path, got, c.clockOwner)
		}
		if got := config.CostDoc(c.path); got != c.costDoc {
			t.Errorf("CostDoc(%q) = %v, want %v", c.path, got, c.costDoc)
		}
	}
}

func TestGuardedFields(t *testing.T) {
	for _, f := range []string{"Ts", "Tw", "Th", "Routing", "AllPort"} {
		if !config.GuardedMachineField(f) {
			t.Errorf("GuardedMachineField(%q) = false, want true", f)
		}
	}
	// Observability flags are configuration, not cost constants.
	for _, f := range []string{"TrackContention", "CollectMetrics", "CollectTrace", "Faults", "Topo"} {
		if config.GuardedMachineField(f) {
			t.Errorf("GuardedMachineField(%q) = true, want false", f)
		}
	}
	for _, typ := range []string{"Result", "Metrics", "RankMetrics", "LinkMetrics", "Degradation", "Trace", "Event"} {
		if !config.GuardedSimulatorType(typ) {
			t.Errorf("GuardedSimulatorType(%q) = false, want true", typ)
		}
	}
	if config.GuardedSimulatorType("Proc") {
		t.Error("Proc is goroutine-owned, not a guarded result carrier")
	}
}

func TestUnitDocPattern(t *testing.T) {
	match := []string{
		"returns the parallel execution time in flop units",
		"critical-path cost: log2(g) · (ts + tw·m)",
		"the efficiency E = W/(p·Tp)",
		"words moved per processor",
	}
	for _, s := range match {
		if !config.UnitDocPattern.MatchString(s) {
			t.Errorf("UnitDocPattern should match %q", s)
		}
	}
	nomatch := []string{
		"produces a handy number for callers",
		"does the thing",
		"its network switch", // "ts"/"tw" must match as whole words only
	}
	for _, s := range nomatch {
		if config.UnitDocPattern.MatchString(s) {
			t.Errorf("UnitDocPattern should not match %q", s)
		}
	}
}
