// Package analyzertest runs a go/analysis analyzer over fixture
// packages and checks its diagnostics against // want comments — a
// self-contained stand-in for golang.org/x/tools/go/analysis/
// analysistest, which is not part of the vendored x/tools subset this
// module pins (the toolchain's cmd/vendor tree ships the analysis
// framework but not its test harness).
//
// Fixtures live under <testdata>/src/<importpath>/, exactly like
// analysistest: the fixture's import path is the directory path below
// src, so a fixture at testdata/src/matscale/internal/simulator is
// type-checked as package path "matscale/internal/simulator" and hits
// the same config classification as the real package. Imports are
// resolved first against the testdata tree, then against the standard
// library (type-checked from GOROOT source, so no network or compiled
// export data is needed).
//
// Expectations are trailing comments of the form
//
//	expr // want `regexp` `another`
//
// with each pattern either back-quoted or double-quoted. A diagnostic
// must match an expectation on its own line, and every expectation must
// be matched, or the test fails.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each fixture package below testdata/src and applies a,
// reporting mismatches between diagnostics and // want expectations as
// test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	if len(a.Requires) > 0 || len(a.FactTypes) > 0 {
		t.Fatalf("analyzertest: analyzer %s uses Requires/FactTypes, which this harness does not support", a.Name)
	}
	l := &loader{
		fset:   token.NewFileSet(),
		srcdir: filepath.Join(testdata, "src"),
		pkgs:   map[string]*pkgData{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	for _, path := range paths {
		pd, err := l.loadPath(path)
		if err != nil {
			t.Errorf("loading fixture %q: %v", path, err)
			continue
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       l.fset,
			Files:      pd.files,
			Pkg:        pd.pkg,
			TypesInfo:  pd.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   map[*analysis.Analyzer]interface{}{},
			ReadFile:   os.ReadFile,
		}
		pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
		if _, err := a.Run(pass); err != nil {
			t.Errorf("analyzer %s on %q: %v", a.Name, path, err)
			continue
		}
		checkDiagnostics(t, l.fset, pd.files, diags)
	}
}

// pkgData is one loaded fixture package.
type pkgData struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves fixture and standard-library imports.
type loader struct {
	fset   *token.FileSet
	srcdir string
	std    types.Importer
	pkgs   map[string]*pkgData
}

// Import implements types.Importer, preferring the testdata tree.
func (l *loader) Import(path string) (*types.Package, error) {
	if pd, ok := l.pkgs[path]; ok {
		return pd.pkg, nil
	}
	if st, err := os.Stat(filepath.Join(l.srcdir, path)); err == nil && st.IsDir() {
		pd, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pd.pkg, nil
	}
	return l.std.Import(path)
}

// loadPath parses and type-checks the fixture package at path.
func (l *loader) loadPath(path string) (*pkgData, error) {
	if pd, ok := l.pkgs[path]; ok {
		return pd, nil
	}
	dir := filepath.Join(l.srcdir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pd := &pkgData{pkg: pkg, files: files, info: info}
	l.pkgs[path] = pd
	return pd, nil
}

// expectation is one want pattern awaiting a diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// checkDiagnostics matches diagnostics against want expectations.
func checkDiagnostics(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				for _, re := range parseWant(t, pos, c.Text) {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWant extracts the regexps of a // want comment ("" if none).
func parseWant(t *testing.T, pos token.Position, comment string) []*regexp.Regexp {
	t.Helper()
	body, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(comment, "//")), "want ")
	if !ok {
		return nil
	}
	var res []*regexp.Regexp
	rest := strings.TrimSpace(body)
	for rest != "" {
		var pat string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Errorf("%s: unterminated want pattern: %s", pos, rest)
				return res
			}
			pat = rest[1 : 1+end]
			rest = strings.TrimSpace(rest[2+end:])
		case '"':
			q, err := strconv.QuotedPrefix(rest)
			if err != nil {
				t.Errorf("%s: bad want pattern %s: %v", pos, rest, err)
				return res
			}
			pat, _ = strconv.Unquote(q)
			rest = strings.TrimSpace(rest[len(q):])
		default:
			t.Errorf("%s: want patterns must be quoted: %s", pos, rest)
			return res
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
			return res
		}
		res = append(res, re)
	}
	return res
}
