package seedflow_test

import (
	"path/filepath"
	"testing"

	"matscale/internal/analysis/analyzertest"
	"matscale/internal/analysis/seedflow"
)

func TestSeedflow(t *testing.T) {
	analyzertest.Run(t, filepath.Join("testdata"), seedflow.Analyzer, "a")
}
