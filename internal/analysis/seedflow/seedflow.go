// Package seedflow defines an analyzer enforcing the seed-threading
// contract: a function that accepts a seed parameter must actually use
// it. Dropping a seed is the quietest way to lose reproducibility — the
// API promises "same seed, same run" while the implementation draws
// from some other source (or from nothing), and fault-injection replays
// stop being byte-identical without any test noticing until the replay
// diverges.
package seedflow

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"

	"matscale/internal/analysis/config"
)

// Doc is the analyzer's long-form description.
const Doc = `forbid dropping seed parameters

Every function with a parameter named seed (or *Seed) must reference it
in its body — threading it into a rand source, a faults.Config, or a
stored field. A blank identifier or a parameter that is never read
breaks the "same seed, same run" guarantee the fault-injection and
experiment layers rely on. A reviewed exception (an interface
implementation that is genuinely seed-independent) is annotated
'//seedflow:reviewed'.`

// Analyzer is the seedflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "seedflow",
	Doc:  Doc,
	Run:  run,
}

// reviewedMarker suppresses a diagnostic on its line (or the line
// below it), asserting the dropped seed was reviewed.
const reviewedMarker = "//seedflow:reviewed"

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if config.TestFile(pass.Fset, f.Pos()) {
			continue
		}
		reviewed := config.MarkedLines(pass.Fset, f, reviewedMarker)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Params == nil {
				continue
			}
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if !seedName(name.Name) {
						continue
					}
					if config.SuppressedAt(reviewed, pass.Fset, name.Pos()) {
						continue
					}
					if !paramUsed(pass, fd.Body, name) {
						pass.Reportf(name.Pos(), "%s drops its seed parameter %s: thread it into the rand/faults source so runs are reproducible", fd.Name.Name, name.Name)
					}
				}
			}
		}
	}
	return nil, nil
}

// seedName reports whether a parameter name denotes a seed.
func seedName(name string) bool {
	l := strings.ToLower(name)
	return l == "seed" || strings.HasSuffix(l, "seed")
}

// paramUsed reports whether body contains a real use of the parameter
// object bound to decl — a reference outside a blank assignment.
// `_ = seed` silences the unused-variable check without threading the
// seed anywhere, so it does not count.
func paramUsed(pass *analysis.Pass, body *ast.BlockStmt, decl *ast.Ident) bool {
	obj := pass.TypesInfo.ObjectOf(decl)
	if obj == nil {
		return false
	}
	blank := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && allBlank(as.Lhs) {
			for _, rhs := range as.Rhs {
				blank[rhs] = true
			}
		}
		return true
	})
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if blank[n] {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// allBlank reports whether every expression in lhs is the blank
// identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(lhs) > 0
}
