// Fixture for the seedflow analyzer. The contract is module-wide, so
// no special package path is needed.
package a

// Config carries a seed.
type Config struct {
	Seed  int64
	Extra uint64
}

func NewDropped(p int, seed int64) *Config { // want `NewDropped drops its seed parameter seed`
	_ = p
	return &Config{}
}

func NewBlanked(seed int64) *Config { // want `NewBlanked drops its seed parameter seed`
	_ = seed // blank assignment silences the compiler, not the contract
	return &Config{}
}

func NewThreaded(seed int64) *Config { // threads the seed: no diagnostic
	return &Config{Seed: seed}
}

func NewSuffixDropped(p int, faultSeed uint64) *Config { // want `NewSuffixDropped drops its seed parameter faultSeed`
	return &Config{Extra: uint64(p)}
}

func NewSuffixUsed(faultSeed uint64) *Config { // suffix match, used: no diagnostic
	return &Config{Extra: faultSeed}
}

func Mix(seed int64, other int) int64 { // passing it on counts as use
	return remix(seed) + int64(other)
}

func remix(seed int64) int64 {
	return seed*6364136223846793005 + 1442695040888963407
}

func Seedless(p, q int) int { // no seed parameter: out of scope
	return p + q
}

func NewReviewed(seed int64) *Config { //seedflow:reviewed stateless implementation, genuinely seed-independent
	return &Config{}
}

//seedflow:reviewed interface conformance; this backend has no randomness
func NewReviewedAbove(seed int64) *Config {
	return &Config{}
}
