package ownflow_test

import (
	"testing"

	"matscale/internal/analysis/analyzertest"
	"matscale/internal/analysis/ownflow"
)

func TestOwnflow(t *testing.T) {
	analyzertest.Run(t, "testdata", ownflow.Analyzer,
		"matscale/internal/core",
		"notown",
	)
}
