// Package ownflow defines a control-flow-sensitive analyzer verifying
// the pooled zero-copy messaging discipline of docs/PERFORMANCE.md: a
// buffer handed to an *Owned send (or to Recycle/PutBuf) belongs to the
// runtime afterwards, a buffer obtained from Recv/GetBuf/Exchange
// belongs to the caller and must eventually die into the pool or
// escape, and a sub-slice of a still-used buffer must never travel the
// ownership-transfer path (the pooled slice would alias live memory).
//
// Before this analyzer those rules were enforced by prose comments at
// each call site; ownflow turns them into a linear-ownership dataflow
// over the function's control-flow graph (golang.org/x/tools/go/cfg):
// a forward may-analysis propagates "ownership of v was transferred at
// site S" facts along CFG edges, killed by reassignment of v, and every
// use reached by such a fact is a contract violation. The state machine
// per buffer:
//
//	owned (Recv/GetBuf/make/param) → transferred (*Owned send, Recycle, PutBuf) → dead
//	                             └→ escaped (returned, stored, passed to a call)
//
// A use of a transferred buffer, a second transfer (double Recycle), an
// owned send of a sub-slice whose base is used afterwards, and an owned
// buffer that neither dies nor escapes are all reported. Genuinely safe
// escapes the analysis cannot see are suppressed with a trailing
// '//ownflow:reviewed' comment on the reported line (or the line
// above), reviewed like any other contract comment.
package ownflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"

	"matscale/internal/analysis/config"
)

// Doc is the analyzer's long-form description (shown by -help).
const Doc = `verify buffer ownership across the pooled zero-copy messaging API

The simulator's ownership-transfer messaging (SendOwned, SendFreeOwned,
SendNeighborOwned, ExchangeOwned, ExchangeNeighborOwned, Recycle,
PutBuf) recycles message payloads through a buffer pool. Passing a
buffer to one of these transfers its ownership: using it afterwards
reads (or corrupts) pooled memory, recycling it twice poisons the pool,
and transferring a sub-slice of a buffer that is still used aliases
live memory into the pool. Buffers obtained from Recv/GetBuf/Exchange
are caller-owned and must reach Recycle/PutBuf, an owned send, a
return, or another escape, or the pool churns allocations on the hot
path. ownflow tracks these states over the control-flow graph and
reports violations; reviewed escapes are annotated '//ownflow:reviewed'.`

// Analyzer is the ownflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ownflow",
	Doc:  Doc,
	Run:  run,
}

// reviewedMarker suppresses a diagnostic on its line (or the line
// below it), asserting the flagged flow was reviewed and is safe.
const reviewedMarker = "//ownflow:reviewed"

// consumeArg maps the ownership-consuming methods of the simulator's
// pooled messaging API to the index of the argument whose ownership
// transfers to the runtime.
var consumeArg = map[string]int{
	"SendOwned":             2,
	"SendFreeOwned":         2,
	"SendNeighborOwned":     2,
	"ExchangeOwned":         2,
	"ExchangeNeighborOwned": 2,
	"Recycle":               0,
	"PutBuf":                0,
}

// producers are the methods whose []float64 result is an owned buffer
// the caller is responsible for: it must die into the pool or escape.
var producers = map[string]bool{
	"Recv":                  true,
	"GetBuf":                true,
	"Exchange":              true,
	"ExchangeOwned":         true,
	"ExchangeNeighbor":      true,
	"ExchangeNeighborOwned": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !config.Ownership(pass.Pkg.Path()) {
		return nil, nil
	}
	var r reporter
	for _, f := range pass.Files {
		if config.TestFile(pass.Fset, f.Pos()) {
			continue
		}
		reviewed := config.MarkedLines(pass.Fset, f, reviewedMarker)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The function body and each function literal inside it are
			// separate control-flow units; buffers crossing a closure
			// boundary are untracked (see trackedVars).
			forEachUnit(fd.Body, func(body *ast.BlockStmt) {
				u := newUnit(pass, body, reviewed, &r)
				u.analyze()
			})
		}
	}
	r.emit(pass)
	return nil, nil
}

// forEachUnit calls fn for body and for the body of every function
// literal nested inside it (each literal once, at any depth).
func forEachUnit(body *ast.BlockStmt, fn func(*ast.BlockStmt)) {
	fn(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			forEachUnit(fl.Body, fn)
			return false
		}
		return true
	})
}

// violation is one deferred diagnostic; collecting them first keeps
// emission ordered by position regardless of fixpoint iteration order.
type violation struct {
	pos token.Pos
	msg string
}

type reporter struct{ vs []violation }

func (r *reporter) add(pos token.Pos, format string, args ...interface{}) {
	r.vs = append(r.vs, violation{pos, fmt.Sprintf(format, args...)})
}

func (r *reporter) emit(pass *analysis.Pass) {
	sort.Slice(r.vs, func(i, j int) bool { return r.vs[i].pos < r.vs[j].pos })
	seen := map[string]bool{}
	for _, v := range r.vs {
		key := fmt.Sprintf("%d:%s", v.pos, v.msg)
		if seen[key] {
			continue
		}
		seen[key] = true
		pass.Reportf(v.pos, "%s", v.msg)
	}
}

// transfer is one ownership-consuming call site for one variable.
type transfer struct {
	call     *ast.CallExpr
	v        *types.Var
	method   string
	subslice bool // the argument was v[...] rather than v itself
	// firstUse is the position of the first use of v reached from this
	// transfer (set during the check pass; NoPos when unreached).
	firstUse token.Pos
}

// unit analyzes one function body (or function literal body).
type unit struct {
	pass     *analysis.Pass
	body     *ast.BlockStmt
	reviewed map[int]bool
	r        *reporter

	graph   *cfg.CFG
	tracked map[*types.Var]bool
	// transfers indexes ownership-consuming events by their CallExpr.
	transfers map[*ast.CallExpr][]*transfer
	// rangeVars maps range-statement Key/Value identifiers to their
	// tracked variable: the CFG places them in the loop pre-header, but
	// semantically they are rebound at the top of every iteration.
	rangeVars map[*ast.Ident]*types.Var
}

func newUnit(pass *analysis.Pass, body *ast.BlockStmt, reviewed map[int]bool, r *reporter) *unit {
	return &unit{pass: pass, body: body, reviewed: reviewed, r: r}
}

// mayReturn prunes CFG edges after calls that never return. Only the
// panic builtin matters in the analyzed packages.
func mayReturn(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return !ok || id.Name != "panic"
}

func (u *unit) analyze() {
	u.findTracked()
	u.checkLeaks() // dropped results need no tracked variables
	if len(u.tracked) == 0 {
		return
	}
	u.findTransfers()
	if len(u.transfers) == 0 {
		return
	}
	u.findRangeDefs()
	u.graph = cfg.New(u.body, mayReturn)
	u.propagate()
}

// findRangeDefs collects the Key/Value identifiers of range statements
// that rebind tracked variables.
func (u *unit) findRangeDefs() {
	u.rangeVars = map[*ast.Ident]*types.Var{}
	ast.Inspect(u.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			if e == nil {
				continue
			}
			if id, ok := unparen(e).(*ast.Ident); ok {
				if v, ok := u.pass.TypesInfo.ObjectOf(id).(*types.Var); ok && u.tracked[v] {
					u.rangeVars[id] = v
				}
			}
		}
		return true
	})
}

// findTracked collects the []float64 variables declared in this unit
// whose every occurrence stays inside the unit and outside nested
// function literals. Buffers captured by closures have unknowable
// lifetimes to a per-unit analysis, so they are left untracked rather
// than misreported.
func (u *unit) findTracked() {
	u.tracked = map[*types.Var]bool{}
	inNested := map[types.Object]bool{}
	ast.Inspect(u.body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			ast.Inspect(fl, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := u.pass.TypesInfo.ObjectOf(id); obj != nil {
						inNested[obj] = true
					}
				}
				return true
			})
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := u.pass.TypesInfo.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() || !isFloatSlice(v.Type()) {
			return true
		}
		// Only variables declared within this unit: parameters and
		// package-level slices may alias state the unit cannot see.
		if v.Pos() >= u.body.Pos() && v.Pos() < u.body.End() {
			u.tracked[v] = true
		}
		return true
	})
	for v := range u.tracked {
		if inNested[v] {
			delete(u.tracked, v)
		}
	}
}

// isFloatSlice reports whether t is []float64.
func isFloatSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// poolMethod resolves call to a method of the simulator package
// (Proc or the Engine interface), returning its name.
func (u *unit) poolMethod(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := u.pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != config.SimulatorPath {
		return "", false
	}
	if fn.Type().(*types.Signature).Recv() == nil {
		return "", false
	}
	return fn.Name(), true
}

// findTransfers records every ownership-consuming call whose consumed
// argument is a tracked variable or a sub-slice of one.
func (u *unit) findTransfers() {
	u.transfers = map[*ast.CallExpr][]*transfer{}
	ast.Inspect(u.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := u.poolMethod(call)
		if !ok {
			return true
		}
		argIdx, ok := consumeArg[name]
		if !ok || argIdx >= len(call.Args) {
			return true
		}
		arg := unparen(call.Args[argIdx])
		sub := false
		if se, ok := arg.(*ast.SliceExpr); ok {
			arg = unparen(se.X)
			sub = true
		}
		id, ok := arg.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := u.pass.TypesInfo.ObjectOf(id).(*types.Var)
		if !ok || !u.tracked[v] {
			return true
		}
		u.transfers[call] = append(u.transfers[call],
			&transfer{call: call, v: v, method: name, subslice: sub})
		return true
	})
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ---------------------------------------------------------------------
// Leak check: owned buffers produced by Recv/GetBuf/Exchange must die
// into the pool or escape.
// ---------------------------------------------------------------------

// checkLeaks flags producer calls whose buffer is dropped outright and
// tracked variables holding produced buffers that neither die nor
// escape anywhere in the unit. The check is flow-insensitive and
// deliberately conservative: any call argument position, store, or
// return counts as an escape.
func (u *unit) checkLeaks() {
	produced := map[*types.Var][]*ast.CallExpr{} // var → producing calls
	ast.Inspect(u.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			// A producer call as a bare statement drops its buffer.
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name, ok := u.poolMethod(call); ok && producers[name] && isFloatSlice(u.pass.TypesInfo.TypeOf(call)) {
					u.report(call.Pos(),
						"result of %s is discarded: the delivered buffer never returns to the pool; recycle it (or annotate %s after review)",
						name, reviewedMarker)
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				u.recordProduced(produced, unparen(n.Lhs[i]), rhs)
			}
		case *ast.ValueSpec:
			for i, val := range n.Values {
				if i >= len(n.Names) {
					break
				}
				u.recordProduced(produced, n.Names[i], val)
			}
		}
		return true
	})
	for v, calls := range produced {
		if u.diesOrEscapes(v) {
			continue
		}
		sort.Slice(calls, func(i, j int) bool { return calls[i].Pos() < calls[j].Pos() })
		u.report(calls[0].Pos(),
			"buffer held by %s never reaches Recycle/PutBuf and never escapes: the pool churns an allocation per message on this path; recycle it when consumed (or annotate %s after review)",
			v.Name(), reviewedMarker)
	}
}

// recordProduced notes a producer call bound to lhs: dropped into the
// blank identifier it reports immediately; bound to a tracked variable
// it is queued for the dies-or-escapes check.
func (u *unit) recordProduced(produced map[*types.Var][]*ast.CallExpr, lhs ast.Expr, rhs ast.Expr) {
	call, ok := unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := u.poolMethod(call)
	if !ok || !producers[name] {
		return
	}
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		u.report(call.Pos(),
			"result of %s is assigned to the blank identifier: the delivered buffer never returns to the pool; recycle it (or annotate %s after review)",
			name, reviewedMarker)
		return
	}
	if v, ok := u.pass.TypesInfo.ObjectOf(id).(*types.Var); ok && u.tracked[v] {
		produced[v] = append(produced[v], call)
	}
}

// diesOrEscapes reports whether any occurrence of v lets the buffer
// leave the unit's custody: a consuming pool call, any other call
// argument that can retain the backing array (except the non-retaining
// builtins len/cap/copy/append/min/max), a non-scalar return, a store
// into another lvalue, or a composite literal element. Expressions of
// basic type (buf[0], len(buf)) read the buffer without retaining it
// and do not count.
func (u *unit) diesOrEscapes(v *types.Var) bool {
	escaped := false
	ast.Inspect(u.body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if !u.retains(arg, v) {
					continue
				}
				if id, ok := n.Fun.(*ast.Ident); ok {
					switch id.Name {
					case "len", "cap", "copy", "append", "min", "max":
						continue // reads the slice, does not retain it
					}
				}
				escaped = true
				return false
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if u.retains(res, v) {
					escaped = true
					return false
				}
			}
		case *ast.AssignStmt:
			// v on the right of an assignment whose left side is not v
			// itself stores the buffer somewhere the unit no longer
			// controls (another variable, a field, an element).
			for i, rhs := range n.Rhs {
				if !u.retains(rhs, v) {
					continue
				}
				if len(n.Lhs) == len(n.Rhs) {
					if id, ok := unparen(n.Lhs[i]).(*ast.Ident); ok && u.objIs(id, v) {
						continue // v = v[1:] style self-update
					}
				}
				escaped = true
				return false
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if u.retains(elt, v) {
					escaped = true
					return false
				}
			}
		}
		return true
	})
	return escaped
}

// retains reports whether evaluating e can retain v's backing array:
// e mentions v and e's own value is not of basic type.
func (u *unit) retains(e ast.Expr, v *types.Var) bool {
	if !u.mentionsVar(e, v) {
		return false
	}
	t := u.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return true // unknown type: assume the worst
	}
	_, basic := t.Underlying().(*types.Basic)
	return !basic
}

// mentionsVar reports whether e contains an identifier resolving to v.
func (u *unit) mentionsVar(e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && u.objIs(id, v) {
			found = true
		}
		return !found
	})
	return found
}

func (u *unit) objIs(id *ast.Ident, v *types.Var) bool {
	return u.pass.TypesInfo.ObjectOf(id) == v
}

// ---------------------------------------------------------------------
// Use-after-transfer: forward may-analysis over the CFG.
// ---------------------------------------------------------------------

// state maps each tracked variable to the set of transfer sites that
// may have consumed it on some path reaching the current point.
type state map[*types.Var]map[*transfer]bool

func (s state) clone() state {
	out := make(state, len(s))
	for v, sites := range s {
		cp := make(map[*transfer]bool, len(sites))
		for t := range sites {
			cp[t] = true
		}
		out[v] = cp
	}
	return out
}

// join unions o into s, reporting whether s changed.
func (s state) join(o state) bool {
	changed := false
	for v, sites := range o {
		dst := s[v]
		if dst == nil {
			dst = map[*transfer]bool{}
			s[v] = dst
		}
		for t := range sites {
			if !dst[t] {
				dst[t] = true
				changed = true
			}
		}
	}
	return changed
}

func (s state) equal(o state) bool {
	if len(s) != len(o) {
		return false
	}
	for v, sites := range s {
		osites, ok := o[v]
		if !ok || len(sites) != len(osites) {
			return false
		}
		for t := range sites {
			if !osites[t] {
				return false
			}
		}
	}
	return true
}

// propagate runs the forward fixpoint and then the reporting pass.
func (u *unit) propagate() {
	in := make([]state, len(u.graph.Blocks))
	for i := range in {
		in[i] = state{}
	}
	// Fixpoint: iterate until block-entry states stabilize. Blocks form
	// a small graph per function; simple round-robin converges quickly
	// because the lattice (sets of transfer sites) is finite.
	for changed := true; changed; {
		changed = false
		for _, b := range u.graph.Blocks {
			if !b.Live {
				continue
			}
			out := u.flowBlock(b, in[b.Index].clone(), nil)
			for _, succ := range b.Succs {
				if in[succ.Index].join(out) {
					changed = true
				}
			}
		}
	}
	// Reporting pass over the stabilized states.
	for _, b := range u.graph.Blocks {
		if !b.Live {
			continue
		}
		u.flowBlock(b, in[b.Index].clone(), u.r)
	}
	u.reportSubsliceSites()
}

// flowBlock pushes st through the block's nodes in order, returning
// the exit state. With r non-nil, contract violations are recorded.
func (u *unit) flowBlock(b *cfg.Block, st state, r *reporter) state {
	// A range loop rebinds its Key/Value variables at the top of every
	// iteration; the CFG only materializes that binding in the
	// pre-header, so replay the kill at the loop head.
	if b.Kind == cfg.KindRangeLoop {
		if rs, ok := b.Stmt.(*ast.RangeStmt); ok {
			for _, e := range []ast.Expr{rs.Key, rs.Value} {
				if e == nil {
					continue
				}
				if id, ok := unparen(e).(*ast.Ident); ok {
					if v, ok := u.pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
						delete(st, v)
					}
				}
			}
		}
	}
	for _, n := range b.Nodes {
		u.flowNode(n, st, r)
	}
	return st
}

// flowNode applies one CFG node: check uses against the entry state,
// then apply transfers (gen), then reassignments (kill).
func (u *unit) flowNode(n ast.Node, st state, r *reporter) {
	// A bare range Key/Value identifier node is a binding, not a use.
	if id, ok := n.(*ast.Ident); ok {
		if v, ok := u.rangeVars[id]; ok {
			delete(st, v)
			return
		}
	}

	transferArgs := map[*ast.Ident]bool{}
	var transfers []*transfer
	var defs []*types.Var

	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// Deferred calls run at function exit, not here; treating a
			// deferred Recycle as an immediate transfer would flag every
			// subsequent use. The deferred call still counts as an
			// escape for the leak check.
			return false
		case *ast.CallExpr:
			for _, t := range u.transfers[m] {
				transfers = append(transfers, t)
				// The consumed argument's identifier belongs to the
				// transfer event, not to the plain uses.
				if id, ok := u.consumedIdent(m, t); ok {
					transferArgs[id] = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok {
					if v, ok := u.pass.TypesInfo.ObjectOf(id).(*types.Var); ok && u.tracked[v] {
						defs = append(defs, v)
						transferArgs[id] = true // LHS ident is a def, not a use
					}
				}
			}
		case *ast.ValueSpec:
			// var x []float64 (re)binds x: a def, not a use.
			for _, name := range m.Names {
				if v, ok := u.pass.TypesInfo.ObjectOf(name).(*types.Var); ok && u.tracked[v] {
					defs = append(defs, v)
					transferArgs[name] = true
				}
			}
		}
		return true
	})

	// 1. Uses against the entry state.
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.Ident:
			if transferArgs[m] {
				return true
			}
			v, ok := u.pass.TypesInfo.ObjectOf(m).(*types.Var)
			if !ok || !u.tracked[v] {
				return true
			}
			for t := range st[v] {
				u.recordUse(r, m, t)
			}
		}
		return true
	})

	// 2. Transfers: a transfer of an already-transferred buffer is
	// itself a violation (double Recycle / double owned send), then the
	// site joins the state.
	for _, t := range transfers {
		for prev := range st[t.v] {
			u.recordRetransfer(r, t, prev)
		}
		sites := st[t.v]
		if sites == nil {
			sites = map[*transfer]bool{}
			st[t.v] = sites
		}
		sites[t] = true
	}

	// 3. Kills: reassignment gives the variable a fresh buffer.
	for _, v := range defs {
		delete(st, v)
	}
}

// consumedIdent returns the identifier of the consumed argument of t
// inside call (unwrapping a sub-slice expression).
func (u *unit) consumedIdent(call *ast.CallExpr, t *transfer) (*ast.Ident, bool) {
	idx := consumeArg[t.method]
	if idx >= len(call.Args) {
		return nil, false
	}
	arg := unparen(call.Args[idx])
	if se, ok := arg.(*ast.SliceExpr); ok {
		arg = unparen(se.X)
	}
	id, ok := arg.(*ast.Ident)
	return id, ok
}

// recordUse reports a use of a may-transferred buffer. Whole-variable
// transfers report at the use; sub-slice transfers report at the
// transfer site (the send is the mistake there — the base variable's
// continued use is legitimate), so here they only record the use
// position for reportSubsliceSites.
func (u *unit) recordUse(r *reporter, id *ast.Ident, t *transfer) {
	if t.subslice {
		if t.firstUse == token.NoPos || id.Pos() < t.firstUse {
			t.firstUse = id.Pos()
		}
		return
	}
	if r == nil || u.suppressed(id.Pos()) {
		return
	}
	r.add(id.Pos(),
		"use of %s after its ownership was transferred to the runtime at line %d (%s): the buffer may already be recycled into another message; copy before sending, or restructure so the buffer is dead (or annotate %s after review)",
		id.Name, u.line(t.call.Pos()), t.method, reviewedMarker)
}

// recordRetransfer reports a second consumption of the same buffer.
func (u *unit) recordRetransfer(r *reporter, t, prev *transfer) {
	if prev.subslice {
		// The earlier sub-slice send reports at its own site; this
		// consumption is also a use of the base variable.
		if prev.firstUse == token.NoPos || t.call.Pos() < prev.firstUse {
			prev.firstUse = t.call.Pos()
		}
		return
	}
	if r == nil || u.suppressed(t.call.Pos()) {
		return
	}
	what := "transferred again by " + t.method
	if t.method == "Recycle" && prev.method == "Recycle" {
		what = "recycled twice"
	}
	r.add(t.call.Pos(),
		"%s already transferred at line %d (%s) is %s: double consumption corrupts the buffer pool (or annotate %s after review)",
		t.v.Name(), u.line(prev.call.Pos()), prev.method, what, reviewedMarker)
}

// reportSubsliceSites emits the deferred sub-slice diagnostics: an
// owned transfer of v[...] is only wrong when v is still used on some
// path after the call.
func (u *unit) reportSubsliceSites() {
	var sites []*transfer
	for _, ts := range u.transfers {
		for _, t := range ts {
			if t.subslice && t.firstUse != token.NoPos {
				sites = append(sites, t)
			}
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].call.Pos() < sites[j].call.Pos() })
	for _, t := range sites {
		if u.suppressed(t.call.Pos()) {
			continue
		}
		u.r.add(t.call.Pos(),
			"%s hands a sub-slice of %s to the pool while %s is still used at line %d: the pooled slice aliases the live buffer, so a later delivery would overwrite it; send a copy instead (or annotate %s after review)",
			t.method, t.v.Name(), t.v.Name(), u.line(t.firstUse), reviewedMarker)
	}
}

func (u *unit) report(pos token.Pos, format string, args ...interface{}) {
	if u.suppressed(pos) {
		return
	}
	u.r.add(pos, format, args...)
}

// suppressed reports whether pos's line (or the one above) carries the
// reviewed marker.
func (u *unit) suppressed(pos token.Pos) bool {
	line := u.line(pos)
	return u.reviewed[line] || u.reviewed[line-1]
}

func (u *unit) line(pos token.Pos) int {
	return u.pass.Fset.Position(pos).Line
}
