// Package notown is outside the ownership-classified packages: even a
// flagrant use-after-transfer produces no diagnostics here, because the
// ownership contract binds only the packages config.Ownership names.
package notown

import "matscale/internal/simulator"

// UseAfterSendElsewhere would be a violation inside internal/core.
func UseAfterSendElsewhere(pr *simulator.Proc) float64 {
	buf := pr.Recv(0, 1)
	pr.SendOwned(1, 2, buf)
	return buf[0]
}

// DropRecvElsewhere drops a delivered buffer outside the contract.
func DropRecvElsewhere(pr *simulator.Proc) {
	pr.Recv(0, 1)
}
