// Package core is an ownflow fixture: its import path matches a real
// ownership-classified package, so every function here runs under the
// full buffer-ownership dataflow.
package core

import "matscale/internal/simulator"

// --- positive cases -------------------------------------------------

// useAfterSend is the seeded use-after-SendOwned bug: the buffer was
// handed to the runtime, then read.
func useAfterSend(pr *simulator.Proc) float64 {
	buf := pr.Recv(0, 1)
	pr.SendOwned(1, 2, buf)
	return buf[0] // want `use of buf after its ownership was transferred`
}

// mayUseAfterSend transfers on only one path; the merge point still
// may-reads a recycled buffer.
func mayUseAfterSend(pr *simulator.Proc, cond bool) float64 {
	buf := pr.Recv(0, 1)
	if cond {
		pr.SendOwned(1, 2, buf)
	}
	return buf[0] // want `use of buf after its ownership was transferred`
}

// doubleRecycle consumes the same buffer twice.
func doubleRecycle(pr *simulator.Proc) {
	buf := pr.Recv(0, 1)
	pr.Recycle(buf)
	pr.Recycle(buf) // want `recycled twice`
}

// sendThenRecycle double-consumes across two different methods.
func sendThenRecycle(pr *simulator.Proc) {
	buf := pr.GetBuf(8)
	pr.SendNeighborOwned(1, 0, buf)
	pr.Recycle(buf) // want `transferred again by Recycle`
}

// subsliceSend pools a sub-slice of a buffer that is still read
// afterwards: the pooled slice aliases live memory.
func subsliceSend(pr *simulator.Proc, out []float64) {
	buf := pr.Recv(0, 1)
	pr.SendOwned(1, 2, buf[:4]) // want `hands a sub-slice of buf`
	copy(out, buf)
}

// droppedRecv discards a delivered buffer outright.
func droppedRecv(pr *simulator.Proc) {
	pr.Recv(0, 1) // want `result of Recv is discarded`
}

// blankRecv drops the buffer through the blank identifier.
func blankRecv(pr *simulator.Proc) {
	_ = pr.Recv(0, 1) // want `assigned to the blank identifier`
}

// leakRecv reads the buffer but never recycles it: an allocation per
// message on this path.
func leakRecv(pr *simulator.Proc) float64 {
	buf := pr.Recv(0, 1) // want `never reaches Recycle/PutBuf`
	s := 0.0
	for _, v := range buf {
		s += v
	}
	return s
}

// leakGetBuf leaks a pool checkout the same way.
func leakGetBuf(pr *simulator.Proc, n int) {
	tmp := pr.GetBuf(n) // want `never reaches Recycle/PutBuf`
	tmp[0] = 1
}

// --- suppression cases ----------------------------------------------

// reviewedDrop drops a zero-length barrier payload; the marker on the
// reported line suppresses the diagnostic.
func reviewedDrop(pr *simulator.Proc) {
	pr.Recv(0, 1) //ownflow:reviewed zero-length barrier payload, nothing to recycle
}

// reviewedAbove carries the marker on the line above the report.
func reviewedAbove(pr *simulator.Proc) float64 {
	//ownflow:reviewed buffer retained by caller-visible profiling hook
	buf := pr.Recv(0, 2)
	return buf[0]
}

// --- negative cases -------------------------------------------------

// sendThenReplace is the canonical owned-roll pattern: transfer, then
// rebind the variable to the freshly delivered buffer.
func sendThenReplace(pr *simulator.Proc, steps int) {
	buf := pr.Recv(0, 0)
	for s := 0; s < steps; s++ {
		pr.SendNeighborOwned(1, s, buf)
		buf = pr.Recv(0, s+1)
	}
	pr.Recycle(buf)
}

// exchangeOwnedRoll consumes and rebinds in one statement.
func exchangeOwnedRoll(pr *simulator.Proc) float64 {
	buf := pr.GetBuf(8)
	buf = pr.ExchangeOwned(1, 0, buf)
	v := buf[0]
	pr.Recycle(buf)
	return v
}

// branchRecycle transfers on one path but rebinds before the merge, so
// the final Recycle is single-consumption on every path.
func branchRecycle(pr *simulator.Proc, cond bool) {
	buf := pr.Recv(0, 1)
	if cond {
		pr.SendOwned(1, 2, buf)
		buf = pr.Recv(1, 3)
	}
	pr.Recycle(buf)
}

// recycleTwo recycles two distinct buffers, one each.
func recycleTwo(pr *simulator.Proc) {
	a := pr.Recv(0, 1)
	b := pr.Recv(0, 2)
	pr.Recycle(a)
	pr.Recycle(b)
}

// subsliceLastUse pools a sub-slice of a buffer that is dead
// afterwards — the gather-leaf pattern — which is legal.
func subsliceLastUse(pr *simulator.Proc) {
	buf := pr.Recv(0, 1)
	pr.SendOwned(1, 2, buf[:2])
}

// deferredRecycle recycles at function exit; uses before the deferred
// call runs are fine.
func deferredRecycle(pr *simulator.Proc) float64 {
	buf := pr.Recv(0, 1)
	defer pr.Recycle(buf)
	return buf[0]
}

// closureCapture shares a buffer with a function literal; buffers that
// cross a closure boundary are outside the per-function analysis and
// deliberately untracked.
func closureCapture(pr *simulator.Proc) {
	buf := pr.Recv(0, 1)
	done := func() { pr.Recycle(buf) }
	pr.Send(1, 2, buf)
	done()
}

// escapeReturn hands the buffer to the caller: an escape, not a leak.
func escapeReturn(pr *simulator.Proc) []float64 {
	buf := pr.Recv(0, 1)
	return buf
}

// copySendKeeps uses the copying Send, which never takes ownership.
func copySendKeeps(pr *simulator.Proc) float64 {
	buf := pr.Recv(0, 1)
	pr.Send(1, 2, buf)
	v := buf[0]
	pr.Recycle(buf)
	return v
}
