// Package simulator stubs the pooled messaging surface of the real
// simulator package: same import path, same method names and consumed
// argument positions, no behavior. Fixtures type-check against it so
// ownflow resolves call sites exactly as it does in the real tree.
package simulator

// Proc mirrors the messaging methods of simulator.Proc.
type Proc struct{}

// Send copies data; ownership stays with the caller.
func (p *Proc) Send(dst, tag int, data []float64) {}

// SendOwned transfers ownership of data to the runtime.
func (p *Proc) SendOwned(dst, tag int, data []float64) {}

// SendFreeOwned transfers ownership of data to the runtime.
func (p *Proc) SendFreeOwned(dst, tag int, data []float64) {}

// SendNeighborOwned transfers ownership of data to the runtime.
func (p *Proc) SendNeighborOwned(dst, tag int, data []float64) {}

// Exchange copies data and returns a caller-owned buffer.
func (p *Proc) Exchange(partner, tag int, data []float64) []float64 { return nil }

// ExchangeNeighbor copies data and returns a caller-owned buffer.
func (p *Proc) ExchangeNeighbor(partner, tag int, data []float64) []float64 { return nil }

// ExchangeOwned consumes data and returns a caller-owned buffer.
func (p *Proc) ExchangeOwned(partner, tag int, data []float64) []float64 { return nil }

// ExchangeNeighborOwned consumes data and returns a caller-owned buffer.
func (p *Proc) ExchangeNeighborOwned(partner, tag int, data []float64) []float64 { return nil }

// Recv returns a caller-owned buffer.
func (p *Proc) Recv(src, tag int) []float64 { return nil }

// Recycle returns buf to the pool, consuming it.
func (p *Proc) Recycle(buf []float64) {}

// GetBuf returns a caller-owned pooled buffer of length n.
func (p *Proc) GetBuf(n int) []float64 { return make([]float64, n) }

// PutBuf returns b to the pool, consuming it.
func (p *Proc) PutBuf(b []float64) {}
