// Package model is a unitflow fixture: its import path matches a real
// unit-classified package, so every expression here runs under unit
// inference.
package model

import "math"

// --- positive cases -------------------------------------------------

// badAdd adds a startup time to a message volume.
func badAdd(ts, words float64) float64 {
	return ts + words // want `cross-unit addition`
}

// badCompare ranks a cost against a word count.
func badCompare(cost, nwords float64) bool {
	return cost < nwords // want `cross-unit comparison`
}

// badAccum folds one kind of quantity into another kind.
func badAccum(tw float64) float64 {
	eff := 0.5
	eff += tw // want `cross-unit accumulation`
	return eff
}

// badEfficiency is declared dimensionless by name but returns a time.
func badEfficiency(tp float64) float64 {
	return tp // want `declared unit`
}

// commTime and wordCount give call results units through their names.
func commTime(p float64) float64  { return p }
func wordCount(n float64) float64 { return n }

// badCallMix adds a time-valued call to a words-valued call.
func badCallMix(n, p float64) float64 {
	return commTime(p) + wordCount(n) // want `cross-unit addition`
}

// badField mixes a machine cost constant with a word count.
func badField(m Machine, words float64) float64 {
	return m.Ts + words // want `cross-unit addition`
}

// Machine stubs the cost-constant fields of the real machine type.
type Machine struct {
	Ts, Tw float64
}

// --- suppression cases ----------------------------------------------

// reviewedMix carries the marker on the reported line.
func reviewedMix(ts, words float64) float64 {
	return ts + words //unitflow:reviewed packed scalar score, not a physical sum
}

// reviewedAbove carries the marker on the line above.
func reviewedAbove(th, ratio float64) bool {
	//unitflow:reviewed threshold constant deliberately encodes both scales
	return th > ratio
}

// --- negative cases -------------------------------------------------

// totalTime adds like units and returns what its name declares.
func totalTime(ts, tw float64) float64 {
	return ts + tw
}

// goodTp is the paper's Tp shape: every mixed product passes through
// an unknown factor, so nothing reports.
func goodTp(n, p, ts, tw float64) float64 {
	return n*n*n/p + ts*math.Log2(p) + tw*n*n/math.Sqrt(p)
}

// goodEfficiency divides work by cost; the p·Tp product is unknown, so
// the declared dimensionless result is not contradicted.
func goodEfficiency(w, tp, p float64) float64 {
	return w / (p * tp)
}

// goodScale scales a time by a dimensionless factor and keeps adding
// times.
func goodScale(ts, tw, eff float64) float64 {
	return eff*ts + tw
}

// goodFields adds two cost constants of the same machine.
func goodFields(m Machine) float64 {
	return m.Ts + m.Tw
}

// goodMax compares like units through math.Max.
func goodMax(ts, tw float64) float64 {
	return math.Max(ts, tw)
}
