// Package notunit is outside the unit-classified packages: mixed-unit
// arithmetic here produces no diagnostics, because the unit contract
// binds only the packages config.UnitInference names.
package notunit

// MixElsewhere would be a violation inside internal/model.
func MixElsewhere(ts, words float64) float64 {
	return ts + words
}

// CompareElsewhere likewise.
func CompareElsewhere(cost, nwords float64) bool {
	return cost < nwords
}
