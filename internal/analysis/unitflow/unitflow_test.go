package unitflow_test

import (
	"testing"

	"matscale/internal/analysis/analyzertest"
	"matscale/internal/analysis/unitflow"
)

func TestUnitflow(t *testing.T) {
	analyzertest.Run(t, "testdata", unitflow.Analyzer,
		"matscale/internal/model",
		"notunit",
	)
}
