// Package unitflow defines an analyzer that infers physical units for
// the cost model's float64 expressions and rejects cross-unit
// arithmetic. The accretion analyzer already forces every exported
// cost API to document its units (ts, tw, flop-times, words,
// dimensionless ratios); unitflow closes the loop by propagating those
// same units through expressions and flagging the additions and
// comparisons that mix them — a startup-time term added to a word
// count, an efficiency compared against a per-message cost.
//
// The unit lattice is deliberately small: time (the paper normalizes
// ts/tw/th and the W = n³ flop count to flop-time units, so flops and
// seconds collapse into one kind), words (message volumes), and
// dimensionless (efficiencies, speedups, ratios). Everything else —
// matrix orders, processor counts, literals, nonlinear function
// results — is unknown, and unknown never reports: the analyzer only
// fires when both operands have confidently inferred, different units.
// Units come from names and documentation, not annotations: parameter
// and field names (ts, tw, Th, words, eff), callee names (…Time,
// …Overhead, …Tp, …Efficiency, …Words), and the unit vocabulary of
// doc comments. A reviewed exception is suppressed with a trailing
// '//unitflow:reviewed' comment on the line (or the line above).
package unitflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"

	"golang.org/x/tools/go/analysis"

	"matscale/internal/analysis/config"
)

// Doc is the analyzer's long-form description (shown by -help).
const Doc = `reject cross-unit arithmetic in the cost model's float64 expressions

The cost model measures quantities in three units: flop-times (ts, tw,
th, Tp, To, and the W = n³ work term, all normalized to the time of one
flop), words (message volumes), and dimensionless ratios (efficiency,
speedup, K = E/(1−E)). unitflow infers a unit for each float64
expression from parameter/field/callee names and doc comments, then
reports additions, subtractions, and comparisons whose operands have
different inferred units. Quantities it cannot confidently classify
stay unknown and never report. Reviewed exceptions are annotated
'//unitflow:reviewed'.`

// Analyzer is the unitflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "unitflow",
	Doc:  Doc,
	Run:  run,
}

// reviewedMarker suppresses a diagnostic on its line (or the line
// below it).
const reviewedMarker = "//unitflow:reviewed"

// unit is one point of the inference lattice.
type unit int

const (
	unknownU unit = iota // not confidently classified; never reports
	timeU                // flop-time: ts, tw, th, Tp, To, W
	wordsU               // message volume in words
	dimlessU             // efficiency, speedup, ratios, K
)

func (u unit) String() string {
	switch u {
	case timeU:
		return "time (flop-time units)"
	case wordsU:
		return "words"
	case dimlessU:
		return "dimensionless"
	}
	return "unknown"
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !config.UnitInference(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if config.TestFile(pass.Fset, f.Pos()) {
			continue
		}
		c := &checker{pass: pass, reviewed: config.MarkedLines(pass.Fset, f, reviewedMarker)}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return nil, nil
}

type checker struct {
	pass     *analysis.Pass
	reviewed map[int]bool
	env      map[*types.Var]unit
}

// checkFunc infers an environment for one function declaration (its
// literals included) and checks every arithmetic site inside.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	c.env = map[*types.Var]unit{}
	c.seedParams(fd)
	c.inferLocals(fd.Body)
	c.checkBody(fd)
}

// seedParams assigns units to parameters (and named results) from
// their names: a parameter called ts carries startup time wherever the
// caller got it from.
func (c *checker) seedParams(fd *ast.FuncDecl) {
	seed := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				v, ok := c.pass.TypesInfo.ObjectOf(name).(*types.Var)
				if !ok {
					continue
				}
				if !isFloat64(v.Type()) && !isFuncType(v.Type()) {
					continue
				}
				if u := nameUnit(name.Name); u != unknownU {
					c.env[v] = u
				}
			}
		}
	}
	seed(fd.Type.Params)
	seed(fd.Type.Results)
	// Function-literal parameters inside the body join the same env.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			seedLit := fl.Type.Params
			if seedLit != nil {
				for _, field := range seedLit.List {
					for _, name := range field.Names {
						if v, ok := c.pass.TypesInfo.ObjectOf(name).(*types.Var); ok && isFloat64(v.Type()) {
							if u := nameUnit(name.Name); u != unknownU {
								c.env[v] = u
							}
						}
					}
				}
			}
		}
		return true
	})
}

// inferLocals runs a small fixpoint over the assignments in body,
// giving each float64 local a unit from its name (which wins: the name
// states intent) or, failing that, from its right-hand sides.
// Conflicting inferences poison the variable back to unknown.
func (c *checker) inferLocals(body *ast.BlockStmt) {
	poisoned := map[*types.Var]bool{}
	for range [4]struct{}{} {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Var)
				if !ok || !isFloat64(v.Type()) || poisoned[v] {
					continue
				}
				if u := nameUnit(v.Name()); u != unknownU {
					if c.env[v] != u {
						c.env[v] = u
						changed = true
					}
					continue
				}
				u := c.exprUnit(as.Rhs[i])
				if u == unknownU {
					continue
				}
				switch c.env[v] {
				case unknownU:
					c.env[v] = u
					changed = true
				case u:
				default:
					// Two assignments disagree: not a single-unit
					// variable; stop guessing.
					delete(c.env, v)
					poisoned[v] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
}

// checkBody reports cross-unit arithmetic in fd.
func (c *checker) checkBody(fd *ast.FuncDecl) {
	declared := c.funcDeclUnit(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			c.checkBinary(n)
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN {
				lu := c.exprUnit(n.Lhs[0])
				ru := c.exprUnit(n.Rhs[0])
				if lu != unknownU && ru != unknownU && lu != ru {
					c.report(n.TokPos, "cross-unit accumulation: %s is %s but the added term is %s", exprString(n.Lhs[0]), lu, ru)
				}
			}
		case *ast.ReturnStmt:
			// Function literals have their own (unchecked) result
			// contract; only check returns of fd itself, approximated
			// by skipping returns inside literals below.
		case *ast.FuncLit:
			c.checkLitBody(n)
			return false
		}
		return true
	})
	if declared == unknownU {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		u := c.exprUnit(ret.Results[0])
		if u != unknownU && u != declared {
			c.report(ret.Results[0].Pos(), "return value inferred as %s but %s's declared unit is %s", u, fd.Name.Name, declared)
		}
		return true
	})
}

// checkLitBody checks arithmetic inside a function literal (return
// units of literals are not checked — they have no unit-bearing name).
func (c *checker) checkLitBody(fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			c.checkBinary(n)
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN {
				lu := c.exprUnit(n.Lhs[0])
				ru := c.exprUnit(n.Rhs[0])
				if lu != unknownU && ru != unknownU && lu != ru {
					c.report(n.TokPos, "cross-unit accumulation: %s is %s but the added term is %s", exprString(n.Lhs[0]), lu, ru)
				}
			}
		}
		return true
	})
}

// checkBinary reports an addition, subtraction, or comparison whose
// operands carry different known units.
func (c *checker) checkBinary(b *ast.BinaryExpr) {
	var verb string
	switch b.Op {
	case token.ADD:
		verb = "addition"
	case token.SUB:
		verb = "subtraction"
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		verb = "comparison"
	default:
		return
	}
	if !isFloat64(c.pass.TypesInfo.TypeOf(b.X)) || !isFloat64(c.pass.TypesInfo.TypeOf(b.Y)) {
		return
	}
	lu, ru := c.exprUnit(b.X), c.exprUnit(b.Y)
	if lu == unknownU || ru == unknownU || lu == ru {
		return
	}
	c.report(b.OpPos, "cross-unit %s: %s is %s but %s is %s", verb, exprString(b.X), lu, exprString(b.Y), ru)
}

// exprUnit infers e's unit.
func (c *checker) exprUnit(e ast.Expr) unit {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.exprUnit(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return c.exprUnit(e.X)
		}
	case *ast.Ident:
		if v, ok := c.pass.TypesInfo.ObjectOf(e).(*types.Var); ok {
			if u, ok := c.env[v]; ok {
				return u
			}
			if isFloat64(v.Type()) {
				return nameUnit(v.Name())
			}
			return unknownU
		}
		if con, ok := c.pass.TypesInfo.ObjectOf(e).(*types.Const); ok && isFloat64(con.Type()) {
			return nameUnit(con.Name())
		}
	case *ast.SelectorExpr:
		// A field selection: the field name states the unit (m.Ts).
		if sel, ok := c.pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if isFloat64(sel.Obj().Type()) {
				return fieldUnit(sel.Obj().Name())
			}
			return unknownU
		}
		// Package-qualified var or const.
		if obj := c.pass.TypesInfo.ObjectOf(e.Sel); obj != nil && isFloat64(obj.Type()) {
			switch obj.(type) {
			case *types.Var, *types.Const:
				return nameUnit(e.Sel.Name)
			}
		}
	case *ast.CallExpr:
		return c.callUnit(e)
	case *ast.BinaryExpr:
		return c.binaryUnit(e)
	}
	return unknownU
}

// binaryUnit applies the unit algebra to an arithmetic expression.
func (c *checker) binaryUnit(b *ast.BinaryExpr) unit {
	lu, ru := c.exprUnit(b.X), c.exprUnit(b.Y)
	switch b.Op {
	case token.ADD, token.SUB:
		// Consistent operands keep their unit; one unknown operand is
		// optimistically assumed consistent with the known one.
		if lu == ru {
			return lu
		}
		if lu == unknownU {
			return ru
		}
		if ru == unknownU {
			return lu
		}
		return unknownU // mixed (reported by checkBinary)
	case token.MUL:
		// Scaling by a dimensionless factor preserves the unit; any
		// other product (time × words, time × count) leaves the
		// lattice and becomes unknown.
		if lu == dimlessU {
			return ru
		}
		if ru == dimlessU {
			return lu
		}
		return unknownU
	case token.QUO:
		// A ratio of like units is dimensionless; dividing by a
		// dimensionless factor preserves the unit.
		if lu == ru && lu != unknownU {
			return dimlessU
		}
		if ru == dimlessU {
			return lu
		}
		return unknownU
	}
	return unknownU
}

// callUnit infers the unit of a call's result from the callee's name
// (for functions in this module, func-typed locals, and the order-
// preserving math builtins) or the callee's doc comment.
func (c *checker) callUnit(call *ast.CallExpr) unit {
	if !isFloat64(c.pass.TypesInfo.TypeOf(call)) {
		return unknownU
	}
	// A conversion float64(x) erases the operand's (integer) identity.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return unknownU
	}
	var name string
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name, obj = fun.Name, c.pass.TypesInfo.ObjectOf(fun)
	case *ast.SelectorExpr:
		name, obj = fun.Sel.Name, c.pass.TypesInfo.ObjectOf(fun.Sel)
	default:
		return unknownU
	}
	switch o := obj.(type) {
	case *types.Func:
		if o.Pkg() != nil && o.Pkg().Path() == "math" {
			// Max/Min/Abs preserve a consistent argument unit; other
			// math functions are nonlinear in it.
			switch name {
			case "Max", "Min", "Abs":
				var u unit
				for i, arg := range call.Args {
					au := c.exprUnit(arg)
					if i == 0 {
						u = au
					} else if au != u {
						return unknownU
					}
				}
				return u
			}
			return unknownU
		}
		// Name heuristics apply only to this module's own functions;
		// arbitrary third-party names are not unit vocabulary.
		if o.Pkg() == nil || (o.Pkg() != c.pass.Pkg && !strings.HasPrefix(o.Pkg().Path(), "matscale/")) {
			return unknownU
		}
		if u := funcNameUnit(name); u != unknownU {
			return u
		}
		return unknownU
	case *types.Var:
		// A call through a func-typed variable: the variable's name is
		// the only vocabulary (toX, dnsTo, costFn).
		if isFuncType(o.Type()) {
			return funcNameUnit(name)
		}
	}
	return unknownU
}

// funcDeclUnit gives the declared unit of fd's single float64 result,
// from the function's name or, failing that, its doc comment.
func (c *checker) funcDeclUnit(fd *ast.FuncDecl) unit {
	res := fd.Type.Results
	if res == nil || len(res.List) != 1 || len(res.List[0].Names) > 0 {
		return unknownU
	}
	if !isFloat64(c.pass.TypesInfo.TypeOf(res.List[0].Type)) {
		return unknownU
	}
	if u := funcNameUnit(fd.Name.Name); u != unknownU {
		return u
	}
	return docUnit(fd.Doc)
}

// docUnit scans a doc comment for the first unit keyword.
func docUnit(doc *ast.CommentGroup) unit {
	if doc == nil {
		return unknownU
	}
	for _, word := range strings.FieldsFunc(strings.ToLower(doc.Text()), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	}) {
		switch word {
		case "efficiency", "isoefficiency", "speedup", "ratio", "fraction", "utilization", "granularity", "dimensionless":
			return dimlessU
		case "words", "word":
			return wordsU
		case "seconds", "time", "times", "cost", "costs", "overhead", "flop", "flops", "ts", "tw", "th":
			return timeU
		}
	}
	return unknownU
}

// nameUnit maps a variable, parameter, or field identifier to a unit.
func nameUnit(name string) unit {
	switch strings.ToLower(name) {
	case "ts", "tw", "th", "tc", "tp", "to", "t", "w", "cost", "time", "overhead", "tcomm", "tcomp", "ttotal":
		return timeU
	case "eff", "efficiency", "speedup", "k":
		return dimlessU
	case "words", "nwords", "wordcount":
		return wordsU
	}
	lower := strings.ToLower(name)
	switch {
	case strings.Contains(lower, "efficiency") || strings.Contains(lower, "speedup") ||
		strings.Contains(lower, "fraction") || strings.Contains(lower, "ratio") ||
		strings.Contains(lower, "utilization"):
		return dimlessU
	case strings.Contains(lower, "word"):
		return wordsU
	case strings.Contains(lower, "time") || strings.Contains(lower, "cost") ||
		strings.Contains(lower, "overhead") || strings.Contains(lower, "flop"):
		return timeU
	}
	return funcAffixUnit(name)
}

// fieldUnit maps a struct field name to a unit: the machine's cost
// constants and the simulator's measured times.
func fieldUnit(name string) unit {
	switch name {
	case "Ts", "Tw", "Th", "Tc", "Tp", "To", "W", "Time", "Cost", "Overhead":
		return timeU
	}
	return nameUnit(name)
}

// funcNameUnit maps a function or method name to its result's unit.
func funcNameUnit(name string) unit {
	// NEqualTo and friends solve "n such that To equals …": the result
	// is a matrix order, not an overhead, despite the To suffix.
	if strings.Contains(name, "NEqual") {
		return unknownU
	}
	lower := strings.ToLower(name)
	switch {
	case strings.Contains(lower, "efficiency") || strings.Contains(lower, "speedup") ||
		strings.Contains(lower, "fraction") || strings.Contains(lower, "ratio") ||
		strings.Contains(lower, "utilization"):
		return dimlessU
	case strings.Contains(lower, "word"):
		return wordsU
	case strings.Contains(lower, "time") || strings.Contains(lower, "cost") ||
		strings.Contains(lower, "overhead") || strings.Contains(lower, "flop"):
		return timeU
	case name == "K":
		return dimlessU
	}
	return funcAffixUnit(name)
}

// funcAffixUnit recognizes the paper's symbol suffixes (…Tp, …To, …W)
// and the to-prefix naming of overhead closures (to, toX, dnsTo).
func funcAffixUnit(name string) unit {
	for _, suf := range [...]string{"Tp", "To", "Ts", "Tw", "Th", "W"} {
		if strings.HasSuffix(name, suf) {
			return timeU
		}
	}
	if name == "to" {
		return timeU
	}
	if strings.HasPrefix(name, "to") && len(name) > 2 {
		r := rune(name[2])
		if unicode.IsUpper(r) || unicode.IsDigit(r) {
			return timeU
		}
	}
	return unknownU
}

func isFloat64(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

func isFuncType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

func (c *checker) report(pos token.Pos, format string, args ...interface{}) {
	line := c.pass.Fset.Position(pos).Line
	if c.reviewed[line] || c.reviewed[line-1] {
		return
	}
	msg := "unit mismatch: " + format + " (or annotate " + reviewedMarker + " after review)"
	c.pass.Reportf(pos, msg, args...)
}

// exprString renders a short description of e for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.BinaryExpr:
		return exprString(e.X) + " " + e.Op.String() + " " + exprString(e.Y)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	case *ast.BasicLit:
		return e.Value
	}
	return "expression"
}
