package accretion_test

import (
	"path/filepath"
	"testing"

	"matscale/internal/analysis/accretion"
	"matscale/internal/analysis/analyzertest"
)

func TestAccretion(t *testing.T) {
	analyzertest.Run(t, filepath.Join("testdata"), accretion.Analyzer,
		"matscale/internal/model", "clean")
}
