// Package clean is outside the cost-doc contract's scope: float64 API
// here needs no unit vocabulary.
package clean

func Plain(x float64) float64 {
	return x * 2
}
