// Fixture for the accretion analyzer: package path matches the real
// model package, so the unit-documentation contract applies.
package model

// Tp returns the parallel execution time in flop units (ts, tw
// normalized so one multiply-add is 1).
func Tp(n, p int) float64 { // documented with units: no diagnostic
	return float64(n * n * n / p)
}

func Mystery(n int) float64 { // want `exported Mystery returns float64 but has no doc comment`
	return float64(n)
}

// Vague produces a handy number for callers.
func Vague(n int) float64 { // want `doc comment of Vague does not state its cost-model units`
	return float64(n)
}

// Params is an exported carrier type.
type Params struct {
	N int
}

// Overhead returns To = p·Tp − W in flop units.
func (p Params) Overhead(tp float64, procs int) float64 { // documented: no diagnostic
	return float64(procs)*tp - float64(p.N)
}

func (p Params) Bare() float64 { // want `exported Bare returns float64 but has no doc comment`
	return float64(p.N)
}

// Count returns how many processors the paper's Table 1 lists. Not a
// float64, so no units are demanded.
func Count() int {
	return 5
}

// helper is unexported: out of scope regardless of documentation.
func helper() float64 {
	return 1
}

func Opaque(n int) float64 { //accretion:reviewed raw scratch value, carries no cost-model unit
	return float64(n)
}

//accretion:reviewed progress fraction for the UI, not a cost-model quantity
func Fraction(n int) float64 {
	return float64(n) / 100
}

type internalParams struct{ n int }

// Value returns a number; the receiver type is unexported, so this is
// not exported API.
func (ip internalParams) Value() float64 {
	return float64(ip.n)
}
