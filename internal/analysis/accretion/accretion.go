// Package accretion defines an analyzer enforcing the unit-
// documentation contract: in the cost-model packages (machine, model,
// iso) every exported function or method that returns a float64 is
// returning a quantity in the paper's normalized units — flop times,
// ts/tw multiples, words, or a derived ratio — and its doc comment must
// say which. The paper's accounting only composes because every number
// is in the same currency; an undocumented float is how a caller ends
// up adding a time to an efficiency.
package accretion

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"matscale/internal/analysis/config"
)

// Doc is the analyzer's long-form description.
const Doc = `require cost-model units in doc comments of exported float64 API

Exported functions and methods returning float64 in the cost-model
packages must carry a doc comment naming the quantity's units: ts, tw,
flops, words, time, cost, efficiency, speedup, or another term from the
paper's vocabulary. New API accreted without this is flagged. A
reviewed exception (a float64 that genuinely carries no cost-model
unit) is annotated '//accretion:reviewed'.`

// Analyzer is the accretion analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "accretion",
	Doc:  Doc,
	Run:  run,
}

// reviewedMarker suppresses a diagnostic on its line (or the line
// below it), asserting the undocumented float64 was reviewed.
const reviewedMarker = "//accretion:reviewed"

func run(pass *analysis.Pass) (interface{}, error) {
	if !config.CostDoc(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if config.TestFile(pass.Fset, f.Pos()) {
			continue
		}
		reviewed := config.MarkedLines(pass.Fset, f, reviewedMarker)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !exportedAPI(fd) || !returnsFloat(pass, fd) {
				continue
			}
			if config.SuppressedAt(reviewed, pass.Fset, fd.Name.Pos()) {
				continue
			}
			doc := fd.Doc.Text()
			switch {
			case doc == "":
				pass.Reportf(fd.Name.Pos(), "exported %s returns float64 but has no doc comment; document the quantity's cost-model units (ts, tw, flops, …)", fd.Name.Name)
			case !config.UnitDocPattern.MatchString(doc):
				pass.Reportf(fd.Name.Pos(), "doc comment of %s does not state its cost-model units (ts, tw, flops, time, …); name the quantity it returns", fd.Name.Name)
			}
		}
	}
	return nil, nil
}

// exportedAPI reports whether fd is part of the package's exported
// surface: an exported function, or an exported method on an exported
// receiver type.
func exportedAPI(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	return ast.IsExported(receiverTypeName(fd.Recv.List[0].Type))
}

// receiverTypeName extracts the receiver's type name.
func receiverTypeName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// returnsFloat reports whether any result of fd has float64 type.
func returnsFloat(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, r := range fd.Type.Results.List {
		t := pass.TypesInfo.TypeOf(r.Type)
		if t == nil {
			continue
		}
		if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.Float64 {
			return true
		}
	}
	return false
}
