package analysis_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// goTool returns the go command of the running toolchain.
func goTool(t *testing.T) string {
	t.Helper()
	tool := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(tool); err != nil {
		t.Skipf("go tool not found at %s: %v", tool, err)
	}
	return tool
}

// repoRoot locates the module root (the directory containing go.mod).
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestRepoIsVetClean is the suite's meta-test: it builds the
// matscale-vet vettool exactly as `make vet` does and runs it across
// the module, asserting the tree satisfies its own contracts. Every
// analyzer's ability to fire is proven separately by its fixture test;
// this test proves the production tree is clean.
func TestRepoIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("meta-test builds the module; skipped in -short mode")
	}
	go_ := goTool(t)
	root := repoRoot(t)

	tool := filepath.Join(t.TempDir(), "matscale-vet")
	build := exec.Command(go_, "build", "-o", tool, "./cmd/matscale-vet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building matscale-vet: %v\n%s", err, out)
	}

	vet := exec.Command(go_, "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool=matscale-vet ./... failed: %v\n%s", err, out)
	} else if s := strings.TrimSpace(string(out)); s != "" {
		t.Logf("vet output (non-fatal): %s", s)
	}
}
