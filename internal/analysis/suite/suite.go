// Package suite assembles the matscale-vet analyzers. cmd/matscale-vet
// and the meta-test both consume this list, so the vettool binary and
// the repository's own gate can never disagree about what is enforced.
package suite

import (
	"golang.org/x/tools/go/analysis"

	"matscale/internal/analysis/accretion"
	"matscale/internal/analysis/clockguard"
	"matscale/internal/analysis/costcharge"
	"matscale/internal/analysis/nodetbreak"
	"matscale/internal/analysis/ownflow"
	"matscale/internal/analysis/seedflow"
	"matscale/internal/analysis/unitflow"
)

// All returns the full matscale-vet analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		accretion.Analyzer,
		clockguard.Analyzer,
		costcharge.Analyzer,
		nodetbreak.Analyzer,
		ownflow.Analyzer,
		seedflow.Analyzer,
		unitflow.Analyzer,
	}
}
