// Package consumer is outside the clock-owner set, so guarded fields
// are read-only here.
package consumer

import (
	"matscale/internal/machine"
	"matscale/internal/simulator"
)

func Tamper(m *machine.Machine, res *simulator.Result, met *simulator.Metrics) float64 {
	m.Ts = 5                 // want `write to machine\.Machine\.Ts outside internal/machine`
	m.Tw = 3                 // want `write to machine\.Machine\.Tw outside internal/machine`
	m.AllPort = true         // want `write to machine\.Machine\.AllPort outside internal/machine`
	m.Routing = 1            // want `write to machine\.Machine\.Routing outside internal/machine`
	m.TrackContention = true // unguarded observability flag: allowed
	res.Tp = 0               // want `write to simulator\.Result\.Tp outside internal/simulator`
	res.P++                  // want `write to simulator\.Result\.P outside internal/simulator`
	met.Ranks[0].Compute = 1 // want `write to simulator\.RankMetrics\.Compute outside internal/simulator`
	s := simulator.Scratch{}
	s.N = 7                             // unguarded type: allowed
	return m.Ts + res.Tp + float64(s.N) // reads are always fine
}

func ReviewedTamper(m *machine.Machine, res *simulator.Result) {
	m.Ts = 9 //clockguard:reviewed test harness rebuilds the machine afterwards
	//clockguard:reviewed synthetic result constructed for a golden file
	res.Tp = 2.5
}
