// Stub of the real machine package: just enough structure for the
// clockguard fixtures to resolve field selections against the guarded
// type and field names.
package machine

// Routing selects how multi-hop messages are charged.
type Routing int

// Machine mirrors the guarded cost fields of the real Machine plus one
// unguarded observability flag.
type Machine struct {
	Ts, Tw, Th      float64
	Routing         Routing
	AllPort         bool
	TrackContention bool
}

// SetCost mutates cost constants inside the owner package: allowed.
func (m *Machine) SetCost(ts, tw float64) {
	m.Ts = ts
	m.Tw = tw
}
