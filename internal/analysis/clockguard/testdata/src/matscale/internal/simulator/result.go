// Stub of the real simulator package: the guarded measurement types.
package simulator

// Result mirrors the measured-output carrier of the real simulator.
type Result struct {
	P  int
	Tp float64
}

// Metrics mirrors the per-run breakdown carrier.
type Metrics struct {
	Tp    float64
	Ranks []RankMetrics
}

// RankMetrics mirrors one rank's budget row.
type RankMetrics struct {
	Rank    int
	Compute float64
}

// Scratch is NOT a guarded type; writes to it are fine anywhere.
type Scratch struct {
	N int
}
