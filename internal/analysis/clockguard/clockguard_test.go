package clockguard_test

import (
	"path/filepath"
	"testing"

	"matscale/internal/analysis/analyzertest"
	"matscale/internal/analysis/clockguard"
)

func TestClockguard(t *testing.T) {
	analyzertest.Run(t, filepath.Join("testdata"), clockguard.Analyzer,
		"consumer",
		// The owner packages themselves may mutate freely: the machine
		// stub contains a SetCost method and must produce no diagnostics.
		"matscale/internal/machine",
		"matscale/internal/simulator")
}
