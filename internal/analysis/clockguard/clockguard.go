// Package clockguard defines an analyzer enforcing the clock-ownership
// contract: the machine's cost constants (Ts, Tw, Th, Routing, AllPort)
// and the simulator's measurement carriers (Result, Metrics,
// RankMetrics, LinkMetrics, Degradation, Trace, Event) may only be
// mutated inside internal/machine and internal/simulator. Everywhere
// else they are read-only: a caller that rewrites Ts mid-run changes
// the meaning of every later charge, and a caller that edits a Result
// falsifies the accounting identity To = p·Tp − W the paper's analysis
// rests on. Copies are configured through the With* helpers on Machine.
package clockguard

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"matscale/internal/analysis/config"
)

// Doc is the analyzer's long-form description.
const Doc = `forbid mutation of cost constants and measured results outside their owners

machine.Machine's cost fields and the simulator's result/metrics types
may only be written inside internal/machine and internal/simulator.
Other packages read them; configured variants are derived with the
Machine.With* helpers, never by assigning fields in place. A reviewed
exception is annotated '//clockguard:reviewed'.`

// Analyzer is the clockguard analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "clockguard",
	Doc:  Doc,
	Run:  run,
}

// reviewedMarker suppresses a diagnostic on its line (or the line
// below it), asserting the guarded write was reviewed.
const reviewedMarker = "//clockguard:reviewed"

func run(pass *analysis.Pass) (interface{}, error) {
	if config.ClockOwner(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if config.TestFile(pass.Fset, f.Pos()) {
			continue
		}
		reviewed := config.MarkedLines(pass.Fset, f, reviewedMarker)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkWrite(pass, reviewed, lhs)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, reviewed, n.X)
			}
			return true
		})
	}
	return nil, nil
}

// checkWrite reports lhs when it is a selector writing a guarded field.
func checkWrite(pass *analysis.Pass, reviewed map[int]bool, lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || field.Pkg() == nil {
		return
	}
	if config.SuppressedAt(reviewed, pass.Fset, sel.Sel.Pos()) {
		return
	}
	owner := ownerName(s.Recv())
	switch field.Pkg().Path() {
	case config.MachinePath:
		if owner == "Machine" && config.GuardedMachineField(field.Name()) {
			pass.Reportf(sel.Sel.Pos(), "write to machine.Machine.%s outside internal/machine: cost constants are read-only once constructed; derive a configured copy with a Machine.With* helper", field.Name())
		}
	case config.SimulatorPath:
		if config.GuardedSimulatorType(owner) && field.Exported() {
			pass.Reportf(sel.Sel.Pos(), "write to simulator.%s.%s outside internal/simulator: measured results are read-only; mutating them falsifies To = p·Tp − W", owner, field.Name())
		}
	}
}

// ownerName returns the name of the named type (after pointer
// indirection) a field selection dereferences, or "".
func ownerName(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
