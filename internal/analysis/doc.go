// Package analysis hosts the matscale-vet analyzer suite: custom
// go/analysis passes that machine-check the contracts the repository's
// numbers depend on. The paper's accounting — Tp from the virtual
// clock, To = p·Tp − W, efficiency and isoefficiency derived from them
// — is only meaningful if (a) every transfer is charged through the
// ts + tw·m postal model and (b) a run is byte-identical for a fixed
// seed. Generic linters cannot see those domain contracts; these
// analyzers can.
//
// Subpackages:
//
//   - config: the single source of truth classifying which packages
//     each contract binds.
//   - nodetbreak: forbids wall clocks, the global rand source,
//     scheduler introspection, and order-sensitive map iteration in
//     deterministic packages.
//   - costcharge: forbids raw channels, select, goroutines, and sync
//     primitives in formulation packages — communication must be
//     charged through the simulator's Proc API.
//   - clockguard: machine cost constants and simulator results are
//     read-only outside internal/machine and internal/simulator.
//   - seedflow: seed parameters must be threaded, never dropped.
//   - accretion: exported float64 API in cost-model packages must
//     document its units.
//   - suite: the assembled analyzer list shared by cmd/matscale-vet
//     and the meta-test.
//   - analyzertest: a self-contained fixture harness (the vendored
//     x/tools subset does not include analysistest).
//
// See docs/ANALYSIS.md for the full contract rationale.
package analysis
