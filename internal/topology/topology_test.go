package topology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLog2(t *testing.T) {
	cases := []struct {
		p  int
		k  int
		ok bool
	}{
		{1, 0, true}, {2, 1, true}, {4, 2, true}, {1024, 10, true},
		{0, 0, false}, {-4, 0, false}, {3, 0, false}, {12, 0, false},
	}
	for _, c := range cases {
		k, ok := Log2(c.p)
		if ok != c.ok || (ok && k != c.k) {
			t.Errorf("Log2(%d) = (%d,%v), want (%d,%v)", c.p, k, ok, c.k, c.ok)
		}
	}
}

func TestHypercubeBasics(t *testing.T) {
	h := NewHypercube(16)
	if h.Size() != 16 || h.Dim != 4 {
		t.Fatalf("size=%d dim=%d, want 16/4", h.Size(), h.Dim)
	}
	if d := h.Distance(0b0000, 0b1011); d != 3 {
		t.Fatalf("Distance = %d, want 3", d)
	}
	if d := h.Distance(7, 7); d != 0 {
		t.Fatalf("self distance = %d, want 0", d)
	}
	nbrs := h.Neighbors(5)
	if len(nbrs) != 4 {
		t.Fatalf("neighbors = %v, want 4 entries", nbrs)
	}
	for _, n := range nbrs {
		if h.Distance(5, n) != 1 {
			t.Fatalf("neighbor %d of 5 at distance %d", n, h.Distance(5, n))
		}
	}
	if h.NeighborAcross(5, 1) != 7 {
		t.Fatalf("NeighborAcross(5,1) = %d, want 7", h.NeighborAcross(5, 1))
	}
}

func TestHypercubePanics(t *testing.T) {
	t.Run("size", func(t *testing.T) {
		defer expectPanic(t, "power of two")
		NewHypercube(6)
	})
	t.Run("rank", func(t *testing.T) {
		h := NewHypercube(4)
		defer expectPanic(t, "out of range")
		h.Distance(0, 4)
	})
	t.Run("dim", func(t *testing.T) {
		h := NewHypercube(4)
		defer expectPanic(t, "dimension")
		h.NeighborAcross(0, 2)
	})
}

func TestFullyConnected(t *testing.T) {
	f := NewFullyConnected(5)
	if f.Size() != 5 {
		t.Fatalf("size = %d", f.Size())
	}
	if f.Distance(1, 4) != 1 || f.Distance(2, 2) != 0 {
		t.Fatal("fully connected distances wrong")
	}
	if n := f.Neighbors(2); len(n) != 4 {
		t.Fatalf("neighbors = %v", n)
	}
	defer expectPanic(t, "must be positive")
	NewFullyConnected(0)
}

func TestGrayAdjacency(t *testing.T) {
	h := NewHypercube(32)
	for i := 0; i < 32; i++ {
		a, b := Gray(i), Gray((i+1)%32)
		if h.Distance(a, b) != 1 {
			t.Fatalf("Gray(%d)=%d and Gray(%d)=%d are not hypercube neighbors", i, a, (i+1)%32, b)
		}
	}
}

func TestGrayInverseRoundTrip(t *testing.T) {
	f := func(x uint16) bool {
		i := int(x)
		return GrayInverse(Gray(i)) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrayIsPermutation(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		g := Gray(i)
		if g < 0 || g >= 64 || seen[g] {
			t.Fatalf("Gray not a permutation at i=%d (g=%d)", i, g)
		}
		seen[g] = true
	}
}

func TestTorusCoordsRoundTrip(t *testing.T) {
	tr := NewTorus2D(3, 5)
	for r := 0; r < tr.Size(); r++ {
		i, j := tr.Coords(r)
		if tr.RankAt(i, j) != r {
			t.Fatalf("coords round trip failed for rank %d", r)
		}
	}
}

func TestTorusWrap(t *testing.T) {
	tr := NewTorus2D(4, 4)
	if tr.RankAt(-1, 0) != tr.RankAt(3, 0) {
		t.Fatal("negative row did not wrap")
	}
	if tr.RankAt(0, 4) != tr.RankAt(0, 0) {
		t.Fatal("overflow column did not wrap")
	}
	if tr.Left(tr.RankAt(2, 0)) != tr.RankAt(2, 3) {
		t.Fatal("Left at column 0 did not wrap")
	}
	if tr.Up(tr.RankAt(0, 2)) != tr.RankAt(3, 2) {
		t.Fatal("Up at row 0 did not wrap")
	}
	if tr.Right(tr.RankAt(1, 3)) != tr.RankAt(1, 0) {
		t.Fatal("Right at last column did not wrap")
	}
	if tr.Down(tr.RankAt(3, 1)) != tr.RankAt(0, 1) {
		t.Fatal("Down at last row did not wrap")
	}
}

func TestTorusDistance(t *testing.T) {
	tr := NewTorus2D(8, 8)
	if d := tr.Distance(tr.RankAt(0, 0), tr.RankAt(7, 7)); d != 2 {
		t.Fatalf("wraparound distance = %d, want 2", d)
	}
	if d := tr.Distance(tr.RankAt(0, 0), tr.RankAt(4, 4)); d != 8 {
		t.Fatalf("antipodal distance = %d, want 8", d)
	}
}

func TestTorusNeighbors(t *testing.T) {
	tr := NewTorus2D(4, 4)
	n := tr.Neighbors(tr.RankAt(1, 1))
	if len(n) != 4 {
		t.Fatalf("interior torus node has %d neighbors, want 4", len(n))
	}
	// Degenerate 1×2 torus: left and right neighbor coincide.
	small := NewTorus2D(1, 2)
	if n := small.Neighbors(0); len(n) != 1 {
		t.Fatalf("1x2 torus neighbors = %v, want one", n)
	}
}

func TestTorusRowColRanks(t *testing.T) {
	tr := NewTorus2D(3, 4)
	row := tr.RowRanks(1)
	if len(row) != 4 || row[0] != 4 || row[3] != 7 {
		t.Fatalf("RowRanks(1) = %v", row)
	}
	col := tr.ColRanks(2)
	if len(col) != 3 || col[0] != 2 || col[2] != 10 {
		t.Fatalf("ColRanks(2) = %v", col)
	}
}

func TestTorusPanics(t *testing.T) {
	t.Run("new", func(t *testing.T) {
		defer expectPanic(t, "must be positive")
		NewTorus2D(0, 3)
	})
	t.Run("square", func(t *testing.T) {
		defer expectPanic(t, "square mesh")
		NewSquareTorus(12)
	})
	t.Run("row", func(t *testing.T) {
		tr := NewTorus2D(2, 2)
		defer expectPanic(t, "out of range")
		tr.RowRanks(2)
	})
	t.Run("col", func(t *testing.T) {
		tr := NewTorus2D(2, 2)
		defer expectPanic(t, "out of range")
		tr.ColRanks(-1)
	})
}

func TestSquareTorus(t *testing.T) {
	tr := NewSquareTorus(16)
	if tr.R != 4 || tr.C != 4 {
		t.Fatalf("square torus %dx%d, want 4x4", tr.R, tr.C)
	}
}

func TestGrid3DCoordsRoundTrip(t *testing.T) {
	g := NewGrid3D(4)
	if g.Size() != 64 {
		t.Fatalf("size = %d, want 64", g.Size())
	}
	for r := 0; r < g.Size(); r++ {
		i, j, k := g.Coords(r)
		if g.RankOf(i, j, k) != r {
			t.Fatalf("coords round trip failed for rank %d", r)
		}
	}
	// The paper's numbering: r = i·q² + j·q + k.
	if g.RankOf(1, 2, 3) != 16+8+3 {
		t.Fatalf("RankOf(1,2,3) = %d, want 27", g.RankOf(1, 2, 3))
	}
}

func TestGrid3DHypercubeDistance(t *testing.T) {
	g := NewGrid3D(4) // q=4 is a power of two: hypercube of dim 6
	a := g.RankOf(0, 0, 0)
	b := g.RankOf(3, 0, 0)
	if d := g.Distance(a, b); d != 2 {
		t.Fatalf("distance (0,0,0)->(3,0,0) = %d, want 2 (Hamming of 3)", d)
	}
	h := NewHypercube(64)
	for trial := 0; trial < 100; trial++ {
		x, y := (trial*37)%64, (trial*53)%64
		if g.Distance(x, y) != h.Distance(x, y) {
			t.Fatalf("grid3d distance disagrees with hypercube for %d,%d", x, y)
		}
	}
}

func TestGrid3DNonPow2Distance(t *testing.T) {
	g := NewGrid3D(3)
	a := g.RankOf(0, 0, 0)
	b := g.RankOf(2, 2, 2)
	if d := g.Distance(a, b); d != 3 {
		t.Fatalf("wraparound distance = %d, want 3", d)
	}
}

func TestGrid3DNeighbors(t *testing.T) {
	g := NewGrid3D(4)
	n := g.Neighbors(g.RankOf(1, 2, 3))
	if len(n) != 6 { // 3 fields × 2 bits
		t.Fatalf("pow2 grid neighbors = %d, want 6", len(n))
	}
	for _, x := range n {
		if g.Distance(g.RankOf(1, 2, 3), x) != 1 {
			t.Fatalf("neighbor %d not at distance 1", x)
		}
	}
	g3 := NewGrid3D(3)
	if n := g3.Neighbors(g3.RankOf(1, 1, 1)); len(n) != 6 {
		t.Fatalf("grid3 neighbors = %d, want 6", len(n))
	}
}

func TestGrid3DAxisLine(t *testing.T) {
	g := NewGrid3D(4)
	line := g.AxisLine(2, 1, 2) // i=1, j=2, k varies
	if len(line) != 4 {
		t.Fatalf("line length %d", len(line))
	}
	for k, r := range line {
		if r != g.RankOf(1, 2, k) {
			t.Fatalf("axis line entry %d = %d", k, r)
		}
	}
	iline := g.AxisLine(0, 2, 3) // i varies, j=2, k=3
	if iline[1] != g.RankOf(1, 2, 3) {
		t.Fatal("axis 0 line wrong")
	}
	jline := g.AxisLine(1, 1, 0) // i=1, j varies, k=0
	if jline[3] != g.RankOf(1, 3, 0) {
		t.Fatal("axis 1 line wrong")
	}
}

func TestGrid3DPanics(t *testing.T) {
	t.Run("side", func(t *testing.T) {
		defer expectPanic(t, "must be positive")
		NewGrid3D(0)
	})
	t.Run("cube", func(t *testing.T) {
		defer expectPanic(t, "do not form a cube")
		NewGrid3DFromProcs(10)
	})
	t.Run("axis", func(t *testing.T) {
		g := NewGrid3D(2)
		defer expectPanic(t, "axis")
		g.AxisLine(3, 0, 0)
	})
	t.Run("coord", func(t *testing.T) {
		g := NewGrid3D(2)
		defer expectPanic(t, "out of range")
		g.RankOf(2, 0, 0)
	})
}

func TestIntSqrt(t *testing.T) {
	for n := 0; n < 10000; n++ {
		s := IntSqrt(n)
		if s*s > n || (s+1)*(s+1) <= n {
			t.Fatalf("IntSqrt(%d) = %d", n, s)
		}
	}
	if IntSqrt(1<<40) != 1<<20 {
		t.Fatal("IntSqrt large value wrong")
	}
}

func TestIntCbrt(t *testing.T) {
	for n := 0; n < 5000; n++ {
		c := IntCbrt(n)
		if c*c*c > n || (c+1)*(c+1)*(c+1) <= n {
			t.Fatalf("IntCbrt(%d) = %d", n, c)
		}
	}
}

// Property: hypercube distance is a metric (symmetry + triangle
// inequality) and bounded by the dimension.
func TestQuickHypercubeMetric(t *testing.T) {
	h := NewHypercube(64)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%64, int(b)%64, int(c)%64
		dxy, dyz, dxz := h.Distance(x, y), h.Distance(y, z), h.Distance(x, z)
		return dxy == h.Distance(y, x) && dxz <= dxy+dyz && dxy <= h.Dim
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every Neighbors result is symmetric (a lists b iff b lists
// a) across all topologies.
func TestQuickNeighborSymmetry(t *testing.T) {
	tops := []Topology{NewHypercube(16), NewTorus2D(4, 4), NewGrid3D(2), NewFullyConnected(7), NewGrid3D(3)}
	for _, tp := range tops {
		for a := 0; a < tp.Size(); a++ {
			for _, b := range tp.Neighbors(a) {
				if !contains(tp.Neighbors(b), a) {
					t.Fatalf("%s: %d lists %d but not vice versa", tp.Name(), a, b)
				}
			}
		}
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func expectPanic(t *testing.T, substr string) {
	t.Helper()
	r := recover()
	if r == nil {
		t.Fatalf("expected panic containing %q, got none", substr)
	}
	msg, ok := r.(string)
	if !ok {
		t.Fatalf("panic value %v (%T) is not a string", r, r)
	}
	if !strings.Contains(msg, substr) {
		t.Fatalf("panic %q does not contain %q", msg, substr)
	}
}

func TestEmbedTorusInHypercubeIsBijection(t *testing.T) {
	tr := NewTorus2D(8, 4)
	emb := EmbedTorusInHypercube(tr)
	seen := map[int]bool{}
	for _, phys := range emb {
		if phys < 0 || phys >= tr.Size() || seen[phys] {
			t.Fatalf("embedding not a bijection: %v", emb)
		}
		seen[phys] = true
	}
}

func TestEmbedTorusNeighborsAreHypercubeNeighbors(t *testing.T) {
	// The property the simulator's neighbor-charging contract rests on:
	// every torus edge (including wraparound) maps to a hypercube edge.
	for _, dims := range [][2]int{{2, 2}, {4, 4}, {8, 8}, {4, 16}} {
		tr := NewTorus2D(dims[0], dims[1])
		emb := EmbedTorusInHypercube(tr)
		h := NewHypercube(tr.Size())
		for r := 0; r < tr.Size(); r++ {
			for _, nb := range []int{tr.Left(r), tr.Right(r), tr.Up(r), tr.Down(r)} {
				if nb == r {
					continue // degenerate side of length 1 or 2
				}
				if d := h.Distance(emb[r], emb[nb]); d != 1 {
					t.Fatalf("%dx%d: torus edge %d-%d maps to hypercube distance %d", dims[0], dims[1], r, nb, d)
				}
			}
		}
	}
}

func TestEmbedTorusNonPow2Panics(t *testing.T) {
	defer expectPanic(t, "powers of two")
	EmbedTorusInHypercube(NewTorus2D(3, 4))
}

// The DNS/GK axis-line groups are bit-field subcubes: binomial-tree
// partners (indices differing in one bit) are physical hypercube
// neighbors without any re-embedding.
func TestGrid3DAxisLinesAreSubcubes(t *testing.T) {
	g := NewGrid3D(8)
	h := NewHypercube(g.Size())
	for axis := 0; axis < 3; axis++ {
		line := g.AxisLine(axis, 3, 5)
		for x := 0; x < len(line); x++ {
			for s := 0; 1<<s < len(line); s++ {
				partner := x ^ 1<<s
				if d := h.Distance(line[x], line[partner]); d != 1 {
					t.Fatalf("axis %d: line indices %d,%d at hypercube distance %d", axis, x, partner, d)
				}
			}
		}
	}
}
