package topology

// Binary-reflected Gray codes. The paper's mesh and 3-D grid algorithms
// run on a hypercube by embedding the logical structure so that logical
// neighbors are physical neighbors; Gray codes provide that embedding
// (consecutive Gray codes differ in exactly one bit).

// Gray returns the i-th binary-reflected Gray code.
func Gray(i int) int { return i ^ (i >> 1) }

// GrayInverse returns the position of code g in the binary-reflected
// Gray sequence, i.e. GrayInverse(Gray(i)) == i.
func GrayInverse(g int) int {
	i := 0
	for g != 0 {
		i ^= g
		g >>= 1
	}
	return i
}

// EmbedTorusInHypercube returns the standard Gray-code embedding of a
// power-of-two wraparound mesh into the hypercube with the same number
// of processors: mesh position (i, j) maps to hypercube rank
// Gray(i)·C | Gray(j). Every torus neighbor pair (including the
// wraparound edges) maps to a hypercube neighbor pair, which is the
// property that lets the paper treat Cannon's shifts and the
// tree-structured collectives as single-hop transfers on a hypercube.
// The returned slice maps torus rank → hypercube rank and is a
// bijection.
func EmbedTorusInHypercube(t Torus2D) []int {
	_, okR := Log2(t.R)
	dc, okC := Log2(t.C)
	if !okR || !okC {
		panic("topology: torus sides must be powers of two to embed in a hypercube")
	}
	out := make([]int, t.Size())
	for i := 0; i < t.R; i++ {
		for j := 0; j < t.C; j++ {
			out[t.RankAt(i, j)] = Gray(i)<<dc | Gray(j)
		}
	}
	return out
}
