// Package topology models the interconnection networks of the paper:
// hypercubes, two-dimensional wraparound meshes (tori), the logical
// three-dimensional processor grid used by the DNS and GK algorithms,
// and a fully connected network standing in for the CM-5's fat tree
// (Section 9 of the paper treats the CM-5 as fully connected).
//
// A Topology provides structure (coordinates, neighbors) and the hop
// distance used by the communication cost model. All power-of-two
// logical structures (mesh rows/columns, 3-D grid lines) embed in the
// hypercube via binary-reflected Gray codes so that logical neighbors
// are physical hypercube neighbors, exactly as the paper assumes.
package topology

import "fmt"

// Topology is an interconnection network over ranks 0..Size()-1.
type Topology interface {
	// Size returns the number of processors.
	Size() int
	// Name identifies the topology for reports.
	Name() string
	// Distance returns the number of hops a message travels from a to b
	// under the topology's routing. Distance(a, a) == 0.
	Distance(a, b int) int
	// Neighbors returns the directly connected ranks of r.
	Neighbors(r int) []int
}

// Hypercube is a d-dimensional binary hypercube with 2^d processors.
// Routing is e-cube (dimension order); the hop count between two ranks
// is the Hamming distance of their binary representations.
type Hypercube struct{ Dim int }

// NewHypercube returns a hypercube with p = 2^k processors. It panics
// if p is not a positive power of two.
func NewHypercube(p int) Hypercube {
	d, ok := Log2(p)
	if !ok {
		panic(fmt.Sprintf("topology: hypercube size %d is not a power of two", p))
	}
	return Hypercube{Dim: d}
}

func (h Hypercube) Size() int    { return 1 << h.Dim }
func (h Hypercube) Name() string { return fmt.Sprintf("hypercube(d=%d)", h.Dim) }

func (h Hypercube) Distance(a, b int) int {
	h.checkRank(a)
	h.checkRank(b)
	return popcount(uint(a ^ b))
}

func (h Hypercube) Neighbors(r int) []int {
	h.checkRank(r)
	out := make([]int, h.Dim)
	for d := 0; d < h.Dim; d++ {
		out[d] = r ^ (1 << d)
	}
	return out
}

// NeighborAcross returns the rank adjacent to r across dimension d.
func (h Hypercube) NeighborAcross(r, d int) int {
	h.checkRank(r)
	if d < 0 || d >= h.Dim {
		panic(fmt.Sprintf("topology: hypercube dimension %d out of range [0,%d)", d, h.Dim))
	}
	return r ^ (1 << d)
}

func (h Hypercube) checkRank(r int) {
	if r < 0 || r >= h.Size() {
		panic(fmt.Sprintf("topology: rank %d out of range for %s", r, h.Name()))
	}
}

// FullyConnected is a complete graph: every pair of processors is one
// hop apart. The paper models the CM-5 this way (Section 9).
type FullyConnected struct{ N int }

// NewFullyConnected returns a fully connected network of p processors.
func NewFullyConnected(p int) FullyConnected {
	if p <= 0 {
		panic(fmt.Sprintf("topology: fully connected size %d must be positive", p))
	}
	return FullyConnected{N: p}
}

func (f FullyConnected) Size() int    { return f.N }
func (f FullyConnected) Name() string { return fmt.Sprintf("fully-connected(p=%d)", f.N) }

func (f FullyConnected) Distance(a, b int) int {
	f.checkRank(a)
	f.checkRank(b)
	if a == b {
		return 0
	}
	return 1
}

func (f FullyConnected) Neighbors(r int) []int {
	f.checkRank(r)
	out := make([]int, 0, f.N-1)
	for i := 0; i < f.N; i++ {
		if i != r {
			out = append(out, i)
		}
	}
	return out
}

func (f FullyConnected) checkRank(r int) {
	if r < 0 || r >= f.N {
		panic(fmt.Sprintf("topology: rank %d out of range for %s", r, f.Name()))
	}
}

// Log2 returns k with 2^k == p, and whether p is a positive power of
// two.
func Log2(p int) (int, bool) {
	if p <= 0 || p&(p-1) != 0 {
		return 0, false
	}
	k := 0
	for 1<<k < p {
		k++
	}
	return k, true
}

func popcount(x uint) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
