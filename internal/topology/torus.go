package topology

import "fmt"

// Torus2D is a wraparound two-dimensional processor mesh — the logical
// structure of the simple algorithm (Section 4.1), Cannon's algorithm
// (Section 4.2) and Fox's algorithm (Section 4.3). When both sides are
// powers of two the torus embeds in a hypercube with every torus
// neighbor a hypercube neighbor (Gray-code embedding), which is why the
// paper treats Cannon's algorithm identically on meshes and hypercubes.
type Torus2D struct{ R, C int }

// NewTorus2D returns an r×c wraparound mesh.
func NewTorus2D(r, c int) Torus2D {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("topology: torus %dx%d must be positive", r, c))
	}
	return Torus2D{R: r, C: c}
}

// NewSquareTorus returns a √p × √p wraparound mesh; p must be a perfect
// square.
func NewSquareTorus(p int) Torus2D {
	q := IntSqrt(p)
	if q*q != p {
		panic(fmt.Sprintf("topology: %d processors do not form a square mesh", p))
	}
	return NewTorus2D(q, q)
}

func (t Torus2D) Size() int    { return t.R * t.C }
func (t Torus2D) Name() string { return fmt.Sprintf("torus(%dx%d)", t.R, t.C) }

// RankAt returns the rank of the processor at mesh coordinates (i, j),
// wrapping both indices.
func (t Torus2D) RankAt(i, j int) int {
	i = mod(i, t.R)
	j = mod(j, t.C)
	return i*t.C + j
}

// Coords returns the mesh coordinates of rank r.
func (t Torus2D) Coords(r int) (i, j int) {
	t.checkRank(r)
	return r / t.C, r % t.C
}

// Distance returns the wraparound Manhattan hop distance.
func (t Torus2D) Distance(a, b int) int {
	ai, aj := t.Coords(a)
	bi, bj := t.Coords(b)
	return wrapDist(ai, bi, t.R) + wrapDist(aj, bj, t.C)
}

func (t Torus2D) Neighbors(r int) []int {
	i, j := t.Coords(r)
	set := map[int]bool{}
	var out []int
	for _, n := range []int{t.RankAt(i-1, j), t.RankAt(i+1, j), t.RankAt(i, j-1), t.RankAt(i, j+1)} {
		if n != r && !set[n] {
			set[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Left, Right, Up and Down return the wraparound neighbor ranks used by
// the shift steps of Cannon's and Fox's algorithms.
func (t Torus2D) Left(r int) int  { i, j := t.Coords(r); return t.RankAt(i, j-1) }
func (t Torus2D) Right(r int) int { i, j := t.Coords(r); return t.RankAt(i, j+1) }
func (t Torus2D) Up(r int) int    { i, j := t.Coords(r); return t.RankAt(i-1, j) }
func (t Torus2D) Down(r int) int  { i, j := t.Coords(r); return t.RankAt(i+1, j) }

// RowRanks returns the ranks of mesh row i in column order.
func (t Torus2D) RowRanks(i int) []int {
	if i < 0 || i >= t.R {
		panic(fmt.Sprintf("topology: row %d out of range for %s", i, t.Name()))
	}
	out := make([]int, t.C)
	for j := range out {
		out[j] = t.RankAt(i, j)
	}
	return out
}

// ColRanks returns the ranks of mesh column j in row order.
func (t Torus2D) ColRanks(j int) []int {
	if j < 0 || j >= t.C {
		panic(fmt.Sprintf("topology: column %d out of range for %s", j, t.Name()))
	}
	out := make([]int, t.R)
	for i := range out {
		out[i] = t.RankAt(i, j)
	}
	return out
}

func (t Torus2D) checkRank(r int) {
	if r < 0 || r >= t.Size() {
		panic(fmt.Sprintf("topology: rank %d out of range for %s", r, t.Name()))
	}
}

func wrapDist(a, b, n int) int {
	d := mod(a-b, n)
	if n-d < d {
		d = n - d
	}
	return d
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// IntSqrt returns floor(sqrt(n)) for n ≥ 0 using integer Newton
// iteration (exact, unlike a float round-trip for large n).
func IntSqrt(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("topology: IntSqrt of negative %d", n))
	}
	if n < 2 {
		return n
	}
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	return x
}
