package topology

import "fmt"

// Grid3D is the logical three-dimensional processor arrangement of the
// DNS and GK algorithms (Sections 4.5–4.6): p = q³ processors where
// processor r occupies position (i, j, k) with r = i·q² + j·q + k.
// When q is a power of two the grid is a hypercube whose address bits
// split into three fields of log q bits each — every axis line is a
// subcube, which is what makes the tree broadcasts and reductions of
// the DNS/GK algorithms possible in log q steps.
type Grid3D struct{ Q int }

// NewGrid3D returns a q×q×q grid; p = q³.
func NewGrid3D(q int) Grid3D {
	if q <= 0 {
		panic(fmt.Sprintf("topology: grid3d side %d must be positive", q))
	}
	return Grid3D{Q: q}
}

// NewGrid3DFromProcs returns the grid with p = q³ processors, panicking
// if p is not a perfect cube.
func NewGrid3DFromProcs(p int) Grid3D {
	q := IntCbrt(p)
	if q*q*q != p {
		panic(fmt.Sprintf("topology: %d processors do not form a cube", p))
	}
	return NewGrid3D(q)
}

func (g Grid3D) Size() int    { return g.Q * g.Q * g.Q }
func (g Grid3D) Name() string { return fmt.Sprintf("grid3d(%d^3)", g.Q) }

// RankOf returns the rank of position (i, j, k) using the paper's
// numbering r = i·q² + j·q + k.
func (g Grid3D) RankOf(i, j, k int) int {
	g.checkCoord(i)
	g.checkCoord(j)
	g.checkCoord(k)
	return i*g.Q*g.Q + j*g.Q + k
}

// Coords returns the (i, j, k) position of rank r.
func (g Grid3D) Coords(r int) (i, j, k int) {
	if r < 0 || r >= g.Size() {
		panic(fmt.Sprintf("topology: rank %d out of range for %s", r, g.Name()))
	}
	return r / (g.Q * g.Q), (r / g.Q) % g.Q, r % g.Q
}

// Distance is the hop count on the underlying hypercube when q is a
// power of two (Hamming distance of the concatenated coordinate
// fields); otherwise it falls back to the 3-D wraparound Manhattan
// distance.
func (g Grid3D) Distance(a, b int) int {
	if _, ok := Log2(g.Q); ok {
		ai, aj, ak := g.Coords(a)
		bi, bj, bk := g.Coords(b)
		return popcount(uint(ai^bi)) + popcount(uint(aj^bj)) + popcount(uint(ak^bk))
	}
	ai, aj, ak := g.Coords(a)
	bi, bj, bk := g.Coords(b)
	return wrapDist(ai, bi, g.Q) + wrapDist(aj, bj, g.Q) + wrapDist(ak, bk, g.Q)
}

// Neighbors returns hypercube neighbors when q is a power of two (each
// coordinate field flips one bit), otherwise the six grid neighbors.
func (g Grid3D) Neighbors(r int) []int {
	i, j, k := g.Coords(r)
	if d, ok := Log2(g.Q); ok {
		out := make([]int, 0, 3*d)
		for b := 0; b < d; b++ {
			out = append(out,
				g.RankOf(i^(1<<b), j, k),
				g.RankOf(i, j^(1<<b), k),
				g.RankOf(i, j, k^(1<<b)))
		}
		return out
	}
	set := map[int]bool{}
	var out []int
	for _, n := range []int{
		g.RankOf(mod(i-1, g.Q), j, k), g.RankOf(mod(i+1, g.Q), j, k),
		g.RankOf(i, mod(j-1, g.Q), k), g.RankOf(i, mod(j+1, g.Q), k),
		g.RankOf(i, j, mod(k-1, g.Q)), g.RankOf(i, j, mod(k+1, g.Q)),
	} {
		if n != r && !set[n] {
			set[n] = true
			out = append(out, n)
		}
	}
	return out
}

// AxisLine returns the ranks along one axis with the other two
// coordinates fixed. axis 0 varies i, 1 varies j, 2 varies k.
func (g Grid3D) AxisLine(axis, c1, c2 int) []int {
	out := make([]int, g.Q)
	for v := 0; v < g.Q; v++ {
		switch axis {
		case 0:
			out[v] = g.RankOf(v, c1, c2)
		case 1:
			out[v] = g.RankOf(c1, v, c2)
		case 2:
			out[v] = g.RankOf(c1, c2, v)
		default:
			panic(fmt.Sprintf("topology: axis %d out of range [0,3)", axis))
		}
	}
	return out
}

func (g Grid3D) checkCoord(c int) {
	if c < 0 || c >= g.Q {
		panic(fmt.Sprintf("topology: coordinate %d out of range for %s", c, g.Name()))
	}
}

// IntCbrt returns floor(cbrt(n)) for n ≥ 0.
func IntCbrt(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("topology: IntCbrt of negative %d", n))
	}
	x := 0
	for (x+1)*(x+1)*(x+1) <= n {
		x++
	}
	return x
}
