package experiments

import (
	"math"
	"strings"
	"testing"

	"matscale/internal/core"
	"matscale/internal/model"
)

var valParams = model.Params{Ts: 17, Tw: 3}

func TestIsoefficiencyValidationCannon(t *testing.T) {
	// Growing W along Cannon's isoefficiency curve must hold the
	// simulated efficiency at the target across a 64x processor range
	// (up to the rounding of n to a runnable multiple of √p).
	pts, err := IsoefficiencyValidation(valParams, 0.5, "cannon", []int{4, 16, 64, 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, pt := range pts {
		if math.Abs(pt.EMeasured-pt.ETarget) > 0.08 {
			t.Errorf("p=%d n=%d: measured E=%.3f, target %.2f", pt.P, pt.N, pt.EMeasured, pt.ETarget)
		}
	}
	// The prescribed problem sizes must grow superlinearly in p
	// (W ~ p^1.5 means n ~ p^0.5).
	if pts[3].N <= pts[0].N*3 {
		t.Errorf("n barely grew: %d -> %d across 64x processors", pts[0].N, pts[3].N)
	}
}

func TestIsoefficiencyValidationGK(t *testing.T) {
	pts, err := IsoefficiencyValidation(valParams, 0.6, "gk", []int{8, 64, 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if math.Abs(pt.EMeasured-pt.ETarget) > 0.08 {
			t.Errorf("p=%d n=%d: measured E=%.3f, target %.2f", pt.P, pt.N, pt.EMeasured, pt.ETarget)
		}
	}
	// GK's near-linear isoefficiency: n grows roughly like p^(1/3)·
	// polylog — much slower than Cannon's √p law.
	if float64(pts[2].N) > 12*float64(pts[0].N) {
		t.Errorf("GK problem growth implausibly fast: %d -> %d", pts[0].N, pts[2].N)
	}
	s := RenderIso("gk", pts)
	if !strings.Contains(s, "E simulated") {
		t.Errorf("render malformed:\n%s", s)
	}
}

func TestIsoefficiencyValidationUnknownAlgorithm(t *testing.T) {
	if _, err := IsoefficiencyValidation(valParams, 0.5, "nope", []int{4}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestPredictionAccuracyCrossValidation(t *testing.T) {
	// Race the four algorithms over a runnable grid and compare with
	// the Table 1 prediction. The prediction must either hit, or miss
	// with small regret (the predicted algorithm within 35% of the
	// winner) — Section 6's analysis is a coarse but sound guide.
	outcomes, err := PredictionAccuracy(valParams, []int{16, 32, 48, 64}, []int{64, 256, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) < 5 {
		t.Fatalf("only %d comparable cells", len(outcomes))
	}
	hits := 0
	for _, o := range outcomes {
		if o.Predicted == o.Actual {
			hits++
			continue
		}
		if r := o.Regret(); r > 1.35 {
			t.Errorf("n=%d p=%d: predicted %s (Tp=%.0f) but %s won (Tp=%.0f), regret %.2f",
				o.N, o.P, o.Predicted, o.PredictedTp, o.Actual, o.BestTp, r)
		}
	}
	if float64(hits) < 0.5*float64(len(outcomes)) {
		t.Errorf("prediction hit rate %d/%d below 50%%", hits, len(outcomes))
	}
	s := RenderPrediction(outcomes)
	if !strings.Contains(s, "predicted correctly") {
		t.Errorf("render malformed:\n%s", s)
	}
}

func TestSpeedupSaturation(t *testing.T) {
	pr := model.Params{Ts: 150, Tw: 3}
	pts, err := SpeedupSaturation(pr, core.Cannon, 64, []int{1, 4, 16, 64, 256, 1024, 4096})
	if err != nil {
		t.Fatal(err)
	}
	peak, fell := PeakSpeedup(pts)
	if !fell {
		t.Fatal("speedup never saturated for fixed n — Section 3's premise lost")
	}
	if peak.P <= 4 || peak.P >= 4096 {
		t.Fatalf("implausible peak at p=%d", peak.P)
	}
	// Serial baseline: exactly S=1, E=1 at p=1.
	if pts[0].Speedup != 1 || pts[0].Efficiency != 1 {
		t.Fatalf("p=1 point = %+v, want S=E=1", pts[0])
	}
	s := RenderSpeedup(64, pts)
	if !strings.Contains(s, "saturation") {
		t.Errorf("render missing saturation note:\n%s", s)
	}
}

func TestSpeedupSaturationPropagatesErrors(t *testing.T) {
	pr := model.Params{Ts: 1, Tw: 1}
	if _, err := SpeedupSaturation(pr, core.Cannon, 9, []int{4}); err == nil {
		t.Fatal("indivisible config accepted")
	}
}

func TestTsSweepWinnerFlips(t *testing.T) {
	// At fixed (n, p) the GK algorithm wins on high-startup machines
	// (its ts coefficient (5/3)·log p beats Cannon's 2·√p) and Cannon
	// wins as ts → 0 (its tw coefficient is smaller) — the machine-
	// dependence at the heart of Section 6.
	pts, err := TsSweep(3, 64, 64, []float64{0, 1, 10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Winner != "Cannon" {
		t.Fatalf("ts=0: winner %s, want Cannon", pts[0].Winner)
	}
	if pts[len(pts)-1].Winner != "GK" {
		t.Fatalf("ts=1000: winner %s, want GK", pts[len(pts)-1].Winner)
	}
	// The flip is monotone: once GK wins it keeps winning as ts grows.
	flipped := false
	for _, pt := range pts {
		if pt.Winner == "GK" {
			flipped = true
		} else if flipped {
			t.Fatalf("winner flipped back at ts=%v", pt.Ts)
		}
	}
	if s := RenderTsSweep(3, 64, 64, pts); !strings.Contains(s, "winner") {
		t.Errorf("render malformed:\n%s", s)
	}
}

func TestRunAllQuick(t *testing.T) {
	var sb strings.Builder
	if err := RunAll(&sb, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"Table 1", "Figure 1", "Figure 2", "Figure 3",
		"Section 6", "Section 7", "Section 8",
		"isoefficiency holds", "predictions vs simulated races", "saturation",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("RunAll output missing %q", frag)
		}
	}
	if strings.Contains(out, "Figure 4") {
		t.Error("quick mode should skip Figure 4")
	}
}
