package experiments

import (
	"strings"
	"testing"

	"matscale/internal/core"
	"matscale/internal/model"
)

func TestPeakSpeedupEmptyInput(t *testing.T) {
	peak, fell := PeakSpeedup(nil)
	if peak.P != 0 || peak.Speedup != 0 || fell {
		t.Fatalf("PeakSpeedup(nil) = %+v, %v; want zero point and no fall", peak, fell)
	}
}

func TestPeakSpeedupMonotoneRiseNeverFalls(t *testing.T) {
	pts := []SpeedupPoint{
		{P: 1, Speedup: 1},
		{P: 4, Speedup: 3.2},
		{P: 16, Speedup: 9.5},
	}
	peak, fell := PeakSpeedup(pts)
	if peak.P != 16 || fell {
		t.Fatalf("peak = %+v fell = %v; want peak at the last point, no fall", peak, fell)
	}
}

func TestPeakSpeedupDetectsSaturation(t *testing.T) {
	pts := []SpeedupPoint{
		{P: 1, Speedup: 1},
		{P: 16, Speedup: 8},
		{P: 64, Speedup: 5}, // fell past the peak
	}
	peak, fell := PeakSpeedup(pts)
	if peak.P != 16 || !fell {
		t.Fatalf("peak = %+v fell = %v; want peak at p=16 with a fall after", peak, fell)
	}
}

func TestTsSweepIdenticalAcrossWorkerCounts(t *testing.T) {
	tsValues := []float64{0, 10, 100, 1000}
	serial, err := TsSweepWorkers(3, 16, 64, tsValues, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := TsSweepWorkers(3, 16, 64, tsValues, 4)
	if err != nil {
		t.Fatal(err)
	}
	if RenderTsSweep(3, 16, 64, serial) != RenderTsSweep(3, 16, 64, parallel) {
		t.Fatal("TsSweep output depends on the worker count")
	}
}

func TestRenderTsSweep(t *testing.T) {
	pts := []TsSweepPoint{
		{Ts: 0, TpCannon: 100, TpGK: 150, Winner: "Cannon"},
		{Ts: 300, TpCannon: 900, TpGK: 700, Winner: "GK"},
	}
	out := RenderTsSweep(3, 64, 64, pts)
	for _, frag := range []string{"n=64 p=64 tw=3", "Tp Cannon", "Tp GK", "winner", "Cannon", "GK"} {
		if !strings.Contains(out, frag) {
			t.Errorf("RenderTsSweep missing %q:\n%s", frag, out)
		}
	}
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != 4 {
		t.Errorf("want 2 header + 2 data lines, got %d", got)
	}
}

func TestSpeedupSaturationIdenticalAcrossWorkerCounts(t *testing.T) {
	pr := model.Params{Ts: 150, Tw: 3}
	ps := []int{1, 4, 16, 64, 256}
	serial, err := SpeedupSaturationWorkers(pr, core.Cannon, 16, ps, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SpeedupSaturationWorkers(pr, core.Cannon, 16, ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if RenderSpeedup(16, serial) != RenderSpeedup(16, parallel) {
		t.Fatal("SpeedupSaturation output depends on the worker count")
	}
	if _, fell := PeakSpeedup(serial); !fell {
		t.Fatal("n=16 run did not show the Section 3 saturation")
	}
}

func TestSpeedupSaturationErrorNamesTheCell(t *testing.T) {
	pr := model.Params{Ts: 150, Tw: 3}
	// p=8 is not a perfect square: Cannon rejects it.
	_, err := SpeedupSaturation(pr, core.Cannon, 16, []int{1, 4, 8})
	if err == nil || !strings.Contains(err.Error(), "p=8") {
		t.Fatalf("err = %v, want the p=8 cell named", err)
	}
}
