package experiments

import (
	"fmt"
	"math"
	"strings"

	"matscale/internal/core"
	"matscale/internal/iso"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/model"
	"matscale/internal/regions"
	"matscale/internal/sweep"
	"matscale/internal/topology"
)

// IsoPoint is one step of an isoefficiency validation run: the problem
// size the Equation (1) solver prescribes for the target efficiency at
// p processors, and the efficiency the simulator then actually
// delivers at that size.
type IsoPoint struct {
	P         int
	N         int     // prescribed matrix size, rounded to a runnable one
	ETarget   float64 // requested efficiency
	EMeasured float64 // simulated efficiency at (N, P)
}

// IsoefficiencyValidation closes the paper's central loop in
// simulation: Section 3 claims that growing W along the isoefficiency
// function holds the efficiency constant as p grows. For the chosen
// algorithm ("cannon" or "gk") it solves W = K·To(W, p) at each
// processor count, rounds the prescribed n to the nearest runnable
// size, runs the real algorithm on the simulator, and reports the
// measured efficiencies — which stay at the target up to rounding.
// The per-p cells run on the sweep engine's default worker pool; see
// IsoefficiencyValidationWorkers.
func IsoefficiencyValidation(pr model.Params, target float64, algorithm string, ps []int) ([]IsoPoint, error) {
	return IsoefficiencyValidationWorkers(pr, target, algorithm, ps, 0)
}

// IsoefficiencyValidationWorkers is IsoefficiencyValidation with an
// explicit host worker count (≤ 0: all CPUs); the points are identical
// for every worker count.
func IsoefficiencyValidationWorkers(pr model.Params, target float64, algorithm string, ps []int, workers int) ([]IsoPoint, error) {
	var (
		alg  core.Algorithm
		side func(p int) int // structural divisor of n
	)
	switch algorithm {
	case "cannon":
		alg = core.Cannon
		side = topology.IntSqrt
	case "gk":
		alg = core.GK
		side = topology.IntCbrt
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %q", algorithm)
	}

	out := make([]IsoPoint, len(ps))
	err := sweep.ForEach(workers, len(ps), func(i int) error {
		p := ps[i]
		// The implementation-exact overheads extended to continuous n
		// (the closed forms are smooth in n at fixed p).
		cont := func(n, q float64) float64 { return toCont(pr, algorithm, n, q) }
		nReal, ok := iso.SolveN(cont, float64(p), target)
		if !ok {
			return fmt.Errorf("experiments: no isoefficiency fixed point at p=%d", p)
		}
		s := side(p)
		n := int(math.Round(nReal/float64(s))) * s
		if n < s {
			n = s
		}
		a := matrix.Random(n, n, uint64(p))
		b := matrix.Random(n, n, uint64(p)+1)
		res, err := alg(machine.Hypercube(p, pr.Ts, pr.Tw), a, b)
		if err != nil {
			return err
		}
		out[i] = IsoPoint{P: p, N: n, ETarget: target, EMeasured: res.Efficiency()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// toCont is the continuous-n overhead of the exact implementation
// formulas, used by the isoefficiency solver.
func toCont(pr model.Params, algorithm string, n, p float64) float64 {
	switch algorithm {
	case "cannon":
		q := math.Sqrt(p)
		return 2 * p * q * (pr.Ts + pr.Tw*n*n/p)
	case "gk":
		d := math.Log2(math.Cbrt(p))
		return 5 * p * d * (pr.Ts + pr.Tw*n*n/math.Pow(p, 2.0/3.0))
	}
	panic("experiments: unknown algorithm " + algorithm)
}

// RenderIso formats an isoefficiency validation run.
func RenderIso(algorithm string, pts []IsoPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Isoefficiency validation — %s: grow W per Equation (1), efficiency should hold\n", algorithm)
	fmt.Fprintf(&sb, "%8s %8s %10s %10s\n", "p", "n", "E target", "E simulated")
	for _, pt := range pts {
		fmt.Fprintf(&sb, "%8d %8d %10.3f %10.3f\n", pt.P, pt.N, pt.ETarget, pt.EMeasured)
	}
	return sb.String()
}

// PredictionOutcome records one cell of the prediction cross-
// validation: the algorithm Section 6's overhead comparison predicts
// and the one that actually won the simulated race.
type PredictionOutcome struct {
	N, P              int
	Predicted, Actual string
	PredictedTp       float64 // Tp of the predicted algorithm
	BestTp            float64 // Tp of the actual winner
}

// Regret is how much slower the predicted algorithm was than the true
// winner (1 = perfect prediction).
func (o PredictionOutcome) Regret() float64 { return o.PredictedTp / o.BestTp }

// PredictionAccuracy cross-validates the paper's Section 6 methodology
// end to end: over a grid of runnable (n, p) configurations it races
// every applicable algorithm on the simulator and compares the actual
// winner with the Table 1 overhead prediction. The returned outcomes
// let callers check both the hit rate and the regret of misses. The
// grid cells run on the sweep engine's default worker pool; see
// PredictionAccuracyWorkers.
func PredictionAccuracy(pr model.Params, ns, ps []int) ([]PredictionOutcome, error) {
	return PredictionAccuracyWorkers(pr, ns, ps, 0)
}

// PredictionAccuracyWorkers is PredictionAccuracy with an explicit
// host worker count (≤ 0: all CPUs); the outcomes are identical for
// every worker count — cells land in grid order and skipped cells are
// filtered in that same order.
func PredictionAccuracyWorkers(pr model.Params, ns, ps []int, workers int) ([]PredictionOutcome, error) {
	named := []struct {
		name string
		alg  core.Algorithm
	}{
		{"Berntsen", core.Berntsen},
		{"Cannon", core.Cannon},
		{"GK", core.GK},
		{"DNS", core.DNS},
	}
	letterName := map[byte]string{'b': "Berntsen", 'c': "Cannon", 'a': "GK", 'd': "DNS"}

	type gridCell struct{ n, p int }
	var cells []gridCell
	for _, p := range ps {
		for _, n := range ns {
			cells = append(cells, gridCell{n: n, p: p})
		}
	}

	slots := make([]*PredictionOutcome, len(cells))
	err := sweep.ForEach(workers, len(cells), func(i int) error {
		n, p := cells[i].n, cells[i].p
		mach := machine.Hypercube(p, pr.Ts, pr.Tw)
		a := matrix.Random(n, n, uint64(n*p))
		b := matrix.Random(n, n, uint64(n*p)+1)
		tps := map[string]float64{}
		for _, c := range named {
			res, err := c.alg(mach, a, b)
			if err != nil {
				continue // structurally inapplicable here
			}
			tps[c.name] = res.Sim.Tp
		}
		if len(tps) < 2 {
			return nil // nothing to predict between
		}
		// Scan in the fixed order of the named table, not over the
		// tps map: when two algorithms tie on Tp the winner must not
		// depend on map iteration order (caught by nodetbreak).
		best, bestTp := "", math.Inf(1)
		for _, c := range named {
			if tp, ran := tps[c.name]; ran && tp < bestTp {
				best, bestTp = c.name, tp
			}
		}
		predLetter := regions.Best(pr, float64(n), float64(p))
		pred, ok := letterName[predLetter]
		if !ok {
			return nil // serial or infeasible cell
		}
		predTp, ran := tps[pred]
		if !ran {
			// The predicted algorithm can't run this exact
			// configuration (divisibility); skip the cell, matching
			// how a real chooser would fall back.
			return nil
		}
		slots[i] = &PredictionOutcome{
			N: n, P: p, Predicted: pred, Actual: best,
			PredictedTp: predTp, BestTp: bestTp,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []PredictionOutcome
	for _, o := range slots {
		if o != nil {
			out = append(out, *o)
		}
	}
	return out, nil
}

// RenderPrediction summarizes a cross-validation run.
func RenderPrediction(outcomes []PredictionOutcome) string {
	var sb strings.Builder
	hits := 0
	worst := 1.0
	for _, o := range outcomes {
		if o.Predicted == o.Actual {
			hits++
		} else if r := o.Regret(); r > worst {
			worst = r
		}
	}
	fmt.Fprintf(&sb, "Section 6 prediction cross-validation: %d/%d cells predicted correctly (worst regret %.2fx)\n",
		hits, len(outcomes), worst)
	fmt.Fprintf(&sb, "%6s %6s %10s %10s %8s\n", "n", "p", "predicted", "actual", "regret")
	for _, o := range outcomes {
		fmt.Fprintf(&sb, "%6d %6d %10s %10s %8.2f\n", o.N, o.P, o.Predicted, o.Actual, o.Regret())
	}
	return sb.String()
}
