package experiments

import (
	"fmt"
	"strings"

	"matscale/internal/core"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/model"
	"matscale/internal/sweep"
)

// SpeedupPoint is one measurement of a fixed-problem-size scaling run.
type SpeedupPoint struct {
	P          int
	Tp         float64
	Speedup    float64
	Efficiency float64
}

// SpeedupSaturation runs one algorithm at a fixed matrix size over a
// growing processor range — the Section 3 premise that speedup
// saturates and then falls for a fixed W. The algorithm must accept
// every (n, p) pair supplied. Points run on the sweep engine's default
// worker pool; see SpeedupSaturationWorkers.
func SpeedupSaturation(pr model.Params, alg core.Algorithm, n int, ps []int) ([]SpeedupPoint, error) {
	return SpeedupSaturationWorkers(pr, alg, n, ps, 0)
}

// SpeedupSaturationWorkers is SpeedupSaturation with an explicit host
// worker count (≤ 0: all CPUs); the points are identical for every
// worker count.
func SpeedupSaturationWorkers(pr model.Params, alg core.Algorithm, n int, ps []int, workers int) ([]SpeedupPoint, error) {
	a := matrix.Random(n, n, uint64(n))
	b := matrix.Random(n, n, uint64(n)+1)
	out := make([]SpeedupPoint, len(ps))
	err := sweep.ForEach(workers, len(ps), func(i int) error {
		p := ps[i]
		res, err := alg(machine.Hypercube(p, pr.Ts, pr.Tw), a, b)
		if err != nil {
			return fmt.Errorf("p=%d: %w", p, err)
		}
		out[i] = SpeedupPoint{P: p, Tp: res.Sim.Tp, Speedup: res.Speedup(), Efficiency: res.Efficiency()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PeakSpeedup returns the point with the highest speedup and whether
// any later point fell below it (the saturation signature).
func PeakSpeedup(pts []SpeedupPoint) (peak SpeedupPoint, fellAfterPeak bool) {
	for _, pt := range pts {
		if pt.Speedup > peak.Speedup {
			peak = pt
		}
	}
	for _, pt := range pts {
		if pt.P > peak.P && pt.Speedup < peak.Speedup {
			fellAfterPeak = true
		}
	}
	return peak, fellAfterPeak
}

// TsSweepPoint is one sample of a startup-time sweep.
type TsSweepPoint struct {
	Ts       float64
	TpCannon float64
	TpGK     float64
	Winner   string
}

// TsSweep runs Cannon's and the GK algorithm at a fixed (n, p) across
// a range of message startup times — the continuous version of the
// paper's three-machines comparison (Figures 1–3): the GK algorithm's
// smaller startup coefficient wins on high-latency machines, Cannon's
// smaller bandwidth coefficient wins as ts shrinks. Points run on the
// sweep engine's default worker pool; see TsSweepWorkers.
func TsSweep(tw float64, n, p int, tsValues []float64) ([]TsSweepPoint, error) {
	return TsSweepWorkers(tw, n, p, tsValues, 0)
}

// TsSweepWorkers is TsSweep with an explicit host worker count (≤ 0:
// all CPUs); the points are identical for every worker count.
func TsSweepWorkers(tw float64, n, p int, tsValues []float64, workers int) ([]TsSweepPoint, error) {
	a := matrix.Random(n, n, uint64(n))
	b := matrix.Random(n, n, uint64(n)+1)
	out := make([]TsSweepPoint, len(tsValues))
	err := sweep.ForEach(workers, len(tsValues), func(i int) error {
		ts := tsValues[i]
		cres, err := core.Cannon(machine.Hypercube(p, ts, tw), a, b)
		if err != nil {
			return fmt.Errorf("cannon ts=%v: %w", ts, err)
		}
		gres, err := core.GK(machine.Hypercube(p, ts, tw), a, b)
		if err != nil {
			return fmt.Errorf("gk ts=%v: %w", ts, err)
		}
		pt := TsSweepPoint{Ts: ts, TpCannon: cres.Sim.Tp, TpGK: gres.Sim.Tp, Winner: "Cannon"}
		if gres.Sim.Tp < cres.Sim.Tp {
			pt.Winner = "GK"
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderTsSweep formats a startup-time sweep.
func RenderTsSweep(tw float64, n, p int, pts []TsSweepPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Startup-time sweep, n=%d p=%d tw=%g: who wins as the machine changes\n", n, p, tw)
	fmt.Fprintf(&sb, "%10s %14s %14s %10s\n", "ts", "Tp Cannon", "Tp GK", "winner")
	for _, pt := range pts {
		fmt.Fprintf(&sb, "%10.2f %14.1f %14.1f %10s\n", pt.Ts, pt.TpCannon, pt.TpGK, pt.Winner)
	}
	return sb.String()
}

// RenderSpeedup formats a saturation run.
func RenderSpeedup(n int, pts []SpeedupPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fixed-size scaling, n = %d\n", n)
	fmt.Fprintf(&sb, "%8s %12s %12s %12s\n", "p", "Tp", "speedup", "efficiency")
	for _, pt := range pts {
		fmt.Fprintf(&sb, "%8d %12.0f %12.2f %12.4f\n", pt.P, pt.Tp, pt.Speedup, pt.Efficiency)
	}
	if peak, fell := PeakSpeedup(pts); fell {
		fmt.Fprintf(&sb, "speedup peaked at p = %d (S = %.2f) and then fell — Section 3's saturation\n", peak.P, peak.Speedup)
	}
	return sb.String()
}
