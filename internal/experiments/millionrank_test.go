package experiments_test

import (
	"regexp"
	"strings"
	"testing"

	"matscale/internal/experiments"
)

// A scaled-down grid (n = 32 tops out at p = n² = 1024 ranks) keeps
// the test fast while still crossing the one-element-per-processor
// limit and both machine presets.
func TestMillionRankStudyScaledDown(t *testing.T) {
	var sb strings.Builder
	if err := experiments.MillionRankStudy(&sb, 32); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"n=32", "W=n³=32768 flops",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("study output missing %q:\n%s", want, out)
		}
	}
	for _, want := range []string{
		`(?m)^cannon +ncube2 +1024 `, // the p = n² limit ran
		`(?m)^cannon +mesh +1024 `,
		`(?m)^gk +ncube2 +512 `,
		`(?m)^gk +mesh +64 `,
	} {
		if !regexp.MustCompile(want).MatchString(out) {
			t.Errorf("study output missing row %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "n/a:") {
		t.Errorf("a study cell failed:\n%s", out)
	}

	// The study is deterministic: a second run emits identical bytes.
	var again strings.Builder
	if err := experiments.MillionRankStudy(&again, 32); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Error("study output differs between runs")
	}
}

func TestMillionRankStudyRejectsBadN(t *testing.T) {
	var sb strings.Builder
	if err := experiments.MillionRankStudy(&sb, 100); err == nil {
		t.Error("want error for non-power-of-two n")
	}
	if err := experiments.MillionRankStudy(&sb, 2); err == nil {
		t.Error("want error for tiny n")
	}
}
