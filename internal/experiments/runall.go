package experiments

import (
	"fmt"
	"io"

	"matscale/internal/core"
	"matscale/internal/model"
)

// RunAll regenerates the full reproduction — every table, figure and
// analysis — and writes the rendered reports to w in the paper's
// order. The quick flag skips the two CM-5 sweeps (Figures 4 and 5),
// which dominate the running time.
func RunAll(w io.Writer, quick bool) error {
	section := func(title string) {
		fmt.Fprintf(w, "\n================ %s ================\n\n", title)
	}

	section("Table 1 — overheads and scalability (ts=150, tw=3)")
	fmt.Fprint(w, Table1(model.Params{Ts: 150, Tw: 3}))

	for fig := 1; fig <= 3; fig++ {
		pr, _ := FigureParams(fig)
		section(fmt.Sprintf("Figure %d — regions of superiority (ts=%g, tw=%g)", fig, pr.Ts, pr.Tw))
		m, err := RegionFigure(fig, 30, 16)
		if err != nil {
			return err
		}
		fmt.Fprint(w, m.Render())
	}

	if !quick {
		for fig := 4; fig <= 5; fig++ {
			section(fmt.Sprintf("Figure %d — CM-5 efficiency curves", fig))
			f, err := EfficiencyFigure(fig)
			if err != nil {
				return err
			}
			fmt.Fprint(w, f.Render())
		}
	}

	section("Section 6 — pairwise crossovers")
	fmt.Fprint(w, CrossoverReport(model.Params{Ts: 150, Tw: 3}))

	section("Section 7 — all-port communication")
	fmt.Fprint(w, AllPortReport(model.Params{Ts: 10, Tw: 3}))

	section("Section 8 — technology tradeoffs")
	tech, err := TechnologyReport(model.Params{Ts: 0.5, Tw: 3}, 1<<14, 0.05, 2)
	if err != nil {
		return err
	}
	fmt.Fprint(w, tech)

	section("Section 5.4.1 — GK with the Johnsson-Ho broadcast")
	fmt.Fprint(w, ImprovedGKReport(model.Params{Ts: 9, Tw: 1}, 4096))

	section("Methodology validation — isoefficiency holds in simulation")
	pts, err := IsoefficiencyValidation(model.Params{Ts: 17, Tw: 3}, 0.5, "cannon", []int{4, 16, 64, 256})
	if err != nil {
		return err
	}
	fmt.Fprint(w, RenderIso("cannon", pts))

	section("Methodology validation — Section 6 predictions vs simulated races")
	outcomes, err := PredictionAccuracy(model.Params{Ts: 17, Tw: 3}, []int{16, 32, 48, 64}, []int{64, 256, 512})
	if err != nil {
		return err
	}
	fmt.Fprint(w, RenderPrediction(outcomes))

	section("Section 3 — fixed-size speedup saturation")
	sat, err := SpeedupSaturation(model.Params{Ts: 150, Tw: 3}, core.Cannon, 64, []int{1, 4, 16, 64, 256, 1024})
	if err != nil {
		return err
	}
	fmt.Fprint(w, RenderSpeedup(64, sat))

	return nil
}
