package experiments

import (
	"fmt"
	"io"
	"strings"

	"matscale/internal/core"
	"matscale/internal/model"
	"matscale/internal/sweep"
)

// RunAll regenerates the full reproduction — every table, figure and
// analysis — and writes the rendered reports to w in the paper's
// order. The quick flag skips the two CM-5 sweeps (Figures 4 and 5),
// which dominate the running time.
//
// It is a compatibility wrapper over RunAllParallel with the default
// worker pool (all host CPUs); the output is byte-identical for every
// worker count.
func RunAll(w io.Writer, quick bool) error {
	return RunAllParallel(w, quick, 0)
}

// RunAllParallel is RunAll on the sweep engine: the report sections run
// concurrently on workers host goroutines (≤ 0: all CPUs), each
// rendering into its own buffer, and the buffers are emitted in the
// paper's order — so the bytes written to w do not depend on the worker
// count, only the wall-clock time does. The heavy sections (the CM-5
// efficiency sweeps, the prediction grid, the isoefficiency
// validation) additionally parallelize their inner cell loops on the
// same pool size.
func RunAllParallel(w io.Writer, quick bool, workers int) error {
	type section struct {
		title string
		run   func() (string, error)
	}
	str := func(f func() string) func() (string, error) {
		return func() (string, error) { return f(), nil }
	}

	sections := []section{
		{"Table 1 — overheads and scalability (ts=150, tw=3)",
			str(func() string { return Table1(model.Params{Ts: 150, Tw: 3}) })},
	}
	for fig := 1; fig <= 3; fig++ {
		fig := fig
		pr, err := FigureParams(fig)
		if err != nil {
			return err
		}
		sections = append(sections, section{
			fmt.Sprintf("Figure %d — regions of superiority (ts=%g, tw=%g)", fig, pr.Ts, pr.Tw),
			func() (string, error) {
				m, err := RegionFigure(fig, 30, 16)
				if err != nil {
					return "", err
				}
				return m.Render(), nil
			}})
	}
	if !quick {
		for fig := 4; fig <= 5; fig++ {
			fig := fig
			sections = append(sections, section{
				fmt.Sprintf("Figure %d — CM-5 efficiency curves", fig),
				func() (string, error) {
					f, err := EfficiencyFigureWorkers(fig, workers)
					if err != nil {
						return "", err
					}
					return f.Render(), nil
				}})
		}
	}
	sections = append(sections,
		section{"Section 6 — pairwise crossovers",
			str(func() string { return CrossoverReport(model.Params{Ts: 150, Tw: 3}) })},
		section{"Section 7 — all-port communication",
			str(func() string { return AllPortReport(model.Params{Ts: 10, Tw: 3}) })},
		section{"Section 8 — technology tradeoffs",
			func() (string, error) {
				return TechnologyReport(model.Params{Ts: 0.5, Tw: 3}, 1<<14, 0.05, 2)
			}},
		section{"Section 5.4.1 — GK with the Johnsson-Ho broadcast",
			str(func() string { return ImprovedGKReport(model.Params{Ts: 9, Tw: 1}, 4096) })},
		section{"Methodology validation — isoefficiency holds in simulation",
			func() (string, error) {
				pts, err := IsoefficiencyValidationWorkers(model.Params{Ts: 17, Tw: 3}, 0.5, "cannon", []int{4, 16, 64, 256}, workers)
				if err != nil {
					return "", err
				}
				return RenderIso("cannon", pts), nil
			}},
		section{"Methodology validation — Section 6 predictions vs simulated races",
			func() (string, error) {
				outcomes, err := PredictionAccuracyWorkers(model.Params{Ts: 17, Tw: 3}, []int{16, 32, 48, 64}, []int{64, 256, 512}, workers)
				if err != nil {
					return "", err
				}
				return RenderPrediction(outcomes), nil
			}},
		section{"Section 3 — fixed-size speedup saturation",
			func() (string, error) {
				sat, err := SpeedupSaturationWorkers(model.Params{Ts: 150, Tw: 3}, core.Cannon, 64, []int{1, 4, 16, 64, 256, 1024}, workers)
				if err != nil {
					return "", err
				}
				return RenderSpeedup(64, sat), nil
			}},
	)

	outs := make([]string, len(sections))
	if err := sweep.ForEach(workers, len(sections), func(i int) error {
		s, err := sections[i].run()
		outs[i] = s
		return err
	}); err != nil {
		return err
	}

	var sb strings.Builder
	for i, s := range sections {
		fmt.Fprintf(&sb, "\n================ %s ================\n\n", s.title)
		sb.WriteString(outs[i])
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
