package experiments

import (
	"math"
	"strings"
	"testing"

	"matscale/internal/model"
)

func TestFigureParams(t *testing.T) {
	for fig, ts := range map[int]float64{1: 150, 2: 10, 3: 0.5} {
		pr, err := FigureParams(fig)
		if err != nil || pr.Ts != ts || pr.Tw != 3 {
			t.Fatalf("FigureParams(%d) = %+v, %v", fig, pr, err)
		}
	}
	if _, err := FigureParams(9); err == nil {
		t.Fatal("FigureParams(9) should error")
	}
}

func TestTable1Renders(t *testing.T) {
	s := Table1(model.Params{Ts: 150, Tw: 3})
	for _, frag := range []string{"Berntsen", "Cannon", "GK", "DNS", "O(p^1.5)", "O(p log p)", "n² ≤ p ≤ n³"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Table1 missing %q", frag)
		}
	}
	// The fitted exponents must appear and be sane: look for the Cannon
	// row carrying a value close to 1.5.
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "Cannon") && !strings.Contains(line, "1.5") {
			t.Errorf("Cannon row lacks fitted 1.5 exponent: %q", line)
		}
	}
}

func TestRegionFigureMatchesDirectCompute(t *testing.T) {
	m, err := RegionFigure(2, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PExp) != 11 || len(m.NExp) != 9 {
		t.Fatalf("map dims %dx%d", len(m.NExp), len(m.PExp))
	}
	if _, err := RegionFigure(7, 4, 4); err == nil {
		t.Fatal("bad figure accepted")
	}
}

func TestFigure4CrossoverMatchesPaper(t *testing.T) {
	f, err := EfficiencyFigure(4)
	if err != nil {
		t.Fatal(err)
	}
	// Section 9: predicted crossover n = 83, observed n = 96. Our
	// simulator uses the paper's constants for both programs, so the
	// simulated crossover should track the prediction closely.
	if f.PredictedCrossover < 75 || f.PredictedCrossover > 90 {
		t.Fatalf("predicted crossover = %v, want ≈83", f.PredictedCrossover)
	}
	if f.CrossoverN < 64 || f.CrossoverN > 104 {
		t.Fatalf("simulated crossover = %v, want ≈83 (paper observed 96)", f.CrossoverN)
	}
	// GK more efficient below the crossover, Cannon above.
	if gk, ca := f.GK.Points[1], f.Cannon.Points[1]; gk.E <= ca.E {
		t.Fatalf("n=%d: GK E=%v should beat Cannon E=%v", gk.N, gk.E, ca.E)
	}
	last := len(f.GK.Points) - 1
	if gk, ca := f.GK.Points[last], f.Cannon.Points[last]; gk.E >= ca.E {
		t.Fatalf("n=%d: Cannon E=%v should beat GK E=%v", gk.N, ca.E, gk.E)
	}
	// Efficiency must increase with n for both (scalable systems).
	for i := 1; i < len(f.GK.Points); i++ {
		if f.GK.Points[i].E <= f.GK.Points[i-1].E {
			t.Fatalf("GK efficiency not increasing at n=%d", f.GK.Points[i].N)
		}
	}
	if s := f.Render(); !strings.Contains(s, "Figure 4") || !strings.Contains(s, "crossover") {
		t.Errorf("Render output malformed:\n%s", s)
	}
}

func TestFigure5CrossoverMatchesPaper(t *testing.T) {
	f, err := EfficiencyFigure(5)
	if err != nil {
		t.Fatal(err)
	}
	// Section 9: predicted crossover n = 295 at E ≈ 0.93.
	if f.PredictedCrossover < 250 || f.PredictedCrossover > 330 {
		t.Fatalf("predicted crossover = %v, want ≈295", f.PredictedCrossover)
	}
	if f.CrossoverN < 230 || f.CrossoverN > 340 {
		t.Fatalf("simulated crossover = %v, want ≈295", f.CrossoverN)
	}
	// The paper's plot shows the crossover at E ≈ 0.93; plugging its own
	// published constants into Eq. (18) yields E ≈ 0.69 at that point
	// (the plotted efficiencies embed measured runtime constants that
	// differ from the quoted ts/tw — see EXPERIMENTS.md). The shape
	// claim — the curves cross while both are already efficient, so
	// Cannon "can not outperform the GK algorithm by a wide margin" —
	// is what we assert.
	eAtCross := f.GK.interpolate(f.CrossoverN)
	if eAtCross < 0.6 {
		t.Fatalf("efficiency at crossover = %v, want high (paper plots ≈0.93)", eAtCross)
	}
	// "The GK algorithm achieves an efficiency of 0.5 for a matrix size
	// of 112×112, whereas Cannon's algorithm operates at an efficiency
	// of only 0.28 on 484 processors on 110×110 matrices": our
	// constants give the same strong separation (the paper's absolute
	// values reflect its measured runtime constants).
	var gk112, ca110 float64
	for _, pt := range f.GK.Points {
		if pt.N == 112 {
			gk112 = pt.E
		}
	}
	for _, pt := range f.Cannon.Points {
		if pt.N == 110 {
			ca110 = pt.E
		}
	}
	if gk112 == 0 || ca110 == 0 {
		t.Fatal("sample sizes 112/110 missing from sweeps")
	}
	if gk112 < 1.5*ca110 {
		t.Fatalf("GK(112)=%v vs Cannon(110)=%v: separation lost", gk112, ca110)
	}
}

func TestCrossoverReport(t *testing.T) {
	s := CrossoverReport(model.Params{Ts: 150, Tw: 3})
	for _, frag := range []string{"Eq. 15", "1.3e8", "DNS"} {
		if !strings.Contains(s, frag) {
			t.Errorf("CrossoverReport missing %q:\n%s", frag, s)
		}
	}
}

func TestAllPortReportConclusion(t *testing.T) {
	s := AllPortReport(model.Params{Ts: 10, Tw: 3})
	if strings.Contains(s, "UNEXPECTED") {
		t.Fatalf("all-port analysis contradicts the paper:\n%s", s)
	}
	if !strings.Contains(s, "does not improve") {
		t.Fatalf("missing conclusion:\n%s", s)
	}
}

func TestTechnologyReport(t *testing.T) {
	s, err := TechnologyReport(model.Params{Ts: 0.5, Tw: 3}, 1<<14, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Cannon", "more processors", "faster processors"} {
		if !strings.Contains(s, frag) {
			t.Errorf("TechnologyReport missing %q:\n%s", frag, s)
		}
	}
	if _, err := TechnologyReport(model.Params{Ts: 150, Tw: 3}, 1<<14, 0.9, 10); err == nil {
		t.Fatal("expected failure above DNS ceiling")
	}
}

func TestImprovedGKReportShowsThreshold(t *testing.T) {
	s := ImprovedGKReport(model.Params{Ts: 9, Tw: 1}, 512)
	if !strings.Contains(s, "naive") || !strings.Contains(s, "improved") {
		t.Fatalf("report lacks winners:\n%s", s)
	}
}

func TestInterpolate(t *testing.T) {
	c := EfficiencyCurve{Points: []EfficiencyPoint{{N: 10, E: 0.2}, {N: 20, E: 0.4}}}
	if v := c.interpolate(15); math.Abs(v-0.3) > 1e-12 {
		t.Fatalf("interpolate(15) = %v", v)
	}
	if !math.IsNaN(c.interpolate(5)) || !math.IsNaN(c.interpolate(25)) {
		t.Fatal("out-of-range interpolation should be NaN")
	}
}

func TestFigureEfficiencyCSV(t *testing.T) {
	f := &FigureEfficiency{
		Figure: 4,
		Cannon: EfficiencyCurve{Algorithm: "Cannon", P: 64, Points: []EfficiencyPoint{{N: 8, E: 0.25}, {N: 16, E: 0.5}}},
		GK:     EfficiencyCurve{Algorithm: "GK", P: 64, Points: []EfficiencyPoint{{N: 16, E: 0.6}}},
	}
	csv := f.CSV()
	if !strings.Contains(csv, "n,cannon_p64_efficiency,gk_p64_efficiency") {
		t.Fatalf("missing header:\n%s", csv)
	}
	if !strings.Contains(csv, "8,0.250000,\n") || !strings.Contains(csv, "16,0.500000,0.600000\n") {
		t.Fatalf("rows malformed:\n%s", csv)
	}
}

func TestFigureEfficiencyPlot(t *testing.T) {
	f := &FigureEfficiency{
		Figure:     4,
		Cannon:     EfficiencyCurve{Algorithm: "Cannon", P: 64, Points: []EfficiencyPoint{{N: 8, E: 0.2}, {N: 96, E: 0.7}}},
		GK:         EfficiencyCurve{Algorithm: "GK", P: 64, Points: []EfficiencyPoint{{N: 8, E: 0.5}, {N: 96, E: 0.65}}},
		CrossoverN: 80, PredictedCrossover: 82,
	}
	s := f.Plot()
	for _, frag := range []string{"Figure 4", "c=Cannon(p=64)", "g=GK(p=64)", "crossover n ≈ 80"} {
		if !strings.Contains(s, frag) {
			t.Errorf("plot missing %q:\n%s", frag, s)
		}
	}
}
