package experiments

import (
	"fmt"
	"io"

	"matscale/internal/core"
	"matscale/internal/machine"
	"matscale/internal/matrix"
)

// MillionRankStudy renders the strong-scaling study the events backend
// unlocks: Cannon's algorithm and the GK algorithm multiplying real
// n×n matrices at processor counts the goroutine engine cannot reach —
// up to p = n², one matrix element per processor, which is 2^20 ranks
// at the default n = 1024 — on the paper's nCUBE-2-like hypercube and
// a wraparound mesh with the same cost constants. Every run executes
// on machine.BackendEvents and reports the usual virtual-time
// quantities, so the table extends the paper's fixed-problem-size
// speedup analysis (Section 3) into the million-rank regime: Cannon's
// efficiency collapses as 2·ts·√p + 2·tw·n²/√p overwhelms n³/p, and
// GK holds on longer at its p = q³ sizes. Results and the wall-clock
// story are discussed in docs/BACKENDS.md.
//
// The output is deterministic for a fixed n: matrices are seeded, and
// the events backend is byte-equivalent to the goroutine backend.
func MillionRankStudy(w io.Writer, n int) error {
	if n < 4 || n&(n-1) != 0 {
		return fmt.Errorf("experiments: million-rank study needs a power-of-two n ≥ 4, got %d", n)
	}
	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)

	type row struct {
		alg  string
		run  core.Algorithm
		mach string
		p    int
	}
	var rows []row
	// Cannon strong-scales on √p × √p grids from p = (n/32)² up to the
	// one-element-per-processor limit p = n².
	for q := max(2, n/32); q <= n; q *= 2 {
		rows = append(rows, row{"cannon", core.Cannon, "ncube2", q * q})
	}
	for q := max(2, n/32); q <= n; q *= 2 {
		rows = append(rows, row{"cannon", core.Cannon, "mesh", q * q})
	}
	// GK runs at its structural sizes p = q³ (q | n); the mesh preset
	// additionally needs p to be a perfect square (a √p × √p torus), so
	// only q values that are themselves squares qualify there.
	for _, q := range []int{8, 16, 32} {
		if n%q == 0 && q*q*q <= n*n {
			rows = append(rows, row{"gk", core.GK, "ncube2", q * q * q})
		}
	}
	for _, q := range []int{4, 16} {
		if n%q == 0 && q*q*q <= n*n {
			rows = append(rows, row{"gk", core.GK, "mesh", q * q * q})
		}
	}

	fmt.Fprintf(w, "strong scaling on the events backend — n=%d, W=n³=%.0f flops\n", n, float64(n)*float64(n)*float64(n))
	fmt.Fprintf(w, "%-8s %-7s %9s %16s %12s %12s %12s\n",
		"alg", "machine", "p", "Tp", "speedup", "efficiency", "messages")
	for _, r := range rows {
		var m *machine.Machine
		switch r.mach {
		case "ncube2":
			m = machine.NCube2(r.p)
		case "mesh":
			m = machine.Mesh(r.p, 150, 3)
		}
		res, err := r.run(m.WithBackend(machine.BackendEvents), a, b)
		if err != nil {
			fmt.Fprintf(w, "%-8s %-7s %9d n/a: %v\n", r.alg, r.mach, r.p, err)
			continue
		}
		fmt.Fprintf(w, "%-8s %-7s %9d %16.1f %12.2f %12.6f %12d\n",
			r.alg, r.mach, r.p, res.Sim.Tp, res.Speedup(), res.Efficiency(), res.Sim.Messages)
	}
	return nil
}
