// Package experiments regenerates every table and figure of the
// paper's evaluation:
//
//	Table 1    — Table1 (overheads, isoefficiency, applicability)
//	Figures 1–3 — RegionFigure (best-algorithm maps for three machines)
//	Figures 4–5 — EfficiencyFigure (simulated CM-5 efficiency curves)
//	Section 6  — Crossovers (pairwise equal-overhead analysis)
//	Section 7  — AllPortReport (all-port communication scalability)
//	Section 8  — TechnologyReport (more vs. faster processors)
//
// Each driver returns structured results plus a rendered text report;
// cmd/matscale prints them, the benchmarks in the repository root time
// them, and EXPERIMENTS.md records them against the paper's numbers.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"matscale/internal/core"
	"matscale/internal/iso"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/model"
	"matscale/internal/plot"
	"matscale/internal/regions"
	"matscale/internal/sweep"
)

// FigureParams returns the machine constants of the paper's region
// figures: 1 → (ts=150, tw=3), 2 → (ts=10, tw=3), 3 → (ts=0.5, tw=3).
func FigureParams(fig int) (model.Params, error) {
	switch fig {
	case 1:
		return model.Params{Ts: 150, Tw: 3}, nil
	case 2:
		return model.Params{Ts: 10, Tw: 3}, nil
	case 3:
		return model.Params{Ts: 0.5, Tw: 3}, nil
	default:
		return model.Params{}, fmt.Errorf("experiments: region figures are 1, 2 and 3; got %d", fig)
	}
}

// Table1 renders the paper's Table 1 — the overhead function,
// asymptotic isoefficiency and range of applicability of each
// algorithm — and appends numerically fitted isoefficiency growth
// exponents obtained from the Equation (1) solver as a check on the
// asymptotic column.
func Table1(pr model.Params) string {
	overhead := map[string]string{
		"Berntsen": "2·ts·p^(4/3) + (1/3)·ts·p·log p + 3·tw·n²·p^(1/3)",
		"Cannon":   "2·ts·p^(3/2) + 2·tw·n²·√p",
		"GK":       "(5/3)·ts·p·log p + (5/3)·tw·n²·p^(1/3)·log p",
		"DNS":      "(ts + tw)·((5/3)·p·log p + 2·n³)",
	}
	ranges := map[string]string{
		"Berntsen": "1 ≤ p ≤ n^(3/2)",
		"Cannon":   "1 ≤ p ≤ n²",
		"GK":       "1 ≤ p ≤ n³",
		"DNS":      "n² ≤ p ≤ n³",
	}
	concurrency := map[string]func(n float64) float64{
		"Berntsen": func(n float64) float64 { return math.Pow(n, 1.5) },
		"Cannon":   func(n float64) float64 { return n * n },
		"GK":       func(n float64) float64 { return n * n * n },
		"DNS":      func(n float64) float64 { return n * n * n },
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1 — overheads, scalability and applicability (ts=%g, tw=%g)\n", pr.Ts, pr.Tw)
	fmt.Fprintf(&sb, "%-10s %-55s %-18s %-16s %s\n", "Algorithm", "Total overhead To", "Asymptotic isoeff.", "Fitted exponent", "Applicability")
	for _, s := range model.Specs() {
		e := 0.5
		if s.Name == "DNS" {
			// Stay below the DNS efficiency ceiling.
			e = iso.MaxEfficiencyDNS(pr.Ts, pr.Tw) / 2
		}
		w := func(p float64) float64 {
			v, ok := iso.OverallW(func(n, q float64) float64 { return s.To(pr, n, q) }, concurrency[s.Name], p, e)
			if !ok {
				return math.NaN()
			}
			return v
		}
		x := iso.GrowthExponent(w, 1<<20, 1<<34, 24)
		fmt.Fprintf(&sb, "%-10s %-55s %-18s %-16.3f %s\n", s.Name, overhead[s.Name], s.Isoefficiency, x, ranges[s.Name])
	}
	return sb.String()
}

// RegionFigure computes the Figure 1/2/3 region map.
func RegionFigure(fig, pMaxExp, nMaxExp int) (*regions.Map, error) {
	pr, err := FigureParams(fig)
	if err != nil {
		return nil, err
	}
	return regions.Compute(pr, pMaxExp, nMaxExp), nil
}

// EfficiencyPoint is one measurement of an efficiency-vs-n curve.
type EfficiencyPoint struct {
	N  int
	E  float64 // simulated efficiency
	Tp float64 // simulated parallel time
}

// EfficiencyCurve is a simulated efficiency-vs-matrix-size curve for
// one algorithm at one processor count.
type EfficiencyCurve struct {
	Algorithm string
	P         int
	Points    []EfficiencyPoint
}

// interpolate returns the curve's efficiency at n by piecewise-linear
// interpolation (NaN outside the sampled range).
func (c *EfficiencyCurve) interpolate(n float64) float64 {
	pts := c.Points
	if len(pts) == 0 || n < float64(pts[0].N) || n > float64(pts[len(pts)-1].N) {
		return math.NaN()
	}
	for i := 1; i < len(pts); i++ {
		lo, hi := pts[i-1], pts[i]
		if n <= float64(hi.N) {
			f := (n - float64(lo.N)) / (float64(hi.N) - float64(lo.N))
			return lo.E + f*(hi.E-lo.E)
		}
	}
	return pts[len(pts)-1].E
}

// FigureEfficiency holds one of the paper's CM-5 experiments
// (Figures 4 and 5): the simulated efficiency curves of Cannon's and
// the GK algorithm and the crossover matrix size, together with the
// analytically predicted crossover from the equal-overhead condition.
type FigureEfficiency struct {
	Figure             int
	Cannon, GK         EfficiencyCurve
	CrossoverN         float64 // simulated curves cross here (0 if none)
	PredictedCrossover float64 // from equating the model overheads
}

// EfficiencyFigure reproduces Figure 4 (fig=4: both algorithms on 64
// processors) or Figure 5 (fig=5: Cannon on 484, GK on 512 — the paper
// uses the nearest perfect square to 512 for Cannon). Matrices contain
// deterministic pseudo-random values; the products are computed for
// real on the virtual-time CM-5. The sweep cells run on the default
// worker pool (all host CPUs); see EfficiencyFigureWorkers.
func EfficiencyFigure(fig int) (*FigureEfficiency, error) {
	return EfficiencyFigureWorkers(fig, 0)
}

// EfficiencyFigureWorkers is EfficiencyFigure with an explicit host
// worker count for the sweep engine (≤ 0: all CPUs). The figure is
// identical for every worker count.
func EfficiencyFigureWorkers(fig, workers int) (*FigureEfficiency, error) {
	var pCannon, pGK, stepCannon, stepGK, nMax int
	switch fig {
	case 4:
		pCannon, pGK = 64, 64
		stepCannon, stepGK = 8, 8
		nMax = 200
	case 5:
		pCannon, pGK = 484, 512
		stepCannon, stepGK = 22, 8
		nMax = 360
	default:
		return nil, fmt.Errorf("experiments: efficiency figures are 4 and 5; got %d", fig)
	}

	out := &FigureEfficiency{Figure: fig}
	var err error
	out.Cannon, err = runCurve("Cannon", core.Cannon, pCannon, stepCannon, nMax, workers)
	if err != nil {
		return nil, err
	}
	out.GK, err = runCurve("GK", core.GK, pGK, stepGK, nMax, workers)
	if err != nil {
		return nil, err
	}

	out.CrossoverN = curveCrossover(&out.GK, &out.Cannon)
	out.PredictedCrossover = predictedCrossover(pCannon, pGK)
	return out, nil
}

// runCurve simulates one algorithm on the CM-5 preset over a sweep of
// matrix sizes. The cells fan out over the engine's worker pool; each
// point lands in its own slot, so the curve is identical for every
// worker count.
func runCurve(name string, alg core.Algorithm, p, step, nMax, workers int) (EfficiencyCurve, error) {
	c := EfficiencyCurve{Algorithm: name, P: p}
	var ns []int
	for n := step; n <= nMax; n += step {
		ns = append(ns, n)
	}
	pts := make([]EfficiencyPoint, len(ns))
	err := sweep.ForEach(workers, len(ns), func(i int) error {
		n := ns[i]
		a := matrix.Random(n, n, uint64(n))
		b := matrix.Random(n, n, uint64(n)+1)
		res, err := alg(machine.CM5(p), a, b)
		if err != nil {
			return fmt.Errorf("%s n=%d p=%d: %w", name, n, p, err)
		}
		pts[i] = EfficiencyPoint{N: n, E: res.Efficiency(), Tp: res.Sim.Tp}
		return nil
	})
	if err != nil {
		return c, err
	}
	c.Points = pts
	return c, nil
}

// curveCrossover finds the matrix size where the GK curve stops being
// the more efficient one, by scanning the union grid with linear
// interpolation.
func curveCrossover(gk, cannon *EfficiencyCurve) float64 {
	lo := math.Max(float64(gk.Points[0].N), float64(cannon.Points[0].N))
	hi := math.Min(float64(gk.Points[len(gk.Points)-1].N), float64(cannon.Points[len(cannon.Points)-1].N))
	prev := math.NaN()
	prevN := 0.0
	for n := lo; n <= hi; n++ {
		d := gk.interpolate(n) - cannon.interpolate(n)
		if !math.IsNaN(prev) && prev > 0 && d <= 0 {
			// Linear refinement between prevN and n.
			f := prev / (prev - d)
			return prevN + f*(n-prevN)
		}
		prev, prevN = d, n
	}
	return 0
}

// predictedCrossover equates the CM-5 overheads of Cannon's algorithm
// (Eq. 3) on pCannon processors and the GK algorithm (Eq. 18) on pGK
// processors, as Section 9 does (n = 83 for p = 64; n = 295 for
// p = 484/512).
func predictedCrossover(pCannon, pGK int) float64 {
	pr := model.Params{Ts: machine.CM5StartupMicros / machine.CM5FlopMicros, Tw: machine.CM5PerWordMicros / machine.CM5FlopMicros}
	gkTo := func(q model.Params, n, p float64) float64 {
		return p*model.PaperGKCM5Tp(q, n, p) - n*n*n
	}
	cannonTo := func(q model.Params, n, p float64) float64 {
		return p*model.PaperCannonTp(q, n, p) - n*n*n
	}
	// Solve gkTo(n, pGK) = cannonTo(n, pCannon) for n by bisection.
	diff := func(n float64) float64 { return gkTo(pr, n, float64(pGK)) - cannonTo(pr, n, float64(pCannon)) }
	lo, hi := 2.0, 1e5
	if diff(lo) >= 0 || diff(hi) <= 0 {
		return 0
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if diff(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}

// Render prints an efficiency figure the way the paper plots it.
func (f *FigureEfficiency) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %d — efficiency vs matrix size on the CM-5 model\n", f.Figure)
	fmt.Fprintf(&sb, "Cannon on p=%d, GK on p=%d\n", f.Cannon.P, f.GK.P)
	fmt.Fprintf(&sb, "%6s %12s %12s\n", "n", "E(Cannon)", "E(GK)")
	grid := map[int][2]float64{}
	for _, pt := range f.Cannon.Points {
		v := grid[pt.N]
		v[0] = pt.E
		grid[pt.N] = v
	}
	for _, pt := range f.GK.Points {
		v := grid[pt.N]
		v[1] = pt.E
		grid[pt.N] = v
	}
	ns := sortedGridKeys(grid)
	for _, n := range ns {
		v := grid[n]
		sb.WriteString(fmt.Sprintf("%6d %12s %12s\n", n, fmtE(v[0]), fmtE(v[1])))
	}
	fmt.Fprintf(&sb, "simulated crossover n ≈ %.0f (model-predicted %.0f)\n", f.CrossoverN, f.PredictedCrossover)
	return sb.String()
}

// CSV emits the figure's series as comma-separated values with a
// header row (empty cells where a curve was not sampled), suitable for
// external plotting.
func (f *FigureEfficiency) CSV() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n,cannon_p%d_efficiency,gk_p%d_efficiency\n", f.Cannon.P, f.GK.P)
	grid := map[int][2]float64{}
	for _, pt := range f.Cannon.Points {
		v := grid[pt.N]
		v[0] = pt.E
		grid[pt.N] = v
	}
	for _, pt := range f.GK.Points {
		v := grid[pt.N]
		v[1] = pt.E
		grid[pt.N] = v
	}
	ns := sortedGridKeys(grid)
	for _, n := range ns {
		v := grid[n]
		sb.WriteString(fmt.Sprintf("%d,%s,%s\n", n, csvE(v[0]), csvE(v[1])))
	}
	return sb.String()
}

func csvE(e float64) string {
	if e == 0 {
		return ""
	}
	return fmt.Sprintf("%.6f", e)
}

func fmtE(e float64) string {
	if e == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", e)
}

// sortedGridKeys returns the keys of an efficiency grid in increasing
// order, so figure rendering and CSV emission are deterministic.
func sortedGridKeys(grid map[int][2]float64) []int {
	ns := make([]int, 0, len(grid))
	for n := range grid { //nodetbreak:ordered — sorted immediately below
		ns = append(ns, n)
	}
	sortInts(ns)
	return ns
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Plot renders the figure as an ASCII chart, the way the paper plots
// efficiency against matrix size.
func (f *FigureEfficiency) Plot() string {
	toSeries := func(c *EfficiencyCurve, marker byte) plot.Series {
		s := plot.Series{Name: fmt.Sprintf("%s(p=%d)", c.Algorithm, c.P), Marker: marker}
		for _, pt := range c.Points {
			s.X = append(s.X, float64(pt.N))
			s.Y = append(s.Y, pt.E)
		}
		return s
	}
	ch := plot.Chart{
		Title:  fmt.Sprintf("Figure %d — efficiency vs matrix size (simulated CM-5)", f.Figure),
		XLabel: "n",
		Series: []plot.Series{toSeries(&f.Cannon, 'c'), toSeries(&f.GK, 'g')},
	}
	return ch.Render() + fmt.Sprintf("crossover n ≈ %.0f (model-predicted %.0f)\n", f.CrossoverN, f.PredictedCrossover)
}
