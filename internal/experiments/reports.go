package experiments

import (
	"fmt"
	"math"
	"strings"

	"matscale/internal/iso"
	"matscale/internal/model"
	"matscale/internal/regions"
	"matscale/internal/tech"
)

// CrossoverReport reproduces the Section 6 pairwise analysis for a
// machine: the Eq. (15) GK/Cannon threshold at several processor
// counts, the universal GK-beats-Cannon cutoff, and where (if
// anywhere) the DNS algorithm becomes useful.
func CrossoverReport(pr model.Params) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Section 6 — pairwise crossovers (ts=%g, tw=%g)\n", pr.Ts, pr.Tw)
	sb.WriteString("GK vs Cannon equal-overhead matrix size n_EqualTo(p) (Eq. 15):\n")
	for _, pe := range []int{6, 8, 10, 12, 14, 16} {
		p := math.Pow(2, float64(pe))
		if n, ok := regions.NEqualToGKCannon(pr, p); ok {
			fmt.Fprintf(&sb, "  p=2^%-3d n_EqualTo = %8.1f  (GK better below, Cannon above)\n", pe, n)
		} else {
			fmt.Fprintf(&sb, "  p=2^%-3d no crossing (GK better for every n)\n", pe)
		}
	}
	fmt.Fprintf(&sb, "GK's tw overhead term beats Cannon's for every n beyond p ≈ %.3g (paper: 1.3e8)\n", regions.GKBeatsCannonAlways())
	if p, ok := regions.DNSUsefulFrom(pr, model.DNSTo, 50); ok {
		fmt.Fprintf(&sb, "DNS first beats GK somewhere in range at p = %.3g (Table 1 overheads)\n", p)
	} else {
		sb.WriteString("DNS never beats GK within range for p ≤ 2^50 (Table 1 overheads)\n")
	}

	sb.WriteString("\nEqual-overhead boundary curves (the figures' plain lines); first name wins below:\n")
	boundaries := regions.PairwiseBoundaries(pr, 24)
	fmt.Fprintf(&sb, "%24s", "pair \\ p")
	samples := []int{3, 7, 11, 15, 19, 23} // 2^4, 2^8, ..., 2^24
	for _, i := range samples {
		fmt.Fprintf(&sb, " %10.0f", boundaries[0].P[i])
	}
	sb.WriteByte('\n')
	for _, b := range boundaries {
		fmt.Fprintf(&sb, "%24s", b.X+" vs "+b.Y)
		for _, i := range samples {
			if math.IsNaN(b.N[i]) {
				fmt.Fprintf(&sb, " %10s", "-")
			} else {
				fmt.Fprintf(&sb, " %10.3g", b.N[i])
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// AllPortReport reproduces the Section 7 conclusion: simultaneous
// communication on all hypercube ports reduces the communication
// closed forms but the message-size floor needed to fill the channels
// forces the problem to grow at least as fast as the one-port
// isoefficiency — so overall scalability does not improve.
func AllPortReport(pr model.Params) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Section 7 — all-port communication (ts=%g, tw=%g)\n", pr.Ts, pr.Tw)

	rows := []struct {
		name     string
		onePort  func(model.Params, float64, float64) float64
		allPort  func(model.Params, float64, float64) float64
		granular string
	}{
		{"Simple", model.SimpleTo, model.SimpleAllPortTo, "simple"},
		{"GK", model.GKTo, model.GKAllPortTo, "gk"},
	}
	for _, r := range rows {
		wOne := func(p float64) float64 {
			v, ok := iso.SolveW(func(n, q float64) float64 { return r.onePort(pr, n, q) }, p, 0.5)
			if !ok {
				return math.NaN()
			}
			return v
		}
		wComm := func(p float64) float64 {
			v, ok := iso.SolveW(func(n, q float64) float64 { return r.allPort(pr, n, q) }, p, 0.5)
			if !ok {
				return math.NaN()
			}
			return v
		}
		wAll := func(p float64) float64 {
			// Overall all-port isoefficiency: communication fixed point
			// or the granularity floor, whichever is larger.
			return math.Max(wComm(p), iso.AllPortGranularityW(r.granular, p))
		}
		xOne := iso.GrowthExponent(wOne, 1<<16, 1<<30, 20)
		xComm := iso.GrowthExponent(wComm, 1<<16, 1<<30, 20)
		xAll := iso.GrowthExponent(wAll, 1<<16, 1<<30, 20)
		fmt.Fprintf(&sb, "%-8s one-port W~p^%.2f | all-port comm-only W~p^%.2f | all-port with message floor W~p^%.2f\n",
			r.name, xOne, xComm, xAll)
		if xAll < xOne-0.05 {
			fmt.Fprintf(&sb, "  UNEXPECTED: all-port appears more scalable than one-port\n")
		} else {
			fmt.Fprintf(&sb, "  -> all-port does not improve the overall isoefficiency (paper's conclusion)\n")
		}
	}
	return sb.String()
}

// TechnologyReport reproduces Section 8: the problem-growth factors
// for k-fold more processors vs k-fold faster processors for each
// algorithm.
func TechnologyReport(pr model.Params, p, e, k float64) (string, error) {
	rows, err := tech.Compare(pr, p, e, k)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Section 8 — %gx more processors vs %gx faster processors (ts=%g, tw=%g, p=%g, E=%g)\n",
		k, k, pr.Ts, pr.Tw, p, e)
	fmt.Fprintf(&sb, "%-10s %-22s %-22s %s\n", "Algorithm", "W growth (more procs)", "W growth (faster procs)", "cheaper path")
	for _, r := range rows {
		path := "faster processors"
		if r.MoreProcessorsBetter {
			path = "more processors"
		}
		fmt.Fprintf(&sb, "%-10s %-22.1f %-22.1f %s\n", r.Algorithm, r.MoreProcsFactor, r.FasterProcsFactor, path)
	}
	return sb.String(), nil
}

// ImprovedGKReport compares the naive-broadcast GK algorithm with the
// Johnsson–Ho variant of Section 5.4.1 across message sizes, showing
// the granularity threshold beyond which the optimized broadcast wins.
func ImprovedGKReport(pr model.Params, p int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Section 5.4.1 — GK with Johnsson–Ho broadcast (ts=%g, tw=%g, p=%d)\n", pr.Ts, pr.Tw, p)
	fmt.Fprintf(&sb, "%8s %14s %14s %s\n", "n", "Tp naive", "Tp improved", "winner")
	q := int(math.Cbrt(float64(p)) + 0.5)
	for n := q; n <= 512; n *= 2 {
		naive := model.ExactGKTp(pr, n, p)
		improved := model.ExactGKImprovedTp(pr, n, p)
		winner := "naive"
		if improved < naive {
			winner = "improved"
		}
		fmt.Fprintf(&sb, "%8d %14.1f %14.1f %s\n", n, naive, improved, winner)
	}
	return sb.String()
}
