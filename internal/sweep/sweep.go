package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"matscale/internal/core"
	"matscale/internal/faults"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/model"
)

// Spec declares an experiment grid: the cross product of formulations,
// machine presets, processor counts, matrix sizes and fault scenarios.
// Every combination is one independent simulation cell.
type Spec struct {
	// Algorithms names the formulations to run: "simple", "cannon",
	// "fox", "foxpipe", "berntsen", "dns", "gk", "gkimproved".
	Algorithms []string `json:"algorithms"`
	// Machines names the machine presets: "ncube2", "fast", "simd",
	// "cm5", "custom". A "custom" machine is a store-and-forward
	// hypercube with the spec's Ts/Tw constants.
	Machines []string `json:"machines"`
	// Ts and Tw are the cost constants of "custom" machines, in flop
	// units (ignored by the named presets, which carry their own).
	Ts float64 `json:"ts,omitempty"`
	Tw float64 `json:"tw,omitempty"`
	// Ps and Ns are the processor counts and matrix dimensions of the
	// grid.
	Ps []int `json:"ps"`
	Ns []int `json:"ns"`
	// Faults lists fault scenarios in the docs/FAULTS.md grammar; the
	// empty string is the clean (unperturbed) machine. An empty or nil
	// slice means clean only. Scenarios are canonicalized (parsed and
	// re-rendered) before they become cell keys.
	Faults []string `json:"faults,omitempty"`
	// Seed is the base matrix seed; cells at dimension n multiply
	// Random(n, n, Seed+2n) by Random(n, n, Seed+2n+1).
	Seed uint64 `json:"seed,omitempty"`
}

// Cell is one point of an expanded grid. Cells order lexicographically
// by (Algorithm, Machine, P, N, Faults) — the sorted cell keys that
// make sweep output independent of scheduling.
type Cell struct {
	Algorithm string `json:"algorithm"`
	Machine   string `json:"machine"`
	P         int    `json:"p"`
	N         int    `json:"n"`
	// Faults is the canonicalized fault scenario, "" when clean.
	Faults string `json:"faults,omitempty"`
}

// Key renders the cell's identity as a stable string, usable as a map
// key or log label.
func (c Cell) Key() string {
	return fmt.Sprintf("%s|%s|p%d|n%d|%s", c.Algorithm, c.Machine, c.P, c.N, c.Faults)
}

// less orders cells by (Algorithm, Machine, P, N, Faults).
func (c Cell) less(o Cell) bool {
	if c.Algorithm != o.Algorithm {
		return c.Algorithm < o.Algorithm
	}
	if c.Machine != o.Machine {
		return c.Machine < o.Machine
	}
	if c.P != o.P {
		return c.P < o.P
	}
	if c.N != o.N {
		return c.N < o.N
	}
	return c.Faults < o.Faults
}

// CellResult is the measured outcome of one cell. All times are in the
// paper's flop units.
type CellResult struct {
	Cell
	// Tp is the simulated parallel time; Speedup, Efficiency and
	// Overhead are the derived quantities for W = n³.
	Tp         float64 `json:"tp"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	Overhead   float64 `json:"overhead"`
	// PredictedTp is the closed-form model prediction for the cell
	// (memoized across the grid; 0 when the model has no equation for
	// the formulation).
	PredictedTp float64 `json:"predicted_tp,omitempty"`
	// Retries and RetryTime report the reliable-delivery layer's work
	// under a lossy fault scenario (zero when clean).
	Retries   int     `json:"retries,omitempty"`
	RetryTime float64 `json:"retry_time,omitempty"`
	// Err is non-empty when the formulation rejected the configuration
	// (structural requirements like perfect-square p or divisibility);
	// such cells are recorded, not fatal.
	Err string `json:"error,omitempty"`
}

// Result is a completed sweep: one CellResult per cell, in sorted cell
// order regardless of the worker count that produced them.
type Result struct {
	Spec  Spec         `json:"spec"`
	Cells []CellResult `json:"cells"`
	// Ran counts cells that produced a measurement, Skipped those the
	// formulation rejected.
	Ran     int `json:"ran"`
	Skipped int `json:"skipped"`
	// PredCacheHits counts closed-form predictions served from the
	// memo cache rather than recomputed — cells sharing
	// (algorithm, machine, n, p) across fault scenarios hit it.
	PredCacheHits int `json:"pred_cache_hits"`
}

// Options configures a sweep run.
type Options struct {
	// Workers is the number of host goroutines executing cells
	// (≤ 0: all CPUs). The worker count never changes the Result.
	Workers int
	// Progress, when non-nil, is called after each cell completes with
	// the number done so far and the total. Calls are serialized but
	// arrive in completion order, which is scheduling-dependent — sinks
	// that need determinism must consume the Result instead.
	Progress func(done, total int, r CellResult)
	// Backend is the simulation engine every cell executes on
	// (goroutines by default). Like Workers it never changes the
	// Result: the backends are byte-equivalent for a fixed spec.
	Backend machine.Backend
	// Cache, when non-nil, memoizes measured cell results across
	// sweeps keyed by Spec.CellKey. Because a cell's measurement is a
	// pure function of its canonical key, a hit returns the identical
	// CellResult the miss path would compute, so cached and uncached
	// sweeps of the same spec render byte-identically — the contract
	// matscale-server's cross-client cache relies on (docs/SERVER.md).
	Cache CellCache
	// Cancel, when non-nil, aborts the sweep when closed: cells not yet
	// started return ErrCanceled and Run reports it. Cells already
	// executing run to completion (a cell is the abort granularity), so
	// cancellation never tears a simulation mid-flight.
	Cancel <-chan struct{}
	// Suspend, when non-nil, suspends the sweep when closed: cells not
	// yet started are skipped, cells already executing finish (a cell is
	// the suspension granularity, mirroring Cancel), and Run returns a
	// *SuspendedError whose Checkpoint carries every completed cell.
	// When Cancel and Suspend close together, cancellation wins.
	Suspend <-chan struct{}
	// Resume, when non-nil, seeds the run with a prior suspension's
	// completed cells: they are merged into the Result (and replayed
	// through Progress, in cell order, before any simulation starts) and
	// only the remainder is simulated. The checkpoint's spec and backend
	// must match this run's exactly, else Run returns a typed
	// *CheckpointMismatchError.
	Resume *Checkpoint
}

// CellCache memoizes measured cell results across sweep runs. Get
// returns the cached result for a canonical cell key (see
// Spec.CellKey) and whether it was present; Put stores a freshly
// measured result. Implementations must be safe for concurrent use:
// the worker pool calls them from every worker, and a server shares
// one cache across jobs. Both hit and miss paths yield identical
// bytes for identical keys, so a cache can only change wall-clock
// time, never a Result.
type CellCache interface {
	Get(key string) (CellResult, bool)
	Put(key string, r CellResult)
}

// ErrCanceled is the error Run returns when Options.Cancel closes
// before the grid finishes; errors.Is recognizes it through any
// wrapping.
var ErrCanceled = errors.New("sweep: canceled")

// algorithms is the formulation registry of the grid layer, keyed by
// the names the CLI uses.
var algorithms = map[string]core.Algorithm{
	"simple":     core.Simple,
	"cannon":     core.Cannon,
	"fox":        core.Fox,
	"foxpipe":    core.FoxPipelined,
	"berntsen":   core.Berntsen,
	"dns":        core.DNS,
	"gk":         core.GK,
	"gkimproved": core.GKImprovedBroadcast,
}

// AlgorithmNames returns the formulation names the grid layer accepts,
// sorted.
func AlgorithmNames() []string {
	names := make([]string, 0, len(algorithms))
	for name := range algorithms { //nodetbreak:ordered — sorted immediately below
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// machineFor builds the machine a cell runs on. The preset names match
// cmd/matscale's -machine flag.
func machineFor(name string, p int, ts, tw float64) (*machine.Machine, error) {
	switch name {
	case "ncube2":
		return machine.NCube2(p), nil
	case "fast":
		return machine.FutureHypercube(p), nil
	case "simd":
		return machine.SIMD(p), nil
	case "cm5":
		return machine.CM5(p), nil
	case "custom":
		return machine.Hypercube(p, ts, tw), nil
	default:
		return nil, fmt.Errorf("sweep: unknown machine preset %q", name)
	}
}

// presetCost returns the ts/tw constants of a preset without building
// its topology, for the prediction pre-pass.
func presetCost(name string, ts, tw float64) (float64, float64) {
	switch name {
	case "ncube2":
		return 150, 3
	case "fast":
		return 10, 3
	case "simd":
		return 0.5, 3
	case "cm5":
		return machine.CM5StartupMicros / machine.CM5FlopMicros, machine.CM5PerWordMicros / machine.CM5FlopMicros
	default: // custom
		return ts, tw
	}
}

// Validate checks the spec's names, ranges and fault grammar without
// running anything.
func (s *Spec) Validate() error {
	if len(s.Algorithms) == 0 {
		return fmt.Errorf("sweep: spec names no algorithms (have: %s)", strings.Join(AlgorithmNames(), ", "))
	}
	for _, a := range s.Algorithms {
		if _, ok := algorithms[a]; !ok {
			return fmt.Errorf("sweep: unknown algorithm %q (have: %s)", a, strings.Join(AlgorithmNames(), ", "))
		}
	}
	if len(s.Machines) == 0 {
		return fmt.Errorf("sweep: spec names no machines")
	}
	for _, m := range s.Machines {
		if _, err := machineFor(m, 1, s.Ts, s.Tw); err != nil {
			return err
		}
	}
	if len(s.Ps) == 0 || len(s.Ns) == 0 {
		return fmt.Errorf("sweep: spec needs at least one p and one n")
	}
	for _, p := range s.Ps {
		if p < 1 {
			return fmt.Errorf("sweep: invalid processor count %d", p)
		}
	}
	for _, n := range s.Ns {
		if n < 1 {
			return fmt.Errorf("sweep: invalid matrix dimension %d", n)
		}
	}
	for _, f := range s.Faults {
		if f == "" {
			continue
		}
		if _, err := faults.Parse(f); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	return nil
}

// Cells expands the spec to its sorted, deduplicated cell list with
// canonicalized fault scenarios. The order is the merge order of every
// sweep output.
func (s *Spec) Cells() ([]Cell, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	scenarios, _, err := s.scenarios()
	if err != nil {
		return nil, err
	}
	var cells []Cell
	for _, alg := range s.Algorithms {
		for _, m := range s.Machines {
			for _, p := range s.Ps {
				for _, n := range s.Ns {
					for _, f := range scenarios {
						cells = append(cells, Cell{Algorithm: alg, Machine: m, P: p, N: n, Faults: f})
					}
				}
			}
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].less(cells[j]) })
	// Deduplicate: repeated list entries must not run (or print) twice.
	out := cells[:0]
	for i, c := range cells {
		if i == 0 || cells[i-1] != c {
			out = append(out, c)
		}
	}
	return out, nil
}

// scenarios canonicalizes the spec's fault list: parsed configs keyed
// by their canonical rendering, with "" (clean) preserved. The clean
// scenario is implied when the list is empty.
func (s *Spec) scenarios() ([]string, map[string]*faults.Config, error) {
	list := s.Faults
	if len(list) == 0 {
		list = []string{""}
	}
	var keys []string
	cfgs := map[string]*faults.Config{}
	for _, f := range list {
		if f == "" {
			keys = append(keys, "")
			continue
		}
		cfg, err := faults.Parse(f)
		if err != nil {
			return nil, nil, fmt.Errorf("sweep: %w", err)
		}
		key := cfg.String()
		if _, dup := cfgs[key]; !dup {
			cfgs[key] = cfg
		}
		keys = append(keys, key)
	}
	return keys, cfgs, nil
}

// CellKey renders the canonical identity of one measured grid cell:
// every input that can change the cell's measurement — formulation,
// machine preset, the effective ts/tw constants, p, n, the
// canonicalized fault scenario, the base matrix seed, and the
// simulation backend. Two cells with equal keys produce byte-identical
// CellResults no matter which spec, sweep or process computed them,
// which is what makes the key safe as a cross-client CellCache key.
// c.Faults must already be canonical (cells from Spec.Cells are); the
// effective ts/tw folding means specs that differ only in constants a
// preset ignores still share keys. The backend is part of the key out
// of caution — the backends are byte-equivalent (docs/BACKENDS.md), so
// this only costs duplicate entries, never a wrong hit.
func (s *Spec) CellKey(c Cell, backend machine.Backend) string {
	ts, tw := presetCost(c.Machine, s.Ts, s.Tw)
	return strings.Join([]string{
		"cell", "v1",
		c.Algorithm, c.Machine,
		"ts=" + csvFloat(ts), "tw=" + csvFloat(tw),
		"p=" + strconv.Itoa(c.P), "n=" + strconv.Itoa(c.N),
		"f=" + c.Faults,
		"seed=" + strconv.FormatUint(s.Seed, 10),
		"backend=" + backend.String(),
	}, "|")
}

// predKey identifies one closed-form prediction.
type predKey struct {
	alg, mach string
	ts, tw    float64
	n, p      int
}

// predictTp evaluates the paper's closed-form parallel time for a cell
// (0 when the model has no equation for the formulation). The GK
// algorithm on the CM-5 uses Eq. (18); everything else uses the
// general hypercube equations (Eqs. 2–7).
func predictTp(k predKey) float64 {
	pr := model.Params{Ts: k.ts, Tw: k.tw}
	nf, pf := float64(k.n), float64(k.p)
	if k.alg == "gk" && k.mach == "cm5" {
		return model.PaperGKCM5Tp(pr, nf, pf)
	}
	switch k.alg {
	case "simple":
		return model.PaperSimpleTp(pr, nf, pf)
	case "cannon":
		return model.PaperCannonTp(pr, nf, pf)
	case "fox", "foxpipe":
		return model.PaperFoxTp(pr, nf, pf)
	case "berntsen":
		return model.PaperBerntsenTp(pr, nf, pf)
	case "dns":
		return model.PaperDNSTp(pr, nf, pf)
	case "gk":
		return model.PaperGKTp(pr, nf, pf)
	}
	return 0
}

// Run executes the grid: it expands and sorts the cells, memoizes the
// closed-form predictions in a serial pre-pass (so the hit count is
// deterministic), fans the simulations out over the worker pool, and
// merges the results in cell order. The Result is identical — byte for
// byte once rendered — for every worker count.
func Run(s *Spec, opt Options) (*Result, error) {
	cells, err := s.Cells()
	if err != nil {
		return nil, err
	}
	_, cfgs, err := s.scenarios()
	if err != nil {
		return nil, err
	}

	res := &Result{Spec: *s, Cells: make([]CellResult, len(cells))}

	// Seed the grid from a resumed checkpoint. completed marks cells the
	// fan-out must not re-run; its slots are only touched by the owning
	// worker afterwards, so the post-ForEach read is race-free (the pool
	// joins before returning).
	completed := make([]bool, len(cells))
	if ck := opt.Resume; ck != nil {
		if err := validateResume(ck, s, opt.Backend); err != nil {
			return nil, err
		}
		index := make(map[string]int, len(cells))
		for i, c := range cells {
			index[c.Key()] = i
		}
		for _, r := range ck.Done {
			i, ok := index[r.Cell.Key()]
			if !ok {
				return nil, &CheckpointMismatchError{Reason: fmt.Sprintf(
					"checkpoint cell %q is not in the grid", r.Cell.Key())}
			}
			res.Cells[i] = r
			completed[i] = true
		}
	}

	// Serial pre-pass 1: closed-form predictions, memoized. Cells that
	// share (algorithm, machine, n, p) — e.g. the same grid point under
	// different fault scenarios — hit the cache.
	preds := make([]float64, len(cells))
	cache := map[predKey]float64{}
	for i, c := range cells {
		ts, tw := presetCost(c.Machine, s.Ts, s.Tw)
		k := predKey{alg: c.Algorithm, mach: c.Machine, ts: ts, tw: tw, n: c.N, p: c.P}
		v, ok := cache[k]
		if ok {
			res.PredCacheHits++
		} else {
			v = predictTp(k)
			cache[k] = v
		}
		preds[i] = v
	}

	// Serial pre-pass 2: input matrices, shared read-only by every cell
	// at the same dimension.
	mats := map[int][2]*matrix.Dense{}
	for _, c := range cells {
		if _, ok := mats[c.N]; !ok {
			seed := s.Seed + 2*uint64(c.N)
			mats[c.N] = [2]*matrix.Dense{
				matrix.Random(c.N, c.N, seed),
				matrix.Random(c.N, c.N, seed+1),
			}
		}
	}

	// Fan out. Each worker writes only its own cell's slot; progress is
	// the one serialized cross-worker channel. Cells are the cancel and
	// cache granularity: a canceled sweep aborts between cells, and a
	// cache hit replaces exactly one cell's simulation.
	var mu sync.Mutex
	done := 0
	report := func(r CellResult) {
		if opt.Progress != nil {
			mu.Lock()
			done++
			opt.Progress(done, len(cells), r)
			mu.Unlock()
		}
	}
	// Replay resumed cells through Progress in cell order before the
	// fan-out, so a resumed sweep's progress stream still accounts for
	// every cell of the grid.
	for i, ok := range completed {
		if ok {
			report(res.Cells[i])
		}
	}
	err = ForEach(opt.Workers, len(cells), func(i int) error {
		if completed[i] {
			return nil
		}
		if opt.Cancel != nil {
			select {
			case <-opt.Cancel:
				return ErrCanceled
			default:
			}
		}
		if opt.Suspend != nil {
			select {
			case <-opt.Suspend:
				return errSuspended
			default:
			}
		}
		c := cells[i]
		key := ""
		if opt.Cache != nil {
			key = s.CellKey(c, opt.Backend)
			if r, ok := opt.Cache.Get(key); ok {
				res.Cells[i] = r
				completed[i] = true
				report(r)
				return nil
			}
		}
		r := runCell(s, c, cfgs[c.Faults], mats[c.N], opt.Backend)
		r.PredictedTp = preds[i]
		if opt.Cache != nil {
			opt.Cache.Put(key, r)
		}
		res.Cells[i] = r
		completed[i] = true
		report(r)
		return nil
	})
	if errors.Is(err, errSuspended) {
		ck := &Checkpoint{Spec: *s, Backend: opt.Backend}
		for i, ok := range completed {
			if ok {
				ck.Done = append(ck.Done, res.Cells[i])
			}
		}
		return nil, &SuspendedError{Checkpoint: ck}
	}
	if err != nil {
		return nil, err
	}
	for _, r := range res.Cells {
		if r.Err == "" {
			res.Ran++
		} else {
			res.Skipped++
		}
	}
	return res, nil
}

// runCell executes one cell on its own machine instance and records
// either the measurements or the formulation's rejection.
func runCell(s *Spec, c Cell, fc *faults.Config, mats [2]*matrix.Dense, backend machine.Backend) CellResult {
	r := CellResult{Cell: c}
	m, err := machineFor(c.Machine, c.P, s.Ts, s.Tw)
	if err != nil {
		r.Err = err.Error()
		return r
	}
	m.Backend = backend
	if fc != nil {
		m = m.WithFaults(fc)
	}
	res, err := algorithms[c.Algorithm](m, mats[0], mats[1])
	if err != nil {
		r.Err = err.Error()
		return r
	}
	r.Tp = res.Sim.Tp
	r.Speedup = res.Speedup()
	r.Efficiency = res.Efficiency()
	r.Overhead = res.Overhead()
	r.Retries = res.Sim.Retries
	r.RetryTime = res.Sim.RetryTime
	return r
}

// csvFloat renders a float for CSV with full round-trip precision —
// the shortest representation that parses back exactly, so emission is
// deterministic and lossless.
func csvFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCSV emits the sweep as comma-separated values with a header
// row, one line per cell in sorted cell order. For a fixed spec the
// bytes are identical for every worker count.
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "algorithm,machine,p,n,faults,tp,speedup,efficiency,overhead,predicted_tp,retries,retry_time,error\n"); err != nil {
		return err
	}
	for _, c := range r.Cells {
		line := strings.Join([]string{
			c.Algorithm, c.Machine,
			strconv.Itoa(c.P), strconv.Itoa(c.N),
			csvQuote(c.Faults),
			csvFloat(c.Tp), csvFloat(c.Speedup), csvFloat(c.Efficiency), csvFloat(c.Overhead),
			csvFloat(c.PredictedTp),
			strconv.Itoa(c.Retries), csvFloat(c.RetryTime),
			csvQuote(c.Err),
		}, ",")
		if _, err := io.WriteString(w, line+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// csvQuote wraps fields that contain commas (fault scenarios, error
// messages) in double quotes per RFC 4180.
func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// CSV renders WriteCSV to a string.
func (r *Result) CSV() string {
	var sb strings.Builder
	r.WriteCSV(&sb) // strings.Builder never errors
	return sb.String()
}

// WriteJSON emits the sweep — spec, cells and counters — as indented
// JSON. Deterministic for a fixed spec.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render formats the sweep as the aligned table the CLI prints.
func (r *Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sweep: %d cells (%d ran, %d inapplicable), %d memoized predictions\n",
		len(r.Cells), r.Ran, r.Skipped, r.PredCacheHits)
	fmt.Fprintf(&sb, "%-10s %-7s %6s %6s %-26s %14s %12s %10s %14s\n",
		"algorithm", "machine", "p", "n", "faults", "Tp", "predicted", "eff.", "overhead")
	for _, c := range r.Cells {
		f := c.Faults
		if f == "" {
			f = "-"
		}
		if c.Err != "" {
			fmt.Fprintf(&sb, "%-10s %-7s %6d %6d %-26s n/a: %s\n",
				c.Algorithm, c.Machine, c.P, c.N, f, c.Err)
			continue
		}
		fmt.Fprintf(&sb, "%-10s %-7s %6d %6d %-26s %14.1f %12.1f %10.4f %14.1f\n",
			c.Algorithm, c.Machine, c.P, c.N, f, c.Tp, c.PredictedTp, c.Efficiency, c.Overhead)
	}
	return sb.String()
}
