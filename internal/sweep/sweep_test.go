package sweep

import (
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"

	"matscale/internal/model"
)

func gridSpec() *Spec {
	return &Spec{
		Algorithms: []string{"cannon", "gk"},
		Machines:   []string{"custom"},
		Ts:         17, Tw: 3,
		Ps:   []int{16, 64},
		Ns:   []int{16, 32},
		Seed: 1,
	}
}

func TestSpecCellsSortedAndDeduplicated(t *testing.T) {
	s := gridSpec()
	s.Algorithms = []string{"gk", "cannon", "gk"} // unsorted, duplicated
	cells, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*2 { // 2 algs × 2 p × 2 n
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	for i := 1; i < len(cells); i++ {
		if !cells[i-1].less(cells[i]) {
			t.Fatalf("cells not strictly sorted at %d: %v !< %v", i, cells[i-1], cells[i])
		}
	}
	if cells[0].Algorithm != "cannon" {
		t.Fatalf("first cell %v, want cannon first", cells[0])
	}
}

func TestSpecValidateRejectsBadInput(t *testing.T) {
	cases := []func(*Spec){
		func(s *Spec) { s.Algorithms = nil },
		func(s *Spec) { s.Algorithms = []string{"nope"} },
		func(s *Spec) { s.Machines = nil },
		func(s *Spec) { s.Machines = []string{"nope"} },
		func(s *Spec) { s.Ps = nil },
		func(s *Spec) { s.Ns = nil },
		func(s *Spec) { s.Ps = []int{0} },
		func(s *Spec) { s.Ns = []int{-4} },
		func(s *Spec) { s.Faults = []string{"straggler=???"} },
	}
	for i, mutate := range cases {
		s := gridSpec()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: bad spec accepted", i)
		}
	}
	if err := gridSpec().Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}

func TestFaultScenariosCanonicalized(t *testing.T) {
	s := gridSpec()
	// Same scenario spelled twice plus clean: three spellings, two
	// distinct scenarios.
	s.Faults = []string{"", "straggler=2@rank0,seed=42", "seed=42,straggler=2@rank0"}
	cells, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, c := range cells {
		distinct[c.Faults] = true
	}
	if len(distinct) != 2 {
		t.Fatalf("distinct scenarios = %v, want clean + one canonical faulted", distinct)
	}
	if !distinct[""] {
		t.Fatal("clean scenario lost")
	}
}

// TestRunByteIdenticalAcrossWorkerCounts is the engine's core
// guarantee: a fixed spec emits byte-identical CSV, JSON and rendered
// output at 1 worker, 4 workers and NumCPU workers — including under a
// seeded fault scenario.
func TestRunByteIdenticalAcrossWorkerCounts(t *testing.T) {
	s := gridSpec()
	s.Faults = []string{"", "straggler=2@rank0,seed=42"}
	var base *Result
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		r, err := Run(s, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = r
			continue
		}
		if got, want := r.CSV(), base.CSV(); got != want {
			t.Fatalf("workers=%d: CSV diverged\n--- got ---\n%s--- want ---\n%s", workers, got, want)
		}
		var gotJ, wantJ strings.Builder
		if err := r.WriteJSON(&gotJ); err != nil {
			t.Fatal(err)
		}
		if err := base.WriteJSON(&wantJ); err != nil {
			t.Fatal(err)
		}
		if gotJ.String() != wantJ.String() {
			t.Fatalf("workers=%d: JSON diverged", workers)
		}
		if r.Render() != base.Render() {
			t.Fatalf("workers=%d: rendered table diverged", workers)
		}
	}
}

func TestRunMeasurementsMatchModel(t *testing.T) {
	s := &Spec{
		Algorithms: []string{"cannon"},
		Machines:   []string{"custom"},
		Ts:         17, Tw: 3,
		Ps: []int{16}, Ns: []int{16},
	}
	r, err := Run(s, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 1 || r.Ran != 1 || r.Skipped != 0 {
		t.Fatalf("unexpected result shape: %+v", r)
	}
	c := r.Cells[0]
	want := model.ExactCannonTp(model.Params{Ts: 17, Tw: 3}, 16, 16)
	if c.Tp != want {
		t.Fatalf("Tp = %v, want Eq.(3) = %v", c.Tp, want)
	}
	if c.PredictedTp != model.PaperCannonTp(model.Params{Ts: 17, Tw: 3}, 16, 16) {
		t.Fatalf("PredictedTp = %v", c.PredictedTp)
	}
	if c.Efficiency <= 0 || c.Speedup <= 0 {
		t.Fatalf("derived quantities not populated: %+v", c)
	}
}

func TestRunRecordsInapplicableCells(t *testing.T) {
	// GK needs a perfect-cube p; p=16 is rejected, p=64 runs.
	s := &Spec{
		Algorithms: []string{"gk"},
		Machines:   []string{"custom"},
		Ts:         17, Tw: 3,
		Ps: []int{16, 64}, Ns: []int{16},
	}
	r, err := Run(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ran != 1 || r.Skipped != 1 {
		t.Fatalf("ran=%d skipped=%d, want 1/1", r.Ran, r.Skipped)
	}
	var rejected *CellResult
	for i := range r.Cells {
		if r.Cells[i].Err != "" {
			rejected = &r.Cells[i]
		}
	}
	if rejected == nil || rejected.P != 16 {
		t.Fatalf("expected the p=16 cell rejected, got %+v", r.Cells)
	}
	if !strings.Contains(r.Render(), "n/a:") {
		t.Fatal("rendered table does not show the rejection")
	}
}

func TestPredictionMemoizationAcrossFaultScenarios(t *testing.T) {
	s := gridSpec()
	s.Faults = []string{"", "straggler=3@rank0,seed=7"}
	r, err := Run(s, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every (alg, machine, p, n) appears once clean and once faulted:
	// the second occurrence must hit the cache.
	if want := len(r.Cells) / 2; r.PredCacheHits != want {
		t.Fatalf("PredCacheHits = %d, want %d", r.PredCacheHits, want)
	}
	// The faulted twin predicts the same closed-form Tp but measures a
	// slower simulated one.
	byKey := map[string]CellResult{}
	for _, c := range r.Cells {
		byKey[c.Key()] = c
	}
	for _, c := range r.Cells {
		if c.Faults == "" || c.Err != "" {
			continue
		}
		clean := byKey[Cell{Algorithm: c.Algorithm, Machine: c.Machine, P: c.P, N: c.N}.Key()]
		if c.PredictedTp != clean.PredictedTp {
			t.Fatalf("%s: faulted prediction %v != clean %v", c.Key(), c.PredictedTp, clean.PredictedTp)
		}
		if c.Tp <= clean.Tp {
			t.Fatalf("%s: straggler did not slow the run (%v <= %v)", c.Key(), c.Tp, clean.Tp)
		}
	}
}

func TestProgressReportsEveryCell(t *testing.T) {
	s := gridSpec()
	var mu sync.Mutex
	var dones []int
	total := 0
	r, err := Run(s, Options{Workers: 4, Progress: func(done, tot int, c CellResult) {
		mu.Lock()
		dones = append(dones, done)
		total = tot
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != len(r.Cells) || total != len(r.Cells) {
		t.Fatalf("progress calls = %d (total %d), want %d", len(dones), total, len(r.Cells))
	}
	seen := map[int]bool{}
	for _, d := range dones {
		seen[d] = true
	}
	for i := 1; i <= len(r.Cells); i++ {
		if !seen[i] {
			t.Fatalf("done count %d never reported", i)
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r, err := Run(gridSpec(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(r.Cells) || back.Ran != r.Ran {
		t.Fatalf("round trip lost cells: %d/%d", len(back.Cells), back.Ran)
	}
}

func TestCSVQuoting(t *testing.T) {
	r := &Result{Cells: []CellResult{{
		Cell: Cell{Algorithm: "gk", Machine: "custom", P: 64, N: 16, Faults: "straggler=2@rank0,seed=42"},
	}}}
	csv := r.CSV()
	if !strings.Contains(csv, `"straggler=2@rank0,seed=42"`) {
		t.Fatalf("comma-bearing field not quoted:\n%s", csv)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header + 1 row, got %d lines", len(lines))
	}
}

func TestAlgorithmNamesSorted(t *testing.T) {
	names := AlgorithmNames()
	if len(names) < 6 {
		t.Fatalf("registry too small: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

// countingCache is a CellCache that tracks hit/miss traffic for tests.
type countingCache struct {
	mu           sync.Mutex
	m            map[string]CellResult
	hits, misses int
}

func newCountingCache() *countingCache {
	return &countingCache{m: map[string]CellResult{}}
}

func (c *countingCache) Get(key string) (CellResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return r, ok
}

func (c *countingCache) Put(key string, r CellResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = r
}

func TestCellKeyCanonicalization(t *testing.T) {
	s := gridSpec()
	cells, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	// Distinct cells get distinct keys.
	seen := map[string]Cell{}
	for _, c := range cells {
		k := s.CellKey(c, 0)
		if prev, dup := seen[k]; dup {
			t.Fatalf("cells %v and %v share key %q", prev, c, k)
		}
		seen[k] = c
	}
	// Preset machines fold their own constants: specs differing only in
	// the (ignored) custom Ts/Tw share keys.
	a := &Spec{Algorithms: []string{"gk"}, Machines: []string{"ncube2"}, Ps: []int{16}, Ns: []int{16}, Ts: 1}
	b := &Spec{Algorithms: []string{"gk"}, Machines: []string{"ncube2"}, Ps: []int{16}, Ns: []int{16}, Ts: 99}
	cell := Cell{Algorithm: "gk", Machine: "ncube2", P: 16, N: 16}
	if a.CellKey(cell, 0) != b.CellKey(cell, 0) {
		t.Fatalf("preset machine keys fragment on ignored constants:\n%s\n%s", a.CellKey(cell, 0), b.CellKey(cell, 0))
	}
	// ...but custom machines do key on them.
	a.Machines, b.Machines = []string{"custom"}, []string{"custom"}
	cell.Machine = "custom"
	if a.CellKey(cell, 0) == b.CellKey(cell, 0) {
		t.Fatal("custom machine keys must include ts/tw")
	}
	// Seed and backend are part of the key.
	c := *a
	c.Seed = 7
	if a.CellKey(cell, 0) == c.CellKey(cell, 0) {
		t.Fatal("seed not in key")
	}
	if a.CellKey(cell, 0) == a.CellKey(cell, 1) {
		t.Fatal("backend not in key")
	}
}

func TestCacheHitsAreByteIdenticalToMisses(t *testing.T) {
	s := gridSpec()
	cold, err := Run(s, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cache := newCountingCache()
	miss, err := Run(s, Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cache.hits != 0 || cache.misses != len(miss.Cells) {
		t.Fatalf("first cached run: %d hits, %d misses, want 0/%d", cache.hits, cache.misses, len(miss.Cells))
	}
	hit, err := Run(s, Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cache.hits != len(hit.Cells) {
		t.Fatalf("second cached run: %d hits, want %d", cache.hits, len(hit.Cells))
	}
	for name, r := range map[string]*Result{"uncached": cold, "miss": miss, "hit": hit} { //nodetbreak:ordered — test-only comparison
		if r.CSV() != cold.CSV() {
			t.Fatalf("%s CSV differs from uncached run", name)
		}
		var a, b strings.Builder
		if err := r.WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := cold.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("%s JSON differs from uncached run", name)
		}
	}
}

func TestCacheSharedAcrossOverlappingSpecs(t *testing.T) {
	cache := newCountingCache()
	s := gridSpec()
	if _, err := Run(s, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	// A different spec whose grid overlaps in (cannon, custom, 16, 16)
	// hits the shared cells and misses only its new ones.
	o := &Spec{
		Algorithms: []string{"cannon"},
		Machines:   []string{"custom"},
		Ts:         17, Tw: 3,
		Ps:   []int{16},
		Ns:   []int{16, 64},
		Seed: 1,
	}
	cache.hits, cache.misses = 0, 0
	if _, err := Run(o, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if cache.hits != 1 || cache.misses != 1 {
		t.Fatalf("overlapping spec: %d hits, %d misses, want 1/1", cache.hits, cache.misses)
	}
}

func TestCancelAbortsBetweenCells(t *testing.T) {
	s := gridSpec()
	cancel := make(chan struct{})
	close(cancel)
	_, err := Run(s, Options{Workers: 2, Cancel: cancel})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled sweep returned %v, want ErrCanceled", err)
	}
	// A nil Cancel channel never aborts.
	if _, err := Run(s, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
}
