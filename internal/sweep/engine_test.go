package sweep

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestForEachRunsEveryIndexAtEveryWorkerCount(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		n := 37
		out := make([]int, n)
		if err := ForEach(workers, n, func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachZeroAndNegativeCount(t *testing.T) {
	called := false
	if err := ForEach(4, 0, func(int) error { called = true; return nil }); err != nil || called {
		t.Fatalf("n=0: err=%v called=%v", err, called)
	}
	if err := ForEach(4, -3, func(int) error { called = true; return nil }); err != nil || called {
		t.Fatalf("n<0: err=%v called=%v", err, called)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	wantErr := func(i int) error { return fmt.Errorf("cell %d failed", i) }
	for _, workers := range []int{1, 8} {
		err := ForEach(workers, 20, func(i int) error {
			if i == 7 || i == 13 {
				return wantErr(i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 7 failed" {
			t.Fatalf("workers=%d: err = %v, want lowest-index error", workers, err)
		}
	}
}

func TestForEachRunsAllIndexesDespiteErrors(t *testing.T) {
	n := 10
	ran := make([]bool, n)
	err := ForEach(4, n, func(i int) error {
		ran[i] = true
		if i%2 == 0 {
			return errors.New("even")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("index %d skipped after another cell errored", i)
		}
	}
}

func TestForEachRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 5, func(i int) error {
			if i == 2 {
				panic("boom")
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "cell 2 panicked: boom") {
			t.Fatalf("workers=%d: err = %v, want recovered panic", workers, err)
		}
	}
}

func TestWorkersDefaultsToCPUs(t *testing.T) {
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Fatal("Workers must resolve to at least one")
	}
	if Workers(7) != 7 {
		t.Fatalf("Workers(7) = %d", Workers(7))
	}
}
