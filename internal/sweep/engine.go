// Package sweep is the parallel experiment engine: it fans independent
// simulation cells out over a pool of host worker goroutines and merges
// their results deterministically, so a whole experiment grid — every
// figure of the paper is one — runs as fast as the host machine allows
// while emitting byte-identical output for a fixed specification
// regardless of the worker count.
//
// The package has two layers:
//
//   - ForEach, the scheduling primitive: a deterministic parallel loop.
//     Results land in caller-owned slots indexed by iteration, never in
//     shared accumulators, so completion order cannot leak into output.
//     The experiment drivers in internal/experiments run their inner
//     loops (efficiency curves, prediction grids, isoefficiency
//     validations, report sections) through it.
//   - Spec/Run, the declarative grid layer behind the public
//     matscale.Sweep API: a (formulations × machines × n × p × fault
//     scenarios) grid expanded to sorted cells, executed over the pool,
//     with closed-form model predictions memoized across cells.
//
// Parallelism here is host-side only: each cell still runs on the
// virtual-time simulator with the cell's own machine, and no measured
// quantity depends on how many host workers carried the load. See
// docs/SWEEP.md for the determinism guarantee in full.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: n if positive, otherwise
// the number of host CPUs.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// ForEach runs fn(0) … fn(n-1) on a pool of worker goroutines and
// returns the error of the lowest failing index (nil when every call
// succeeds). workers ≤ 0 uses all host CPUs; workers == 1 runs the
// loop serially on the calling goroutine.
//
// Determinism contract: every index runs exactly once and all indexes
// run even when some fail, so a deterministic fn yields identical
// results and an identical returned error for every worker count.
// Callers must write results into per-index slots (out[i] = …), not
// append to shared slices. A panic in fn is recovered and reported as
// the index's error.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = call(fn, i)
		}
		return firstError(errs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = call(fn, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return firstError(errs)
}

// call invokes fn(i), converting a panic into an error so one bad cell
// cannot take down the whole pool (mirroring how the simulator converts
// processor panics).
func call(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: cell %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

// firstError returns the error at the lowest index, making the
// aggregate error independent of completion order.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
