package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"matscale/internal/checkpoint"
	"matscale/internal/machine"
)

// ckptSpec is a small mixed grid: some cells run, some are rejected by
// the formulation (p not a perfect square for cannon), so a checkpoint
// carries both kinds of completed cells.
func ckptSpec() *Spec {
	return &Spec{
		Algorithms: []string{"cannon", "fox"},
		Machines:   []string{"ncube2"},
		Ps:         []int{2, 4},
		Ns:         []int{4, 8},
		Seed:       7,
	}
}

// suspendAfter runs the spec serially and closes the suspend channel
// once k cells have completed, returning the resulting checkpoint.
func suspendAfter(t *testing.T, s *Spec, k int) *Checkpoint {
	t.Helper()
	suspend := make(chan struct{})
	_, err := Run(s, Options{
		Workers: 1,
		Suspend: suspend,
		Backend: machine.BackendGoroutines,
		Progress: func(done, total int, r CellResult) {
			if done == k {
				close(suspend)
			}
		},
	})
	var se *SuspendedError
	if !errors.As(err, &se) {
		t.Fatalf("suspend after %d cells: got %v, want *SuspendedError", k, err)
	}
	if len(se.Checkpoint.Done) != k {
		t.Fatalf("checkpoint has %d done cells, want %d", len(se.Checkpoint.Done), k)
	}
	return se.Checkpoint
}

// TestSuspendResumeIdentical is the sweep-layer acceptance test: a run
// suspended at every possible cell boundary and resumed must render —
// CSV and JSON — byte-identically to the uninterrupted run, with the
// checkpoint surviving an encode/decode round trip in between (the
// persisted-and-restarted-process path).
func TestSuspendResumeIdentical(t *testing.T) {
	s := ckptSpec()
	base, err := Run(s, Options{Workers: 1, Backend: machine.BackendGoroutines})
	if err != nil {
		t.Fatal(err)
	}
	if base.Ran == 0 || base.Skipped == 0 {
		t.Fatalf("spec should mix ran and skipped cells, got ran=%d skipped=%d", base.Ran, base.Skipped)
	}
	for k := 1; k < len(base.Cells); k++ {
		ck := suspendAfter(t, s, k)
		if !reflect.DeepEqual(ck.Done, base.Cells[:k]) {
			t.Fatalf("cut %d: checkpoint cells differ from the first %d baseline cells", k, k)
		}
		data, err := ck.Encode()
		if err != nil {
			t.Fatal(err)
		}
		restored, err := DecodeCheckpoint(data)
		if err != nil {
			t.Fatalf("cut %d: decode: %v", k, err)
		}
		if !reflect.DeepEqual(restored, ck) {
			t.Fatalf("cut %d: checkpoint did not round-trip", k)
		}
		got, err := Run(s, Options{Workers: 2, Resume: restored, Backend: machine.BackendGoroutines})
		if err != nil {
			t.Fatalf("cut %d: resume: %v", k, err)
		}
		if got.CSV() != base.CSV() {
			t.Fatalf("cut %d: resumed CSV differs from uninterrupted", k)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("cut %d: resumed Result differs from uninterrupted", k)
		}
	}
}

// TestResumeProgressReplays asserts a resumed run's progress stream
// still accounts for every cell: the resumed cells replay first, in
// cell order, then the simulated remainder follows.
func TestResumeProgressReplays(t *testing.T) {
	s := ckptSpec()
	base, err := Run(s, Options{Workers: 1, Backend: machine.BackendGoroutines})
	if err != nil {
		t.Fatal(err)
	}
	ck := suspendAfter(t, s, 3)
	var keys []string
	total := len(base.Cells)
	_, err = Run(s, Options{
		Workers: 1,
		Resume:  ck,
		Backend: machine.BackendGoroutines,
		Progress: func(done, tot int, r CellResult) {
			if tot != total {
				t.Errorf("progress total %d, want %d", tot, total)
			}
			if done != len(keys)+1 {
				t.Errorf("progress done %d, want %d", done, len(keys)+1)
			}
			keys = append(keys, r.Key())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != total {
		t.Fatalf("progress reported %d cells, want %d", len(keys), total)
	}
	for i := 0; i < 3; i++ {
		if keys[i] != base.Cells[i].Key() {
			t.Fatalf("replayed progress %d = %q, want %q", i, keys[i], base.Cells[i].Key())
		}
	}
}

// TestEmptyCheckpointResumes asserts a checkpoint with no completed
// cells — what a job suspended while still queued persists — resumes
// into a full, identical run.
func TestEmptyCheckpointResumes(t *testing.T) {
	s := ckptSpec()
	base, err := Run(s, Options{Workers: 1, Backend: machine.BackendGoroutines})
	if err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{Spec: *s, Backend: machine.BackendGoroutines}
	data, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(s, Options{Workers: 1, Resume: restored, Backend: machine.BackendGoroutines})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, base) {
		t.Fatal("resume from empty checkpoint differs from a fresh run")
	}
}

// TestResumeRejectsMismatch covers the typed rejections: a checkpoint
// for a different spec, a different backend, or carrying a cell the
// grid does not contain.
func TestResumeRejectsMismatch(t *testing.T) {
	s := ckptSpec()
	ck := suspendAfter(t, s, 2)

	expectMismatch := func(t *testing.T, err error) {
		t.Helper()
		var me *CheckpointMismatchError
		if !errors.As(err, &me) {
			t.Fatalf("got %v, want *CheckpointMismatchError", err)
		}
	}

	t.Run("DifferentSpec", func(t *testing.T) {
		other := ckptSpec()
		other.Seed = 8
		_, err := Run(other, Options{Resume: ck, Backend: machine.BackendGoroutines})
		expectMismatch(t, err)
	})
	t.Run("DifferentBackend", func(t *testing.T) {
		_, err := Run(s, Options{Resume: ck, Backend: machine.BackendEvents})
		expectMismatch(t, err)
	})
	t.Run("ForeignCell", func(t *testing.T) {
		bad := &Checkpoint{Spec: *s, Backend: machine.BackendGoroutines}
		bad.Done = append(bad.Done, ck.Done...)
		bad.Done[0].P = 1024
		_, err := Run(s, Options{Resume: bad, Backend: machine.BackendGoroutines})
		expectMismatch(t, err)
	})
}

// TestDecodeRejectsBadBytes asserts corruption and foreign containers
// fail with typed container errors, never a half-decoded checkpoint.
func TestDecodeRejectsBadBytes(t *testing.T) {
	ck := suspendAfter(t, ckptSpec(), 2)
	data, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, len(data) / 2, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if _, err := DecodeCheckpoint(mut); !errors.Is(err, checkpoint.ErrIntegrity) && !errors.Is(err, checkpoint.ErrBadMagic) {
			t.Fatalf("byte %d flipped: got %v, want integrity/magic error", i, err)
		}
	}
	if _, err := DecodeCheckpoint(data[:len(data)/2]); err == nil {
		t.Fatal("truncated checkpoint decoded")
	}
	other := &checkpoint.Snapshot{Kind: "matscale/des-run", Version: 1}
	var ke *checkpoint.KindError
	if _, err := DecodeCheckpoint(other.Encode()); !errors.As(err, &ke) {
		t.Fatalf("foreign kind: got %v, want *checkpoint.KindError", err)
	}
}

// TestCancelBeatsSuspend asserts that when both channels are closed the
// sweep reports cancellation, not suspension.
func TestCancelBeatsSuspend(t *testing.T) {
	cancel := make(chan struct{})
	suspend := make(chan struct{})
	close(cancel)
	close(suspend)
	_, err := Run(ckptSpec(), Options{Workers: 1, Cancel: cancel, Suspend: suspend})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

// TestSuspendedErrorMessage pins the human-facing rendering.
func TestSuspendedErrorMessage(t *testing.T) {
	se := &SuspendedError{Checkpoint: &Checkpoint{Done: make([]CellResult, 3)}}
	if got, want := se.Error(), "sweep: suspended with 3 cells done"; got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
	me := &CheckpointMismatchError{Reason: "x"}
	if got, want := me.Error(), "sweep: checkpoint mismatch: x"; got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
	_ = fmt.Sprintf("%v", me)
}
