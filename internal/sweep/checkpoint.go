package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strconv"

	"matscale/internal/checkpoint"
	"matscale/internal/machine"
)

// Cell-boundary checkpoints. A sweep's cells are independent pure
// functions of their canonical keys, so the sweep engine has a natural
// consistent cut of its own: between cells. Suspension lets in-flight
// cells finish (a cell is the granularity — the goroutine backend has
// no mid-simulation cut, and the events backend's mid-run cuts are a
// per-cell concern, see internal/des), then snapshots the completed
// CellResults keyed by cell identity. Resuming seeds those results
// back in and simulates only the remainder; because every cell is
// deterministic, the resumed Result renders byte-identically to an
// uninterrupted run's. Both backends participate — this layer never
// looks inside a simulation.

// sweepSnapKind and sweepSnapVersion identify the sweep checkpoint
// payload inside the container. The payload is JSON (the sweep layer
// is not hot; self-description beats compactness here), versioned so a
// schema change is a typed rejection, not a misdecode.
const (
	sweepSnapKind    = "matscale/sweep-job"
	sweepSnapVersion = 1
)

// Checkpoint is a suspended sweep: the spec, the backend it ran on,
// and the results of every cell that completed before the cut. It is
// the unit matscale-server persists for suspended jobs.
type Checkpoint struct {
	Spec    Spec
	Backend machine.Backend
	// Done holds completed cells in sweep cell order.
	Done []CellResult
}

// ckptPayload is the JSON schema of the checkpoint payload. Backend
// travels as its name so the bytes stay self-describing.
type ckptPayload struct {
	Spec    Spec         `json:"spec"`
	Backend string       `json:"backend"`
	Done    []CellResult `json:"done"`
}

// SuspendedError reports a sweep stopped on request (Options.Suspend).
// It is not a failure: the Checkpoint it carries resumes the sweep —
// in this process or another — with output byte-identical to never
// having stopped.
type SuspendedError struct {
	Checkpoint *Checkpoint
}

func (e *SuspendedError) Error() string {
	return fmt.Sprintf("sweep: suspended with %d cells done", len(e.Checkpoint.Done))
}

// CheckpointMismatchError reports a checkpoint that cannot seed the
// given run: a different spec or backend.
type CheckpointMismatchError struct {
	Reason string
}

func (e *CheckpointMismatchError) Error() string {
	return "sweep: checkpoint mismatch: " + e.Reason
}

// errSuspended is the sentinel a worker returns for a cell skipped by
// suspension; Run folds it into a SuspendedError.
var errSuspended = errors.New("sweep: suspended")

// Encode renders the checkpoint as a versioned, integrity-hashed
// container (see internal/checkpoint).
func (c *Checkpoint) Encode() ([]byte, error) {
	payload, err := json.Marshal(ckptPayload{
		Spec:    c.Spec,
		Backend: c.Backend.String(),
		Done:    c.Done,
	})
	if err != nil {
		return nil, fmt.Errorf("sweep: encode checkpoint: %w", err)
	}
	s := &checkpoint.Snapshot{
		Kind:    sweepSnapKind,
		Version: sweepSnapVersion,
		Meta: map[string]string{
			"backend":    c.Backend.String(),
			"cells_done": strconv.Itoa(len(c.Done)),
		},
		Payload: payload,
	}
	return s.Encode(), nil
}

// DecodeCheckpoint parses and verifies an encoded sweep checkpoint:
// container integrity, kind and version, then the payload schema.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	s, err := checkpoint.Decode(data)
	if err != nil {
		return nil, err
	}
	if err := s.Expect(sweepSnapKind, sweepSnapVersion); err != nil {
		return nil, err
	}
	var p ckptPayload
	if err := json.Unmarshal(s.Payload, &p); err != nil {
		return nil, fmt.Errorf("sweep: decode checkpoint payload: %w", err)
	}
	b, err := machine.ParseBackend(p.Backend)
	if err != nil {
		return nil, fmt.Errorf("sweep: decode checkpoint: %w", err)
	}
	if err := p.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("sweep: checkpoint spec: %w", err)
	}
	return &Checkpoint{Spec: p.Spec, Backend: b, Done: p.Done}, nil
}

// validateResume checks a checkpoint against the run it is asked to
// seed. The spec and backend must match exactly: a checkpoint's cells
// are only reusable under the identical configuration.
func validateResume(ck *Checkpoint, s *Spec, backend machine.Backend) error {
	if !reflect.DeepEqual(ck.Spec, *s) {
		return &CheckpointMismatchError{Reason: "checkpoint was taken for a different spec"}
	}
	if ck.Backend != backend {
		return &CheckpointMismatchError{Reason: fmt.Sprintf(
			"checkpoint was taken on backend %q, resuming on %q", ck.Backend, backend)}
	}
	return nil
}
