package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	ch := &Chart{
		Title:  "test chart",
		XLabel: "n",
		Width:  20,
		Height: 6,
		Series: []Series{
			{Name: "up", Marker: '*', X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
			{Name: "down", Marker: 'o', X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
		},
	}
	s := ch.Render()
	for _, frag := range []string{"test chart", "*", "o", "legend:", "*=up", "o=down"} {
		if !strings.Contains(s, frag) {
			t.Errorf("render missing %q:\n%s", frag, s)
		}
	}
	lines := strings.Split(s, "\n")
	if len(lines) < 9 { // title + 6 rows + axis + labels
		t.Fatalf("only %d lines:\n%s", len(lines), s)
	}
	// The rising series ends top-right: last row of the plot area has a
	// marker near the left (low y at low... the falling series), and
	// the first plot row has one near the right.
	if !strings.Contains(lines[1], "*") {
		t.Errorf("top row lacks the rising series:\n%s", s)
	}
}

func TestRenderEmpty(t *testing.T) {
	ch := &Chart{Title: "empty"}
	if s := ch.Render(); !strings.Contains(s, "no data") {
		t.Fatalf("empty chart render = %q", s)
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	ch := &Chart{
		Width: 10, Height: 4,
		Series: []Series{{Name: "pt", Marker: 'x', X: []float64{5}, Y: []float64{2}}},
	}
	s := ch.Render()
	if !strings.Contains(s, "x") {
		t.Fatalf("single point not plotted:\n%s", s)
	}
}

func TestRenderDefaultDimensions(t *testing.T) {
	ch := &Chart{Series: []Series{{Name: "a", Marker: '.', X: []float64{0, 1}, Y: []float64{0, 1}}}}
	s := ch.Render()
	if len(strings.Split(s, "\n")) < 16 {
		t.Fatalf("default height not applied:\n%s", s)
	}
}
