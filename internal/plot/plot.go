// Package plot renders small ASCII line charts for the CLI: the
// efficiency-vs-matrix-size figures of Section 9 and the scaling
// curves, drawn the way the paper plots them but in a terminal.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	Marker byte
	X, Y   []float64
}

// Chart renders series over a shared axis grid.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 60)
	Height int // plot area rows (default 16)
	Series []Series
}

// Render draws the chart. Points from later series overwrite earlier
// ones where they collide; axis ranges cover all series.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return c.Title + "\n(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for _, s := range c.Series {
		for i := range s.X {
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(w-1))
			row := int((s.Y[i] - ymin) / (ymax - ymin) * float64(h-1))
			grid[h-1-row][col] = s.Marker
		}
	}

	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	for r, line := range grid {
		yVal := ymax - (ymax-ymin)*float64(r)/float64(h-1)
		fmt.Fprintf(&sb, "%8.3f |%s|\n", yVal, line)
	}
	fmt.Fprintf(&sb, "%8s +%s+\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&sb, "%8s  %-*.4g%*.4g\n", "", w/2, xmin, w-w/2, xmax)
	if c.XLabel != "" || len(c.Series) > 0 {
		fmt.Fprintf(&sb, "%8s  %s   legend:", "", c.XLabel)
		for _, s := range c.Series {
			fmt.Fprintf(&sb, " %c=%s", s.Marker, s.Name)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
