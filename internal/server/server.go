// Package server is the sweep service behind cmd/matscale-server: an
// embeddable job-queue engine that admits SweepSpecs from many
// concurrent clients, executes them on the internal/sweep worker pool,
// streams per-cell progress to subscribers, and memoizes completed
// cells in a shared cache so overlapping sweeps hit byte-identical
// results instead of re-simulating.
//
// The package is wall-clock-free by construction: it sits under the
// repo's determinism contract (docs/ANALYSIS.md), so every time read —
// rate-limiter refills, per-job timeouts — flows through the injected
// Clock interface. With a nil Clock the server still serves jobs; only
// the features that *are* time (rate limiting, timeouts) are disabled.
// That keeps job results a pure function of (spec, seed, backend) and
// makes the timeout and admission paths deterministically testable
// with a fake clock. See docs/SERVER.md for the HTTP API and the
// admission/backpressure semantics.
package server

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"matscale/internal/machine"
	"matscale/internal/sweep"
)

// Clock is the server's only source of wall time. The production
// implementation (defined by the cmd binaries, outside the
// determinism-contract packages) wraps time.Now and time.After; tests
// inject manual clocks to drive rate-limiter refills and job timeouts
// deterministically.
type Clock interface {
	// Now returns the current wall time; it meters rate-limiter refills.
	Now() time.Time
	// After returns a channel that delivers one value after d; it arms
	// per-job timeouts.
	After(d time.Duration) <-chan time.Time
}

// Default admission-control constants, applied by New when the Config
// leaves the field zero.
const (
	DefaultQueueDepth    = 64
	DefaultMaxConcurrent = 2
	DefaultCacheCells    = 1 << 16
	DefaultRetainJobs    = 4096
)

// Config parameterizes a Server. The zero value is usable: defaults
// fill in, and the time-dependent features stay off until a Clock is
// supplied.
type Config struct {
	// QueueDepth bounds the number of admitted-but-not-yet-running
	// jobs; a submit beyond it is rejected with *QueueFullError
	// (0: DefaultQueueDepth).
	QueueDepth int
	// MaxConcurrent is the number of jobs executing simultaneously,
	// each on its own sweep worker pool (0: DefaultMaxConcurrent).
	MaxConcurrent int
	// SweepWorkers is the host worker count each running job fans its
	// cells over (≤ 0: all CPUs — note total host goroutines scale as
	// MaxConcurrent × SweepWorkers).
	SweepWorkers int
	// RatePerSec, when positive, token-bucket rate-limits admission;
	// submits beyond the rate are rejected with *RateLimitedError.
	// Requires a Clock.
	RatePerSec float64
	// Burst is the token-bucket depth (0: max(1, ceil(RatePerSec))).
	Burst int
	// JobTimeout, when positive, bounds each job's wall-clock run; a
	// job exceeding it aborts at the next cell boundary and fails with
	// *JobTimeoutError. Requires a Clock.
	JobTimeout time.Duration
	// CacheCells sizes the built-in LRU cell cache (0:
	// DefaultCacheCells; < 0: caching disabled). Ignored when Cache is
	// set.
	CacheCells int
	// Cache, when non-nil, replaces the built-in LRU — e.g. to share
	// one cache across servers. Cache stats are then absent from
	// Stats.
	Cache sweep.CellCache
	// Backend is the default simulation engine for jobs that don't
	// request one.
	Backend machine.Backend
	// RetainJobs bounds how many terminal jobs stay queryable; the
	// oldest-finished are evicted beyond it (0: DefaultRetainJobs).
	RetainJobs int
	// Clock injects wall time; nil disables RatePerSec and JobTimeout.
	Clock Clock
}

// Typed admission and execution errors. The HTTP layer maps each to a
// status code and machine-readable kind; embedded callers dispatch
// with errors.As.
type (
	// QueueFullError rejects a submit when the job queue is at
	// capacity.
	QueueFullError struct{ Depth int }
	// RateLimitedError rejects a submit when the token bucket is
	// empty; RetryAfter estimates when a token will be available.
	RateLimitedError struct{ RetryAfter time.Duration }
	// ShuttingDownError rejects a submit after Shutdown began.
	ShuttingDownError struct{}
	// BadSpecError rejects a submit whose spec fails validation.
	BadSpecError struct{ Err error }
	// JobTimeoutError fails a job that exceeded Config.JobTimeout.
	JobTimeoutError struct{ Timeout time.Duration }
)

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("server: job queue full (depth %d)", e.Depth)
}

func (e *RateLimitedError) Error() string {
	return fmt.Sprintf("server: admission rate limit exceeded (retry in %v)", e.RetryAfter)
}

func (e *ShuttingDownError) Error() string { return "server: shutting down" }

func (e *BadSpecError) Error() string { return "server: invalid spec: " + e.Err.Error() }

func (e *BadSpecError) Unwrap() error { return e.Err }

func (e *JobTimeoutError) Error() string {
	return fmt.Sprintf("server: job exceeded its %v timeout", e.Timeout)
}

// Server is the sweep service engine. Construct with New; all methods
// are safe for concurrent use.
type Server struct {
	cfg   Config
	cache sweep.CellCache
	lru   *LRUCache // nil when Config.Cache replaced the built-in

	mu         sync.Mutex
	draining   bool
	queue      chan *Job
	jobs       map[string]*Job
	doneOrder  []string // terminal job IDs, oldest first, for retention eviction
	nextID     int
	tokens     float64
	lastRefill time.Time
	refilled   bool

	running     int
	submitted   int
	completed   int
	failed      int
	rejQueue    int
	rejRate     int
	rejSpec     int
	cellsServed int

	wg sync.WaitGroup
}

// New builds a Server, applies Config defaults, and starts its
// MaxConcurrent worker goroutines. It fails when a time-dependent
// feature is configured without a Clock.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = DefaultRetainJobs
	}
	if cfg.Clock == nil {
		if cfg.RatePerSec > 0 {
			return nil, fmt.Errorf("server: RatePerSec requires a Clock")
		}
		if cfg.JobTimeout > 0 {
			return nil, fmt.Errorf("server: JobTimeout requires a Clock")
		}
	}
	if cfg.RatePerSec > 0 && cfg.Burst <= 0 {
		cfg.Burst = int(cfg.RatePerSec)
		if float64(cfg.Burst) < cfg.RatePerSec {
			cfg.Burst++
		}
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if !cfg.Backend.Known() {
		return nil, fmt.Errorf("server: unknown default backend %v", cfg.Backend)
	}
	s := &Server{
		cfg:   cfg,
		queue: make(chan *Job, cfg.QueueDepth),
		jobs:  map[string]*Job{},
	}
	if cfg.Cache != nil {
		s.cache = cfg.Cache
	} else if cfg.CacheCells >= 0 {
		n := cfg.CacheCells
		if n == 0 {
			n = DefaultCacheCells
		}
		s.lru = NewLRUCache(n)
		s.cache = s.lru
	}
	if cfg.RatePerSec > 0 {
		s.tokens = float64(cfg.Burst)
	}
	s.wg.Add(cfg.MaxConcurrent)
	for i := 0; i < cfg.MaxConcurrent; i++ {
		go s.worker()
	}
	return s, nil
}

// Submit validates and admits one sweep job. backend < 0 means the
// server's default. The returned Job is queued (or already running by
// the time the caller looks); rejections are the typed errors above
// and never block.
func (s *Server) Submit(spec *sweep.Spec, backend machine.Backend) (*Job, error) {
	if backend < 0 {
		backend = s.cfg.Backend
	}
	if !backend.Known() {
		return nil, &BadSpecError{Err: fmt.Errorf("unknown backend %v", backend)}
	}
	sp := *spec // shallow copy: the server owns its spec value
	cells, err := sp.Cells()
	if err != nil {
		s.mu.Lock()
		s.rejSpec++
		s.mu.Unlock()
		return nil, &BadSpecError{Err: err}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, &ShuttingDownError{}
	}
	if err := s.admitLocked(); err != nil {
		s.rejRate++
		return nil, err
	}
	s.nextID++
	j := &Job{
		id:       "job-" + strconv.Itoa(s.nextID),
		spec:     &sp,
		backend:  backend,
		total:    len(cells),
		state:    StateQueued,
		finished: make(chan struct{}),
		subs:     map[int]chan Event{},
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.submitted++
		return j, nil
	default:
		s.rejQueue++
		return nil, &QueueFullError{Depth: cap(s.queue)}
	}
}

// admitLocked refills and drains the token bucket; caller holds s.mu.
func (s *Server) admitLocked() error {
	if s.cfg.RatePerSec <= 0 {
		return nil
	}
	now := s.cfg.Clock.Now()
	if s.refilled {
		s.tokens += now.Sub(s.lastRefill).Seconds() * s.cfg.RatePerSec
		if burst := float64(s.cfg.Burst); s.tokens > burst {
			s.tokens = burst
		}
	}
	s.lastRefill, s.refilled = now, true
	if s.tokens < 1 {
		wait := time.Duration((1 - s.tokens) / s.cfg.RatePerSec * float64(time.Second))
		return &RateLimitedError{RetryAfter: wait}
	}
	s.tokens--
	return nil
}

// Job returns a submitted job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Shutdown stops admitting jobs (submits return *ShuttingDownError)
// and blocks until every already-admitted job — running and queued —
// has drained. Safe to call more than once.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// worker drains the job queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job on the sweep engine, publishing progress and
// enforcing the per-job timeout. The timeout aborts at the next cell
// boundary (cells are the cancel granularity), so the worker is freed
// after at most one in-flight cell finishes.
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	j.setState(StateRunning)

	opts := sweep.Options{
		Workers: s.cfg.SweepWorkers,
		Backend: j.backend,
		Cache:   s.cache,
		Progress: func(done, total int, r sweep.CellResult) {
			j.publishProgress(done, total, r)
		},
	}
	var cancel chan struct{}
	var timeout <-chan time.Time
	if s.cfg.JobTimeout > 0 {
		cancel = make(chan struct{})
		opts.Cancel = cancel
		timeout = s.cfg.Clock.After(s.cfg.JobTimeout)
	}

	type outcome struct {
		res *sweep.Result
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := sweep.Run(j.spec, opts)
		resCh <- outcome{res, err}
	}()

	var out outcome
	if timeout == nil {
		out = <-resCh
	} else {
		select {
		case out = <-resCh:
		case <-timeout:
			close(cancel)
			out = <-resCh // at most one cell still in flight
			if out.err != nil {
				out = outcome{nil, &JobTimeoutError{Timeout: s.cfg.JobTimeout}}
			}
		}
	}

	s.mu.Lock()
	s.running--
	if out.err != nil {
		s.failed++
	} else {
		s.completed++
		s.cellsServed += j.total
	}
	s.mu.Unlock()
	j.finish(out.res, out.err)
	s.retire(j.id)
}

// retire records a terminal job for retention accounting and evicts
// the oldest terminal jobs beyond Config.RetainJobs.
func (s *Server) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.doneOrder = append(s.doneOrder, id)
	for len(s.doneOrder) > s.cfg.RetainJobs {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

// Stats is a point-in-time snapshot of the server's admission,
// execution and cache counters.
type Stats struct {
	// QueueDepth is the configured bound; Queued and Running are the
	// jobs currently waiting and executing.
	QueueDepth int `json:"queue_depth"`
	Queued     int `json:"queued"`
	Running    int `json:"running"`
	// Submitted counts admissions; Completed/Failed are terminal
	// outcomes; the Rejected* counters split the refusals by cause.
	Submitted     int `json:"submitted"`
	Completed     int `json:"completed"`
	Failed        int `json:"failed"`
	RejectedQueue int `json:"rejected_queue_full"`
	RejectedRate  int `json:"rejected_rate_limited"`
	RejectedSpec  int `json:"rejected_bad_spec"`
	// CellsServed totals the grid cells of completed jobs (hits and
	// misses alike).
	CellsServed int `json:"cells_served"`
	// Jobs is the number of jobs currently queryable by ID.
	Jobs     int  `json:"jobs"`
	Draining bool `json:"draining"`
	// Cache reports the built-in LRU (absent when a custom Cache or
	// CacheCells < 0 is configured).
	Cache *CacheStats `json:"cache,omitempty"`
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		QueueDepth:    cap(s.queue),
		Queued:        len(s.queue),
		Running:       s.running,
		Submitted:     s.submitted,
		Completed:     s.completed,
		Failed:        s.failed,
		RejectedQueue: s.rejQueue,
		RejectedRate:  s.rejRate,
		RejectedSpec:  s.rejSpec,
		CellsServed:   s.cellsServed,
		Jobs:          len(s.jobs),
		Draining:      s.draining,
	}
	s.mu.Unlock()
	if s.lru != nil {
		cs := s.lru.Stats()
		st.Cache = &cs
	}
	return st
}
