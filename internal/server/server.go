// Package server is the sweep service behind cmd/matscale-server: an
// embeddable job-queue engine that admits SweepSpecs from many
// concurrent clients, executes them on the internal/sweep worker pool,
// streams per-cell progress to subscribers, and memoizes completed
// cells in a shared cache so overlapping sweeps hit byte-identical
// results instead of re-simulating.
//
// The package is wall-clock-free by construction: it sits under the
// repo's determinism contract (docs/ANALYSIS.md), so every time read —
// rate-limiter refills, per-job timeouts — flows through the injected
// Clock interface. With a nil Clock the server still serves jobs; only
// the features that *are* time (rate limiting, timeouts) are disabled.
// That keeps job results a pure function of (spec, seed, backend) and
// makes the timeout and admission paths deterministically testable
// with a fake clock. See docs/SERVER.md for the HTTP API and the
// admission/backpressure semantics.
package server

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"matscale/internal/machine"
	"matscale/internal/sweep"
)

// Clock is the server's only source of wall time. The production
// implementation (defined by the cmd binaries, outside the
// determinism-contract packages) wraps time.Now and time.After; tests
// inject manual clocks to drive rate-limiter refills and job timeouts
// deterministically.
type Clock interface {
	// Now returns the current wall time; it meters rate-limiter refills.
	Now() time.Time
	// After returns a channel that delivers one value after d; it arms
	// per-job timeouts.
	After(d time.Duration) <-chan time.Time
}

// Default admission-control constants, applied by New when the Config
// leaves the field zero.
const (
	DefaultQueueDepth    = 64
	DefaultMaxConcurrent = 2
	DefaultCacheCells    = 1 << 16
	DefaultRetainJobs    = 4096
)

// Config parameterizes a Server. The zero value is usable: defaults
// fill in, and the time-dependent features stay off until a Clock is
// supplied.
type Config struct {
	// QueueDepth bounds the number of admitted-but-not-yet-running
	// jobs; a submit beyond it is rejected with *QueueFullError
	// (0: DefaultQueueDepth).
	QueueDepth int
	// MaxConcurrent is the number of jobs executing simultaneously,
	// each on its own sweep worker pool (0: DefaultMaxConcurrent).
	MaxConcurrent int
	// SweepWorkers is the host worker count each running job fans its
	// cells over (≤ 0: all CPUs — note total host goroutines scale as
	// MaxConcurrent × SweepWorkers).
	SweepWorkers int
	// RatePerSec, when positive, token-bucket rate-limits admission;
	// submits beyond the rate are rejected with *RateLimitedError.
	// Requires a Clock.
	RatePerSec float64
	// Burst is the token-bucket depth (0: max(1, ceil(RatePerSec))).
	Burst int
	// JobTimeout, when positive, bounds each job's wall-clock run; a
	// job exceeding it aborts at the next cell boundary and fails with
	// *JobTimeoutError. Requires a Clock.
	JobTimeout time.Duration
	// CacheCells sizes the built-in LRU cell cache (0:
	// DefaultCacheCells; < 0: caching disabled). Ignored when Cache is
	// set.
	CacheCells int
	// Cache, when non-nil, replaces the built-in LRU — e.g. to share
	// one cache across servers. Cache stats are then absent from
	// Stats.
	Cache sweep.CellCache
	// Backend is the default simulation engine for jobs that don't
	// request one.
	Backend machine.Backend
	// RetainJobs bounds how many terminal jobs stay queryable; the
	// oldest-finished are evicted beyond it (0: DefaultRetainJobs).
	RetainJobs int
	// SuspendOnTimeout converts JobTimeout expiries into suspensions:
	// instead of cancelling at the next cell boundary and discarding
	// every completed cell, the job suspends there with a checkpoint and
	// can be resumed to finish the remainder. Off, the legacy behavior
	// applies: the job fails with *JobTimeoutError.
	SuspendOnTimeout bool
	// CheckpointDir, when non-empty, persists every suspended job's
	// checkpoint as <dir>/<id>.ckpt (written to a temp file and renamed,
	// so a crash never leaves a torn checkpoint) and removes it when the
	// job reaches a terminal state. New scans the directory and restores
	// its suspended jobs — IDs included — so suspended work survives a
	// server restart.
	CheckpointDir string
	// Clock injects wall time; nil disables RatePerSec and JobTimeout.
	Clock Clock
}

// Typed admission, job-control and execution errors. Every type
// carries its ErrorKind — the HTTP layer derives the status code and
// wire kind from it, and errors.Is(err, Kind…) matches it — so
// embedded callers can dispatch by kind or by concrete type.
type (
	// QueueFullError rejects a submit when the job queue is at
	// capacity.
	QueueFullError struct{ Depth int }
	// RateLimitedError rejects a submit when the token bucket is
	// empty; RetryAfter estimates when a token will be available.
	RateLimitedError struct{ RetryAfter time.Duration }
	// ShuttingDownError rejects a submit after Shutdown began.
	ShuttingDownError struct{}
	// BadSpecError rejects a submit whose spec fails validation.
	BadSpecError struct{ Err error }
	// JobTimeoutError fails a job that exceeded Config.JobTimeout with
	// SuspendOnTimeout off.
	JobTimeoutError struct{ Timeout time.Duration }
	// UnknownJobError rejects a verb or query against an ID the server
	// does not hold.
	UnknownJobError struct{ ID string }
	// InvalidTransitionError rejects a job-control verb the job's
	// current state does not admit.
	InvalidTransitionError struct {
		ID   string
		From State
		Verb string
	}
	// CanceledError is the terminal error of a job ended by the cancel
	// verb.
	CanceledError struct{}
)

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("server: job queue full (depth %d)", e.Depth)
}

func (e *QueueFullError) Kind() ErrorKind { return KindQueueFull }

func (e *RateLimitedError) Error() string {
	return fmt.Sprintf("server: admission rate limit exceeded (retry in %v)", e.RetryAfter)
}

func (e *RateLimitedError) Kind() ErrorKind { return KindRateLimited }

func (e *ShuttingDownError) Error() string { return "server: shutting down" }

func (e *ShuttingDownError) Kind() ErrorKind { return KindShuttingDown }

func (e *BadSpecError) Error() string { return "server: invalid spec: " + e.Err.Error() }

func (e *BadSpecError) Unwrap() error { return e.Err }

func (e *BadSpecError) Kind() ErrorKind { return KindBadSpec }

func (e *JobTimeoutError) Error() string {
	return fmt.Sprintf("server: job exceeded its %v timeout", e.Timeout)
}

func (e *JobTimeoutError) Kind() ErrorKind { return KindJobTimeout }

func (e *UnknownJobError) Error() string { return "server: unknown job " + e.ID }

func (e *UnknownJobError) Kind() ErrorKind { return KindUnknownJob }

func (e *InvalidTransitionError) Error() string {
	return fmt.Sprintf("server: cannot %s job %s in state %s", e.Verb, e.ID, e.From)
}

func (e *InvalidTransitionError) Kind() ErrorKind { return KindInvalidTransition }

func (e *CanceledError) Error() string { return "server: job canceled" }

func (e *CanceledError) Kind() ErrorKind { return KindCanceled }

// kindIs implements the shared Is logic: a typed error matches its own
// ErrorKind as an errors.Is target.
func kindIs(e kinded, target error) bool {
	k, ok := target.(ErrorKind)
	return ok && k == e.Kind()
}

func (e *QueueFullError) Is(target error) bool         { return kindIs(e, target) }
func (e *RateLimitedError) Is(target error) bool       { return kindIs(e, target) }
func (e *ShuttingDownError) Is(target error) bool      { return kindIs(e, target) }
func (e *BadSpecError) Is(target error) bool           { return kindIs(e, target) }
func (e *JobTimeoutError) Is(target error) bool        { return kindIs(e, target) }
func (e *UnknownJobError) Is(target error) bool        { return kindIs(e, target) }
func (e *InvalidTransitionError) Is(target error) bool { return kindIs(e, target) }
func (e *CanceledError) Is(target error) bool          { return kindIs(e, target) }

// Server is the sweep service engine. Construct with New; all methods
// are safe for concurrent use.
type Server struct {
	cfg   Config
	cache sweep.CellCache
	lru   *LRUCache // nil when Config.Cache replaced the built-in

	mu         sync.Mutex
	draining   bool
	queue      chan *Job
	jobs       map[string]*Job
	doneOrder  []string // terminal job IDs, oldest first, for retention eviction
	nextID     int
	tokens     float64
	lastRefill time.Time
	refilled   bool

	running     int
	suspended   int // jobs currently in StateSuspended
	submitted   int
	completed   int
	failed      int
	canceled    int
	rejQueue    int
	rejRate     int
	rejSpec     int
	cellsServed int

	wg sync.WaitGroup
}

// New builds a Server, applies Config defaults, and starts its
// MaxConcurrent worker goroutines. It fails when a time-dependent
// feature is configured without a Clock.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = DefaultRetainJobs
	}
	if cfg.Clock == nil {
		if cfg.RatePerSec > 0 {
			return nil, fmt.Errorf("server: RatePerSec requires a Clock")
		}
		if cfg.JobTimeout > 0 {
			return nil, fmt.Errorf("server: JobTimeout requires a Clock")
		}
	}
	if cfg.RatePerSec > 0 && cfg.Burst <= 0 {
		cfg.Burst = int(cfg.RatePerSec)
		if float64(cfg.Burst) < cfg.RatePerSec {
			cfg.Burst++
		}
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if !cfg.Backend.Known() {
		return nil, fmt.Errorf("server: unknown default backend %v", cfg.Backend)
	}
	s := &Server{
		cfg:   cfg,
		queue: make(chan *Job, cfg.QueueDepth),
		jobs:  map[string]*Job{},
	}
	if cfg.Cache != nil {
		s.cache = cfg.Cache
	} else if cfg.CacheCells >= 0 {
		n := cfg.CacheCells
		if n == 0 {
			n = DefaultCacheCells
		}
		s.lru = NewLRUCache(n)
		s.cache = s.lru
	}
	if cfg.RatePerSec > 0 {
		s.tokens = float64(cfg.Burst)
	}
	if err := s.restoreCheckpoints(); err != nil {
		return nil, err
	}
	s.wg.Add(cfg.MaxConcurrent)
	for i := 0; i < cfg.MaxConcurrent; i++ {
		go s.worker()
	}
	return s, nil
}

// Submit validates and admits one sweep job. backend < 0 means the
// server's default. The returned Job is queued (or already running by
// the time the caller looks); rejections are the typed errors above
// and never block.
func (s *Server) Submit(spec *sweep.Spec, backend machine.Backend) (*Job, error) {
	if backend < 0 {
		backend = s.cfg.Backend
	}
	if !backend.Known() {
		return nil, &BadSpecError{Err: fmt.Errorf("unknown backend %v", backend)}
	}
	sp := *spec // shallow copy: the server owns its spec value
	cells, err := sp.Cells()
	if err != nil {
		s.mu.Lock()
		s.rejSpec++
		s.mu.Unlock()
		return nil, &BadSpecError{Err: err}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, &ShuttingDownError{}
	}
	if err := s.admitLocked(); err != nil {
		s.rejRate++
		return nil, err
	}
	s.nextID++
	j := &Job{
		id:       "job-" + strconv.Itoa(s.nextID),
		spec:     &sp,
		backend:  backend,
		total:    len(cells),
		state:    StateQueued,
		finished: make(chan struct{}),
		subs:     map[int]chan Event{},
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.submitted++
		return j, nil
	default:
		s.rejQueue++
		return nil, &QueueFullError{Depth: cap(s.queue)}
	}
}

// admitLocked refills and drains the token bucket; caller holds s.mu.
func (s *Server) admitLocked() error {
	if s.cfg.RatePerSec <= 0 {
		return nil
	}
	now := s.cfg.Clock.Now()
	if s.refilled {
		s.tokens += now.Sub(s.lastRefill).Seconds() * s.cfg.RatePerSec
		if burst := float64(s.cfg.Burst); s.tokens > burst {
			s.tokens = burst
		}
	}
	s.lastRefill, s.refilled = now, true
	if s.tokens < 1 {
		wait := time.Duration((1 - s.tokens) / s.cfg.RatePerSec * float64(time.Second))
		return &RateLimitedError{RetryAfter: wait}
	}
	s.tokens--
	return nil
}

// Job returns a submitted job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Suspend stops a job at its next cell boundary with a resumable
// checkpoint. A queued job suspends immediately (its checkpoint is
// empty — no cells ran yet — and its stale queue entry is defused by
// claimRun); a running job is asked asynchronously and transitions
// once its in-flight cells finish — poll Status or subscribe for the
// "suspended" event. Any other state is an *InvalidTransitionError.
func (s *Server) Suspend(id string) error {
	j, ok := s.Job(id)
	if !ok {
		return &UnknownJobError{ID: id}
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		ck := &sweep.Checkpoint{Spec: *j.spec, Backend: j.backend}
		j.state = StateSuspended
		j.checkpoint = ck
		j.broadcastLocked(Event{Type: "state", State: StateSuspended.String(), Done: j.done, Total: j.total})
		j.mu.Unlock()
		s.mu.Lock()
		s.suspended++
		s.mu.Unlock()
		return s.persistCheckpoint(id, ck)
	case StateRunning:
		j.mu.Unlock()
		j.requestSuspend()
		return nil
	default:
		from := j.state
		j.mu.Unlock()
		return &InvalidTransitionError{ID: id, From: from, Verb: "suspend"}
	}
}

// Resume re-enqueues a suspended job; its next run attempt seeds the
// sweep with the checkpoint, so completed cells are not re-simulated
// and the final result is byte-identical to an uninterrupted run. The
// queue bound still applies (*QueueFullError), and a draining server
// refuses (*ShuttingDownError); the admission rate limit does not —
// the job was already admitted once.
func (s *Server) Resume(id string) error {
	j, ok := s.Job(id)
	if !ok {
		return &UnknownJobError{ID: id}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return &ShuttingDownError{}
	}
	j.mu.Lock()
	if j.state != StateSuspended {
		from := j.state
		j.mu.Unlock()
		s.mu.Unlock()
		return &InvalidTransitionError{ID: id, From: from, Verb: "resume"}
	}
	select {
	case s.queue <- j:
		j.state = StateQueued
		j.broadcastLocked(Event{Type: "state", State: StateQueued.String(), Done: j.done, Total: j.total})
		j.mu.Unlock()
		s.suspended--
		s.mu.Unlock()
		return nil
	default:
		j.mu.Unlock()
		depth := cap(s.queue)
		s.mu.Unlock()
		return &QueueFullError{Depth: depth}
	}
}

// Cancel terminates a job. Queued and suspended jobs cancel
// immediately (their persisted checkpoint, if any, is removed); a
// running job is asked asynchronously and fails over to
// StateCancelled at its next cell boundary. Terminal states reject
// with *InvalidTransitionError.
func (s *Server) Cancel(id string) error {
	j, ok := s.Job(id)
	if !ok {
		return &UnknownJobError{ID: id}
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued, StateSuspended:
		wasSuspended := j.state == StateSuspended
		j.finishLocked(StateCancelled, nil, &CanceledError{})
		j.mu.Unlock()
		close(j.finished)
		s.mu.Lock()
		s.canceled++
		if wasSuspended {
			s.suspended--
		}
		s.mu.Unlock()
		s.retire(id)
		return nil
	case StateRunning:
		j.mu.Unlock()
		j.requestCancel()
		return nil
	default:
		from := j.state
		j.mu.Unlock()
		return &InvalidTransitionError{ID: id, From: from, Verb: "cancel"}
	}
}

// Shutdown stops admitting jobs (submits return *ShuttingDownError)
// and blocks until every already-admitted job — running and queued —
// has drained. Safe to call more than once.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// worker drains the job queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one run attempt of a job, publishing progress and
// enforcing the per-job timeout. Suspension, cancellation and timeout
// all act at the next cell boundary (cells are the stop granularity),
// so the worker is freed after at most one in-flight cell finishes. A
// stale queue entry — the job was suspended or cancelled while queued
// — fails the claim and is skipped.
func (s *Server) runJob(j *Job) {
	if !j.claimRun() {
		return
	}
	s.mu.Lock()
	s.running++
	s.mu.Unlock()

	opts := sweep.Options{
		Workers: s.cfg.SweepWorkers,
		Backend: j.backend,
		Cache:   s.cache,
		Suspend: j.suspendCh,
		Cancel:  j.cancelCh,
		Resume:  j.resumeSeed(),
		Progress: func(done, total int, r sweep.CellResult) {
			j.publishProgress(done, total, r)
		},
	}
	var timeout <-chan time.Time
	if s.cfg.JobTimeout > 0 {
		timeout = s.cfg.Clock.After(s.cfg.JobTimeout)
	}

	type outcome struct {
		res *sweep.Result
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		res, err := sweep.Run(j.spec, opts)
		resCh <- outcome{res, err}
	}()

	var out outcome
	timedOut := false
	if timeout == nil {
		out = <-resCh
	} else {
		select {
		case out = <-resCh:
		case <-timeout:
			timedOut = true
			if s.cfg.SuspendOnTimeout {
				// Keep the completed cells: suspend with a checkpoint
				// instead of cancelling and discarding them.
				j.requestSuspend()
			} else {
				j.requestCancel()
			}
			out = <-resCh // at most one cell still in flight
		}
	}

	s.mu.Lock()
	s.running--
	s.mu.Unlock()
	s.settle(j, out.res, out.err, timedOut)
}

// settle maps a run attempt's outcome onto the job's next state. The
// precedence when stop requests raced the run: a completed sweep
// always wins (nothing to discard or resume); then a suspension with
// its checkpoint; then the legacy timeout failure (a timeout closes
// the same cancel channel the cancel verb does, so it must be
// classified before the verb); then an explicit cancel.
func (s *Server) settle(j *Job, res *sweep.Result, err error, timedOut bool) {
	var se *sweep.SuspendedError
	switch {
	case err == nil:
		s.bump(func() { s.completed++; s.cellsServed += j.total })
		j.finish(StateDone, res, nil)
		s.retire(j.id)
	case errors.As(err, &se):
		if perr := s.persistCheckpoint(j.id, se.Checkpoint); perr != nil {
			// Suspending without the durability the operator configured
			// would silently break restart-resume; fail the job instead.
			s.bump(func() { s.failed++ })
			j.finish(StateFailed, nil, perr)
			s.retire(j.id)
			return
		}
		s.bump(func() { s.suspended++ })
		j.suspend(se.Checkpoint)
	case timedOut && !s.cfg.SuspendOnTimeout:
		s.bump(func() { s.failed++ })
		j.finish(StateFailed, nil, &JobTimeoutError{Timeout: s.cfg.JobTimeout})
		s.retire(j.id)
	case j.cancelRequested():
		s.bump(func() { s.canceled++ })
		j.finish(StateCancelled, nil, &CanceledError{})
		s.retire(j.id)
	default:
		s.bump(func() { s.failed++ })
		j.finish(StateFailed, nil, err)
		s.retire(j.id)
	}
}

// bump runs one counter update under the server lock.
func (s *Server) bump(fn func()) {
	s.mu.Lock()
	fn()
	s.mu.Unlock()
}

// retire records a terminal job for retention accounting, deletes its
// persisted checkpoint (it is no longer resumable), and evicts the
// oldest terminal jobs beyond Config.RetainJobs.
func (s *Server) retire(id string) {
	s.removeCheckpoint(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.doneOrder = append(s.doneOrder, id)
	for len(s.doneOrder) > s.cfg.RetainJobs {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

// Stats is a point-in-time snapshot of the server's admission,
// execution and cache counters.
type Stats struct {
	// QueueDepth is the configured bound; Queued and Running are the
	// jobs currently waiting and executing.
	QueueDepth int `json:"queue_depth"`
	Queued     int `json:"queued"`
	Running    int `json:"running"`
	// Suspended counts jobs currently parked with a checkpoint.
	Suspended int `json:"suspended"`
	// Submitted counts admissions; Completed/Failed/Canceled are
	// terminal outcomes; the Rejected* counters split the refusals by
	// cause.
	Submitted     int `json:"submitted"`
	Completed     int `json:"completed"`
	Failed        int `json:"failed"`
	Canceled      int `json:"canceled"`
	RejectedQueue int `json:"rejected_queue_full"`
	RejectedRate  int `json:"rejected_rate_limited"`
	RejectedSpec  int `json:"rejected_bad_spec"`
	// CellsServed totals the grid cells of completed jobs (hits and
	// misses alike).
	CellsServed int `json:"cells_served"`
	// Jobs is the number of jobs currently queryable by ID.
	Jobs     int  `json:"jobs"`
	Draining bool `json:"draining"`
	// Cache reports the built-in LRU (absent when a custom Cache or
	// CacheCells < 0 is configured).
	Cache *CacheStats `json:"cache,omitempty"`
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		QueueDepth:    cap(s.queue),
		Queued:        len(s.queue),
		Running:       s.running,
		Suspended:     s.suspended,
		Submitted:     s.submitted,
		Completed:     s.completed,
		Failed:        s.failed,
		Canceled:      s.canceled,
		RejectedQueue: s.rejQueue,
		RejectedRate:  s.rejRate,
		RejectedSpec:  s.rejSpec,
		CellsServed:   s.cellsServed,
		Jobs:          len(s.jobs),
		Draining:      s.draining,
	}
	s.mu.Unlock()
	if s.lru != nil {
		cs := s.lru.Stats()
		st.Cache = &cs
	}
	return st
}
