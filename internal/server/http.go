package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"matscale/internal/machine"
	"matscale/internal/sweep"
)

// SubmitRequest is the POST /v1/jobs body: the sweep spec plus an
// optional backend name ("goroutines" or "events"; the server default
// when empty).
type SubmitRequest struct {
	Spec    sweep.Spec `json:"spec"`
	Backend string     `json:"backend,omitempty"`
}

// SubmitResponse acknowledges an admitted job.
type SubmitResponse struct {
	ID    string `json:"id"`
	Cells int    `json:"cells"`
	State string `json:"state"`
}

// apiError is the JSON error body: a human message plus a
// machine-readable kind matching the typed rejection.
type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// Handler returns the server's HTTP API. Jobs are a uniform resource
// with POST verb endpoints for lifecycle control:
//
//	POST /v1/jobs                submit a SweepSpec; 202 + job ID
//	GET  /v1/jobs/{id}           job status snapshot
//	GET  /v1/jobs/{id}/result    completed sweep as JSON (byte-identical
//	                             for cache hits and misses, and for
//	                             resumed and uninterrupted runs)
//	GET  /v1/jobs/{id}/events    SSE stream of state/progress events
//	POST /v1/jobs/{id}/suspend   stop at the next cell boundary with a
//	                             resumable checkpoint; 200 + status
//	POST /v1/jobs/{id}/resume    re-enqueue a suspended job; 200 + status
//	POST /v1/jobs/{id}/cancel    terminate the job; 200 + status
//	GET  /v1/stats               admission, execution and cache counters
//	GET  /v1/healthz             liveness probe
//
// The pre-redesign /v1/sweeps… routes remain as thin aliases of the
// corresponding /v1/jobs… handlers.
//
// Deprecated routes aside, every error body is {"error", "kind"} with
// kind an ErrorKind token and the status its HTTPStatus. See
// docs/SERVER.md for the full protocol and the job state machine.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	// /v1/sweeps is the deprecated alias of /v1/jobs: same handlers,
	// same bodies, kept for pre-redesign clients.
	for _, root := range []string{"/v1/jobs", "/v1/sweeps"} {
		mux.HandleFunc("POST "+root, s.handleSubmit)
		mux.HandleFunc("GET "+root+"/{id}", s.handleStatus)
		mux.HandleFunc("GET "+root+"/{id}/result", s.handleResult)
		mux.HandleFunc("GET "+root+"/{id}/events", s.handleEvents)
		mux.HandleFunc("POST "+root+"/{id}/suspend", s.handleVerb("suspend", s.Suspend))
		mux.HandleFunc("POST "+root+"/{id}/resume", s.handleVerb("resume", s.Resume))
		mux.HandleFunc("POST "+root+"/{id}/cancel", s.handleVerb("cancel", s.Cancel))
	}
	return mux
}

// handleVerb adapts one job-control method into its POST endpoint: on
// success the response is the job's post-transition status snapshot
// (for an asynchronous transition — suspending or cancelling a running
// job — the snapshot may still show the old state; subscribe to
// events or poll for the landing).
func (s *Server) handleVerb(verb string, apply func(id string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := apply(id); err != nil {
			writeError(w, err)
			return
		}
		j, ok := s.Job(id)
		if !ok { // evicted between the verb and the snapshot
			writeError(w, &UnknownJobError{ID: id})
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "malformed request body: " + err.Error(), Kind: "bad_request"})
		return
	}
	backend := machine.Backend(-1) // server default
	if req.Backend != "" {
		b, err := machine.ParseBackend(req.Backend)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error(), Kind: "bad_request"})
			return
		}
		backend = b
	}
	j, err := s.Submit(&req.Spec, backend)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: j.ID(), Cells: j.Total(), State: j.Status().State})
}

// writeError maps any typed server error onto its kind's status code
// and wire token, attaching Retry-After where a retry can succeed.
func writeError(w http.ResponseWriter, err error) {
	k := KindOf(err)
	var rl *RateLimitedError
	switch {
	case errors.As(err, &rl):
		w.Header().Set("Retry-After", strconv.Itoa(int(rl.RetryAfter.Seconds())+1))
	case k == KindQueueFull, k == KindNotDone:
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, k.HTTPStatus(), apiError{Error: err.Error(), Kind: k.String()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, &UnknownJobError{ID: r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, &UnknownJobError{ID: r.PathValue("id")})
		return
	}
	switch st := j.State(); {
	case st == StateDone:
		res, _ := j.Result()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		// WriteJSON emission is deterministic for a fixed spec, and
		// cached cells reproduce the miss path's values exactly, so
		// these bytes are identical whether the job hit or missed.
		if err := res.WriteJSON(w); err != nil {
			return // client went away mid-body
		}
	case st == StateSuspended:
		writeJSON(w, KindSuspended.HTTPStatus(), apiError{
			Error: "job suspended; resume it to continue", Kind: KindSuspended.String()})
	case st.Terminal(): // failed or cancelled: surface the typed job error
		_, jerr := j.Result()
		writeError(w, jerr)
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, KindNotDone.HTTPStatus(), apiError{
			Error: "job not finished: " + st.String(), Kind: KindNotDone.String()})
	}
}

// handleEvents streams a job's lifecycle as Server-Sent Events: an
// initial "state" snapshot, one "progress" event per completed cell
// (best-effort: a slow client may miss some), and a terminal "done" or
// "error" event, after which the stream closes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job", Kind: "unknown_job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported by connection", Kind: "internal"})
		return
	}
	events, cancel := j.Subscribe()
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	snap := j.Status()
	writeSSE(w, Event{Type: "state", State: snap.State, Done: snap.Done, Total: snap.Total})
	fl.Flush()

	for {
		select {
		case ev, open := <-events:
			if !open {
				writeSSE(w, terminalEvent(j.Status()))
				fl.Flush()
				return
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// terminalEvent renders a finished job's closing SSE frame.
func terminalEvent(st Status) Event {
	if st.State == StateFailed.String() {
		return Event{Type: "error", State: st.State, Done: st.Done, Total: st.Total, Error: st.Error}
	}
	return Event{Type: "done", State: st.State, Done: st.Done, Total: st.Total}
}

// writeSSE emits one `event:`/`data:` frame; the data is the Event as
// JSON.
func writeSSE(w http.ResponseWriter, ev Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return // Event marshaling cannot fail; keep the stream alive
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
}

// writeJSON emits a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return // client went away mid-body
	}
}
