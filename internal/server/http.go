package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"matscale/internal/machine"
	"matscale/internal/sweep"
)

// SubmitRequest is the POST /v1/sweeps body: the sweep spec plus an
// optional backend name ("goroutines" or "events"; the server default
// when empty).
type SubmitRequest struct {
	Spec    sweep.Spec `json:"spec"`
	Backend string     `json:"backend,omitempty"`
}

// SubmitResponse acknowledges an admitted job.
type SubmitResponse struct {
	ID    string `json:"id"`
	Cells int    `json:"cells"`
	State string `json:"state"`
}

// apiError is the JSON error body: a human message plus a
// machine-readable kind matching the typed rejection.
type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// Handler returns the server's HTTP API:
//
//	POST /v1/sweeps              submit a SweepSpec; 202 + job ID
//	GET  /v1/sweeps/{id}         job status snapshot
//	GET  /v1/sweeps/{id}/result  completed sweep as JSON (byte-identical
//	                             for cache hits and misses)
//	GET  /v1/sweeps/{id}/events  SSE stream of state/progress events
//	GET  /v1/stats               admission, execution and cache counters
//	GET  /v1/healthz             liveness probe
//
// See docs/SERVER.md for the full protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "malformed request body: " + err.Error(), Kind: "bad_request"})
		return
	}
	backend := machine.Backend(-1) // server default
	if req.Backend != "" {
		b, err := machine.ParseBackend(req.Backend)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error(), Kind: "bad_request"})
			return
		}
		backend = b
	}
	j, err := s.Submit(&req.Spec, backend)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: j.ID(), Cells: j.Total(), State: j.Status().State})
}

// writeSubmitError maps the typed admission errors onto status codes
// and kinds.
func writeSubmitError(w http.ResponseWriter, err error) {
	var (
		qf *QueueFullError
		rl *RateLimitedError
		sd *ShuttingDownError
		bs *BadSpecError
	)
	switch {
	case errors.As(err, &qf):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error(), Kind: "queue_full"})
	case errors.As(err, &rl):
		sec := int(rl.RetryAfter.Seconds()) + 1
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error(), Kind: "rate_limited"})
	case errors.As(err, &sd):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error(), Kind: "shutting_down"})
	case errors.As(err, &bs):
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error(), Kind: "bad_spec"})
	default:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error(), Kind: "internal"})
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job", Kind: "unknown_job"})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job", Kind: "unknown_job"})
		return
	}
	st := j.Status()
	switch st.State {
	case StateDone.String():
		res, _ := j.Result()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		// WriteJSON emission is deterministic for a fixed spec, and
		// cached cells reproduce the miss path's values exactly, so
		// these bytes are identical whether the job hit or missed.
		if err := res.WriteJSON(w); err != nil {
			return // client went away mid-body
		}
	case StateFailed.String():
		code := http.StatusInternalServerError
		if st.ErrorKind == "job_timeout" {
			code = http.StatusGatewayTimeout
		}
		writeJSON(w, code, apiError{Error: st.Error, Kind: st.ErrorKind})
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, apiError{Error: "job not finished: " + st.State, Kind: "not_done"})
	}
}

// handleEvents streams a job's lifecycle as Server-Sent Events: an
// initial "state" snapshot, one "progress" event per completed cell
// (best-effort: a slow client may miss some), and a terminal "done" or
// "error" event, after which the stream closes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job", Kind: "unknown_job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported by connection", Kind: "internal"})
		return
	}
	events, cancel := j.Subscribe()
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	snap := j.Status()
	writeSSE(w, Event{Type: "state", State: snap.State, Done: snap.Done, Total: snap.Total})
	fl.Flush()

	for {
		select {
		case ev, open := <-events:
			if !open {
				writeSSE(w, terminalEvent(j.Status()))
				fl.Flush()
				return
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// terminalEvent renders a finished job's closing SSE frame.
func terminalEvent(st Status) Event {
	if st.State == StateFailed.String() {
		return Event{Type: "error", State: st.State, Done: st.Done, Total: st.Total, Error: st.Error}
	}
	return Event{Type: "done", State: st.State, Done: st.Done, Total: st.Total}
}

// writeSSE emits one `event:`/`data:` frame; the data is the Event as
// JSON.
func writeSSE(w http.ResponseWriter, ev Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return // Event marshaling cannot fail; keep the stream alive
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
}

// writeJSON emits a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return // client went away mid-body
	}
}
