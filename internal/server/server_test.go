package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"matscale/internal/sweep"
)

// testSpec is a small grid that every test job runs: 8 applicable
// cells, each a real (fast) simulation.
func testSpec() *sweep.Spec {
	return &sweep.Spec{
		Algorithms: []string{"cannon", "gk"},
		Machines:   []string{"custom"},
		Ts:         17, Tw: 3,
		Ps:   []int{16, 64},
		Ns:   []int{16, 32},
		Seed: 1,
	}
}

// fakeClock is a manually advanced Clock: Now returns the set time and
// After hands out timer channels the test fires explicitly.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []chan time.Time
	armed  chan struct{}
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(0, 0), armed: make(chan struct{}, 16)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	c.timers = append(c.timers, ch)
	c.mu.Unlock()
	c.armed <- struct{}{}
	return ch
}

// Fire triggers every armed timer.
func (c *fakeClock) Fire() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ch := range c.timers {
		select {
		case ch <- c.now:
		default:
		}
	}
}

// blockingCache stalls every cell lookup until released, making a
// running job deterministically long-lived for queue and timeout
// tests.
type blockingCache struct {
	entered chan struct{} // signaled once per Get
	release chan struct{} // closed to unblock all Gets
}

func newBlockingCache() *blockingCache {
	return &blockingCache{entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (b *blockingCache) Get(key string) (sweep.CellResult, bool) {
	b.entered <- struct{}{}
	<-b.release
	return sweep.CellResult{}, false
}

func (b *blockingCache) Put(string, sweep.CellResult) {}

func waitJob(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Finished():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
}

func TestSubmitRejectsBadSpec(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	_, err = s.Submit(&sweep.Spec{Algorithms: []string{"nope"}}, -1)
	var bad *BadSpecError
	if !errors.As(err, &bad) {
		t.Fatalf("bad spec returned %v, want *BadSpecError", err)
	}
	_, err = s.Submit(testSpec(), 99)
	if !errors.As(err, &bad) {
		t.Fatalf("bad backend returned %v, want *BadSpecError", err)
	}
	if st := s.Stats(); st.RejectedSpec != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestJobLifecycleAndResult(t *testing.T) {
	s, err := New(Config{SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	j, err := s.Submit(testSpec(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if j.Total() != 8 {
		t.Fatalf("total = %d, want 8", j.Total())
	}
	waitJob(t, j)
	res, jerr := j.Result()
	if jerr != nil || res == nil {
		t.Fatalf("result = %v, %v", res, jerr)
	}
	if len(res.Cells) != 8 || res.Ran == 0 || res.Ran+res.Skipped != 8 {
		t.Fatalf("cells = %d ran = %d skipped = %d", len(res.Cells), res.Ran, res.Skipped)
	}
	st := j.Status()
	if st.State != "done" || st.Done != 8 || st.Total != 8 || st.Error != "" {
		t.Fatalf("status = %+v", st)
	}
	got, ok := s.Job(j.ID())
	if !ok || got != j {
		t.Fatal("job not queryable by ID")
	}
	if st := s.Stats(); st.Completed != 1 || st.CellsServed != 8 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueFullTypedError(t *testing.T) {
	gate := newBlockingCache()
	s, err := New(Config{QueueDepth: 1, MaxConcurrent: 1, SweepWorkers: 1, Cache: gate})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Submit(testSpec(), -1)
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered // a is running (blocked mid-cell), queue is empty
	b, err := s.Submit(testSpec(), -1)
	if err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}
	_, err = s.Submit(testSpec(), -1)
	var qf *QueueFullError
	if !errors.As(err, &qf) || qf.Depth != 1 {
		t.Fatalf("third submit returned %v, want *QueueFullError{Depth: 1}", err)
	}
	if st := s.Stats(); st.RejectedQueue != 1 || st.Queued != 1 || st.Running != 1 {
		t.Fatalf("stats = %+v", st)
	}
	close(gate.release)
	waitJob(t, a)
	waitJob(t, b)
	s.Shutdown()
}

func TestRateLimitedTypedError(t *testing.T) {
	clock := newFakeClock()
	s, err := New(Config{RatePerSec: 1, Burst: 2, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	var jobs []*Job
	for i := 0; i < 2; i++ {
		j, err := s.Submit(testSpec(), -1)
		if err != nil {
			t.Fatalf("submit %d within burst: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	_, err = s.Submit(testSpec(), -1)
	var rl *RateLimitedError
	if !errors.As(err, &rl) {
		t.Fatalf("burst-exhausted submit returned %v, want *RateLimitedError", err)
	}
	if rl.RetryAfter <= 0 || rl.RetryAfter > time.Second {
		t.Fatalf("retry-after = %v", rl.RetryAfter)
	}
	clock.Advance(1100 * time.Millisecond) // one token refills
	j, err := s.Submit(testSpec(), -1)
	if err != nil {
		t.Fatalf("post-refill submit: %v", err)
	}
	jobs = append(jobs, j)
	for _, j := range jobs {
		waitJob(t, j)
	}
	if st := s.Stats(); st.RejectedRate != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNewRejectsClocklessTimeFeatures(t *testing.T) {
	if _, err := New(Config{RatePerSec: 5}); err == nil {
		t.Fatal("RatePerSec without Clock accepted")
	}
	if _, err := New(Config{JobTimeout: time.Second}); err == nil {
		t.Fatal("JobTimeout without Clock accepted")
	}
}

func TestJobTimeoutTypedError(t *testing.T) {
	clock := newFakeClock()
	gate := newBlockingCache()
	s, err := New(Config{MaxConcurrent: 1, SweepWorkers: 1, JobTimeout: time.Minute, Clock: clock, Cache: gate})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(testSpec(), -1)
	if err != nil {
		t.Fatal(err)
	}
	<-clock.armed  // the job's timeout timer is armed
	<-gate.entered // and its first cell is in flight
	clock.Fire()
	close(gate.release) // the in-flight cell finishes; the rest are canceled
	waitJob(t, j)
	res, jerr := j.Result()
	var to *JobTimeoutError
	if !errors.As(jerr, &to) || to.Timeout != time.Minute {
		t.Fatalf("timed-out job returned %v, want *JobTimeoutError{Timeout: 1m}", jerr)
	}
	if res != nil {
		t.Fatal("timed-out job kept a partial result")
	}
	st := j.Status()
	if st.State != "failed" || st.ErrorKind != "job_timeout" {
		t.Fatalf("status = %+v", st)
	}
	if stats := s.Stats(); stats.Failed != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	s.Shutdown()
}

func TestJobBeatsTimerAfterTimeoutRace(t *testing.T) {
	clock := newFakeClock()
	s, err := New(Config{MaxConcurrent: 1, SweepWorkers: 2, JobTimeout: time.Minute, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(testSpec(), -1)
	if err != nil {
		t.Fatal(err)
	}
	// Fire the timer at some point during (or after) the run: whenever
	// the sweep completes its cells before the cancel lands, the job
	// must still count as done, never as timed out.
	<-clock.armed
	waitJob(t, j)
	clock.Fire()
	if _, jerr := j.Result(); jerr != nil {
		t.Fatalf("completed job reported %v", jerr)
	}
	s.Shutdown()
}

func TestShutdownDrainsAdmittedJobs(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 2, SweepWorkers: 1, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit(testSpec(), -1)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	s.Shutdown() // blocks until every admitted job drained
	for _, j := range jobs {
		select {
		case <-j.Finished():
		default:
			t.Fatalf("job %s not drained by Shutdown", j.ID())
		}
		if res, jerr := j.Result(); jerr != nil || res == nil {
			t.Fatalf("drained job %s: %v, %v", j.ID(), res, jerr)
		}
	}
	_, err = s.Submit(testSpec(), -1)
	var sd *ShuttingDownError
	if !errors.As(err, &sd) {
		t.Fatalf("post-shutdown submit returned %v, want *ShuttingDownError", err)
	}
	if st := s.Stats(); !st.Draining || st.Completed != 6 {
		t.Fatalf("stats = %+v", st)
	}
	s.Shutdown() // idempotent
}

func TestJobRetentionEvictsOldest(t *testing.T) {
	s, err := New(Config{RetainJobs: 2, SweepWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := s.Submit(testSpec(), -1)
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, j)
		ids = append(ids, j.ID())
	}
	s.Shutdown()
	for _, id := range ids[:2] {
		if _, ok := s.Job(id); ok {
			t.Fatalf("job %s should have been evicted", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := s.Job(id); !ok {
			t.Fatalf("job %s evicted too early", id)
		}
	}
}

func TestSubscribeReplaysTerminalState(t *testing.T) {
	s, err := New(Config{SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	j, err := s.Submit(testSpec(), -1)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	ch, cancel := j.Subscribe()
	defer cancel()
	if _, open := <-ch; open {
		t.Fatal("subscription to a finished job must start closed")
	}
}

func TestConcurrentOverlappingSubmissionsByteIdentical(t *testing.T) {
	s, err := New(Config{MaxConcurrent: 4, SweepWorkers: 2, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	specs := []*sweep.Spec{testSpec(), testSpec()}
	specs[1].Ts = 50 // a second distinct workload (different machine constants)
	const perSpec = 8
	type got struct {
		spec int
		csv  string
		err  error
	}
	out := make([]got, 2*perSpec)
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			which := i % 2
			j, err := s.Submit(specs[which], -1)
			if err != nil {
				out[i] = got{err: err}
				return
			}
			<-j.Finished()
			res, jerr := j.Result()
			if jerr != nil {
				out[i] = got{err: jerr}
				return
			}
			out[i] = got{spec: which, csv: res.CSV()}
		}(i)
	}
	wg.Wait()
	s.Shutdown()
	var first [2]string
	for i, g := range out {
		if g.err != nil {
			t.Fatalf("client %d: %v", i, g.err)
		}
		if first[g.spec] == "" {
			first[g.spec] = g.csv
		} else if g.csv != first[g.spec] {
			t.Fatalf("client %d got different bytes for spec %d", i, g.spec)
		}
	}
	if first[0] == first[1] {
		t.Fatal("distinct seeds produced identical sweeps; the test is vacuous")
	}
	st := s.Stats()
	if st.Cache == nil || st.Cache.Hits == 0 {
		t.Fatalf("overlapping submissions produced no cache hits: %+v", st)
	}
	// Every job looks each of its 8 cells up exactly once. At most
	// MaxConcurrent jobs can race the same cold cell, so misses are
	// bounded by 4 concurrent duplicates of the 16 distinct cells.
	if got := st.Cache.Hits + st.Cache.Misses; got != 16*8 {
		t.Fatalf("lookup count = %d, want %d (%+v)", got, 16*8, st.Cache)
	}
	if st.Cache.Hits < 16*8-4*16 {
		t.Fatalf("too few hits: %+v", st.Cache)
	}
}
