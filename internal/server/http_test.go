package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// httpServer spins up a Server behind httptest and tears both down
// with the test.
func httpServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown()
	})
	return s, ts
}

// submitHTTP posts a spec and returns the decoded acknowledgment.
func submitHTTP(t *testing.T, base string, body string) SubmitResponse {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, b)
	}
	var ack SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack
}

// awaitDone polls the status endpoint until the job is terminal.
func awaitDone(t *testing.T, base, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" || st.State == "failed" {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Status{}
}

// fetchResult GETs a completed job's result bytes.
func fetchResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/sweeps/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s: %s", resp.Status, b)
	}
	return b
}

const specJSON = `{"spec":{"algorithms":["cannon","gk"],"machines":["custom"],"ts":17,"tw":3,"ps":[16,64],"ns":[16,32],"seed":1}}`

// TestHTTPCacheHitByteIdenticalToMiss is the differential proof the
// acceptance criteria name: the same canonical (spec, seed, backend)
// submitted twice — a cold miss and then a full cache hit — must
// produce byte-identical /result responses. Run under -race by the CI
// race job.
func TestHTTPCacheHitByteIdenticalToMiss(t *testing.T) {
	s, ts := httpServer(t, Config{SweepWorkers: 2})

	ack1 := submitHTTP(t, ts.URL, specJSON)
	if st := awaitDone(t, ts.URL, ack1.ID); st.State != "done" {
		t.Fatalf("job 1: %+v", st)
	}
	cold := fetchResult(t, ts.URL, ack1.ID)
	miss := s.Stats().Cache.Misses
	if miss == 0 {
		t.Fatal("cold run recorded no cache misses")
	}

	ack2 := submitHTTP(t, ts.URL, specJSON)
	if ack2.ID == ack1.ID {
		t.Fatal("second submission reused the job ID")
	}
	if st := awaitDone(t, ts.URL, ack2.ID); st.State != "done" {
		t.Fatalf("job 2: %+v", st)
	}
	hot := fetchResult(t, ts.URL, ack2.ID)

	if !bytes.Equal(cold, hot) {
		t.Fatalf("cache-hit response differs from cold-miss response:\ncold: %d bytes\nhot:  %d bytes", len(cold), len(hot))
	}
	st := s.Stats()
	if st.Cache.Hits != ack1.Cells {
		t.Fatalf("second run should hit every cell: %+v", st.Cache)
	}
	if st.Cache.Misses != miss {
		t.Fatalf("second run added misses: %+v", st.Cache)
	}
	// Refetching an already-served result is also stable.
	if again := fetchResult(t, ts.URL, ack1.ID); !bytes.Equal(cold, again) {
		t.Fatal("refetched result differs")
	}
}

// TestHTTPCacheSharedAcrossServers proves the cache key is canonical
// beyond one process's lifetime: a second server sharing the first's
// cache serves the identical bytes without recomputing.
func TestHTTPCacheSharedAcrossServers(t *testing.T) {
	shared := NewLRUCache(1024)
	_, ts1 := httpServer(t, Config{SweepWorkers: 2, Cache: shared})
	ack1 := submitHTTP(t, ts1.URL, specJSON)
	awaitDone(t, ts1.URL, ack1.ID)
	cold := fetchResult(t, ts1.URL, ack1.ID)

	before := shared.Stats()
	_, ts2 := httpServer(t, Config{SweepWorkers: 2, Cache: shared})
	ack2 := submitHTTP(t, ts2.URL, specJSON)
	awaitDone(t, ts2.URL, ack2.ID)
	hot := fetchResult(t, ts2.URL, ack2.ID)

	if !bytes.Equal(cold, hot) {
		t.Fatal("second server's cache-hit response differs")
	}
	after := shared.Stats()
	if after.Misses != before.Misses || after.Hits != before.Hits+ack1.Cells {
		t.Fatalf("second server recomputed: before %+v after %+v", before, after)
	}
}

func TestHTTPConcurrentClients(t *testing.T) {
	_, ts := httpServer(t, Config{MaxConcurrent: 4, SweepWorkers: 1, QueueDepth: 64})
	const clients = 12
	results := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(specJSON))
			if err != nil {
				errs[i] = err
				return
			}
			var ack SubmitResponse
			err = json.NewDecoder(resp.Body).Decode(&ack)
			resp.Body.Close()
			if err != nil {
				errs[i] = err
				return
			}
			for {
				r, err := http.Get(ts.URL + "/v1/sweeps/" + ack.ID)
				if err != nil {
					errs[i] = err
					return
				}
				var st Status
				err = json.NewDecoder(r.Body).Decode(&st)
				r.Body.Close()
				if err != nil {
					errs[i] = err
					return
				}
				if st.State == "failed" {
					errs[i] = fmt.Errorf("job failed: %s", st.Error)
					return
				}
				if st.State == "done" {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			r, err := http.Get(ts.URL + "/v1/sweeps/" + ack.ID + "/result")
			if err != nil {
				errs[i] = err
				return
			}
			results[i], err = io.ReadAll(r.Body)
			r.Body.Close()
			if err != nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("client %d received different bytes", i)
		}
	}
}

func TestHTTPSSEStreamsProgressAndDone(t *testing.T) {
	// Gate the first cell so the subscription provably attaches while
	// the job is still running; release once the stream is open.
	gate := newBlockingCache()
	_, ts := httpServer(t, Config{MaxConcurrent: 1, SweepWorkers: 1, Cache: gate})
	ack := submitHTTP(t, ts.URL, specJSON)
	<-gate.entered
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + ack.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	var events []string
	var lastData string
	sc := bufio.NewScanner(resp.Body)
	released := false
	for sc.Scan() { // the server closes the stream after the terminal event
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
		if strings.HasPrefix(line, "data: ") {
			lastData = strings.TrimPrefix(line, "data: ")
		}
		if !released && line == "" { // first frame arrived; let the sweep run
			released = true
			close(gate.release)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[len(events)-1] != "done" {
		t.Fatalf("events = %v, want trailing done", events)
	}
	if events[0] != "state" {
		t.Fatalf("stream must open with a state snapshot, got %v", events)
	}
	progress := 0
	for _, e := range events {
		if e == "progress" {
			progress++
		}
	}
	if progress == 0 {
		t.Fatalf("no progress events in %v", events)
	}
	var final Event
	if err := json.Unmarshal([]byte(lastData), &final); err != nil {
		t.Fatal(err)
	}
	if final.Done != ack.Cells || final.Total != ack.Cells {
		t.Fatalf("terminal event = %+v, want %d/%d cells", final, ack.Cells, ack.Cells)
	}
	// A late subscriber gets the terminal event immediately.
	resp2, err := http.Get(ts.URL + "/v1/sweeps/" + ack.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	late, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(late), "event: done") {
		t.Fatalf("late subscription missing terminal event:\n%s", late)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	_, ts := httpServer(t, Config{SweepWorkers: 1})

	get := func(path string) (int, apiError) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ae apiError
		if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, ae
	}

	if code, ae := get("/v1/sweeps/nope"); code != http.StatusNotFound || ae.Kind != "unknown_job" {
		t.Fatalf("unknown job: %d %+v", code, ae)
	}
	if code, ae := get("/v1/sweeps/nope/result"); code != http.StatusNotFound || ae.Kind != "unknown_job" {
		t.Fatalf("unknown result: %d %+v", code, ae)
	}
	if code, ae := get("/v1/sweeps/nope/events"); code != http.StatusNotFound || ae.Kind != "unknown_job" {
		t.Fatalf("unknown events: %d %+v", code, ae)
	}

	post := func(body string) (int, apiError) {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ae apiError
		if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, ae
	}

	if code, ae := post(`{not json`); code != http.StatusBadRequest || ae.Kind != "bad_request" {
		t.Fatalf("malformed body: %d %+v", code, ae)
	}
	if code, ae := post(`{"spec":{"algorithms":["nope"],"machines":["ncube2"],"ps":[16],"ns":[16]}}`); code != http.StatusBadRequest || ae.Kind != "bad_spec" {
		t.Fatalf("bad spec: %d %+v", code, ae)
	}
	if code, ae := post(`{"spec":{"algorithms":["gk"],"machines":["ncube2"],"ps":[16],"ns":[16]},"backend":"abacus"}`); code != http.StatusBadRequest || ae.Kind != "bad_request" {
		t.Fatalf("bad backend: %d %+v", code, ae)
	}

	// Health and stats endpoints answer.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
	var st Stats
	r2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if st.QueueDepth != DefaultQueueDepth {
		t.Fatalf("stats = %+v", st)
	}
}

// TestHTTPResultNotDone exercises the 409 path with a job stalled
// behind a gated cache.
func TestHTTPResultNotDone(t *testing.T) {
	gate := newBlockingCache()
	_, ts := httpServer(t, Config{MaxConcurrent: 1, SweepWorkers: 1, Cache: gate})
	ack := submitHTTP(t, ts.URL, specJSON)
	<-gate.entered
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + ack.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var ae apiError
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || ae.Kind != "not_done" {
		t.Fatalf("unfinished result: %d %+v", resp.StatusCode, ae)
	}
	close(gate.release)
	awaitDone(t, ts.URL, ack.ID)
}

// TestHTTPBackendSelection runs the same spec on both engines and —
// backend equivalence — expects identical cells.
func TestHTTPBackendSelection(t *testing.T) {
	_, ts := httpServer(t, Config{SweepWorkers: 2})
	goro := submitHTTP(t, ts.URL, `{"spec":{"algorithms":["cannon"],"machines":["ncube2"],"ps":[16],"ns":[16]},"backend":"goroutines"}`)
	events := submitHTTP(t, ts.URL, `{"spec":{"algorithms":["cannon"],"machines":["ncube2"],"ps":[16],"ns":[16]},"backend":"events"}`)
	awaitDone(t, ts.URL, goro.ID)
	awaitDone(t, ts.URL, events.ID)
	var a, b struct {
		Cells json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(fetchResult(t, ts.URL, goro.ID), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(fetchResult(t, ts.URL, events.ID), &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Cells, b.Cells) {
		t.Fatalf("backends disagree:\n%s\n%s", a.Cells, b.Cells)
	}
}
