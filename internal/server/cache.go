package server

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"matscale/internal/sweep"
)

// LRUCache is a bounded, concurrency-safe sweep.CellCache with
// least-recently-used eviction. Entries are keyed by the SHA-256 of
// the canonical cell key (sweep.Spec.CellKey), so entry memory is
// independent of how verbose a spec's fault grammar is, and two
// clients whose different specs expand to the same canonical cell hash
// the same slot. Because a cell's measurement is a pure function of
// its canonical key, a hit is byte-identical to the miss-path
// recomputation — the differential tests in server_test.go prove it at
// the HTTP layer.
type LRUCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[[sha256.Size]byte]*list.Element
	hits      int
	misses    int
	evictions int
}

// lruEntry is one cached cell behind its hashed key.
type lruEntry struct {
	key [sha256.Size]byte
	r   sweep.CellResult
}

// NewLRUCache builds a cache holding at most capacity cells
// (minimum 1).
func NewLRUCache(capacity int) *LRUCache {
	if capacity < 1 {
		capacity = 1
	}
	return &LRUCache{
		capacity: capacity,
		ll:       list.New(),
		items:    map[[sha256.Size]byte]*list.Element{},
	}
}

// Get returns the cached result for a canonical cell key, promoting it
// to most recently used.
func (c *LRUCache) Get(key string) (sweep.CellResult, bool) {
	h := sha256.Sum256([]byte(key))
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[h]
	if !ok {
		c.misses++
		return sweep.CellResult{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).r, true
}

// Put stores a measured result, evicting the least recently used entry
// beyond capacity. Storing an existing key refreshes its recency (the
// value is necessarily identical: measurements are deterministic in
// the key).
func (c *LRUCache) Put(key string, r sweep.CellResult) {
	h := sha256.Sum256([]byte(key))
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[h]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).r = r
		return
	}
	c.items[h] = c.ll.PushFront(&lruEntry{key: h, r: r})
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of cache traffic.
type CacheStats struct {
	Hits      int `json:"hits"`
	Misses    int `json:"misses"`
	Evictions int `json:"evictions"`
	Entries   int `json:"entries"`
	Capacity  int `json:"capacity"`
	// HitRate is Hits / (Hits + Misses), 0 before any traffic. It is a
	// fraction in [0, 1].
	HitRate float64 `json:"hit_rate"`
}

// Stats snapshots the cache counters.
func (c *LRUCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}
