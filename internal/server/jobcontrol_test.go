package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"matscale/internal/sweep"
)

// awaitState polls until the job reaches want.
func awaitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", j.ID(), j.State(), want)
}

// freshCSV runs spec on a throwaway server and returns the result CSV —
// the uninterrupted baseline the suspend/resume tests compare against.
func freshCSV(t *testing.T, spec *sweep.Spec) string {
	t.Helper()
	s, err := New(Config{SweepWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	j, err := s.Submit(spec, -1)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	res, jerr := j.Result()
	if jerr != nil {
		t.Fatal(jerr)
	}
	return res.CSV()
}

func TestSuspendQueuedResumeCompletes(t *testing.T) {
	gate := newBlockingCache()
	s, err := New(Config{QueueDepth: 4, MaxConcurrent: 1, SweepWorkers: 1, Cache: gate})
	if err != nil {
		t.Fatal(err)
	}
	blocker, err := s.Submit(testSpec(), -1)
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered // blocker occupies the only worker
	target, err := s.Submit(testSpec(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Suspend(target.ID()); err != nil {
		t.Fatalf("suspend queued: %v", err)
	}
	if st := target.State(); st != StateSuspended {
		t.Fatalf("state = %s, want suspended (a queued job suspends synchronously)", st)
	}
	ck := target.Checkpoint()
	if ck == nil || len(ck.Done) != 0 {
		t.Fatalf("queued suspension checkpoint = %+v, want empty", ck)
	}
	if st := s.Stats(); st.Suspended != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := s.Resume(target.ID()); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if st := target.State(); st != StateQueued {
		t.Fatalf("state after resume = %s, want queued", st)
	}
	close(gate.release)
	waitJob(t, blocker)
	waitJob(t, target)
	res, jerr := target.Result()
	if jerr != nil {
		t.Fatal(jerr)
	}
	if res.CSV() != freshCSV(t, testSpec()) {
		t.Fatal("resumed job's result differs from an uninterrupted run")
	}
	if st := s.Stats(); st.Suspended != 0 || st.Completed != 2 {
		t.Fatalf("stats = %+v", st)
	}
	s.Shutdown()
}

func TestSuspendRunningKeepsCompletedCells(t *testing.T) {
	gate := newBlockingCache()
	s, err := New(Config{MaxConcurrent: 1, SweepWorkers: 1, Cache: gate})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(testSpec(), -1)
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered // first cell is in flight
	if err := s.Suspend(j.ID()); err != nil {
		t.Fatalf("suspend running: %v", err)
	}
	close(gate.release) // the in-flight cell finishes; the rest are skipped
	awaitState(t, j, StateSuspended)
	ck := j.Checkpoint()
	if ck == nil || len(ck.Done) != 1 {
		t.Fatalf("checkpoint carries %d cells, want exactly the in-flight one", len(ck.Done))
	}
	st := j.Status()
	if st.State != "suspended" || st.Done != 1 || st.Error != "" {
		t.Fatalf("status = %+v", st)
	}
	select {
	case <-j.Finished():
		t.Fatal("suspension must not release Finished waiters")
	default:
	}
	if err := s.Resume(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	res, jerr := j.Result()
	if jerr != nil {
		t.Fatal(jerr)
	}
	if res.CSV() != freshCSV(t, testSpec()) {
		t.Fatal("resumed job's result differs from an uninterrupted run")
	}
	if fin := j.Status(); fin.Done != fin.Total {
		t.Fatalf("final status = %+v", fin)
	}
	s.Shutdown()
}

func TestTimeoutSuspendsWhenConfigured(t *testing.T) {
	clock := newFakeClock()
	gate := newBlockingCache()
	s, err := New(Config{
		MaxConcurrent: 1, SweepWorkers: 1,
		JobTimeout: time.Minute, SuspendOnTimeout: true,
		Clock: clock, Cache: gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(testSpec(), -1)
	if err != nil {
		t.Fatal(err)
	}
	<-clock.armed
	<-gate.entered
	clock.Fire()
	close(gate.release)
	awaitState(t, j, StateSuspended)
	if ck := j.Checkpoint(); ck == nil || len(ck.Done) == 0 {
		t.Fatalf("timeout suspension kept no completed cells: %+v", ck)
	}
	if st := s.Stats(); st.Failed != 0 || st.Suspended != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := s.Resume(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	res, jerr := j.Result()
	if jerr != nil {
		t.Fatalf("resumed-after-timeout job failed: %v", jerr)
	}
	if res.CSV() != freshCSV(t, testSpec()) {
		t.Fatal("result differs from an uninterrupted run")
	}
	s.Shutdown()
}

func TestCancelVerb(t *testing.T) {
	gate := newBlockingCache()
	s, err := New(Config{QueueDepth: 4, MaxConcurrent: 1, SweepWorkers: 1, Cache: gate})
	if err != nil {
		t.Fatal(err)
	}
	running, err := s.Submit(testSpec(), -1)
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered
	queued, err := s.Submit(testSpec(), -1)
	if err != nil {
		t.Fatal(err)
	}

	// Cancel a queued job: synchronous, terminal, typed error.
	if err := s.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	if st := queued.State(); st != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st)
	}
	_, jerr := queued.Result()
	var ce *CanceledError
	if !errors.As(jerr, &ce) || !errors.Is(jerr, KindCanceled) {
		t.Fatalf("cancelled job error = %v, want *CanceledError matching KindCanceled", jerr)
	}

	// Cancel the running job: lands at the next cell boundary.
	if err := s.Cancel(running.ID()); err != nil {
		t.Fatal(err)
	}
	close(gate.release)
	waitJob(t, running)
	if st := running.State(); st != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st)
	}
	if st := running.Status(); st.ErrorKind != "canceled" {
		t.Fatalf("status = %+v", st)
	}
	if st := s.Stats(); st.Canceled != 2 || st.Completed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	s.Shutdown()
}

func TestInvalidTransitionsTyped(t *testing.T) {
	s, err := New(Config{SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	j, err := s.Submit(testSpec(), -1)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)

	for _, verb := range []struct {
		name  string
		apply func(string) error
	}{{"suspend", s.Suspend}, {"resume", s.Resume}, {"cancel", s.Cancel}} {
		err := verb.apply(j.ID())
		var it *InvalidTransitionError
		if !errors.As(err, &it) || !errors.Is(err, KindInvalidTransition) {
			t.Fatalf("%s on done job = %v, want *InvalidTransitionError matching KindInvalidTransition", verb.name, err)
		}
		if it.Verb != verb.name || it.From != StateDone {
			t.Fatalf("error fields = %+v", it)
		}
		var uj *UnknownJobError
		if err := verb.apply("job-nope"); !errors.As(err, &uj) || !errors.Is(err, KindUnknownJob) {
			t.Fatalf("%s on unknown job = %v, want *UnknownJobError matching KindUnknownJob", verb.name, err)
		}
	}
}

func TestCheckpointPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	gate := newBlockingCache()
	s1, err := New(Config{QueueDepth: 4, MaxConcurrent: 1, SweepWorkers: 1, Cache: gate, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	blocker, err := s1.Submit(testSpec(), -1)
	if err != nil {
		t.Fatal(err)
	}
	<-gate.entered
	target, err := s1.Submit(testSpec(), -1)
	if err != nil {
		t.Fatal(err)
	}
	id := target.ID()
	if err := s1.Suspend(id); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, id+".ckpt")); err != nil {
		t.Fatalf("suspension left no checkpoint file: %v", err)
	}
	close(gate.release)
	waitJob(t, blocker)
	s1.Shutdown() // the suspended job survives the drain

	// "Restart": a new server over the same directory restores the
	// suspended job under its original ID.
	s2, err := New(Config{SweepWorkers: 1, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	restored, ok := s2.Job(id)
	if !ok {
		t.Fatalf("job %s not restored", id)
	}
	if st := restored.State(); st != StateSuspended {
		t.Fatalf("restored state = %s, want suspended", st)
	}
	if restored.Total() != target.Total() {
		t.Fatalf("restored total = %d, want %d", restored.Total(), target.Total())
	}
	if st := s2.Stats(); st.Suspended != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// New IDs must not collide with the restored one.
	extra, err := s2.Submit(testSpec(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if extra.ID() == id {
		t.Fatal("restored ID reissued to a new job")
	}
	if err := s2.Resume(id); err != nil {
		t.Fatal(err)
	}
	waitJob(t, restored)
	res, jerr := restored.Result()
	if jerr != nil {
		t.Fatal(jerr)
	}
	if res.CSV() != freshCSV(t, testSpec()) {
		t.Fatal("restart-resumed result differs from an uninterrupted run")
	}
	if _, err := os.Stat(filepath.Join(dir, id+".ckpt")); !os.IsNotExist(err) {
		t.Fatalf("terminal job left its checkpoint file behind (stat: %v)", err)
	}
	waitJob(t, extra)
	s2.Shutdown()
}

func TestRestoreRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-9.ckpt"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{CheckpointDir: dir}); err == nil {
		t.Fatal("corrupt checkpoint accepted at startup")
	}
}

func TestErrorKindTable(t *testing.T) {
	cases := []struct {
		err    error
		kind   ErrorKind
		status int
	}{
		{&QueueFullError{Depth: 1}, KindQueueFull, 429},
		{&RateLimitedError{}, KindRateLimited, 429},
		{&ShuttingDownError{}, KindShuttingDown, 503},
		{&BadSpecError{Err: errors.New("x")}, KindBadSpec, 400},
		{&JobTimeoutError{}, KindJobTimeout, 504},
		{&UnknownJobError{ID: "j"}, KindUnknownJob, 404},
		{&InvalidTransitionError{Verb: "resume"}, KindInvalidTransition, 409},
		{&CanceledError{}, KindCanceled, 409},
		{errors.New("anything else"), KindSweepError, 500},
	}
	for _, tc := range cases {
		if got := KindOf(tc.err); got != tc.kind {
			t.Errorf("KindOf(%T) = %v, want %v", tc.err, got, tc.kind)
		}
		if got := tc.kind.HTTPStatus(); got != tc.status {
			t.Errorf("%v.HTTPStatus() = %d, want %d", tc.kind, got, tc.status)
		}
		if tc.kind != KindSweepError && !errors.Is(tc.err, tc.kind) {
			t.Errorf("errors.Is(%T, %v) = false", tc.err, tc.kind)
		}
	}
}

func TestHTTPJobControlRoutes(t *testing.T) {
	gate := newBlockingCache()
	s, ts := httpServer(t, Config{QueueDepth: 4, MaxConcurrent: 1, SweepWorkers: 1, Cache: gate})
	_ = s

	post := func(path string) (int, map[string]interface{}) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		return resp.StatusCode, body
	}
	get := func(path string) (int, map[string]interface{}) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, body
	}

	// Submit through the deprecated alias and the canonical route; both
	// must serve the same resource.
	blocker := submitHTTP(t, ts.URL, specJSON)
	<-gate.entered
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	var target SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&target); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d", resp.StatusCode)
	}

	// Suspend the queued target via the canonical route.
	if code, body := post("/v1/jobs/" + target.ID + "/suspend"); code != 200 || body["state"] != "suspended" {
		t.Fatalf("suspend: %d %v", code, body)
	}
	// A suspended job's result is a 409 with kind "suspended".
	if code, body := get("/v1/jobs/" + target.ID + "/result"); code != 409 || body["kind"] != "suspended" {
		t.Fatalf("suspended result: %d %v", code, body)
	}
	// Resume through the deprecated alias: same handler, same job.
	if code, body := post("/v1/sweeps/" + target.ID + "/resume"); code != 200 || body["state"] != "queued" {
		t.Fatalf("alias resume: %d %v", code, body)
	}
	// Unknown job: 404 with kind "unknown_job".
	if code, body := post("/v1/jobs/job-nope/cancel"); code != 404 || body["kind"] != "unknown_job" {
		t.Fatalf("unknown cancel: %d %v", code, body)
	}

	close(gate.release)
	if st := awaitDone(t, ts.URL, blocker.ID); st.State != "done" {
		t.Fatalf("blocker: %+v", st)
	}
	if st := awaitDone(t, ts.URL, target.ID); st.State != "done" {
		t.Fatalf("target: %+v", st)
	}
	// Status and result readable via the canonical route too.
	if code, body := get("/v1/jobs/" + target.ID); code != 200 || body["state"] != "done" {
		t.Fatalf("status: %d %v", code, body)
	}
	if got := fetchResult(t, ts.URL, target.ID); len(got) == 0 {
		t.Fatal("empty result")
	}
	// Verbs on a terminal job: 409 invalid_transition.
	if code, body := post("/v1/jobs/" + target.ID + "/suspend"); code != 409 || body["kind"] != "invalid_transition" {
		t.Fatalf("suspend done: %d %v", code, body)
	}
}
