package server

import (
	"errors"
	"net/http"
)

// ErrorKind is the machine-readable classification of every error the
// server surfaces: one enum shared by the typed Go errors, the Status
// payload's error_kind field, and the HTTP error bodies' kind field.
// ErrorKind itself implements error, and each typed error's Is method
// matches its kind, so callers can classify with
// errors.Is(err, server.KindQueueFull) without naming the concrete
// type.
type ErrorKind int

const (
	// KindSweepError classifies a job that failed inside the sweep
	// engine; it is also the fallback for errors no other kind claims.
	KindSweepError ErrorKind = iota
	// KindInternal is a server-side fault unrelated to the request.
	KindInternal
	// KindBadRequest is a malformed request body or parameter.
	KindBadRequest
	// KindBadSpec is a spec or backend that failed validation.
	KindBadSpec
	// KindQueueFull rejects an admission when the queue is at capacity.
	KindQueueFull
	// KindRateLimited rejects an admission beyond the configured rate.
	KindRateLimited
	// KindShuttingDown rejects work arriving after Shutdown began.
	KindShuttingDown
	// KindJobTimeout classifies a job killed by Config.JobTimeout.
	KindJobTimeout
	// KindUnknownJob is a verb or query against an ID the server does
	// not hold.
	KindUnknownJob
	// KindInvalidTransition is a job-control verb the job's current
	// state does not admit.
	KindInvalidTransition
	// KindSuspended marks a request (e.g. for a result) against a job
	// that is suspended rather than finished.
	KindSuspended
	// KindNotDone marks a result request against a job still queued or
	// running.
	KindNotDone
	// KindCanceled classifies a job terminated by the cancel verb.
	KindCanceled
)

// String renders the kind as the stable wire token used in JSON
// payloads ("queue_full", "invalid_transition", …).
func (k ErrorKind) String() string {
	switch k {
	case KindSweepError:
		return "sweep_error"
	case KindInternal:
		return "internal"
	case KindBadRequest:
		return "bad_request"
	case KindBadSpec:
		return "bad_spec"
	case KindQueueFull:
		return "queue_full"
	case KindRateLimited:
		return "rate_limited"
	case KindShuttingDown:
		return "shutting_down"
	case KindJobTimeout:
		return "job_timeout"
	case KindUnknownJob:
		return "unknown_job"
	case KindInvalidTransition:
		return "invalid_transition"
	case KindSuspended:
		return "suspended"
	case KindNotDone:
		return "not_done"
	case KindCanceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// Error makes an ErrorKind usable as an errors.Is target; it is never
// returned as an error itself.
func (k ErrorKind) Error() string { return "server: " + k.String() }

// HTTPStatus is the status code the HTTP layer pairs with the kind.
func (k ErrorKind) HTTPStatus() int {
	switch k {
	case KindBadRequest, KindBadSpec:
		return http.StatusBadRequest
	case KindQueueFull, KindRateLimited:
		return http.StatusTooManyRequests
	case KindShuttingDown:
		return http.StatusServiceUnavailable
	case KindJobTimeout:
		return http.StatusGatewayTimeout
	case KindUnknownJob:
		return http.StatusNotFound
	case KindInvalidTransition, KindSuspended, KindNotDone, KindCanceled:
		return http.StatusConflict
	default: // KindSweepError, KindInternal
		return http.StatusInternalServerError
	}
}

// kinded is the contract every typed server error fulfills.
type kinded interface{ Kind() ErrorKind }

// KindOf classifies any error the server can surface. Errors carrying
// no kind — a sweep engine failure reaching a job's Result — classify
// as KindSweepError.
func KindOf(err error) ErrorKind {
	var k kinded
	if errors.As(err, &k) {
		return k.Kind()
	}
	return KindSweepError
}
