package server

import (
	"sync"

	"matscale/internal/machine"
	"matscale/internal/sweep"
)

// State is a job's position in its lifecycle.
type State int

const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued State = iota
	// StateRunning: executing on the sweep engine.
	StateRunning
	// StateDone: finished with a result.
	StateDone
	// StateFailed: finished with an error (sweep failure or timeout).
	StateFailed
)

// String renders the state for status payloads.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Event is one message on a job's progress stream; the SSE layer
// serializes it as the data of an `event: <Type>` frame.
type Event struct {
	// Type is "state" (lifecycle transition), "progress" (one cell
	// finished), "done" or "error" (terminal).
	Type  string `json:"type"`
	State string `json:"state,omitempty"`
	// Done/Total track cell completion; Cell is the completed cell's
	// key on progress events.
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
	Cell  string `json:"cell,omitempty"`
	Error string `json:"error,omitempty"`
}

// subBuffer is each subscriber's channel depth. Progress events beyond
// a slow subscriber's buffer are dropped (the stream is observability,
// not the source of truth); terminal delivery is by channel close, so
// it cannot be dropped.
const subBuffer = 256

// Job is one admitted sweep. All accessors are safe for concurrent
// use; the server mutates it from the worker that owns it.
type Job struct {
	id      string
	spec    *sweep.Spec
	backend machine.Backend
	total   int

	mu       sync.Mutex
	state    State
	done     int
	result   *sweep.Result
	err      error
	subs     map[int]chan Event
	nextSub  int
	finished chan struct{}
}

// ID returns the server-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Total returns the job's grid cell count.
func (j *Job) Total() int { return j.total }

// Backend returns the simulation engine the job runs on.
func (j *Job) Backend() machine.Backend { return j.backend }

// Finished returns a channel closed when the job reaches a terminal
// state.
func (j *Job) Finished() <-chan struct{} { return j.finished }

// Result returns the sweep result and error of a terminal job; (nil,
// nil) while it is still queued or running.
func (j *Job) Result() (*sweep.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Status is a JSON-able snapshot of a job.
type Status struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Done    int    `json:"done"`
	Total   int    `json:"total"`
	Backend string `json:"backend"`
	Error   string `json:"error,omitempty"`
	// ErrorKind is the machine-readable class of Error ("job_timeout",
	// "sweep_error"), empty on success.
	ErrorKind string `json:"error_kind,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:      j.id,
		State:   j.state.String(),
		Done:    j.done,
		Total:   j.total,
		Backend: j.backend.String(),
	}
	if j.err != nil {
		st.Error = j.err.Error()
		st.ErrorKind = errorKind(j.err)
	}
	return st
}

// setState publishes a lifecycle transition.
func (j *Job) setState(s State) {
	j.mu.Lock()
	j.state = s
	ev := Event{Type: "state", State: s.String(), Done: j.done, Total: j.total}
	j.broadcastLocked(ev)
	j.mu.Unlock()
}

// publishProgress records one completed cell and notifies subscribers.
func (j *Job) publishProgress(done, total int, r sweep.CellResult) {
	j.mu.Lock()
	j.done = done
	ev := Event{Type: "progress", Done: done, Total: total, Cell: r.Key()}
	j.broadcastLocked(ev)
	j.mu.Unlock()
}

// finish moves the job to its terminal state, closes every subscriber
// channel (terminal delivery is the close itself — subscribers then
// read the outcome from Status), and releases Finished waiters.
func (j *Job) finish(res *sweep.Result, err error) {
	j.mu.Lock()
	j.result, j.err = res, err
	if err != nil {
		j.state = StateFailed
	} else {
		j.state = StateDone
	}
	for _, ch := range j.subs { //nodetbreak:ordered — independent subscriber channels
		close(ch)
	}
	j.subs = map[int]chan Event{}
	j.mu.Unlock()
	close(j.finished)
}

// broadcastLocked sends ev to every subscriber without blocking,
// dropping the event for subscribers whose buffer is full; caller
// holds j.mu.
func (j *Job) broadcastLocked(ev Event) {
	for _, ch := range j.subs { //nodetbreak:ordered — independent subscriber channels
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe attaches a progress listener. The channel receives state
// and progress events and is closed when the job finishes (immediately
// for an already-terminal job); the returned cancel detaches early.
func (j *Job) Subscribe() (<-chan Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan Event, subBuffer)
	if j.state.Terminal() {
		close(ch)
		return ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
		}
	}
}

// errorKind classifies a job error for machine-readable payloads.
func errorKind(err error) string {
	switch err.(type) {
	case *JobTimeoutError:
		return "job_timeout"
	default:
		return "sweep_error"
	}
}
