package server

import (
	"sync"

	"matscale/internal/machine"
	"matscale/internal/sweep"
)

// State is a job's position in its lifecycle. The machine is
//
//	queued → running → {suspended, done, failed, cancelled}
//	suspended → {queued, cancelled}
//
// plus the shortcuts queued → suspended (suspend before a worker
// claims the job) and queued → cancelled. Done, failed and cancelled
// are terminal; suspended is not — a suspended job holds a checkpoint
// and resumes through the queue. See docs/SERVER.md for the diagram.
type State int

const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued State = iota
	// StateRunning: executing on the sweep engine.
	StateRunning
	// StateDone: finished with a result.
	StateDone
	// StateFailed: finished with an error (sweep failure or timeout).
	StateFailed
	// StateSuspended: stopped at a cell boundary with a checkpoint;
	// resumable. Not terminal — subscribers stay attached.
	StateSuspended
	// StateCancelled: terminated by the cancel verb.
	StateCancelled
)

// String renders the state for status payloads.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateSuspended:
		return "suspended"
	case StateCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state is final. Suspended is not: the
// job can resume.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one message on a job's progress stream; the SSE layer
// serializes it as the data of an `event: <Type>` frame.
type Event struct {
	// Type is "state" (lifecycle transition), "progress" (one cell
	// finished), "done" or "error" (terminal).
	Type  string `json:"type"`
	State string `json:"state,omitempty"`
	// Done/Total track cell completion; Cell is the completed cell's
	// key on progress events.
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
	Cell  string `json:"cell,omitempty"`
	Error string `json:"error,omitempty"`
}

// subBuffer is each subscriber's channel depth. Progress events beyond
// a slow subscriber's buffer are dropped (the stream is observability,
// not the source of truth); terminal delivery is by channel close, so
// it cannot be dropped.
const subBuffer = 256

// Job is one admitted sweep. All accessors are safe for concurrent
// use; the server mutates it from the worker that owns it.
type Job struct {
	id      string
	spec    *sweep.Spec
	backend machine.Backend
	total   int

	mu       sync.Mutex
	state    State
	done     int
	result   *sweep.Result
	err      error
	subs     map[int]chan Event
	nextSub  int
	finished chan struct{}

	// checkpoint is the suspension payload: set when the job enters
	// StateSuspended, consumed as the resume seed by the next run
	// attempt, cleared on terminal transitions.
	checkpoint *sweep.Checkpoint
	// suspendCh and cancelCh belong to the current run attempt (created
	// by claimRun); closing them asks the sweep to stop at the next cell
	// boundary. suspending/canceling latch the close-once semantics and
	// record which verb was asked.
	suspendCh  chan struct{}
	cancelCh   chan struct{}
	suspending bool
	canceling  bool
}

// ID returns the server-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Total returns the job's grid cell count.
func (j *Job) Total() int { return j.total }

// Backend returns the simulation engine the job runs on.
func (j *Job) Backend() machine.Backend { return j.backend }

// Finished returns a channel closed when the job reaches a terminal
// state.
func (j *Job) Finished() <-chan struct{} { return j.finished }

// Result returns the sweep result and error of a terminal job; (nil,
// nil) while it is still queued or running.
func (j *Job) Result() (*sweep.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Status is a JSON-able snapshot of a job.
type Status struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Done    int    `json:"done"`
	Total   int    `json:"total"`
	Backend string `json:"backend"`
	Error   string `json:"error,omitempty"`
	// ErrorKind is the machine-readable class of Error ("job_timeout",
	// "sweep_error"), empty on success.
	ErrorKind string `json:"error_kind,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:      j.id,
		State:   j.state.String(),
		Done:    j.done,
		Total:   j.total,
		Backend: j.backend.String(),
	}
	if j.err != nil {
		st.Error = j.err.Error()
		st.ErrorKind = KindOf(j.err).String()
	}
	return st
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Checkpoint returns the suspension checkpoint of a suspended job, nil
// otherwise.
func (j *Job) Checkpoint() *sweep.Checkpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateSuspended {
		return nil
	}
	return j.checkpoint
}

// claimRun moves a queued job to running and arms a fresh attempt's
// suspend/cancel channels. It returns false for any other state — the
// dedupe that makes stale queue entries harmless: a job suspended or
// cancelled while queued (and possibly re-enqueued since) is claimed
// by exactly one worker pop, and every other pop is a no-op.
func (j *Job) claimRun() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.suspendCh = make(chan struct{})
	j.cancelCh = make(chan struct{})
	j.suspending, j.canceling = false, false
	j.broadcastLocked(Event{Type: "state", State: StateRunning.String(), Done: j.done, Total: j.total})
	return true
}

// requestSuspend asks the current run attempt to stop at the next cell
// boundary; a no-op unless the job is running. Idempotent.
func (j *Job) requestSuspend() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateRunning && !j.suspending {
		j.suspending = true
		close(j.suspendCh)
	}
}

// requestCancel asks the current run attempt to abort at the next cell
// boundary; a no-op unless the job is running. Idempotent.
func (j *Job) requestCancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateRunning && !j.canceling {
		j.canceling = true
		close(j.cancelCh)
	}
}

// cancelRequested reports whether the cancel verb reached the current
// attempt.
func (j *Job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canceling
}

// resumeSeed returns the checkpoint the next run attempt resumes from
// (nil for a first run).
func (j *Job) resumeSeed() *sweep.Checkpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.checkpoint
}

// suspend parks the job with its checkpoint. Subscribers are kept —
// suspension is a lifecycle event on a live job, not an ending — and
// Finished stays open.
func (j *Job) suspend(ck *sweep.Checkpoint) {
	j.mu.Lock()
	j.state = StateSuspended
	j.checkpoint = ck
	j.broadcastLocked(Event{Type: "state", State: StateSuspended.String(), Done: j.done, Total: j.total})
	j.mu.Unlock()
}

// publishProgress records one completed cell and notifies subscribers.
func (j *Job) publishProgress(done, total int, r sweep.CellResult) {
	j.mu.Lock()
	j.done = done
	ev := Event{Type: "progress", Done: done, Total: total, Cell: r.Key()}
	j.broadcastLocked(ev)
	j.mu.Unlock()
}

// finish moves the job to terminal state st, closes every subscriber
// channel (terminal delivery is the close itself — subscribers then
// read the outcome from Status), and releases Finished waiters.
func (j *Job) finish(st State, res *sweep.Result, err error) {
	j.mu.Lock()
	j.finishLocked(st, res, err)
	j.mu.Unlock()
	close(j.finished)
}

// finishLocked is finish's body for callers that must make the
// state check and the transition atomic (the direct cancel of a
// queued/suspended job); the caller holds j.mu and must close
// j.finished after unlocking.
func (j *Job) finishLocked(st State, res *sweep.Result, err error) {
	j.state = st
	j.result, j.err = res, err
	j.checkpoint = nil
	for _, ch := range j.subs { //nodetbreak:ordered — independent subscriber channels
		close(ch)
	}
	j.subs = map[int]chan Event{}
}

// broadcastLocked sends ev to every subscriber without blocking,
// dropping the event for subscribers whose buffer is full; caller
// holds j.mu.
func (j *Job) broadcastLocked(ev Event) {
	for _, ch := range j.subs { //nodetbreak:ordered — independent subscriber channels
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe attaches a progress listener. The channel receives state
// and progress events and is closed when the job finishes (immediately
// for an already-terminal job); the returned cancel detaches early.
func (j *Job) Subscribe() (<-chan Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan Event, subBuffer)
	if j.state.Terminal() {
		close(ch)
		return ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
		}
	}
}
