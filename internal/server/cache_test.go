package server

import (
	"fmt"
	"sync"
	"testing"

	"matscale/internal/sweep"
)

func cell(n int) sweep.CellResult {
	return sweep.CellResult{
		Cell: sweep.Cell{Algorithm: "cannon", Machine: "custom", P: 16, N: n},
		Tp:   float64(n),
	}
}

func TestLRUBasicHitMiss(t *testing.T) {
	c := NewLRUCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", cell(1))
	r, ok := c.Get("a")
	if !ok || r.Tp != 1 {
		t.Fatalf("Get(a) = %v, %v", r, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Capacity != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", st.HitRate)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewLRUCache(2)
	c.Put("a", cell(1))
	c.Put("b", cell(2))
	if _, ok := c.Get("a"); !ok { // promote a; b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", cell(3))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUPutExistingRefreshes(t *testing.T) {
	c := NewLRUCache(2)
	c.Put("a", cell(1))
	c.Put("b", cell(2))
	c.Put("a", cell(1)) // refresh, not insert: no eviction
	if st := c.Stats(); st.Evictions != 0 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	c.Put("c", cell(3)) // now b is LRU
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	c := NewLRUCache(0)
	c.Put("a", cell(1))
	c.Put("b", cell(2))
	if st := c.Stats(); st.Entries != 1 || st.Capacity != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUConcurrentAccess(t *testing.T) {
	c := NewLRUCache(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%100)
				if _, ok := c.Get(key); !ok {
					c.Put(key, cell(i))
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > 64 {
		t.Fatalf("capacity exceeded: %+v", st)
	}
	if st.Hits+st.Misses != 8*200 {
		// every Get is counted exactly once
		t.Fatalf("lost traffic: %+v", st)
	}
}
