package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"matscale/internal/sweep"
)

// Checkpoint persistence. A suspended job is the only server state
// worth surviving a restart: everything else is either in flight
// (running jobs drain on Shutdown) or derivable (terminal results
// re-simulate byte-identically from their specs). Each suspended job
// owns one file, <CheckpointDir>/<id>.ckpt, holding its encoded
// sweep.Checkpoint; the integrity hash of the container makes a
// torn or tampered file a typed startup error instead of silent
// corruption.

// ckptExt is the checkpoint file suffix; files without it are ignored
// by the restore scan.
const ckptExt = ".ckpt"

// ckptPath returns the checkpoint file for a job ID.
func (s *Server) ckptPath(id string) string {
	return filepath.Join(s.cfg.CheckpointDir, id+ckptExt)
}

// persistCheckpoint writes a suspended job's checkpoint durably: the
// bytes go to a temp file first and land under the final name via
// rename, so readers (and a restarted server) only ever see a complete
// file. A no-op without a CheckpointDir.
func (s *Server) persistCheckpoint(id string, ck *sweep.Checkpoint) error {
	if s.cfg.CheckpointDir == "" {
		return nil
	}
	data, err := ck.Encode()
	if err != nil {
		return fmt.Errorf("server: persist checkpoint for %s: %w", id, err)
	}
	path := s.ckptPath(id)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("server: persist checkpoint for %s: %w", id, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("server: persist checkpoint for %s: %w", id, err)
	}
	return nil
}

// removeCheckpoint deletes a job's persisted checkpoint once it is no
// longer resumable (terminal state). Best-effort: a leftover file only
// costs a stale suspended job on the next restart, which the operator
// can cancel.
func (s *Server) removeCheckpoint(id string) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	_ = os.Remove(s.ckptPath(id))
}

// restoreCheckpoints scans CheckpointDir (creating it if absent) and
// rebuilds each persisted checkpoint as a suspended job under its
// original ID, advancing the ID counter past the restored ones so new
// submissions never collide. Called by New before the workers start; a
// checkpoint that fails to decode or validate aborts construction with
// a typed error naming the file — the operator decides whether to
// remove it.
func (s *Server) restoreCheckpoints() error {
	if s.cfg.CheckpointDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.CheckpointDir, 0o755); err != nil {
		return fmt.Errorf("server: checkpoint dir: %w", err)
	}
	entries, err := os.ReadDir(s.cfg.CheckpointDir) // sorted by name
	if err != nil {
		return fmt.Errorf("server: checkpoint dir: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ckptExt) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.cfg.CheckpointDir, name))
		if err != nil {
			return fmt.Errorf("server: restore %s: %w", name, err)
		}
		ck, err := sweep.DecodeCheckpoint(data)
		if err != nil {
			return fmt.Errorf("server: restore %s: %w", name, err)
		}
		cells, err := ck.Spec.Cells()
		if err != nil {
			return fmt.Errorf("server: restore %s: %w", name, err)
		}
		id := strings.TrimSuffix(name, ckptExt)
		sp := ck.Spec
		j := &Job{
			id:         id,
			spec:       &sp,
			backend:    ck.Backend,
			total:      len(cells),
			state:      StateSuspended,
			done:       len(ck.Done),
			checkpoint: ck,
			finished:   make(chan struct{}),
			subs:       map[int]chan Event{},
		}
		s.jobs[id] = j
		s.suspended++
		if rest, ok := strings.CutPrefix(id, "job-"); ok {
			if n, err := strconv.Atoi(rest); err == nil && n > s.nextID {
				s.nextID = n
			}
		}
	}
	return nil
}
