package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"math"
	"strings"
	"testing"
)

func sample() *Snapshot {
	return &Snapshot{
		Kind:    "matscale/test",
		Version: 3,
		Meta: map[string]string{
			"machine": "hypercube(64) ts=17 tw=3",
			"events":  "1024",
			"":        "empty key survives",
		},
		Payload: []byte{0, 1, 2, 254, 255, 0, 42},
	}
}

func TestRoundTrip(t *testing.T) {
	s := sample()
	got, err := Decode(s.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Kind != s.Kind || got.Version != s.Version {
		t.Fatalf("kind/version: got %q/%d want %q/%d", got.Kind, got.Version, s.Kind, s.Version)
	}
	if len(got.Meta) != len(s.Meta) {
		t.Fatalf("meta size: got %d want %d", len(got.Meta), len(s.Meta))
	}
	for k, v := range s.Meta {
		if got.Meta[k] != v {
			t.Fatalf("meta[%q]: got %q want %q", k, got.Meta[k], v)
		}
	}
	if !bytes.Equal(got.Payload, s.Payload) {
		t.Fatalf("payload: got %v want %v", got.Payload, s.Payload)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := sample().Encode()
	b := sample().Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same snapshot differ")
	}
}

func TestReadWriteTo(t *testing.T) {
	s := sample()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Kind != s.Kind || !bytes.Equal(got.Payload, s.Payload) {
		t.Fatal("Read round trip mismatch")
	}
}

func TestExpect(t *testing.T) {
	s := sample()
	if err := s.Expect("matscale/test", 3); err != nil {
		t.Fatalf("Expect(match): %v", err)
	}
	var ke *KindError
	if err := s.Expect("matscale/other", 3); !errors.As(err, &ke) {
		t.Fatalf("Expect(wrong kind) = %v, want *KindError", err)
	}
	var ve *VersionError
	if err := s.Expect("matscale/test", 4); !errors.As(err, &ve) {
		t.Fatalf("Expect(wrong version) = %v, want *VersionError", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Decode([]byte("not a snapshot at all, sorry")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("Decode(garbage) = %v, want ErrBadMagic", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("Decode(nil) = %v, want ErrBadMagic", err)
	}
}

// Every strict prefix of a valid container must be rejected with a
// typed error — either the truncation itself or, once the magic is
// cut into, the magic check.
func TestTruncationRejected(t *testing.T) {
	enc := sample().Encode()
	for n := 0; n < len(enc); n++ {
		_, err := Decode(enc[:n])
		if err == nil {
			t.Fatalf("Decode of %d/%d byte prefix succeeded", n, len(enc))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrIntegrity) {
			t.Fatalf("Decode of %d-byte prefix: untyped error %v", n, err)
		}
	}
}

// Every single-bit flip must be caught: by the integrity hash, or (for
// flips inside the magic or the hash itself) by the magic or hash
// comparison.
func TestCorruptionRejected(t *testing.T) {
	enc := sample().Encode()
	for i := 0; i < len(enc); i++ {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x40
		_, err := Decode(mut)
		if err == nil {
			t.Fatalf("Decode with byte %d flipped succeeded", i)
		}
		if !errors.Is(err, ErrIntegrity) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("Decode with byte %d flipped: error %v, want integrity or magic", i, err)
		}
	}
}

func TestPrimitivesRoundTrip(t *testing.T) {
	e := &Encoder{}
	e.U8(200)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xdeadbeef)
	e.U64(1 << 60)
	e.I64(-12345)
	e.F64(math.Copysign(0, -1))
	e.F64(math.Inf(1))
	e.Str("hello, 世界")
	e.Str("")
	e.Blob([]byte{9, 8, 7})
	e.F64s([]float64{1.5, -2.5, math.Pi})
	e.F64s(nil)

	d := NewDecoder(e.Data())
	if v := d.U8(); v != 200 {
		t.Fatalf("U8 = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip")
	}
	if v := d.U32(); v != 0xdeadbeef {
		t.Fatalf("U32 = %x", v)
	}
	if v := d.U64(); v != 1<<60 {
		t.Fatalf("U64 = %d", v)
	}
	if v := d.I64(); v != -12345 {
		t.Fatalf("I64 = %d", v)
	}
	if v := d.F64(); math.Float64bits(v) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("F64 -0 = %v", v)
	}
	if v := d.F64(); !math.IsInf(v, 1) {
		t.Fatalf("F64 +Inf = %v", v)
	}
	if v := d.Str(); v != "hello, 世界" {
		t.Fatalf("Str = %q", v)
	}
	if v := d.Str(); v != "" {
		t.Fatalf("empty Str = %q", v)
	}
	if v := d.Blob(); !bytes.Equal(v, []byte{9, 8, 7}) {
		t.Fatalf("Blob = %v", v)
	}
	want := []float64{1.5, -2.5, math.Pi}
	got := d.F64s()
	if len(got) != len(want) {
		t.Fatalf("F64s = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("F64s[%d] = %v want %v", i, got[i], want[i])
		}
	}
	if v := d.F64s(); v != nil {
		t.Fatalf("nil F64s = %v", v)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestDecoderSticky(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U64() // runs out
	if d.Err() == nil {
		t.Fatal("U64 on 2 bytes should fail")
	}
	first := d.Err()
	_ = d.Str()
	_ = d.F64s()
	if !errors.Is(d.Err(), first) && d.Err() != first {
		t.Fatalf("error not sticky: %v then %v", first, d.Err())
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", d.Err())
	}
}

// A hostile length prefix must not drive an allocation anywhere near
// the prefix value; the decoder bounds every length by the remaining
// input first.
func TestHostileLengths(t *testing.T) {
	e := &Encoder{}
	e.U64(math.MaxUint64)
	d := NewDecoder(e.Data())
	if v := d.F64s(); v != nil || d.Err() == nil {
		t.Fatal("F64s with absurd count must fail, not allocate")
	}
	d = NewDecoder(e.Data())
	if v := d.Blob(); v != nil || d.Err() == nil {
		t.Fatal("Blob with absurd count must fail, not allocate")
	}
	d = NewDecoder([]byte{255, 255, 255, 255})
	if v := d.Str(); v != "" || d.Err() == nil {
		t.Fatal("Str with absurd count must fail")
	}
}

func TestDoneLeftover(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3})
	_ = d.U8()
	err := d.Done()
	if err == nil || !strings.Contains(err.Error(), "unread") {
		t.Fatalf("Done with leftovers = %v", err)
	}
}

func TestDuplicateMetaRejected(t *testing.T) {
	// Hand-build a container with a duplicated metadata key; the hash
	// is recomputed so only the duplicate check can reject it.
	e := &Encoder{}
	e.raw(magic[:])
	e.Str("matscale/test")
	e.U32(1)
	e.U32(2)
	e.Str("k")
	e.Str("v1")
	e.Str("k")
	e.Str("v2")
	e.Blob(nil)
	sum := sha256.Sum256(e.Data())
	e.raw(sum[:])
	if _, err := Decode(e.Data()); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("Decode(duplicate meta) = %v", err)
	}
}
