// Package checkpoint defines the snapshot container every matscale
// checkpoint travels in: a versioned, self-describing binary envelope
// with an integrity hash, plus the deterministic little-endian
// encoder/decoder primitives the engines use to serialize their state
// into it.
//
// The container is deliberately dumb: a kind string and a kind version
// identify the payload schema (the des engine and the sweep engine
// each own one), a small sorted metadata section carries the
// human-readable facts a reader needs before committing to a decode
// (machine fingerprint, event count, cell counts), and the payload is
// an opaque byte string whose schema belongs entirely to the producer.
// A SHA-256 hash over everything preceding it makes truncation and
// bit-rot first-class, typed decode errors instead of garbage state.
//
// Determinism contract: Encode is a pure function of the Snapshot
// value (metadata is emitted in sorted key order), so two snapshots of
// identical state are byte-identical — which is what lets the des
// engine *verify* a resume by re-encoding its replayed state and
// comparing bytes. See docs/BACKENDS.md for the consistent-cut
// argument built on top of this container.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// magic opens every container. The trailing "01" is the container
// format version: it covers the envelope layout only, not payload
// schemas, which are versioned per kind.
var magic = [8]byte{'M', 'S', 'C', 'K', 'P', 'T', '0', '1'}

// Typed decode failures. They are sentinel values so callers can
// classify with errors.Is; the errors returned by Decode wrap them
// with positional detail.
var (
	// ErrBadMagic reports input that is not a matscale snapshot (or is
	// a container format this build does not read).
	ErrBadMagic = errors.New("checkpoint: not a matscale snapshot")
	// ErrTruncated reports input that ends before the structure it
	// promises is complete.
	ErrTruncated = errors.New("checkpoint: snapshot truncated")
	// ErrIntegrity reports an integrity hash mismatch: the bytes were
	// altered after Encode.
	ErrIntegrity = errors.New("checkpoint: integrity hash mismatch")
)

// KindError reports a snapshot of the wrong kind handed to a reader.
type KindError struct {
	Want, Got string
}

func (e *KindError) Error() string {
	return fmt.Sprintf("checkpoint: snapshot kind %q, want %q", e.Got, e.Want)
}

// VersionError reports a payload schema version this build does not
// understand.
type VersionError struct {
	Kind      string
	Want, Got uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("checkpoint: %s snapshot version %d, want %d", e.Kind, e.Got, e.Want)
}

// Snapshot is one decoded (or to-be-encoded) checkpoint container.
type Snapshot struct {
	// Kind names the payload schema, e.g. "matscale/des-run".
	Kind string
	// Version is the payload schema version within Kind.
	Version uint32
	// Meta carries small self-describing facts about the payload.
	Meta map[string]string
	// Payload is the producer-owned state encoding.
	Payload []byte
}

// Expect validates the snapshot's kind and version, returning a typed
// error on mismatch.
func (s *Snapshot) Expect(kind string, version uint32) error {
	if s.Kind != kind {
		return &KindError{Want: kind, Got: s.Kind}
	}
	if s.Version != version {
		return &VersionError{Kind: kind, Want: version, Got: s.Version}
	}
	return nil
}

// Encode renders the container: magic, kind, version, sorted metadata,
// payload, SHA-256 over all of it. It is deterministic: equal
// Snapshots encode to equal bytes.
func (s *Snapshot) Encode() []byte {
	e := &Encoder{}
	e.raw(magic[:])
	e.Str(s.Kind)
	e.U32(s.Version)
	keys := make([]string, 0, len(s.Meta))
	for k := range s.Meta { //nodetbreak:ordered — keys are sorted below before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.Str(k)
		e.Str(s.Meta[k])
	}
	e.Blob(s.Payload)
	sum := sha256.Sum256(e.buf)
	e.raw(sum[:])
	return e.buf
}

// WriteTo writes the encoded container to w.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(s.Encode())
	return int64(n), err
}

// Decode parses and verifies a container. Every malformed input maps
// to a typed error (ErrBadMagic, ErrTruncated, ErrIntegrity — possibly
// wrapped); no input panics.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic) || !bytes.Equal(data[:len(magic)], magic[:]) {
		return nil, ErrBadMagic
	}
	if len(data) < sha256.Size {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the integrity hash", ErrTruncated, len(data))
	}
	body, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	want := sha256.Sum256(body)
	if !bytes.Equal(sum, want[:]) {
		return nil, ErrIntegrity
	}
	d := NewDecoder(body[len(magic):])
	s := &Snapshot{}
	s.Kind = d.Str()
	s.Version = d.U32()
	n := d.U32()
	if d.Err() == nil && n > 0 {
		s.Meta = make(map[string]string, n)
		for i := uint32(0); i < n && d.Err() == nil; i++ {
			k := d.Str()
			v := d.Str()
			if _, dup := s.Meta[k]; dup {
				return nil, fmt.Errorf("checkpoint: duplicate metadata key %q", k)
			}
			s.Meta[k] = v
		}
	}
	s.Payload = d.Blob()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Len() != 0 {
		// The hash matched, so trailing bytes mean an encoder bug, not
		// corruption; refuse rather than silently ignore.
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after payload", d.Len())
	}
	return s, nil
}

// Read consumes r to EOF and decodes the container.
func Read(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read snapshot: %w", err)
	}
	return Decode(data)
}

// Encoder accumulates a deterministic little-endian byte encoding. The
// zero value is ready to use.
type Encoder struct {
	buf []byte
}

func (e *Encoder) raw(b []byte) { e.buf = append(e.buf, b...) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends an int64 as its two's-complement uint64 image.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bit image. NaN payloads and
// signed zeros round-trip exactly: byte identity, not numeric equality,
// is the contract.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a length-prefixed UTF-8 string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte string.
func (e *Encoder) Blob(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// F64s appends a length-prefixed []float64.
func (e *Encoder) F64s(v []float64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// Data returns the accumulated encoding. The slice aliases the
// encoder's buffer; further writes may grow away from it.
func (e *Encoder) Data() []byte { return e.buf }

// Decoder reads back an Encoder's byte stream. Errors are sticky:
// after the first failure every read returns a zero value and Err
// reports the failure, so decode sequences need a single check.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder wraps b for reading.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decode failure, nil if none so far.
func (d *Decoder) Err() error { return d.err }

// Len returns the number of unread bytes.
func (d *Decoder) Len() int { return len(d.b) - d.off }

// take returns the next n bytes, failing with ErrTruncated when fewer
// remain.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Len() < n {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d, have %d", ErrTruncated, n, d.off, d.Len())
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte bool, failing on values other than 0 and 1.
func (d *Decoder) Bool() bool {
	v := d.U8()
	if d.err == nil && v > 1 {
		d.err = fmt.Errorf("checkpoint: invalid bool byte %d at offset %d", v, d.off-1)
	}
	return v == 1
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := d.U32()
	return string(d.take(int(n)))
}

// Blob reads a length-prefixed byte string. The result aliases the
// decoder's input.
func (d *Decoder) Blob() []byte {
	n := d.U64()
	if d.err == nil && n > uint64(d.Len()) {
		d.err = fmt.Errorf("%w: blob of %d bytes at offset %d exceeds %d remaining", ErrTruncated, n, d.off, d.Len())
		return nil
	}
	return d.take(int(n))
}

// F64s reads a length-prefixed []float64.
func (d *Decoder) F64s() []float64 {
	n := d.U64()
	if d.err == nil && n*8 > uint64(d.Len()) {
		d.err = fmt.Errorf("%w: %d float64s at offset %d exceed %d remaining bytes", ErrTruncated, n, d.off, d.Len())
		return nil
	}
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// Done fails unless the input was consumed exactly: no prior error and
// no unread bytes.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.Len() != 0 {
		return fmt.Errorf("checkpoint: %d unread payload bytes", d.Len())
	}
	return nil
}
