package checkpoint

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzCheckpointRoundTrip drives the container through both directions:
//
//  1. Interpret the fuzz input as (kind, version, meta pair, payload),
//     encode a snapshot from it, decode the encoding, and require the
//     decode to reproduce the snapshot exactly.
//  2. Interpret the same input as a raw container and require Decode to
//     either fail with a typed error or yield a snapshot that
//     re-encodes to the identical bytes — never to panic, and never to
//     accept bytes it cannot reproduce.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add([]byte{}, "matscale/des-run", uint32(1), "machine", "mesh(8x8)", []byte{1, 2, 3})
	f.Add(sample().Encode(), "", uint32(0), "", "", []byte{})
	f.Add([]byte("MSCKPT01 but then nonsense"), "k", uint32(7), "a", "b", []byte(nil))

	f.Fuzz(func(t *testing.T, raw []byte, kind string, version uint32, mk, mv string, payload []byte) {
		s := &Snapshot{Kind: kind, Version: version, Payload: payload}
		if mk != "" || mv != "" {
			s.Meta = map[string]string{mk: mv}
		}
		enc := s.Encode()
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode(s)) failed: %v", err)
		}
		if got.Kind != s.Kind || got.Version != s.Version || !bytes.Equal(got.Payload, s.Payload) {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, s)
		}
		if len(got.Meta) != len(s.Meta) {
			t.Fatalf("meta mismatch: got %v want %v", got.Meta, s.Meta)
		}
		for k, v := range s.Meta {
			if got.Meta[k] != v {
				t.Fatalf("meta[%q] = %q want %q", k, got.Meta[k], v)
			}
		}
		if !bytes.Equal(got.Encode(), enc) {
			t.Fatal("re-encode of decoded snapshot differs")
		}

		ds, err := Decode(raw)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrIntegrity) &&
				err.Error() == "" {
				t.Fatalf("Decode(raw): empty error")
			}
			return
		}
		if !bytes.Equal(ds.Encode(), raw) {
			t.Fatal("accepted container does not re-encode to its own bytes")
		}
	})
}
