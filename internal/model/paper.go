// Package model provides the paper's closed-form performance
// expressions in two families:
//
//   - the Paper* functions and the Spec table reproduce the equations
//     exactly as printed (Eqs. 2–7, 16–18 and the overhead functions of
//     Table 1), including the paper's habit of dropping lower-order
//     terms; the Section 6 figures and crossover analyses use these;
//   - the Exact* functions (exact.go) give the virtual time the
//     implementations in internal/core measure, term for term — the
//     equation-validation tests assert bitwise equality between a
//     simulator run and these.
//
// All functions take n and p as float64 because the region analyses
// sweep p to 2^30 and beyond.
package model

import "math"

// Params carries the normalized communication constants of Section 2:
// message startup time ts and per-word transfer time tw, both in units
// of one multiply–add.
type Params struct {
	Ts, Tw float64
}

// W returns the problem size W = n³ (Section 2): the serial operation
// count in flop units.
func W(n float64) float64 { return n * n * n }

// log2 is a shorthand; the paper's "log" is base 2 throughout.
func log2(x float64) float64 { return math.Log2(x) }

// PaperSimpleTp is Eq. (2): Tp = n³/p + 2·ts·log p + 2·tw·n²/√p.
func PaperSimpleTp(pr Params, n, p float64) float64 {
	return n*n*n/p + 2*pr.Ts*log2(p) + 2*pr.Tw*n*n/math.Sqrt(p)
}

// PaperCannonTp is Eq. (3): Tp = n³/p + 2·ts·√p + 2·tw·n²/√p.
func PaperCannonTp(pr Params, n, p float64) float64 {
	return n*n*n/p + 2*pr.Ts*math.Sqrt(p) + 2*pr.Tw*n*n/math.Sqrt(p)
}

// PaperFoxTp is Eq. (4), the pipelined variant:
// Tp = n³/p + 2·tw·n²/√p + ts·p.
func PaperFoxTp(pr Params, n, p float64) float64 {
	return n*n*n/p + 2*pr.Tw*n*n/math.Sqrt(p) + pr.Ts*p
}

// PaperBerntsenTp is Eq. (5):
// Tp = n³/p + 2·ts·p^(1/3) + (1/3)·ts·log p + 3·tw·n²/p^(2/3).
func PaperBerntsenTp(pr Params, n, p float64) float64 {
	return n*n*n/p + 2*pr.Ts*math.Cbrt(p) + pr.Ts*log2(p)/3 + 3*pr.Tw*n*n/math.Pow(p, 2.0/3.0)
}

// PaperDNSTp is Eq. (6):
// Tp = n³/p + (ts + tw)·(5·log(p/n²) + 2·n³/p).
func PaperDNSTp(pr Params, n, p float64) float64 {
	return n*n*n/p + (pr.Ts+pr.Tw)*(5*log2(p/(n*n))+2*n*n*n/p)
}

// PaperGKTp is Eq. (7):
// Tp = n³/p + (5/3)·ts·log p + (5/3)·tw·(n²/p^(2/3))·log p.
func PaperGKTp(pr Params, n, p float64) float64 {
	return n*n*n/p + 5.0/3.0*pr.Ts*log2(p) + 5.0/3.0*pr.Tw*n*n/math.Pow(p, 2.0/3.0)*log2(p)
}

// PaperSimpleAllPortTp is Eq. (16):
// Tp = n³/p + 2·tw·n²/(√p·log p) + (1/2)·ts·log p.
func PaperSimpleAllPortTp(pr Params, n, p float64) float64 {
	return n*n*n/p + 2*pr.Tw*n*n/(math.Sqrt(p)*log2(p)) + pr.Ts*log2(p)/2
}

// PaperGKAllPortTp is Eq. (17):
// Tp = n³/p + ts·log p + 9·tw·n²/(p^(2/3)·log p) + 6·(n/p^(1/3))·sqrt(ts·tw).
func PaperGKAllPortTp(pr Params, n, p float64) float64 {
	return n*n*n/p + pr.Ts*log2(p) + 9*pr.Tw*n*n/(math.Pow(p, 2.0/3.0)*log2(p)) +
		6*n/math.Cbrt(p)*math.Sqrt(pr.Ts*pr.Tw)
}

// PaperGKCM5Tp is Eq. (18), the GK algorithm on the fully connected
// CM-5: Tp = n³/p + ts·(log p + 2) + tw·(n²/p^(2/3))·(log p + 2).
func PaperGKCM5Tp(pr Params, n, p float64) float64 {
	return n*n*n/p + pr.Ts*(log2(p)+2) + pr.Tw*n*n/math.Pow(p, 2.0/3.0)*(log2(p)+2)
}

// Overhead functions of Table 1 (To = p·Tp − W).

// BerntsenTo is 2·ts·p^(4/3) + (1/3)·ts·p·log p + 3·tw·n²·p^(1/3).
func BerntsenTo(pr Params, n, p float64) float64 {
	return 2*pr.Ts*math.Pow(p, 4.0/3.0) + pr.Ts*p*log2(p)/3 + 3*pr.Tw*n*n*math.Cbrt(p)
}

// CannonTo is 2·ts·p^(3/2) + 2·tw·n²·√p.
func CannonTo(pr Params, n, p float64) float64 {
	return 2*pr.Ts*math.Pow(p, 1.5) + 2*pr.Tw*n*n*math.Sqrt(p)
}

// SimpleTo is the overhead of Eq. (2): 2·ts·p·log p + 2·tw·n²·√p.
func SimpleTo(pr Params, n, p float64) float64 {
	return 2*pr.Ts*p*log2(p) + 2*pr.Tw*n*n*math.Sqrt(p)
}

// GKTo is (5/3)·ts·p·log p + (5/3)·tw·n²·p^(1/3)·log p.
func GKTo(pr Params, n, p float64) float64 {
	return 5.0/3.0*pr.Ts*p*log2(p) + 5.0/3.0*pr.Tw*n*n*math.Cbrt(p)*log2(p)
}

// ImprovedGKTo is Table 1's entry for the GK algorithm with the
// Johnsson–Ho broadcast:
// tw·n²·p^(1/3) + (1/3)·ts·p·log p + 2·n·p^(2/3)·sqrt((1/3)·ts·tw·log p).
func ImprovedGKTo(pr Params, n, p float64) float64 {
	return pr.Tw*n*n*math.Cbrt(p) + pr.Ts*p*log2(p)/3 +
		2*n*math.Pow(p, 2.0/3.0)*math.Sqrt(pr.Ts*pr.Tw*log2(p)/3)
}

// DNSTo is Table 1's entry, (ts + tw)·((5/3)·p·log p + 2·n³) — the
// p = n³ extreme of the exact overhead.
func DNSTo(pr Params, n, p float64) float64 {
	return (pr.Ts + pr.Tw) * (5.0/3.0*p*log2(p) + 2*n*n*n)
}

// DNSToExact is the overhead implied by Eq. (6) without Table 1's
// r = p simplification: (ts + tw)·(5·p·log(p/n²) + 2·n³).
func DNSToExact(pr Params, n, p float64) float64 {
	return (pr.Ts + pr.Tw) * (5*p*log2(p/(n*n)) + 2*n*n*n)
}

// SimpleAllPortTo is the overhead of Eq. (16):
// 2·tw·n²·√p/log p + (1/2)·ts·p·log p.
func SimpleAllPortTo(pr Params, n, p float64) float64 {
	return 2*pr.Tw*n*n*math.Sqrt(p)/log2(p) + pr.Ts*p*log2(p)/2
}

// GKAllPortTo is the overhead of Eq. (17):
// ts·p·log p + 9·tw·n²·p^(1/3)/log p + 6·n·p^(2/3)·sqrt(ts·tw).
func GKAllPortTo(pr Params, n, p float64) float64 {
	return pr.Ts*p*log2(p) + 9*pr.Tw*n*n*math.Cbrt(p)/log2(p) +
		6*n*math.Pow(p, 2.0/3.0)*math.Sqrt(pr.Ts*pr.Tw)
}

// Efficiency returns E = W/(W + To) for a given overhead function value.
func Efficiency(w, to float64) float64 { return w / (w + to) }

// EfficiencyFromTp returns the efficiency E = W/(p·Tp).
func EfficiencyFromTp(w, p, tp float64) float64 { return w / (p * tp) }

// Spec describes one of the algorithms compared in Section 6 of the
// paper: its Table 1 overhead function, its region letter in
// Figures 1–3, and its range of applicability.
type Spec struct {
	Name string
	// Letter marks the algorithm's regions in the paper's figures:
	// a = GK, b = Berntsen, c = Cannon, d = DNS.
	Letter byte
	// To is the Table 1 total overhead function.
	To func(Params, float64, float64) float64
	// Tp is the paper's parallel execution time equation.
	Tp func(Params, float64, float64) float64
	// Applicable reports whether the algorithm can run at all for the
	// given n and p (Table 1's "range of applicability").
	Applicable func(n, p float64) bool
	// Isoefficiency is the asymptotic isoefficiency function as printed
	// in Table 1.
	Isoefficiency string
}

// Specs returns the four algorithms of Table 1 in the paper's order.
func Specs() []Spec {
	return []Spec{
		{
			Name: "Berntsen", Letter: 'b',
			To: BerntsenTo, Tp: PaperBerntsenTp,
			// p ≤ n^(3/2) written as p² ≤ n³, which is exact in floating
			// point for power-of-two grids (math.Pow(n, 1.5) is not).
			Applicable:    func(n, p float64) bool { return p >= 1 && p*p <= n*n*n },
			Isoefficiency: "O(p^2)",
		},
		{
			Name: "Cannon", Letter: 'c',
			To: CannonTo, Tp: PaperCannonTp,
			Applicable:    func(n, p float64) bool { return p >= 1 && p <= n*n },
			Isoefficiency: "O(p^1.5)",
		},
		{
			Name: "GK", Letter: 'a',
			To: GKTo, Tp: PaperGKTp,
			Applicable:    func(n, p float64) bool { return p >= 1 && p <= n*n*n },
			Isoefficiency: "O(p (log p)^3)",
		},
		{
			Name: "DNS", Letter: 'd',
			To: DNSTo, Tp: PaperDNSTp,
			Applicable:    func(n, p float64) bool { return p >= n*n && p <= n*n*n },
			Isoefficiency: "O(p log p)",
		},
	}
}
