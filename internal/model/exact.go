package model

import (
	"math"

	"matscale/internal/collective"
	"matscale/internal/topology"
)

// The Exact* functions give the virtual time measured by the
// implementations in internal/core, term for term. Where the paper's
// printed equations drop lower-order terms (Berntsen's 1−1/s reduction
// factor, Fox's shift startups) the exact forms keep them, so the
// equation-validation tests can assert exact equality.
//
// All take integer n and p with the same divisibility requirements as
// the implementations.

func flopTerm(n, p int) float64 {
	return float64(n) * float64(n) * float64(n) / float64(p)
}

// ExactSimpleTp: n³/p + 2·(ts·log₂√p + tw·(n²/p)·(√p−1)).
func ExactSimpleTp(pr Params, n, p int) float64 {
	q := topology.IntSqrt(p)
	m := n * n / p
	return flopTerm(n, p) + 2*collective.AllGatherTime(pr.Ts, pr.Tw, m, q)
}

// ExactCannonTp: n³/p + 2·√p·(ts + tw·n²/p); the rolls vanish on a
// single processor.
func ExactCannonTp(pr Params, n, p int) float64 {
	if p == 1 {
		return flopTerm(n, 1)
	}
	q := topology.IntSqrt(p)
	m := float64(n * n / p)
	return flopTerm(n, p) + 2*float64(q)*(pr.Ts+pr.Tw*m)
}

// ExactFoxTp: n³/p + √p·(log₂√p + 1)·(ts + tw·n²/p) — binomial row
// broadcasts plus one shift per iteration, iterations in lockstep.
func ExactFoxTp(pr Params, n, p int) float64 {
	if p == 1 {
		return flopTerm(n, 1)
	}
	q := topology.IntSqrt(p)
	d, _ := topology.Log2(q)
	m := float64(n * n / p)
	return flopTerm(n, p) + float64(q)*float64(d+1)*(pr.Ts+pr.Tw*m)
}

// ExactFoxMeshTp: n³/p + ts·p + tw·n² — Fox's algorithm with
// processor-to-processor row relays on a wraparound mesh, exactly the
// expression Section 4.3 derives for the mesh architecture.
func ExactFoxMeshTp(pr Params, n, p int) float64 {
	if p == 1 {
		return flopTerm(n, 1)
	}
	return flopTerm(n, p) + pr.Ts*float64(p) + pr.Tw*float64(n)*float64(n)
}

// ExactFoxPipelinedTp: n³/p + ts·(p + √p) + 2·tw·n²/√p — Eq. (4) plus
// the shifts' startup term the paper drops.
func ExactFoxPipelinedTp(pr Params, n, p int) float64 {
	if p == 1 {
		return flopTerm(n, 1)
	}
	q := topology.IntSqrt(p)
	m := float64(n * n / p)
	return flopTerm(n, p) + float64(q)*(pr.Ts*float64(q)+pr.Tw*m) + float64(q)*(pr.Ts+pr.Tw*m)
}

// ExactBerntsenTp: n³/p + 2·p^(1/3)·(ts + tw·n²/p) +
// ts·log₂p^(1/3) + tw·(n²/p^(2/3))·(1 − p^(−1/3)).
func ExactBerntsenTp(pr Params, n, p int) float64 {
	s := topology.IntCbrt(p)
	t := flopTerm(n, p)
	if s > 1 {
		t += 2 * float64(s) * (pr.Ts + pr.Tw*float64(n*n/p))
		t += collective.ReduceScatterTime(pr.Ts, pr.Tw, n*n/(s*s), s)
	}
	return t
}

// ExactDNSTp is the measured time of DNSWithGrid: n³/p +
// 5·log₂r·(ts + tw·bs²) + 2·u·(ts + tw·bs²), with r = p/g², u = g/r and
// block side bs = n/g; the in-superprocessor rolls vanish when u = 1.
func ExactDNSTp(pr Params, n, p, gridSide int) float64 {
	r := p / (gridSide * gridSide)
	u := gridSide / r
	bs := n / gridSide
	c := pr.Ts + pr.Tw*float64(bs*bs)
	t := flopTerm(n, p)
	if d, _ := topology.Log2(r); d > 0 {
		t += 5 * float64(d) * c
	}
	if u > 1 {
		t += 2 * float64(u) * c
	}
	return t
}

// ExactGKTp is the measured time of GK on a store-and-forward
// hypercube: n³/p + 5·log₂p^(1/3)·(ts + tw·n²/p^(2/3)), which equals
// Eq. (7) exactly.
func ExactGKTp(pr Params, n, p int) float64 {
	q := topology.IntCbrt(p)
	d, _ := topology.Log2(q)
	bs := n / q
	return flopTerm(n, p) + 5*float64(d)*(pr.Ts+pr.Tw*float64(bs*bs))
}

// ExactGKCM5Tp is the measured time of GK on a fully connected
// machine: n³/p + (log₂p + 2)·(ts + tw·n²/p^(2/3)), which equals
// Eq. (18) exactly (the two routing phases are single hops).
func ExactGKCM5Tp(pr Params, n, p int) float64 {
	if p == 1 {
		return flopTerm(n, 1)
	}
	q := topology.IntCbrt(p)
	d, _ := topology.Log2(q)
	bs := n / q
	return flopTerm(n, p) + float64(3*d+2)*(pr.Ts+pr.Tw*float64(bs*bs))
}

// ExactGKImprovedTp: n³/p + 5·JH(ts, tw, n²/p^(2/3), p^(1/3)) — all
// five stages use the Johnsson–Ho broadcast cost.
func ExactGKImprovedTp(pr Params, n, p int) float64 {
	q := topology.IntCbrt(p)
	bs := n / q
	return flopTerm(n, p) + 5*collective.JohnssonHoTime(pr.Ts, pr.Tw, bs*bs, q)
}

// ExactGKAllPortTp returns the parallel time Tp (flop units) of
// Eq. (17) by construction: the five stages are charged one fifth of
// the all-port communication total each.
func ExactGKAllPortTp(pr Params, n, p int) float64 {
	if p == 1 {
		return flopTerm(n, 1)
	}
	return PaperGKAllPortTp(pr, float64(n), float64(p))
}

// ExactSimpleAllPortTp: n³/p + ts·log₂√p + tw·(n²/p)·√p/log₂√p — the
// charged all-port row gather; the column gather of B proceeds
// simultaneously and free (Section 7.1). Equals Eq. (16).
func ExactSimpleAllPortTp(pr Params, n, p int) float64 {
	if p == 1 {
		return flopTerm(n, 1)
	}
	q := topology.IntSqrt(p)
	return flopTerm(n, p) + collective.AllPortAllGatherTime(pr.Ts, pr.Tw, n*n/p, q)
}

// NEqualTo solves To_x(n, p) = To_y(n, p) for n at fixed p by bisection
// — the paper's n_EqualTo(p) threshold (Eq. 15 is the Cannon/GK
// special case). It returns the n at which the two overheads cross and
// ok=false when they do not cross in (1, nMax). Both overhead
// functions must be monotone in n (every To in this package is).
func NEqualTo(pr Params, toX, toY func(Params, float64, float64) float64, p, nMax float64) (float64, bool) {
	diff := func(n float64) float64 { return toX(pr, n, p) - toY(pr, n, p) }
	lo, hi := 1.0, nMax
	dlo, dhi := diff(lo), diff(hi)
	if dlo == 0 {
		return lo, true
	}
	if (dlo < 0) == (dhi < 0) {
		return 0, false
	}
	for i := 0; i < 200 && hi-lo > 1e-9*math.Max(1, lo); i++ {
		mid := (lo + hi) / 2
		if (diff(mid) < 0) == (dlo < 0) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, true
}

// ExactSimpleMemEffAllPortTp: n³/p + √p·(ts·log₂√p + tw·(n²/p)/log₂√p)
// — the constant-storage all-port streaming variant in the spirit of
// Ho–Johnsson–Edelman [18] (Section 7.1).
func ExactSimpleMemEffAllPortTp(pr Params, n, p int) float64 {
	if p == 1 {
		return flopTerm(n, 1)
	}
	q := topology.IntSqrt(p)
	d, _ := topology.Log2(q)
	if d == 0 {
		return flopTerm(n, p)
	}
	m := float64(n * n / p)
	return flopTerm(n, p) + float64(q)*(pr.Ts*float64(d)+pr.Tw*m/float64(d))
}
