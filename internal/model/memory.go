package model

import "math"

// Per-processor memory requirements, in matrix elements (words), of
// each formulation — the memory-efficiency dimension the paper weighs
// against speed (Sections 4.1, 4.4 and 7.1). An algorithm is "memory
// efficient" when its total memory across processors stays O(n²), like
// the serial algorithm's.

// SimpleMemoryPerProc is the per-processor memory in matrix words,
// O(n²/√p): each processor stores a full block
// row of A and block column of B after the all-to-all broadcast
// (Section 4.1), so the total is O(n²·√p) — memory inefficient.
func SimpleMemoryPerProc(n, p float64) float64 {
	// Own C block + √p blocks of A + √p blocks of B.
	return n*n/p + 2*math.Sqrt(p)*(n*n/p)
}

// CannonMemoryPerProc is the per-processor memory in matrix words,
// O(n²/p): one block of each of A, B and C —
// the memory-efficient baseline (Section 4.2).
func CannonMemoryPerProc(n, p float64) float64 {
	return 3 * n * n / p
}

// BerntsenMemoryPerProc is the paper's 2·n²/p + n²/p^(2/3) matrix
// words per processor
// (Section 4.4): the A and B sub-blocks plus the full partial-product
// block accumulated before the cross-subcube summation.
func BerntsenMemoryPerProc(n, p float64) float64 {
	return 2*n*n/p + n*n/math.Pow(p, 2.0/3.0)
}

// GKMemoryPerProc is 3·n²/p^(2/3) matrix words per processor: every
// processor of the p^(1/3)-deep
// cube holds whole n/p^(1/3)-sided blocks of A, B and its C partial,
// so the total is O(n²·p^(1/3)) — the GK algorithm trades memory for
// communication exactly like the DNS algorithm it generalizes.
func GKMemoryPerProc(n, p float64) float64 {
	return 3 * n * n / math.Pow(p, 2.0/3.0)
}

// TotalMemory returns p times the per-processor requirement.
func TotalMemory(perProc func(n, p float64) float64, n, p float64) float64 {
	return p * perProc(n, p)
}

// MemoryEfficient reports whether the formulation's total memory stays
// within the given constant factor of the serial algorithm's 2n²
// input storage as p grows (checked at the supplied operating point).
func MemoryEfficient(perProc func(n, p float64) float64, n, p, factor float64) bool {
	return TotalMemory(perProc, n, p) <= factor*2*n*n
}
