package model

import (
	"math"
	"testing"
	"testing/quick"
)

var pr = Params{Ts: 150, Tw: 3}

// Hand-computed values of every paper equation at (n=64, p=64),
// log₂p = 6, √p = 8, p^(1/3) = 4, p^(2/3) = 16.
func TestPaperEquationsAtKnownPoint(t *testing.T) {
	n, p := 64.0, 64.0
	w := n * n * n / p // 4096
	cases := []struct {
		name string
		f    func(Params, float64, float64) float64
		want float64
	}{
		{"Eq2 Simple", PaperSimpleTp, w + 2*150*6 + 2*3*4096/8},
		{"Eq3 Cannon", PaperCannonTp, w + 2*150*8 + 2*3*4096/8},
		{"Eq4 Fox", PaperFoxTp, w + 2*3*4096/8 + 150*64},
		{"Eq5 Berntsen", PaperBerntsenTp, w + 2*150*4 + 150.0*6/3 + 3*3*4096/16},
		{"Eq6 DNS", PaperDNSTp, w + 153*(5*(-6.0)+2*4096)}, // log(p/n²) = −6, 2n³/p = 8192
		{"Eq7 GK", PaperGKTp, w + 5.0/3.0*150*6 + 5.0/3.0*3*4096/16*6},
		{"Eq16 SimpleAllPort", PaperSimpleAllPortTp, w + 2*3*4096/(8*6) + 150.0*6/2},
		{"Eq17 GKAllPort", PaperGKAllPortTp, w + 150*6 + 9*3*4096/(16*6) + 6*64/4*math.Sqrt(150*3)},
		{"Eq18 GKCM5", PaperGKCM5Tp, w + 150*8 + 3*4096/16*8},
	}
	for _, c := range cases {
		got := c.f(pr, n, p)
		if math.Abs(got-c.want) > 1e-9*math.Abs(c.want) {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestOverheadIdentityToEqualsPTpMinusW(t *testing.T) {
	// Table 1's To functions must equal p·Tp − n³ for the matching Tp
	// equations (the definition in Section 2).
	n, p := 256.0, 4096.0
	pairs := []struct {
		name string
		tp   func(Params, float64, float64) float64
		to   func(Params, float64, float64) float64
	}{
		{"Cannon", PaperCannonTp, CannonTo},
		{"GK", PaperGKTp, GKTo},
		{"Simple", PaperSimpleTp, SimpleTo},
		{"SimpleAllPort", PaperSimpleAllPortTp, SimpleAllPortTo},
		{"GKAllPort", PaperGKAllPortTp, GKAllPortTo},
	}
	for _, c := range pairs {
		want := p*c.tp(pr, n, p) - n*n*n
		got := c.to(pr, n, p)
		if math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Errorf("%s: To = %v, p·Tp−W = %v", c.name, got, want)
		}
	}
}

func TestBerntsenToMatchesTpUpToDroppedTerm(t *testing.T) {
	// Table 1's Berntsen To uses the rounded 3·tw·n²·p^(1/3); Eq. (5)'s
	// p·Tp − W equals it exactly because Eq. (5) prints the same
	// rounding.
	n, p := 256.0, 512.0
	want := p*PaperBerntsenTp(pr, n, p) - n*n*n
	got := BerntsenTo(pr, n, p)
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("Berntsen To = %v, p·Tp−W = %v", got, want)
	}
}

func TestDNSToFormsAgreeOnBoundary(t *testing.T) {
	// Table 1's DNS To is the exact Eq. (6) overhead evaluated at the
	// p = n³ extreme: log(p/n²) = (1/3)·log p there.
	p := 4096.0
	n := math.Cbrt(p)
	if d := math.Abs(DNSTo(pr, n, p) - DNSToExact(pr, n, p)); d > 1e-9*DNSTo(pr, n, p) {
		t.Fatalf("forms differ by %v on the p=n³ boundary", d)
	}
	// Off the boundary (larger n) the exact form is smaller.
	if DNSToExact(pr, 2*n, p) >= DNSTo(pr, 2*n, p) {
		t.Fatal("exact DNS overhead should be below Table 1's simplification for n > p^(1/3)")
	}
}

func TestEfficiencyHelpers(t *testing.T) {
	if e := Efficiency(100, 100); e != 0.5 {
		t.Fatalf("Efficiency = %v", e)
	}
	if e := EfficiencyFromTp(1000, 10, 200); e != 0.5 {
		t.Fatalf("EfficiencyFromTp = %v", e)
	}
	if w := W(10); w != 1000 {
		t.Fatalf("W = %v", w)
	}
}

func TestSpecsShape(t *testing.T) {
	specs := Specs()
	if len(specs) != 4 {
		t.Fatalf("got %d specs", len(specs))
	}
	letters := map[byte]bool{}
	for _, s := range specs {
		letters[s.Letter] = true
		if s.To == nil || s.Tp == nil || s.Applicable == nil || s.Isoefficiency == "" {
			t.Errorf("%s: incomplete spec", s.Name)
		}
	}
	for _, l := range []byte{'a', 'b', 'c', 'd'} {
		if !letters[l] {
			t.Errorf("letter %c missing", l)
		}
	}
}

func TestApplicabilityRanges(t *testing.T) {
	for _, s := range Specs() {
		n := 64.0
		var inside, below, above float64
		switch s.Name {
		case "Berntsen":
			inside, below, above = 256, 0.5, 1024 // n^1.5 = 512
		case "Cannon":
			inside, below, above = 1024, 0.5, 8192 // n² = 4096
		case "GK":
			inside, below, above = 4096, 0.5, 1<<19 // n³ = 2^18
		case "DNS":
			inside, below, above = 1<<17, 1024, 1<<19
		}
		if !s.Applicable(n, inside) {
			t.Errorf("%s: should apply at p=%v", s.Name, inside)
		}
		if s.Name != "DNS" && !s.Applicable(n, 1) {
			t.Errorf("%s: should apply at p=1", s.Name)
		}
		if s.Name == "DNS" && s.Applicable(n, below) {
			t.Errorf("DNS must not apply below n²")
		}
		if s.Applicable(n, above) {
			t.Errorf("%s: must not apply at p=%v", s.Name, above)
		}
	}
}

func TestExactFormsReduceToSerialAtP1(t *testing.T) {
	prm := Params{Ts: 17, Tw: 3}
	n := 12
	w := float64(n * n * n)
	for _, c := range []struct {
		name string
		f    func(Params, int, int) float64
	}{
		{"Simple", ExactSimpleTp},
		{"Cannon", ExactCannonTp},
		{"Fox", ExactFoxTp},
		{"FoxPipelined", ExactFoxPipelinedTp},
		{"Berntsen", ExactBerntsenTp},
		{"GK", ExactGKTp},
		{"GKCM5", ExactGKCM5Tp},
		{"GKImproved", ExactGKImprovedTp},
		{"GKAllPort", ExactGKAllPortTp},
		{"SimpleAllPort", ExactSimpleAllPortTp},
	} {
		if got := c.f(prm, n, 1); got != w {
			t.Errorf("%s at p=1: Tp = %v, want %v (pure serial)", c.name, got, w)
		}
	}
}

func TestExactDNSReducesToSerial(t *testing.T) {
	prm := Params{Ts: 17, Tw: 3}
	if got := ExactDNSTp(prm, 12, 1, 1); got != 12*12*12 {
		t.Fatalf("DNS p=1: %v", got)
	}
}

func TestExactGKEqualsEq7OnHypercube(t *testing.T) {
	prm := Params{Ts: 17, Tw: 3}
	for _, c := range []struct{ n, p int }{{8, 8}, {16, 64}, {32, 512}, {64, 4096}} {
		exact := ExactGKTp(prm, c.n, c.p)
		paper := PaperGKTp(prm, float64(c.n), float64(c.p))
		if math.Abs(exact-paper) > 1e-9*paper {
			t.Errorf("n=%d p=%d: exact %v vs Eq.(7) %v", c.n, c.p, exact, paper)
		}
	}
}

func TestExactCannonEqualsEq3(t *testing.T) {
	prm := Params{Ts: 17, Tw: 3}
	for _, c := range []struct{ n, p int }{{8, 4}, {16, 16}, {64, 64}} {
		exact := ExactCannonTp(prm, c.n, c.p)
		paper := PaperCannonTp(prm, float64(c.n), float64(c.p))
		if math.Abs(exact-paper) > 1e-9*paper {
			t.Errorf("n=%d p=%d: exact %v vs Eq.(3) %v", c.n, c.p, exact, paper)
		}
	}
}

func TestNEqualToFindsKnownCrossing(t *testing.T) {
	// GK vs Cannon at moderate p: crossing must exist and match Eq. (15)
	// (tested in detail in the regions package); here check the generic
	// bisection machinery itself.
	n, ok := NEqualTo(pr, GKTo, CannonTo, 1024, 1e9)
	if !ok || n <= 1 {
		t.Fatalf("no crossing: %v %v", n, ok)
	}
	if GKTo(pr, n, 1024) > CannonTo(pr, n, 1024)*(1+1e-6) ||
		GKTo(pr, n, 1024) < CannonTo(pr, n, 1024)*(1-1e-6) {
		t.Fatalf("overheads unequal at the returned crossing")
	}
	// No crossing case: a uniformly dominated overhead never crosses.
	shifted := func(q Params, n, p float64) float64 { return GKTo(q, n, p) + 1000 }
	if _, ok := NEqualTo(pr, shifted, GKTo, 1024, 1e9); ok {
		t.Fatal("dominated overheads reported a crossing")
	}
}

// Property: every Tp equation is decreasing in p for fixed large n
// (more processors help when the problem is big enough), and every To
// is increasing in both n and p.
func TestQuickMonotonicity(t *testing.T) {
	f := func(pe, ne uint8) bool {
		p := math.Pow(2, float64(2+pe%10))
		n := math.Pow(2, float64(8+ne%6))
		for _, s := range Specs() {
			if s.To(pr, n, p) > s.To(pr, n, 2*p) || s.To(pr, n, p) > s.To(pr, 2*n, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Section 3's opening observation: for a fixed problem size the
// speedup saturates and then *falls* as p grows — Tp eventually
// increases with p once the startup overhead dominates.
func TestSpeedupSaturationForFixedProblem(t *testing.T) {
	n := 256.0
	bestTp, bestP := math.Inf(1), 0.0
	worseAfterBest := false
	for pe := 0; pe <= 16; pe += 2 {
		p := math.Pow(2, float64(pe))
		tp := PaperCannonTp(pr, n, p)
		if tp < bestTp {
			bestTp, bestP = tp, p
		} else if p > bestP {
			worseAfterBest = true
		}
	}
	if !worseAfterBest {
		t.Fatal("Cannon's Tp never saturated for fixed n — Section 3's premise lost")
	}
	if bestP <= 1 || bestP >= 1<<16 {
		t.Fatalf("saturation point p=%v implausible", bestP)
	}
}

// Property: efficiency derived from To is always in (0, 1] and
// increases with n at fixed p for the scalable algorithms.
func TestQuickEfficiencyBounds(t *testing.T) {
	f := func(pe, ne uint8) bool {
		p := math.Pow(2, float64(2+pe%12))
		n := math.Pow(2, float64(4+ne%8))
		for _, s := range []func(Params, float64, float64) float64{CannonTo, GKTo, SimpleTo} {
			e := Efficiency(W(n), s(pr, n, p))
			e2 := Efficiency(W(2*n), s(pr, 2*n, p))
			if e <= 0 || e > 1 || e2 < e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestImprovedGKToKnownValue(t *testing.T) {
	// At n=64, p=64 (log p = 6, p^(1/3) = 4, p^(2/3) = 16):
	// tw·n²·p^(1/3) + (1/3)·ts·p·log p + 2·n·p^(2/3)·sqrt(ts·tw·log p/3).
	want := 3*4096*4.0 + 150.0*64*6/3 + 2*64*16*math.Sqrt(150*3*6.0/3)
	if got := ImprovedGKTo(pr, 64, 64); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("ImprovedGKTo = %v, want %v", got, want)
	}
}
