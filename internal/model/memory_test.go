package model

import (
	"math"
	"testing"
)

func TestMemoryPerProcKnownValues(t *testing.T) {
	n, p := 64.0, 64.0 // √p=8, p^(2/3)=16
	if got, want := SimpleMemoryPerProc(n, p), 64.0+2*8*64; got != want {
		t.Errorf("Simple = %v, want %v", got, want)
	}
	if got, want := CannonMemoryPerProc(n, p), 3*64.0; got != want {
		t.Errorf("Cannon = %v, want %v", got, want)
	}
	if got, want := BerntsenMemoryPerProc(n, p), 2*64.0+4096/16.0; got != want {
		t.Errorf("Berntsen = %v, want %v", got, want)
	}
	if got, want := GKMemoryPerProc(n, p), 3*4096/16.0; got != want {
		t.Errorf("GK = %v, want %v", got, want)
	}
}

func TestMemoryEfficiencyClassification(t *testing.T) {
	// Section 4.2: Cannon is memory efficient — total stays O(n²) at
	// any p. Sections 4.1/4.4/4.6: the others are not.
	n := 1024.0
	for _, p := range []float64{64, 4096, 1 << 18} {
		if !MemoryEfficient(CannonMemoryPerProc, n, p, 2) {
			t.Errorf("Cannon not memory efficient at p=%v", p)
		}
	}
	// Simple's total grows like √p: inefficient at large p.
	if MemoryEfficient(SimpleMemoryPerProc, n, 1<<18, 4) {
		t.Error("Simple classified memory efficient at p=2^18")
	}
	// GK's total grows like p^(1/3).
	if MemoryEfficient(GKMemoryPerProc, n, 1<<18, 4) {
		t.Error("GK classified memory efficient at p=2^18")
	}
	// Berntsen: total = 2n² + n²·p^(1/3) — also inefficient, as the
	// paper notes ("like the one in Section 4.1 is not memory
	// efficient").
	if MemoryEfficient(BerntsenMemoryPerProc, n, 1<<18, 4) {
		t.Error("Berntsen classified memory efficient at p=2^18")
	}
}

func TestMemoryGrowthRates(t *testing.T) {
	// Total memory growth exponents in p at fixed n: Simple 1/2,
	// GK/Berntsen 1/3, Cannon 0.
	n := 4096.0
	rate := func(f func(n, p float64) float64) float64 {
		lo, hi := TotalMemory(f, n, 1<<12), TotalMemory(f, n, 1<<24)
		return math.Log2(hi/lo) / 12
	}
	if r := rate(CannonMemoryPerProc); math.Abs(r) > 1e-9 {
		t.Errorf("Cannon total-memory growth = %v, want 0", r)
	}
	if r := rate(SimpleMemoryPerProc); math.Abs(r-0.5) > 0.01 {
		t.Errorf("Simple total-memory growth = %v, want 0.5", r)
	}
	if r := rate(GKMemoryPerProc); math.Abs(r-1.0/3.0) > 1e-9 {
		t.Errorf("GK total-memory growth = %v, want 1/3", r)
	}
	if r := rate(BerntsenMemoryPerProc); r < 0.2 || r > 1.0/3.0+1e-9 {
		t.Errorf("Berntsen total-memory growth = %v, want ≤1/3 approaching it", r)
	}
}
