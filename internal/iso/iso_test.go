package iso

import (
	"math"
	"testing"
	"testing/quick"

	"matscale/internal/model"
)

var pr = model.Params{Ts: 150, Tw: 3}

func TestK(t *testing.T) {
	if k := K(0.5); k != 1 {
		t.Fatalf("K(0.5) = %v, want 1", k)
	}
	if k := K(0.9); math.Abs(k-9) > 1e-12 {
		t.Fatalf("K(0.9) = %v, want 9", k)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("K(1) should panic")
		}
	}()
	K(1)
}

func TestSolveWIsFixedPoint(t *testing.T) {
	to := func(n, p float64) float64 { return model.CannonTo(pr, n, p) }
	for _, p := range []float64{4, 64, 1024, 1 << 20} {
		for _, e := range []float64{0.3, 0.5, 0.8, 0.95} {
			w, ok := SolveW(to, p, e)
			if !ok {
				t.Fatalf("p=%v e=%v: no convergence", p, e)
			}
			n := math.Cbrt(w)
			if rel := math.Abs(w-K(e)*to(n, p)) / w; rel > 1e-10 {
				t.Fatalf("p=%v e=%v: fixed point violated by %v", p, e, rel)
			}
			// The efficiency at the solved size must equal the target.
			gotE := model.Efficiency(w, to(n, p))
			if math.Abs(gotE-e) > 1e-10 {
				t.Fatalf("p=%v: efficiency at solved W = %v, want %v", p, gotE, e)
			}
		}
	}
}

func TestSolveWUnscalableFails(t *testing.T) {
	// An overhead growing like W² can hold no fixed efficiency.
	to := func(n, p float64) float64 { return n * n * n * n * n * n }
	if _, ok := SolveW(to, 16, 0.5); ok {
		t.Fatal("expected failure for To ~ W²")
	}
}

func TestCannonIsoefficiencyExponent(t *testing.T) {
	// Table 1: Cannon's isoefficiency is O(p^1.5).
	w := func(p float64) float64 {
		v, ok := SolveW(func(n, q float64) float64 { return model.CannonTo(pr, n, q) }, p, 0.5)
		if !ok {
			t.Fatal("no convergence")
		}
		return v
	}
	x := GrowthExponent(w, 1<<10, 1<<30, 40)
	if math.Abs(x-1.5) > 0.02 {
		t.Fatalf("Cannon isoefficiency exponent = %v, want ≈1.5", x)
	}
}

func TestGKIsoefficiencyExponent(t *testing.T) {
	// Table 1: GK is O(p·(log p)³) — exponent slightly above 1.
	w := func(p float64) float64 {
		v, ok := SolveW(func(n, q float64) float64 { return model.GKTo(pr, n, q) }, p, 0.5)
		if !ok {
			t.Fatal("no convergence")
		}
		return v
	}
	x := GrowthExponent(w, 1<<10, 1<<30, 40)
	if x < 1.0 || x > 1.4 {
		t.Fatalf("GK isoefficiency exponent = %v, want in (1, 1.4)", x)
	}
	// And the polylog is real: W(p)/p must keep growing.
	if w(1<<30)/(1<<30) <= w(1<<20)/(1<<20) {
		t.Fatal("GK W/p is not growing — polylog factor missing")
	}
}

func TestBerntsenConcurrencyDominates(t *testing.T) {
	// Berntsen's communication isoefficiency is only O(p^(4/3)), but the
	// p ≤ n^(3/2) concurrency limit forces W ∝ p² (Section 5.2).
	maxProcs := func(n float64) float64 { return math.Pow(n, 1.5) }
	to := func(n, p float64) float64 { return model.BerntsenTo(pr, n, p) }
	w := func(p float64) float64 {
		v, ok := OverallW(to, maxProcs, p, 0.5)
		if !ok {
			t.Fatal("no convergence")
		}
		return v
	}
	// Fit in the range where the concurrency term dominates the
	// communication term (it takes over around p ≈ 2^18 for ts=150).
	x := GrowthExponent(w, 1<<22, 1<<40, 40)
	if math.Abs(x-2.0) > 0.03 {
		t.Fatalf("Berntsen overall isoefficiency exponent = %v, want ≈2", x)
	}
	// Communication alone would be ≈4/3.
	wComm := func(p float64) float64 {
		v, _ := SolveW(to, p, 0.5)
		return v
	}
	xc := GrowthExponent(wComm, 1<<10, 1<<30, 40)
	if math.Abs(xc-4.0/3.0) > 0.05 {
		t.Fatalf("Berntsen communication isoefficiency exponent = %v, want ≈4/3", xc)
	}
}

func TestDNSIsoefficiencyExponent(t *testing.T) {
	// Table 1: DNS is O(p·log p) once E is below its ceiling.
	eMax := MaxEfficiencyDNS(pr.Ts, pr.Tw)
	e := eMax / 2
	w := func(p float64) float64 {
		v, ok := SolveW(func(n, q float64) float64 { return model.DNSTo(pr, n, q) }, p, e)
		if !ok {
			t.Fatal("no convergence")
		}
		return v
	}
	x := GrowthExponent(w, 1<<10, 1<<30, 40)
	if x < 1.0 || x > 1.15 {
		t.Fatalf("DNS isoefficiency exponent = %v, want ≈1 (plus log)", x)
	}
}

func TestDNSEfficiencyCeiling(t *testing.T) {
	// Above the ceiling 1/(1+2(ts+tw)) the DNS fixed point must diverge.
	eMax := MaxEfficiencyDNS(pr.Ts, pr.Tw)
	if eMax >= 1 || eMax <= 0 {
		t.Fatalf("ceiling = %v", eMax)
	}
	if _, ok := SolveW(func(n, q float64) float64 { return model.DNSTo(pr, n, q) }, 1<<12, eMax*1.05); ok {
		t.Fatal("fixed point converged above the DNS efficiency ceiling")
	}
	if _, ok := SolveW(func(n, q float64) float64 { return model.DNSTo(pr, n, q) }, 1<<12, eMax*0.9); !ok {
		t.Fatal("fixed point failed below the DNS efficiency ceiling")
	}
	// Section 10: on a SIMD-like machine the ceiling is high.
	if e := MaxEfficiencyDNS(0.5, 3); e > 0.125+1e-9 || e < 0.12 {
		t.Fatalf("SIMD DNS ceiling = %v", e)
	}
}

func TestConcurrencyW(t *testing.T) {
	// Cannon: p ≤ n² → n = √p → W = p^1.5.
	maxProcs := func(n float64) float64 { return n * n }
	for _, p := range []float64{16, 1024, 1 << 20} {
		w := ConcurrencyW(maxProcs, p)
		if rel := math.Abs(w-math.Pow(p, 1.5)) / math.Pow(p, 1.5); rel > 1e-9 {
			t.Fatalf("p=%v: concurrency W = %v, want p^1.5 = %v", p, w, math.Pow(p, 1.5))
		}
	}
}

func TestGrowthExponentOnKnownPower(t *testing.T) {
	x := GrowthExponent(func(p float64) float64 { return 7 * math.Pow(p, 2.25) }, 10, 1e6, 20)
	if math.Abs(x-2.25) > 1e-9 {
		t.Fatalf("exponent = %v, want 2.25", x)
	}
}

func TestAllPortGranularity(t *testing.T) {
	// Section 7: the message-size floor makes all-port *worse* than the
	// one-port isoefficiency for the simple algorithm: p^1.5·(log p)³/8
	// vs p^1.5 — and for GK p(log p)³ equals its one-port bound.
	p := float64(1 << 16)
	l := math.Log2(p)
	if got, want := AllPortGranularityW("simple", p), math.Pow(p, 1.5)*l*l*l/8; got != want {
		t.Fatalf("simple granularity = %v, want %v", got, want)
	}
	if got, want := AllPortGranularityW("gk", p), p*l*l*l; got != want {
		t.Fatalf("gk granularity = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown algorithm should panic")
		}
	}()
	AllPortGranularityW("nope", p)
}

// Property: the solved W is increasing in both p and target efficiency.
func TestQuickSolveWMonotone(t *testing.T) {
	to := func(n, p float64) float64 { return model.GKTo(pr, n, p) }
	f := func(pExp uint8, eStep uint8) bool {
		p := math.Pow(2, 4+float64(pExp%20))
		e := 0.2 + 0.6*float64(eStep%10)/10
		w1, ok1 := SolveW(to, p, e)
		w2, ok2 := SolveW(to, 2*p, e)
		w3, ok3 := SolveW(to, p, e+0.05)
		return ok1 && ok2 && ok3 && w2 > w1 && w3 > w1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryConstrainedN(t *testing.T) {
	// Cannon stores 3n²/p words per processor: capacity M gives
	// n = sqrt(M·p/3).
	n := MemoryConstrainedN(model.CannonMemoryPerProc, 64, 3000)
	if math.Abs(n-math.Sqrt(3000*64.0/3)) > 1e-6*n {
		t.Fatalf("n = %v", n)
	}
}

func TestMemoryConstrainedScalingSeparatesAlgorithms(t *testing.T) {
	// With fixed memory per processor, Cannon's efficiency holds
	// roughly steady as p grows (memory-constrained W ~ p^1.5 matches
	// its isoefficiency), while the memory-hungry simple algorithm's
	// efficiency decays (it can only afford W ~ p^(3/4)).
	const capacity = 1 << 16
	toCannon := func(n, p float64) float64 { return model.CannonTo(pr, n, p) }
	toSimple := func(n, p float64) float64 { return model.SimpleTo(pr, n, p) }

	eC1 := MemoryConstrainedEfficiency(toCannon, model.CannonMemoryPerProc, 1<<8, capacity)
	eC2 := MemoryConstrainedEfficiency(toCannon, model.CannonMemoryPerProc, 1<<26, capacity)
	if eC2 < 0.8*eC1 {
		t.Fatalf("Cannon memory-constrained efficiency collapsed: %v -> %v", eC1, eC2)
	}

	eS1 := MemoryConstrainedEfficiency(toSimple, model.SimpleMemoryPerProc, 1<<8, capacity)
	eS2 := MemoryConstrainedEfficiency(toSimple, model.SimpleMemoryPerProc, 1<<26, capacity)
	if eS2 > 0.35*eS1 {
		t.Fatalf("Simple memory-constrained efficiency did not decay: %v -> %v", eS1, eS2)
	}
}

func TestImprovedGKIsoefficiencyExponent(t *testing.T) {
	// Table 1: the GK algorithm with the Johnsson-Ho broadcast has
	// isoefficiency O(p·(log p)^1.5) — asymptotically below plain GK's
	// O(p·(log p)³).
	wImproved := func(p float64) float64 {
		v, ok := SolveW(func(n, q float64) float64 { return model.ImprovedGKTo(pr, n, q) }, p, 0.5)
		if !ok {
			t.Fatal("no convergence")
		}
		return v
	}
	wPlain := func(p float64) float64 {
		v, _ := SolveW(func(n, q float64) float64 { return model.GKTo(pr, n, q) }, p, 0.5)
		return v
	}
	x := GrowthExponent(wImproved, 1<<10, 1<<30, 40)
	if x < 1.0 || x > 1.3 {
		t.Fatalf("improved GK isoefficiency exponent = %v, want ≈1+polylog", x)
	}
	// At large p the improved scheme needs a smaller problem than the
	// naive one for the same efficiency.
	if wImproved(1<<30) >= wPlain(1<<30) {
		t.Fatalf("improved GK W %v not below plain GK W %v at p=2^30", wImproved(1<<30), wPlain(1<<30))
	}
}
