// Package iso implements the isoefficiency machinery of Sections 3 and
// 5: the fixed-point solver for W = K·To(W, p) (Equation 1), the
// concurrency-limited isoefficiency of algorithms that cannot use more
// than h(W) processors, and numeric growth-exponent estimation used to
// confirm the asymptotic entries of Table 1.
package iso

import (
	"fmt"
	"math"
)

// K returns the constant K = E/(1−E) of Equation (1) for a target
// efficiency E ∈ (0, 1).
func K(e float64) float64 {
	if e <= 0 || e >= 1 {
		panic(fmt.Sprintf("iso: efficiency %v outside (0,1)", e))
	}
	return e / (1 - e)
}

// SolveW solves Equation (1), W = K·To(W, p), for the problem size W at
// fixed p and target efficiency e. The overhead function is expressed
// in terms of the matrix dimension n (W = n³, Section 5). It returns
// the fixed point and ok=false if the iteration fails to converge
// (which happens only for overhead functions growing at least as fast
// as W itself, i.e. unscalable systems).
func SolveW(to func(n, p float64) float64, p, e float64) (float64, bool) {
	k := K(e)
	n := 1.0
	for i := 0; i < 10000; i++ {
		w := k * to(n, p)
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return 0, false
		}
		next := math.Cbrt(w)
		if math.Abs(next-n) <= 1e-13*next {
			w = next * next * next
			// Scalability check: the fixed point is only meaningful if
			// efficiency improves with problem size there, i.e. To/W is
			// locally decreasing. Overheads growing as fast as W (or
			// faster) have degenerate fixed points the isoefficiency
			// analysis rejects (Section 3).
			n2 := math.Cbrt(2 * w)
			if to(n2, p)/(2*w) >= to(next, p)/w*(1-1e-12) {
				return 0, false
			}
			return w, true
		}
		n = next
	}
	return 0, false
}

// SolveN is SolveW returning the matrix dimension n = W^(1/3)
// instead of the operation count W (flops).
func SolveN(to func(n, p float64) float64, p, e float64) (float64, bool) {
	w, ok := SolveW(to, p, e)
	if !ok {
		return 0, false
	}
	return math.Cbrt(w), true
}

// ConcurrencyW returns the problem size W (flops) forced by a
// concurrency limit:
// if an algorithm can use at most maxProcs(n) processors, then W must
// grow as the inverse of that bound. maxProcs must be strictly
// increasing; the inverse is found by bisection on n.
func ConcurrencyW(maxProcs func(n float64) float64, p float64) float64 {
	lo, hi := 1.0, 2.0
	for maxProcs(hi) < p {
		hi *= 2
		if hi > 1e150 {
			panic("iso: concurrency bound never reaches p")
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-12*hi; i++ {
		mid := (lo + hi) / 2
		if maxProcs(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	n := (lo + hi) / 2
	return n * n * n
}

// OverallW combines the communication isoefficiency (Equation 1) with a
// concurrency limit: the overall isoefficiency is whichever requires W
// to grow faster (Section 5).
func OverallW(to func(n, p float64) float64, maxProcs func(n float64) float64, p, e float64) (float64, bool) {
	w, ok := SolveW(to, p, e)
	if !ok {
		return 0, false
	}
	return math.Max(w, ConcurrencyW(maxProcs, p)), true
}

// GrowthExponent estimates x in W(p) ≈ c·p^x by least-squares fit of
// log W against log p over geometrically spaced samples in [pLo, pHi].
// Polylogarithmic factors inflate the estimate slightly above the
// power; the Table 1 verification tests account for that.
func GrowthExponent(w func(p float64) float64, pLo, pHi float64, samples int) float64 {
	if samples < 2 {
		panic("iso: need at least two samples")
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < samples; i++ {
		f := float64(i) / float64(samples-1)
		p := pLo * math.Pow(pHi/pLo, f)
		x := math.Log(p)
		y := math.Log(w(p))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	nf := float64(samples)
	return (nf*sxy - sx*sy) / (nf*sxx - sx*sx)
}

// MemoryConstrainedN solves memPerProc(n, p) = capacity for n — the
// largest matrix dimension a machine with fixed per-processor memory
// (capacity in matrix words) can hold at p processors. memPerProc must
// be strictly increasing in n.
func MemoryConstrainedN(memPerProc func(n, p float64) float64, p, capacity float64) float64 {
	lo, hi := 1.0, 2.0
	for memPerProc(hi, p) < capacity {
		hi *= 2
		if hi > 1e30 {
			panic("iso: memory bound never reached")
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-12*hi; i++ {
		mid := (lo + hi) / 2
		if memPerProc(mid, p) < capacity {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MemoryConstrainedEfficiency is the efficiency delivered when the
// problem grows as fast as a fixed per-processor memory allows —
// Worley-style memory-constrained scaling applied to the paper's
// algorithms. For matrix multiplication, memory-efficient formulations
// (Cannon: n² ∝ p) grow W like p^1.5, exactly Cannon's isoefficiency,
// so their efficiency approaches a machine-dependent constant; the
// simple algorithm's O(n²/√p)-per-processor appetite only affords
// W ∝ p^(3/4), below its p^1.5 isoefficiency, so its efficiency decays
// — the scalability cost of memory inefficiency.
func MemoryConstrainedEfficiency(to, memPerProc func(n, p float64) float64, p, capacity float64) float64 {
	n := MemoryConstrainedN(memPerProc, p, capacity)
	w := n * n * n
	return w / (w + to(n, p))
}

// MaxEfficiencyDNS returns the efficiency ceiling of the DNS algorithm
// (Section 5.3): the 2·(ts+tw)·n³ term of its overhead grows exactly
// as fast as W, so E can never exceed 1/(1 + 2(ts+tw)) no matter how
// large the problem.
func MaxEfficiencyDNS(ts, tw float64) float64 {
	return 1 / (1 + 2*(ts+tw))
}

// AllPortGranularityW returns the problem size lower bound imposed by
// the minimum problem size W (flops) at which messages are large
// enough to use all hypercube channels
// simultaneously (Section 7): W ≥ (1/8)·p^1.5·(log p)³ for the simple
// algorithm and W ≥ p·(log p)³ for the GK algorithm. These bounds are
// what make all-port communication scale no better than one-port.
func AllPortGranularityW(algorithm string, p float64) float64 {
	l := math.Log2(p)
	switch algorithm {
	case "simple":
		return math.Pow(p, 1.5) * l * l * l / 8
	case "gk":
		return p * l * l * l
	default:
		panic(fmt.Sprintf("iso: unknown all-port algorithm %q", algorithm))
	}
}
