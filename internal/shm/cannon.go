package shm

import (
	"fmt"
	"sync"

	"matscale/internal/matrix"
)

// CannonParallel multiplies two n×n matrices with Cannon's algorithm
// executed for real on this machine: q×q goroutine workers exchange
// blocks over channels, rolling A left and B up exactly as on the
// paper's wraparound mesh. It demonstrates the algorithm as a genuine
// shared-nothing message-passing program (each worker touches only its
// own blocks) rather than a virtual-time simulation. q must divide n.
func CannonParallel(a, b *matrix.Dense, q int) (*matrix.Dense, error) {
	if !a.IsSquare() || !b.IsSquare() || a.Rows != b.Rows {
		return nil, fmt.Errorf("shm: CannonParallel needs equal square matrices, got %dx%d and %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	n := a.Rows
	if q <= 0 || n%q != 0 {
		return nil, fmt.Errorf("shm: mesh side %d does not divide n = %d", q, n)
	}
	ga := matrix.Partition(a, q, q)
	gb := matrix.Partition(b, q, q)

	// One channel per mesh edge direction and position: aCh[i][j]
	// carries the A block arriving at worker (i, j) from its right
	// neighbor; bCh[i][j] carries the B block arriving from below.
	// Capacity 1 lets every worker send before receiving.
	aCh := make([][]chan *matrix.Dense, q)
	bCh := make([][]chan *matrix.Dense, q)
	for i := 0; i < q; i++ {
		aCh[i] = make([]chan *matrix.Dense, q)
		bCh[i] = make([]chan *matrix.Dense, q)
		for j := 0; j < q; j++ {
			aCh[i][j] = make(chan *matrix.Dense, 1)
			bCh[i][j] = make(chan *matrix.Dense, 1)
		}
	}

	c := matrix.New(n, n)
	bs := n / q
	var wg sync.WaitGroup
	wg.Add(q * q)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			go func(i, j int) {
				defer wg.Done()
				// Initial alignment, realized at placement time: worker
				// (i, j) starts with A_{i,(j+i)} and B_{(i+j),j}.
				myA := ga.Block(i, (j+i)%q)
				myB := gb.Block((i+j)%q, j)
				acc := matrix.New(bs, bs)
				for step := 0; step < q; step++ {
					matrix.MulAddInto(acc, myA, myB)
					if step == q-1 {
						break
					}
					// Roll: A one step left, B one step up.
					aCh[i][(j+q-1)%q] <- myA
					bCh[(i+q-1)%q][j] <- myB
					myA = <-aCh[i][j]
					myB = <-bCh[i][j]
				}
				// Disjoint block of the shared result: no lock needed.
				c.SetBlock(i*bs, j*bs, acc)
			}(i, j)
		}
	}
	wg.Wait()
	return c, nil
}
