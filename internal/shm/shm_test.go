package shm

import (
	"strings"
	"testing"
	"testing/quick"

	"matscale/internal/matrix"
)

func TestMulMatchesSerial(t *testing.T) {
	for _, c := range []struct{ n, workers, tile int }{
		{1, 1, 1}, {7, 2, 3}, {16, 4, 8}, {33, 3, 16}, {64, 0, 0}, {50, 100, 64},
	} {
		a := matrix.RandomInts(c.n, c.n, uint64(c.n))
		b := matrix.RandomInts(c.n, c.n, uint64(c.n)+9)
		got, err := Mul(a, b, c.workers, c.tile)
		if err != nil {
			t.Fatalf("n=%d workers=%d tile=%d: %v", c.n, c.workers, c.tile, err)
		}
		want := matrix.Mul(a, b)
		if d := matrix.MaxAbsDiff(got, want); d != 0 {
			t.Fatalf("n=%d workers=%d tile=%d: differs by %v", c.n, c.workers, c.tile, d)
		}
	}
}

func TestMulRectangular(t *testing.T) {
	a := matrix.RandomInts(13, 29, 5)
	b := matrix.RandomInts(29, 7, 6)
	got, err := Mul(a, b, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, matrix.Mul(a, b)); d != 0 {
		t.Fatalf("rectangular product differs by %v", d)
	}
}

func TestMulEmpty(t *testing.T) {
	c, err := Mul(matrix.New(0, 5), matrix.New(5, 3), 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows != 0 || c.Cols != 3 {
		t.Fatalf("empty product shape %dx%d", c.Rows, c.Cols)
	}
}

func TestMulDimensionMismatchErrors(t *testing.T) {
	if _, err := Mul(matrix.New(2, 3), matrix.New(2, 3), 1, 1); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("err = %v", err)
	}
}

// Property: worker count never changes the result for integer inputs.
func TestQuickWorkerInvariance(t *testing.T) {
	f := func(seed uint64, w1, w2 uint8) bool {
		a := matrix.RandomInts(17, 17, seed)
		b := matrix.RandomInts(17, 17, seed+1)
		r1, err1 := Mul(a, b, int(w1%8)+1, 8)
		r2, err2 := Mul(a, b, int(w2%8)+1, 32)
		return err1 == nil && err2 == nil && matrix.MaxAbsDiff(r1, r2) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCannonParallelMatchesSerial(t *testing.T) {
	for _, c := range []struct{ n, q int }{{4, 1}, {8, 2}, {12, 3}, {16, 4}, {20, 5}} {
		a := matrix.RandomInts(c.n, c.n, uint64(c.n))
		b := matrix.RandomInts(c.n, c.n, uint64(c.n)+7)
		got, err := CannonParallel(a, b, c.q)
		if err != nil {
			t.Fatalf("n=%d q=%d: %v", c.n, c.q, err)
		}
		if d := matrix.MaxAbsDiff(got, matrix.Mul(a, b)); d != 0 {
			t.Fatalf("n=%d q=%d: differs by %v", c.n, c.q, d)
		}
	}
}

func TestCannonParallelErrors(t *testing.T) {
	if _, err := CannonParallel(matrix.New(4, 5), matrix.New(5, 4), 2); err == nil {
		t.Error("rectangular input accepted")
	}
	if _, err := CannonParallel(matrix.New(4, 4), matrix.New(4, 4), 3); err == nil {
		t.Error("indivisible mesh accepted")
	}
	if _, err := CannonParallel(matrix.New(4, 4), matrix.New(4, 4), 0); err == nil {
		t.Error("zero mesh accepted")
	}
}

func TestQuickCannonParallelAgreesWithRowParallel(t *testing.T) {
	f := func(seed uint64) bool {
		a := matrix.RandomInts(12, 12, seed)
		b := matrix.RandomInts(12, 12, seed+1)
		viaCannon, err := CannonParallel(a, b, 4)
		if err != nil {
			return false
		}
		viaRows, errRows := Mul(a, b, 4, 8)
		return errRows == nil && matrix.MaxAbsDiff(viaCannon, viaRows) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSUMMAMatchesSerial(t *testing.T) {
	for _, c := range []struct{ n, q int }{{4, 1}, {8, 2}, {12, 3}, {16, 4}} {
		a := matrix.RandomInts(c.n, c.n, uint64(c.n)+30)
		b := matrix.RandomInts(c.n, c.n, uint64(c.n)+31)
		got, err := SUMMA(a, b, c.q)
		if err != nil {
			t.Fatalf("n=%d q=%d: %v", c.n, c.q, err)
		}
		if d := matrix.MaxAbsDiff(got, matrix.Mul(a, b)); d != 0 {
			t.Fatalf("n=%d q=%d: differs by %v", c.n, c.q, d)
		}
	}
}

func TestSUMMAErrors(t *testing.T) {
	if _, err := SUMMA(matrix.New(4, 5), matrix.New(5, 4), 2); err == nil {
		t.Error("rectangular input accepted")
	}
	if _, err := SUMMA(matrix.New(4, 4), matrix.New(4, 4), 3); err == nil {
		t.Error("indivisible mesh accepted")
	}
}

// All three real message-passing implementations agree with each other.
func TestQuickThreeWayAgreement(t *testing.T) {
	f := func(seed uint64) bool {
		a := matrix.RandomInts(16, 16, seed)
		b := matrix.RandomInts(16, 16, seed+1)
		viaSUMMA, err1 := SUMMA(a, b, 4)
		viaCannon, err2 := CannonParallel(a, b, 4)
		viaRows, err3 := Mul(a, b, 4, 8)
		return err1 == nil && err2 == nil && err3 == nil &&
			matrix.MaxAbsDiff(viaSUMMA, viaCannon) == 0 &&
			matrix.MaxAbsDiff(viaSUMMA, viaRows) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
