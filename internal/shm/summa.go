package shm

import (
	"fmt"
	"sync"

	"matscale/internal/matrix"
)

// taggedBlock is a block published for use at step K.
type taggedBlock struct {
	K   int
	Blk *matrix.Dense
}

// SUMMA multiplies two n×n matrices with the broadcast-based algorithm
// that descends directly from the paper's simple/Fox family (van de
// Geijn & Watts' SUMMA, the formulation modern libraries standardized
// on): q×q goroutine workers; in step k the owners of the A blocks in
// mesh column k and of the B blocks in mesh row k broadcast them to
// their row and column peers over channels, and every worker
// accumulates one outer-product contribution. Blocks are shared
// read-only after publication, so broadcasting a pointer is safe and
// allocation-free. Owners publish ahead (buffered channels), which
// pipelines the broadcasts exactly like the asynchronous execution of
// Section 4.3. q must divide n.
func SUMMA(a, b *matrix.Dense, q int) (*matrix.Dense, error) {
	if !a.IsSquare() || !b.IsSquare() || a.Rows != b.Rows {
		return nil, fmt.Errorf("shm: SUMMA needs equal square matrices, got %dx%d and %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	n := a.Rows
	if q <= 0 || n%q != 0 {
		return nil, fmt.Errorf("shm: mesh side %d does not divide n = %d", q, n)
	}
	ga := matrix.Partition(a, q, q)
	gb := matrix.Partition(b, q, q)

	// aIn[i][j] delivers A blocks (tagged with their step) to worker
	// (i, j); capacity q lets owners publish ahead without blocking.
	aIn := make([][]chan taggedBlock, q)
	bIn := make([][]chan taggedBlock, q)
	for i := 0; i < q; i++ {
		aIn[i] = make([]chan taggedBlock, q)
		bIn[i] = make([]chan taggedBlock, q)
		for j := 0; j < q; j++ {
			aIn[i][j] = make(chan taggedBlock, q)
			bIn[i][j] = make(chan taggedBlock, q)
		}
	}

	bs := n / q
	c := matrix.New(n, n)
	var wg sync.WaitGroup
	wg.Add(q * q)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			go func(i, j int) {
				defer wg.Done()
				// Publish what this worker owns: its A block is needed
				// by its row at step j, its B block by its column at
				// step i.
				for peer := 0; peer < q; peer++ {
					if peer != j {
						aIn[i][peer] <- taggedBlock{K: j, Blk: ga.Block(i, j)}
					}
					if peer != i {
						bIn[peer][j] <- taggedBlock{K: i, Blk: gb.Block(i, j)}
					}
				}
				// Collect the incoming blocks by step.
				aByStep := make([]*matrix.Dense, q)
				bByStep := make([]*matrix.Dense, q)
				aByStep[j] = ga.Block(i, j)
				bByStep[i] = gb.Block(i, j)
				for r := 0; r < q-1; r++ {
					t := <-aIn[i][j]
					aByStep[t.K] = t.Blk
				}
				for r := 0; r < q-1; r++ {
					t := <-bIn[i][j]
					bByStep[t.K] = t.Blk
				}
				acc := matrix.New(bs, bs)
				for k := 0; k < q; k++ {
					matrix.MulAddInto(acc, aByStep[k], bByStep[k])
				}
				c.SetBlock(i*bs, j*bs, acc)
			}(i, j)
		}
	}
	wg.Wait()
	return c, nil
}
