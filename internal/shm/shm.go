// Package shm provides a real shared-memory parallel matrix multiply
// for the host machine: goroutine workers over row bands with a
// cache-blocked inner kernel. It is the "library user" fast path — the
// paper's algorithms target distributed-memory machines and run on the
// virtual-time simulator, while this package delivers actual wall-clock
// speedup on the machine running the code and anchors the repository's
// real (non-simulated) benchmarks.
package shm

import (
	"fmt"
	"runtime"
	"sync"

	"matscale/internal/matrix"
)

// DefaultTile is the cache-blocking tile size used when 0 is passed.
const DefaultTile = 64

// Mul computes a·b with the given number of worker goroutines
// (workers ≤ 0 uses GOMAXPROCS) and cache tile (tile ≤ 0 uses
// DefaultTile). It returns an error when the inner dimensions do not
// match, in the error style of the rest of the public API. The result
// is identical to matrix.Mul up to floating-point associativity within
// each row, and bit-identical for inputs whose products are exact
// (e.g. small integers).
func Mul(a, b *matrix.Dense, workers, tile int) (*matrix.Dense, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("shm: inner dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if tile <= 0 {
		tile = DefaultTile
	}
	n, m, k := a.Rows, b.Cols, a.Cols
	c := matrix.New(n, m)
	if n == 0 || m == 0 || k == 0 {
		return c, nil
	}
	if workers > n {
		workers = n
	}

	// Static row-band partition: band i covers rows [bounds[i], bounds[i+1]).
	bounds := make([]int, workers+1)
	for i := 0; i <= workers; i++ {
		bounds[i] = i * n / workers
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(r0, r1 int) {
			defer wg.Done()
			mulRows(c, a, b, r0, r1, tile)
		}(bounds[w], bounds[w+1])
	}
	wg.Wait()
	return c, nil
}

// mulRows computes rows [r0, r1) of c = a·b with l-j tiling.
func mulRows(c, a, b *matrix.Dense, r0, r1, tile int) {
	m, k := b.Cols, a.Cols
	for ll := 0; ll < k; ll += tile {
		lEnd := min(ll+tile, k)
		for jj := 0; jj < m; jj += tile {
			jEnd := min(jj+tile, m)
			for i := r0; i < r1; i++ {
				arow := a.Data[i*k : (i+1)*k]
				crow := c.Data[i*m : (i+1)*m]
				for l := ll; l < lEnd; l++ {
					av := arow[l]
					if av == 0 {
						continue
					}
					brow := b.Data[l*m : (l+1)*m]
					for j := jj; j < jEnd; j++ {
						crow[j] += av * brow[j]
					}
				}
			}
		}
	}
}
