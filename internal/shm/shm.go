// Package shm provides a real shared-memory parallel matrix multiply
// for the host machine: goroutine workers over a deterministic
// ownership partition of the output with a cache-blocked inner kernel.
// It is the "library user" fast path — the paper's algorithms target
// distributed-memory machines and run on the virtual-time simulator,
// while this package delivers actual wall-clock speedup on the machine
// running the code and anchors the repository's real (non-simulated)
// benchmarks.
package shm

import (
	"fmt"

	"matscale/internal/matrix"
)

// DefaultTile is the cache-blocking tile size used when 0 is passed.
const DefaultTile = 64

// Mul computes a·b with the given number of worker goroutines
// (workers ≤ 0 uses GOMAXPROCS) and cache tile (tile ≤ 0 uses
// DefaultTile; retained for API compatibility — the shared kernel
// chooses its own panel sizes). It returns an error when the inner
// dimensions do not match, in the error style of the rest of the
// public API. The work is delegated to matrix.MulAddIntoParallel,
// which partitions the output into statically owned slabs (column
// panels or row bands, chosen from the shape alone) and runs the
// serial kernel's own accumulation loop inside each, so the result is
// bit-identical to matrix.Mul at any worker count.
func Mul(a, b *matrix.Dense, workers, tile int) (*matrix.Dense, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("shm: inner dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if tile <= 0 {
		tile = DefaultTile
	}
	_ = tile
	c := matrix.New(a.Rows, b.Cols)
	matrix.MulAddIntoParallel(c, a, b, workers)
	return c, nil
}
