// Package shm provides a real shared-memory parallel matrix multiply
// for the host machine: goroutine workers over row bands with a
// cache-blocked inner kernel. It is the "library user" fast path — the
// paper's algorithms target distributed-memory machines and run on the
// virtual-time simulator, while this package delivers actual wall-clock
// speedup on the machine running the code and anchors the repository's
// real (non-simulated) benchmarks.
package shm

import (
	"fmt"
	"runtime"
	"sync"

	"matscale/internal/matrix"
)

// DefaultTile is the cache-blocking tile size used when 0 is passed.
const DefaultTile = 64

// Mul computes a·b with the given number of worker goroutines
// (workers ≤ 0 uses GOMAXPROCS) and cache tile (tile ≤ 0 uses
// DefaultTile; retained for API compatibility — the shared kernel
// chooses its own panel sizes). It returns an error when the inner
// dimensions do not match, in the error style of the rest of the
// public API. Each row band delegates to matrix.MulAddInto, whose
// per-element accumulation order matches the serial kernel exactly, so
// the result is bit-identical to matrix.Mul at any worker count.
func Mul(a, b *matrix.Dense, workers, tile int) (*matrix.Dense, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("shm: inner dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if tile <= 0 {
		tile = DefaultTile
	}
	n, m, k := a.Rows, b.Cols, a.Cols
	c := matrix.New(n, m)
	if n == 0 || m == 0 || k == 0 {
		return c, nil
	}
	if workers > n {
		workers = n
	}

	// Static row-band partition: band i covers rows [bounds[i], bounds[i+1]).
	bounds := make([]int, workers+1)
	for i := 0; i <= workers; i++ {
		bounds[i] = i * n / workers
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(r0, r1 int) {
			defer wg.Done()
			mulRows(c, a, b, r0, r1)
		}(bounds[w], bounds[w+1])
	}
	wg.Wait()
	return c, nil
}

// mulRows computes rows [r0, r1) of c = a·b by viewing the band as a
// zero-copy sub-matrix and delegating to the shared tiled kernel in
// internal/matrix. Row bands partition c and a by whole rows, so the
// views alias disjoint memory and each band's per-element accumulation
// order is exactly the serial kernel's: the parallel product is
// bit-identical to matrix.Mul.
func mulRows(c, a, b *matrix.Dense, r0, r1 int) {
	if r0 >= r1 {
		return
	}
	m, k := b.Cols, a.Cols
	cBand := &matrix.Dense{Rows: r1 - r0, Cols: m, Data: c.Data[r0*m : r1*m]}
	aBand := &matrix.Dense{Rows: r1 - r0, Cols: k, Data: a.Data[r0*k : r1*k]}
	matrix.MulAddInto(cBand, aBand, b)
}
