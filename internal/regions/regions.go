// Package regions reproduces the Section 6 analysis: for a given
// machine (ts, tw), which of the four algorithms — Berntsen (b),
// Cannon (c), GK (a), DNS (d) — has the smallest total overhead at each
// point of the (p, n) plane, honoring each algorithm's range of
// applicability (Table 1). Figures 1, 2 and 3 of the paper are maps of
// these regions for three machines; Compute regenerates them and
// Render draws them the way the paper letters them, with x marking the
// infeasible region p > n³.
package regions

import (
	"fmt"
	"math"
	"strings"

	"matscale/internal/model"
)

// Infeasible marks grid points where p > n³ and no algorithm applies.
const Infeasible = 'x'

// Serial marks p = 1, where every formulation degenerates to the
// serial algorithm and the overhead comparison is meaningless.
const Serial = 's'

// Best returns the paper's letter for the algorithm with the smallest
// Table 1 overhead at (n, p) among those applicable there.
func Best(pr model.Params, n, p float64) byte {
	if p <= 1 {
		return Serial
	}
	best := byte(Infeasible)
	bestTo := math.Inf(1)
	for _, s := range model.Specs() {
		if !s.Applicable(n, p) {
			continue
		}
		if to := s.To(pr, n, p); to < bestTo {
			bestTo = to
			best = s.Letter
		}
	}
	return best
}

// Map is a computed region map over a log₂ grid. Cell (i, j) covers
// n = 2^NExp[i], p = 2^PExp[j].
type Map struct {
	Params model.Params
	PExp   []int
	NExp   []int
	Cells  [][]byte // Cells[i][j] for (NExp[i], PExp[j])
}

// Compute evaluates the best algorithm over p = 2^0..2^pMaxExp and
// n = 2^0..2^nMaxExp.
func Compute(pr model.Params, pMaxExp, nMaxExp int) *Map {
	m := &Map{Params: pr}
	for e := 0; e <= pMaxExp; e++ {
		m.PExp = append(m.PExp, e)
	}
	for e := 0; e <= nMaxExp; e++ {
		m.NExp = append(m.NExp, e)
	}
	m.Cells = make([][]byte, len(m.NExp))
	for i, ne := range m.NExp {
		row := make([]byte, len(m.PExp))
		for j, pe := range m.PExp {
			row[j] = Best(pr, math.Pow(2, float64(ne)), math.Pow(2, float64(pe)))
		}
		m.Cells[i] = row
	}
	return m
}

// At returns the letter for the cell with n = 2^nExp, p = 2^pExp.
func (m *Map) At(nExp, pExp int) byte {
	for i, ne := range m.NExp {
		if ne != nExp {
			continue
		}
		for j, pe := range m.PExp {
			if pe == pExp {
				return m.Cells[i][j]
			}
		}
	}
	panic(fmt.Sprintf("regions: cell (n=2^%d, p=2^%d) outside map", nExp, pExp))
}

// Fraction returns the share of feasible parallel cells labeled with
// letter (infeasible and p=1 cells are excluded from the denominator).
func (m *Map) Fraction(letter byte) float64 {
	var total, hit int
	for _, row := range m.Cells {
		for _, c := range row {
			if c == Infeasible || c == Serial {
				continue
			}
			total++
			if c == letter {
				hit++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// Render draws the map with n increasing upward and p rightward, in
// the paper's lettering.
func (m *Map) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Regions of superiority (ts=%g, tw=%g): a=GK b=Berntsen c=Cannon d=DNS x=infeasible\n", m.Params.Ts, m.Params.Tw)
	for i := len(m.NExp) - 1; i >= 0; i-- {
		fmt.Fprintf(&sb, "n=2^%-3d |", m.NExp[i])
		for _, c := range m.Cells[i] {
			sb.WriteByte(' ')
			sb.WriteByte(c)
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("        +")
	for range m.PExp {
		sb.WriteString("--")
	}
	sb.WriteByte('\n')
	sb.WriteString("         ")
	for _, pe := range m.PExp {
		if pe%5 == 0 {
			fmt.Fprintf(&sb, "%-10s", fmt.Sprintf("p=2^%d", pe))
		}
	}
	sb.WriteByte('\n')
	return sb.String()
}

// CSV emits the map as comma-separated cells with log₂p column headers
// and log₂n row labels, n increasing downward.
func (m *Map) CSV() string {
	var sb strings.Builder
	sb.WriteString("log2_n\\log2_p")
	for _, pe := range m.PExp {
		fmt.Fprintf(&sb, ",%d", pe)
	}
	sb.WriteByte('\n')
	for i, ne := range m.NExp {
		fmt.Fprintf(&sb, "%d", ne)
		for _, c := range m.Cells[i] {
			fmt.Fprintf(&sb, ",%c", c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// NEqualToGKCannon is the paper's Eq. (15): the matrix size at which
// the GK and Cannon overheads coincide for a given p,
//
//	n = sqrt( ((5/3)·p·log p − 2·p^(3/2))·ts / ((2·√p − (5/3)·p^(1/3)·log p)·tw) )
//
// Returns ok=false when the expression has no real solution (the two
// overheads do not cross at that p).
func NEqualToGKCannon(pr model.Params, p float64) (float64, bool) {
	l := math.Log2(p)
	num := (5.0/3.0*p*l - 2*math.Pow(p, 1.5)) * pr.Ts
	den := (2*math.Sqrt(p) - 5.0/3.0*math.Cbrt(p)*l) * pr.Tw
	if den == 0 {
		return 0, false
	}
	v := num / den
	if v < 0 {
		return 0, false
	}
	return math.Sqrt(v), true
}

// GKBeatsCannonAlways returns the processor count beyond which the GK
// algorithm's tw overhead term is smaller than Cannon's for every n —
// the "cut-off point" of Section 6, p ≈ 130 million: it solves
// (5/3)·p^(1/3)·log p = 2·√p.
func GKBeatsCannonAlways() float64 {
	f := func(p float64) float64 { return 5.0/3.0*math.Cbrt(p)*math.Log2(p) - 2*math.Sqrt(p) }
	// f > 0 for moderate p (GK worse), f < 0 beyond the cutoff.
	lo, hi := 1e4, 1e12
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}

// PairBoundary is one sampled equal-overhead curve between two of the
// paper's algorithms — the plain "X vs Y" lines of Figures 1–3.
type PairBoundary struct {
	X, Y string // algorithm names; X has the smaller overhead below the curve
	// N[i] is the crossing matrix size at P[i]; NaN where the two
	// overheads do not cross.
	P []float64
	N []float64
}

// PairwiseBoundaries samples the equal-overhead curves of every pair
// of Table 1 algorithms over p = 2^1..2^pMaxExp. For each pair (X, Y)
// listed in Table 1 order, X's overhead is smaller for n below the
// returned curve.
func PairwiseBoundaries(pr model.Params, pMaxExp int) []PairBoundary {
	specs := model.Specs()
	var out []PairBoundary
	for i := 0; i < len(specs); i++ {
		for j := i + 1; j < len(specs); j++ {
			b := PairBoundary{X: specs[i].Name, Y: specs[j].Name}
			// Fix the orientation ("X better below the curve") from the
			// overheads at a small problem on few processors.
			toX, toY := specs[i].To, specs[j].To
			if toX(pr, 2, 4) > toY(pr, 2, 4) {
				toX, toY = toY, toX
				b.X, b.Y = specs[j].Name, specs[i].Name
			}
			for e := 1; e <= pMaxExp; e++ {
				p := math.Pow(2, float64(e))
				b.P = append(b.P, p)
				n, ok := model.NEqualTo(pr, toX, toY, p, 1e15)
				if !ok {
					n = math.NaN()
				}
				b.N = append(b.N, n)
			}
			out = append(out, b)
		}
	}
	return out
}

// DNSUsefulFrom returns the smallest power-of-two processor count at
// which the DNS algorithm beats the GK algorithm for at least one
// matrix size within DNS's applicability range n² ≤ p ≤ n³, using the
// given DNS overhead function (model.DNSTo for Table 1's form, or
// model.DNSToExact for the unsimplified Eq. (6) overhead). Section 6
// claims that with ts = 10·tw DNS is worse than GK "for up to almost
// 10,000 processors for any problem size"; both overhead forms confirm
// the claim (the crossing is in fact far later).
func DNSUsefulFrom(pr model.Params, dnsTo func(model.Params, float64, float64) float64, pMaxExp int) (float64, bool) {
	for e := 1; e <= pMaxExp; e++ {
		p := math.Pow(2, float64(e))
		// Scan n over the DNS range [p^(1/3), √p].
		nLo, nHi := math.Cbrt(p), math.Sqrt(p)
		for i := 0; i <= 64; i++ {
			n := nLo * math.Pow(nHi/nLo, float64(i)/64)
			if dnsTo(pr, n, p) < model.GKTo(pr, n, p) {
				return p, true
			}
		}
	}
	return 0, false
}
