package regions

import (
	"math"
	"strings"
	"testing"

	"matscale/internal/model"
)

var (
	ncube = model.Params{Ts: 150, Tw: 3} // Figure 1
	fast  = model.Params{Ts: 10, Tw: 3}  // Figure 2
	simd  = model.Params{Ts: 0.5, Tw: 3} // Figure 3
)

func TestBestRespectsApplicability(t *testing.T) {
	// p > n³: nothing applies.
	if got := Best(ncube, 4, 128); got != Infeasible {
		t.Fatalf("p>n³: Best = %c", got)
	}
	// p = 1..n^(3/2): Berntsen is applicable and has the least overhead
	// for the nCUBE-like machine (Figure 1's b region).
	if got := Best(ncube, 1<<10, 1<<12); got != 'b' {
		t.Fatalf("Figure 1 b-region: Best = %c", got)
	}
}

func TestFigure1Regions(t *testing.T) {
	// Figure 1 (ts=150): the GK algorithm is the best choice for all
	// n^(3/2) < p ≤ n³ (DNS never wins), Berntsen below n^(3/2).
	m := Compute(ncube, 30, 16)

	// Spot checks along the paper's axes:
	// p between n^(3/2) and n²: GK beats Cannon for this machine.
	if got := m.At(10, 16); got != 'a' { // n=2^10, p=2^16: n^1.5=2^15 < p < n²=2^20
		t.Fatalf("Figure 1 (n=2^10, p=2^16) = %c, want a", got)
	}
	// p between n² and n³: only GK and DNS apply; GK wins for ts=150.
	if got := m.At(8, 20); got != 'a' { // n=2^8: n²=2^16, n³=2^24
		t.Fatalf("Figure 1 (n=2^8, p=2^20) = %c, want a", got)
	}
	// p < n^(3/2): Berntsen.
	if got := m.At(12, 10); got != 'b' {
		t.Fatalf("Figure 1 (n=2^12, p=2^10) = %c, want b", got)
	}
	// Infeasible corner.
	if got := m.At(2, 20); got != Infeasible {
		t.Fatalf("Figure 1 (n=4, p=2^20) = %c, want x", got)
	}
	// DNS should win nowhere on this machine (Section 6: the high ts
	// pushes any DNS advantage far beyond the practical range).
	if f := m.Fraction('d'); f != 0 {
		t.Fatalf("Figure 1: DNS region fraction = %v, want 0", f)
	}
	// Cannon wins nowhere for p ≥ 16 (it picks up a sliver at p ∈ {4,8}
	// where 2√p < 3·p^(1/3) makes its Table 1 constants smaller than
	// Berntsen's — a small-p artifact the paper's figure resolution
	// does not show; see EXPERIMENTS.md).
	for i, row := range m.Cells {
		for j, c := range row {
			if c == 'c' && m.PExp[j] >= 4 {
				t.Fatalf("Figure 1: Cannon wins at n=2^%d, p=2^%d", m.NExp[i], m.PExp[j])
			}
		}
	}
	// Berntsen and GK split essentially the whole feasible plane (the
	// remainder is the p ≤ 8 sliver above).
	if f := m.Fraction('b') + m.Fraction('a'); f < 0.9 {
		t.Fatalf("Figure 1: a+b fractions = %v, want ≈1", f)
	}
}

func TestFigure2AllFourRegionsExist(t *testing.T) {
	// Figure 2 (ts=10): "each of the four algorithms performs better
	// than the rest in some region and all the four regions contain
	// practical values of p and n".
	m := Compute(fast, 30, 16)
	for _, letter := range []byte{'a', 'b', 'c', 'd'} {
		if m.Fraction(letter) == 0 {
			t.Errorf("Figure 2: algorithm %c has no region", letter)
		}
	}
}

func TestFigure3SIMDRegions(t *testing.T) {
	// Figure 3 (ts=0.5): DNS for n² ≤ p ≤ n³, Cannon for
	// n^(3/2) ≤ p ≤ n², Berntsen for p < n^(3/2); GK inferior in the
	// practical range (it only wins beyond p ≈ 1.3·10^8 — footnote 4).
	m := Compute(simd, 26, 16)
	if got := m.At(8, 20); got != 'd' { // n² = 2^16 ≤ p = 2^20 ≤ n³ = 2^24
		t.Fatalf("Figure 3 (n=2^8, p=2^20) = %c, want d", got)
	}
	if got := m.At(10, 17); got != 'c' { // n^1.5 = 2^15 ≤ p ≤ n² = 2^20
		t.Fatalf("Figure 3 (n=2^10, p=2^17) = %c, want c", got)
	}
	if got := m.At(12, 10); got != 'b' {
		t.Fatalf("Figure 3 (n=2^12, p=2^10) = %c, want b", got)
	}
	// GK only beyond ~1.3e8 processors in the interior: nothing in
	// 4 ≤ p < 2^26 off the p = n³ and p = n² lines. (On that line DNS's overhead
	// exceeds GK's by exactly 2(ts+tw)n³ for every machine, and at
	// p ≤ 2 the Table 1 constants give GK a degenerate sliver; the
	// paper's figure resolves neither.)
	for i, row := range m.Cells {
		for j, c := range row {
			if c == 'a' && m.PExp[j] >= 2 && m.PExp[j] < 26 && m.PExp[j] != 3*m.NExp[i] && m.PExp[j] != 2*m.NExp[i] {
				t.Fatalf("Figure 3: GK wins at n=2^%d, p=2^%d < 1.3e8", m.NExp[i], m.PExp[j])
			}
		}
	}
}

func TestEq15MatchesBisection(t *testing.T) {
	// The closed-form Eq. (15) must agree with the generic bisection
	// crossover solver wherever both are defined.
	pr := fast
	for _, p := range []float64{1 << 6, 1 << 9, 1 << 12} {
		closed, ok1 := NEqualToGKCannon(pr, p)
		bisect, ok2 := model.NEqualTo(pr, model.GKTo, model.CannonTo, p, 1e12)
		if !ok1 || !ok2 {
			t.Fatalf("p=%v: closed ok=%v bisect ok=%v", p, ok1, ok2)
		}
		if math.Abs(closed-bisect) > 1e-6*closed {
			t.Fatalf("p=%v: Eq.(15) = %v, bisection = %v", p, closed, bisect)
		}
		// On either side of the threshold the winner flips.
		if model.GKTo(pr, closed*0.9, p) >= model.CannonTo(pr, closed*0.9, p) {
			t.Fatalf("p=%v: GK should win below n_EqualTo", p)
		}
		if model.GKTo(pr, closed*1.1, p) <= model.CannonTo(pr, closed*1.1, p) {
			t.Fatalf("p=%v: Cannon should win above n_EqualTo", p)
		}
	}
}

func TestGKBeatsCannonAlwaysNear130Million(t *testing.T) {
	// Section 6: "the tw term of the GK algorithm becomes smaller than
	// that of Cannon's algorithm for p > 130 million".
	p := GKBeatsCannonAlways()
	if p < 1.0e8 || p > 1.7e8 {
		t.Fatalf("GK-beats-Cannon cutoff = %.3g, want ≈1.3e8", p)
	}
	// Verify the defining property.
	above, below := p*2, p/2
	twGK := func(q float64) float64 { return 5.0 / 3.0 * math.Cbrt(q) * math.Log2(q) }
	twCannon := func(q float64) float64 { return 2 * math.Sqrt(q) }
	if twGK(above) >= twCannon(above) {
		t.Fatal("GK tw term should win above the cutoff")
	}
	if twGK(below) <= twCannon(below) {
		t.Fatal("Cannon tw term should win below the cutoff")
	}
}

func TestDNSNeverUsefulOnNCube(t *testing.T) {
	// Figure 1's machine: under Table 1's overhead forms, DNS never
	// beats GK anywhere within its applicability range at any practical
	// p (the paper's footnote 3 places the crossing around 2.6·10^18;
	// with Table 1's simplified DNS overhead it is even later).
	if p, ok := DNSUsefulFrom(ncube, model.DNSTo, 50); ok {
		t.Fatalf("DNS useful at p=%v under Table 1 overheads", p)
	}
}

func TestDNSWorseThanGKUpTo10000ForTs10Tw(t *testing.T) {
	// Section 10: "even if ts is 10 times tw, the DNS algorithm will
	// perform worse than the GK algorithm for up to almost 10,000
	// processors for any problem size". Verified as stated (the
	// crossing is in fact far beyond 10^4 under either overhead form).
	pr := model.Params{Ts: 30, Tw: 3}
	if p, ok := DNSUsefulFrom(pr, model.DNSTo, 13); ok {
		t.Fatalf("Table 1 overheads: DNS beats GK already at p=%v ≤ 10^4", p)
	}
	// The crossing under Table 1's forms is in fact around p ≈ 2^34.
	p, ok := DNSUsefulFrom(pr, model.DNSTo, 40)
	if !ok {
		t.Fatal("no Table 1 crossing up to 2^40")
	}
	if p < 1<<30 || p > 1<<38 {
		t.Fatalf("Table 1 DNS/GK crossing at p=%v, want ≈2^34", p)
	}
	// The unsimplified Eq. (6) overhead flips the comparison much
	// earlier — Table 1's r = p simplification is load-bearing for the
	// paper's Section 6 conclusions; see EXPERIMENTS.md.
	if pe, okE := DNSUsefulFrom(pr, model.DNSToExact, 13); !okE || pe > 1<<10 {
		t.Fatalf("exact-overhead crossing = %v ok=%v, expected small", pe, okE)
	}
}

func TestRenderContainsLegendAndAxes(t *testing.T) {
	m := Compute(ncube, 8, 6)
	s := m.Render()
	for _, frag := range []string{"a=GK", "b=Berntsen", "n=2^6", "p=2^5", "ts=150"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Render missing %q:\n%s", frag, s)
		}
	}
}

func TestAtOutsideMapPanics(t *testing.T) {
	m := Compute(ncube, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.At(99, 0)
}

func TestMapCSV(t *testing.T) {
	m := Compute(ncube, 4, 3)
	csv := m.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 5 { // header + 4 n-rows (exponents 0..3)
		t.Fatalf("CSV has %d lines:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "log2_n\\log2_p,0,1,2,3,4") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,s") { // p=1 column is serial
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestPairwiseBoundariesStructure(t *testing.T) {
	bs := PairwiseBoundaries(fast, 20)
	if len(bs) != 6 { // C(4,2) pairs
		t.Fatalf("got %d boundaries, want 6", len(bs))
	}
	for _, b := range bs {
		if len(b.P) != 20 || len(b.N) != 20 {
			t.Fatalf("%s vs %s: %d/%d samples", b.X, b.Y, len(b.P), len(b.N))
		}
		if b.X == b.Y {
			t.Fatalf("degenerate pair %s", b.X)
		}
	}
}

func TestPairwiseBoundaryConsistentWithBest(t *testing.T) {
	// Wherever a GK/Cannon crossing exists, points just below it must
	// favor the below-algorithm and just above the other — consistent
	// with the Eq. (15) closed form.
	bs := PairwiseBoundaries(fast, 16)
	for _, b := range bs {
		if !(b.X == "GK" && b.Y == "Cannon" || b.X == "Cannon" && b.Y == "GK") {
			continue
		}
		for i, p := range b.P {
			n := b.N[i]
			if math.IsNaN(n) || p < 16 {
				continue
			}
			closed, ok := NEqualToGKCannon(fast, p)
			if !ok {
				continue
			}
			if math.Abs(n-closed) > 1e-6*closed {
				t.Fatalf("p=%v: boundary %v disagrees with Eq.(15) %v", p, n, closed)
			}
		}
	}
}
