package machine

import "matscale/internal/topology"

// Presets for the machines the paper analyzes. The figures of Section 6
// use three (ts, tw) pairs; Section 9 normalizes CM-5 measurements to
// flop units.

// CM5 timing constants measured by the paper (Section 9): 1.53 µs per
// multiply-add, 380 µs message startup, 1.8 µs per 4-byte word.
const (
	CM5FlopMicros    = 1.53
	CM5StartupMicros = 380.0
	CM5PerWordMicros = 1.8
)

// NCube2 returns a hypercube with tw = 3 and ts = 150, the
// nCUBE-2-like machine of Figure 1.
func NCube2(p int) *Machine {
	return &Machine{Topo: topology.NewHypercube(p), Ts: 150, Tw: 3, Routing: StoreAndForward}
}

// FutureHypercube returns a hypercube with tw = 3 and ts = 10, the
// faster-CPU machine of Figure 2.
func FutureHypercube(p int) *Machine {
	return &Machine{Topo: topology.NewHypercube(p), Ts: 10, Tw: 3, Routing: StoreAndForward}
}

// SIMD returns a hypercube with tw = 3 and ts = 0.5, the CM-2-like
// machine of Figure 3.
func SIMD(p int) *Machine {
	return &Machine{Topo: topology.NewHypercube(p), Ts: 0.5, Tw: 3, Routing: StoreAndForward}
}

// CM5 returns a fully connected machine with the paper's measured CM-5
// constants normalized to unit flop time (Section 9): ts ≈ 248.4,
// tw ≈ 1.176.
func CM5(p int) *Machine {
	return &Machine{
		Topo:    topology.NewFullyConnected(p),
		Ts:      CM5StartupMicros / CM5FlopMicros,
		Tw:      CM5PerWordMicros / CM5FlopMicros,
		Routing: CutThrough,
	}
}

// Hypercube returns a store-and-forward hypercube with arbitrary cost
// parameters.
func Hypercube(p int, ts, tw float64) *Machine {
	return &Machine{Topo: topology.NewHypercube(p), Ts: ts, Tw: tw, Routing: StoreAndForward}
}

// Mesh returns a √p × √p wraparound mesh (torus) with store-and-forward
// routing — the architecture on which Section 4.3 derives Fox's
// algorithm's mesh running time and on which Cannon's algorithm
// performs identically to the hypercube (Section 4.4's observation).
func Mesh(p int, ts, tw float64) *Machine {
	return &Machine{Topo: topology.NewSquareTorus(p), Ts: ts, Tw: tw, Routing: StoreAndForward}
}
