package machine

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMsgTimeAdjacent(t *testing.T) {
	m := Hypercube(8, 150, 3)
	// Neighbors 0 and 1: one hop, ts + tw·m.
	if got, want := m.MsgTime(10, 0, 1), 150+3*10.0; got != want {
		t.Fatalf("MsgTime = %v, want %v", got, want)
	}
}

func TestMsgTimeSelfIsFree(t *testing.T) {
	m := Hypercube(8, 150, 3)
	if m.MsgTime(1000, 3, 3) != 0 {
		t.Fatal("self message should cost 0")
	}
}

func TestStoreAndForwardChargesPerHop(t *testing.T) {
	m := Hypercube(8, 10, 2)
	// 0 -> 7 is 3 hops on a 3-cube.
	want := 3 * (10 + 2*5.0)
	if got := m.MsgTime(5, 0, 7); got != want {
		t.Fatalf("SF MsgTime = %v, want %v", got, want)
	}
}

func TestCutThroughDistanceIndependent(t *testing.T) {
	m := Hypercube(8, 10, 2)
	m.Routing = CutThrough
	if got, want := m.MsgTime(5, 0, 7), 10+2*5.0; got != want {
		t.Fatalf("CT MsgTime = %v, want %v", got, want)
	}
}

func TestMsgTimeHopsZero(t *testing.T) {
	m := Hypercube(4, 1, 1)
	if m.MsgTimeHops(100, 0) != 0 {
		t.Fatal("zero hops should cost 0")
	}
}

func TestValidate(t *testing.T) {
	if err := (&Machine{}).Validate(); err == nil || !strings.Contains(err.Error(), "no topology") {
		t.Fatalf("Validate of empty machine = %v", err)
	}
	m := Hypercube(4, 1, 1)
	m.Tw = -1
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("Validate negative tw = %v", err)
	}
	if err := Hypercube(4, 1, 1).Validate(); err != nil {
		t.Fatalf("Validate of valid machine = %v", err)
	}
}

func TestPresets(t *testing.T) {
	cases := []struct {
		m      *Machine
		ts, tw float64
	}{
		{NCube2(16), 150, 3},
		{FutureHypercube(16), 10, 3},
		{SIMD(16), 0.5, 3},
	}
	for _, c := range cases {
		if c.m.Ts != c.ts || c.m.Tw != c.tw {
			t.Errorf("%s: ts=%v tw=%v, want %v/%v", c.m, c.m.Ts, c.m.Tw, c.ts, c.tw)
		}
		if c.m.P() != 16 {
			t.Errorf("%s: P=%d, want 16", c.m, c.m.P())
		}
		if err := c.m.Validate(); err != nil {
			t.Errorf("%s: %v", c.m, err)
		}
	}
}

func TestCM5Preset(t *testing.T) {
	m := CM5(512)
	if m.P() != 512 {
		t.Fatalf("P = %d", m.P())
	}
	// ts = 380/1.53 ≈ 248.37, tw = 1.8/1.53 ≈ 1.176.
	if m.Ts < 248 || m.Ts > 249 {
		t.Fatalf("CM5 ts = %v", m.Ts)
	}
	if m.Tw < 1.17 || m.Tw > 1.18 {
		t.Fatalf("CM5 tw = %v", m.Tw)
	}
	// Fully connected: every transfer is one hop.
	if m.MsgTime(7, 0, 511) != m.MsgTime(7, 3, 4) {
		t.Fatal("CM5 transfers should be distance independent")
	}
}

func TestStringForms(t *testing.T) {
	m := NCube2(8)
	s := m.String()
	for _, frag := range []string{"hypercube", "ts=150", "tw=3", "store-and-forward", "one-port"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	m.AllPort = true
	if !strings.Contains(m.String(), "all-port") {
		t.Errorf("all-port missing from %q", m.String())
	}
	if Routing(9).String() != "Routing(9)" {
		t.Errorf("unknown routing String = %q", Routing(9).String())
	}
	if CutThrough.String() != "cut-through" {
		t.Errorf("CutThrough String = %q", CutThrough.String())
	}
}

// Property: message time is monotone in word count and in hop count,
// and symmetric between endpoints.
func TestQuickMsgTimeMonotoneSymmetric(t *testing.T) {
	m := Hypercube(64, 7, 2)
	f := func(a, b uint8, w uint16) bool {
		x, y := int(a)%64, int(b)%64
		w1 := int(w % 1000)
		if m.MsgTime(w1, x, y) != m.MsgTime(w1, y, x) {
			return false
		}
		return m.MsgTime(w1, x, y) <= m.MsgTime(w1+1, x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cut-through never charges more than store-and-forward.
func TestQuickCutThroughCheaper(t *testing.T) {
	sf := Hypercube(64, 5, 3)
	ct := Hypercube(64, 5, 3)
	ct.Routing = CutThrough
	f := func(a, b uint8, w uint16) bool {
		x, y := int(a)%64, int(b)%64
		words := int(w % 500)
		return ct.MsgTime(words, x, y) <= sf.MsgTime(words, x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCutThroughPerHopLatency(t *testing.T) {
	m := Hypercube(8, 10, 2)
	m.Routing = CutThrough
	m.Th = 4
	// 0 -> 7 is 3 hops: ts + th·3 + tw·5 = 10 + 12 + 10 = 32.
	if got := m.MsgTime(5, 0, 7); got != 32 {
		t.Fatalf("CT+Th MsgTime = %v, want 32", got)
	}
	// Th is ignored under store-and-forward.
	m.Routing = StoreAndForward
	if got := m.MsgTime(5, 0, 7); got != 3*(10+2*5.0) {
		t.Fatalf("SF MsgTime = %v", got)
	}
	m.Th = -1
	m.Routing = CutThrough
	if err := m.Validate(); err == nil {
		t.Fatal("negative Th accepted")
	}
}

func TestWithCostDerivesCopy(t *testing.T) {
	m := Hypercube(8, 150, 3)
	m2 := m.WithCost(10, 1)
	if m2 == m {
		t.Fatal("WithCost returned the receiver, want a copy")
	}
	if m2.Ts != 10 || m2.Tw != 1 {
		t.Fatalf("WithCost copy has ts=%v tw=%v, want 10, 1", m2.Ts, m2.Tw)
	}
	if m.Ts != 150 || m.Tw != 3 {
		t.Fatalf("WithCost mutated the receiver: ts=%v tw=%v", m.Ts, m.Tw)
	}
	if m2.Topo != m.Topo || m2.Routing != m.Routing {
		t.Fatal("WithCost must preserve topology and routing")
	}
}

func TestWithAllPortDerivesCopy(t *testing.T) {
	m := Hypercube(8, 150, 3)
	ap := m.WithAllPort(true)
	if ap == m {
		t.Fatal("WithAllPort returned the receiver, want a copy")
	}
	if !ap.AllPort {
		t.Fatal("WithAllPort(true) copy is not all-port")
	}
	if m.AllPort {
		t.Fatal("WithAllPort mutated the receiver")
	}
	if off := ap.WithAllPort(false); off.AllPort || !ap.AllPort {
		t.Fatal("WithAllPort(false) must derive a one-port copy without mutating")
	}
	if ap.Ts != m.Ts || ap.Tw != m.Tw || ap.Topo != m.Topo {
		t.Fatal("WithAllPort must preserve cost constants and topology")
	}
}
