// Package machine defines the communication cost model of the paper
// (Section 2): transferring a message of m words between adjacent
// processors takes ts + tw·m time, where ts is the message startup time
// and tw the per-word transfer time, both normalized so that one basic
// arithmetic operation (a floating-point multiply plus add) takes unit
// time.
//
// A Machine couples a Topology with the cost parameters, a routing
// discipline (store-and-forward charges every hop; cut-through charges
// a single ts + tw·m regardless of distance, the regime the paper
// assumes for Cannon's alignment step), and the one-port/all-port
// distinction of Section 7.
package machine

import (
	"fmt"

	"matscale/internal/faults"
	"matscale/internal/topology"
)

// Routing selects how multi-hop messages are charged.
type Routing int

const (
	// StoreAndForward charges (ts + tw·m) per hop — the discipline under
	// which the paper derives the DNS and GK stage costs (messages are
	// relayed in log p^(1/3) steps).
	StoreAndForward Routing = iota
	// CutThrough charges ts + tw·m independent of distance — the regime
	// the paper assumes when it ignores Cannon's alignment cost and
	// when it models the CM-5 as fully connected.
	CutThrough
)

func (r Routing) String() string {
	switch r {
	case StoreAndForward:
		return "store-and-forward"
	case CutThrough:
		return "cut-through"
	default:
		return fmt.Sprintf("Routing(%d)", int(r))
	}
}

// Backend selects the simulation engine that executes rank programs on
// a machine: the goroutine backend (one OS-scheduled goroutine per
// rank, blocking mailboxes) or the discrete-event backend of
// internal/des (a central virtual-time event loop resuming rank
// coroutines one at a time). The two produce byte-identical results
// for a fixed configuration — the cost model is schedule-independent —
// so the choice is purely about host performance and scale; see
// docs/BACKENDS.md. The selection rides on the Machine for the same
// reason the observability flags do: it is the one context every
// algorithm entry point receives, and it changes no measured quantity.
type Backend int

const (
	// BackendGoroutines is the default concurrent engine.
	BackendGoroutines Backend = iota
	// BackendEvents is the sequential discrete-event engine, which
	// scales to rank counts (p ≈ 2^20) far beyond the goroutine
	// backend's reach.
	BackendEvents
	// backendCount bounds the valid Backend values for Validate.
	backendCount
)

func (b Backend) String() string {
	switch b {
	case BackendGoroutines:
		return "goroutines"
	case BackendEvents:
		return "events"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// Known reports whether b is one of the defined Backend values.
func (b Backend) Known() bool {
	return b >= 0 && b < backendCount
}

// ParseBackend parses the textual backend names the CLI accepts:
// "goroutines" and "events".
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "goroutines":
		return BackendGoroutines, nil
	case "events":
		return BackendEvents, nil
	}
	return 0, fmt.Errorf("machine: unknown backend %q (have: goroutines, events)", s)
}

// Machine is a parallel computer: a topology plus the normalized cost
// parameters of the paper.
type Machine struct {
	Topo topology.Topology
	Ts   float64 // message startup time, in flop units
	Tw   float64 // per-word transfer time, in flop units
	// Th is the per-hop switching latency under cut-through routing:
	// a transfer of m words over h hops costs ts + th·h + tw·m. The
	// paper's analysis takes th ≈ 0 (it "can be ignored with respect
	// to" the startup time on machines of its era); the parameter is
	// exposed for studying routers where it is not negligible.
	Th      float64
	Routing Routing
	// AllPort permits simultaneous communication on all channels of a
	// processor (Section 7). One-port machines serialize transfers.
	AllPort bool
	// TrackContention makes the simulator serialize transfers that
	// share a physical link (e-cube routes on hypercubes, dimension-
	// order routes on meshes). The paper's model assumes contention-
	// free communication; the algorithms it analyzes route on disjoint
	// links by construction, and enabling this flag verifies that: their
	// measured times do not change. Programs that do collide incur
	// waiting time, reported in simulator.Result.ContentionWait.
	TrackContention bool
	// CollectMetrics asks the simulator to build the per-rank/per-link
	// breakdown of the run (simulator.Result.Metrics). Observability
	// flags ride on the Machine because it is the one context every
	// algorithm entry point receives; collecting charges zero virtual
	// time and changes no measured quantity.
	CollectMetrics bool
	// CollectTrace asks the simulator to record the per-processor event
	// history (simulator.Result.Trace) for timeline rendering and
	// Chrome-trace export. Zero virtual cost.
	CollectTrace bool
	// Backend selects the simulation engine that executes rank programs
	// on this machine (goroutines by default). See the Backend type.
	Backend Backend
	// Faults, when non-nil, perturbs the machine deterministically:
	// per-rank compute slowdowns, per-link ts/tw perturbation, and
	// probabilistic message loss repaired by timeout + bounded retry.
	// All draws derive from the config's seed, so a fixed (machine,
	// faults, program) triple reproduces byte-identical runs. See
	// internal/faults and docs/FAULTS.md.
	Faults *faults.Config
	// Checkpoint, when non-nil, asks a checkpoint-capable backend to
	// suspend and/or resume the run at a consistent cut. It rides on
	// the Machine for the same reason the observability flags do: the
	// Machine is the one context every entry point receives, and
	// checkpointing changes no measured quantity — a resumed run is
	// byte-identical to an uninterrupted one. Backends without the
	// capability reject a non-nil Checkpoint with a typed error
	// (simulator.UnsupportedCapabilityError) instead of ignoring it.
	Checkpoint *CheckpointControl
}

// CheckpointControl instructs a checkpoint-capable backend when to cut
// a run and where to deliver or pick up the snapshot. The encoded
// snapshot format is owned by internal/checkpoint; this struct is
// plain data so the machine package stays dependency-free.
type CheckpointControl struct {
	// StopAfter, when nonzero, suspends the run at the consistent cut
	// reached after exactly StopAfter event-loop dispatches. The run
	// then returns a simulator.SuspendedError carrying the snapshot.
	// A run that completes in fewer dispatches finishes normally.
	StopAfter uint64
	// Resume, when non-nil, holds an encoded snapshot a previous run
	// suspended with; the backend restores it and verifies the restored
	// state byte-for-byte against the snapshot before continuing.
	Resume []byte
	// Sink, when non-nil, receives the encoded snapshot at suspension,
	// before the run returns. A sink error fails the run.
	Sink func(snapshot []byte, events uint64) error
}

// WithFaults returns a copy of m running under the fault scenario f
// (nil clears it). The receiver is not mutated, mirroring how the
// observability flags are layered on by the Run API.
func (m *Machine) WithFaults(f *faults.Config) *Machine {
	mm := *m
	mm.Faults = f
	return &mm
}

// WithBackend returns a copy of m whose rank programs execute on the
// given simulation backend. The receiver is not mutated; results are
// byte-identical across backends, so the copy changes host behavior
// only.
func (m *Machine) WithBackend(b Backend) *Machine {
	mm := *m
	mm.Backend = b
	return &mm
}

// WithCost returns a copy of m with the given ts and tw cost constants
// (flop units). The receiver is not mutated: cost constants are
// read-only once a machine is constructed (enforced by the clockguard
// analyzer), so configured variants are always derived as copies.
func (m *Machine) WithCost(ts, tw float64) *Machine {
	mm := *m
	mm.Ts = ts
	mm.Tw = tw
	return &mm
}

// WithAllPort returns a copy of m in the all-port (on=true) or one-port
// communication regime of Section 7. Like WithCost, it derives a copy
// because the regime selects how every subsequent ts + tw·m transfer is
// charged.
func (m *Machine) WithAllPort(on bool) *Machine {
	mm := *m
	mm.AllPort = on
	return &mm
}

// Route returns the ordered node sequence of the path a message from
// src to dst takes, excluding src itself: dimension-order (e-cube) on
// hypercubes and 3-D grids, x-then-y on meshes, direct elsewhere. Used
// by contention tracking.
func (m *Machine) Route(src, dst int) []int {
	if src == dst {
		return nil
	}
	switch t := m.Topo.(type) {
	case topology.Hypercube:
		var out []int
		cur := src
		for d := 0; d < t.Dim; d++ {
			if (src^dst)&(1<<d) != 0 {
				cur ^= 1 << d
				out = append(out, cur)
			}
		}
		return out
	case topology.Torus2D:
		si, sj := t.Coords(src)
		di, dj := t.Coords(dst)
		var out []int
		ci, cj := si, sj
		for cj != dj {
			cj = stepWrap(cj, dj, t.C)
			out = append(out, t.RankAt(ci, cj))
		}
		for ci != di {
			ci = stepWrap(ci, di, t.R)
			out = append(out, t.RankAt(ci, cj))
		}
		return out
	default:
		return []int{dst}
	}
}

// stepWrap moves cur one step toward dst along the shorter wraparound
// direction of a ring of size n.
func stepWrap(cur, dst, n int) int {
	fwd := ((dst-cur)%n + n) % n
	if fwd <= n-fwd {
		return (cur + 1) % n
	}
	return (cur - 1 + n) % n
}

// Validate reports configuration errors.
func (m *Machine) Validate() error {
	if m.Topo == nil {
		return fmt.Errorf("machine: no topology")
	}
	if m.Ts < 0 || m.Tw < 0 || m.Th < 0 {
		return fmt.Errorf("machine: negative cost parameters ts=%v tw=%v th=%v", m.Ts, m.Tw, m.Th)
	}
	if m.Backend < 0 || m.Backend >= backendCount {
		return fmt.Errorf("machine: unknown backend %v", m.Backend)
	}
	if err := m.Faults.Validate(); err != nil {
		return err
	}
	if c := m.Checkpoint; c != nil && c.StopAfter == 0 && c.Resume == nil {
		return fmt.Errorf("machine: checkpoint control with neither StopAfter nor Resume does nothing; drop it or set one")
	}
	return nil
}

// P returns the number of processors.
func (m *Machine) P() int { return m.Topo.Size() }

// MsgTime returns the virtual time to move words from src to dst,
// applying any configured link fault perturbation.
func (m *Machine) MsgTime(words, src, dst int) float64 {
	if src == dst {
		return 0
	}
	return m.MsgTimeOn(words, m.Topo.Distance(src, dst), src, dst)
}

// MsgTimeHops returns the virtual time for a transfer of the given word
// count over the given number of hops under the machine's routing, at
// the machine's nominal (unperturbed) ts/tw. The paper's closed-form
// predictions are stated in these nominal constants; fault-aware
// charging goes through MsgTime or MsgTimeOn.
func (m *Machine) MsgTimeHops(words, hops int) float64 {
	return m.msgTimeWith(m.Ts, m.Tw, words, hops)
}

// MsgTimeOn returns the transfer time of words over hops hops on the
// directed logical link src → dst, applying the link's fault
// perturbation (if any) to the ts and tw components.
func (m *Machine) MsgTimeOn(words, hops, src, dst int) float64 {
	ts, tw := m.PairTsTw(src, dst)
	return m.msgTimeWith(ts, tw, words, hops)
}

// PairTsTw returns the effective (ts, tw) for transfers on the directed
// link src → dst: the machine's nominal constants scaled by the fault
// configuration's latency/bandwidth factors and per-link jitter.
func (m *Machine) PairTsTw(src, dst int) (float64, float64) {
	if m.Faults == nil {
		return m.Ts, m.Tw
	}
	latF, bwF := m.Faults.LinkFactors(src, dst)
	return m.Ts * latF, m.Tw * bwF
}

func (m *Machine) msgTimeWith(ts, tw float64, words, hops int) float64 {
	if hops <= 0 {
		return 0
	}
	per := ts + tw*float64(words)
	if m.Routing == CutThrough {
		return per + m.Th*float64(hops)
	}
	return float64(hops) * per
}

// String summarizes the machine for reports.
func (m *Machine) String() string {
	port := "one-port"
	if m.AllPort {
		port = "all-port"
	}
	s := fmt.Sprintf("%s ts=%g tw=%g %s %s", m.Topo.Name(), m.Ts, m.Tw, m.Routing, port)
	if m.Faults.Enabled() {
		s += fmt.Sprintf(" faults[%s]", m.Faults)
	}
	return s
}
