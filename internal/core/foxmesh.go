package core

import (
	"matscale/internal/collective"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/simulator"
	"matscale/internal/topology"
)

const (
	tagFoxMeshRelay   = 470
	tagFoxMeshShift   = 480
	tagFoxMeshBarrier = 490
	tagFoxPktBase     = 4000
	tagFoxPktShift    = 3900
	tagFoxPktBarrier  = 3950
)

// FoxMesh is Fox's algorithm on a wraparound mesh without any
// broadcast hardware assist (the first variant Section 4.3 analyzes):
// in each of the √p iterations the root's A block is relayed processor
// to processor along the mesh row — √p−1 store-and-forward hops — and
// B rolls one step north. With lockstep iterations the measured time
// is exactly the expression the paper derives for the mesh,
//
//	Tp = n³/p + tw·n² + ts·p
//
// (per iteration: (√p−1)·(ts + tw·n²/p) for the relay plus one shift,
// i.e. √p·(ts + tw·n²/p), times √p iterations).
func FoxMesh(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
	n, err := checkInputs(m, a, b)
	if err != nil {
		return nil, err
	}
	p := m.P()
	q, err := squareMeshSide(n, p)
	if err != nil {
		return nil, err
	}
	bs := n / q
	mesh := topology.NewTorus2D(q, q)
	ga := matrix.Partition(a, q, q)
	gb := matrix.Partition(b, q, q)
	everyone := allRanks(p)

	var product *matrix.Dense
	sim, err := simulator.Run(m, func(pr *simulator.Proc) {
		i, j := mesh.Coords(pr.Rank())
		myA := blockData(ga.Block(i, j))
		myB := blockData(gb.Block(i, j))

		c := matrix.New(bs, bs)
		for t := 0; t < q; t++ {
			rootCol := (i + t) % q
			// Relay the root's A block around the row: the block
			// travels rootCol → rootCol+1 → ... → rootCol+q−1 (mod q).
			ablk := myA
			if q > 1 {
				if j != rootCol {
					ablk = pr.Recv(mesh.RankAt(i, j-1), tagFoxMeshRelay+t)
				}
				if (j+1)%q != rootCol {
					// Copy semantics: ablk is still consumed below.
					pr.SendNeighbor(mesh.RankAt(i, j+1), tagFoxMeshRelay+t, ablk)
				}
			}
			matrix.MulAddInto(c, blockFrom(ablk, bs, bs), blockFrom(myB, bs, bs))
			pr.Compute(float64(bs) * float64(bs) * float64(bs))
			if q > 1 && j != rootCol {
				pr.Recycle(ablk) // received relay copy, consumed above
			}

			if q > 1 {
				// The outgoing B block dies here: zero-copy shift.
				pr.SendNeighborOwned(mesh.Up(pr.Rank()), tagFoxMeshShift, myB)
				myB = pr.Recv(mesh.Down(pr.Rank()), tagFoxMeshShift)
			}
			collective.BarrierFree(pr, everyone, tagFoxMeshBarrier)
		}

		gatherGrid(pr, everyone, q, q, tagGatherC, c, &product)
	})
	if err != nil {
		return nil, err
	}
	return newResult("FoxMesh", product, sim, n, p), nil
}

// FoxPacketPipelined is Fox's pipelined variant realized with genuine
// packet pipelining (no closed-form charging): in each iteration the
// root streams its A block along the mesh row in optimally sized
// packets (collective.BroadcastPipelinedChain), each relay forwarding
// every packet on receipt — the mechanism behind Eq. (4)'s bound. B
// rolls north as usual. Its measured time sits between Cannon's and
// the synchronized relay's, tracking the charged FoxPipelined model.
func FoxPacketPipelined(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
	n, err := checkInputs(m, a, b)
	if err != nil {
		return nil, err
	}
	p := m.P()
	q, err := squareMeshSide(n, p)
	if err != nil {
		return nil, err
	}
	bs := n / q
	mesh := topology.NewTorus2D(q, q)
	ga := matrix.Partition(a, q, q)
	gb := matrix.Partition(b, q, q)
	everyone := allRanks(p)
	packets := collective.OptimalPackets(m.Ts, m.Tw, bs*bs, q)

	var product *matrix.Dense
	sim, err := simulator.Run(m, func(pr *simulator.Proc) {
		i, j := mesh.Coords(pr.Rank())
		myA := blockData(ga.Block(i, j))
		myB := blockData(gb.Block(i, j))

		c := matrix.New(bs, bs)
		for t := 0; t < q; t++ {
			rootCol := (i + t) % q
			ablk := myA
			if q > 1 {
				// The chain runs rootCol, rootCol+1, ..., around the row.
				chain := make([]int, q)
				for x := 0; x < q; x++ {
					chain[x] = mesh.RankAt(i, rootCol+x)
				}
				var payload []float64
				if j == rootCol {
					payload = myA
				}
				ablk = collective.BroadcastPipelinedChain(pr, chain, tagFoxPktBase+t*64, payload, packets)
			}
			matrix.MulAddInto(c, blockFrom(ablk, bs, bs), blockFrom(myB, bs, bs))
			pr.Compute(float64(bs) * float64(bs) * float64(bs))
			if q > 1 && j != rootCol {
				pr.Recycle(ablk) // chain-assembled copy, consumed above
			}
			if q > 1 {
				// The outgoing B block dies here: zero-copy shift.
				pr.SendNeighborOwned(mesh.Up(pr.Rank()), tagFoxPktShift, myB)
				myB = pr.Recv(mesh.Down(pr.Rank()), tagFoxPktShift)
			}
			collective.BarrierFree(pr, everyone, tagFoxPktBarrier+t)
		}

		gatherGrid(pr, everyone, q, q, tagGatherC, c, &product)
	})
	if err != nil {
		return nil, err
	}
	return newResult("FoxPacketPipelined", product, sim, n, p), nil
}
