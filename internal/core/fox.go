package core

import (
	"fmt"

	"matscale/internal/collective"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/simulator"
	"matscale/internal/topology"
)

const (
	tagFoxBcast   = 400
	tagFoxShift   = 450
	tagFoxBarrier = 460
)

// Fox implements Fox's algorithm (Section 4.3) on a √p × √p mesh. The
// algorithm runs in √p iterations; in iteration t, processor
// (i, (i+t) mod √p) broadcasts its A block along mesh row i, every
// processor multiplies the received block with its resident B block,
// and B rolls one step north.
//
// This variant performs the row broadcast as a binomial tree on the
// hypercube (the "more sophisticated scheme" mentioned in Section 4.3).
// With lockstep iterations its measured time is exactly
//
//	Tp = n³/p + √p·(ts + tw·n²/p)·(log₂√p + 1)
//
// which is worse than Cannon's algorithm by the log factor, as the
// paper observes.
func Fox(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
	return foxImpl(m, a, b, false)
}

// FoxPipelined is the pipelined variant whose run time the paper cites
// as Eq. (4): the root sends its block along the row in small packets,
// overlapping transmission across the row. The broadcast is charged
// the pipeline cost ts·√p + tw·n²/p per iteration, giving exactly
//
//	Tp = n³/p + ts·(p + √p) + 2·tw·n²/√p
//
// (Eq. (4) drops the lower-order ts·√p contributed by the shifts.)
func FoxPipelined(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
	return foxImpl(m, a, b, true)
}

func foxImpl(m *machine.Machine, a, b *matrix.Dense, pipelined bool) (*Result, error) {
	n, err := checkInputs(m, a, b)
	if err != nil {
		return nil, err
	}
	p := m.P()
	q, err := squareMeshSide(n, p)
	if err != nil {
		return nil, err
	}
	if _, ok := topology.Log2(q); !ok {
		return nil, fmt.Errorf("core: Fox needs a power-of-two mesh side, got %d", q)
	}
	bs := n / q
	mesh := topology.NewTorus2D(q, q)
	ga := matrix.Partition(a, q, q)
	gb := matrix.Partition(b, q, q)
	everyone := allRanks(p)

	var product *matrix.Dense
	sim, err := simulator.Run(m, func(pr *simulator.Proc) {
		i, j := mesh.Coords(pr.Rank())
		row := mesh.RowRanks(i)
		myA := blockData(ga.Block(i, j))
		myB := blockData(gb.Block(i, j))

		c := matrix.New(bs, bs)
		for t := 0; t < q; t++ {
			rootCol := (i + t) % q
			var payload []float64
			if j == rootCol {
				payload = myA
			}
			var ablk []float64
			if pipelined {
				// Pipeline fill plus transmission: ts·√p + tw·n²/p.
				cost := m.Ts*float64(q) + m.Tw*float64(len(myA))
				ablk = collective.BroadcastCharged(pr, row, rootCol, tagFoxBcast+t, payload, cost)
			} else {
				ablk = collective.Broadcast(pr, row, rootCol, tagFoxBcast+t, payload)
			}
			matrix.MulAddInto(c, blockFrom(ablk, bs, bs), blockFrom(myB, bs, bs))
			pr.Compute(float64(bs) * float64(bs) * float64(bs))
			if j != rootCol {
				pr.Recycle(ablk) // received broadcast copy, consumed above
			}

			// Roll B one step north; the outgoing block dies here, so it
			// rides the ownership-transfer fast path.
			pr.SendNeighborOwned(mesh.Up(pr.Rank()), tagFoxShift, myB)
			myB = pr.Recv(mesh.Down(pr.Rank()), tagFoxShift)

			// The paper's accounting treats iterations as lockstep.
			collective.BarrierFree(pr, everyone, tagFoxBarrier)
		}

		gatherGrid(pr, everyone, q, q, tagGatherC, c, &product)
	})
	if err != nil {
		return nil, err
	}
	name := "Fox"
	if pipelined {
		name = "FoxPipelined"
	}
	return newResult(name, product, sim, n, p), nil
}
