package core

import (
	"testing"

	"matscale/internal/machine"
)

// TestAllFormulationsStressP64 runs every formulation at its largest
// valid processor count ≤ 64, in parallel subtests and for several
// rounds, with the product checked bit-exactly against the serial
// kernel each time. The point is not the equations (the exactness
// tests cover those) but the messaging hot path: 64 goroutines give
// the pooled zero-copy sends, buffer recycling, and sharded mailboxes
// real concurrency to go wrong under — the -race run of this test is
// the enforcement of the buffer ownership contract.
func TestAllFormulationsStressP64(t *testing.T) {
	cases := []struct {
		name string
		alg  Algorithm
		n, p int
	}{
		{"Simple", Simple, 16, 64},
		{"SimpleAllPort", SimpleAllPort, 16, 64},
		{"SimpleMemEfficientAllPort", SimpleMemEfficientAllPort, 16, 64},
		{"Cannon", Cannon, 16, 64},
		{"Fox", Fox, 16, 64},
		{"FoxPipelined", FoxPipelined, 16, 64},
		{"FoxAsync", FoxAsync, 16, 64},
		{"FoxMesh", FoxMesh, 16, 64},
		{"FoxPacketPipelined", FoxPacketPipelined, 16, 64},
		{"Berntsen", Berntsen, 16, 64},
		{"DNS", DNS, 8, 64},
		{"GK", GK, 16, 64},
		{"GKImprovedBroadcast", GKImprovedBroadcast, 16, 64},
		{"GKAllPort", GKAllPort, 16, 64},
	}
	rounds := 3
	if testing.Short() {
		rounds = 1
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel() // formulations stress the pools against each other too
			for r := 0; r < rounds; r++ {
				runCase(t, c.name, c.alg, machine.Hypercube(c.p, 17, 3), c.n)
			}
		})
	}
}
