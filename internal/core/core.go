// Package core implements the parallel matrix multiplication
// algorithms analyzed by the paper, running them for real on the
// virtual-time multicomputer of internal/simulator:
//
//   - Simple     — the all-to-all broadcast algorithm of Section 4.1
//   - Cannon     — Cannon's algorithm, Section 4.2 (Eq. 3)
//   - Fox        — Fox's algorithm, Section 4.3, binomial-broadcast and
//     pipelined variants (Eq. 4)
//   - Berntsen   — Berntsen's subcube algorithm, Section 4.4 (Eq. 5)
//   - DNS        — the Dekel–Nassimi–Sahni algorithm with more than one
//     element per processor, Section 4.5.2 (Eq. 6)
//   - GK         — the paper's own contribution, Section 4.6 (Eq. 7),
//     plus the improved-broadcast variant of Section 5.4.1 and the
//     CM-5 variant of Section 9 (Eq. 18)
//   - SimpleAllPort, GKAllPort — the all-port variants of Section 7
//     (Eqs. 16–17)
//
// Every algorithm distributes the input blocks (untimed setup),
// executes the timed communication and computation phases, and gathers
// the product at zero virtual cost for verification. The measured
// parallel time of each algorithm equals the paper's closed-form
// expression for it; the tests assert this equality exactly.
package core

import (
	"fmt"

	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/simulator"
	"matscale/internal/topology"
)

// Result is the outcome of one parallel multiplication.
type Result struct {
	C   *matrix.Dense     // the assembled product
	Sim *simulator.Result // virtual-time measurements
	N   int               // matrix dimension
	P   int               // processors used
	// Algorithm is the name of the formulation that produced the
	// result ("Cannon", "GK", ...), stamped by every entry point.
	Algorithm string
	// Metrics is the per-rank/per-link breakdown with the derived
	// scalability quantities, populated when the machine had
	// CollectMetrics set (e.g. via matscale.Run with WithMetrics);
	// nil otherwise.
	Metrics *Metrics
}

// Metrics enriches the simulator's per-rank/per-link breakdown with
// the derived quantities of the paper's analysis for problem size
// W = n³.
type Metrics struct {
	*simulator.Metrics

	W float64 // problem size n³
	// Overhead is the measured total overhead To = p·Tp − W
	// (Section 2) — the quantity whose growth with p determines every
	// isoefficiency result in the paper.
	Overhead float64
	// CommComputeRatio is total charged communication time over total
	// compute time.
	CommComputeRatio float64
	// LoadImbalance is max over mean per-rank busy time (1.0 =
	// perfectly balanced).
	LoadImbalance float64
	// CriticalRank is the lowest rank finishing at Tp.
	CriticalRank int
	// TotalCompute, TotalComm and TotalIdle decompose p·Tp: the Σ of
	// the per-rank Compute, Send and Idle columns. TotalComm +
	// TotalIdle equals the measured Overhead when W = TotalCompute.
	TotalCompute float64
	TotalComm    float64
	TotalIdle    float64
}

// deriveMetrics computes the derived quantities from the simulator's
// raw breakdown.
func deriveMetrics(sm *simulator.Metrics, w float64) *Metrics {
	return &Metrics{
		Metrics:          sm,
		W:                w,
		Overhead:         sm.Overhead(w),
		CommComputeRatio: sm.CommComputeRatio(),
		LoadImbalance:    sm.LoadImbalance(),
		CriticalRank:     sm.CriticalRank(),
		TotalCompute:     sm.TotalCompute(),
		TotalComm:        sm.TotalComm(),
		TotalIdle:        sm.TotalIdle(),
	}
}

// newResult assembles the Result every algorithm returns, stamping the
// algorithm name and deriving Metrics when the run collected them.
func newResult(name string, c *matrix.Dense, sim *simulator.Result, n, p int) *Result {
	r := &Result{Algorithm: name, C: c, Sim: sim, N: n, P: p}
	if sim.Metrics != nil {
		r.Metrics = deriveMetrics(sim.Metrics, r.W())
	}
	return r
}

// W returns the problem size W = n³ (Section 2).
func (r *Result) W() float64 { return float64(r.N) * float64(r.N) * float64(r.N) }

// Efficiency returns E = W/(p·Tp).
func (r *Result) Efficiency() float64 { return r.Sim.Efficiency(r.W()) }

// Speedup returns S = W/Tp.
func (r *Result) Speedup() float64 { return r.Sim.Speedup(r.W()) }

// Overhead returns To = p·Tp − W.
func (r *Result) Overhead() float64 { return r.Sim.Overhead(r.W()) }

// Algorithm runs a parallel multiplication of two n×n matrices on m.
type Algorithm func(m *machine.Machine, a, b *matrix.Dense) (*Result, error)

// checkInputs validates the common preconditions.
func checkInputs(m *machine.Machine, a, b *matrix.Dense) (n int, err error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if !a.IsSquare() || !b.IsSquare() || a.Rows != b.Rows {
		return 0, fmt.Errorf("core: need equal square matrices, got %dx%d and %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	return a.Rows, nil
}

// squareMeshSide returns √p for algorithms that need a square processor
// mesh with √p dividing n.
func squareMeshSide(n, p int) (int, error) {
	q := topology.IntSqrt(p)
	if q*q != p {
		return 0, fmt.Errorf("core: p = %d is not a perfect square", p)
	}
	if n%q != 0 {
		return 0, fmt.Errorf("core: mesh side %d does not divide n = %d", q, n)
	}
	return q, nil
}

// cubeSide returns p^(1/3) for algorithms on the 3-D processor grid,
// requiring p a perfect cube (a power of 8 on a hypercube) and the side
// dividing n.
func cubeSide(n, p int) (int, error) {
	q := topology.IntCbrt(p)
	if q*q*q != p {
		return 0, fmt.Errorf("core: p = %d is not a perfect cube", p)
	}
	if _, ok := topology.Log2(q); !ok {
		return 0, fmt.Errorf("core: cube side %d is not a power of two", q)
	}
	if n%q != 0 {
		return 0, fmt.Errorf("core: cube side %d does not divide n = %d", q, n)
	}
	return q, nil
}

// wire converts between matrix blocks and message payloads.
func blockData(m *matrix.Dense) []float64 { return m.Data }

func blockFrom(data []float64, rows, cols int) *matrix.Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("core: payload of %d words is not a %dx%d block", len(data), rows, cols))
	}
	return &matrix.Dense{Rows: rows, Cols: cols, Data: data}
}

// recvBlock receives the next (src, tag) payload and views it as a
// rows×cols block without copying. The block's backing buffer is owned
// by the caller; hand it to releaseBlock when the block is dead to keep
// the message path allocation-free.
func recvBlock(pr *simulator.Proc, src, tag, rows, cols int) *matrix.Dense {
	return blockFrom(pr.Recv(src, tag), rows, cols)
}

// releaseBlock recycles the backing buffer of a block produced by
// recvBlock (or any block whose buffer the caller owns exclusively).
// The block must not be used afterwards.
func releaseBlock(pr *simulator.Proc, blk *matrix.Dense) {
	pr.Recycle(blk.Data)
}

// allRanks returns [0, p).
func allRanks(p int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = i
	}
	return out
}

// gatherGrid collects one block per processor at rank 0 (zero cost,
// verification only) and assembles the n×n product. ranks is indexed
// [i*gc+j] giving the rank holding block (i, j). gatherGrid consumes
// mine: senders give the block away on the zero-copy path and the root
// recycles received payloads, so callers must not use mine afterwards.
func gatherGrid(pr *simulator.Proc, ranks []int, gr, gc int, tag int, mine *matrix.Dense, out **matrix.Dense) {
	if pr.Rank() != ranks[0] {
		for _, r := range ranks {
			if r == pr.Rank() {
				pr.SendFreeOwned(ranks[0], tag, blockData(mine))
				return
			}
		}
		return // not a holder of any block
	}
	h, w := mine.Rows, mine.Cols
	c := matrix.New(gr*h, gc*w)
	for i := 0; i < gr; i++ {
		for j := 0; j < gc; j++ {
			r := ranks[i*gc+j]
			if r == pr.Rank() {
				c.SetBlock(i*h, j*w, mine)
				continue
			}
			blk := recvBlock(pr, r, tag, h, w)
			c.SetBlock(i*h, j*w, blk)
			releaseBlock(pr, blk)
		}
	}
	*out = c
}

// Tag bases. Each algorithm phase uses a distinct tag range so that
// concurrent collectives never collide.
const (
	tagGatherC = 1 << 20 // final verification gather
	tagBarrier = 1 << 21 // phase barriers (callers add a phase index)
)
