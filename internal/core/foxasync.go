package core

import (
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/simulator"
	"matscale/internal/topology"
)

const (
	tagFoxAsyncRelay = 440
	tagFoxAsyncShift = 445
)

// FoxAsync is the asynchronous execution of Fox's algorithm that
// Section 4.3 describes: "in every iteration, a processor starts
// performing its computation as soon as it has all the required data,
// and does not wait for the entire broadcast to finish." Each
// processor forwards the relayed A block onward *before* multiplying,
// and no barrier separates the iterations, so the row relay pipelines
// across iterations and computation overlaps the broadcast chain
// downstream.
//
// The paper claims this brings Fox's algorithm "to almost a factor of
// two of Cannon's algorithm"; the tests verify that the measured time
// lands between Cannon's and twice Cannon's for compute-dominated
// configurations, far below the synchronized mesh relay.
func FoxAsync(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
	n, err := checkInputs(m, a, b)
	if err != nil {
		return nil, err
	}
	p := m.P()
	q, err := squareMeshSide(n, p)
	if err != nil {
		return nil, err
	}
	bs := n / q
	mesh := topology.NewTorus2D(q, q)
	ga := matrix.Partition(a, q, q)
	gb := matrix.Partition(b, q, q)
	everyone := allRanks(p)

	var product *matrix.Dense
	sim, err := simulator.Run(m, func(pr *simulator.Proc) {
		i, j := mesh.Coords(pr.Rank())
		myA := blockData(ga.Block(i, j))
		myB := blockData(gb.Block(i, j))

		c := matrix.New(bs, bs)
		for t := 0; t < q; t++ {
			rootCol := (i + t) % q
			ablk := myA
			if q > 1 {
				// Forward first, multiply second: the relay races ahead
				// of the computation wave. The forward must keep copy
				// semantics — ablk is still consumed below.
				if j != rootCol {
					ablk = pr.Recv(mesh.RankAt(i, j-1), tagFoxAsyncRelay+t)
				}
				if (j+1)%q != rootCol {
					pr.SendNeighbor(mesh.RankAt(i, j+1), tagFoxAsyncRelay+t, ablk)
				}
			}
			matrix.MulAddInto(c, blockFrom(ablk, bs, bs), blockFrom(myB, bs, bs))
			pr.Compute(float64(bs) * float64(bs) * float64(bs))
			if q > 1 && j != rootCol {
				pr.Recycle(ablk) // received relay copy, consumed above
			}

			if q > 1 {
				// The outgoing B block dies here: zero-copy shift.
				pr.SendNeighborOwned(mesh.Up(pr.Rank()), tagFoxAsyncShift, myB)
				myB = pr.Recv(mesh.Down(pr.Rank()), tagFoxAsyncShift)
			}
			// No barrier: iterations overlap across processors.
		}

		gatherGrid(pr, everyone, q, q, tagGatherC, c, &product)
	})
	if err != nil {
		return nil, err
	}
	return newResult("FoxAsync", product, sim, n, p), nil
}
