package core

import (
	"bytes"
	"math"
	"testing"

	"matscale/internal/faults"
	"matscale/internal/machine"
	"matscale/internal/matrix"
)

// The seven formulations of the paper, all runnable on NCube2(64) with
// n = 16 (8×8 mesh algorithms need 8 | n, the 3-D cube algorithms need
// 4 | n).
var faultCases = []struct {
	name string
	alg  Algorithm
}{
	{"Simple", Simple},
	{"Cannon", Cannon},
	{"Fox", Fox},
	{"FoxPipelined", FoxPipelined},
	{"Berntsen", Berntsen},
	// DNS at p = 64 < n² runs on its 4×4×4 block grid — the standard
	// entry point for coarse-grained DNS.
	{"DNS", func(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
		return DNSWithGrid(m, a, b, 4)
	}},
	{"GK", GK},
}

// issueFaults is the acceptance scenario of this PR: seed 42, a 2×
// straggler at rank 0.
func issueFaults() *faults.Config {
	return &faults.Config{Seed: 42, Stragglers: map[int]float64{0: 2}}
}

func ncube2WithMetrics(p int, f *faults.Config) *machine.Machine {
	m := machine.NCube2(p)
	m.CollectMetrics = true
	m.Faults = f
	return m
}

func faultMetricsBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Sim.Metrics.WriteRanksCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.Sim.Metrics.WriteLinksCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The PR's acceptance criterion: with seed=42, straggler=2@rank0 on
// NCube2(64), every formulation still returns the exact product, the
// per-rank accounting identities hold, measured To strictly exceeds the
// unfaulted run's, and two consecutive runs produce byte-identical
// metrics.
func TestAllFormulationsUnderStragglerFaults(t *testing.T) {
	const n, p = 16, 64
	a := matrix.RandomInts(n, n, 1000+uint64(n))
	b := matrix.RandomInts(n, n, 2000+uint64(n))
	want := matrix.Mul(a, b)

	for _, c := range faultCases {
		t.Run(c.name, func(t *testing.T) {
			clean, err := c.alg(ncube2WithMetrics(p, nil), a, b)
			if err != nil {
				t.Fatal(err)
			}
			faulted, err := c.alg(ncube2WithMetrics(p, issueFaults()), a, b)
			if err != nil {
				t.Fatal(err)
			}
			// Exact product under faults.
			if d := matrix.MaxAbsDiff(faulted.C, want); d != 0 {
				t.Fatalf("faulted product differs from serial by %v", d)
			}
			// Per-rank accounting identity.
			tp := faulted.Sim.Tp
			for _, r := range faulted.Sim.Metrics.Ranks {
				sum := r.Compute + r.Send + r.Idle
				if math.Abs(sum-tp) > 1e-9*math.Max(1, tp) {
					t.Fatalf("rank %d: compute+send+idle = %v, Tp = %v", r.Rank, sum, tp)
				}
			}
			// Strictly more overhead than the clean run.
			if faulted.Overhead() <= clean.Overhead() {
				t.Fatalf("faulted To %v not above clean To %v", faulted.Overhead(), clean.Overhead())
			}
			// The degradation block attributes the damage.
			d := faulted.Sim.Metrics.Degradation
			if d == nil {
				t.Fatal("no degradation block")
			}
			if len(d.StraggledRanks) != 1 || d.StraggledRanks[0] != 0 {
				t.Fatalf("straggled ranks %v, want [0]", d.StraggledRanks)
			}
			if d.StragglerExtraCompute <= 0 {
				t.Fatal("no straggler extra compute recorded")
			}
			// Byte-identical reruns.
			again, err := c.alg(ncube2WithMetrics(p, issueFaults()), a, b)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(faultMetricsBytes(t, faulted), faultMetricsBytes(t, again)) {
				t.Fatal("two faulted runs produced different metrics bytes")
			}
			if matrix.MaxAbsDiff(faulted.C, again.C) != 0 {
				t.Fatal("two faulted runs produced different products")
			}
		})
	}
}

// Message loss with retries: the product stays exact, retry overhead is
// charged, and runs remain reproducible.
func TestFormulationsUnderMessageLoss(t *testing.T) {
	const n, p = 16, 64
	a := matrix.RandomInts(n, n, 7)
	b := matrix.RandomInts(n, n, 8)
	want := matrix.Mul(a, b)
	lossy := &faults.Config{Seed: 42, Loss: 0.05}

	for _, c := range []struct {
		name string
		alg  Algorithm
	}{
		{"Cannon", Cannon},
		{"Simple", Simple},
		{"GK", GK},
	} {
		t.Run(c.name, func(t *testing.T) {
			clean, err := c.alg(ncube2WithMetrics(p, nil), a, b)
			if err != nil {
				t.Fatal(err)
			}
			faulted, err := c.alg(ncube2WithMetrics(p, lossy), a, b)
			if err != nil {
				t.Fatal(err)
			}
			if d := matrix.MaxAbsDiff(faulted.C, want); d != 0 {
				t.Fatalf("lossy product differs from serial by %v", d)
			}
			if faulted.Sim.Retries == 0 {
				t.Fatal("5% loss over hundreds of messages caused no retries")
			}
			if faulted.Sim.RetryTime <= 0 {
				t.Fatal("retries charged no time")
			}
			if faulted.Overhead() <= clean.Overhead() {
				t.Fatalf("lossy To %v not above clean To %v", faulted.Overhead(), clean.Overhead())
			}
			deg := faulted.Sim.Metrics.Degradation
			if deg == nil || deg.RetryComm != faulted.Sim.RetryTime || deg.Retries != faulted.Sim.Retries {
				t.Fatalf("degradation retry accounting mismatch: %+v vs %d/%v", deg, faulted.Sim.Retries, faulted.Sim.RetryTime)
			}
			again, err := c.alg(ncube2WithMetrics(p, lossy), a, b)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(faultMetricsBytes(t, faulted), faultMetricsBytes(t, again)) {
				t.Fatal("two lossy runs produced different metrics bytes")
			}
		})
	}
}

// Link perturbation composes with the algorithms: jittered links leave
// the product exact and slow the run.
func TestFormulationsUnderLinkJitter(t *testing.T) {
	const n, p = 16, 16
	a := matrix.RandomInts(n, n, 11)
	b := matrix.RandomInts(n, n, 12)
	want := matrix.Mul(a, b)
	f := &faults.Config{Seed: 9, Jitter: 0.5, LatencyFactor: 1.5}

	clean, err := Cannon(ncube2WithMetrics(p, nil), a, b)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := Cannon(ncube2WithMetrics(p, f), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(faulted.C, want); d != 0 {
		t.Fatalf("jittered product differs by %v", d)
	}
	if faulted.Sim.Tp <= clean.Sim.Tp {
		t.Fatalf("jittered Tp %v not above clean %v", faulted.Sim.Tp, clean.Sim.Tp)
	}
}
