package core

import (
	"fmt"

	"matscale/internal/collective"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/simulator"
	"matscale/internal/topology"
)

const (
	tagMemEffBcastA  = 800
	tagMemEffBcastB  = 850
	tagMemEffBarrier = 880
)

// SimpleMemEfficientAllPort is the memory-efficient counterpart of the
// all-port simple algorithm, in the spirit of Ho, Johnsson and Edelman
// [18], which Section 7.1 cites as using full bandwidth with constant
// storage at "somewhat higher execution time" than Eq. (16). Instead
// of gathering a whole block row and block column on every processor
// (O(n²/√p) memory each), the multiplication streams: in step k of √p,
// the owners of A_ik and B_kj broadcast them along mesh row i and mesh
// column j, every processor multiplies and accumulates, and the blocks
// are discarded — O(n²/p) storage, like Cannon's algorithm.
//
// Each step's pair of one-to-all broadcasts proceeds simultaneously on
// the all-port hardware, charged the all-port one-to-all cost
// ts·log₂√p + tw·(n²/p)/log₂√p (the message splits across the log √p
// ports). Measured time with lockstep steps:
//
//	Tp = n³/p + √p·(ts·log₂√p + tw·(n²/p)/log₂√p)
//
// which is higher than Eq. (16) — the memory saving costs a log factor
// of bandwidth, exactly the "somewhat higher execution time" trade the
// paper describes.
func SimpleMemEfficientAllPort(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
	n, err := checkInputs(m, a, b)
	if err != nil {
		return nil, err
	}
	p := m.P()
	q, err := squareMeshSide(n, p)
	if err != nil {
		return nil, err
	}
	if _, ok := topology.Log2(q); !ok {
		return nil, errNonPow2Mesh(q)
	}
	bs := n / q
	mesh := topology.NewTorus2D(q, q)
	ga := matrix.Partition(a, q, q)
	gb := matrix.Partition(b, q, q)
	everyone := allRanks(p)
	cost := allPortBcastCost(m, bs*bs, q)

	var product *matrix.Dense
	sim, err := simulator.Run(m, func(pr *simulator.Proc) {
		i, j := mesh.Coords(pr.Rank())
		row := mesh.RowRanks(i)
		col := mesh.ColRanks(j)
		myA := blockData(ga.Block(i, j))
		myB := blockData(gb.Block(i, j))

		c := matrix.New(bs, bs)
		for k := 0; k < q; k++ {
			var aPayload, bPayload []float64
			if j == k {
				aPayload = myA
			}
			if i == k {
				bPayload = myB
			}
			// A's broadcast is charged; B's proceeds simultaneously on
			// the remaining ports (Section 7.1's simultaneity).
			ablk := collective.BroadcastCharged(pr, row, k, tagMemEffBcastA+k, aPayload, cost)
			bblk := collective.BroadcastCharged(pr, col, k, tagMemEffBcastB+k, bPayload, 0)
			matrix.MulAddInto(c, blockFrom(ablk, bs, bs), blockFrom(bblk, bs, bs))
			pr.Compute(float64(bs) * float64(bs) * float64(bs))
			// Streaming is the point of this variant: received blocks are
			// discarded — recycled — as soon as they are consumed (roots
			// keep their resident blocks).
			if j != k {
				pr.Recycle(ablk)
			}
			if i != k {
				pr.Recycle(bblk)
			}
			collective.BarrierFree(pr, everyone, tagMemEffBarrier+k)
		}

		gatherGrid(pr, everyone, q, q, tagGatherC, c, &product)
	})
	if err != nil {
		return nil, err
	}
	return newResult("SimpleMemEfficientAllPort", product, sim, n, p), nil
}

// allPortBcastCost is the all-port one-to-all broadcast cost for m
// words among g processors: ts·log₂g + tw·m/log₂g.
func allPortBcastCost(mach *machine.Machine, m, g int) float64 {
	d, _ := topology.Log2(g)
	if d == 0 {
		return 0
	}
	return mach.Ts*float64(d) + mach.Tw*float64(m)/float64(d)
}

func errNonPow2Mesh(q int) error {
	return fmt.Errorf("core: all-port broadcasts need a power-of-two mesh side, got %d", q)
}
