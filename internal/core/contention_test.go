package core

import (
	"testing"

	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/simulator"
)

// The paper's performance model assumes contention-free communication.
// That assumption is structural, not accidental: every algorithm it
// analyzes routes its messages on pairwise link-disjoint paths within
// each phase. Running with link-level contention tracking must
// therefore change no measured time.
func TestAlgorithmsAreContentionFree(t *testing.T) {
	a := matrix.RandomInts(16, 16, 71)
	b := matrix.RandomInts(16, 16, 72)
	cases := []struct {
		name string
		alg  Algorithm
		mk   func() *machine.Machine
	}{
		{"Cannon/hypercube", Cannon, func() *machine.Machine { return testHypercube(16) }},
		{"Cannon/mesh", Cannon, func() *machine.Machine { return testMesh(16) }},
		{"Simple", Simple, func() *machine.Machine { return testHypercube(16) }},
		{"Fox", Fox, func() *machine.Machine { return testHypercube(16) }},
		{"FoxMesh", FoxMesh, func() *machine.Machine { return testMesh(16) }},
		{"FoxAsync", FoxAsync, func() *machine.Machine { return testMesh(16) }},
		{"Berntsen", Berntsen, func() *machine.Machine { return testHypercube(64) }},
		{"GK", GK, func() *machine.Machine { return testHypercube(64) }},
		{"DNS", func(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
			return DNSWithGrid(m, a, b, 4)
		}, func() *machine.Machine { return testHypercube(32) }},
	}
	for _, c := range cases {
		plain, err := c.alg(c.mk(), a, b)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		mTracked := c.mk()
		mTracked.TrackContention = true
		tracked, err := c.alg(mTracked, a, b)
		if err != nil {
			t.Fatalf("%s tracked: %v", c.name, err)
		}
		if tracked.Sim.Tp != plain.Sim.Tp {
			t.Errorf("%s: contention tracking changed Tp %v -> %v", c.name, plain.Sim.Tp, tracked.Sim.Tp)
		}
		if tracked.Sim.ContentionWait != 0 {
			t.Errorf("%s: nonzero contention wait %v — routes are not link-disjoint", c.name, tracked.Sim.ContentionWait)
		}
		if matrix.MaxAbsDiff(tracked.C, plain.C) != 0 {
			t.Errorf("%s: tracking changed the product", c.name)
		}
	}
}

// Sanity: a program that genuinely collides on a link does incur
// waiting time under tracking, so the zero-wait results above are
// meaningful.
func TestContentionDetectedWhenPresent(t *testing.T) {
	m := machine.Hypercube(4, 10, 1)
	m.TrackContention = true
	// Rank 1 streams a large message over link 1->3 while rank 0's
	// small message routes 0->1->3 and must queue behind it on the
	// shared second hop (or vice versa, depending on claim order —
	// either way someone waits).
	res, err := simulator.Run(m, func(p *simulator.Proc) {
		switch p.Rank() {
		case 0:
			p.Send(3, 0, []float64{1})
		case 1:
			p.Send(3, 1, make([]float64, 100))
		case 3:
			p.Recv(0, 0)
			p.Recv(1, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ContentionWait <= 0 {
		t.Fatalf("expected contention wait, got %v", res.ContentionWait)
	}
	// And the same program without tracking has none.
	m2 := machine.Hypercube(4, 10, 1)
	res2, err := simulator.Run(m2, func(p *simulator.Proc) {
		switch p.Rank() {
		case 0:
			p.Send(3, 0, []float64{1})
		case 1:
			p.Send(3, 1, make([]float64, 100))
		case 3:
			p.Recv(0, 0)
			p.Recv(1, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ContentionWait != 0 {
		t.Fatalf("untracked run reported contention %v", res2.ContentionWait)
	}
}
