package core

import (
	"fmt"

	"matscale/internal/collective"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/simulator"
	"matscale/internal/topology"
)

const (
	tagDNSRouteA  = 700
	tagDNSBcastA  = 710
	tagDNSRouteB  = 730
	tagDNSBcastB  = 740
	tagDNSAlignA  = 760
	tagDNSAlignB  = 761
	tagDNSShiftA  = 762
	tagDNSShiftB  = 763
	tagDNSReduce  = 770
	tagDNSBarrier = 780
)

// DNS implements the Dekel–Nassimi–Sahni algorithm in the
// more-than-one-element-per-processor form of Section 4.5.2: with
// p = n²·r processors (n² ≤ p ≤ n³), the processors form r³ logical
// superprocessors of (n/r)² processors each; matrix elements are
// placed as in the one-element-per-processor algorithm of Section
// 4.5.1 with superprocessors in place of processors, and the
// element-by-element products become (n/r)×(n/r) block products
// computed with Cannon's algorithm inside each superprocessor.
//
// Measured parallel time is exactly the paper's Eq. (6):
//
//	Tp = n³/p + (ts + tw)·(5·log₂(p/n²) + 2·n³/p)
//
// (n³/p = n/r is both the per-processor work and the Cannon step count
// inside a superprocessor).
func DNS(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
	n, err := checkInputs(m, a, b)
	if err != nil {
		return nil, err
	}
	if m.P() < n*n {
		return nil, fmt.Errorf("core: DNS requires p ≥ n², got p=%d n=%d (use DNSWithGrid for block operation)", m.P(), n)
	}
	return DNSWithGrid(m, a, b, n)
}

// DNSWithGrid runs the DNS algorithm treating the matrices as a
// gridSide × gridSide arrangement of square blocks (gridSide = n gives
// the paper's element-level algorithm; smaller grids let the same
// communication structure run with p < n² processors, each block
// product then being a real sub-matrix multiplication). Requirements:
// p = gridSide²·r with r a power of two, r | gridSide, and
// gridSide | n.
func DNSWithGrid(m *machine.Machine, a, b *matrix.Dense, gridSide int) (*Result, error) {
	n, err := checkInputs(m, a, b)
	if err != nil {
		return nil, err
	}
	p := m.P()
	if gridSide <= 0 || n%gridSide != 0 {
		return nil, fmt.Errorf("core: DNS grid side %d must divide n = %d", gridSide, n)
	}
	if p%(gridSide*gridSide) != 0 {
		return nil, fmt.Errorf("core: DNS needs p = gridSide²·r, got p=%d gridSide=%d", p, gridSide)
	}
	r := p / (gridSide * gridSide)
	if _, ok := topology.Log2(r); !ok {
		return nil, fmt.Errorf("core: DNS replication factor r=%d is not a power of two", r)
	}
	if gridSide%r != 0 {
		return nil, fmt.Errorf("core: DNS needs r=%d to divide gridSide=%d", r, gridSide)
	}
	u := gridSide / r // superprocessor mesh side
	if _, ok := topology.Log2(u); !ok {
		return nil, fmt.Errorf("core: DNS superprocessor side %d is not a power of two", u)
	}
	bs := n / gridSide
	ga := matrix.Partition(a, gridSide, gridSide)
	gb := matrix.Partition(b, gridSide, gridSide)
	superMesh := topology.NewTorus2D(u, u)
	everyone := allRanks(p)

	// rank = I·gridSide² + jg·gridSide + kg, with I the superprocessor
	// layer and (jg, kg) the global block coordinates.
	rankOf := func(i, jg, kg int) int { return i*gridSide*gridSide + jg*gridSide + kg }

	var product *matrix.Dense
	sim, err := simulator.Run(m, func(pr *simulator.Proc) {
		rk := pr.Rank()
		layer := rk / (gridSide * gridSide)
		jg := (rk / gridSide) % gridSide
		kg := rk % gridSide
		supJ, supK := jg/u, kg/u // superprocessor coordinates
		lj, lk := jg%u, kg%u     // position inside the superprocessor
		barrier := 0
		sync := func() {
			collective.BarrierFree(pr, everyone, tagDNSBarrier+barrier)
			barrier++
		}

		// Stage 1a: route A towards layer = supK. Each grid block is
		// read by exactly one layer-0 rank, so it is given away on the
		// zero-copy send path.
		var aBuf []float64
		if layer == 0 {
			pr.SendOwned(rankOf(supK, jg, kg), tagDNSRouteA, blockData(ga.Block(jg, kg)))
		}
		if layer == supK {
			aBuf = pr.Recv(rankOf(0, jg, kg), tagDNSRouteA)
		}
		sync()

		// Stage 1b: broadcast A across the r superprocessor columns
		// holding the same local position.
		groupA := make([]int, r)
		for l := 0; l < r; l++ {
			groupA[l] = rankOf(layer, jg, l*u+lk)
		}
		aBuf = collective.Broadcast(pr, groupA, layer, tagDNSBcastA, aBuf)
		sync()

		// Stage 1c: route B towards layer = supJ (zero-copy, as for A).
		var bBuf []float64
		if layer == 0 {
			pr.SendOwned(rankOf(supJ, jg, kg), tagDNSRouteB, blockData(gb.Block(jg, kg)))
		}
		if layer == supJ {
			bBuf = pr.Recv(rankOf(0, jg, kg), tagDNSRouteB)
		}
		sync()

		// Stage 1d: broadcast B across the r superprocessor rows.
		groupB := make([]int, r)
		for l := 0; l < r; l++ {
			groupB[l] = rankOf(layer, l*u+lj, kg)
		}
		bBuf = collective.Broadcast(pr, groupB, layer, tagDNSBcastB, bBuf)
		sync()

		// Stage 2: Cannon's algorithm inside the superprocessor
		// computes the superblock product A_sup(supJ, layer)·
		// B_sup(layer, supK).
		localRank := func(mr int) int {
			li, ljj := superMesh.Coords(mr)
			return rankOf(layer, supJ*u+li, supK*u+ljj)
		}
		tags := cannonTags{alignA: tagDNSAlignA, alignB: tagDNSAlignB, shiftA: tagDNSShiftA, shiftB: tagDNSShiftB}
		c := cannonRoll(pr, superMesh, localRank, lj, lk, blockFrom(aBuf, bs, bs), blockFrom(bBuf, bs, bs), tags)
		sync()

		// Stage 3: sum the r partial products across layers into layer 0.
		groupR := make([]int, r)
		for l := 0; l < r; l++ {
			groupR[l] = rankOf(l, jg, kg)
		}
		sum := collective.Reduce(pr, groupR, 0, tagDNSReduce, blockData(c))
		releaseBlock(pr, c) // Reduce copied it; the partial product is dead

		// Verification gather from layer 0.
		holders := make([]int, gridSide*gridSide)
		for x := 0; x < gridSide; x++ {
			for y := 0; y < gridSide; y++ {
				holders[x*gridSide+y] = rankOf(0, x, y)
			}
		}
		if layer == 0 {
			gatherGrid(pr, holders, gridSide, gridSide, tagGatherC, blockFrom(sum, bs, bs), &product)
		}
	})
	if err != nil {
		return nil, err
	}
	return newResult("DNS", product, sim, n, p), nil
}
