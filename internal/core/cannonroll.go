package core

import (
	"matscale/internal/matrix"
	"matscale/internal/simulator"
	"matscale/internal/topology"
)

// cannonTags carries the four tag streams one Cannon phase needs.
type cannonTags struct {
	alignA, alignB, shiftA, shiftB int
}

// cannonRoll runs the heart of Cannon's algorithm — the initial
// skewing alignment followed by s multiply-and-roll steps — on an
// s×s logical mesh of processors embedded anywhere in the machine via
// rankOf (mesh rank → global rank). The calling processor occupies
// mesh position (i, j) and contributes blocks myA and myB; the
// rectangular case (myA is h×w, myB is w×h with differing h, w) is what
// Berntsen's algorithm runs inside each subcube.
//
// The alignment moves at zero virtual cost (ignored by the paper on a
// cut-through hypercube); each of the 2s rolls is a nearest-neighbor
// transfer paid once. The returned product block is h×h.
//
// cannonRoll takes ownership of myA's and myB's backing buffers: the
// skew gives them away on the zero-copy send path and every roll hands
// the blocks along the ring the same way, so the whole phase moves no
// payload bytes on the host. Callers must not use myA or myB after the
// call.
func cannonRoll(pr *simulator.Proc, mesh topology.Torus2D, rankOf func(int) int, i, j int, myA, myB *matrix.Dense, tags cannonTags) *matrix.Dense {
	s := mesh.R
	me := mesh.RankAt(i, j)
	aRows, aCols := myA.Rows, myA.Cols
	bRows, bCols := myB.Rows, myB.Cols

	// Skew: A_ij to (i, j−i), B_ij to (i−j, j).
	pr.SendFreeOwned(rankOf(mesh.RankAt(i, j-i)), tags.alignA, blockData(myA))
	pr.SendFreeOwned(rankOf(mesh.RankAt(i-j, j)), tags.alignB, blockData(myB))
	aBuf := pr.Recv(rankOf(mesh.RankAt(i, j+i)), tags.alignA)
	bBuf := pr.Recv(rankOf(mesh.RankAt(i+j, j)), tags.alignB)

	c := matrix.New(aRows, bCols)
	for step := 0; step < s; step++ {
		matrix.MulAddInto(c, blockFrom(aBuf, aRows, aCols), blockFrom(bBuf, bRows, bCols))
		pr.Compute(float64(aRows) * float64(aCols) * float64(bCols))
		pr.SendNeighborOwned(rankOf(mesh.Left(me)), tags.shiftA, aBuf)
		aBuf = pr.Recv(rankOf(mesh.Right(me)), tags.shiftA)
		pr.SendNeighborOwned(rankOf(mesh.Up(me)), tags.shiftB, bBuf)
		bBuf = pr.Recv(rankOf(mesh.Down(me)), tags.shiftB)
	}
	pr.Recycle(aBuf)
	pr.Recycle(bBuf)
	return c
}
