package core

import (
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/simulator"
	"matscale/internal/topology"
)

const (
	tagCannonAlignA = 300
	tagCannonAlignB = 301
	tagCannonShiftA = 302
	tagCannonShiftB = 303
)

// Cannon implements Cannon's memory-efficient algorithm (Section 4.2)
// on a √p × √p wraparound mesh: an initial alignment (block A_ij to
// processor (i, j−i), block B_ij to processor (i−j, j)) followed by √p
// steps of multiply-and-roll, A rolling left and B rolling up.
//
// The alignment is a one-to-one permutation along non-conflicting
// paths; the paper ignores its cost on a cut-through hypercube, so it
// moves at zero virtual cost here. Measured parallel time is exactly
// the paper's Eq. (3):
//
//	Tp = n³/p + 2·ts·√p + 2·tw·n²/√p
func Cannon(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
	n, err := checkInputs(m, a, b)
	if err != nil {
		return nil, err
	}
	p := m.P()
	q, err := squareMeshSide(n, p)
	if err != nil {
		return nil, err
	}
	mesh := topology.NewTorus2D(q, q)
	ga := matrix.Partition(a, q, q)
	gb := matrix.Partition(b, q, q)
	identity := func(r int) int { return r }
	tags := cannonTags{alignA: tagCannonAlignA, alignB: tagCannonAlignB, shiftA: tagCannonShiftA, shiftB: tagCannonShiftB}

	var product *matrix.Dense
	sim, err := simulator.Run(m, func(pr *simulator.Proc) {
		i, j := mesh.Coords(pr.Rank())
		c := cannonRoll(pr, mesh, identity, i, j, ga.Block(i, j), gb.Block(i, j), tags)
		gatherGrid(pr, allRanks(p), q, q, tagGatherC, c, &product)
	})
	if err != nil {
		return nil, err
	}
	return newResult("Cannon", product, sim, n, p), nil
}
