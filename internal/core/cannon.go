package core

import (
	"matscale/internal/des"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/simulator"
	"matscale/internal/topology"
)

const (
	tagCannonAlignA = 300
	tagCannonAlignB = 301
	tagCannonShiftA = 302
	tagCannonShiftB = 303
)

// Cannon implements Cannon's memory-efficient algorithm (Section 4.2)
// on a √p × √p wraparound mesh: an initial alignment (block A_ij to
// processor (i, j−i), block B_ij to processor (i−j, j)) followed by √p
// steps of multiply-and-roll, A rolling left and B rolling up.
//
// The alignment is a one-to-one permutation along non-conflicting
// paths; the paper ignores its cost on a cut-through hypercube, so it
// moves at zero virtual cost here. Measured parallel time is exactly
// the paper's Eq. (3):
//
//	Tp = n³/p + 2·ts·√p + 2·tw·n²/√p
func Cannon(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
	n, err := checkInputs(m, a, b)
	if err != nil {
		return nil, err
	}
	p := m.P()
	q, err := squareMeshSide(n, p)
	if err != nil {
		return nil, err
	}
	if des.SystolicEligible(m) {
		return cannonSystolic(m, a, b, n, q)
	}
	mesh := topology.NewTorus2D(q, q)
	ga := matrix.Partition(a, q, q)
	gb := matrix.Partition(b, q, q)
	identity := func(r int) int { return r }
	tags := cannonTags{alignA: tagCannonAlignA, alignB: tagCannonAlignB, shiftA: tagCannonShiftA, shiftB: tagCannonShiftB}

	var product *matrix.Dense
	sim, err := simulator.Run(m, func(pr *simulator.Proc) {
		i, j := mesh.Coords(pr.Rank())
		c := cannonRoll(pr, mesh, identity, i, j, ga.Block(i, j), gb.Block(i, j), tags)
		gatherGrid(pr, allRanks(p), q, q, tagGatherC, c, &product)
	})
	if err != nil {
		return nil, err
	}
	return newResult("Cannon", product, sim, n, p), nil
}

// cannonSystolic runs Cannon on the discrete-event backend's native
// systolic tier: the timed skeleton (align at zero cost, then q steps
// of compute + roll-A-left + roll-B-up, then the zero-cost gather) is
// simulated as synchronous waves with no goroutine per rank, and the
// product is computed directly in the same multiply-accumulate order
// the rolled blocks would visit. Byte-identical to the other engines
// (asserted by internal/des's native differential suite), it reaches
// p = 2^20 ranks in seconds.
func cannonSystolic(m *machine.Machine, a, b *matrix.Dense, n, q int) (*Result, error) {
	p := q * q
	blk := n / q
	mesh := topology.NewTorus2D(q, q)
	spec := des.SystolicSpec{
		P:     p,
		Steps: q,
		Flops: float64(blk) * float64(blk) * float64(blk),
		Words: blk * blk,
		Shifts: []des.Shift{
			{Dst: mesh.Left, Src: mesh.Right},
			{Dst: mesh.Up, Src: mesh.Down},
		},
		PrologueMsgs:  2,
		PrologueWords: 2 * blk * blk,
		GatherRoot:    0,
	}
	sim, err := des.RunSystolic(m, spec)
	if err != nil {
		return nil, err
	}
	return newResult("Cannon", cannonProduct(a, b, q), sim, n, p), nil
}

// cannonProduct multiplies a and b in Cannon's accumulation order:
// block (i, j) accumulates A_{i,w}·B_{w,j} for w = (i+j), (i+j+1), …
// wrapping modulo q — the order the skewed blocks roll past processor
// (i, j). The element values equal what the message-passing run
// gathers, bit for bit, because the per-element addition sequence is
// the same.
func cannonProduct(a, b *matrix.Dense, q int) *matrix.Dense {
	n := a.Rows
	if q == n {
		// One element per processor: c_ij is a rotated dot product of
		// row i of A and column j of B. Walk the transposed B row-wise
		// so both operands stream sequentially.
		bt := make([]float64, n*n)
		for w := 0; w < n; w++ {
			for j := 0; j < n; j++ {
				bt[j*n+w] = b.Data[w*n+j]
			}
		}
		c := matrix.New(n, n)
		for i := 0; i < n; i++ {
			arow := a.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := bt[j*n : (j+1)*n]
				w := i + j
				if w >= n {
					w -= n
				}
				var s float64
				for t := w; t < n; t++ {
					s += arow[t] * brow[t]
				}
				for t := 0; t < w; t++ {
					s += arow[t] * brow[t]
				}
				c.Data[i*n+j] = s
			}
		}
		return c
	}
	blk := n / q
	ga := matrix.Partition(a, q, q)
	gb := matrix.Partition(b, q, q)
	c := matrix.New(n, n)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			cblk := matrix.New(blk, blk)
			for t := 0; t < q; t++ {
				w := (i + j + t) % q
				matrix.MulAddInto(cblk, ga.Block(i, w), gb.Block(w, j))
			}
			c.SetBlock(i*blk, j*blk, cblk)
		}
	}
	return c
}
