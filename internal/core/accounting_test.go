package core

import (
	"math"
	"testing"

	"matscale/internal/matrix"
	"matscale/internal/model"
)

// Exact message and word counts for Cannon's algorithm: every
// processor sends 2 alignment messages (free), 2 rolls per step for √p
// steps, and one gather message (free) except rank 0.
func TestCannonMessageAccounting(t *testing.T) {
	n, p, q := 16, 16, 4
	bs := n / q
	res := runCase(t, "Cannon", Cannon, testHypercube(p), n)
	wantMsgs := 2*p + 2*p*q + (p - 1)
	if res.Sim.Messages != wantMsgs {
		t.Fatalf("messages = %d, want %d", res.Sim.Messages, wantMsgs)
	}
	wantWords := (2*p + 2*p*q + (p - 1)) * bs * bs
	if res.Sim.Words != wantWords {
		t.Fatalf("words = %d, want %d", res.Sim.Words, wantWords)
	}
}

// TotalComm must equal the aggregate of the per-processor charged
// communication: for Cannon, 2√p·(ts + tw·n²/p) on each of p
// processors (the alignment and the verification gather are free).
func TestCannonTotalCommMatchesModel(t *testing.T) {
	n, p := 16, 16
	res := runCase(t, "Cannon", Cannon, testHypercube(p), n)
	q := 4
	c := testParams.Ts + testParams.Tw*float64(n*n/p)
	want := float64(p) * 2 * float64(q) * c
	if math.Abs(res.Sim.TotalComm-want) > 1e-9*want {
		t.Fatalf("TotalComm = %v, want %v", res.Sim.TotalComm, want)
	}
}

// TotalCompute must equal W = n³ exactly for every algorithm: the
// parallel formulations perform no redundant arithmetic (under the
// paper's unit-cost convention where reduction additions are pre-paid).
func TestTotalComputeEqualsW(t *testing.T) {
	cases := []struct {
		name string
		alg  Algorithm
		n, p int
	}{
		{"Simple", Simple, 16, 16},
		{"Cannon", Cannon, 16, 16},
		{"Fox", Fox, 16, 16},
		{"FoxPipelined", FoxPipelined, 16, 16},
		{"FoxMesh", FoxMesh, 16, 16},
		{"Berntsen", Berntsen, 16, 64},
		{"GK", GK, 16, 64},
		{"GKImproved", GKImprovedBroadcast, 16, 64},
	}
	for _, c := range cases {
		m := testHypercube(c.p)
		if c.name == "FoxMesh" {
			m = testMesh(c.p)
		}
		res := runCase(t, c.name, c.alg, m, c.n)
		w := float64(c.n) * float64(c.n) * float64(c.n)
		if res.Sim.TotalCompute != w {
			t.Errorf("%s: TotalCompute = %v, want W = %v", c.name, res.Sim.TotalCompute, w)
		}
	}
}

// The overhead decomposition To = TotalComm + IdleTime holds for every
// algorithm (with W = TotalCompute = n³).
func TestOverheadDecomposesIntoCommAndIdle(t *testing.T) {
	for _, c := range []struct {
		name string
		alg  Algorithm
		n, p int
	}{
		{"Cannon", Cannon, 16, 16},
		{"GK", GK, 16, 64},
		{"Berntsen", Berntsen, 16, 64},
	} {
		res := runCase(t, c.name, c.alg, testHypercube(c.p), c.n)
		to := res.Overhead()
		sum := res.Sim.TotalComm + res.Sim.IdleTime()
		if math.Abs(to-sum) > 1e-6*math.Max(1, to) {
			t.Errorf("%s: To = %v but comm+idle = %v", c.name, to, sum)
		}
	}
}

// Cannon is perfectly balanced: all processors finish at the same
// virtual time, so overhead is pure communication with zero idle.
func TestCannonHasNoIdleTime(t *testing.T) {
	res := runCase(t, "Cannon", Cannon, testHypercube(16), 16)
	if idle := res.Sim.IdleTime(); math.Abs(idle) > 1e-9 {
		t.Fatalf("Cannon idle time = %v, want 0", idle)
	}
	for i, clk := range res.Sim.ProcClocks {
		if clk != res.Sim.Tp {
			t.Fatalf("processor %d finished at %v, Tp = %v", i, clk, res.Sim.Tp)
		}
	}
}

// The GK algorithm moves strictly fewer words than the simple
// algorithm at the same configuration (its sub-blocks are smaller) —
// the memory/communication tradeoff at the message level.
func TestWordVolumesOrdering(t *testing.T) {
	n, p := 16, 64
	gk := runCase(t, "GK", GK, testHypercube(p), n)
	simple := runCase(t, "Simple", Simple, testHypercube(p), n)
	if gk.Sim.Words >= simple.Sim.Words {
		t.Fatalf("GK moved %d words, Simple %d — expected GK < Simple", gk.Sim.Words, simple.Sim.Words)
	}
}

// Determinism at the algorithm level: repeated runs produce identical
// timing and identical products.
func TestAlgorithmDeterminism(t *testing.T) {
	a := matrix.RandomInts(16, 16, 99)
	b := matrix.RandomInts(16, 16, 100)
	first, err := GK(testHypercube(64), a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		res, err := GK(testHypercube(64), a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sim.Tp != first.Sim.Tp || res.Sim.Messages != first.Sim.Messages {
			t.Fatalf("run %d: Tp/messages differ: %v/%d vs %v/%d",
				i, res.Sim.Tp, res.Sim.Messages, first.Sim.Tp, first.Sim.Messages)
		}
		if matrix.MaxAbsDiff(res.C, first.C) != 0 {
			t.Fatalf("run %d: product differs", i)
		}
	}
}

// Large-scale smoke: the full GK pipeline at 4096 processors stays
// correct, exact and fast enough to run in CI.
func TestLargeScaleGKSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale smoke skipped in -short mode")
	}
	n, p := 64, 4096
	res := runCase(t, "GK", GK, testHypercube(p), n)
	wantTp(t, "GK", res, model.ExactGKTp(testParams, n, p))
}

// Large-scale Cannon: 1024 processors, every clock identical.
func TestLargeScaleCannonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale smoke skipped in -short mode")
	}
	n, p := 64, 1024
	res := runCase(t, "Cannon", Cannon, testHypercube(p), n)
	wantTp(t, "Cannon", res, model.ExactCannonTp(testParams, n, p))
	for _, clk := range res.Sim.ProcClocks {
		if clk != res.Sim.Tp {
			t.Fatal("Cannon clocks diverged at scale")
		}
	}
}
