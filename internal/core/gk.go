package core

import (
	"math"

	"matscale/internal/collective"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/simulator"
	"matscale/internal/topology"
)

const (
	tagGKRouteA  = 600
	tagGKBcastA  = 610
	tagGKRouteB  = 630
	tagGKBcastB  = 640
	tagGKReduce  = 660
	tagGKBarrier = 680
)

// gkVariant selects the broadcast scheme used by the GK algorithm.
type gkVariant int

const (
	gkNaive    gkVariant = iota // simple binomial trees (Eq. 7 / Eq. 18)
	gkImproved                  // Johnsson–Ho broadcast (Section 5.4.1)
	gkAllPort                   // all-port communication (Section 7.2, Eq. 17)
)

// GK implements the paper's own contribution (Section 4.6): the
// Gupta–Kumar variant of the DNS algorithm that works for any
// p = 2^(3q) ≤ n³ processors. The p processors form a p^(1/3)-sided
// logical cube; matrix sub-blocks of n/p^(1/3) × n/p^(1/3) elements
// replace the single elements of the one-element-per-processor DNS
// algorithm.
//
// Stages (with q₃ = p^(1/3), block word count m = n²/p^(2/3)):
//
//  1. A blocks route (0,j,k)→(k,j,k) and broadcast along the third
//     axis; B blocks route (0,j,k)→(j,j,k) and broadcast along the
//     second axis — 4·log₂q₃ message steps.
//  2. Every processor multiplies its A and B blocks: n³/p unit ops.
//  3. The p^(1/3) partial products along the first axis are summed by a
//     binomial tree into the i=0 face — log₂q₃ message steps.
//
// On a store-and-forward hypercube the measured time is exactly Eq. (7):
//
//	Tp = n³/p + (5/3)·ts·log₂p + (5/3)·tw·(n²/p^(2/3))·log₂p
//
// and on a fully connected machine (the CM-5 of Section 9, where each
// routing step is a single hop) exactly Eq. (18):
//
//	Tp = n³/p + ts·(log₂p + 2) + tw·(n²/p^(2/3))·(log₂p + 2)
func GK(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
	return gkImpl(m, a, b, gkNaive)
}

// GKImprovedBroadcast is the Section 5.4.1 variant: all five
// communication stages use the optimized one-to-all broadcast of
// Johnsson and Ho, giving total communication 5·JH(m, p^(1/3)) — the
// closed form the paper writes as
//
//	5·tw·n²/p^(2/3) + (5/3)·ts·log₂p + 10·(n/p^(1/3))·sqrt((1/3)·ts·tw·log₂p)
//
// (transport 4/5 of it, gather/sum the rest).
func GKImprovedBroadcast(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
	return gkImpl(m, a, b, gkImproved)
}

// GKAllPort is the Section 7.2 variant on a hypercube with simultaneous
// communication on all ports; its five stages are charged one fifth of
// the Eq. (17) communication total each:
//
//	Tp = n³/p + ts·log₂p + 9·tw·n²/(p^(2/3)·log₂p) + 6·(n/p^(1/3))·sqrt(ts·tw)
func GKAllPort(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
	return gkImpl(m, a, b, gkAllPort)
}

// GKTraced runs the GK algorithm with event tracing enabled, returning
// the per-processor virtual-time schedule alongside the result — the
// paper's three-stage structure (distribute, multiply, reduce) is
// visible in the trace timeline (`matscale trace -op gk`).
func GKTraced(m *machine.Machine, a, b *matrix.Dense) (*Result, *simulator.Trace, error) {
	body, finish, err := gkBody(m, a, b, gkNaive)
	if err != nil {
		return nil, nil, err
	}
	sim, tr, err := simulator.RunTraced(m, body)
	if err != nil {
		return nil, nil, err
	}
	return finish(sim), tr, nil
}

func gkImpl(m *machine.Machine, a, b *matrix.Dense, variant gkVariant) (*Result, error) {
	body, finish, err := gkBody(m, a, b, variant)
	if err != nil {
		return nil, err
	}
	sim, err := simulator.Run(m, body)
	if err != nil {
		return nil, err
	}
	return finish(sim), nil
}

// gkBody builds the per-processor program and a finisher that
// assembles the Result once the simulation has run.
func gkBody(m *machine.Machine, a, b *matrix.Dense, variant gkVariant) (func(*simulator.Proc), func(*simulator.Result) *Result, error) {
	n, err := checkInputs(m, a, b)
	if err != nil {
		return nil, nil, err
	}
	p := m.P()
	q3, err := cubeSide(n, p)
	if err != nil {
		return nil, nil, err
	}
	bs := n / q3
	grid := topology.NewGrid3D(q3)
	ga := matrix.Partition(a, q3, q3)
	gb := matrix.Partition(b, q3, q3)
	everyone := allRanks(p)

	// Per-stage closed-form charge for the non-naive variants.
	var stageCost float64
	switch variant {
	case gkImproved:
		stageCost = collective.JohnssonHoTime(m.Ts, m.Tw, bs*bs, q3)
	case gkAllPort:
		stageCost = gkAllPortComm(m.Ts, m.Tw, n, p) / 5
	}

	bcast := func(pr *simulator.Proc, group []int, rootIdx, tag int, data []float64) []float64 {
		switch variant {
		case gkNaive:
			return collective.Broadcast(pr, group, rootIdx, tag, data)
		default:
			return collective.BroadcastCharged(pr, group, rootIdx, tag, data, stageCost)
		}
	}
	route := func(pr *simulator.Proc, dst, tag int, data []float64) {
		switch variant {
		case gkNaive:
			// Each grid block is routed by exactly one face rank, so it
			// is given away on the zero-copy send path.
			pr.SendOwned(dst, tag, data)
		default:
			if dst == pr.Rank() {
				pr.SendFree(dst, tag, data)
			} else {
				pr.ChargedSend(dst, tag, data, stageCost)
			}
		}
	}

	var product *matrix.Dense
	body := func(pr *simulator.Proc) {
		i, j, k := grid.Coords(pr.Rank())
		barrier := 0
		sync := func() {
			collective.BarrierFree(pr, everyone, tagGKBarrier+barrier)
			barrier++
		}

		// Stage 1a: route A(j,k) from the i=0 face to (k,j,k).
		var aBuf []float64
		if i == 0 {
			route(pr, grid.RankOf(k, j, k), tagGKRouteA, blockData(ga.Block(j, k)))
		}
		if i == k {
			aBuf = pr.Recv(grid.RankOf(0, j, k), tagGKRouteA)
		}
		sync()

		// Stage 1b: broadcast A along the third axis: (k,j,k) → (k,j,*).
		aBuf = bcast(pr, grid.AxisLine(2, i, j), i, tagGKBcastA, aBuf)
		sync()

		// Stage 1c: route B(j,k) from the i=0 face to (j,j,k).
		var bBuf []float64
		if i == 0 {
			route(pr, grid.RankOf(j, j, k), tagGKRouteB, blockData(gb.Block(j, k)))
		}
		if i == j {
			bBuf = pr.Recv(grid.RankOf(0, j, k), tagGKRouteB)
		}
		sync()

		// Stage 1d: broadcast B along the second axis: (j,j,k) → (j,*,k).
		bBuf = bcast(pr, grid.AxisLine(1, i, k), i, tagGKBcastB, bBuf)
		sync()

		// Stage 2: every processor multiplies its blocks. Processor
		// (i,j,k) holds A(j,i) and B(i,k).
		c := matrix.Mul(blockFrom(aBuf, bs, bs), blockFrom(bBuf, bs, bs))
		pr.Compute(float64(bs) * float64(bs) * float64(bs))
		pr.Recycle(aBuf)
		pr.Recycle(bBuf)
		sync()

		// Stage 3: sum the q₃ partials along the first axis into i=0.
		var sum []float64
		switch variant {
		case gkNaive:
			sum = collective.Reduce(pr, grid.AxisLine(0, j, k), 0, tagGKReduce, blockData(c))
		default:
			sum = collective.ReduceCharged(pr, grid.AxisLine(0, j, k), 0, tagGKReduce, blockData(c), stageCost)
		}
		releaseBlock(pr, c) // the reduction copied it; the partial is dead

		// Verification gather from the i=0 face.
		holders := make([]int, q3*q3)
		for jj := 0; jj < q3; jj++ {
			for kk := 0; kk < q3; kk++ {
				holders[jj*q3+kk] = grid.RankOf(0, jj, kk)
			}
		}
		if i == 0 {
			gatherGrid(pr, holders, q3, q3, tagGatherC, blockFrom(sum, bs, bs), &product)
		}
	}
	name := "GK"
	switch variant {
	case gkImproved:
		name = "GKImprovedBroadcast"
	case gkAllPort:
		name = "GKAllPort"
	}
	finish := func(sim *simulator.Result) *Result {
		return newResult(name, product, sim, n, p)
	}
	return body, finish, nil
}

// gkAllPortComm is the communication total of Eq. (17):
// ts·log₂p + 9·tw·n²/(p^(2/3)·log₂p) + 6·(n/p^(1/3))·sqrt(ts·tw).
func gkAllPortComm(ts, tw float64, n, p int) float64 {
	if p == 1 {
		return 0
	}
	logp := math.Log2(float64(p))
	m := float64(n) * float64(n) / math.Pow(float64(p), 2.0/3.0)
	bs := float64(n) / math.Cbrt(float64(p))
	return ts*logp + 9*tw*m/logp + 6*bs*math.Sqrt(ts*tw)
}
