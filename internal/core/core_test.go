package core

import (
	"math"
	"strings"
	"testing"

	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/model"
)

// runCase executes one algorithm on deterministic integer matrices and
// checks the product against the serial algorithm bit-exactly (integer
// entries make every summation order exact in float64).
func runCase(t *testing.T, name string, alg Algorithm, m *machine.Machine, n int) *Result {
	t.Helper()
	a := matrix.RandomInts(n, n, 1000+uint64(n))
	b := matrix.RandomInts(n, n, 2000+uint64(n))
	res, err := alg(m, a, b)
	if err != nil {
		t.Fatalf("%s n=%d p=%d: %v", name, n, m.P(), err)
	}
	want := matrix.Mul(a, b)
	if res.C == nil {
		t.Fatalf("%s n=%d p=%d: no product assembled", name, n, m.P())
	}
	if d := matrix.MaxAbsDiff(res.C, want); d != 0 {
		t.Fatalf("%s n=%d p=%d: product differs from serial by %v", name, n, m.P(), d)
	}
	if res.N != n || res.P != m.P() {
		t.Fatalf("%s: result metadata %d/%d", name, res.N, res.P)
	}
	return res
}

func wantTp(t *testing.T, name string, res *Result, want float64) {
	t.Helper()
	if math.Abs(res.Sim.Tp-want) > 1e-9*math.Max(1, want) {
		t.Fatalf("%s n=%d p=%d: Tp = %v, want %v (Δ=%g)", name, res.N, res.P, res.Sim.Tp, want, res.Sim.Tp-want)
	}
}

var testParams = model.Params{Ts: 17, Tw: 3}

func testHypercube(p int) *machine.Machine {
	return machine.Hypercube(p, testParams.Ts, testParams.Tw)
}

func TestSimpleCorrectAndExact(t *testing.T) {
	for _, c := range []struct{ n, p int }{{8, 1}, {8, 4}, {12, 4}, {8, 16}, {16, 16}, {16, 64}} {
		res := runCase(t, "Simple", Simple, testHypercube(c.p), c.n)
		wantTp(t, "Simple", res, model.ExactSimpleTp(testParams, c.n, c.p))
	}
}

func TestCannonCorrectAndExact(t *testing.T) {
	for _, c := range []struct{ n, p int }{{8, 1}, {8, 4}, {12, 4}, {6, 9}, {8, 16}, {16, 16}, {16, 64}} {
		res := runCase(t, "Cannon", Cannon, testHypercube2(c.p), c.n)
		if c.p == 9 || c.p == 1 {
			continue // non-power-of-two meshes have no exact hypercube form
		}
		wantTp(t, "Cannon", res, model.ExactCannonTp(testParams, c.n, c.p))
	}
}

// testHypercube2 returns a hypercube when p is a power of two and a
// fully connected machine otherwise (Cannon runs on any square mesh).
func testHypercube2(p int) *machine.Machine {
	if p&(p-1) == 0 {
		return testHypercube(p)
	}
	m := machine.CM5(p)
	m.Ts, m.Tw = testParams.Ts, testParams.Tw
	return m
}

func TestCannonExactOnNonPow2Mesh(t *testing.T) {
	// On a fully connected machine every transfer is one hop, so Eq. (3)
	// holds for any perfect square p.
	m := testHypercube2(9)
	res := runCase(t, "Cannon", Cannon, m, 6)
	wantTp(t, "Cannon", res, model.ExactCannonTp(testParams, 6, 9))
}

func TestFoxCorrectAndExact(t *testing.T) {
	for _, c := range []struct{ n, p int }{{8, 1}, {8, 4}, {12, 4}, {8, 16}, {16, 64}} {
		res := runCase(t, "Fox", Fox, testHypercube(c.p), c.n)
		wantTp(t, "Fox", res, model.ExactFoxTp(testParams, c.n, c.p))
	}
}

func TestFoxPipelinedCorrectAndExact(t *testing.T) {
	for _, c := range []struct{ n, p int }{{8, 1}, {8, 4}, {12, 4}, {8, 16}, {16, 64}} {
		res := runCase(t, "FoxPipelined", FoxPipelined, testHypercube(c.p), c.n)
		wantTp(t, "FoxPipelined", res, model.ExactFoxPipelinedTp(testParams, c.n, c.p))
	}
}

func TestBerntsenCorrectAndExact(t *testing.T) {
	for _, c := range []struct{ n, p int }{{8, 1}, {8, 8}, {16, 8}, {16, 64}, {32, 64}} {
		res := runCase(t, "Berntsen", Berntsen, testHypercube(c.p), c.n)
		wantTp(t, "Berntsen", res, model.ExactBerntsenTp(testParams, c.n, c.p))
	}
}

func TestDNSCorrectAndExact(t *testing.T) {
	for _, c := range []struct{ n, p, grid int }{
		{4, 16, 4},   // r=1: degenerate, pure Cannon in one layer
		{4, 32, 4},   // r=2, u=2
		{4, 64, 4},   // r=4, u=1: the one-element-per-processor limit
		{8, 128, 8},  // r=2, u=4
		{8, 32, 4},   // blocks of 2x2, r=2, u=2
		{12, 16, 4},  // blocks of 3x3, r=1
		{16, 256, 8}, // blocks of 2x2, r=4, u=2
	} {
		alg := func(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
			return DNSWithGrid(m, a, b, c.grid)
		}
		res := runCase(t, "DNS", alg, testHypercube(c.p), c.n)
		wantTp(t, "DNS", res, model.ExactDNSTp(testParams, c.n, c.p, c.grid))
	}
}

func TestDNSElementEntryPoint(t *testing.T) {
	// DNS(m, a, b) uses gridSide = n (one block element per processor).
	res := runCase(t, "DNS", DNS, testHypercube(64), 4)
	wantTp(t, "DNS", res, model.ExactDNSTp(testParams, 4, 64, 4))
	if _, err := DNS(testHypercube(8), matrix.RandomInts(4, 4, 1), matrix.RandomInts(4, 4, 2)); err == nil || !strings.Contains(err.Error(), "p ≥ n²") {
		t.Fatalf("DNS below applicability: err = %v", err)
	}
}

func TestGKCorrectAndExactEq7(t *testing.T) {
	for _, c := range []struct{ n, p int }{{8, 1}, {8, 8}, {12, 8}, {8, 64}, {16, 64}, {16, 512}} {
		res := runCase(t, "GK", GK, testHypercube(c.p), c.n)
		wantTp(t, "GK", res, model.ExactGKTp(testParams, c.n, c.p))
		// Eq. (7) as printed agrees with the exact form on a hypercube.
		paper := model.PaperGKTp(testParams, float64(c.n), float64(c.p))
		if math.Abs(res.Sim.Tp-paper) > 1e-9*math.Max(1, paper) {
			t.Fatalf("GK n=%d p=%d: Tp = %v, Eq.(7) = %v", c.n, c.p, res.Sim.Tp, paper)
		}
	}
}

func TestGKOnCM5MatchesEq18(t *testing.T) {
	for _, c := range []struct{ n, p int }{{8, 8}, {16, 64}, {16, 512}} {
		m := machine.CM5(c.p)
		m.Ts, m.Tw = testParams.Ts, testParams.Tw
		res := runCase(t, "GK/CM5", GK, m, c.n)
		wantTp(t, "GK/CM5", res, model.ExactGKCM5Tp(testParams, c.n, c.p))
		paper := model.PaperGKCM5Tp(testParams, float64(c.n), float64(c.p))
		if math.Abs(res.Sim.Tp-paper) > 1e-9*math.Max(1, paper) {
			t.Fatalf("GK/CM5 n=%d p=%d: Tp = %v, Eq.(18) = %v", c.n, c.p, res.Sim.Tp, paper)
		}
	}
}

func TestGKImprovedCorrectAndExact(t *testing.T) {
	for _, c := range []struct{ n, p int }{{8, 8}, {16, 64}, {16, 512}} {
		res := runCase(t, "GKImproved", GKImprovedBroadcast, testHypercube(c.p), c.n)
		wantTp(t, "GKImproved", res, model.ExactGKImprovedTp(testParams, c.n, c.p))
	}
	// For deep trees and large messages the Johnsson–Ho broadcast must
	// beat the naive binomial tree (for small messages it legitimately
	// loses — the granularity limit Section 5.4.1 discusses).
	for _, c := range []struct{ n, p int }{{64, 512}, {256, 512}} {
		naive := model.ExactGKTp(testParams, c.n, c.p)
		improved := model.ExactGKImprovedTp(testParams, c.n, c.p)
		if improved > naive {
			t.Fatalf("n=%d p=%d: improved GK %v slower than naive %v", c.n, c.p, improved, naive)
		}
	}
}

func TestGKAllPortCorrectAndExactEq17(t *testing.T) {
	for _, c := range []struct{ n, p int }{{8, 8}, {16, 64}} {
		m := testHypercube(c.p)
		m.AllPort = true
		res := runCase(t, "GKAllPort", GKAllPort, m, c.n)
		wantTp(t, "GKAllPort", res, model.ExactGKAllPortTp(testParams, c.n, c.p))
	}
}

func TestSimpleAllPortCorrectAndExactEq16(t *testing.T) {
	for _, c := range []struct{ n, p int }{{8, 4}, {16, 16}, {16, 64}} {
		m := testHypercube(c.p)
		m.AllPort = true
		res := runCase(t, "SimpleAllPort", SimpleAllPort, m, c.n)
		wantTp(t, "SimpleAllPort", res, model.ExactSimpleAllPortTp(testParams, c.n, c.p))
		paper := model.PaperSimpleAllPortTp(testParams, float64(c.n), float64(c.p))
		if math.Abs(res.Sim.Tp-paper) > 1e-9*math.Max(1, paper) {
			t.Fatalf("SimpleAllPort n=%d p=%d: Tp = %v, Eq.(16) = %v", c.n, c.p, res.Sim.Tp, paper)
		}
	}
}

func TestResultMetrics(t *testing.T) {
	res := runCase(t, "Cannon", Cannon, testHypercube(4), 8)
	w := float64(8 * 8 * 8)
	if res.W() != w {
		t.Fatalf("W = %v", res.W())
	}
	if e := res.Efficiency(); e <= 0 || e >= 1 {
		t.Fatalf("Efficiency = %v", e)
	}
	if s := res.Speedup(); math.Abs(s-4*res.Efficiency()) > 1e-12 {
		t.Fatalf("Speedup %v inconsistent with efficiency %v", s, res.Efficiency())
	}
	if to := res.Overhead(); math.Abs(to-(4*res.Sim.Tp-w)) > 1e-9 {
		t.Fatalf("Overhead = %v", to)
	}
}

func TestConfigurationErrors(t *testing.T) {
	a8 := matrix.RandomInts(8, 8, 1)
	b8 := matrix.RandomInts(8, 8, 2)
	cases := []struct {
		name string
		run  func() error
		want string
	}{
		{"rectangular", func() error {
			_, err := Cannon(testHypercube(4), matrix.New(4, 5), matrix.New(5, 4))
			return err
		}, "square"},
		{"mismatched", func() error {
			_, err := Cannon(testHypercube(4), matrix.New(4, 4), matrix.New(8, 8))
			return err
		}, "square"},
		{"nonsquare p", func() error {
			_, err := Cannon(testHypercube(8), a8, b8)
			return err
		}, "perfect square"},
		{"indivisible mesh", func() error {
			_, err := Cannon(testHypercube(16), matrix.New(6, 6), matrix.New(6, 6))
			return err
		}, "does not divide"},
		{"noncube p", func() error {
			_, err := GK(testHypercube(16), a8, b8)
			return err
		}, "perfect cube"},
		{"cube side indivisible", func() error {
			_, err := GK(testHypercube(512), matrix.New(12, 12), matrix.New(12, 12))
			return err
		}, "does not divide"},
		{"berntsen divisibility", func() error {
			_, err := Berntsen(testHypercube(8), matrix.New(10, 10), matrix.New(10, 10))
			return err
		}, "divide"},
		{"berntsen concurrency", func() error {
			_, err := Berntsen(testHypercube(512), matrix.New(16, 16), matrix.New(16, 16))
			return err
		}, "n^(3/2)"},
		{"dns bad grid", func() error {
			_, err := DNSWithGrid(testHypercube(16), a8, b8, 3)
			return err
		}, "divide"},
		{"dns bad r", func() error {
			_, err := DNSWithGrid(machine.CM5(48), a8, b8, 4)
			return err
		}, "power of two"},
		{"dns r exceeds grid", func() error {
			_, err := DNSWithGrid(testHypercube(128), a8, b8, 4)
			return err
		}, "divide"},
		{"fox non-pow2 mesh", func() error {
			m := testHypercube2(9)
			_, err := Fox(m, matrix.New(6, 6), matrix.New(6, 6))
			return err
		}, "power-of-two"},
	}
	for _, c := range cases {
		err := c.run()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// All algorithms must agree with each other on the same inputs.
func TestCrossAlgorithmAgreement(t *testing.T) {
	n := 16
	a := matrix.RandomInts(n, n, 7)
	b := matrix.RandomInts(n, n, 8)
	want := matrix.Mul(a, b)
	algs := []struct {
		name string
		alg  Algorithm
		p    int
	}{
		{"Simple", Simple, 16},
		{"Cannon", Cannon, 16},
		{"Fox", Fox, 16},
		{"FoxPipelined", FoxPipelined, 16},
		{"Berntsen", Berntsen, 64},
		{"GK", GK, 64},
		{"GKImproved", GKImprovedBroadcast, 64},
	}
	for _, c := range algs {
		res, err := c.alg(testHypercube(c.p), a, b)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if d := matrix.MaxAbsDiff(res.C, want); d != 0 {
			t.Errorf("%s: differs from serial by %v", c.name, d)
		}
	}
}

// GK beats Cannon for small n at fixed p and loses for large n — the
// paper's central experimental claim (Section 9), checked in simulation
// with CM-5 parameters.
func TestGKCannonCrossoverDirection(t *testing.T) {
	p := 64
	mCannon := machine.CM5(p)
	mGK := machine.CM5(p)
	small, big := 16, 192

	gkS := runCase(t, "GK", GK, mGK, small)
	caS := runCase(t, "Cannon", Cannon, mCannon, small)
	if gkS.Sim.Tp >= caS.Sim.Tp {
		t.Errorf("n=%d: GK (%v) should beat Cannon (%v)", small, gkS.Sim.Tp, caS.Sim.Tp)
	}

	gkB := runCase(t, "GK", GK, mGK, big)
	caB := runCase(t, "Cannon", Cannon, mCannon, big)
	if caB.Sim.Tp >= gkB.Sim.Tp {
		t.Errorf("n=%d: Cannon (%v) should beat GK (%v)", big, caB.Sim.Tp, gkB.Sim.Tp)
	}
}

// Section 4.5.1's one-element-per-processor DNS limit: with p = n³
// processors the multiplication completes in O(log n) time — here
// exactly 1 + 5·log₂n·(ts + tw).
func TestDNSOneElementPerProcessorLogTime(t *testing.T) {
	n, p := 8, 512
	res := runCase(t, "DNS/1elem", DNS, testHypercube(p), n)
	want := 1 + 5*3*(testParams.Ts+testParams.Tw) // log₂8 = 3, unit block
	if math.Abs(res.Sim.Tp-want) > 1e-9 {
		t.Fatalf("Tp = %v, want %v = O(log n)", res.Sim.Tp, want)
	}
	// Processor-time product far exceeds W — the processor-inefficiency
	// the paper notes for this extreme.
	if pt := float64(p) * res.Sim.Tp; pt < 10*res.W() {
		t.Fatalf("processor-time product %v should dwarf W %v", pt, res.W())
	}
}

func TestSimpleMemEfficientAllPortCorrectAndExact(t *testing.T) {
	for _, c := range []struct{ n, p int }{{8, 4}, {16, 16}, {16, 64}} {
		m := testHypercube(c.p)
		m.AllPort = true
		res := runCase(t, "SimpleMemEff", SimpleMemEfficientAllPort, m, c.n)
		wantTp(t, "SimpleMemEff", res, model.ExactSimpleMemEffAllPortTp(testParams, c.n, c.p))
	}
}

// Section 7.1: the memory-efficient variant of [18] "has somewhat
// higher execution time" than the memory-hungry Eq. (16) version —
// that is the price of constant storage.
func TestMemEfficientVariantCostsMoreTime(t *testing.T) {
	for _, c := range []struct{ n, p int }{{32, 16}, {64, 64}} {
		eq16 := model.ExactSimpleAllPortTp(testParams, c.n, c.p)
		memEff := model.ExactSimpleMemEffAllPortTp(testParams, c.n, c.p)
		if memEff <= eq16 {
			t.Errorf("n=%d p=%d: mem-efficient Tp %v not above Eq.(16)'s %v", c.n, c.p, memEff, eq16)
		}
	}
}

func TestMemEfficientAllPortRejectsNonPow2Mesh(t *testing.T) {
	m := machine.CM5(36) // q = 6, not a power of two
	m.AllPort = true
	_, err := SimpleMemEfficientAllPort(m, matrix.New(12, 12), matrix.New(12, 12))
	if err == nil || !strings.Contains(err.Error(), "power-of-two") {
		t.Fatalf("err = %v", err)
	}
}

func TestGKTraced(t *testing.T) {
	a := matrix.RandomInts(8, 8, 1)
	b := matrix.RandomInts(8, 8, 2)
	res, tr, err := GKTraced(testHypercube(8), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(res.C, matrix.Mul(a, b)); d != 0 {
		t.Fatalf("traced GK product differs by %v", d)
	}
	wantTp(t, "GKTraced", res, model.ExactGKTp(testParams, 8, 8))
	if tr == nil || len(tr.Events) == 0 {
		t.Fatal("no trace events")
	}
	// Every processor computes exactly once in the naive GK run.
	for r := 0; r < 8; r++ {
		computes := 0
		for _, e := range tr.PerRank(r) {
			if e.Kind == 0 { // EventCompute
				computes++
			}
		}
		if computes != 1 {
			t.Fatalf("rank %d has %d compute events, want 1", r, computes)
		}
	}
	if _, _, err := GKTraced(testHypercube(16), a, b); err == nil {
		t.Fatal("non-cube p accepted")
	}
}
