package core

import (
	"fmt"

	"matscale/internal/collective"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/simulator"
	"matscale/internal/topology"
)

const (
	tagBernAlignA = 500
	tagBernAlignB = 501
	tagBernShiftA = 502
	tagBernShiftB = 503
	tagBernReduce = 520
)

// Berntsen implements Berntsen's communication-efficient hypercube
// algorithm (Section 4.4). With p = 2^(3q) processors, matrix A is
// split by columns and B by rows into s = 2^q bands, so that
// C = Σ_c A_c·B_c is a sum of s outer products. The hypercube splits
// into s subcubes of s×s processors; subcube c computes A_c·B_c with
// Cannon's algorithm on rectangular blocks (A blocks of n/s × n/s²,
// B blocks of n/s² × n/s), and the s partial products are summed by
// recursive halving across subcubes, leaving C distributed with n²/p
// elements per processor.
//
// The algorithm requires p ≤ n^(3/2) (its limited concurrency is what
// gives it the worst isoefficiency, O(p²), despite the smallest
// communication overhead). Measured parallel time is exactly
//
//	Tp = n³/p + 2·p^(1/3)·(ts + tw·n²/p)
//	     + ts·(1/3)·log₂p + tw·(n²/p^(2/3))·(1 − p^(-1/3))
//
// which is the paper's Eq. (5) with the reduction's exact 1−1/s factor
// (the paper rounds it up to 1, writing 3·tw·n²/p^(2/3) in total).
func Berntsen(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
	n, err := checkInputs(m, a, b)
	if err != nil {
		return nil, err
	}
	p := m.P()
	s, err := cubeSide(n, p)
	if err != nil {
		return nil, err
	}
	// p ≤ n^(3/2) written as p² ≤ n³, exact in float64 for the sizes in
	// range (math.Pow(n, 1.5) is not exact even on the boundary).
	if float64(p)*float64(p) > float64(n)*float64(n)*float64(n) {
		return nil, fmt.Errorf("core: Berntsen requires p ≤ n^(3/2), got p=%d n=%d", p, n)
	}
	if n%(s*s) != 0 {
		return nil, fmt.Errorf("core: Berntsen needs p^(2/3) = %d to divide n = %d", s*s, n)
	}

	mesh := topology.NewTorus2D(s, s)
	aBands := matrix.ColumnBands(a, s) // n × n/s each
	bBands := matrix.RowBands(b, s)    // n/s × n each
	bh := n / s                        // product block side
	sliceLen := bh * bh / s            // words per processor after reduce-scatter
	rowsPerSlice := sliceLen / bh      // the slice is whole rows of the block

	var product *matrix.Dense
	sim, err := simulator.Run(m, func(pr *simulator.Proc) {
		cube := pr.Rank() / (s * s)
		meshRank := pr.Rank() % (s * s)
		i, j := mesh.Coords(meshRank)
		base := cube * s * s
		rankOf := func(r int) int { return base + r }

		myA := matrix.Partition(aBands[cube], s, s).Block(i, j) // n/s × n/s²
		myB := matrix.Partition(bBands[cube], s, s).Block(i, j) // n/s² × n/s
		tags := cannonTags{alignA: tagBernAlignA, alignB: tagBernAlignB, shiftA: tagBernShiftA, shiftB: tagBernShiftB}
		partial := cannonRoll(pr, mesh, rankOf, i, j, myA, myB, tags) // n/s × n/s

		// Sum the s partial products across subcubes; each processor
		// keeps a 1/s slice of its block's total.
		group := make([]int, s)
		for c := range group {
			group[c] = c*s*s + meshRank
		}
		slice, off := collective.ReduceScatter(pr, group, tagBernReduce, blockData(partial))
		releaseBlock(pr, partial) // ReduceScatter copied it; the block is dead

		// Verification gather: rank 0 reassembles C from the p slices.
		if pr.Rank() != 0 {
			pr.SendFreeOwned(0, tagGatherC, slice)
			return
		}
		cFull := matrix.New(n, n)
		for r := 0; r < p; r++ {
			var sl []float64
			var o int
			if r == 0 {
				sl, o = slice, off
			} else {
				sl = pr.Recv(r, tagGatherC)
				o = (r / (s * s)) * sliceLen // offset is determined by the subcube index
			}
			mr := r % (s * s)
			bi, bj := mesh.Coords(mr)
			r0 := bi*bh + o/bh
			blk := blockFrom(sl, rowsPerSlice, bh)
			cFull.SetBlock(r0, bj*bh, blk)
			if r != 0 {
				releaseBlock(pr, blk)
			}
		}
		product = cFull
	})
	if err != nil {
		return nil, err
	}
	return newResult("Berntsen", product, sim, n, p), nil
}
