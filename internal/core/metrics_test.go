package core

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"matscale/internal/machine"
	"matscale/internal/matrix"
)

// observed returns NCube2(p) with metrics collection on.
func observed(p int) *machine.Machine {
	m := machine.NCube2(p)
	m.CollectMetrics = true
	return m
}

// invariantCases lists every formulation with a geometry it accepts on
// a 64-processor hypercube (p = 64 = 8² = 4³).
var invariantCases = []struct {
	name string
	alg  Algorithm
	n    int
}{
	{"Simple", Simple, 16},
	{"SimpleAllPort", SimpleAllPort, 16},
	{"SimpleMemEfficientAllPort", SimpleMemEfficientAllPort, 16},
	{"Cannon", Cannon, 16},
	{"Fox", Fox, 16},
	{"FoxPipelined", FoxPipelined, 16},
	{"FoxAsync", FoxAsync, 16},
	{"Berntsen", Berntsen, 16},
	{"GK", GK, 16},
	{"GKImprovedBroadcast", GKImprovedBroadcast, 16},
	{"GKAllPort", GKAllPort, 16},
	{"DNS", DNS, 8}, // plain DNS needs p ≥ n²: n = 8 on p = 64
}

// TestPerRankTimeBudget asserts the accounting contract of the
// observability layer on every algorithm: each rank's virtual time
// splits exactly into compute + send + idle summing to Tp, and the
// measured overhead equals To = p·Tp − n³ with no error at all.
func TestPerRankTimeBudget(t *testing.T) {
	for _, tc := range invariantCases {
		t.Run(tc.name, func(t *testing.T) {
			m := observed(64)
			a := matrix.RandomInts(tc.n, tc.n, 1)
			b := matrix.RandomInts(tc.n, tc.n, 2)
			res, err := tc.alg(m, a, b)
			if err != nil {
				t.Fatal(err)
			}
			mt := res.Metrics
			if mt == nil {
				t.Fatal("Metrics nil with CollectMetrics set")
			}
			if mt.P != 64 || len(mt.Ranks) != 64 {
				t.Fatalf("P = %d, ranks = %d", mt.P, len(mt.Ranks))
			}
			tp := res.Sim.Tp
			if mt.Tp != tp {
				t.Fatalf("Metrics.Tp = %v, Sim.Tp = %v", mt.Tp, tp)
			}
			for _, r := range mt.Ranks {
				if got := r.Compute + r.Send + r.Idle; math.Abs(got-tp) > 1e-9 {
					t.Errorf("rank %d: compute(%v) + send(%v) + idle(%v) = %v, want Tp = %v",
						r.Rank, r.Compute, r.Send, r.Idle, got, tp)
				}
				if r.Finish > tp {
					t.Errorf("rank %d finishes at %v after Tp = %v", r.Rank, r.Finish, tp)
				}
			}
			w := float64(tc.n) * float64(tc.n) * float64(tc.n)
			if want := 64*tp - w; mt.Overhead != want {
				t.Errorf("Overhead = %v, want p·Tp − W = %v exactly", mt.Overhead, want)
			}
			// The decomposition columns cover p·Tp exactly.
			if got := mt.TotalCompute + mt.TotalComm + mt.TotalIdle; math.Abs(got-64*tp) > 1e-6 {
				t.Errorf("ΣCompute+ΣSend+ΣIdle = %v, want p·Tp = %v", got, 64*tp)
			}
			if mt.LoadImbalance < 1 {
				t.Errorf("LoadImbalance = %v < 1", mt.LoadImbalance)
			}
			if mt.Ranks[mt.CriticalRank].Finish != tp {
				t.Errorf("critical rank %d finishes at %v, not Tp = %v",
					mt.CriticalRank, mt.Ranks[mt.CriticalRank].Finish, tp)
			}
		})
	}
}

// TestMetricsDeterministic asserts that two identical runs produce
// byte-identical metrics regardless of goroutine scheduling.
func TestMetricsDeterministic(t *testing.T) {
	run := func() []byte {
		res, err := GK(observed(64), matrix.RandomInts(16, 16, 1), matrix.RandomInts(16, 16, 2))
		if err != nil {
			t.Fatal(err)
		}
		j, err := json.Marshal(res.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	first, second := run(), run()
	if !bytes.Equal(first, second) {
		t.Fatalf("metrics differ between identical runs:\n%s\n%s", first, second)
	}
}

// TestMetricsDoNotPerturbRun asserts collection charges zero virtual
// time: Tp, message and word counts match a plain run exactly.
func TestMetricsDoNotPerturbRun(t *testing.T) {
	a := matrix.RandomInts(16, 16, 1)
	b := matrix.RandomInts(16, 16, 2)
	plain, err := Cannon(machine.NCube2(64), a, b)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := Cannon(observed(64), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Sim.Tp != obs.Sim.Tp || plain.Sim.Messages != obs.Sim.Messages || plain.Sim.Words != obs.Sim.Words {
		t.Fatalf("metrics collection perturbed the run: %+v vs %+v", plain.Sim, obs.Sim)
	}
}

// TestGKChromeTraceValid asserts the Chrome trace_event export of a GK
// run is valid JSON in the trace_event envelope format.
func TestGKChromeTraceValid(t *testing.T) {
	_, tr, err := GKTraced(machine.NCube2(64), matrix.RandomInts(16, 16, 1), matrix.RandomInts(16, 16, 2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(doc["traceEvents"], &events); err != nil {
		t.Fatalf("traceEvents: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	for _, e := range events {
		if _, ok := e["ph"]; !ok {
			t.Fatalf("event without phase: %v", e)
		}
		if _, ok := e["pid"]; !ok {
			t.Fatalf("event without pid: %v", e)
		}
	}
	// Round-trip: re-encoding must succeed (the export is plain data).
	if _, err := json.Marshal(events); err != nil {
		t.Fatal(err)
	}
}
