package core

import (
	"math"
	"testing"

	"matscale/internal/machine"
	"matscale/internal/model"
)

func testMesh(p int) *machine.Machine {
	return machine.Mesh(p, testParams.Ts, testParams.Tw)
}

func TestFoxMeshCorrectAndExact(t *testing.T) {
	for _, c := range []struct{ n, p int }{{8, 1}, {8, 4}, {12, 4}, {6, 9}, {8, 16}, {16, 64}} {
		res := runCase(t, "FoxMesh", FoxMesh, testMesh(c.p), c.n)
		wantTp(t, "FoxMesh", res, model.ExactFoxMeshTp(testParams, c.n, c.p))
	}
}

func TestFoxMeshMatchesPaperMeshExpression(t *testing.T) {
	// Section 4.3: on the mesh, Fox's algorithm takes
	// n³/p + tw·n² + ts·p.
	res := runCase(t, "FoxMesh", FoxMesh, testMesh(16), 16)
	want := 16.0*16*16/16 + testParams.Tw*16*16 + testParams.Ts*16
	if math.Abs(res.Sim.Tp-want) > 1e-9*want {
		t.Fatalf("Tp = %v, want the paper's mesh expression %v", res.Sim.Tp, want)
	}
}

// Section 4.4's observation: "Due to nearest neighbor communications
// ... Cannon's algorithm's performance is the same on both mesh and
// hypercube architectures."
func TestCannonSameOnMeshAndHypercube(t *testing.T) {
	for _, c := range []struct{ n, p int }{{8, 4}, {16, 16}, {16, 64}} {
		onMesh := runCase(t, "Cannon/mesh", Cannon, testMesh(c.p), c.n)
		onCube := runCase(t, "Cannon/hc", Cannon, testHypercube(c.p), c.n)
		if onMesh.Sim.Tp != onCube.Sim.Tp {
			t.Fatalf("n=%d p=%d: mesh Tp %v != hypercube Tp %v", c.n, c.p, onMesh.Sim.Tp, onCube.Sim.Tp)
		}
	}
}

// On the mesh, the relayed Fox is slower than Cannon by roughly the
// broadcast factor — the comparison Section 4.3 draws.
func TestFoxMeshSlowerThanCannon(t *testing.T) {
	fox := runCase(t, "FoxMesh", FoxMesh, testMesh(64), 16)
	can := runCase(t, "Cannon", Cannon, testMesh(64), 16)
	if fox.Sim.Tp <= can.Sim.Tp {
		t.Fatalf("FoxMesh Tp %v should exceed Cannon Tp %v", fox.Sim.Tp, can.Sim.Tp)
	}
}

// The simple algorithm also runs unchanged on the mesh machine (its
// collectives only use logical-neighbor transfers).
func TestSimpleOnMesh(t *testing.T) {
	res := runCase(t, "Simple/mesh", Simple, testMesh(16), 8)
	wantTp(t, "Simple/mesh", res, model.ExactSimpleTp(testParams, 8, 16))
}

func TestFoxAsyncCorrect(t *testing.T) {
	for _, c := range []struct{ n, p int }{{8, 1}, {8, 4}, {16, 16}, {32, 64}} {
		runCase(t, "FoxAsync", FoxAsync, testMesh(c.p), c.n)
	}
}

// Section 4.3: the asynchronous execution brings Fox's algorithm "to
// almost a factor of two of Cannon's algorithm" — and far below the
// synchronized relay.
func TestFoxAsyncWithinTwiceCannon(t *testing.T) {
	for _, c := range []struct{ n, p int }{{32, 16}, {64, 64}} {
		async := runCase(t, "FoxAsync", FoxAsync, testMesh(c.p), c.n)
		sync := runCase(t, "FoxMesh", FoxMesh, testMesh(c.p), c.n)
		cannon := runCase(t, "Cannon", Cannon, testMesh(c.p), c.n)
		if async.Sim.Tp >= sync.Sim.Tp {
			t.Errorf("n=%d p=%d: async Tp %v not below synchronized %v", c.n, c.p, async.Sim.Tp, sync.Sim.Tp)
		}
		if async.Sim.Tp > 2.2*cannon.Sim.Tp {
			t.Errorf("n=%d p=%d: async Tp %v more than ~2x Cannon's %v", c.n, c.p, async.Sim.Tp, cannon.Sim.Tp)
		}
		if async.Sim.Tp < cannon.Sim.Tp {
			t.Errorf("n=%d p=%d: async Fox %v beat Cannon %v — relay cannot win", c.n, c.p, async.Sim.Tp, cannon.Sim.Tp)
		}
	}
}

func TestFoxPacketPipelinedCorrect(t *testing.T) {
	for _, c := range []struct{ n, p int }{{8, 1}, {8, 4}, {16, 16}, {32, 64}} {
		runCase(t, "FoxPacketPipelined", FoxPacketPipelined, testMesh(c.p), c.n)
	}
}

// The real packet pipeline lands between Cannon and the synchronized
// relay, and close to the charged Eq. (4) model.
func TestFoxPacketPipelinedBounds(t *testing.T) {
	n, p := 64, 64
	pkt := runCase(t, "FoxPacketPipelined", FoxPacketPipelined, testMesh(p), n)
	relay := runCase(t, "FoxMesh", FoxMesh, testMesh(p), n)
	cannon := runCase(t, "Cannon", Cannon, testMesh(p), n)
	if pkt.Sim.Tp >= relay.Sim.Tp {
		t.Fatalf("packet pipeline %v not below relay %v", pkt.Sim.Tp, relay.Sim.Tp)
	}
	if pkt.Sim.Tp <= cannon.Sim.Tp {
		t.Fatalf("packet pipeline %v unexpectedly beat Cannon %v", pkt.Sim.Tp, cannon.Sim.Tp)
	}
	// Within 2x of the charged pipelined model (the real pipeline pays
	// per-hop startups the idealized charge does not).
	charged := model.ExactFoxPipelinedTp(testParams, n, p)
	if pkt.Sim.Tp > 2*charged {
		t.Fatalf("packet pipeline %v far above charged model %v", pkt.Sim.Tp, charged)
	}
}
