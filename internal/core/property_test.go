package core

import (
	"testing"
	"testing/quick"

	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/model"
)

// Property: for randomly drawn valid configurations, every mesh
// algorithm is bit-exact against the serial product (integer inputs)
// and exactly matches its timing model.
func TestQuickRandomMeshConfigs(t *testing.T) {
	f := func(seed uint64, qRaw, bsRaw uint8) bool {
		q := []int{1, 2, 4, 8}[qRaw%4]
		bs := int(bsRaw)%3 + 1
		n := q * bs
		p := q * q
		a := matrix.RandomInts(n, n, seed)
		b := matrix.RandomInts(n, n, seed+1)
		want := matrix.Mul(a, b)
		for _, c := range []struct {
			name  string
			alg   Algorithm
			exact func(model.Params, int, int) float64
		}{
			{"Simple", Simple, model.ExactSimpleTp},
			{"Cannon", Cannon, model.ExactCannonTp},
			{"Fox", Fox, model.ExactFoxTp},
			{"FoxPipelined", FoxPipelined, model.ExactFoxPipelinedTp},
		} {
			res, err := c.alg(machine.Hypercube(p, 17, 3), a, b)
			if err != nil {
				t.Logf("%s n=%d p=%d: %v", c.name, n, p, err)
				return false
			}
			if matrix.MaxAbsDiff(res.C, want) != 0 {
				t.Logf("%s n=%d p=%d: wrong product", c.name, n, p)
				return false
			}
			wantTp := c.exact(model.Params{Ts: 17, Tw: 3}, n, p)
			if d := res.Sim.Tp - wantTp; d > 1e-9 || d < -1e-9 {
				t.Logf("%s n=%d p=%d: Tp %v want %v", c.name, n, p, res.Sim.Tp, wantTp)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: random cube configurations keep GK and Berntsen exact.
func TestQuickRandomCubeConfigs(t *testing.T) {
	f := func(seed uint64, qRaw, bsRaw uint8) bool {
		q := []int{1, 2, 4}[qRaw%3]
		p := q * q * q
		// Berntsen needs q² | n; use n = q²·k.
		n := q * q * (int(bsRaw)%2 + 1)
		a := matrix.RandomInts(n, n, seed)
		b := matrix.RandomInts(n, n, seed+1)
		want := matrix.Mul(a, b)
		pr := model.Params{Ts: 17, Tw: 3}

		gk, err := GK(machine.Hypercube(p, 17, 3), a, b)
		if err != nil || matrix.MaxAbsDiff(gk.C, want) != 0 {
			return false
		}
		if d := gk.Sim.Tp - model.ExactGKTp(pr, n, p); d > 1e-9 || d < -1e-9 {
			return false
		}
		bern, err := Berntsen(machine.Hypercube(p, 17, 3), a, b)
		if err != nil || matrix.MaxAbsDiff(bern.C, want) != 0 {
			return false
		}
		if d := bern.Sim.Tp - model.ExactBerntsenTp(pr, n, p); d > 1e-9 || d < -1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Structured workloads through the parallel algorithms: banded and
// Hilbert inputs are unforgiving about block placement mistakes.
func TestStructuredWorkloads(t *testing.T) {
	n := 16
	inputs := []struct {
		name string
		a, b *matrix.Dense
	}{
		{"banded", matrix.Banded(n, 2, 5), matrix.Banded(n, 1, 6)},
		{"hilbert", matrix.Hilbert(n), matrix.Hilbert(n)},
		{"symmetric x diagonal", matrix.Symmetric(n, 7), matrix.Diagonal(make([]float64, n))},
	}
	// Give the diagonal case a nontrivial diagonal.
	for i := 0; i < n; i++ {
		inputs[2].b.Set(i, i, float64(i+1))
	}
	for _, in := range inputs {
		want := matrix.Mul(in.a, in.b)
		for _, alg := range []struct {
			name string
			run  Algorithm
			p    int
		}{
			{"Cannon", Cannon, 16},
			{"GK", GK, 64},
			{"Berntsen", Berntsen, 8},
		} {
			res, err := alg.run(testHypercube(alg.p), in.a, in.b)
			if err != nil {
				t.Fatalf("%s on %s: %v", alg.name, in.name, err)
			}
			if d := matrix.MaxAbsDiff(res.C, want); d > 1e-12 {
				t.Errorf("%s on %s: differs by %v", alg.name, in.name, d)
			}
		}
	}
}

// The band-product property survives the distributed algorithms: a
// banded product computed by GK has the same bandwidth bound.
func TestBandedProductThroughGK(t *testing.T) {
	a := matrix.Banded(16, 1, 11)
	b := matrix.Banded(16, 2, 12)
	res, err := GK(testHypercube(64), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if bw := matrix.Bandwidth(res.C); bw > 3 {
		t.Fatalf("band-1 · band-2 product has bandwidth %d > 3", bw)
	}
}

// Meta-sweep: the equation exactness holds across machine constants,
// including the degenerate ts=0 and tw=0 machines.
func TestEquationsAcrossMachineConstants(t *testing.T) {
	params := []model.Params{{Ts: 0, Tw: 1}, {Ts: 1, Tw: 0}, {Ts: 17, Tw: 3}, {Ts: 150, Tw: 3}, {Ts: 0.5, Tw: 3}}
	a := matrix.RandomInts(16, 16, 61)
	b := matrix.RandomInts(16, 16, 62)
	for _, pr := range params {
		for _, c := range []struct {
			name  string
			alg   Algorithm
			p     int
			exact func(model.Params, int, int) float64
		}{
			{"Simple", Simple, 16, model.ExactSimpleTp},
			{"Cannon", Cannon, 16, model.ExactCannonTp},
			{"Fox", Fox, 16, model.ExactFoxTp},
			{"Berntsen", Berntsen, 64, model.ExactBerntsenTp},
			{"GK", GK, 64, model.ExactGKTp},
			{"GKImproved", GKImprovedBroadcast, 64, model.ExactGKImprovedTp},
		} {
			m := machine.Hypercube(c.p, pr.Ts, pr.Tw)
			res, err := c.alg(m, a, b)
			if err != nil {
				t.Fatalf("%s ts=%g tw=%g: %v", c.name, pr.Ts, pr.Tw, err)
			}
			if d := matrix.MaxAbsDiff(res.C, matrix.Mul(a, b)); d != 0 {
				t.Fatalf("%s ts=%g tw=%g: wrong product", c.name, pr.Ts, pr.Tw)
			}
			want := c.exact(pr, 16, c.p)
			if diff := res.Sim.Tp - want; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s ts=%g tw=%g: Tp=%v want %v", c.name, pr.Ts, pr.Tw, res.Sim.Tp, want)
			}
		}
	}
}
