package core

import (
	"matscale/internal/collective"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/simulator"
	"matscale/internal/topology"
)

const (
	tagSimpleRowGather = 100
	tagSimpleColGather = 200
)

// Simple implements the memory-inefficient algorithm of Section 4.1 on
// a √p × √p processor mesh: an all-to-all broadcast of the A blocks
// along mesh rows and of the B blocks along mesh columns, followed by
// the √p local block multiplications.
//
// Measured parallel time (the paper's Eq. (2) with the recursive-
// doubling all-gather cost written out exactly):
//
//	Tp = n³/p + 2·( ts·log₂√p + tw·(n²/p)·(√p − 1) )
func Simple(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
	return simpleImpl(m, a, b, false)
}

// SimpleAllPort is the Section 7.1 variant on a hypercube with
// simultaneous communication on all ports: the all-to-all broadcasts
// cost ts·log√p + tw·(n²/p)·√p/log√p each, and the broadcasts of A and
// B proceed simultaneously so only one is charged (Eq. 16).
func SimpleAllPort(m *machine.Machine, a, b *matrix.Dense) (*Result, error) {
	return simpleImpl(m, a, b, true)
}

func simpleImpl(m *machine.Machine, a, b *matrix.Dense, allPort bool) (*Result, error) {
	n, err := checkInputs(m, a, b)
	if err != nil {
		return nil, err
	}
	p := m.P()
	q, err := squareMeshSide(n, p)
	if err != nil {
		return nil, err
	}
	bs := n / q // block side
	mesh := topology.NewTorus2D(q, q)
	ga := matrix.Partition(a, q, q)
	gb := matrix.Partition(b, q, q)

	var product *matrix.Dense
	sim, err := simulator.Run(m, func(pr *simulator.Proc) {
		i, j := mesh.Coords(pr.Rank())
		myA := ga.Block(i, j)
		myB := gb.Block(i, j)
		row := mesh.RowRanks(i)
		col := mesh.ColRanks(j)

		// Phase 1: every processor acquires the full block row of A and
		// block column of B it needs.
		var rowA, colB []float64
		if allPort {
			rowA = collective.AllGatherAllPort(pr, row, tagSimpleRowGather, blockData(myA))
			colB = collective.AllGatherFree(pr, col, tagSimpleColGather, blockData(myB))
		} else {
			rowA = collective.AllGather(pr, row, tagSimpleRowGather, blockData(myA))
			colB = collective.AllGather(pr, col, tagSimpleColGather, blockData(myB))
		}

		// Phase 2: C_ij = Σ_k A_ik · B_kj, √p block multiplications of
		// bs³ unit operations each.
		c := matrix.New(bs, bs)
		for k := 0; k < q; k++ {
			ak := blockFrom(rowA[k*bs*bs:(k+1)*bs*bs], bs, bs)
			bk := blockFrom(colB[k*bs*bs:(k+1)*bs*bs], bs, bs)
			matrix.MulAddInto(c, ak, bk)
			pr.Compute(float64(bs) * float64(bs) * float64(bs))
		}
		pr.Recycle(rowA)
		pr.Recycle(colB)

		gatherGrid(pr, allRanks(p), q, q, tagGatherC, c, &product)
	})
	if err != nil {
		return nil, err
	}
	name := "Simple"
	if allPort {
		name = "SimpleAllPort"
	}
	return newResult(name, product, sim, n, p), nil
}
