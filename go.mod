module matscale

go 1.22

// Pinned to the revision vendored by the Go 1.24 toolchain (see
// vendor/); the analysis suite in internal/analysis and the
// cmd/matscale-vet vettool build against it offline.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
