module matscale

go 1.22
