// Command matscale-loadtest drives a matscale-server with many
// concurrent clients and reports throughput, cache hit rate and tail
// latency. It is the measurement half of the server tentpole: the
// acceptance run (1000 clients, 50% overlap) must complete with zero
// errors and a cache hit rate above 0.4.
//
// By default the driver starts an in-process server on a loopback
// listener so the run is self-contained; -url points it at an
// already-running matscale-server instead.
//
// Overlap model: a fraction `-overlap` of the clients submit sweeps
// drawn round-robin from a small shared pool of `-pool` specs (these
// collide in the cell cache), while the remaining clients each submit
// a unique spec (guaranteed cold misses). Every client verifies that
// its result bytes are identical to those of every other client that
// submitted the same spec — the differential proof that cache hits
// and misses are indistinguishable on the wire.
//
// With -bench the report is emitted in `go test -bench` text format on
// stdout (human summary moves to stderr) so scripts/bench2json can
// merge it into BENCH_pr.json.
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"matscale/internal/machine"
	"matscale/internal/server"
	"matscale/internal/sweep"
)

// realClock is the production server.Clock for the in-process server;
// like cmd/matscale-server's, it lives outside the determinism-contract
// packages on purpose.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

type options struct {
	clients     int
	overlap     float64
	pool        int
	url         string
	queue       int
	concurrency int
	jobs        int
	cacheCells  int
	backend     machine.Backend
	watchers    int
	poll        time.Duration
	bench       bool
}

func main() {
	fs := flag.NewFlagSet("matscale-loadtest", flag.ExitOnError)
	clients := fs.Int("clients", 1000, "number of concurrent clients")
	overlap := fs.Float64("overlap", 0.5, "fraction of clients submitting specs from the shared pool [0,1]")
	pool := fs.Int("pool", 4, "number of distinct specs in the shared pool")
	url := fs.String("url", "", "base URL of a running matscale-server (empty = start one in-process)")
	queue := fs.Int("queue", 0, "in-process server queue depth (0 = clients+16)")
	concurrency := fs.Int("concurrency", 0, "in-process server concurrent jobs (0 = GOMAXPROCS)")
	jobs := fs.Int("jobs", 1, "in-process server sweep workers per job")
	cacheCells := fs.Int("cache", server.DefaultCacheCells, "in-process server cell cache capacity")
	backendName := fs.String("backend", "goroutines", "in-process server backend: goroutines|events")
	watchers := fs.Int("watchers", 64, "clients that follow progress over SSE instead of polling")
	poll := fs.Duration("poll", 10*time.Millisecond, "status poll interval for non-SSE clients")
	bench := fs.Bool("bench", false, "emit the report in go-bench text format on stdout")
	fs.Parse(os.Args[1:])

	backend, err := machine.ParseBackend(*backendName)
	if err != nil {
		log.Fatalf("matscale-loadtest: %v", err)
	}
	opts := options{
		clients:     *clients,
		overlap:     math.Min(1, math.Max(0, *overlap)),
		pool:        max(1, *pool),
		url:         strings.TrimRight(*url, "/"),
		queue:       *queue,
		concurrency: *concurrency,
		jobs:        *jobs,
		cacheCells:  *cacheCells,
		backend:     backend,
		watchers:    *watchers,
		poll:        *poll,
		bench:       *bench,
	}
	if opts.clients < 1 {
		log.Fatal("matscale-loadtest: -clients must be >= 1")
	}

	rep, err := run(opts)
	if err != nil {
		log.Fatalf("matscale-loadtest: %v", err)
	}
	human := os.Stdout
	if opts.bench {
		human = os.Stderr
		fmt.Println(rep.benchText())
	}
	fmt.Fprint(human, rep.humanText())
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// workloadSpec builds the sweep spec for workload w. Distinct w get
// distinct custom-machine cost constants, so both the cache keys and
// the measured results differ between workloads — byte-identity checks
// across workloads would be vacuous otherwise.
func workloadSpec(w int) sweep.Spec {
	return sweep.Spec{
		Algorithms: []string{"cannon", "gk"},
		Machines:   []string{"custom"},
		Ts:         17 + float64(w),
		Tw:         3,
		Ps:         []int{16, 64},
		Ns:         []int{16, 32},
		Seed:       1,
	}
}

// workloadOf assigns client i its workload. The first round(overlap *
// clients) clients share the pool round-robin; the rest are unique.
func workloadOf(i int, o options) int {
	shared := int(math.Round(o.overlap * float64(o.clients)))
	if i < shared {
		return i % o.pool
	}
	return o.pool + (i - shared)
}

type report struct {
	Clients int
	Overlap float64
	Pool    int

	Sweeps        int
	Cells         int
	Errors        int
	WallSeconds   float64
	CellsPerSec   float64
	HitRate       float64
	P50, P95, P99 float64

	errSamples []string
}

func (r *report) humanText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "matscale-loadtest: %d clients, overlap %.2f (pool %d)\n",
		r.Clients, r.Overlap, r.Pool)
	fmt.Fprintf(&b, "  sweeps          %d\n", r.Sweeps)
	fmt.Fprintf(&b, "  cells           %d\n", r.Cells)
	fmt.Fprintf(&b, "  wall time       %.3fs\n", r.WallSeconds)
	fmt.Fprintf(&b, "  throughput      %.1f cells/s\n", r.CellsPerSec)
	fmt.Fprintf(&b, "  cache hit rate  %.3f\n", r.HitRate)
	fmt.Fprintf(&b, "  latency p50     %.4fs\n", r.P50)
	fmt.Fprintf(&b, "  latency p95     %.4fs\n", r.P95)
	fmt.Fprintf(&b, "  latency p99     %.4fs\n", r.P99)
	fmt.Fprintf(&b, "  errors          %d\n", r.Errors)
	for _, e := range r.errSamples {
		fmt.Fprintf(&b, "    %s\n", e)
	}
	return b.String()
}

// benchText renders the report as one go-bench line under a synthetic
// package header, the format scripts/bench2json parses.
func (r *report) benchText() string {
	name := fmt.Sprintf("BenchmarkServerLoadtest/clients=%d/overlap=%.2f", r.Clients, r.Overlap)
	return fmt.Sprintf("pkg: matscale/cmd/matscale-loadtest\n"+
		"%s 1 %d ns/op %.1f cells/s %.4f cache_hit_rate %.4f p99_s %d errors",
		name, int64(r.WallSeconds*1e9), r.CellsPerSec, r.HitRate, r.P99, r.Errors)
}

func run(o options) (*report, error) {
	base := o.url
	if base == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		depth := o.queue
		if depth <= 0 {
			depth = o.clients + 16
		}
		conc := o.concurrency
		if conc <= 0 {
			conc = runtime.GOMAXPROCS(0)
		}
		srv, err := server.New(server.Config{
			QueueDepth:    depth,
			MaxConcurrent: conc,
			SweepWorkers:  o.jobs,
			CacheCells:    o.cacheCells,
			Backend:       o.backend,
			RetainJobs:    o.clients + 16,
			Clock:         realClock{},
		})
		if err != nil {
			ln.Close()
			return nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer func() {
			hs.Close()
			srv.Shutdown()
		}()
		base = "http://" + ln.Addr().String()
		log.Printf("matscale-loadtest: in-process server on %s (queue %d, concurrency %d)",
			base, depth, conc)
	}

	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}
	before, err := fetchStats(hc, base)
	if err != nil {
		return nil, fmt.Errorf("server not reachable at %s: %w", base, err)
	}

	rep := &report{Clients: o.clients, Overlap: o.overlap, Pool: o.pool}
	var (
		mu        sync.Mutex
		latencies = make([]float64, 0, o.clients)
		hashes    = map[int][sha256.Size]byte{} // workload -> first result hash
	)
	fail := func(c int, format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		rep.Errors++
		if len(rep.errSamples) < 10 {
			rep.errSamples = append(rep.errSamples,
				fmt.Sprintf("client %d: %s", c, fmt.Sprintf(format, args...)))
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < o.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := workloadOf(i, o)
			t0 := time.Now()
			id, cells, err := submit(hc, base, workloadSpec(w))
			if err != nil {
				fail(i, "submit: %v", err)
				return
			}
			if i < o.watchers {
				err = watchSSE(hc, base, id)
			} else {
				err = pollStatus(hc, base, id, o.poll)
			}
			if err != nil {
				fail(i, "wait %s: %v", id, err)
				return
			}
			body, err := fetchResult(hc, base, id)
			if err != nil {
				fail(i, "result %s: %v", id, err)
				return
			}
			lat := time.Since(t0).Seconds()
			sum := sha256.Sum256(body)
			mu.Lock()
			rep.Sweeps++
			rep.Cells += cells
			latencies = append(latencies, lat)
			first, seen := hashes[w]
			if !seen {
				hashes[w] = sum
			}
			mu.Unlock()
			if seen && first != sum {
				fail(i, "result for workload %d differs from first client's bytes", w)
			}
		}(i)
	}
	wg.Wait()
	rep.WallSeconds = time.Since(start).Seconds()

	after, err := fetchStats(hc, base)
	if err != nil {
		return nil, err
	}
	if rep.WallSeconds > 0 {
		rep.CellsPerSec = float64(rep.Cells) / rep.WallSeconds
	}
	if after.Cache != nil {
		hits, misses := after.Cache.Hits, after.Cache.Misses
		if before.Cache != nil {
			hits -= before.Cache.Hits
			misses -= before.Cache.Misses
		}
		if hits+misses > 0 {
			rep.HitRate = float64(hits) / float64(hits+misses)
		}
	}
	sort.Float64s(latencies)
	rep.P50 = percentile(latencies, 0.50)
	rep.P95 = percentile(latencies, 0.95)
	rep.P99 = percentile(latencies, 0.99)
	return rep, nil
}

// percentile returns the q-quantile of sorted xs (nearest-rank).
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

func submit(hc *http.Client, base string, spec sweep.Spec) (id string, cells int, err error) {
	payload, err := json.Marshal(map[string]any{"spec": spec})
	if err != nil {
		return "", 0, err
	}
	// Admission rejections (queue_full, rate_limited) are backpressure,
	// not failures: retry with linear backoff before giving up.
	for attempt := 0; ; attempt++ {
		resp, err := hc.Post(base+"/v1/sweeps", "application/json", strings.NewReader(string(payload)))
		if err != nil {
			return "", 0, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", 0, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 50 {
			time.Sleep(time.Duration(attempt+1) * 5 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			return "", 0, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
		var sr struct {
			ID    string `json:"id"`
			Cells int    `json:"cells"`
		}
		if err := json.Unmarshal(body, &sr); err != nil {
			return "", 0, err
		}
		return sr.ID, sr.Cells, nil
	}
}

// watchSSE follows the job's event stream to its terminal event. The
// server closes the stream after sending "done" or "error", so reading
// to EOF and checking the last event name is the whole protocol.
func watchSSE(hc *http.Client, base, id string) error {
	resp, err := hc.Get(base + "/v1/sweeps/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("events status %d", resp.StatusCode)
	}
	last := ""
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			last = name
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	switch last {
	case "done":
		return nil
	case "error":
		return fmt.Errorf("job failed")
	default:
		return fmt.Errorf("stream ended on %q event", last)
	}
}

func pollStatus(hc *http.Client, base, id string, interval time.Duration) error {
	for {
		resp, err := hc.Get(base + "/v1/sweeps/" + id)
		if err != nil {
			return err
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch st.State {
		case "done":
			return nil
		case "failed":
			return fmt.Errorf("job failed: %s", st.Error)
		}
		time.Sleep(interval)
	}
}

func fetchResult(hc *http.Client, base, id string) ([]byte, error) {
	resp, err := hc.Get(base + "/v1/sweeps/" + id + "/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}

func fetchStats(hc *http.Client, base string) (*server.Stats, error) {
	resp, err := hc.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats status %d", resp.StatusCode)
	}
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
