package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := f()
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func TestCmdTable1(t *testing.T) {
	out, err := capture(t, func() error { return cmdTable1([]string{"-ts", "10"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Cannon", "GK", "ts=10"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table1 output missing %q", frag)
		}
	}
}

func TestCmdRegions(t *testing.T) {
	out, err := capture(t, func() error { return cmdRegions([]string{"-fig", "2", "-pmax", "10", "-nmax", "6"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "a=GK") {
		t.Errorf("regions output malformed:\n%s", out)
	}
	if _, err := capture(t, func() error { return cmdRegions([]string{"-fig", "9"}) }); err == nil {
		t.Error("bad figure accepted")
	}
}

func TestCmdRunAllAlgorithms(t *testing.T) {
	for _, alg := range []string{"gk", "gkimproved", "cannon", "fox", "foxpipe", "simple", "auto"} {
		out, err := capture(t, func() error {
			return cmdRun([]string{"-alg", alg, "-n", "16", "-p", "16", "-machine", "custom", "-ts", "17", "-tw", "3"})
		})
		if alg == "gk" || alg == "gkimproved" {
			// p=16 is not a cube: these must fail cleanly.
			if err == nil {
				t.Errorf("%s accepted a non-cube p", alg)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", alg, err)
			continue
		}
		if !strings.Contains(out, "efficiency:") || !strings.Contains(out, "verified:") {
			t.Errorf("%s output missing fields:\n%s", alg, out)
		}
	}
}

func TestCmdRunGKOnCube(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdRun([]string{"-alg", "gk", "-n", "16", "-p", "64", "-machine", "cm5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "algorithm:  GK") {
		t.Errorf("run output malformed:\n%s", out)
	}
}

func TestCmdRunMetricsAndTrace(t *testing.T) {
	trace := t.TempDir() + "/gk.json"
	out, err := capture(t, func() error {
		return cmdRun([]string{"-alg", "gk", "-n", "16", "-p", "64", "-metrics", "-trace", trace})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"overhead decomposition", "comm/compute", "busiest links", "recv_wait"} {
		if !strings.Contains(out, frag) {
			t.Errorf("metrics output missing %q:\n%s", frag, out)
		}
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("traceEvents")) {
		t.Errorf("trace file is not a trace_event document:\n%.200s", data)
	}
}

func TestCmdRunDNSGrid(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdRun([]string{"-alg", "dns", "-grid", "4", "-n", "16", "-p", "64"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "algorithm:  DNS") {
		t.Errorf("grid run output malformed:\n%s", out)
	}
	// The grid option must reject non-DNS algorithms.
	if _, err := capture(t, func() error {
		return cmdRun([]string{"-alg", "cannon", "-grid", "4", "-n", "16", "-p", "64"})
	}); err == nil {
		t.Error("grid option accepted a non-DNS algorithm")
	}
}

func TestCmdRunErrors(t *testing.T) {
	if _, err := capture(t, func() error { return cmdRun([]string{"-alg", "nope"}) }); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := capture(t, func() error { return cmdRun([]string{"-machine", "nope"}) }); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := capture(t, func() error { return cmdRun([]string{"-alg", "dns", "-n", "16", "-p", "64"}) }); err == nil {
		t.Error("DNS below applicability accepted")
	}
}

func TestCmdIsoeff(t *testing.T) {
	out, err := capture(t, func() error { return cmdIsoeff([]string{"-e", "0.5"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Isoefficiency curves") || !strings.Contains(out, "E>ceiling") {
		t.Errorf("isoeff output malformed:\n%s", out)
	}
}

func TestCmdCompare(t *testing.T) {
	out, err := capture(t, func() error { return cmdCompare(nil) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1.3e8") {
		t.Errorf("compare output missing cutoff:\n%s", out)
	}
}

func TestCmdAllPort(t *testing.T) {
	out, err := capture(t, func() error { return cmdAllPort(nil) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "does not improve") {
		t.Errorf("allport output missing conclusion:\n%s", out)
	}
}

func TestCmdTech(t *testing.T) {
	out, err := capture(t, func() error { return cmdTech(nil) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "more processors") {
		t.Errorf("tech output malformed:\n%s", out)
	}
	if _, err := capture(t, func() error { return cmdTech([]string{"-ts", "150", "-e", "0.9"}) }); err == nil {
		t.Error("tech above DNS ceiling accepted")
	}
}

func TestCmdImproved(t *testing.T) {
	out, err := capture(t, func() error { return cmdImproved(nil) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "improved") {
		t.Errorf("improved output malformed:\n%s", out)
	}
}

func TestCmdIsoVal(t *testing.T) {
	out, err := capture(t, func() error { return cmdIsoVal([]string{"-alg", "cannon"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E simulated") {
		t.Errorf("isoval output malformed:\n%s", out)
	}
	if _, err := capture(t, func() error { return cmdIsoVal([]string{"-alg", "nope"}) }); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestCmdPredict(t *testing.T) {
	out, err := capture(t, func() error { return cmdPredict(nil) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "predicted correctly") {
		t.Errorf("predict output malformed:\n%s", out)
	}
}

func TestCmdVerifyPasses(t *testing.T) {
	out, err := capture(t, func() error { return cmdVerify(nil) })
	if err != nil {
		t.Fatalf("self-check failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "all checks passed") || strings.Contains(out, "FAIL") {
		t.Errorf("verify output:\n%s", out)
	}
}

func TestCmdEfficiencyBadFigure(t *testing.T) {
	if _, err := capture(t, func() error { return cmdEfficiency([]string{"-fig", "7"}) }); err == nil {
		t.Error("bad efficiency figure accepted")
	}
}

func TestCmdTrace(t *testing.T) {
	for _, op := range []string{"broadcast", "allgather", "reduce", "reducescatter", "alltoall", "allreduce"} {
		out, err := capture(t, func() error {
			return cmdTrace([]string{"-op", op, "-p", "8", "-m", "16", "-width", "40"})
		})
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if !strings.Contains(out, "Tp =") || !strings.Contains(out, "p0") {
			t.Errorf("%s trace output malformed:\n%s", op, out)
		}
	}
	if _, err := capture(t, func() error { return cmdTrace([]string{"-op", "nope"}) }); err == nil {
		t.Error("unknown trace op accepted")
	}
}

func TestCmdRegionsCSV(t *testing.T) {
	out, err := capture(t, func() error { return cmdRegions([]string{"-fig", "1", "-pmax", "6", "-nmax", "4", "-csv"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "log2_n") || !strings.Contains(out, ",a") && !strings.Contains(out, ",b") {
		t.Errorf("regions CSV malformed:\n%s", out)
	}
}

func TestCmdTsSweep(t *testing.T) {
	out, err := capture(t, func() error { return cmdTsSweep([]string{"-n", "16", "-p", "64"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "winner") {
		t.Errorf("tssweep output malformed:\n%s", out)
	}
}

func TestCmdGridSweepRendersTable(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdGridSweep([]string{"-alg", "cannon,gk", "-machine", "custom",
			"-ts", "17", "-n", "16", "-p", "16,64", "-jobs", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"cannon", "gk", "n/a:"} {
		if !strings.Contains(out, frag) {
			t.Errorf("grid sweep output missing %q:\n%s", frag, out)
		}
	}
}

func TestCmdGridSweepCSVIdenticalAcrossJobs(t *testing.T) {
	dir := t.TempDir()
	run := func(jobs int) string {
		path := fmt.Sprintf("%s/out%d.csv", dir, jobs)
		_, err := capture(t, func() error {
			return cmdGridSweep([]string{"-alg", "cannon,gk", "-machine", "custom",
				"-ts", "17", "-n", "16,32", "-p", "16,64",
				"-faults", ";straggler=2@rank0,seed=42",
				"-jobs", fmt.Sprint(jobs), "-csv", path})
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	serial := run(1)
	if !strings.Contains(serial, "algorithm,machine,p,n") {
		t.Fatalf("CSV header missing:\n%.200s", serial)
	}
	if parallel := run(8); parallel != serial {
		t.Fatal("sweep CSV differs between -jobs=1 and -jobs=8")
	}
}

func TestCmdGridSweepJSONToStdout(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdGridSweep([]string{"-alg", "cannon", "-machine", "custom",
			"-ts", "17", "-n", "16", "-p", "16", "-json", "-"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"cells"`) {
		t.Errorf("JSON output malformed:\n%.300s", out)
	}
}

func TestCmdGridSweepErrors(t *testing.T) {
	if _, err := capture(t, func() error {
		return cmdGridSweep([]string{"-alg", "nope"})
	}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := capture(t, func() error {
		return cmdGridSweep([]string{"-p", "16,bogus"})
	}); err == nil {
		t.Error("bad -p list accepted")
	}
	if _, err := capture(t, func() error {
		return cmdGridSweep([]string{"-faults", "loss=2"})
	}); err == nil {
		t.Error("invalid fault scenario accepted")
	}
}

func TestCmdSaturation(t *testing.T) {
	out, err := capture(t, func() error { return cmdSaturation([]string{"-n", "16"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "speedup") {
		t.Errorf("saturation output malformed:\n%s", out)
	}
}

func TestCmdAllQuick(t *testing.T) {
	out, err := capture(t, func() error { return cmdAll([]string{"-quick"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "Section 8") {
		t.Errorf("all output malformed (len %d)", len(out))
	}
}

func TestCmdEfficiencyCSVFlagParses(t *testing.T) {
	// Only verify flag wiring quickly; the full sweeps are covered in
	// the experiments package (they take seconds).
	fsOK := []string{"-fig", "9", "-csv"}
	if _, err := capture(t, func() error { return cmdEfficiency(fsOK) }); err == nil {
		t.Error("bad figure with -csv accepted")
	}
	fsPlot := []string{"-fig", "9", "-plot"}
	if _, err := capture(t, func() error { return cmdEfficiency(fsPlot) }); err == nil {
		t.Error("bad figure with -plot accepted")
	}
}

func TestCmdRunWithCSVFiles(t *testing.T) {
	dir := t.TempDir()
	aPath := dir + "/a.csv"
	bPath := dir + "/b.csv"
	outPath := dir + "/c.csv"
	// 4x4 identity times a 4x4 ramp.
	var id, ramp strings.Builder
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if j > 0 {
				id.WriteByte(',')
				ramp.WriteByte(',')
			}
			if i == j {
				id.WriteByte('1')
			} else {
				id.WriteByte('0')
			}
			fmt.Fprintf(&ramp, "%d", i*4+j)
		}
		id.WriteByte('\n')
		ramp.WriteByte('\n')
	}
	if err := os.WriteFile(aPath, []byte(id.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bPath, []byte(ramp.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return cmdRun([]string{"-alg", "cannon", "-p", "4", "-machine", "cm5",
			"-a", aPath, "-b", bPath, "-out", outPath})
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(data)); got != strings.TrimSpace(ramp.String()) {
		t.Fatalf("I·B = %q, want the ramp", got)
	}
	if _, err := capture(t, func() error {
		return cmdRun([]string{"-a", aPath}) // missing -b
	}); err == nil {
		t.Error("missing -b accepted")
	}
	if _, err := capture(t, func() error {
		return cmdRun([]string{"-a", dir + "/missing.csv", "-b", bPath})
	}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCmdTraceGK(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdTrace([]string{"-op", "gk", "-p", "8", "-width", "50"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "GK algorithm") || !strings.Contains(out, "p0") {
		t.Errorf("gk trace malformed:\n%s", out)
	}
}

func TestCmdRunWithFaults(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdRun([]string{"-alg", "gk", "-n", "16", "-p", "64",
			"-faults", "straggler=2@rank0,loss=0.02,seed=42", "-metrics"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"faults:", "fault-induced degradation", "straggler extra compute", "retry comm overhead"} {
		if !strings.Contains(out, frag) {
			t.Errorf("faulted run output missing %q:\n%s", frag, out)
		}
	}
	// A bad spec must fail cleanly before anything runs.
	if _, err := capture(t, func() error {
		return cmdRun([]string{"-alg", "gk", "-n", "16", "-p", "64", "-faults", "loss=2"})
	}); err == nil {
		t.Error("invalid fault spec accepted")
	}
}

func TestCmdRobust(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdRobust([]string{"-n", "16", "-p", "64", "-faults", "straggler=2@rank0,seed=42"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"robustness", "clean Tp", "faulted Tp", "cannon", "gk", "dns"} {
		if !strings.Contains(out, frag) {
			t.Errorf("robust output missing %q:\n%s", frag, out)
		}
	}
	// Every faulted Tp must exceed its clean Tp: no slowdown at or
	// below 1.00x may appear.
	if strings.Contains(out, " 1.00x") || strings.Contains(out, " 0.00x") {
		t.Errorf("a formulation shows no slowdown under a rank-0 straggler:\n%s", out)
	}
	if _, err := capture(t, func() error {
		return cmdRobust([]string{"-faults", "bogus"})
	}); err == nil {
		t.Error("invalid fault spec accepted")
	}
	if _, err := capture(t, func() error {
		return cmdRobust([]string{"-machine", "nope"})
	}); err == nil {
		t.Error("unknown machine accepted")
	}
}

// The run command's checkpoint flags: suspend to a file, resume from
// it, and print the same measured quantities as an uninterrupted run.
func TestCmdRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ck := dir + "/run.ckpt"
	base := []string{"-alg", "cannon", "-n", "16", "-p", "64", "-backend", "events"}

	full, err := capture(t, func() error { return cmdRun(base) })
	if err != nil {
		t.Fatal(err)
	}

	out, err := capture(t, func() error {
		return cmdRun(append(base, "-checkpoint", ck, "-suspend-after", "50"))
	})
	if err != nil {
		t.Fatalf("suspension must exit cleanly, got %v", err)
	}
	if !strings.Contains(out, "suspended:  at event 50") || !strings.Contains(out, "-resume") {
		t.Fatalf("suspension output malformed:\n%s", out)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}

	resumed, err := capture(t, func() error {
		return cmdRun(append(base, "-resume", ck))
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(full, "\n") {
		if strings.HasPrefix(line, "Tp:") || strings.HasPrefix(line, "verified:") {
			if !strings.Contains(resumed, line) {
				t.Errorf("resumed output missing %q:\n%s", line, resumed)
			}
		}
	}

	// Misuse is rejected, not ignored.
	if _, err := capture(t, func() error {
		return cmdRun(append(base, "-suspend-after", "50"))
	}); err == nil {
		t.Error("-suspend-after without -checkpoint accepted")
	}
	if _, err := capture(t, func() error {
		return cmdRun([]string{"-alg", "cannon", "-n", "16", "-p", "64",
			"-checkpoint", ck, "-suspend-after", "50"})
	}); err == nil {
		t.Error("checkpoint on the goroutines backend accepted")
	}
}
