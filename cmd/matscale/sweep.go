package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"matscale"
)

// cmdGridSweep runs a whole experiment grid — the cross product of
// algorithms × machines × processor counts × matrix sizes × optional
// fault scenarios — fanning the independent simulations over a host
// worker pool. For a fixed spec the emitted CSV/JSON/table bytes are
// identical at every -jobs value; see docs/SWEEP.md.
func cmdGridSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	algs := fs.String("alg", "cannon,gk", "comma-separated algorithms: "+strings.Join(matscale.SweepAlgorithms(), ", "))
	machines := fs.String("machine", "ncube2", "comma-separated machine presets: ncube2, fast, simd, cm5, custom")
	ns := fs.String("n", "16,32", "comma-separated matrix dimensions")
	ps := fs.String("p", "16,64", "comma-separated processor counts")
	faultsList := fs.String("faults", "", "semicolon-separated fault scenarios; an empty entry is a clean run (docs/FAULTS.md)")
	seed := fs.Uint64("seed", 1, "matrix seed")
	ts, tw := paramFlags(fs, 150, 3)
	jobs := fs.Int("jobs", 0, "host worker goroutines (0 = all CPUs); never changes the output bytes")
	backendName := fs.String("backend", "goroutines", "simulation engine: goroutines, events; never changes the output bytes (docs/BACKENDS.md)")
	csvPath := fs.String("csv", "", "write the cells as CSV to this file ('-' for stdout)")
	jsonPath := fs.String("json", "", "write the full result as JSON to this file ('-' for stdout)")
	progress := fs.Bool("progress", false, "print each cell to stderr as it completes")
	fs.Parse(args)

	spec := &matscale.SweepSpec{
		Algorithms: splitList(*algs),
		Machines:   splitList(*machines),
		Ts:         *ts, Tw: *tw,
		Seed: *seed,
	}
	var err error
	if spec.Ps, err = splitInts(*ps); err != nil {
		return fmt.Errorf("-p: %w", err)
	}
	if spec.Ns, err = splitInts(*ns); err != nil {
		return fmt.Errorf("-n: %w", err)
	}
	if *faultsList != "" {
		for _, f := range strings.Split(*faultsList, ";") {
			spec.Faults = append(spec.Faults, strings.TrimSpace(f))
		}
	}

	backend, err := matscale.ParseBackend(*backendName)
	if err != nil {
		return err
	}

	opts := []matscale.Option{matscale.WithWorkers(*jobs), matscale.WithBackend(backend)}
	if *progress {
		opts = append(opts, matscale.WithProgress(func(done, total int, c matscale.SweepCell) {
			status := fmt.Sprintf("Tp=%.1f", c.Tp)
			if c.Err != "" {
				status = "n/a: " + c.Err
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s %s\n", done, total, c.Key(), status)
		}))
	}

	res, err := matscale.Sweep(spec, opts...)
	if err != nil {
		return err
	}

	wrote := false
	if *csvPath != "" {
		if err := writeSink(*csvPath, func(w io.Writer) error { return res.WriteCSV(w) }); err != nil {
			return err
		}
		wrote = true
	}
	if *jsonPath != "" {
		if err := writeSink(*jsonPath, func(w io.Writer) error { return res.WriteJSON(w) }); err != nil {
			return err
		}
		wrote = true
	}
	if !wrote {
		fmt.Print(res.Render())
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cells ran, %d inapplicable, %d prediction cache hits\n",
		res.Ran, res.Skipped, res.PredCacheHits)
	return nil
}

// writeSink writes through emit to path, with "-" meaning stdout.
func writeSink(path string, emit func(io.Writer) error) error {
	if path == "-" {
		return emit(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// splitList splits a comma-separated flag value, dropping empty and
// whitespace-only entries.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// splitInts parses a comma-separated list of integers.
func splitInts(s string) ([]int, error) {
	var out []int
	for _, v := range splitList(s) {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", v)
		}
		out = append(out, n)
	}
	return out, nil
}
