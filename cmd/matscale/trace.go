package main

import (
	"flag"
	"fmt"
	"os"

	"matscale/internal/collective"
	"matscale/internal/core"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/simulator"
	"matscale/internal/topology"
)

// cmdTrace renders the virtual-time schedule of one collective
// operation — the building blocks whose closed-form costs underpin
// every equation in the paper. C = computing, S = sending, . = waiting.
// With -chrome the same trace is also written as Chrome trace_event
// JSON for chrome://tracing or Perfetto.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	op := fs.String("op", "broadcast", "operation: broadcast, allgather, reduce, reducescatter, alltoall, allreduce, gk")
	p := fs.Int("p", 8, "processors (power of two)")
	words := fs.Int("m", 64, "message words per processor")
	ts, tw := paramFlags(fs, 17, 3)
	width := fs.Int("width", 72, "timeline width in columns")
	chrome := fs.String("chrome", "", "also write the trace as Chrome trace_event JSON to this file")
	fs.Parse(args)

	exportChrome := func(tr *simulator.Trace) error {
		if *chrome == "" {
			return nil
		}
		f, err := os.Create(*chrome)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteChromeTrace(f); err != nil {
			return err
		}
		fmt.Printf("chrome trace written to %s\n", *chrome)
		return nil
	}

	m := machine.Hypercube(*p, *ts, *tw)
	group := make([]int, *p)
	for i := range group {
		group[i] = i
	}

	var body func(pr *simulator.Proc)
	switch *op {
	case "broadcast":
		body = func(pr *simulator.Proc) {
			var data []float64
			if pr.Rank() == 0 {
				data = make([]float64, *words)
			}
			collective.Broadcast(pr, group, 0, 1, data)
		}
	case "allgather":
		body = func(pr *simulator.Proc) {
			collective.AllGather(pr, group, 1, make([]float64, *words))
		}
	case "reduce":
		body = func(pr *simulator.Proc) {
			collective.Reduce(pr, group, 0, 1, make([]float64, *words))
		}
	case "reducescatter":
		body = func(pr *simulator.Proc) {
			collective.ReduceScatter(pr, group, 1, make([]float64, *words**p))
		}
	case "alltoall":
		body = func(pr *simulator.Proc) {
			collective.AllToAll(pr, group, 1, make([]float64, *words**p))
		}
	case "allreduce":
		body = func(pr *simulator.Proc) {
			collective.AllReduce(pr, group, 1, make([]float64, *words**p))
		}
	case "gk":
		// Trace the paper's algorithm itself: its three-stage structure
		// (distribute A and B, multiply, reduce) shows in the timeline.
		n := 4 * topology.IntCbrt(*p)
		res, tr, err := core.GKTraced(m, matrix.RandomInts(n, n, 1), matrix.RandomInts(n, n, 2))
		if err != nil {
			return err
		}
		fmt.Printf("GK algorithm, n=%d, %s\n", n, m)
		fmt.Print(tr.Timeline(*width))
		fmt.Printf("Tp = %.1f   messages = %d   words moved = %d\n", res.Sim.Tp, res.Sim.Messages, res.Sim.Words)
		return exportChrome(tr)
	default:
		return fmt.Errorf("unknown operation %q", *op)
	}

	res, tr, err := simulator.RunTraced(m, body)
	if err != nil {
		return err
	}
	fmt.Printf("%s over %d processors, %d words, %s\n", *op, *p, *words, m)
	fmt.Print(tr.Timeline(*width))
	fmt.Printf("Tp = %.1f   messages = %d   words moved = %d\n", res.Tp, res.Messages, res.Words)
	return exportChrome(tr)
}
