// Command matscale reproduces the tables and figures of Gupta & Kumar,
// "Scalability of Parallel Algorithms for Matrix Multiplication"
// (ICPP 1993), and runs the library's parallel formulations on the
// virtual-time multicomputer.
//
// Usage:
//
//	matscale table1     [-ts 150 -tw 3]
//	matscale regions    -fig 1|2|3 [-pmax 30 -nmax 16] [-csv]
//	matscale efficiency -fig 4|5 [-csv|-plot]
//	matscale run        -alg gk|cannon|fox|foxpipe|simple|berntsen|dns|auto
//	                    -n 64 -p 64 [-machine ncube2|fast|simd|cm5]
//	                    [-a A.csv -b B.csv -out C.csv]
//	                    [-metrics] [-trace out.json] [-grid q]
//	                    [-faults 'straggler=3@rank7,loss=0.01,seed=42']
//	                    [-backend goroutines|events]
//	                    [-checkpoint ck.bin -suspend-after 1000] [-resume ck.bin]
//	matscale robust     [-n 16 -p 64 -machine ncube2]
//	                    [-faults 'straggler=2@rank0,seed=42']
//	                    [-backend goroutines|events]
//	matscale isoeff     [-ts 150 -tw 3 -e 0.5]
//	matscale compare    [-ts 150 -tw 3]
//	matscale allport    [-ts 10 -tw 3]
//	matscale tech       [-ts 0.5 -tw 3 -p 16384 -e 0.05 -k 2]
//	matscale improved   [-ts 9 -tw 1 -p 512]
//	matscale isoval     [-alg cannon|gk -e 0.5]
//	matscale predict
//	matscale sweep      [-alg cannon,gk -machine ncube2 -n 16,32 -p 16,64]
//	                    [-faults 'scenario1;scenario2'] [-seed 1]
//	                    [-jobs 0] [-csv out.csv] [-json out.json] [-progress]
//	                    [-backend goroutines|events]
//	matscale millionrank [-n 1024]
//	matscale tssweep    [-n 64 -p 64 -tw 3]
//	matscale saturation [-n 64 -ts 150 -tw 3]
//	matscale verify
//	matscale trace      [-op broadcast|allgather|...|gk -p 8 -m 64]
//	                    [-chrome out.json]
//	matscale all        [-quick] [-jobs 0]
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"matscale"
	"matscale/internal/experiments"
	"matscale/internal/iso"
	"matscale/internal/model"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "table1":
		err = cmdTable1(args)
	case "regions":
		err = cmdRegions(args)
	case "efficiency":
		err = cmdEfficiency(args)
	case "run":
		err = cmdRun(args)
	case "robust":
		err = cmdRobust(args)
	case "isoeff":
		err = cmdIsoeff(args)
	case "compare":
		err = cmdCompare(args)
	case "allport":
		err = cmdAllPort(args)
	case "tech":
		err = cmdTech(args)
	case "improved":
		err = cmdImproved(args)
	case "isoval":
		err = cmdIsoVal(args)
	case "predict":
		err = cmdPredict(args)
	case "verify":
		err = cmdVerify(args)
	case "trace":
		err = cmdTrace(args)
	case "sweep":
		err = cmdGridSweep(args)
	case "millionrank":
		err = cmdMillionRank(args)
	case "tssweep":
		err = cmdTsSweep(args)
	case "saturation":
		err = cmdSaturation(args)
	case "all":
		err = cmdAll(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "matscale: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "matscale:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `matscale — reproduce Gupta & Kumar, ICPP'93 matrix multiplication scalability

commands:
  table1       Table 1: overheads, isoefficiency, applicability
  regions      Figures 1-3: best-algorithm region maps
  efficiency   Figures 4-5: CM-5 efficiency curves and crossover
  run          run one algorithm (or -alg auto) on a simulated machine
  robust       compare formulations clean vs under an injected fault scenario
  isoeff       numeric isoefficiency curves for all algorithms
  compare      Section 6: pairwise crossover analysis
  allport      Section 7: all-port communication scalability
  tech         Section 8: more vs faster processors
  improved     Section 5.4.1: GK with Johnsson-Ho broadcast
  isoval       validate isoefficiency in simulation (constant-E scaling)
  predict      cross-validate the Section 6 predictions against races
  verify       self-check: every algorithm vs its paper equation
  trace        render the virtual-time schedule of a collective
  sweep        run a whole experiment grid in parallel (algorithms × machines × n × p × faults)
  millionrank  strong-scaling study on the events backend, up to p = 2^20 ranks
  tssweep      GK-vs-Cannon winner as the startup time ts varies
  saturation   fixed-size speedup saturation (Section 3)
  all          regenerate the complete reproduction in one run`)
}

func paramFlags(fs *flag.FlagSet, ts, tw float64) (*float64, *float64) {
	return fs.Float64("ts", ts, "message startup time (flop units)"),
		fs.Float64("tw", tw, "per-word transfer time (flop units)")
}

func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	ts, tw := paramFlags(fs, 150, 3)
	fs.Parse(args)
	fmt.Print(experiments.Table1(model.Params{Ts: *ts, Tw: *tw}))
	return nil
}

func cmdRegions(args []string) error {
	fs := flag.NewFlagSet("regions", flag.ExitOnError)
	fig := fs.Int("fig", 1, "figure number (1, 2 or 3)")
	pmax := fs.Int("pmax", 30, "largest p as a power of two exponent")
	nmax := fs.Int("nmax", 16, "largest n as a power of two exponent")
	csv := fs.Bool("csv", false, "emit CSV instead of the rendered map")
	fs.Parse(args)
	m, err := experiments.RegionFigure(*fig, *pmax, *nmax)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Print(m.CSV())
		return nil
	}
	fmt.Printf("Figure %d\n%s", *fig, m.Render())
	return nil
}

func cmdEfficiency(args []string) error {
	fs := flag.NewFlagSet("efficiency", flag.ExitOnError)
	fig := fs.Int("fig", 4, "figure number (4 or 5)")
	csv := fs.Bool("csv", false, "emit CSV instead of the rendered table")
	asPlot := fs.Bool("plot", false, "draw an ASCII chart instead of the table")
	fs.Parse(args)
	f, err := experiments.EfficiencyFigure(*fig)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Print(f.CSV())
		return nil
	}
	if *asPlot {
		fmt.Print(f.Plot())
		return nil
	}
	fmt.Print(f.Render())
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	algName := fs.String("alg", "auto", "algorithm: gk, gkimproved, cannon, fox, foxpipe, simple, berntsen, dns, auto")
	n := fs.Int("n", 64, "matrix dimension")
	p := fs.Int("p", 64, "processors")
	machineName := fs.String("machine", "ncube2", "machine preset: ncube2, fast, simd, cm5, custom")
	ts, tw := paramFlags(fs, 150, 3)
	seed := fs.Uint64("seed", 1, "matrix seed")
	aFile := fs.String("a", "", "CSV file for matrix A (random if empty)")
	bFile := fs.String("b", "", "CSV file for matrix B (random if empty)")
	outFile := fs.String("out", "", "write the product as CSV to this file")
	metrics := fs.Bool("metrics", false, "print the per-rank/per-link breakdown (To decomposition)")
	traceFile := fs.String("trace", "", "write a Chrome trace_event JSON to this file (chrome://tracing, Perfetto)")
	grid := fs.Int("grid", 0, "DNS block-grid side (runs DNS with WithDNSGrid; requires -alg dns)")
	faultSpec := fs.String("faults", "", "fault scenario, e.g. 'straggler=3@rank7,loss=0.01,seed=42' (see docs/FAULTS.md)")
	backendName := fs.String("backend", "goroutines", "simulation engine: goroutines, events (see docs/BACKENDS.md)")
	ckptFile := fs.String("checkpoint", "", "write the snapshot of a suspended run to this file (requires -suspend-after and -backend events)")
	suspendAfter := fs.Uint64("suspend-after", 0, "suspend at the consistent cut after this many event dispatches (requires -checkpoint)")
	resumeFile := fs.String("resume", "", "resume from a snapshot written by an earlier -checkpoint run (same -alg, -n, -p, -machine flags)")
	hostWorkers := fs.Int("workers", 0, "host goroutine workers for the verification multiply (0 = all CPUs; bit-identical at any count)")
	fs.Parse(args)

	m, err := machineForPreset(*machineName, *p, *ts, *tw)
	if err != nil {
		return err
	}
	backend, err := matscale.ParseBackend(*backendName)
	if err != nil {
		return err
	}

	a := matscale.RandomMatrix(*n, *n, *seed)
	b := matscale.RandomMatrix(*n, *n, *seed+1)
	if *aFile != "" || *bFile != "" {
		if *aFile == "" || *bFile == "" {
			return fmt.Errorf("provide both -a and -b, or neither")
		}
		var err error
		if a, err = readMatrixFile(*aFile); err != nil {
			return err
		}
		if b, err = readMatrixFile(*bFile); err != nil {
			return err
		}
		if a.Rows != *n {
			fmt.Printf("note: using n=%d from %s (overriding -n)\n", a.Rows, *aFile)
			*n = a.Rows
		}
	}

	opts := []matscale.Option{matscale.WithBackend(backend)}
	if *metrics {
		opts = append(opts, matscale.WithMetrics())
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		opts = append(opts, matscale.WithTrace(f))
	}
	if *grid > 0 {
		opts = append(opts, matscale.WithDNSGrid(*grid))
	}
	if *faultSpec != "" {
		fc, err := matscale.ParseFaults(*faultSpec)
		if err != nil {
			return err
		}
		opts = append(opts, matscale.WithFaults(fc))
	}
	if *resumeFile != "" {
		f, err := os.Open(*resumeFile)
		if err != nil {
			return err
		}
		ck, err := matscale.Restore(f)
		f.Close()
		if err != nil {
			return err
		}
		opts = append(opts, matscale.WithResume(ck))
	}
	if *ckptFile != "" {
		f, err := os.Create(*ckptFile)
		if err != nil {
			return err
		}
		defer f.Close()
		opts = append(opts, matscale.WithCheckpoint(f))
	}
	if *suspendAfter > 0 {
		opts = append(opts, matscale.WithSuspendAfter(*suspendAfter))
	}

	var res *matscale.Result
	name := *algName
	if name == "auto" && *grid == 0 {
		var sel matscale.Selection
		res, sel, err = matscale.RunAuto(m, a, b, opts...)
		if err == nil {
			name = sel.Name
			fmt.Printf("predicted:  Tp = %.1f (model)\n", sel.PredictedTp)
		}
	} else {
		algs := map[string]matscale.Algorithm{
			"gk": matscale.GK, "gkimproved": matscale.GKImprovedBroadcast,
			"cannon": matscale.Cannon, "fox": matscale.Fox, "foxpipe": matscale.FoxPipelined,
			"simple": matscale.Simple, "berntsen": matscale.Berntsen, "dns": matscale.DNS,
			"auto": nil,
		}
		alg, ok := algs[name]
		if !ok {
			return fmt.Errorf("unknown algorithm %q", name)
		}
		res, err = matscale.Run(alg, m, a, b, opts...)
		if err == nil {
			name = res.Algorithm
		}
	}
	var se *matscale.SuspendedError
	if errors.As(err, &se) {
		// Not a failure: the run stopped at its requested cut and the
		// snapshot is on disk. Exit cleanly with the resume recipe.
		fmt.Printf("suspended:  at event %d (%d-byte snapshot)\n", se.Events, len(se.Snapshot))
		fmt.Printf("checkpoint: written to %s; rerun with -resume %s to finish\n", *ckptFile, *ckptFile)
		return nil
	}
	if err != nil {
		return err
	}

	// The verification product runs on the parallel host kernel: its
	// deterministic ownership partition makes the result bit-identical
	// to matscale.Mul at any -workers count, so the reference is stable
	// no matter how the host parallelism is configured.
	serial, err := matscale.HostMul(a, b, matscale.WithWorkers(*hostWorkers))
	if err != nil {
		return err
	}
	maxDiff := 0.0
	for i := range serial.Data {
		if d := math.Abs(serial.Data[i] - res.C.Data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("algorithm:  %s\n", name)
	fmt.Printf("machine:    %s\n", m)
	fmt.Printf("n=%d  p=%d  W=n^3=%.0f\n", *n, *p, res.W())
	fmt.Printf("Tp:         %.1f flop units\n", res.Sim.Tp)
	fmt.Printf("speedup:    %.2f\n", res.Speedup())
	fmt.Printf("efficiency: %.4f\n", res.Efficiency())
	fmt.Printf("overhead:   %.1f (To = p·Tp − W)\n", res.Overhead())
	fmt.Printf("messages:   %d (%d words moved)\n", res.Sim.Messages, res.Sim.Words)
	if *faultSpec != "" {
		fmt.Printf("faults:     %s (%d retries, %.1f retry time)\n", *faultSpec, res.Sim.Retries, res.Sim.RetryTime)
	}
	fmt.Printf("verified:   max |C - serial| = %g\n", maxDiff)
	if *metrics && res.Metrics != nil {
		printMetrics(res.Metrics)
	}
	if *traceFile != "" {
		fmt.Printf("trace:      written to %s\n", *traceFile)
	}
	if *outFile != "" {
		if err := writeMatrixFile(*outFile, res.C); err != nil {
			return err
		}
		fmt.Printf("product:    written to %s\n", *outFile)
	}
	return nil
}

// machineForPreset builds the simulated machine the run/robust commands
// share: a named preset, or a custom hypercube from -ts/-tw.
func machineForPreset(name string, p int, ts, tw float64) (*matscale.Machine, error) {
	switch name {
	case "ncube2":
		return matscale.NCube2(p), nil
	case "fast":
		return matscale.FutureHypercube(p), nil
	case "simd":
		return matscale.SIMD(p), nil
	case "cm5":
		return matscale.CM5(p), nil
	case "custom":
		return matscale.Hypercube(p, ts, tw), nil
	default:
		return nil, fmt.Errorf("unknown machine %q", name)
	}
}

// cmdRobust answers "how robust is each formulation to this fault
// scenario": it runs every applicable algorithm clean and under the
// injected faults on the same machine and matrices, and tabulates the
// slowdown, retry overhead, and critical-rank shift per formulation.
func cmdRobust(args []string) error {
	fs := flag.NewFlagSet("robust", flag.ExitOnError)
	n := fs.Int("n", 16, "matrix dimension")
	p := fs.Int("p", 64, "processors")
	machineName := fs.String("machine", "ncube2", "machine preset: ncube2, fast, simd, cm5, custom")
	ts, tw := paramFlags(fs, 150, 3)
	seed := fs.Uint64("seed", 1, "matrix seed")
	faultSpec := fs.String("faults", "straggler=2@rank0,seed=42", "fault scenario to inject (see docs/FAULTS.md)")
	backendName := fs.String("backend", "goroutines", "simulation engine: goroutines, events (see docs/BACKENDS.md)")
	fs.Parse(args)

	m, err := machineForPreset(*machineName, *p, *ts, *tw)
	if err != nil {
		return err
	}
	backend, err := matscale.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	fc, err := matscale.ParseFaults(*faultSpec)
	if err != nil {
		return err
	}
	a := matscale.RandomMatrix(*n, *n, *seed)
	b := matscale.RandomMatrix(*n, *n, *seed+1)

	fmt.Printf("robustness of the formulations on %s, n=%d\n", m, *n)
	fmt.Printf("faults: %s\n\n", *faultSpec)
	fmt.Printf("%-10s %12s %12s %9s %8s %11s %9s\n",
		"algorithm", "clean Tp", "faulted Tp", "slowdown", "retries", "retry time", "crit rank")
	// DNS needs p ≥ n² at one element per processor; on smaller machines
	// run it on its q×q×q block grid when p is a perfect cube.
	var dnsOpts []matscale.Option
	if q := int(math.Round(math.Cbrt(float64(*p)))); q*q*q == *p && *p < *n**n && *n%q == 0 {
		dnsOpts = append(dnsOpts, matscale.WithDNSGrid(q))
	}
	ran := 0
	for _, c := range []struct {
		name string
		alg  matscale.Algorithm
		opts []matscale.Option
	}{
		{"simple", matscale.Simple, nil}, {"cannon", matscale.Cannon, nil},
		{"fox", matscale.Fox, nil}, {"foxpipe", matscale.FoxPipelined, nil},
		{"berntsen", matscale.Berntsen, nil}, {"dns", matscale.DNS, dnsOpts},
		{"gk", matscale.GK, nil},
	} {
		clean, err := matscale.Run(c.alg, m, a, b,
			append(c.opts, matscale.WithMetrics(), matscale.WithBackend(backend))...)
		if err != nil {
			fmt.Printf("%-10s %12s\n", c.name, "n/a: "+err.Error())
			continue
		}
		faulted, err := matscale.Run(c.alg, m, a, b,
			append(c.opts, matscale.WithFaults(fc), matscale.WithMetrics(), matscale.WithBackend(backend))...)
		if err != nil {
			return fmt.Errorf("%s under faults: %w", c.name, err)
		}
		shift := fmt.Sprintf("%d", faulted.Metrics.CriticalRank)
		if from, to, moved := faulted.Metrics.CriticalRankShift(clean.Metrics.Metrics); moved {
			shift = fmt.Sprintf("%d→%d", from, to)
		}
		fmt.Printf("%-10s %12.1f %12.1f %8.2fx %8d %11.1f %9s\n",
			c.name, clean.Sim.Tp, faulted.Sim.Tp, faulted.Sim.Tp/clean.Sim.Tp,
			faulted.Sim.Retries, faulted.Sim.RetryTime, shift)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no formulation is applicable to n=%d, p=%d", *n, *p)
	}
	return nil
}

// printMetrics renders the per-rank/per-link breakdown collected with
// WithMetrics: the To decomposition of the run.
func printMetrics(mt *matscale.Metrics) {
	fmt.Println()
	fmt.Printf("measured overhead decomposition (p·Tp − W = %.1f):\n", mt.Overhead)
	fmt.Printf("  total compute: %12.1f\n", mt.TotalCompute)
	fmt.Printf("  total send:    %12.1f\n", mt.TotalComm)
	fmt.Printf("  total idle:    %12.1f\n", mt.TotalIdle)
	fmt.Printf("  comm/compute:  %12.4f\n", mt.CommComputeRatio)
	fmt.Printf("  load imbal.:   %12.4f (critical rank %d)\n", mt.LoadImbalance, mt.CriticalRank)
	if d := mt.Degradation; d != nil {
		fmt.Println()
		fmt.Println("fault-induced degradation:")
		fmt.Printf("  straggler extra compute: %12.1f (ranks %v)\n", d.StragglerExtraCompute, d.StraggledRanks)
		fmt.Printf("  retry comm overhead:     %12.1f (%d retries)\n", d.RetryComm, d.Retries)
		fmt.Printf("  critical rank:           %12d\n", d.CriticalRank)
	}
	fmt.Println()
	fmt.Printf("%6s %12s %12s %12s %12s %6s %6s %8s %8s\n",
		"rank", "compute", "send", "recv_wait", "idle", "sent", "recvd", "w_sent", "w_recvd")
	for _, r := range mt.Ranks {
		fmt.Printf("%6d %12.1f %12.1f %12.1f %12.1f %6d %6d %8d %8d\n",
			r.Rank, r.Compute, r.Send, r.RecvWait, r.Idle,
			r.MsgsSent, r.MsgsRecvd, r.WordsSent, r.WordsRecvd)
	}
	if len(mt.Links) == 0 {
		return
	}
	// Busiest links first; show at most ten.
	links := append([]matscale.LinkMetrics(nil), mt.Links...)
	sort.Slice(links, func(i, j int) bool { return links[i].Busy > links[j].Busy })
	if len(links) > 10 {
		links = links[:10]
	}
	fmt.Println()
	fmt.Printf("busiest links (%d of %d):\n", len(links), len(mt.Links))
	fmt.Printf("%6s %6s %6s %8s %12s %8s\n", "from", "to", "msgs", "words", "busy", "util")
	for _, l := range links {
		fmt.Printf("%6d %6d %6d %8d %12.1f %8.4f\n",
			l.From, l.To, l.Msgs, l.Words, l.Busy, l.Utilization(mt.Tp))
	}
}

func readMatrixFile(path string) (*matscale.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return matscale.ReadCSV(f)
}

func writeMatrixFile(path string, m *matscale.Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return matscale.WriteCSV(f, m)
}

// cmdMillionRank runs the strong-scaling study of the events backend:
// Cannon and GK at up to p = n² ranks (2^20 at the default n) on the
// hypercube and mesh presets. The default grid takes a couple of
// minutes of wall time; the virtual-time output is deterministic.
func cmdMillionRank(args []string) error {
	fs := flag.NewFlagSet("millionrank", flag.ExitOnError)
	n := fs.Int("n", 1024, "matrix dimension (power of two); the study tops out at p = n² ranks")
	fs.Parse(args)
	return experiments.MillionRankStudy(os.Stdout, *n)
}

func cmdIsoeff(args []string) error {
	fs := flag.NewFlagSet("isoeff", flag.ExitOnError)
	ts, tw := paramFlags(fs, 150, 3)
	e := fs.Float64("e", 0.5, "target efficiency")
	fs.Parse(args)
	pr := model.Params{Ts: *ts, Tw: *tw}
	fmt.Printf("Isoefficiency curves (ts=%g, tw=%g, E=%g): problem size W needed to hold E\n", *ts, *tw, *e)
	fmt.Printf("%8s", "p")
	for _, s := range model.Specs() {
		fmt.Printf(" %14s", s.Name)
	}
	fmt.Println()
	for exp := 4; exp <= 24; exp += 4 {
		p := math.Pow(2, float64(exp))
		fmt.Printf("    2^%-2d", exp)
		for _, s := range model.Specs() {
			target := *e
			if s.Name == "DNS" {
				if cap := iso.MaxEfficiencyDNS(*ts, *tw); target >= cap {
					fmt.Printf(" %14s", "E>ceiling")
					continue
				}
			}
			w, ok := iso.SolveW(func(n, q float64) float64 { return s.To(pr, n, q) }, p, target)
			if !ok {
				fmt.Printf(" %14s", "-")
				continue
			}
			fmt.Printf(" %14.3g", w)
		}
		fmt.Println()
	}
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	ts, tw := paramFlags(fs, 150, 3)
	fs.Parse(args)
	fmt.Print(experiments.CrossoverReport(model.Params{Ts: *ts, Tw: *tw}))
	return nil
}

func cmdAllPort(args []string) error {
	fs := flag.NewFlagSet("allport", flag.ExitOnError)
	ts, tw := paramFlags(fs, 10, 3)
	fs.Parse(args)
	fmt.Print(experiments.AllPortReport(model.Params{Ts: *ts, Tw: *tw}))
	return nil
}

func cmdTech(args []string) error {
	fs := flag.NewFlagSet("tech", flag.ExitOnError)
	ts, tw := paramFlags(fs, 0.5, 3)
	p := fs.Float64("p", 1<<14, "processor count")
	e := fs.Float64("e", 0.05, "target efficiency")
	k := fs.Float64("k", 2, "scaling factor")
	fs.Parse(args)
	s, err := experiments.TechnologyReport(model.Params{Ts: *ts, Tw: *tw}, *p, *e, *k)
	if err != nil {
		return err
	}
	fmt.Print(s)
	return nil
}

func cmdImproved(args []string) error {
	fs := flag.NewFlagSet("improved", flag.ExitOnError)
	ts, tw := paramFlags(fs, 9, 1)
	p := fs.Int("p", 512, "processor count (power of 8)")
	fs.Parse(args)
	fmt.Print(experiments.ImprovedGKReport(model.Params{Ts: *ts, Tw: *tw}, *p))
	return nil
}
