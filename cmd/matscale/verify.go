package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"matscale/internal/core"
	"matscale/internal/experiments"
	"matscale/internal/machine"
	"matscale/internal/matrix"
	"matscale/internal/model"
)

func cmdIsoVal(args []string) error {
	fs := flag.NewFlagSet("isoval", flag.ExitOnError)
	ts, tw := paramFlags(fs, 17, 3)
	e := fs.Float64("e", 0.5, "target efficiency")
	algorithm := fs.String("alg", "cannon", "algorithm: cannon or gk")
	fs.Parse(args)
	pr := model.Params{Ts: *ts, Tw: *tw}
	var ps []int
	switch *algorithm {
	case "cannon":
		ps = []int{4, 16, 64, 256}
	case "gk":
		ps = []int{8, 64, 512}
	default:
		return fmt.Errorf("unknown algorithm %q", *algorithm)
	}
	pts, err := experiments.IsoefficiencyValidation(pr, *e, *algorithm, ps)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderIso(*algorithm, pts))
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	ts, tw := paramFlags(fs, 17, 3)
	fs.Parse(args)
	pr := model.Params{Ts: *ts, Tw: *tw}
	outcomes, err := experiments.PredictionAccuracy(pr, []int{16, 32, 48, 64}, []int{64, 256, 512})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderPrediction(outcomes))
	return nil
}

// cmdVerify runs every algorithm on small configurations and checks
// both the product (against the serial algorithm) and the simulated
// parallel time (against the paper's closed-form equation) — the
// repository's end-to-end self-check.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	ts, tw := paramFlags(fs, 17, 3)
	fs.Parse(args)
	pr := model.Params{Ts: *ts, Tw: *tw}

	type check struct {
		name     string
		eq       string
		n, p     int
		mach     *machine.Machine
		alg      core.Algorithm
		expected float64
	}
	hc := func(p int) *machine.Machine { return machine.Hypercube(p, pr.Ts, pr.Tw) }
	// Cost constants and the port regime are read-only after
	// construction (clockguard); derive configured copies instead.
	ap := func(p int) *machine.Machine { return hc(p).WithAllPort(true) }
	cm5 := func(p int) *machine.Machine { return machine.CM5(p).WithCost(pr.Ts, pr.Tw) }
	mesh := func(p int) *machine.Machine { return machine.Mesh(p, pr.Ts, pr.Tw) }

	checks := []check{
		{"Simple", "Eq.(2)", 16, 16, hc(16), core.Simple, model.ExactSimpleTp(pr, 16, 16)},
		{"Cannon", "Eq.(3)", 16, 16, hc(16), core.Cannon, model.ExactCannonTp(pr, 16, 16)},
		{"Fox (binomial)", "§4.3", 16, 16, hc(16), core.Fox, model.ExactFoxTp(pr, 16, 16)},
		{"Fox (pipelined)", "Eq.(4)", 16, 16, hc(16), core.FoxPipelined, model.ExactFoxPipelinedTp(pr, 16, 16)},
		{"Fox (mesh relay)", "§4.3 mesh", 16, 16, mesh(16), core.FoxMesh, model.ExactFoxMeshTp(pr, 16, 16)},
		{"Berntsen", "Eq.(5)", 16, 64, hc(64), core.Berntsen, model.ExactBerntsenTp(pr, 16, 64)},
		{"DNS", "Eq.(6)", 8, 128, hc(128), core.DNS, model.ExactDNSTp(pr, 8, 128, 8)},
		{"GK", "Eq.(7)", 16, 64, hc(64), core.GK, model.ExactGKTp(pr, 16, 64)},
		{"GK improved bcast", "§5.4.1", 16, 64, hc(64), core.GKImprovedBroadcast, model.ExactGKImprovedTp(pr, 16, 64)},
		{"Simple all-port", "Eq.(16)", 16, 16, ap(16), core.SimpleAllPort, model.ExactSimpleAllPortTp(pr, 16, 16)},
		{"[18]-style mem-eff", "§7.1", 16, 16, ap(16), core.SimpleMemEfficientAllPort, model.ExactSimpleMemEffAllPortTp(pr, 16, 16)},
		{"GK all-port", "Eq.(17)", 16, 64, ap(64), core.GKAllPort, model.ExactGKAllPortTp(pr, 16, 64)},
		{"GK on CM-5", "Eq.(18)", 16, 64, cm5(64), core.GK, model.ExactGKCM5Tp(pr, 16, 64)},
	}

	fmt.Printf("Self-check (ts=%g, tw=%g): product vs serial and Tp vs equation\n", pr.Ts, pr.Tw)
	fmt.Printf("%-20s %-10s %6s %6s %14s %14s %8s %8s\n", "algorithm", "equation", "n", "p", "Tp simulated", "Tp equation", "product", "timing")
	failures := 0
	for _, c := range checks {
		a := matrix.RandomInts(c.n, c.n, 7)
		b := matrix.RandomInts(c.n, c.n, 8)
		res, err := c.alg(c.mach, a, b)
		if err != nil {
			fmt.Printf("%-20s %-10s %6d %6d ERROR: %v\n", c.name, c.eq, c.n, c.p, err)
			failures++
			continue
		}
		prodOK := matrix.MaxAbsDiff(res.C, matrix.Mul(a, b)) == 0
		timeOK := math.Abs(res.Sim.Tp-c.expected) <= 1e-9*math.Max(1, c.expected)
		mark := func(ok bool) string {
			if ok {
				return "ok"
			}
			failures++
			return "FAIL"
		}
		fmt.Printf("%-20s %-10s %6d %6d %14.1f %14.1f %8s %8s\n",
			c.name, c.eq, c.n, c.p, res.Sim.Tp, c.expected, mark(prodOK), mark(timeOK))
	}
	if failures > 0 {
		return fmt.Errorf("%d self-check failures", failures)
	}
	fmt.Println("all checks passed")
	return nil
}

func cmdTsSweep(args []string) error {
	fs := flag.NewFlagSet("tssweep", flag.ExitOnError)
	tw := fs.Float64("tw", 3, "per-word transfer time")
	n := fs.Int("n", 64, "matrix dimension")
	p := fs.Int("p", 64, "processors (power of eight for GK)")
	fs.Parse(args)
	pts, err := experiments.TsSweep(*tw, *n, *p, []float64{0, 0.5, 1, 3, 10, 30, 100, 300, 1000})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderTsSweep(*tw, *n, *p, pts))
	return nil
}

func cmdSaturation(args []string) error {
	fs := flag.NewFlagSet("saturation", flag.ExitOnError)
	ts, tw := paramFlags(fs, 150, 3)
	n := fs.Int("n", 64, "matrix dimension")
	fs.Parse(args)
	pr := model.Params{Ts: *ts, Tw: *tw}
	var ps []int
	for p := 1; p <= (*n)*(*n); p *= 4 {
		if *n%intSqrt(p) == 0 {
			ps = append(ps, p)
		}
	}
	pts, err := experiments.SpeedupSaturation(pr, core.Cannon, *n, ps)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderSpeedup(*n, pts))
	return nil
}

func intSqrt(p int) int {
	q := 1
	for (q+1)*(q+1) <= p {
		q++
	}
	return q
}

func cmdAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	quick := fs.Bool("quick", false, "skip the CM-5 sweeps (Figures 4 and 5)")
	jobs := fs.Int("jobs", 0, "host worker goroutines (0 = all CPUs); the output bytes do not depend on it")
	fs.Parse(args)
	return experiments.RunAllParallel(os.Stdout, *quick, *jobs)
}
