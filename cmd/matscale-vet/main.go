// Command matscale-vet is the repository's domain vettool: a
// go/analysis suite enforcing the simulator's determinism and
// cost-model contracts (see docs/ANALYSIS.md). It speaks the standard
// unitchecker protocol, so it is driven through the go command:
//
//	go build -o bin/matscale-vet ./cmd/matscale-vet
//	go vet -vettool=$PWD/bin/matscale-vet ./...
//
// or simply `make vet`. Analyzers: accretion, clockguard, costcharge,
// nodetbreak, ownflow, seedflow, unitflow.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"matscale/internal/analysis/suite"
)

func main() {
	unitchecker.Main(suite.All()...)
}
