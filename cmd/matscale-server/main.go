// Command matscale-server serves sweep requests over HTTP: clients
// POST SweepSpecs, follow per-cell progress over SSE, and GET results
// that overlapping sweeps share byte-identically through the cell
// cache. It is the service front of internal/server; see
// docs/SERVER.md for the API and protocol.
//
// Usage:
//
//	matscale-server [-addr 127.0.0.1:8080] [-queue 256] [-concurrency 4]
//	                [-jobs 0] [-rate 0] [-burst 0] [-timeout 0]
//	                [-cache 65536] [-backend goroutines|events]
//	                [-checkpoint-dir DIR] [-suspend-on-timeout=true]
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes,
// admission stops (new submits get 503 shutting_down), and every
// already-admitted job drains before the process exits.
//
// With -checkpoint-dir, suspended jobs persist their checkpoints there
// and are restored — same IDs, same completed cells — when the server
// restarts on the directory. A job that hits -timeout is suspended with
// its completed cells intact rather than failed, unless
// -suspend-on-timeout=false restores the old discard behavior.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"matscale/internal/machine"
	"matscale/internal/server"
)

// realClock is the production server.Clock: plain wall time. It lives
// here, outside the determinism-contract packages, so internal/server
// itself stays wall-clock-free.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func main() {
	fs := flag.NewFlagSet("matscale-server", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	queue := fs.Int("queue", 256, "job queue depth (submits beyond it get 429 queue_full)")
	concurrency := fs.Int("concurrency", 4, "jobs executing simultaneously")
	jobs := fs.Int("jobs", 0, "sweep workers per running job (0 = all CPUs)")
	rate := fs.Float64("rate", 0, "admission rate limit in submits/sec (0 = unlimited)")
	burst := fs.Int("burst", 0, "rate-limit burst (0 = derived from -rate)")
	timeout := fs.Duration("timeout", 0, "per-job wall-clock timeout (0 = none)")
	cache := fs.Int("cache", server.DefaultCacheCells, "cell cache capacity in cells (-1 disables)")
	backendName := fs.String("backend", "goroutines", "default simulation backend: goroutines|events")
	ckptDir := fs.String("checkpoint-dir", "", "persist suspended-job checkpoints here and restore them on startup (empty = in-memory only)")
	suspendOnTimeout := fs.Bool("suspend-on-timeout", true, "suspend jobs that exceed -timeout with a resumable checkpoint instead of failing them")
	fs.Parse(os.Args[1:])

	backend, err := machine.ParseBackend(*backendName)
	if err != nil {
		log.Fatalf("matscale-server: %v", err)
	}
	srv, err := server.New(server.Config{
		QueueDepth:    *queue,
		MaxConcurrent: *concurrency,
		SweepWorkers:  *jobs,
		RatePerSec:    *rate,
		Burst:         *burst,
		JobTimeout:    *timeout,
		CacheCells:    *cache,
		Backend:       backend,
		Clock:         realClock{},

		SuspendOnTimeout: *suspendOnTimeout,
		CheckpointDir:    *ckptDir,
	})
	if err != nil {
		log.Fatalf("matscale-server: %v", err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigs
		log.Printf("matscale-server: %v: draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("matscale-server: http shutdown: %v", err)
		}
		srv.Shutdown() // waits for every admitted job
	}()

	log.Printf("matscale-server: listening on %s (queue %d, concurrency %d, backend %s)",
		*addr, *queue, *concurrency, backend)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("matscale-server: %v", err)
	}
	<-done
	st := srv.Stats()
	msg := fmt.Sprintf("matscale-server: drained: %d completed, %d failed, %d suspended, %d cancelled, %d cells served",
		st.Completed, st.Failed, st.Suspended, st.Canceled, st.CellsServed)
	if st.Cache != nil {
		msg += fmt.Sprintf(", cache hit rate %.3f", st.Cache.HitRate)
	}
	log.Print(msg)
}
